// Package metrics is a dependency-free instrumentation library with
// Prometheus text exposition. It provides the three classic instrument
// kinds - monotone counters, settable gauges and fixed-bucket histograms
// - each optionally split by a static label set, plus callback-backed
// variants whose values are read at scrape time. A Registry collects
// instruments and renders them in Prometheus text format (version 0.0.4:
// `# HELP` / `# TYPE` headers followed by one sample per series).
//
// Hot-path cost is one atomic add for counters and gauges and one binary
// search plus two atomic adds for histograms; labeled lookups take a
// read-locked map hit. There are no background goroutines and no
// third-party imports, so the package is safe to embed in servers that
// must not grow dependencies.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket ladder in seconds, spanning
// 100us..10s the way serving latencies spread: sub-millisecond cache
// hits, millisecond folds, multi-second fan-out stalls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// A Registry owns a set of named metric families and renders them as
// Prometheus text. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams []*family // exposition order = registration order
	seen map[string]bool
}

// family is one named metric: a TYPE, a HELP string, a label schema and
// the live series keyed by joined label values.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	mu     sync.RWMutex
	series map[string]metric // key = labelKey(values)
	order  []string          // stable exposition order = creation order

	collect func(emit func(labelValues []string, value float64)) // callback families
	buckets []float64                                            // histogram families
}

// metric is the per-series state behind a family.
type metric interface {
	sample() sampleSet
}

// sampleSet carries the rendered values for one series: plain value for
// counters/gauges, bucket counts + sum + count for histograms.
type sampleSet struct {
	value     float64
	isHisto   bool
	buckets   []uint64 // cumulative, aligned with family.buckets, +Inf appended
	sum       float64
	count     uint64
	exemplars []*Exemplar // per bucket (non-cumulative), nil entries skipped
}

// An Exemplar links one bucket of a histogram series to the trace that
// produced a recent observation in it. Rendered as a companion
// `<name>_exemplar` gauge family (classic text format has no native
// exemplar syntax, and the companion block stays Lint-clean) whose
// series carry the histogram's labels plus `le` and `trace_id`, with
// the observed value as the sample.
type Exemplar struct {
	// TraceID is the hex trace ID behind the observation.
	TraceID string
	// Value is the observed value (same unit as the histogram).
	Value float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

// register adds a family, panicking on duplicate or invalid names -
// metric registration is programmer-controlled, so a bad name is a bug.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic("metrics: invalid metric name " + strconv.Quote(f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic("metrics: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[f.name] {
		panic("metrics: duplicate metric " + f.name)
	}
	r.seen[f.name] = true
	f.series = make(map[string]metric)
	r.fams = append(r.fams, f)
	return f
}

// Counter registers a monotone counter family with the given label
// schema (no labels = a single series) and returns its vector handle.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(&family{name: name, help: help, typ: "counter", labels: labels})}
}

// Gauge registers a settable gauge family with the given label schema
// and returns its vector handle.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(&family{name: name, help: help, typ: "gauge", labels: labels})}
}

// Histogram registers a fixed-bucket histogram family. buckets must be
// strictly increasing upper bounds (in the observed unit, conventionally
// seconds); nil means DefBuckets. The implicit +Inf bucket is added
// automatically.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("metrics: histogram buckets must be strictly increasing")
		}
	}
	return &HistogramVec{fam: r.register(&family{
		name: name, help: help, typ: "histogram",
		labels: labels, buckets: buckets,
	})}
}

// CounterFunc registers a counter family whose series are produced by fn
// at scrape time: fn calls emit once per series (labelValues must match
// the label schema length). Use it to surface counters that already live
// elsewhere (e.g. cache hit totals kept as atomics in a library).
func (r *Registry) CounterFunc(name, help string, labels []string, fn func(emit func(labelValues []string, value float64))) {
	r.register(&family{name: name, help: help, typ: "counter", labels: labels, collect: fn})
}

// GaugeFunc registers a gauge family whose series are produced by fn at
// scrape time, like CounterFunc but with gauge semantics.
func (r *Registry) GaugeFunc(name, help string, labels []string, fn func(emit func(labelValues []string, value float64))) {
	r.register(&family{name: name, help: help, typ: "gauge", labels: labels, collect: fn})
}

// A CounterVec is a family of monotone counters split by label values.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use. The value count must match the registered label schema.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.lookup(labelValues, func() metric { return new(Counter) }).(*Counter)
}

// A GaugeVec is a family of gauges split by label values.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.lookup(labelValues, func() metric { return new(Gauge) }).(*Gauge)
}

// A HistogramVec is a family of histograms split by label values.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	f := v.fam
	return f.lookup(labelValues, func() metric {
		return &Histogram{
			bounds:    f.buckets,
			counts:    make([]atomic.Uint64, len(f.buckets)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(f.buckets)+1),
		}
	}).(*Histogram)
}

// lookup finds or creates the series for the joined label values.
func (f *family) lookup(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.series[key]; ok {
		return m
	}
	m = mk()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// A Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative; counters never go down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) sample() sampleSet { return sampleSet{value: float64(c.v.Load())} }

// A Gauge is a value that can go up and down, stored as float bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sample() sampleSet { return sampleSet{value: g.Value()} }

// A Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; last = +Inf
	sumBits   atomic.Uint64
	count     atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, last-write-wins
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the +Inf bucket catches
	// everything past the ladder.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveExemplar records one observation and pins it as the exemplar
// for the bucket it lands in (last write wins). traceID links the
// bucket straight to a retained trace; callers should pass only IDs
// that are actually retrievable. One atomic pointer store beyond
// Observe's cost.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) sample() sampleSet {
	s := sampleSet{isHisto: true, buckets: make([]uint64, len(h.counts))}
	var cum uint64
	var anyEx bool
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.buckets[i] = cum
		if h.exemplars[i].Load() != nil {
			anyEx = true
		}
	}
	if anyEx {
		s.exemplars = make([]*Exemplar, len(h.exemplars))
		for i := range h.exemplars {
			s.exemplars[i] = h.exemplars[i].Load()
		}
	}
	s.count = h.count.Load()
	s.sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format. Families appear in registration order; series within
// a family in creation order (callback families in emission order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			f.collect(func(labelValues []string, value float64) {
				if len(labelValues) != len(f.labels) {
					panic("metrics: " + f.name + " collector emitted wrong label count")
				}
				writeSample(&b, f.name, f.labels, labelValues, "", value)
			})
		} else {
			f.mu.RLock()
			keys := make([]string, len(f.order))
			copy(keys, f.order)
			sams := make([]sampleSet, len(keys))
			for i, k := range keys {
				sams[i] = f.series[k].sample()
			}
			f.mu.RUnlock()
			var exB strings.Builder
			for i, k := range keys {
				values := splitKey(k, len(f.labels))
				s := sams[i]
				if !s.isHisto {
					writeSample(&b, f.name, f.labels, values, "", s.value)
					continue
				}
				for bi, cum := range s.buckets {
					le := "+Inf"
					if bi < len(f.buckets) {
						le = formatFloat(f.buckets[bi])
					}
					writeSample(&b, f.name+"_bucket", append(f.labels, "le"), append(values, le), "", float64(cum))
					if ex := exemplarAt(s.exemplars, bi); ex != nil {
						writeSample(&exB, f.name+"_exemplar",
							append(f.labels, "le", "trace_id"),
							append(values, le, ex.TraceID), "", ex.Value)
					}
				}
				writeSample(&b, f.name+"_sum", f.labels, values, "", s.sum)
				writeSample(&b, f.name+"_count", f.labels, values, "", float64(s.count))
			}
			if exB.Len() > 0 {
				// Companion exemplar family: classic text format only,
				// so exemplars are their own gauge block (see Exemplar).
				fmt.Fprintf(&b, "# HELP %s_exemplar Trace-linked recent observation per %s bucket.\n", f.name, f.name)
				fmt.Fprintf(&b, "# TYPE %s_exemplar gauge\n", f.name)
				b.WriteString(exB.String())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// exemplarAt returns the exemplar pinned at bucket bi, nil for series
// without exemplars.
func exemplarAt(exes []*Exemplar, bi int) *Exemplar {
	if bi >= len(exes) {
		return nil
	}
	return exes[bi]
}

// writeSample renders one `name{labels} value` line.
func writeSample(b *strings.Builder, name string, labels, values []string, _ string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// labelKey joins label values with a separator that cannot appear in a
// value after escaping (0xff is invalid UTF-8, fine for a map key).
func labelKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	return strings.Join(values, "\xff")
}

// splitKey reverses labelKey for n label values.
func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\xff", n)
}

// formatFloat renders a sample value the way Prometheus expects: integral
// values without an exponent, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_][a-zA-Z0-9_]* (colons are reserved for recording rules).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
