package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// Multi-tenant namespaces: registry keys are "tenant/name" (bare names
// belong to the default tenant and stay un-prefixed for backward
// compatibility), and every tenant can carry a config - an exact memory
// budget in paper-accounting words (enforced via the estimators'
// SpaceWords at create/snapshot-PUT/merge time, answered with 413 plus
// the full word breakdown when exceeded) and per-tenant admission limits
// (token-bucket rate and max inflight, layered on top of the global
// gates so one hot tenant sheds before starving others).
//
// The tenant prefix threads through every layer untouched: shard keys
// become "tenant/name#partition" (ShardName just concatenates), WAL
// records and checkpoints carry the qualified key, and replicas replay
// it - so per-tenant cluster estimates stay bit-identical to single-node
// per-tenant builds.

// DefaultTenant is the tenant that owns bare (un-prefixed) estimator
// names. It needs no registration; configuring it applies budgets and
// rate limits to all bare-name traffic.
const DefaultTenant = "default"

// tenantSep separates the tenant prefix from the estimator name inside a
// registry key.
const tenantSep = "/"

// TenantConfig is a tenant's wire-visible configuration. Zero values
// mean "unlimited" for every field.
type TenantConfig struct {
	// MemoryBudgetWords caps the summed SpaceWords of the tenant's
	// estimators, in the paper's word accounting. In cluster mode every
	// partition counts (an estimator costs partitions x SpaceWords).
	MemoryBudgetWords int64 `json:"memoryBudgetWords,omitempty"`
	// RateQPS is the tenant's token-bucket refill rate; requests beyond
	// it are shed with 429 before the handlers run.
	RateQPS float64 `json:"rateQPS,omitempty"`
	// RateBurst is the tenant bucket capacity (0 = one second of RateQPS).
	RateBurst int `json:"rateBurst,omitempty"`
	// MaxInflight caps the tenant's concurrently served requests.
	MaxInflight int `json:"maxInflight,omitempty"`
}

// tenantState is the live per-tenant state: the config plus the admission
// gates derived from it.
type tenantState struct {
	cfg      TenantConfig
	bucket   *tokenBucket
	inflight atomic.Int64
}

// newTenantState builds the live state for a config.
func newTenantState(cfg TenantConfig) *tenantState {
	ts := &tenantState{cfg: cfg}
	if cfg.RateQPS > 0 {
		ts.bucket = newTokenBucket(cfg.RateQPS, cfg.RateBurst)
	}
	return ts
}

// tenantRegistry holds the configured tenants of one server.
type tenantRegistry struct {
	mu      sync.RWMutex
	tenants map[string]*tenantState
}

// get returns the live state for a tenant, nil when unconfigured.
func (tr *tenantRegistry) get(tenant string) *tenantState {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return tr.tenants[tenant]
}

// set installs (or replaces) a tenant's config, rebuilding its gates.
func (tr *tenantRegistry) set(tenant string, cfg TenantConfig) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.tenants[tenant] = newTenantState(cfg)
}

// delete removes a tenant's config, reporting whether it existed.
func (tr *tenantRegistry) delete(tenant string) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	_, ok := tr.tenants[tenant]
	delete(tr.tenants, tenant)
	return ok
}

// names returns the configured tenant names, sorted.
func (tr *tenantRegistry) names() []string {
	tr.mu.RLock()
	out := make([]string, 0, len(tr.tenants))
	for t := range tr.tenants {
		out = append(out, t)
	}
	tr.mu.RUnlock()
	sort.Strings(out)
	return out
}

// known reports whether the tenant is configured (the default tenant is
// always known).
func (tr *tenantRegistry) known(tenant string) bool {
	if tenant == DefaultTenant {
		return true
	}
	return tr.get(tenant) != nil
}

// configs returns a copy of every tenant's config (for checkpoints).
func (tr *tenantRegistry) configs() map[string]TenantConfig {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	out := make(map[string]TenantConfig, len(tr.tenants))
	for t, ts := range tr.tenants {
		out[t] = ts.cfg
	}
	return out
}

// splitTenant resolves a registry key into its tenant and local name:
// "a/x" is tenant "a", bare "x" belongs to the default tenant. Shard
// suffixes pass through inside the local name.
func splitTenant(key string) (tenant, name string) {
	if t, n, ok := strings.Cut(key, tenantSep); ok {
		return t, n
	}
	return DefaultTenant, key
}

// qualifiedName builds the registry key for a tenant's estimator: the
// default tenant stays un-prefixed (backward compatible with every
// pre-tenant deployment, WAL and checkpoint), every other tenant
// prefixes "tenant/".
func qualifiedName(tenant, name string) string {
	if tenant == DefaultTenant {
		return name
	}
	return tenant + tenantSep + name
}

// validTenantName rejects tenant names that would collide with the key
// syntax: empty, or containing the separator or a shard marker.
func validTenantName(tenant string) error {
	if tenant == "" {
		return fmt.Errorf("tenant name is required")
	}
	if strings.ContainsAny(tenant, "/#") {
		return fmt.Errorf("tenant name %q must not contain %q or %q", tenant, "/", "#")
	}
	return nil
}

// validLocalName rejects estimator names that would collide with the key
// syntax inside a tenant namespace.
func validLocalName(name string) error {
	if name == "" {
		return fmt.Errorf("estimator name is required")
	}
	if strings.ContainsAny(name, "/#") {
		return fmt.Errorf("estimator name %q must not contain %q (tenant separator) or %q (shard marker)", name, "/", "#")
	}
	return nil
}

// ---- memory budgets ----

// budgetEntry is one estimator's share in a 413 accounting breakdown.
type budgetEntry struct {
	Name       string `json:"name"`
	SpaceWords int64  `json:"spaceWords"`
}

// budgetBreakdown is the word accounting attached to a 413: the budget,
// the words already held (itemized), and the words the rejected request
// asked for.
type budgetBreakdown struct {
	Tenant         string        `json:"tenant"`
	BudgetWords    int64         `json:"budgetWords"`
	UsedWords      int64         `json:"usedWords"`
	RequestedWords int64         `json:"requestedWords"`
	Estimators     []budgetEntry `json:"estimators"`
}

// budgetError reports a mutation that would exceed a tenant's memory
// budget, carrying the full accounting for the 413 body.
type budgetError struct{ breakdown budgetBreakdown }

// Error summarizes the accounting in one line.
func (e *budgetError) Error() string {
	b := e.breakdown
	return fmt.Sprintf("tenant %q memory budget exceeded: %d words used + %d requested > %d budget",
		b.Tenant, b.UsedWords, b.RequestedWords, b.BudgetWords)
}

// writeBudgetError answers 413 with the accounting breakdown.
func writeBudgetError(w http.ResponseWriter, be *budgetError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusRequestEntityTooLarge)
	json.NewEncoder(w).Encode(map[string]any{
		"error":  be.Error(),
		"budget": be.breakdown,
	})
}

// tenantUsageLocked itemizes the tenant's local estimators and sums
// their SpaceWords. Caller holds s.mu (read or write).
func (s *Server) tenantUsageLocked(tenant string) (int64, []budgetEntry) {
	var used int64
	var entries []budgetEntry
	for key, est := range s.ests {
		t, _ := splitTenant(key)
		if t != tenant {
			continue
		}
		w := int64(est.spaceWords())
		used += w
		entries = append(entries, budgetEntry{Name: key, SpaceWords: w})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return used, entries
}

// checkBudgetLocked enforces the tenant's memory budget for a mutation
// that adds deltaWords to key's tenant (negative deltas - shrinking
// replacements - always pass). Caller holds s.mu. The returned error is
// a *budgetError carrying the exact word accounting.
func (s *Server) checkBudgetLocked(key string, deltaWords int64) error {
	tenant, _ := splitTenant(key)
	ts := s.tenants.get(tenant)
	if ts == nil || ts.cfg.MemoryBudgetWords <= 0 {
		return nil
	}
	budget := ts.cfg.MemoryBudgetWords
	used, entries := s.tenantUsageLocked(tenant)
	if used+deltaWords <= budget {
		return nil
	}
	return &budgetError{breakdown: budgetBreakdown{
		Tenant:         tenant,
		BudgetWords:    budget,
		UsedWords:      used,
		RequestedWords: deltaWords,
		Estimators:     entries,
	}}
}

// ---- tenant config handlers ----

// tenantInfoResponse is the GET /v1/tenants/{tenant} document: config
// plus live usage.
type tenantInfoResponse struct {
	Tenant     string        `json:"tenant"`
	Config     TenantConfig  `json:"config"`
	UsedWords  int64         `json:"usedWords"`
	Estimators []budgetEntry `json:"estimators"`
}

// setTenantLocal installs a tenant config locally, logging it first when
// persistence is on (binding-class change: exclusive gate).
func (s *Server) setTenantLocal(ctx context.Context, tenant string, cfg TenantConfig) error {
	if gate := s.mutGate(); gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	if s.persist != nil {
		if err := s.persist.logTenant(ctx, walOpTenantPut, tenant, cfg); err != nil {
			return err
		}
	}
	s.tenants.set(tenant, cfg)
	return nil
}

// deleteTenantLocal removes a tenant config locally (logged), reporting
// whether it existed.
func (s *Server) deleteTenantLocal(ctx context.Context, tenant string) (bool, error) {
	if gate := s.mutGate(); gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	if s.tenants.get(tenant) == nil {
		return false, nil
	}
	if s.persist != nil {
		if err := s.persist.logTenant(ctx, walOpTenantDelete, tenant, TenantConfig{}); err != nil {
			return true, err
		}
	}
	s.tenants.delete(tenant)
	return true, nil
}

func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	tenant := r.PathValue("tenant")
	if err := validTenantName(tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var cfg TenantConfig
	if !decodeJSON(w, r, &cfg) {
		return
	}
	if cfg.MemoryBudgetWords < 0 || cfg.RateQPS < 0 || cfg.RateBurst < 0 || cfg.MaxInflight < 0 {
		writeError(w, http.StatusBadRequest, "tenant limits must be non-negative")
		return
	}
	if s.cluster != nil && !isInternal(r) {
		// Tenant configs are cluster metadata: install everywhere so any
		// node can enforce admission and any router can enforce budgets.
		if err := s.cluster.broadcastTenant(r.Context(), http.MethodPut, tenant, &cfg); err != nil {
			writeError(w, http.StatusBadGateway, "tenant config fan-out incomplete (re-issue the PUT): %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "config": cfg})
		return
	}
	if err := s.setTenantLocal(r.Context(), tenant, cfg); err != nil {
		writeError(w, http.StatusInternalServerError, "logging tenant config: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "config": cfg})
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if err := validTenantName(tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cluster != nil && !isInternal(r) {
		s.cluster.routeTenantInfo(r.Context(), w, tenant)
		return
	}
	ts := s.tenants.get(tenant)
	// Internal usage probes must answer even on a node whose config copy
	// is missing (a broadcast raced): usage is about estimators, not
	// configs.
	if ts == nil && tenant != DefaultTenant && !isInternal(r) {
		writeError(w, http.StatusNotFound, "no tenant %q", tenant)
		return
	}
	var cfg TenantConfig
	if ts != nil {
		cfg = ts.cfg
	}
	s.mu.RLock()
	used, entries := s.tenantUsageLocked(tenant)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, tenantInfoResponse{
		Tenant: tenant, Config: cfg, UsedWords: used, Estimators: entries,
	})
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Tenant string       `json:"tenant"`
		Config TenantConfig `json:"config"`
	}
	names := s.tenants.names()
	out := make([]entry, 0, len(names))
	for _, t := range names {
		if ts := s.tenants.get(t); ts != nil {
			out = append(out, entry{Tenant: t, Config: ts.cfg})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	tenant := r.PathValue("tenant")
	if err := validTenantName(tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if tenant == DefaultTenant {
		writeError(w, http.StatusBadRequest, "the default tenant cannot be deleted; PUT an empty config to lift its limits")
		return
	}
	if s.cluster != nil && !isInternal(r) {
		// Configs are broadcast to every node, so the router's own registry
		// is authoritative for existence.
		if s.tenants.get(tenant) == nil {
			writeError(w, http.StatusNotFound, "no tenant %q", tenant)
			return
		}
		used, _, err := s.cluster.clusterTenantUsage(r.Context(), tenant)
		if err != nil {
			writeError(w, http.StatusBadGateway, "checking tenant usage: %v", err)
			return
		}
		if used > 0 {
			writeError(w, http.StatusConflict, "tenant %q still holds estimators (%d words); delete them first", tenant, used)
			return
		}
		if err := s.cluster.broadcastTenant(r.Context(), http.MethodDelete, tenant, nil); err != nil {
			writeError(w, http.StatusBadGateway, "tenant delete fan-out incomplete (re-issue the DELETE): %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": tenant})
		return
	}
	s.mu.RLock()
	used, _ := s.tenantUsageLocked(tenant)
	s.mu.RUnlock()
	if used > 0 && !isInternal(r) {
		writeError(w, http.StatusConflict, "tenant %q still holds estimators (%d words); delete them first", tenant, used)
		return
	}
	found, err := s.deleteTenantLocal(r.Context(), tenant)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "logging tenant delete: %v", err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, "no tenant %q", tenant)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": tenant})
}

// ---- tenant-scoped estimator routes ----

// handleTenantCreate creates an estimator inside a tenant namespace: the
// body's name is validated and qualified with the tenant prefix, then the
// request flows through the same create path as the flat route.
func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if err := validTenantName(tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req createRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := validLocalName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Name = qualifiedName(tenant, req.Name)
	s.serveCreate(w, r, &req)
}

// handleTenantEstimatorList lists one tenant's estimators, names
// un-prefixed.
func (s *Server) handleTenantEstimatorList(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if err := validTenantName(tenant); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec := newListRecorder()
	s.handleList(rec, r)
	rec.filterAndServe(w, tenant)
}

// listRecorder captures a list response so tenant routes can filter it.
type listRecorder struct {
	header http.Header
	status int
	body   strings.Builder
}

func newListRecorder() *listRecorder {
	return &listRecorder{header: make(http.Header), status: http.StatusOK}
}

// Header implements http.ResponseWriter.
func (lr *listRecorder) Header() http.Header { return lr.header }

// WriteHeader implements http.ResponseWriter.
func (lr *listRecorder) WriteHeader(status int) { lr.status = status }

// Write implements http.ResponseWriter.
func (lr *listRecorder) Write(p []byte) (int, error) { return lr.body.Write(p) }

// filterAndServe re-serves the captured listing with only the tenant's
// estimators, tenant prefixes stripped.
func (lr *listRecorder) filterAndServe(w http.ResponseWriter, tenant string) {
	if lr.status != http.StatusOK {
		for k, vs := range lr.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(lr.status)
		w.Write([]byte(lr.body.String()))
		return
	}
	var parsed struct {
		Estimators []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"estimators"`
	}
	if err := json.Unmarshal([]byte(lr.body.String()), &parsed); err != nil {
		writeError(w, http.StatusInternalServerError, "filtering tenant list: %v", err)
		return
	}
	type entry struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	out := make([]entry, 0)
	for _, e := range parsed.Estimators {
		t, local := splitTenant(e.Name)
		if t == tenant {
			out = append(out, entry{Name: local, Kind: e.Kind})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "estimators": out})
}

// tenantEstimatorRoute adapts a tenant-scoped estimator URL onto the flat
// handlers: it validates the tenant and name, rewrites the path to the
// qualified registry key (escaped, so the mux sees one segment) and
// re-dispatches through the mux - every downstream handler then sees the
// qualified key in its {name} path value, exactly as if the client had
// addressed it directly.
func (s *Server) tenantEstimatorRoute(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("tenant")
		if err := validTenantName(tenant); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		name := r.PathValue("name")
		if err := validLocalName(name); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		key := qualifiedName(tenant, name)
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/v1/estimators/" + key + suffix
		r2.URL.RawPath = "/v1/estimators/" + url.PathEscape(key) + suffix
		s.mux.ServeHTTP(w, r2)
	}
}

// requireKnownTenant rejects creates under unregistered tenants: budgets
// and rate limits only mean something when the namespace is declared
// first (the default tenant is exempt for backward compatibility).
func (s *Server) requireKnownTenant(key string) error {
	tenant, _ := splitTenant(key)
	if !s.tenants.known(tenant) {
		return fmt.Errorf("%w: %q", errUnknownTenant, tenant)
	}
	return nil
}

// errUnknownTenant reports a create under a tenant that was never
// registered via PUT /v1/tenants/{tenant}.
var errUnknownTenant = errors.New("unknown tenant (register it with PUT /v1/tenants/{tenant} first)")

// validateCreateKey applies the external-create key syntax: at most one
// tenant separator, no shard markers, non-empty parts.
func validateCreateKey(key string) error {
	if strings.Contains(key, "#") {
		return fmt.Errorf("estimator names must not contain %q (reserved for shard keys)", "#")
	}
	tenant, name := splitTenant(key)
	if err := validTenantName(tenant); err != nil {
		return err
	}
	return validLocalName(name)
}

// ---- tenant admission ----

// requestTenant extracts the tenant a request addresses from its URL:
// tenant-scoped routes name it directly, flat estimator routes resolve
// the (possibly escaped) key's prefix, everything else belongs to no
// tenant. Used for per-tenant admission and metrics labels.
func requestTenant(r *http.Request) string {
	p := r.URL.EscapedPath()
	if rest, ok := strings.CutPrefix(p, "/v1/tenants/"); ok {
		seg, _, _ := strings.Cut(rest, "/")
		if t, err := url.PathUnescape(seg); err == nil {
			return t
		}
		return seg
	}
	if rest, ok := strings.CutPrefix(p, "/v1/estimators/"); ok && rest != "" {
		seg, _, _ := strings.Cut(rest, "/")
		key, err := url.PathUnescape(seg)
		if err != nil {
			key = seg
		}
		if base, _, ok := cluster.SplitShardName(key); ok {
			key = base
		}
		t, _ := splitTenant(key)
		return t
	}
	return ""
}

// admitTenant runs the per-tenant admission gates (rate bucket, inflight
// cap) for configured tenants. Internal fan-out sub-requests bypass them
// - the edge node already charged the external request - as do the
// global exemptions (/healthz, /metrics, /admin). It returns a release
// func and true to serve, or writes the 429 itself and returns false.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if admitExempt(r) {
		return func() {}, true
	}
	tenant := requestTenant(r)
	if tenant == "" {
		return func() {}, true
	}
	ts := s.tenants.get(tenant)
	if ts == nil {
		return func() {}, true
	}
	if ts.bucket != nil && !ts.bucket.take() {
		s.metrics.admissionRejected("tenant_rate", tenant)
		reject(w, retryAfterForRate(ts.cfg.RateQPS))
		return nil, false
	}
	if limit := ts.cfg.MaxInflight; limit > 0 {
		if ts.inflight.Add(1) > int64(limit) {
			ts.inflight.Add(-1)
			s.metrics.admissionRejected("tenant_inflight", tenant)
			reject(w, 1)
			return nil, false
		}
		return func() { ts.inflight.Add(-1) }, true
	}
	return func() {}, true
}
