package core

import (
	"fmt"
	"runtime"
	"sync"
)

// minRectsPerWorker is the smallest per-worker share for which spawning a
// goroutine (plus its private counter shard) pays for itself.
const minRectsPerWorker = 16

// shardBulk runs a bulk load of n objects split across GOMAXPROCS workers.
// Each worker folds its contiguous share of objects into a private counter
// shard via work(start, end, dst); shards are then merged into counters by
// addition. Sketches are linear projections of their input, so the sharded
// result is bit-identical to a sequential load - the same linearity that
// makes Merge exact.
//
// work must be safe to run concurrently against the (read-only) plan and
// must allocate any per-worker scratch itself. The first worker writes
// straight into counters; small loads skip the fan-out entirely.
// bulkWorkers decides the fan-out for a bulk load of n objects. It is a
// variable so tests can pin a multi-worker run regardless of host CPUs.
var bulkWorkers = func(n int) int {
	workers := runtime.GOMAXPROCS(0)
	// The kernel is CPU-bound: more workers than physical cores only adds
	// scheduling thrash and duplicated scratch in cache.
	if c := runtime.NumCPU(); c < workers {
		workers = c
	}
	if w := n / minRectsPerWorker; w < workers {
		workers = w
	}
	return workers
}

func shardBulk(n int, counters []int64, work func(start, end int, dst []int64)) {
	workers := bulkWorkers(n)
	if workers <= 1 {
		work(0, n, counters)
		return
	}
	chunk := (n + workers - 1) / workers
	shards := make([][]int64, 0, workers-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := min(start+chunk, n)
		if start >= end {
			break
		}
		dst := counters
		if w > 0 {
			dst = make([]int64, len(counters))
			shards = append(shards, dst)
		}
		wg.Add(1)
		go func(start, end int, dst []int64) {
			defer wg.Done()
			work(start, end, dst)
		}(start, end, dst)
	}
	wg.Wait()
	for _, sh := range shards {
		for i, v := range sh {
			counters[i] += v
		}
	}
}

// mergeSketch is the shared body of every sketch's Merge: reject foreign
// plans, then add counters and counts (exact by linearity).
func mergeSketch(dstPlan, srcPlan *Plan, dst, src []int64, dstCount *int64, srcCount int64) error {
	if !samePlan(dstPlan, srcPlan) {
		return fmt.Errorf("core: cannot merge sketches from different plans")
	}
	for i, v := range src {
		dst[i] += v
	}
	*dstCount += srcCount
	return nil
}

// letterSums is the scratch of one batched counter update: per (dimension,
// letter) a contiguous plane of Instances partial sums, filled id-major by
// xi.Bank.SumSignsMany and then folded into the counters instance by
// instance.
type letterSums struct {
	letters int
	inst    int
	planes  []int64 // [dim*letters + letter][inst]
}

func newLetterSums(dims, letters, instances int) *letterSums {
	return &letterSums{
		letters: letters,
		inst:    instances,
		planes:  make([]int64, dims*letters*instances),
	}
}

// plane returns the (dim, letter) accumulator plane.
func (ls *letterSums) plane(dim, letter int) []int64 {
	off := (dim*ls.letters + letter) * ls.inst
	return ls.planes[off : off+ls.inst]
}

// reset zeroes every plane.
func (ls *letterSums) reset() { clear(ls.planes) }
