package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary serialization of sketches. A sketch is fully determined by its
// configuration (the xi-families derive deterministically from the seed)
// and its counters, so synopses can be shipped between processes - e.g.
// built at the edge of a stream and merged or queried centrally - at a cost
// of a few bytes per counter.

const (
	marshalMagic   = 0x53504b31 // "SPK1"
	kindJoinSketch = 1
	kindCESketch   = 2
	kindPoint      = 3
	kindBox        = 4
	kindRange      = 5
)

func marshalConfig(w *bytes.Buffer, c Config) {
	binary.Write(w, binary.LittleEndian, uint32(c.Dims))
	for _, h := range c.LogDomain {
		binary.Write(w, binary.LittleEndian, int32(h))
	}
	hasML := uint32(0)
	if c.MaxLevel != nil {
		hasML = 1
	}
	binary.Write(w, binary.LittleEndian, hasML)
	if c.MaxLevel != nil {
		for _, ml := range c.MaxLevel {
			binary.Write(w, binary.LittleEndian, int32(ml))
		}
	}
	binary.Write(w, binary.LittleEndian, uint64(c.Instances))
	binary.Write(w, binary.LittleEndian, uint64(c.Groups))
	binary.Write(w, binary.LittleEndian, c.Seed)
}

// maxWireInstances bounds the instance count accepted from the wire. It
// matches the planner's refusal threshold (PlanJoinInstances caps k1 at
// 2^30), so no legitimately-sized sketch can hit it, while corrupted or
// hostile headers are rejected before any allocation scales with them.
const maxWireInstances = 1 << 30

func unmarshalConfig(r *bytes.Reader) (Config, error) {
	var c Config
	var dims uint32
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return c, err
	}
	if dims == 0 || dims > MaxDims {
		return c, fmt.Errorf("core: bad dims %d in serialized sketch", dims)
	}
	c.Dims = int(dims)
	c.LogDomain = make([]int, c.Dims)
	for i := range c.LogDomain {
		var h int32
		if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
			return c, err
		}
		c.LogDomain[i] = int(h)
	}
	var hasML uint32
	if err := binary.Read(r, binary.LittleEndian, &hasML); err != nil {
		return c, err
	}
	if hasML == 1 {
		c.MaxLevel = make([]int, c.Dims)
		for i := range c.MaxLevel {
			var ml int32
			if err := binary.Read(r, binary.LittleEndian, &ml); err != nil {
				return c, err
			}
			c.MaxLevel[i] = int(ml)
		}
	}
	var inst, groups uint64
	if err := binary.Read(r, binary.LittleEndian, &inst); err != nil {
		return c, err
	}
	if err := binary.Read(r, binary.LittleEndian, &groups); err != nil {
		return c, err
	}
	if err := binary.Read(r, binary.LittleEndian, &c.Seed); err != nil {
		return c, err
	}
	if inst == 0 || inst > maxWireInstances {
		return c, fmt.Errorf("core: instances %d in serialized sketch outside [1, %d]", inst, maxWireInstances)
	}
	if groups == 0 || groups > inst || inst%groups != 0 {
		return c, fmt.Errorf("core: groups %d in serialized sketch must divide instances %d", groups, inst)
	}
	c.Instances, c.Groups = int(inst), int(groups)
	return c, nil
}

// countersPerInstance returns how many counters one instance of the given
// sketch kind stores, so a serialized header can be cross-checked against
// its counter payload before any header-sized allocation happens.
func countersPerInstance(kind uint32, dims int) uint64 {
	switch kind {
	case kindJoinSketch, kindRange:
		return 1 << uint(dims)
	case kindCESketch:
		return uint64(pow4(dims))
	case kindPoint, kindBox:
		return 1
	}
	return 0
}

func marshalSketch(kind uint32, cfg Config, count int64, counters []int64) ([]byte, error) {
	var w bytes.Buffer
	binary.Write(&w, binary.LittleEndian, uint32(marshalMagic))
	binary.Write(&w, binary.LittleEndian, kind)
	marshalConfig(&w, cfg)
	binary.Write(&w, binary.LittleEndian, count)
	binary.Write(&w, binary.LittleEndian, uint64(len(counters)))
	for _, c := range counters {
		binary.Write(&w, binary.LittleEndian, c)
	}
	return w.Bytes(), nil
}

func unmarshalSketch(kind uint32, data []byte) (Config, int64, []int64, error) {
	r := bytes.NewReader(data)
	var magic, gotKind uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return Config{}, 0, nil, err
	}
	if magic != marshalMagic {
		return Config{}, 0, nil, fmt.Errorf("core: bad sketch magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &gotKind); err != nil {
		return Config{}, 0, nil, err
	}
	if gotKind != kind {
		return Config{}, 0, nil, fmt.Errorf("core: sketch kind %d, want %d", gotKind, kind)
	}
	cfg, err := unmarshalConfig(r)
	if err != nil {
		return Config{}, 0, nil, err
	}
	var count int64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return Config{}, 0, nil, err
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return Config{}, 0, nil, err
	}
	if n > uint64(r.Len()/8) {
		return Config{}, 0, nil, fmt.Errorf("core: truncated sketch: %d counters declared, %d bytes left", n, r.Len())
	}
	// Cross-check the declared instance count against the counter payload
	// BEFORE the caller builds a plan: a corrupted ~60-byte header claiming
	// Instances = 1<<40 must be rejected here, not by a multi-terabyte
	// xi-bank allocation in NewPlan. Instances is already bounded by
	// maxWireInstances and dims by MaxDims, so the product cannot overflow.
	if want := uint64(cfg.Instances) * countersPerInstance(kind, cfg.Dims); n != want {
		return Config{}, 0, nil, fmt.Errorf("core: sketch declares %d counters, config (%d instances, %d dims) requires %d",
			n, cfg.Instances, cfg.Dims, want)
	}
	counters := make([]int64, n)
	for i := range counters {
		if err := binary.Read(r, binary.LittleEndian, &counters[i]); err != nil {
			return Config{}, 0, nil, err
		}
	}
	return cfg, count, counters, nil
}

// MarshalBinary serializes the sketch together with its configuration.
func (s *JoinSketch) MarshalBinary() ([]byte, error) {
	return marshalSketch(kindJoinSketch, s.plan.cfg, s.count, s.counters)
}

// UnmarshalJoinSketch reconstructs a JoinSketch (and its plan) from
// MarshalBinary output.
func UnmarshalJoinSketch(data []byte) (*JoinSketch, error) {
	cfg, count, counters, err := unmarshalSketch(kindJoinSketch, data)
	if err != nil {
		return nil, err
	}
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	s := p.NewJoinSketch()
	if len(counters) != len(s.counters) {
		return nil, fmt.Errorf("core: counter count %d does not match config (%d)", len(counters), len(s.counters))
	}
	copy(s.counters, counters)
	s.count = count
	return s, nil
}

// MarshalBinary serializes the sketch together with its configuration.
func (s *CESketch) MarshalBinary() ([]byte, error) {
	return marshalSketch(kindCESketch, s.plan.cfg, s.count, s.counters)
}

// UnmarshalCESketch reconstructs a CESketch from MarshalBinary output.
func UnmarshalCESketch(data []byte) (*CESketch, error) {
	cfg, count, counters, err := unmarshalSketch(kindCESketch, data)
	if err != nil {
		return nil, err
	}
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	s := p.NewCESketch()
	if len(counters) != len(s.counters) {
		return nil, fmt.Errorf("core: counter count %d does not match config (%d)", len(counters), len(s.counters))
	}
	copy(s.counters, counters)
	s.count = count
	return s, nil
}

// MarshalBinary serializes the sketch together with its configuration.
func (s *PointSketch) MarshalBinary() ([]byte, error) {
	return marshalSketch(kindPoint, s.plan.cfg, s.count, s.counters)
}

// UnmarshalPointSketch reconstructs a PointSketch from MarshalBinary output.
func UnmarshalPointSketch(data []byte) (*PointSketch, error) {
	cfg, count, counters, err := unmarshalSketch(kindPoint, data)
	if err != nil {
		return nil, err
	}
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	s := p.NewPointSketch()
	if len(counters) != len(s.counters) {
		return nil, fmt.Errorf("core: counter count mismatch")
	}
	copy(s.counters, counters)
	s.count = count
	return s, nil
}

// MarshalBinary serializes the sketch together with its configuration.
func (s *BoxSketch) MarshalBinary() ([]byte, error) {
	return marshalSketch(kindBox, s.plan.cfg, s.count, s.counters)
}

// UnmarshalBoxSketch reconstructs a BoxSketch from MarshalBinary output.
func UnmarshalBoxSketch(data []byte) (*BoxSketch, error) {
	cfg, count, counters, err := unmarshalSketch(kindBox, data)
	if err != nil {
		return nil, err
	}
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	s := p.NewBoxSketch()
	if len(counters) != len(s.counters) {
		return nil, fmt.Errorf("core: counter count mismatch")
	}
	copy(s.counters, counters)
	s.count = count
	return s, nil
}

// MarshalBinary serializes the sketch together with its configuration.
func (s *RangeSketch) MarshalBinary() ([]byte, error) {
	return marshalSketch(kindRange, s.plan.cfg, s.count, s.counters)
}

// UnmarshalRangeSketch reconstructs a RangeSketch from MarshalBinary output.
func UnmarshalRangeSketch(data []byte) (*RangeSketch, error) {
	cfg, count, counters, err := unmarshalSketch(kindRange, data)
	if err != nil {
		return nil, err
	}
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	s := p.NewRangeSketch()
	if len(counters) != len(s.counters) {
		return nil, fmt.Errorf("core: counter count mismatch")
	}
	copy(s.counters, counters)
	s.count = count
	return s, nil
}
