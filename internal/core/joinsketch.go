package core

import (
	"fmt"

	"repro/geo"
)

// JoinSketch is the synopsis of one relation under the {I,E}^d dyadic
// atomic sketch set of Sections 3.1-3.2: per instance, 2^d integer counters
// X_w indexed by the bitmask of the letter string w (bit i set = letter E
// in dimension i; bit clear = letter I). For d = 1 these are (X_I, X_E) of
// Equation 4; for d = 2 they are (X_II, X_IE, X_EI, X_EE).
//
// The estimators assume Assumption 1 (no endpoints in common between the
// joined relations). Callers that cannot guarantee the assumption should
// apply the endpoint transformation of Section 5.2 (geo.TransformKeepRect /
// geo.TransformShrinkRect) before inserting, as the public spatial package
// does, or use CESketch.
//
// A JoinSketch is not safe for concurrent mutation; InsertAll parallelizes
// a bulk load internally.
type JoinSketch struct {
	plan     *Plan
	counters []int64 // [instance * 2^d + w]
	count    int64   // current object cardinality
	buf      *coverBuf
	sums     *letterSums
}

// NewJoinSketch returns an empty sketch of the plan's relation shape.
func (p *Plan) NewJoinSketch() *JoinSketch {
	return &JoinSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances<<uint(p.cfg.Dims)),
		buf:      newCoverBuf(p.cfg.Dims),
		sums:     newLetterSums(p.cfg.Dims, 2, p.cfg.Instances),
	}
}

// Plan returns the plan the sketch was built from.
func (s *JoinSketch) Plan() *Plan { return s.plan }

// Count returns the current number of objects summarized (inserts minus
// deletes), the denominator of selectivity.
func (s *JoinSketch) Count() int64 { return s.count }

// Insert adds a hyper-rectangle to the sketch.
func (s *JoinSketch) Insert(rect geo.HyperRect) error { return s.update(rect, +1) }

// Delete removes a previously inserted hyper-rectangle from the sketch
// (sketches are linear projections, so deletion is exact: Section 4.1.5).
func (s *JoinSketch) Delete(rect geo.HyperRect) error { return s.update(rect, -1) }

func (s *JoinSketch) update(rect geo.HyperRect, sign int64) error {
	if err := s.plan.checkRect(rect); err != nil {
		return err
	}
	s.buf.load(s.plan, rect)
	s.applyCovers(s.buf, sign, s.counters, s.sums)
	s.count += sign
	return nil
}

// applyCovers folds one object's covers into dst. The loop order is
// id-major: each dyadic id of each cover is evaluated once against the
// contiguous family plane of its dimension (xi.Bank.SumSignsMany), filling
// per-letter sum planes that are then folded into the 2^d counters of every
// instance.
func (s *JoinSketch) applyCovers(buf *coverBuf, sign int64, dst []int64, sums *letterSums) {
	p := s.plan
	d := p.cfg.Dims
	inst := p.cfg.Instances
	nw := 1 << uint(d)
	sums.reset()
	for i := 0; i < d; i++ {
		lo, hi := p.famRange(i)
		p.bank.SumSignsMany(buf.cover[i], lo, hi, sums.plane(i, 0))
		eAcc := sums.plane(i, 1)
		p.bank.SumSignsMany(buf.ptLo[i], lo, hi, eAcc)
		p.bank.SumSignsMany(buf.ptHi[i], lo, hi, eAcc)
	}
	switch d {
	case 1:
		iS, eS := sums.plane(0, 0), sums.plane(0, 1)
		for k := 0; k < inst; k++ {
			dst[2*k] += sign * iS[k]
			dst[2*k+1] += sign * eS[k]
		}
	case 2:
		i0, e0 := sums.plane(0, 0), sums.plane(0, 1)
		i1, e1 := sums.plane(1, 0), sums.plane(1, 1)
		for k := 0; k < inst; k++ {
			a, b, c, e := sign*i0[k], sign*e0[k], i1[k], e1[k]
			base := 4 * k
			dst[base] += a * c
			dst[base+1] += b * c
			dst[base+2] += a * e
			dst[base+3] += b * e
		}
	default:
		var lp [MaxDims][2][]int64
		for i := 0; i < d; i++ {
			lp[i][0], lp[i][1] = sums.plane(i, 0), sums.plane(i, 1)
		}
		for k := 0; k < inst; k++ {
			base := k * nw
			for w := 0; w < nw; w++ {
				prod := sign
				for i := 0; i < d; i++ {
					prod *= lp[i][(w>>uint(i))&1][k]
				}
				dst[base+w] += prod
			}
		}
	}
}

// InsertAll bulk-loads a slice of hyper-rectangles, validating all of them
// first and parallelizing across objects: each worker folds a contiguous
// share of the input into a private counter shard, and the shards are
// merged by addition (exact, because sketches are linear projections). It
// is the fast path for building a sketch from stored data; the resulting
// sketch is bit-identical to one built by repeated Insert calls.
func (s *JoinSketch) InsertAll(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := s.plan.checkRect(r); err != nil {
			return err
		}
	}
	p := s.plan
	shardBulk(len(rects), s.counters, func(start, end int, dst []int64) {
		buf := newCoverBuf(p.cfg.Dims)
		sums := newLetterSums(p.cfg.Dims, 2, p.cfg.Instances)
		for idx := start; idx < end; idx++ {
			buf.load(p, rects[idx])
			s.applyCovers(buf, +1, dst, sums)
		}
	})
	s.count += int64(len(rects))
	return nil
}

// Reset zeroes the sketch in place.
func (s *JoinSketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
	s.count = 0
}

// Clone returns an independent deep copy sharing the (immutable) plan.
func (s *JoinSketch) Clone() *JoinSketch {
	c := s.plan.NewJoinSketch()
	copy(c.counters, s.counters)
	c.count = s.count
	return c
}

// Merge adds the counters of other into s. Both sketches must come from the
// same plan. Merging the sketches of two disjoint streams is equivalent to
// sketching their union - the linearity that makes sketches distributable.
func (s *JoinSketch) Merge(other *JoinSketch) error {
	return mergeSketch(s.plan, other.plan, s.counters, other.counters, &s.count, other.count)
}

// Counter returns the X_w counter of one instance (w is the E-letter
// bitmask). Exposed for tests and diagnostics.
func (s *JoinSketch) Counter(instance, w int) int64 {
	d := s.plan.cfg.Dims
	return s.counters[instance<<uint(d)+w]
}

// EstimateJoin estimates |R join_o S| from the sketches of R and S per
// Theorems 1-3: each instance contributes Z = 2^-d * sum_w X_w * Y_w-bar,
// and instances are boosted by the median-of-means of Section 2.3.
// Both sketches must come from the same plan.
func EstimateJoin(x, y *JoinSketch) (Estimate, error) {
	if !samePlan(x.plan, y.plan) {
		return Estimate{}, fmt.Errorf("core: sketches come from different plans")
	}
	p := x.plan
	sc := p.GetScratch()
	defer p.PutScratch(sc)
	d := p.cfg.Dims
	nw := 1 << uint(d)
	mask := nw - 1
	scale := 1.0 / float64(int64(1)<<uint(d))
	zs := sc.instSums(p)
	for inst := range zs {
		base := inst * nw
		var z float64
		for w := 0; w < nw; w++ {
			z += float64(x.counters[base+w]) * float64(y.counters[base+(w^mask)])
		}
		zs[inst] = z * scale
	}
	return boostWith(zs, p.cfg.Groups, sc.medianBuf(p)), nil
}

// EstimateSelfJoin estimates SJ(R) = sum_w SJ(X_w) from the sketch's own
// counters: E[X_w^2] = SJ(X_w) - the original self-join-size use of AMS
// sketches (Section 2.2) turned inward. This lets a deployment feed the
// Theorem 1 planner without any offline pass over the data: the synopsis
// estimates its own variance budget.
func (s *JoinSketch) EstimateSelfJoin() Estimate {
	p := s.plan
	sc := p.GetScratch()
	defer p.PutScratch(sc)
	nw := 1 << uint(p.cfg.Dims)
	zs := sc.instSums(p)
	for inst := range zs {
		base := inst * nw
		var z float64
		for w := 0; w < nw; w++ {
			v := float64(s.counters[base+w])
			z += v * v
		}
		zs[inst] = z
	}
	return boostWith(zs, p.cfg.Groups, sc.medianBuf(p))
}

// SelfJoinUpperBound returns a cheap upper bound on SJ(R) =
// sum_w SJ(X_w) derived from the triangle inequality: each inserted object
// contributes at most (prod_i |cover_i| for the I letters) * ... per w, so
// SJ(X_w) <= (sum over objects of its cover-product for w)^2. The bound is
// loose but needs no extra state; exact values come from
// internal/exact.SelfJoinSizes.
func (s *JoinSketch) SelfJoinUpperBound() float64 {
	// With only counters available the best generic bound is
	// (sum_w max-cover-product * count)^2; keep it simple and documented.
	d := s.plan.cfg.Dims
	perObj := 1.0
	for i := 0; i < d; i++ {
		h := float64(s.plan.maxLevel[i])
		c := 2*h + 2 // interval cover + slack
		e := 2 * (h + 1)
		perObj *= c + e
	}
	n := float64(s.count)
	return perObj * perObj * n * n
}
