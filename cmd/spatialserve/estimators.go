package main

import (
	"fmt"

	spatial "repro"
	"repro/geo"
)

// Kind-specific servable wrappers: each adapts one public estimator type
// to the kind-erased server interface.

func buildServable(kind string, cfg configRequest) (servable, error) {
	k, err := spatial.ParseKind(kind)
	if err != nil {
		return nil, err
	}
	switch k {
	case spatial.KindJoin:
		mode := spatial.ModeTransform
		switch cfg.Mode {
		case "", "transform":
		case "common-endpoints":
			mode = spatial.ModeCommonEndpoints
		default:
			return nil, fmt.Errorf("unknown join mode %q", cfg.Mode)
		}
		e, err := spatial.NewJoinEstimator(spatial.JoinConfig{
			Dims: cfg.Dims, DomainSize: cfg.DomainSize, Sizing: cfg.sizing(),
			MaxLevel: cfg.MaxLevel, Mode: mode, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &joinServable{e}, nil
	case spatial.KindRange:
		e, err := spatial.NewRangeEstimator(spatial.RangeConfig{
			Dims: cfg.Dims, DomainSize: cfg.DomainSize, Sizing: cfg.sizing(),
			MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &rangeServable{e}, nil
	case spatial.KindEpsJoin:
		e, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
			Dims: cfg.Dims, DomainSize: cfg.DomainSize, Eps: cfg.Eps,
			Sizing: cfg.sizing(), MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &epsJoinServable{e}, nil
	case spatial.KindContainment:
		e, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{
			Dims: cfg.Dims, DomainSize: cfg.DomainSize, Sizing: cfg.sizing(),
			MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &containmentServable{e}, nil
	}
	return nil, fmt.Errorf("unknown estimator kind %q", kind)
}

// restoreServable reconstructs a servable estimator from a snapshot
// envelope, dispatching on the embedded kind.
func restoreServable(data []byte) (servable, error) {
	k, err := spatial.SnapshotKind(data)
	if err != nil {
		return nil, err
	}
	switch k {
	case spatial.KindJoin:
		e, err := spatial.UnmarshalJoinEstimator(data)
		if err != nil {
			return nil, err
		}
		return &joinServable{e}, nil
	case spatial.KindRange:
		e, err := spatial.UnmarshalRangeEstimator(data)
		if err != nil {
			return nil, err
		}
		return &rangeServable{e}, nil
	case spatial.KindEpsJoin:
		e, err := spatial.UnmarshalEpsJoinEstimator(data)
		if err != nil {
			return nil, err
		}
		return &epsJoinServable{e}, nil
	case spatial.KindContainment:
		e, err := spatial.UnmarshalContainmentEstimator(data)
		if err != nil {
			return nil, err
		}
		return &containmentServable{e}, nil
	}
	return nil, fmt.Errorf("unknown snapshot kind %v", k)
}

// applyBatch runs insert bulk-style and delete one-by-one (deletes are
// rare corrections; inserts are the hot path).
func applyBatch[T any](op string, items []T, insertBulk func([]T) error, del func(T) error) (int, error) {
	if op == "insert" {
		if err := insertBulk(items); err != nil {
			return 0, err
		}
		return len(items), nil
	}
	for i, it := range items {
		if err := del(it); err != nil {
			return i, err
		}
	}
	return len(items), nil
}

// errNoBatch is the estimateBatch implementation of the parameterless
// estimator kinds: their estimate takes no query, so there is nothing to
// batch - the single estimate is already memoized per view.
func errNoBatch(kind spatial.Kind) (*batchEstimateResponse, error) {
	return nil, fmt.Errorf("%v estimators take no query; batch estimates are supported by range estimators only", kind)
}

// ---- join ----

type joinServable struct{ e *spatial.JoinEstimator }

func (j *joinServable) kind() spatial.Kind { return spatial.KindJoin }
func (j *joinServable) instances() int     { return j.e.Instances() }
func (j *joinServable) spaceWords() int    { return j.e.SpaceWords() }

func (j *joinServable) configJSON() any {
	cfg := j.e.Config()
	return configRequest{
		Dims: cfg.Dims, DomainSize: cfg.DomainSize, Mode: cfg.Mode.String(),
		MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		Instances: j.e.Instances(), Groups: j.e.Groups(),
	}
}

func (j *joinServable) counts() map[string]int64 {
	return map[string]int64{"left": j.e.LeftCount(), "right": j.e.RightCount()}
}

func (j *joinServable) update(req *updateRequest) (int, error) {
	if len(req.Points) > 0 {
		return 0, fmt.Errorf("join estimators take rects, not points")
	}
	rects := decodeRects(req.Rects)
	switch req.Side {
	case "left":
		return applyBatch(req.Op, rects, j.e.InsertLeftBulk, j.e.DeleteLeft)
	case "right":
		return applyBatch(req.Op, rects, j.e.InsertRightBulk, j.e.DeleteRight)
	}
	return 0, fmt.Errorf("join update needs side \"left\" or \"right\", got %q", req.Side)
}

func (j *joinServable) estimate(req *estimateRequest) (*estimateResponse, error) {
	// Estimate and counts come from ONE consistent view, so the reported
	// selectivity always divides by the sizes the estimate was computed
	// against, even under concurrent writers.
	var est spatial.Estimate
	var left, right int64
	var err error
	if req.Extended {
		est, left, right, err = j.e.CardinalityExtendedWithCounts()
	} else {
		est, left, right, err = j.e.CardinalityWithCounts()
	}
	if err != nil {
		return nil, err
	}
	counts := map[string]int64{"left": left, "right": right}
	return estimateWire(spatial.KindJoin, est, counts, float64(left)*float64(right)), nil
}

func (j *joinServable) estimateBatch(req *estimateRequest) (*batchEstimateResponse, error) {
	return errNoBatch(spatial.KindJoin)
}

func (j *joinServable) snapshot() ([]byte, error)       { return j.e.Marshal() }
func (j *joinServable) mergeSnapshot(data []byte) error { return j.e.MergeSnapshot(data) }

func (j *joinServable) setTap(tap spatial.UpdateTap)               { j.e.SetUpdateTap(tap) }
func (j *joinServable) applyRecord(rec spatial.UpdateRecord) error { return j.e.Apply(rec) }
func (j *joinServable) validateRecord(rec spatial.UpdateRecord) error {
	return j.e.ValidateRecord(rec)
}
func (j *joinServable) applyUntapped(rec spatial.UpdateRecord) error { return j.e.ApplyUntapped(rec) }

// ---- range ----

type rangeServable struct{ e *spatial.RangeEstimator }

func (s *rangeServable) kind() spatial.Kind { return spatial.KindRange }
func (s *rangeServable) instances() int     { return s.e.Instances() }
func (s *rangeServable) spaceWords() int    { return s.e.SpaceWords() }

func (s *rangeServable) configJSON() any {
	cfg := s.e.Config()
	return configRequest{
		Dims: cfg.Dims, DomainSize: cfg.DomainSize,
		MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		Instances: s.e.Instances(), Groups: s.e.Groups(),
	}
}

func (s *rangeServable) counts() map[string]int64 {
	return map[string]int64{"data": s.e.Count()}
}

func (s *rangeServable) update(req *updateRequest) (int, error) {
	if len(req.Points) > 0 {
		return 0, fmt.Errorf("range estimators take rects, not points")
	}
	if req.Side != "" && req.Side != "data" {
		return 0, fmt.Errorf("range update takes no side, got %q", req.Side)
	}
	return applyBatch(req.Op, decodeRects(req.Rects), s.e.InsertBulk, s.e.Delete)
}

func (s *rangeServable) estimate(req *estimateRequest) (*estimateResponse, error) {
	if len(req.Query) == 0 {
		return nil, fmt.Errorf("range estimate needs a query hyper-rectangle")
	}
	est, count, err := s.e.EstimateWithCount(decodeQuery(req.Query))
	if err != nil {
		return nil, err
	}
	counts := map[string]int64{"data": count}
	return estimateWire(spatial.KindRange, est, counts, float64(count)), nil
}

// estimateBatch answers a Queries batch with per-query error isolation:
// malformed queries (empty, wrong dimensionality, inverted or
// out-of-domain intervals) yield a result carrying an Error, and every
// valid query is still answered - all from ONE pinned view, so the valid
// results stay mutually consistent. Fan-out aggregators rely on this: one
// bad query in a scattered batch must not poison the node's whole answer.
func (s *rangeServable) estimateBatch(req *estimateRequest) (*batchEstimateResponse, error) {
	resp := &batchEstimateResponse{Results: make([]*estimateResponse, len(req.Queries))}
	var valid []geo.HyperRect
	var validIdx []int
	for i, q := range req.Queries {
		if len(q) == 0 {
			resp.Results[i] = &estimateResponse{Kind: spatial.KindRange.String(),
				Error: fmt.Sprintf("batch query %d is empty", i)}
			continue
		}
		hq := decodeQuery(q)
		if err := s.e.ValidateQuery(hq); err != nil {
			resp.Results[i] = &estimateResponse{Kind: spatial.KindRange.String(),
				Error: fmt.Sprintf("batch query %d: %v", i, err)}
			continue
		}
		valid = append(valid, hq)
		validIdx = append(validIdx, i)
	}
	if len(valid) > 0 {
		ests, count, err := s.e.EstimateBatch(valid)
		if err != nil {
			return nil, err
		}
		counts := map[string]int64{"data": count}
		for j, est := range ests {
			resp.Results[validIdx[j]] = estimateWire(spatial.KindRange, est, counts, float64(count))
		}
	}
	return resp, nil
}

func (s *rangeServable) snapshot() ([]byte, error)       { return s.e.Marshal() }
func (s *rangeServable) mergeSnapshot(data []byte) error { return s.e.MergeSnapshot(data) }

func (s *rangeServable) setTap(tap spatial.UpdateTap)               { s.e.SetUpdateTap(tap) }
func (s *rangeServable) applyRecord(rec spatial.UpdateRecord) error { return s.e.Apply(rec) }
func (s *rangeServable) validateRecord(rec spatial.UpdateRecord) error {
	return s.e.ValidateRecord(rec)
}
func (s *rangeServable) applyUntapped(rec spatial.UpdateRecord) error { return s.e.ApplyUntapped(rec) }

// ---- epsilon-join ----

type epsJoinServable struct{ e *spatial.EpsJoinEstimator }

func (s *epsJoinServable) kind() spatial.Kind { return spatial.KindEpsJoin }
func (s *epsJoinServable) instances() int     { return s.e.Instances() }
func (s *epsJoinServable) spaceWords() int    { return s.e.SpaceWords() }

func (s *epsJoinServable) configJSON() any {
	cfg := s.e.Config()
	return configRequest{
		Dims: cfg.Dims, DomainSize: cfg.DomainSize, Eps: cfg.Eps,
		MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		Instances: s.e.Instances(), Groups: s.e.Groups(),
	}
}

func (s *epsJoinServable) counts() map[string]int64 {
	return map[string]int64{"left": s.e.LeftCount(), "right": s.e.RightCount()}
}

func (s *epsJoinServable) update(req *updateRequest) (int, error) {
	if len(req.Rects) > 0 {
		return 0, fmt.Errorf("epsjoin estimators take points, not rects")
	}
	pts := decodePoints(req.Points)
	switch req.Side {
	case "left":
		return applyBatch(req.Op, pts, s.e.InsertLeftBulk, s.e.DeleteLeft)
	case "right":
		return applyBatch(req.Op, pts, s.e.InsertRightBulk, s.e.DeleteRight)
	}
	return 0, fmt.Errorf("epsjoin update needs side \"left\" or \"right\", got %q", req.Side)
}

func (s *epsJoinServable) estimate(req *estimateRequest) (*estimateResponse, error) {
	est, left, right, err := s.e.CardinalityWithCounts()
	if err != nil {
		return nil, err
	}
	counts := map[string]int64{"left": left, "right": right}
	return estimateWire(spatial.KindEpsJoin, est, counts, float64(left)*float64(right)), nil
}

func (s *epsJoinServable) estimateBatch(req *estimateRequest) (*batchEstimateResponse, error) {
	return errNoBatch(spatial.KindEpsJoin)
}

func (s *epsJoinServable) snapshot() ([]byte, error)       { return s.e.Marshal() }
func (s *epsJoinServable) mergeSnapshot(data []byte) error { return s.e.MergeSnapshot(data) }

func (s *epsJoinServable) setTap(tap spatial.UpdateTap)               { s.e.SetUpdateTap(tap) }
func (s *epsJoinServable) applyRecord(rec spatial.UpdateRecord) error { return s.e.Apply(rec) }
func (s *epsJoinServable) validateRecord(rec spatial.UpdateRecord) error {
	return s.e.ValidateRecord(rec)
}
func (s *epsJoinServable) applyUntapped(rec spatial.UpdateRecord) error {
	return s.e.ApplyUntapped(rec)
}

// ---- containment ----

type containmentServable struct{ e *spatial.ContainmentEstimator }

func (s *containmentServable) kind() spatial.Kind { return spatial.KindContainment }
func (s *containmentServable) instances() int     { return s.e.Instances() }
func (s *containmentServable) spaceWords() int    { return s.e.SpaceWords() }

func (s *containmentServable) configJSON() any {
	cfg := s.e.Config()
	return configRequest{
		Dims: cfg.Dims, DomainSize: cfg.DomainSize,
		MaxLevel: cfg.MaxLevel, Seed: cfg.Seed,
		Instances: s.e.Instances(), Groups: s.e.Groups(),
	}
}

func (s *containmentServable) counts() map[string]int64 {
	return map[string]int64{"inner": s.e.InnerCount(), "outer": s.e.OuterCount()}
}

func (s *containmentServable) update(req *updateRequest) (int, error) {
	if len(req.Points) > 0 {
		return 0, fmt.Errorf("containment estimators take rects, not points")
	}
	rects := decodeRects(req.Rects)
	switch req.Side {
	case "inner":
		return applyBatch(req.Op, rects, s.e.InsertInnerBulk, s.e.DeleteInner)
	case "outer":
		return applyBatch(req.Op, rects, s.e.InsertOuterBulk, s.e.DeleteOuter)
	}
	return 0, fmt.Errorf("containment update needs side \"inner\" or \"outer\", got %q", req.Side)
}

func (s *containmentServable) estimate(req *estimateRequest) (*estimateResponse, error) {
	est, inner, outer, err := s.e.CardinalityWithCounts()
	if err != nil {
		return nil, err
	}
	counts := map[string]int64{"inner": inner, "outer": outer}
	return estimateWire(spatial.KindContainment, est, counts, float64(inner)*float64(outer)), nil
}

func (s *containmentServable) estimateBatch(req *estimateRequest) (*batchEstimateResponse, error) {
	return errNoBatch(spatial.KindContainment)
}

func (s *containmentServable) snapshot() ([]byte, error)       { return s.e.Marshal() }
func (s *containmentServable) mergeSnapshot(data []byte) error { return s.e.MergeSnapshot(data) }

func (s *containmentServable) setTap(tap spatial.UpdateTap)               { s.e.SetUpdateTap(tap) }
func (s *containmentServable) applyRecord(rec spatial.UpdateRecord) error { return s.e.Apply(rec) }
func (s *containmentServable) validateRecord(rec spatial.UpdateRecord) error {
	return s.e.ValidateRecord(rec)
}
func (s *containmentServable) applyUntapped(rec spatial.UpdateRecord) error {
	return s.e.ApplyUntapped(rec)
}
