package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	spatial "repro"
	"repro/geo"
	"repro/ingestclient"
	"repro/internal/trace"
)

// The workload side of the harness: targets (tenant x estimator kind),
// the wire shapes shared with spatialserve, and the three worker types -
// JSON update writers, streaming-ingest writers, and estimate readers.
// Writers follow the acked-reference-log discipline: an operation enters
// a worker's log if and only if the cluster acknowledged it, which is
// exactly the set the oracle replays.

// target is one estimator the load run drives: a tenant ("" = default)
// plus the estimator's name and kind. The configs mirror newRefs.
type target struct {
	tenant string
	name   string
	kind   string
}

// qualified returns the registry key ("acme/j" or "j") - the form the
// ingest protocol and ingestclient take.
func (t target) qualified() string {
	if t.tenant == "" {
		return t.name
	}
	return t.tenant + "/" + t.name
}

// path returns the HTTP route prefix for this target on a node.
func (t target) path(base string) string {
	if t.tenant == "" {
		return base + "/v1/estimators/" + t.name
	}
	return base + "/v1/tenants/" + t.tenant + "/estimators/" + t.name
}

// refOp is one acknowledged mutation: the target it hit and the record,
// in the estimator-library's own update vocabulary.
type refOp struct {
	target int
	rec    spatial.UpdateRecord
}

// wireRect converts a geo rect to the JSON update wire form.
func wireRect(r geo.HyperRect) [][2]uint64 {
	out := make([][2]uint64, len(r))
	for i, iv := range r {
		out[i] = [2]uint64{iv.Lo, iv.Hi}
	}
	return out
}

// updateWireRequest is the POST /update body (spatialserve's
// updateRequest).
type updateWireRequest struct {
	Op     string        `json:"op,omitempty"`
	Side   string        `json:"side,omitempty"`
	Rects  [][][2]uint64 `json:"rects,omitempty"`
	Points [][]uint64    `json:"points,omitempty"`
}

// wireSide maps the library's update side to the JSON wire string.
func wireSide(s spatial.UpdateSide) string {
	switch s {
	case spatial.SideLeft:
		return "left"
	case spatial.SideRight:
		return "right"
	case spatial.SideInner:
		return "inner"
	case spatial.SideOuter:
		return "outer"
	}
	return ""
}

// randRecord draws one update for a target: mostly inserts, with an
// occasional delete of a record this worker already got acknowledged
// (so the delete is always of a present object).
func randRecord(rng *rand.Rand, kind string, dom uint64, history []spatial.UpdateRecord) spatial.UpdateRecord {
	if len(history) > 0 && rng.Intn(8) == 0 {
		rec := history[rng.Intn(len(history))]
		rec.Op = spatial.OpDelete
		return rec
	}
	span := func() geo.Interval {
		lo := rng.Uint64() % (dom - 1)
		return geo.NewInterval(lo, lo+1+rng.Uint64()%(dom-lo-1))
	}
	rec := spatial.UpdateRecord{Op: spatial.OpInsert}
	switch kind {
	case "join":
		rec.Side = spatial.SideLeft
		if rng.Intn(2) == 1 {
			rec.Side = spatial.SideRight
		}
		rec.Rect = geo.HyperRect{span(), span()}
	case "range":
		rec.Side = spatial.SideData
		rec.Rect = geo.HyperRect{span()}
	case "epsjoin":
		rec.Side = spatial.SideLeft
		if rng.Intn(2) == 1 {
			rec.Side = spatial.SideRight
		}
		rec.Point = geo.Point{rng.Uint64() % dom, rng.Uint64() % dom}
	case "containment":
		rec.Side = spatial.SideInner
		if rng.Intn(2) == 1 {
			rec.Side = spatial.SideOuter
		}
		rec.Rect = geo.HyperRect{span(), span()}
	}
	return rec
}

// pickTarget draws a target index: zipf-skewed when the run configures
// skew (hot keys), uniform otherwise.
func pickTarget(rng *rand.Rand, zipf *rand.Zipf, n int) int {
	if zipf != nil {
		return int(zipf.Uint64())
	}
	return rng.Intn(n)
}

// newZipf builds the worker's skew source (nil when disabled).
func newZipf(rng *rand.Rand, s float64, n int) *rand.Zipf {
	if s <= 1 || n < 2 {
		return nil
	}
	return rand.NewZipf(rng, s, 1, uint64(n-1))
}

// mintTraceparent draws a fresh W3C trace context from the worker's rng
// and returns the header value plus the trace ID's hex form, so client-
// side op records and server-side /admin/trace segments share one ID.
func mintTraceparent(rng *rand.Rand) (header, traceID string) {
	var tid trace.TraceID
	var sid trace.SpanID
	rng.Read(tid[:])
	rng.Read(sid[:])
	if tid.IsZero() {
		tid[15] = 1
	}
	return trace.Traceparent(tid, sid), tid.String()
}

// postUpdate sends one idempotent JSON update and resolves it to a
// definitive outcome: retries with the same Idempotency-Key ride the
// server's exactly-once window, so an ambiguous failure (connection
// error, 5xx during a node kill) never double-applies and never silently
// drops an acked op. Every attempt carries the op's X-Request-Id and
// traceparent, so retries of one op land in one trace. Returns whether
// the op is durably applied.
func (r *runner) postUpdate(ctx context.Context, url, key, traceparent string, body []byte) (bool, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return false, fmt.Errorf("unresolved after %d attempts: %w (last: %v)", attempt, ctx.Err(), lastErr)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		req.Header.Set("X-Request-Id", key)
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := r.hc.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				return true, nil
			case resp.StatusCode >= 400 && resp.StatusCode < 500 &&
				resp.StatusCode != http.StatusConflict &&
				resp.StatusCode != http.StatusTooManyRequests &&
				resp.StatusCode != http.StatusRequestTimeout:
				// A definitive rejection: not applied, not retryable.
				return false, nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Duration(20+attempt*20) * time.Millisecond):
		}
	}
}

// updateWorker is the closed-loop JSON writer: pick a (possibly hot)
// target, post one idempotent update via a rotating node, and log it as
// acked once the outcome is definitive. phasectx ends the loop; opctx
// survives the phase so in-flight ambiguity resolves during quiesce.
func (r *runner) updateWorker(phasectx, opctx context.Context, id int, ps *phaseStats) []refOp {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(id)*7919))
	zipf := newZipf(rng, r.cfg.ZipfS, len(r.targets))
	h := ps.hist("update")
	history := make([][]spatial.UpdateRecord, len(r.targets))
	var acked []refOp
	for n := 0; ; n++ {
		if phasectx.Err() != nil {
			return acked
		}
		ti := pickTarget(rng, zipf, len(r.targets))
		tg := r.targets[ti]
		rec := randRecord(rng, tg.kind, r.cfg.Dom, history[ti])
		wire := updateWireRequest{Side: wireSide(rec.Side)}
		if rec.Op == spatial.OpDelete {
			wire.Op = "delete"
		}
		if rec.Point != nil {
			wire.Points = [][]uint64{rec.Point}
		} else {
			wire.Rects = [][][2]uint64{wireRect(rec.Rect)}
		}
		body, _ := json.Marshal(wire)
		key := fmt.Sprintf("%s-w%d-%d", ps.name, id, n)
		tp, traceID := mintTraceparent(rng)

		r.gate.RLock()
		node := r.node(rng.Intn(1 << 20))
		start := time.Now()
		applied, err := r.postUpdate(opctx, tg.path(node)+"/update", key, tp, body)
		d := time.Since(start)
		r.gate.RUnlock()
		if err != nil {
			// The op's outcome is unknown and the grace window is gone: the
			// acked log can no longer be trusted either way.
			h.fail()
			r.fatalf("update worker %d: ambiguous op %s: %v", id, key, err)
			return acked
		}
		if !applied {
			h.fail()
			continue
		}
		h.observeOp(d, start, "rid="+key+" trace="+traceID)
		acked = append(acked, refOp{target: ti, rec: rec})
		if rec.Op == spatial.OpDelete {
			history[ti] = removeRec(history[ti], rec)
		} else {
			history[ti] = append(history[ti], rec)
		}
	}
}

// sameObject reports whether two records describe the same side and
// geometry (ignoring Op) - the identity removeRec matches on.
func sameObject(a, b spatial.UpdateRecord) bool {
	if a.Side != b.Side || len(a.Rect) != len(b.Rect) || len(a.Point) != len(b.Point) {
		return false
	}
	for i := range a.Rect {
		if a.Rect[i] != b.Rect[i] {
			return false
		}
	}
	for i := range a.Point {
		if a.Point[i] != b.Point[i] {
			return false
		}
	}
	return true
}

// removeRec drops one occurrence of rec's object from the history so a
// deleted object is not deleted twice.
func removeRec(hist []spatial.UpdateRecord, rec spatial.UpdateRecord) []spatial.UpdateRecord {
	for i, h := range hist {
		if sameObject(h, rec) {
			return append(hist[:i], hist[i+1:]...)
		}
	}
	return hist
}

// streamWriter is one streaming-ingest session and its sent history.
// Exactly-once ordered delivery means that after a successful Flush the
// whole history is acked, in order - the stream's reference log.
type streamWriter struct {
	client  *ingestclient.Client
	session string
	target  int
	sent    []spatial.UpdateRecord
	// history holds the not-yet-deleted inserts, so in-session deletes
	// always target a present object.
	history []spatial.UpdateRecord
}

// streamWorker drives one spatial-ingest/1 session against a join-kind
// target: batches of records with occasional in-session deletes, Send
// latency recorded per batch (closed-loop: Send blocks while the credit
// window is full, so it measures real backpressure).
func (r *runner) streamWorker(phasectx context.Context, id int, ps *phaseStats, sw *streamWriter) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 104729 + int64(id)*7919))
	h := ps.hist("stream")
	for batchNo := 1; ; batchNo++ {
		if phasectx.Err() != nil {
			return
		}
		recs := make([]spatial.UpdateRecord, 0, r.cfg.BatchSize)
		for i := 0; i < r.cfg.BatchSize; i++ {
			rec := randRecord(rng, "join", r.cfg.Dom, sw.history)
			if rec.Op == spatial.OpDelete {
				sw.history = removeRec(sw.history, rec)
			} else {
				sw.history = append(sw.history, rec)
			}
			recs = append(recs, rec)
		}
		r.gate.RLock()
		start := time.Now()
		err := sw.client.Send(recs)
		d := time.Since(start)
		r.gate.RUnlock()
		if err != nil {
			// Terminal stream error: the sent history's applied prefix is
			// unknown, so the oracle cannot be satisfied.
			h.fail()
			r.fatalf("stream worker %d: terminal: %v", id, err)
			return
		}
		// The server's ingest.batch spans carry (session, seq) attrs; this
		// reference lets the report's worst batch be found among them.
		h.observeOp(d, start, fmt.Sprintf("session=%s batch=%d", sw.session, batchNo))
		sw.sent = append(sw.sent, recs...)
	}
}

// estimateWorker is the closed-loop reader: zipf-picked targets, single
// estimates on every kind and batched range estimates, via rotating
// nodes. Failures are recorded, not fatal - phases that kill nodes
// expect a bounded error window.
func (r *runner) estimateWorker(phasectx context.Context, id int, ps *phaseStats, allowPartial bool) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 224737 + int64(id)*7919))
	zipf := newZipf(rng, r.cfg.ZipfS, len(r.targets))
	single := ps.hist("estimate")
	batch := ps.hist("estimate-batch")
	for n := 0; ; n++ {
		if phasectx.Err() != nil {
			return
		}
		ti := pickTarget(rng, zipf, len(r.targets))
		tg := r.targets[ti]
		ec := ingestclient.NewEstimateClient(r.node(rng.Intn(1<<20)), r.hc)
		ctx, cancel := context.WithTimeout(phasectx, 10*time.Second)
		rid := fmt.Sprintf("%s-e%d-%d", ps.name, id, n)
		tp, traceID := mintTraceparent(rng)
		ref := "rid=" + rid + " trace=" + traceID
		var err error
		h := single
		if tg.kind == "range" {
			q := wireRect(geo.HyperRect{geo.NewInterval(0, r.cfg.Dom/2+rng.Uint64()%(r.cfg.Dom/2))})
			if n%2 == 0 {
				h = batch
				qs := [][][2]uint64{q, wireRect(geo.HyperRect{geo.NewInterval(r.cfg.Dom/4, r.cfg.Dom-1)})}
				start := time.Now()
				_, err = ec.EstimateBatch(ctx, tg.qualified(), qs, allowPartial)
				recordOutcome(h, start, time.Since(start), err, "")
				cancel()
				continue
			}
			start := time.Now()
			_, err = ec.Estimate(ctx, tg.qualified(), ingestclient.EstimateOptions{
				Query: q, AllowPartial: allowPartial, RequestID: rid, Traceparent: tp,
			})
			recordOutcome(h, start, time.Since(start), err, ref)
			cancel()
			continue
		}
		start := time.Now()
		_, err = ec.Estimate(ctx, tg.qualified(), ingestclient.EstimateOptions{
			AllowPartial: allowPartial, RequestID: rid, Traceparent: tp,
		})
		recordOutcome(h, start, time.Since(start), err, ref)
		cancel()
	}
}

// recordOutcome folds one op's result into its histogram, pinning the
// worst op's start time and reference.
func recordOutcome(h *hist, start time.Time, d time.Duration, err error, ref string) {
	if err != nil {
		h.fail()
		return
	}
	h.observeOp(d, start, ref)
}
