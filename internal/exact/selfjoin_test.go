package exact

import (
	"testing"

	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/dyadic"
)

// sjBrute computes SJ(Xw) by explicitly building the frequency vectors
// f_w over dyadic hyper-rectangles, for 1-d inputs.
func sj1DBrute(dom dyadic.Domain, maxLevel int, rects []geo.HyperRect) (sjI, sjE float64) {
	fI := map[uint64]float64{}
	fE := map[uint64]float64{}
	for _, r := range rects {
		for _, id := range dom.CoverMax(r[0].Lo, r[0].Hi, maxLevel, nil) {
			fI[id]++
		}
		for _, id := range dom.PointCoverMax(r[0].Lo, maxLevel, nil) {
			fE[id]++
		}
		for _, id := range dom.PointCoverMax(r[0].Hi, maxLevel, nil) {
			fE[id]++
		}
	}
	for _, f := range fI {
		sjI += f * f
	}
	for _, f := range fE {
		sjE += f * f
	}
	return sjI, sjE
}

func TestSelfJoin1D(t *testing.T) {
	dom := dyadic.MustNew(8)
	rects := datagen.MustRects(datagen.Spec{N: 120, Dims: 1, Domain: 256, Seed: 5})
	for _, ml := range []int{-1, 0, 3, 8} {
		sj, err := SelfJoinSizes([]dyadic.Domain{dom}, []int{ml}, rects)
		if err != nil {
			t.Fatal(err)
		}
		effML := ml
		if ml < 0 {
			effML = 8
		}
		wantI, wantE := sj1DBrute(dom, effML, rects)
		if sj.PerW[0] != wantI {
			t.Fatalf("ml=%d: SJ(X_I) = %g, want %g", ml, sj.PerW[0], wantI)
		}
		if sj.PerW[1] != wantE {
			t.Fatalf("ml=%d: SJ(X_E) = %g, want %g", ml, sj.PerW[1], wantE)
		}
		if sj.Total != wantI+wantE {
			t.Fatalf("ml=%d: total = %g, want %g", ml, sj.Total, wantI+wantE)
		}
	}
}

// TestSelfJoin2DWorkedExample checks the 2-d frequencies on a hand-computed
// case: one rectangle over domain 4x4.
func TestSelfJoin2DWorkedExample(t *testing.T) {
	dom := dyadic.MustNew(2)
	// r = [0,2] x [1,1]: x-cover {2,6} (2 nodes), x-endpoints covers
	// {4,2,1} + {6,3,1} (6 ids), y-cover of [1,1] = {5} wait - canonical
	// cover of a point is its leaf {5} (1 node), y-endpoint covers
	// {5,2,1} twice (6 ids, each ancestor with multiplicity 2).
	rects := []geo.HyperRect{{geo.Interval{Lo: 0, Hi: 2}, geo.Interval{Lo: 1, Hi: 1}}}
	sj, err := SelfJoinSizes([]dyadic.Domain{dom, dom}, []int{-1, -1}, rects)
	if err != nil {
		t.Fatal(err)
	}
	// w encoding: bit0 = dim0 letter (E if set), bit1 = dim1 letter.
	// SJ(X_II): 2 x-cover nodes * 1 y-cover node, all f=1 -> 2.
	if sj.PerW[0] != 2 {
		t.Errorf("SJ(X_II) = %g, want 2", sj.PerW[0])
	}
	// SJ(X_EI): 6 x-endpoint ids (all distinct: 4,2,1,6,3,1 - id 1 twice!)
	// times 1 y-cover node. f values: id1 has multiplicity 2 -> 4; ids
	// 4,2,6,3 -> 1 each. Total 4+4 = 8.
	if sj.PerW[1] != 8 {
		t.Errorf("SJ(X_EI) = %g, want 8", sj.PerW[1])
	}
	// SJ(X_IE): 2 x-cover nodes times y-endpoint ids {5,2,1}x2 (each with
	// multiplicity 2 -> f=2, squared 4, three ids) -> 2 * 12 = 24.
	if sj.PerW[2] != 24 {
		t.Errorf("SJ(X_IE) = %g, want 24", sj.PerW[2])
	}
	// SJ(X_EE): x-endpoint f: {4:1,2:1,1:2,6:1,3:1}, y-endpoint f:
	// {5:2,2:2,1:2}. Cross product f = fx*fy; sum of squares =
	// (sum fx^2)(sum fy^2) = (1+1+4+1+1)*(4+4+4) = 8*12 = 96.
	if sj.PerW[3] != 96 {
		t.Errorf("SJ(X_EE) = %g, want 96", sj.PerW[3])
	}
}

func TestSelfJoinValidation(t *testing.T) {
	dom := dyadic.MustNew(4)
	if _, err := SelfJoinSizes(nil, nil, nil); err == nil {
		t.Error("no domains should fail")
	}
	if _, err := SelfJoinSizes([]dyadic.Domain{dom}, []int{1, 2}, nil); err == nil {
		t.Error("mismatched maxLevel should fail")
	}
	bad := []geo.HyperRect{geo.Rect(0, 1, 0, 1)}
	if _, err := SelfJoinSizes([]dyadic.Domain{dom}, []int{-1}, bad); err == nil {
		t.Error("dimensionality mismatch should fail")
	}
}

func TestPointAndBoxSelfJoin(t *testing.T) {
	dom := dyadic.MustNew(6)
	doms := []dyadic.Domain{dom, dom}
	ml := []int{-1, -1}
	pts := datagen.MustPoints(datagen.Spec{N: 50, Dims: 2, Domain: 64, Seed: 3})
	sjP, err := PointSelfJoin(doms, ml, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: product point covers.
	freq := map[[2]uint64]float64{}
	for _, p := range pts {
		for _, id1 := range dom.PointCover(p[0], nil) {
			for _, id2 := range dom.PointCover(p[1], nil) {
				freq[[2]uint64{id1, id2}]++
			}
		}
	}
	var want float64
	for _, f := range freq {
		want += f * f
	}
	if sjP != want {
		t.Fatalf("PointSelfJoin = %g, want %g", sjP, want)
	}

	boxes := datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: 64, Seed: 8})
	sjB, err := BoxSelfJoin(doms, ml, boxes)
	if err != nil {
		t.Fatal(err)
	}
	freqB := map[[2]uint64]float64{}
	for _, b := range boxes {
		for _, id1 := range dom.Cover(b[0].Lo, b[0].Hi, nil) {
			for _, id2 := range dom.Cover(b[1].Lo, b[1].Hi, nil) {
				freqB[[2]uint64{id1, id2}]++
			}
		}
	}
	var wantB float64
	for _, f := range freqB {
		wantB += f * f
	}
	if sjB != wantB {
		t.Fatalf("BoxSelfJoin = %g, want %g", sjB, wantB)
	}
}

// TestSelfJoinGrowth: SJ grows roughly quadratically in object count for a
// fixed distribution - the property that keeps the Theorem 1 space
// requirement constant as datasets grow (Figure 8).
func TestSelfJoinGrowth(t *testing.T) {
	dom := dyadic.MustNew(10)
	sjAt := func(n int) float64 {
		rects := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: 1024, Seed: 77})
		sj, err := SelfJoinSizes([]dyadic.Domain{dom}, []int{-1}, rects)
		if err != nil {
			t.Fatal(err)
		}
		return sj.Total
	}
	sj1, sj2 := sjAt(200), sjAt(400)
	ratio := sj2 / sj1
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("SJ growth ratio %g outside quadratic-ish band [2.5, 6]", ratio)
	}
}
