package spatial

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/geo"
	"repro/internal/core"
)

// Versioned full-estimator snapshot envelope ("SPE1").
//
// The core package serializes bare sketches ("SPK1"): counters plus the
// internal plan geometry. That is enough to merge into a pre-agreed
// estimator but not to *serve*: a receiver cannot reconstruct the
// estimator, and public configuration the plan does not capture -
// DomainSize (1000 and 1024 share a plan), Mode, Eps - is silently lost.
//
// The envelope wraps the core blobs with the full public configuration:
//
//	magic "SPE1" | version | kind | side
//	dims | domainSize | mode | maxLevel (resolved cap; 0 = uncapped)
//	eps | seed | instances | groups
//	nblobs | (len | SPK1 bytes)*
//
// Every estimator type gains Marshal (emit a snapshot of the whole
// estimator), Unmarshal<Kind>Estimator (reconstruct a working estimator
// from one), and MergeSnapshot (fold a snapshot into an existing
// estimator, rejecting ANY public-config mismatch at decode time rather
// than by silent counter corruption). All integers are little-endian.

// SnapshotVersion is the current snapshot envelope version. Decoders
// reject snapshots from a different version.
const SnapshotVersion = 1

const envelopeMagic = 0x53504531 // "SPE1"

// Kind identifies the estimator type a snapshot was taken from.
type Kind uint32

const (
	// KindJoin is a JoinEstimator snapshot (either mode).
	KindJoin Kind = 1
	// KindRange is a RangeEstimator snapshot.
	KindRange Kind = 2
	// KindEpsJoin is an EpsJoinEstimator snapshot.
	KindEpsJoin Kind = 3
	// KindContainment is a ContainmentEstimator snapshot.
	KindContainment Kind = 4
)

// String returns the kind's wire name ("join", "range", "epsjoin",
// "containment"), the inverse of ParseKind.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindRange:
		return "range"
	case KindEpsJoin:
		return "epsjoin"
	case KindContainment:
		return "containment"
	}
	return fmt.Sprintf("Kind(%d)", uint32(k))
}

// ParseKind is the inverse of Kind.String for the known kinds.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "join":
		return KindJoin, nil
	case "range":
		return KindRange, nil
	case "epsjoin":
		return KindEpsJoin, nil
	case "containment":
		return KindContainment, nil
	}
	return 0, fmt.Errorf("spatial: unknown estimator kind %q", s)
}

// snapSide distinguishes full-estimator snapshots from single-side ones
// (MarshalLeft/MarshalRight on a join estimator).
type snapSide uint32

const (
	sideBoth snapSide = iota
	sideLeft
	sideRight
)

func (s snapSide) String() string {
	switch s {
	case sideBoth:
		return "full"
	case sideLeft:
		return "left"
	case sideRight:
		return "right"
	}
	return fmt.Sprintf("side(%d)", uint32(s))
}

// snapHeader is the public configuration carried by every snapshot - the
// fields a receiver needs to reconstruct the estimator and the fields a
// merge must agree on exactly.
type snapHeader struct {
	kind       Kind
	side       snapSide
	dims       uint32 // public dims (containment: before the B.2 doubling)
	domainSize uint64
	mode       uint32 // join only; 0 otherwise
	maxLevel   int32  // resolved level cap; 0 = uncapped
	eps        uint64 // epsilon-join only; 0 otherwise
	seed       uint64
	instances  uint64 // resolved instance count
	groups     uint64 // resolved group count
}

// compatible reports, as an error, the first public-config field on which
// an incoming snapshot header diverges from the receiver's.
func (h snapHeader) compatible(in snapHeader) error {
	switch {
	case in.kind != h.kind:
		return fmt.Errorf("spatial: snapshot of a %v estimator cannot merge into a %v estimator", in.kind, h.kind)
	case in.dims != h.dims:
		return fmt.Errorf("spatial: snapshot dims %d, estimator has %d", in.dims, h.dims)
	case in.domainSize != h.domainSize:
		return fmt.Errorf("spatial: snapshot domain size %d, estimator has %d", in.domainSize, h.domainSize)
	case in.mode != h.mode:
		return fmt.Errorf("spatial: snapshot mode %v, estimator uses %v", Mode(in.mode), Mode(h.mode))
	case in.maxLevel != h.maxLevel:
		return fmt.Errorf("spatial: snapshot level cap %d, estimator has %d", in.maxLevel, h.maxLevel)
	case in.eps != h.eps:
		return fmt.Errorf("spatial: snapshot eps %d, estimator has %d", in.eps, h.eps)
	case in.seed != h.seed:
		return fmt.Errorf("spatial: snapshot seed %d, estimator has %d (xi-families differ)", in.seed, h.seed)
	case in.instances != h.instances:
		return fmt.Errorf("spatial: snapshot has %d instances, estimator has %d", in.instances, h.instances)
	case in.groups != h.groups:
		return fmt.Errorf("spatial: snapshot has %d groups, estimator has %d", in.groups, h.groups)
	}
	return nil
}

// maxSnapshotBlobs bounds the per-snapshot sub-sketch count (no estimator
// carries more than two sketches).
const maxSnapshotBlobs = 2

func marshalEnvelope(h snapHeader, blobs [][]byte) []byte {
	var w bytes.Buffer
	for _, v := range []uint32{envelopeMagic, SnapshotVersion, uint32(h.kind), uint32(h.side), h.dims} {
		binary.Write(&w, binary.LittleEndian, v)
	}
	binary.Write(&w, binary.LittleEndian, h.domainSize)
	binary.Write(&w, binary.LittleEndian, h.mode)
	binary.Write(&w, binary.LittleEndian, h.maxLevel)
	for _, v := range []uint64{h.eps, h.seed, h.instances, h.groups} {
		binary.Write(&w, binary.LittleEndian, v)
	}
	binary.Write(&w, binary.LittleEndian, uint32(len(blobs)))
	for _, b := range blobs {
		binary.Write(&w, binary.LittleEndian, uint64(len(b)))
		w.Write(b)
	}
	return w.Bytes()
}

func unmarshalEnvelope(data []byte) (snapHeader, [][]byte, error) {
	r := bytes.NewReader(data)
	var h snapHeader
	var magic, version, kind, side uint32
	for _, p := range []*uint32{&magic, &version, &kind, &side, &h.dims} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return h, nil, fmt.Errorf("spatial: truncated snapshot header: %w", err)
		}
	}
	if magic != envelopeMagic {
		return h, nil, fmt.Errorf("spatial: bad snapshot magic %#x (not an SPE1 estimator snapshot)", magic)
	}
	if version != SnapshotVersion {
		return h, nil, fmt.Errorf("spatial: snapshot version %d, this build reads version %d", version, SnapshotVersion)
	}
	h.kind, h.side = Kind(kind), snapSide(side)
	if h.kind < KindJoin || h.kind > KindContainment {
		return h, nil, fmt.Errorf("spatial: unknown snapshot kind %d", kind)
	}
	if h.side > sideRight {
		return h, nil, fmt.Errorf("spatial: unknown snapshot side %d", side)
	}
	if h.dims == 0 || h.dims > core.MaxDims {
		return h, nil, fmt.Errorf("spatial: snapshot dims %d outside [1, %d]", h.dims, core.MaxDims)
	}
	if err := binary.Read(r, binary.LittleEndian, &h.domainSize); err != nil {
		return h, nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &h.mode); err != nil {
		return h, nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &h.maxLevel); err != nil {
		return h, nil, err
	}
	for _, p := range []*uint64{&h.eps, &h.seed, &h.instances, &h.groups} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return h, nil, err
		}
	}
	var nblobs uint32
	if err := binary.Read(r, binary.LittleEndian, &nblobs); err != nil {
		return h, nil, err
	}
	if nblobs > maxSnapshotBlobs {
		return h, nil, fmt.Errorf("spatial: snapshot declares %d sub-sketches, max is %d", nblobs, maxSnapshotBlobs)
	}
	blobs := make([][]byte, nblobs)
	for i := range blobs {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return h, nil, err
		}
		if n > uint64(r.Len()) {
			return h, nil, fmt.Errorf("spatial: truncated snapshot: sub-sketch %d declares %d bytes, %d left", i, n, r.Len())
		}
		blobs[i] = make([]byte, n)
		if _, err := r.Read(blobs[i]); err != nil {
			return h, nil, err
		}
	}
	if r.Len() != 0 {
		return h, nil, fmt.Errorf("spatial: %d trailing bytes after snapshot payload", r.Len())
	}
	// Bound the declared sizing against the payload actually carried
	// BEFORE any decoder builds an estimator from the header: every sketch
	// kind stores at least one 8-byte counter per instance per sub-sketch,
	// so a tiny envelope claiming 2^30 instances is rejected here, not by
	// a huge xi-bank allocation in the estimator constructor.
	if h.instances == 0 || h.groups == 0 || h.instances%h.groups != 0 {
		return h, nil, fmt.Errorf("spatial: snapshot groups %d must divide instances %d (both positive)", h.groups, h.instances)
	}
	var payload uint64
	for _, b := range blobs {
		payload += uint64(len(b))
	}
	if h.instances > payload/8 {
		return h, nil, fmt.Errorf("spatial: snapshot declares %d instances but carries only %d payload bytes", h.instances, payload)
	}
	return h, blobs, nil
}

// expectBlobs validates the envelope shape shared by every decoder.
func (h snapHeader) expectBlobs(blobs [][]byte, kind Kind, n int) error {
	if h.kind != kind {
		return fmt.Errorf("spatial: snapshot of a %v estimator, want %v", h.kind, kind)
	}
	if len(blobs) != n {
		return fmt.Errorf("spatial: %v snapshot carries %d sub-sketches, want %d", h.kind, len(blobs), n)
	}
	return nil
}

// ---- update record codec ----
//
// UpdateRecord has a stable binary form so update streams can be written
// ahead to a log and replayed across process generations (internal/wal
// frames and checksums the records; this codec only defines the payload
// bytes). The encoding is versionless by design - it is embedded in WAL
// records whose framing carries the format version - and uses varints so
// typical 2-d records cost a handful of bytes:
//
//	flags  byte    bit 0: delete (else insert); bit 1: point (else rect)
//	side   byte    UpdateSide
//	dims   uvarint
//	coords uvarint*  rect: lo,hi per dimension; point: one per dimension
//
// All varints are unsigned LEB128 (encoding/binary AppendUvarint).

const (
	recFlagDelete = 1 << 0
	recFlagPoint  = 1 << 1
)

// AppendBinary appends the record's stable binary encoding to dst and
// returns the extended slice; DecodeUpdateRecord inverts it.
func (u UpdateRecord) AppendBinary(dst []byte) []byte {
	var flags byte
	if u.Op == OpDelete {
		flags |= recFlagDelete
	}
	if u.Point != nil {
		flags |= recFlagPoint
	}
	dst = append(dst, flags, byte(u.Side))
	if u.Point != nil {
		dst = binary.AppendUvarint(dst, uint64(len(u.Point)))
		for _, x := range u.Point {
			dst = binary.AppendUvarint(dst, x)
		}
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(u.Rect)))
	for _, iv := range u.Rect {
		dst = binary.AppendUvarint(dst, iv.Lo)
		dst = binary.AppendUvarint(dst, iv.Hi)
	}
	return dst
}

// DecodeUpdateRecord decodes one record from the front of data, returning
// the record and the number of bytes consumed.
func DecodeUpdateRecord(data []byte) (UpdateRecord, int, error) {
	var u UpdateRecord
	if len(data) < 2 {
		return u, 0, fmt.Errorf("spatial: truncated update record")
	}
	flags, side := data[0], UpdateSide(data[1])
	if flags&^(recFlagDelete|recFlagPoint) != 0 {
		return u, 0, fmt.Errorf("spatial: unknown update record flags %#x", flags)
	}
	if side > SideOuter {
		return u, 0, fmt.Errorf("spatial: unknown update side %d", side)
	}
	u.Side = side
	if flags&recFlagDelete != 0 {
		u.Op = OpDelete
	}
	n := 2
	dims, k := binary.Uvarint(data[n:])
	if k <= 0 {
		return u, 0, fmt.Errorf("spatial: truncated update record dims")
	}
	n += k
	if dims == 0 || dims > core.MaxDims {
		return u, 0, fmt.Errorf("spatial: update record dims %d outside [1, %d]", dims, core.MaxDims)
	}
	readCoord := func() (uint64, error) {
		x, k := binary.Uvarint(data[n:])
		if k <= 0 {
			return 0, fmt.Errorf("spatial: truncated update record coordinates")
		}
		n += k
		return x, nil
	}
	if flags&recFlagPoint != 0 {
		u.Point = make(geo.Point, dims)
		for i := range u.Point {
			x, err := readCoord()
			if err != nil {
				return u, 0, err
			}
			u.Point[i] = x
		}
		return u, n, nil
	}
	u.Rect = make(geo.HyperRect, dims)
	for i := range u.Rect {
		lo, err := readCoord()
		if err != nil {
			return u, 0, err
		}
		hi, err := readCoord()
		if err != nil {
			return u, 0, err
		}
		u.Rect[i] = geo.Interval{Lo: lo, Hi: hi}
	}
	return u, n, nil
}

// RoutingHash returns a stable 64-bit hash of the record's routing
// identity - side and geometry, deliberately NOT the operation - so an
// insert and the delete that later cancels it land on the same partition
// of a partitioned ingest. Any partitioning of a record stream is exact
// under merge (sketches are linear), so the hash only balances load; but
// op-independence keeps per-partition object counts non-negative, which
// makes partition counts individually meaningful.
func (u UpdateRecord) RoutingHash() uint64 {
	norm := u
	norm.Op = OpInsert
	// FNV-1a over the canonical binary encoding of the normalized record.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range norm.AppendBinary(make([]byte, 0, 64)) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// MergeSnapshots folds any number of SPE1 snapshots of same-config
// estimators into one snapshot, exactly as if every underlying update had
// been applied to a single estimator (sketches are linear projections, so
// the merged counters are bit-identical to a single build). This is the
// gather half of scatter-gather estimation over a partitioned cluster:
// fetch every partition's snapshot, merge, estimate. Config mismatches
// between the snapshots are rejected, and the merged snapshot's kind is
// returned for dispatch.
func MergeSnapshots(snaps ...[]byte) ([]byte, Kind, error) {
	if len(snaps) == 0 {
		return nil, 0, fmt.Errorf("spatial: MergeSnapshots needs at least one snapshot")
	}
	kind, err := SnapshotKind(snaps[0])
	if err != nil {
		return nil, 0, err
	}
	type mergeable interface {
		MergeSnapshot(data []byte) error
		Marshal() ([]byte, error)
	}
	var est mergeable
	switch kind {
	case KindJoin:
		est, err = UnmarshalJoinEstimator(snaps[0])
	case KindRange:
		est, err = UnmarshalRangeEstimator(snaps[0])
	case KindEpsJoin:
		est, err = UnmarshalEpsJoinEstimator(snaps[0])
	case KindContainment:
		est, err = UnmarshalContainmentEstimator(snaps[0])
	}
	if err != nil {
		return nil, 0, err
	}
	for _, s := range snaps[1:] {
		if err := est.MergeSnapshot(s); err != nil {
			return nil, 0, err
		}
	}
	out, err := est.Marshal()
	if err != nil {
		return nil, 0, err
	}
	return out, kind, nil
}

// SnapshotKind reports which estimator type produced the snapshot, so
// registries can dispatch to the matching Unmarshal<Kind>Estimator. Only
// the fixed-size header prefix is examined - the payload is not parsed,
// so peeking at a large snapshot costs nothing.
func SnapshotKind(data []byte) (Kind, error) {
	r := bytes.NewReader(data)
	var magic, version, kind uint32
	for _, p := range []*uint32{&magic, &version, &kind} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return 0, fmt.Errorf("spatial: truncated snapshot header: %w", err)
		}
	}
	if magic != envelopeMagic {
		return 0, fmt.Errorf("spatial: bad snapshot magic %#x (not an SPE1 estimator snapshot)", magic)
	}
	if version != SnapshotVersion {
		return 0, fmt.Errorf("spatial: snapshot version %d, this build reads version %d", version, SnapshotVersion)
	}
	k := Kind(kind)
	if k < KindJoin || k > KindContainment {
		return 0, fmt.Errorf("spatial: unknown snapshot kind %d", kind)
	}
	return k, nil
}
