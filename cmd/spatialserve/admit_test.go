package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Admission control contract tests: overload is answered with an
// immediate 429 + Retry-After, never a slow timeout; internal fan-out and
// health/admin traffic bypasses the gates; /readyz tells orchestrators
// the truth about the WAL, the cluster map and replica bootstrap.

func TestAdmitInflightGates(t *testing.T) {
	a := newAdmitter(AdmitOptions{MaxInflightReads: 1, MaxInflightWrites: 2})

	get := httptest.NewRequest("GET", "/v1/estimators/x/estimate", nil)
	rel1, ok := a.admit(httptest.NewRecorder(), get, nil)
	if !ok {
		t.Fatal("first read rejected under its limit")
	}
	rec := httptest.NewRecorder()
	if _, ok := a.admit(rec, get, nil); ok {
		t.Fatal("second concurrent read admitted past MaxInflightReads=1")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("rejection status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After header")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", ra)
	}

	// Writes are a separate class: the read gate being full must not
	// block ingest.
	post := httptest.NewRequest("POST", "/v1/estimators/x/update", nil)
	relW, ok := a.admit(httptest.NewRecorder(), post, nil)
	if !ok {
		t.Fatal("write rejected while only the read gate is full")
	}
	relW()

	// Releasing the read admits the next one.
	rel1()
	rel2, ok := a.admit(httptest.NewRecorder(), get, nil)
	if !ok {
		t.Fatal("read rejected after the previous one released")
	}
	rel2()

	// POST .../estimate carries a query batch: read class, not write.
	postEst := httptest.NewRequest("POST", "/v1/estimators/x/estimate", nil)
	if !readClass(postEst) {
		t.Fatal("POST /estimate classified as a write")
	}
	if readClass(post) {
		t.Fatal("POST /update classified as a read")
	}
}

func TestAdmitTokenBucketShed(t *testing.T) {
	a := newAdmitter(AdmitOptions{ShedQPS: 2, ShedBurst: 2})
	now := time.Unix(1000, 0)
	a.bucket.now = func() time.Time { return now }

	get := httptest.NewRequest("GET", "/v1/estimators", nil)
	for i := 0; i < 2; i++ {
		if _, ok := a.admit(httptest.NewRecorder(), get, nil); !ok {
			t.Fatalf("request %d shed inside the burst allowance", i)
		}
	}
	rec := httptest.NewRecorder()
	if _, ok := a.admit(rec, get, nil); ok {
		t.Fatal("request admitted with the bucket empty")
	}
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("shed response: status %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}

	// Half a second at 2 qps refills one token.
	now = now.Add(500 * time.Millisecond)
	if _, ok := a.admit(httptest.NewRecorder(), get, nil); !ok {
		t.Fatal("request shed after the bucket refilled")
	}
	if _, ok := a.admit(httptest.NewRecorder(), get, nil); ok {
		t.Fatal("refill credited more than elapsed-time tokens")
	}
}

func TestAdmitExemptions(t *testing.T) {
	// Bucket of size 1, immediately drained: only exempt traffic passes.
	a := newAdmitter(AdmitOptions{ShedQPS: 0.001, ShedBurst: 1})
	if _, ok := a.admit(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/estimators", nil), nil); !ok {
		t.Fatal("burst token not granted")
	}
	if _, ok := a.admit(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/estimators", nil), nil); ok {
		t.Fatal("client request admitted with the bucket drained")
	}
	for _, path := range []string{"/healthz", "/readyz", "/admin/ring"} {
		if _, ok := a.admit(httptest.NewRecorder(), httptest.NewRequest("GET", path, nil), nil); !ok {
			t.Fatalf("%s not exempt from shedding", path)
		}
	}
	internal := httptest.NewRequest("POST", "/v1/estimators/x/update", nil)
	internal.Header.Set(headerInternal, "1")
	if _, ok := a.admit(httptest.NewRecorder(), internal, nil); !ok {
		t.Fatal("internal fan-out sub-request shed: retry amplification hazard")
	}
}

// TestOverloadAnswers429NotTimeout is the end-to-end acceptance check: a
// server under rate overload answers immediately with 429, and the
// responses carry the machine-readable retry hint.
func TestOverloadAnswers429NotTimeout(t *testing.T) {
	srv := NewServer()
	srv.EnableAdmission(AdmitOptions{ShedQPS: 1, ShedBurst: 1})
	shed := 0
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/estimators", nil))
		if d := time.Since(start); d > time.Second {
			t.Fatalf("request %d took %v under overload; must shed immediately", i, d)
		}
		switch rec.Code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("429 body is not the standard error document: %s", rec.Body.Bytes())
			}
		default:
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if shed == 0 {
		t.Fatal("burst of 5 requests against a 1 qps bucket shed nothing")
	}
	// Health probes still answer during the overload.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz shed under overload: %d", rec.Code)
	}
}

func readyzDoc(t *testing.T, srv *Server) (int, readyResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	var doc readyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("readyz body: %v: %s", err, rec.Body.Bytes())
	}
	return rec.Code, doc
}

func TestReadyzInMemory(t *testing.T) {
	code, doc := readyzDoc(t, NewServer())
	if code != http.StatusOK || !doc.Ready {
		t.Fatalf("fresh in-memory server not ready: %d %+v", code, doc)
	}
}

// TestReadyzWALPoisoned proves readiness tracks WAL health: after a
// write-path disk failure the node keeps answering liveness but reports
// not-ready, so an orchestrator can rotate it out.
func TestReadyzWALPoisoned(t *testing.T) {
	in := faultinject.New(3)
	srv, err := NewPersistentServer(PersistOptions{DataDir: t.TempDir(), WALHooks: in.WALHooks("a")})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, doc := readyzDoc(t, srv); code != http.StatusOK || doc.Checks["wal"] != "ok" {
		t.Fatalf("healthy persistent server not ready: %d %+v", code, doc)
	}

	in.Add(faultinject.Rule{To: "a", Kind: faultinject.KindWALWrite})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/estimators",
		bytes.NewReader(mustJSON(t, createRequest{Name: "x", Kind: "join", Config: configRequest{Dims: 2, DomainSize: 1 << 10, Instances: 8, Groups: 2}}))))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("create with a failing WAL: status %d, want 500", rec.Code)
	}

	code, doc := readyzDoc(t, srv)
	if code != http.StatusServiceUnavailable || doc.Ready || doc.Checks["wal"] == "ok" {
		t.Fatalf("poisoned-WAL server still ready: %d %+v", code, doc)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("liveness failed on a merely not-ready node: %d", rec.Code)
	}
}

// TestReadyzReplicaStates pins the replica readiness transitions:
// bootstrapping and wedged followers are not ready; a caught-up follower
// is.
func TestReadyzReplicaStates(t *testing.T) {
	srv := NewServer()
	srv.replica = &replicaState{active: true}
	if code, doc := readyzDoc(t, srv); code != http.StatusServiceUnavailable || doc.Checks["replica"] != "bootstrap in progress" {
		t.Fatalf("bootstrapping replica: %d %+v", code, doc)
	}
	srv.replica.ready = true
	if code, doc := readyzDoc(t, srv); code != http.StatusOK || doc.Checks["replica"] != "ok" {
		t.Fatalf("caught-up replica: %d %+v", code, doc)
	}
	srv.replica.wedged = true
	if code, _ := readyzDoc(t, srv); code != http.StatusServiceUnavailable {
		t.Fatalf("wedged replica still ready: %d", code)
	}
	// A promoted (inactive) replica no longer gates readiness.
	srv.replica.active = false
	if code, _ := readyzDoc(t, srv); code != http.StatusOK {
		t.Fatalf("promoted replica not ready: %d", code)
	}
}
