package core

import (
	"math"
	"testing"

	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/exact"
)

// transformPair applies the Section 5.2 endpoint transformation: R is
// embedded, S is embedded and shrunk, guaranteeing Assumption 1.
func transformPair(r, s []geo.HyperRect) (tr, ts []geo.HyperRect) {
	tr = make([]geo.HyperRect, len(r))
	for i, h := range r {
		tr[i] = geo.TransformKeepRect(h)
	}
	ts = make([]geo.HyperRect, len(s))
	for i, h := range s {
		ts[i] = geo.TransformShrinkRect(h)
	}
	return tr, ts
}

// logDomains returns per-dim log sizes fitting a transformed domain of
// original size dom.
func logDomains(dims int, dom uint64) []int {
	h := log2ceil(geo.TransformDomain(dom))
	out := make([]int, dims)
	for i := range out {
		out[i] = h
	}
	return out
}

// assertUnbiased checks that the grand mean of the estimator is within a
// 6-sigma CLT band of the exact value. The band self-calibrates from the
// sample variance, so the check is deterministic under fixed seeds and
// fails with probability ~1e-9 for a correct estimator. Formula-level
// correctness (scales, signs, pairings) is verified exactly, without
// sampling noise, by the algebraic expectation tests in
// expectation_test.go; this statistical check ties the running
// implementation to those formulas.
func assertUnbiased(t *testing.T, name string, est Estimate, want float64) {
	t.Helper()
	se := math.Sqrt(est.SampleVariance / float64(est.Instances))
	tol := 6 * se
	if math.Abs(est.Mean-want) > tol {
		t.Fatalf("%s: mean %.2f vs exact %.2f exceeds 6-sigma band %.2f", name, est.Mean, want, tol)
	}
	if want > 0 && tol > want {
		t.Logf("%s: note: tolerance %.2f exceeds exact %.2f; bias power comes from expectation tests", name, tol, want)
	}
}

// TestFigure2CounterConstruction verifies the atomic sketch construction on
// the paper's Figure 2 example: domain {0..3}, r = [0,2] in R, s = [1,3]
// in S. The paper derives X_I = xi_2 + xi_6, X_E = 2 xi_1 + xi_2 + xi_3 +
// xi_4 + xi_6, Y_I = xi_3 + xi_5, Y_E = 2 xi_1 + xi_2 + xi_3 + xi_5 + xi_7.
// We check the counters match those formulas for every instance's family.
func TestFigure2CounterConstruction(t *testing.T) {
	p := MustPlan(Config{
		Dims: 1, LogDomain: []int{2}, Instances: 32, Groups: 4, Seed: 11,
	})
	x := p.NewJoinSketch()
	y := p.NewJoinSketch()
	if err := x.Insert(geo.Span1D(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := y.Insert(geo.Span1D(1, 3)); err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < p.Instances(); inst++ {
		f := p.family(inst, 0)
		xi := func(id uint64) int64 { return f.Sign(id) }
		wantXI := xi(2) + xi(6)
		wantXE := 2*xi(1) + xi(2) + xi(3) + xi(4) + xi(6)
		wantYI := xi(3) + xi(5)
		wantYE := 2*xi(1) + xi(2) + xi(3) + xi(5) + xi(7)
		if got := x.Counter(inst, 0); got != wantXI {
			t.Fatalf("inst %d: X_I = %d, want %d", inst, got, wantXI)
		}
		if got := x.Counter(inst, 1); got != wantXE {
			t.Fatalf("inst %d: X_E = %d, want %d", inst, got, wantXE)
		}
		if got := y.Counter(inst, 0); got != wantYI {
			t.Fatalf("inst %d: Y_I = %d, want %d", inst, got, wantYI)
		}
		if got := y.Counter(inst, 1); got != wantYE {
			t.Fatalf("inst %d: Y_E = %d, want %d", inst, got, wantYE)
		}
	}
}

// TestFigure2Expectation: E[Z] = 1 for the Figure 2 pair (they overlap).
func TestFigure2Expectation(t *testing.T) {
	p := MustPlan(Config{
		Dims: 1, LogDomain: []int{2}, Instances: 60000, Groups: 4, Seed: 3,
	})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	// No endpoint transformation needed: r=[0,2], s=[1,3] share no
	// endpoints (Assumption 1 holds as in the paper's example).
	if err := x.Insert(geo.Span1D(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := y.Insert(geo.Span1D(1, 3)); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "figure2", est, 1)
}

// TestJoin1DUnbiased: the Theorem 1 estimator is unbiased for interval
// joins on random data (endpoint-transformed, so Assumption 1 holds).
func TestJoin1DUnbiased(t *testing.T) {
	const dom = 32
	r := datagen.MustRects(datagen.Spec{N: 60, Dims: 1, Domain: dom, Seed: 101, MeanLen: []float64{8}})
	s := datagen.MustRects(datagen.Spec{N: 60, Dims: 1, Domain: dom, Seed: 202, MeanLen: []float64{8}})
	want := float64(exact.JoinCount(r, s))
	tr, ts := transformPair(r, s)

	p := MustPlan(Config{
		Dims: 1, LogDomain: logDomains(1, dom), Instances: 30000, Groups: 4, Seed: 7,
	})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	if err := x.InsertAll(tr); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(ts); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "join1d", est, want)
}

// TestJoin1DSharedEndpointsViaTransform: with many shared endpoints in the
// raw data, the transform-based estimator still matches the exact strict
// join (this is the Section 5.2 guarantee end to end).
func TestJoin1DSharedEndpointsViaTransform(t *testing.T) {
	// Dense integer grid data with lots of coincident endpoints.
	var r, s []geo.HyperRect
	for lo := uint64(0); lo < 12; lo += 2 {
		for hi := lo + 2; hi <= 14; hi += 3 {
			r = append(r, geo.Span1D(lo, hi))
			s = append(s, geo.Span1D(lo+1, hi))
			s = append(s, geo.Span1D(lo, hi-1))
		}
	}
	want := float64(exact.JoinCount(r, s))
	tr, ts := transformPair(r, s)
	p := MustPlan(Config{
		Dims: 1, LogDomain: logDomains(1, 16), Instances: 30000, Groups: 4, Seed: 99,
	})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	if err := x.InsertAll(tr); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(ts); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "join1d-shared", est, want)
}

// TestJoin2DUnbiased: Theorem 2 for rectangle joins.
func TestJoin2DUnbiased(t *testing.T) {
	const dom = 16
	r := datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: dom, Seed: 5, MeanLen: []float64{5, 5}})
	s := datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: dom, Seed: 6, MeanLen: []float64{5, 5}})
	want := float64(exact.JoinCount(r, s))
	tr, ts := transformPair(r, s)
	p := MustPlan(Config{
		Dims: 2, LogDomain: logDomains(2, dom), Instances: 12000, Groups: 4, Seed: 8,
	})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	if err := x.InsertAll(tr); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(ts); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "join2d", est, want)
}

// TestJoin3DUnbiased: Theorem 3 for d = 3.
func TestJoin3DUnbiased(t *testing.T) {
	const dom = 8
	r := datagen.MustRects(datagen.Spec{N: 30, Dims: 3, Domain: dom, Seed: 15, MeanLen: []float64{3, 3, 3}})
	s := datagen.MustRects(datagen.Spec{N: 30, Dims: 3, Domain: dom, Seed: 16, MeanLen: []float64{3, 3, 3}})
	want := float64(exact.JoinCount(r, s))
	tr, ts := transformPair(r, s)
	p := MustPlan(Config{
		Dims: 3, LogDomain: logDomains(3, dom), Instances: 8000, Groups: 4, Seed: 21,
	})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	if err := x.InsertAll(tr); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(ts); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "join3d", est, want)
}

// TestJoinMaxLevelUnbiased: Section 6.5 - capping the dyadic level keeps
// the estimator unbiased (maxLevel 0 is the standard sketch of 3.1).
func TestJoinMaxLevelUnbiased(t *testing.T) {
	const dom = 16
	r := datagen.MustRects(datagen.Spec{N: 40, Dims: 1, Domain: dom, Seed: 31, MeanLen: []float64{4}})
	s := datagen.MustRects(datagen.Spec{N: 40, Dims: 1, Domain: dom, Seed: 32, MeanLen: []float64{4}})
	want := float64(exact.JoinCount(r, s))
	tr, ts := transformPair(r, s)
	for _, ml := range []int{0, 2, 4} {
		p := MustPlan(Config{
			Dims: 1, LogDomain: logDomains(1, dom), MaxLevel: []int{ml},
			Instances: 20000, Groups: 4, Seed: uint64(40 + ml),
		})
		x, y := p.NewJoinSketch(), p.NewJoinSketch()
		if err := x.InsertAll(tr); err != nil {
			t.Fatal(err)
		}
		if err := y.InsertAll(ts); err != nil {
			t.Fatal(err)
		}
		est, err := EstimateJoin(x, y)
		if err != nil {
			t.Fatal(err)
		}
		assertUnbiased(t, "join-maxlevel", est, want)
	}
}

// TestVarianceWithinBound: the empirical variance of Z stays within the
// proven bound Var[Z] <= c(d) * SJ(R) * SJ(S) (Sections 4.1.4, 4.2.1).
func TestVarianceWithinBound(t *testing.T) {
	const dom = 16
	r := datagen.MustRects(datagen.Spec{N: 50, Dims: 1, Domain: dom, Seed: 61, MeanLen: []float64{5}})
	s := datagen.MustRects(datagen.Spec{N: 50, Dims: 1, Domain: dom, Seed: 62, MeanLen: []float64{5}})
	tr, ts := transformPair(r, s)
	p := MustPlan(Config{
		Dims: 1, LogDomain: logDomains(1, dom), Instances: 20000, Groups: 4, Seed: 63,
	})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	if err := x.InsertAll(tr); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(ts); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sjR, err := exact.SelfJoinSizes(p.Domains(), p.MaxLevels(), tr)
	if err != nil {
		t.Fatal(err)
	}
	sjS, err := exact.SelfJoinSizes(p.Domains(), p.MaxLevels(), ts)
	if err != nil {
		t.Fatal(err)
	}
	bound := JoinVarianceFactor(1) * sjR.Total * sjS.Total
	// Sample variance concentrates around the true variance; allow 10%
	// estimation slack above the proven bound.
	if est.SampleVariance > bound*1.1 {
		t.Fatalf("sample variance %.1f exceeds proven bound %.1f", est.SampleVariance, bound)
	}
	if est.SampleVariance <= 0 {
		t.Fatal("sample variance should be positive")
	}
}

// TestInsertDeleteInverse: deleting an inserted object restores the exact
// counter state (Section 4.1.5 incremental maintenance).
func TestInsertDeleteInverse(t *testing.T) {
	const dom = 64
	p := MustPlan(Config{
		Dims: 2, LogDomain: []int{6, 6}, Instances: 50, Groups: 5, Seed: 77,
	})
	base := datagen.MustRects(datagen.Spec{N: 30, Dims: 2, Domain: dom, Seed: 71})
	extra := datagen.MustRects(datagen.Spec{N: 10, Dims: 2, Domain: dom, Seed: 72})

	ref := p.NewJoinSketch()
	if err := ref.InsertAll(base); err != nil {
		t.Fatal(err)
	}
	sk := p.NewJoinSketch()
	if err := sk.InsertAll(base); err != nil {
		t.Fatal(err)
	}
	if err := sk.InsertAll(extra); err != nil {
		t.Fatal(err)
	}
	for _, e := range extra {
		if err := sk.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if sk.Count() != ref.Count() {
		t.Fatalf("count %d != %d", sk.Count(), ref.Count())
	}
	for i := range ref.counters {
		if sk.counters[i] != ref.counters[i] {
			t.Fatalf("counter %d differs after delete: %d vs %d", i, sk.counters[i], ref.counters[i])
		}
	}
}

// TestInsertAllMatchesSequential: the parallel bulk path produces exactly
// the same counters as repeated Insert.
func TestInsertAllMatchesSequential(t *testing.T) {
	const dom = 64
	p := MustPlan(Config{
		Dims: 2, LogDomain: []int{6, 6}, Instances: 64, Groups: 4, Seed: 5,
	})
	rects := datagen.MustRects(datagen.Spec{N: 700, Dims: 2, Domain: dom, Seed: 3})
	seq := p.NewJoinSketch()
	for _, r := range rects {
		if err := seq.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	bulk := p.NewJoinSketch()
	if err := bulk.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	if seq.Count() != bulk.Count() {
		t.Fatalf("counts differ: %d vs %d", seq.Count(), bulk.Count())
	}
	for i := range seq.counters {
		if seq.counters[i] != bulk.counters[i] {
			t.Fatalf("counter %d differs: %d vs %d", i, seq.counters[i], bulk.counters[i])
		}
	}
}

// TestMergeEqualsUnion: merging sketches of two streams equals sketching
// the concatenated stream.
func TestMergeEqualsUnion(t *testing.T) {
	p := MustPlan(Config{
		Dims: 1, LogDomain: []int{8}, Instances: 40, Groups: 4, Seed: 13,
	})
	a := datagen.MustRects(datagen.Spec{N: 25, Dims: 1, Domain: 256, Seed: 1})
	b := datagen.MustRects(datagen.Spec{N: 35, Dims: 1, Domain: 256, Seed: 2})
	sa, sb := p.NewJoinSketch(), p.NewJoinSketch()
	if err := sa.InsertAll(a); err != nil {
		t.Fatal(err)
	}
	if err := sb.InsertAll(b); err != nil {
		t.Fatal(err)
	}
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	union := p.NewJoinSketch()
	if err := union.InsertAll(append(append([]geo.HyperRect{}, a...), b...)); err != nil {
		t.Fatal(err)
	}
	if sa.Count() != union.Count() {
		t.Fatalf("merged count %d != %d", sa.Count(), union.Count())
	}
	for i := range union.counters {
		if sa.counters[i] != union.counters[i] {
			t.Fatalf("counter %d differs", i)
		}
	}
	// Merging across plans must fail.
	other := MustPlan(Config{Dims: 1, LogDomain: []int{8}, Instances: 40, Groups: 4, Seed: 14})
	if err := sa.Merge(other.NewJoinSketch()); err == nil {
		t.Fatal("cross-plan merge should fail")
	}
}

func TestCloneAndReset(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{6}, Instances: 12, Groups: 4, Seed: 2})
	s := p.NewJoinSketch()
	if err := s.Insert(geo.Span1D(3, 9)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Insert(geo.Span1D(1, 2)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: %d, %d", s.Count(), c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset count")
	}
	for i := range c.counters {
		if c.counters[i] != 0 {
			t.Fatal("reset should zero counters")
		}
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Config{
		{Dims: 0, LogDomain: nil, Instances: 1, Groups: 1},
		{Dims: 9, LogDomain: make([]int, 9), Instances: 1, Groups: 1},
		{Dims: 1, LogDomain: []int{0}, Instances: 1, Groups: 1},
		{Dims: 1, LogDomain: []int{4, 4}, Instances: 1, Groups: 1},
		{Dims: 1, LogDomain: []int{4}, Instances: 0, Groups: 1},
		{Dims: 1, LogDomain: []int{4}, Instances: 10, Groups: 3},
		{Dims: 2, LogDomain: []int{4, 4}, MaxLevel: []int{1}, Instances: 4, Groups: 2},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 4, Groups: 2, Seed: 1})
	s := p.NewJoinSketch()
	if err := s.Insert(geo.Span1D(0, 16)); err == nil {
		t.Error("out-of-domain insert should fail")
	}
	if err := s.Insert(geo.Rect(0, 1, 0, 1)); err == nil {
		t.Error("wrong dims should fail")
	}
	if err := s.Insert(geo.HyperRect{geo.Interval{Lo: 5, Hi: 2}}); err == nil {
		t.Error("inverted interval should fail")
	}
	q := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 4, Groups: 2, Seed: 2})
	if _, err := EstimateJoin(s, q.NewJoinSketch()); err == nil {
		t.Error("cross-plan estimate should fail")
	}
}

// TestMaterializedPlanMatches: materializing xi tables changes no counter.
func TestMaterializedPlanMatches(t *testing.T) {
	cfg := Config{Dims: 1, LogDomain: []int{8}, Instances: 16, Groups: 4, Seed: 9}
	rects := datagen.MustRects(datagen.Spec{N: 50, Dims: 1, Domain: 256, Seed: 4})
	plain := MustPlan(cfg)
	s1 := plain.NewJoinSketch()
	if err := s1.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	mat := MustPlan(cfg)
	mat.Materialize()
	s2 := mat.NewJoinSketch()
	if err := s2.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	for i := range s1.counters {
		if s1.counters[i] != s2.counters[i] {
			t.Fatalf("materialized counters differ at %d", i)
		}
	}
}
