package spatial_test

import (
	"bytes"
	"testing"

	spatial "repro"
	"repro/geo"
	"repro/internal/datagen"
)

// Snapshot-envelope tests: every estimator type must round-trip through
// Marshal / Unmarshal<Kind>Estimator to a working estimator whose
// estimates are bit-identical to the source's, and every public-config
// mismatch must be caught at decode time.

func snapJoin(t *testing.T, mode spatial.Mode) *spatial.JoinEstimator {
	t.Helper()
	e, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims: 2, DomainSize: 300,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4},
		Mode:   mode, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := datagen.MustRects(datagen.Spec{N: 80, Dims: 2, Domain: 300, Seed: 1, MeanLen: []float64{40, 40}})
	s := datagen.MustRects(datagen.Spec{N: 80, Dims: 2, Domain: 300, Seed: 2, MeanLen: []float64{40, 40}})
	if err := e.InsertLeftBulk(r); err != nil {
		t.Fatal(err)
	}
	if err := e.InsertRightBulk(s); err != nil {
		t.Fatal(err)
	}
	return e
}

func sameEstimate(t *testing.T, name string, a, b spatial.Estimate) {
	t.Helper()
	if a.Value != b.Value || a.Mean != b.Mean || a.SampleVariance != b.SampleVariance {
		t.Fatalf("%s: estimate (%v, %v, %v) != source (%v, %v, %v)",
			name, b.Value, b.Mean, b.SampleVariance, a.Value, a.Mean, a.SampleVariance)
	}
	if len(a.GroupMeans) != len(b.GroupMeans) {
		t.Fatalf("%s: group count %d != %d", name, len(b.GroupMeans), len(a.GroupMeans))
	}
	for i := range a.GroupMeans {
		if a.GroupMeans[i] != b.GroupMeans[i] {
			t.Fatalf("%s: group mean %d: %v != %v", name, i, b.GroupMeans[i], a.GroupMeans[i])
		}
	}
}

func TestJoinSnapshotRoundTrip(t *testing.T) {
	for _, mode := range []spatial.Mode{spatial.ModeTransform, spatial.ModeCommonEndpoints} {
		src := snapJoin(t, mode)
		data, err := src.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if k, err := spatial.SnapshotKind(data); err != nil || k != spatial.KindJoin {
			t.Fatalf("snapshot kind = %v, %v", k, err)
		}
		got, err := spatial.UnmarshalJoinEstimator(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.LeftCount() != src.LeftCount() || got.RightCount() != src.RightCount() {
			t.Fatalf("%v: counts (%d, %d) != (%d, %d)", mode,
				got.LeftCount(), got.RightCount(), src.LeftCount(), src.RightCount())
		}
		want, err := src.Cardinality()
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Cardinality()
		if err != nil {
			t.Fatal(err)
		}
		sameEstimate(t, mode.String(), want, have)
		// The extended-join estimate round-trips too in CE mode.
		if mode == spatial.ModeCommonEndpoints {
			we, err := src.CardinalityExtended()
			if err != nil {
				t.Fatal(err)
			}
			ge, err := got.CardinalityExtended()
			if err != nil {
				t.Fatal(err)
			}
			sameEstimate(t, "ce-extended", we, ge)
		}
		// The restored estimator keeps working: inserts still go through.
		if err := got.InsertLeft(geo.Rect(1, 5, 1, 5)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRangeSnapshotRoundTrip(t *testing.T) {
	cfg := spatial.RangeConfig{
		Dims: 1, DomainSize: 1000,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 5,
	}
	src, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rects := datagen.MustRects(datagen.Spec{N: 150, Dims: 1, Domain: 1000, Seed: 3})
	if err := src.InsertBulk(rects); err != nil {
		t.Fatal(err)
	}
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := spatial.UnmarshalRangeEstimator(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != src.Count() {
		t.Fatalf("count %d != %d", got.Count(), src.Count())
	}
	q := geo.Span1D(100, 700)
	want, err := src.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "range", want, have)
}

func TestEpsJoinSnapshotRoundTrip(t *testing.T) {
	cfg := spatial.EpsJoinConfig{
		Dims: 2, DomainSize: 500, Eps: 9,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 6,
	}
	src, err := spatial.NewEpsJoinEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geo.Point, 120)
	for i := range pts {
		pts[i] = geo.Point{uint64(i*7) % 500, uint64(i*13) % 500}
	}
	if err := src.InsertLeftBulk(pts); err != nil {
		t.Fatal(err)
	}
	if err := src.InsertRightBulk(pts); err != nil {
		t.Fatal(err)
	}
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := spatial.UnmarshalEpsJoinEstimator(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config().Eps != cfg.Eps {
		t.Fatalf("eps %d did not round-trip", got.Config().Eps)
	}
	want, _ := src.Cardinality()
	have, err := got.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "epsjoin", want, have)
}

func TestContainmentSnapshotRoundTrip(t *testing.T) {
	cfg := spatial.ContainmentConfig{
		Dims: 2, DomainSize: 500,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 7,
	}
	src, err := spatial.NewContainmentEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rects := datagen.MustRects(datagen.Spec{N: 90, Dims: 2, Domain: 500, Seed: 4})
	if err := src.InsertInnerBulk(rects); err != nil {
		t.Fatal(err)
	}
	if err := src.InsertOuterBulk(rects); err != nil {
		t.Fatal(err)
	}
	data, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := spatial.UnmarshalContainmentEstimator(data)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Cardinality()
	have, err := got.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "containment", want, have)
}

// TestMergeSnapshotEquivalence: merging a snapshot is bit-identical to
// merging the live estimator it was taken from.
func TestMergeSnapshotEquivalence(t *testing.T) {
	a := snapJoin(t, spatial.ModeTransform)
	b := snapJoin(t, spatial.ModeTransform)
	direct := snapJoin(t, spatial.ModeTransform)
	if err := direct.Merge(b); err != nil {
		t.Fatal(err)
	}
	snap, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	want, _ := direct.Cardinality()
	have, err := a.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "merge-snapshot", want, have)
}

// TestSnapshotConfigMismatches: decode-time rejection of every
// public-config divergence, including those invisible to the core plan.
func TestSnapshotConfigMismatches(t *testing.T) {
	base := snapJoin(t, spatial.ModeTransform)
	snap, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// DomainSize 300 vs 320: both transform-pad to the same internal plan,
	// so only the envelope check can catch it.
	other, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims: 2, DomainSize: 320,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4},
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.MergeSnapshot(snap); err == nil {
		t.Fatal("cross-domain-size snapshot merge should fail")
	}

	// Wrong kind.
	re, err := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims: 2, DomainSize: 300,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.MergeSnapshot(snap); err == nil {
		t.Fatal("join snapshot must not merge into a range estimator")
	}
	if _, err := spatial.UnmarshalRangeEstimator(snap); err == nil {
		t.Fatal("join snapshot must not decode as a range estimator")
	}

	// Eps mismatch, invisible to the core plan (9 and 10 derive the same
	// adaptive level cap).
	mkEps := func(eps uint64) *spatial.EpsJoinEstimator {
		e, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
			Dims: 2, DomainSize: 500, Eps: eps,
			Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e9, e10 := mkEps(9), mkEps(10)
	esnap, err := e9.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := e10.MergeSnapshot(esnap); err == nil {
		t.Fatal("cross-eps snapshot merge should fail")
	}

	// Truncations and corruptions of a valid snapshot never decode.
	for cut := 0; cut < len(snap); cut += 7 {
		if _, err := spatial.UnmarshalJoinEstimator(snap[:cut]); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) decoded", cut)
		}
	}
	garbled := bytes.Clone(snap)
	garbled[0] ^= 0xff
	if _, err := spatial.UnmarshalJoinEstimator(garbled); err == nil {
		t.Fatal("bad magic decoded")
	}
}

// TestSideSnapshotChecks: single-side snapshots carry the full public
// config and refuse cross-config or cross-side merges.
func TestSideSnapshotChecks(t *testing.T) {
	a := snapJoin(t, spatial.ModeTransform)
	left, err := a.MarshalLeft()
	if err != nil {
		t.Fatal(err)
	}
	// A left blob does not merge as a right blob.
	if err := a.MergeRightFrom(left); err == nil {
		t.Fatal("left snapshot merged into right side")
	}
	// Nor into a different domain size.
	other, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims: 2, DomainSize: 320,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.MergeLeftFrom(left); err == nil {
		t.Fatal("cross-domain-size side merge should fail")
	}
	// Nor does a full snapshot pass as a side snapshot.
	full, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeLeftFrom(full); err == nil {
		t.Fatal("full snapshot accepted by MergeLeftFrom")
	}
	// A matching left blob does merge, doubling the left count.
	before := a.LeftCount()
	if err := a.MergeLeftFrom(left); err != nil {
		t.Fatal(err)
	}
	if a.LeftCount() != 2*before {
		t.Fatalf("left count after side merge = %d, want %d", a.LeftCount(), 2*before)
	}
	// Full snapshots do not reconstruct from a side snapshot.
	if _, err := spatial.UnmarshalJoinEstimator(left); err == nil {
		t.Fatal("side snapshot reconstructed a full estimator")
	}
}

// FuzzUnmarshal drives arbitrary bytes through every snapshot decoder:
// none may panic, and none may allocate proportionally to unvalidated
// header fields (the decoders bound every allocation by the payload
// actually present).
func FuzzUnmarshal(f *testing.F) {
	join := snapJoinForFuzz(f, spatial.ModeTransform)
	ce := snapJoinForFuzz(f, spatial.ModeCommonEndpoints)
	f.Add(join)
	f.Add(ce)
	if side, err := mustJoinForFuzz(f, spatial.ModeTransform).MarshalLeft(); err == nil {
		f.Add(side)
	}
	re, _ := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims: 1, DomainSize: 64, Sizing: spatial.Sizing{Instances: 8, Groups: 4},
	})
	if data, err := re.Marshal(); err == nil {
		f.Add(data)
	}
	ee, _ := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
		Dims: 1, DomainSize: 64, Eps: 3, Sizing: spatial.Sizing{Instances: 8, Groups: 4},
	})
	if data, err := ee.Marshal(); err == nil {
		f.Add(data)
	}
	ke, _ := spatial.NewContainmentEstimator(spatial.ContainmentConfig{
		Dims: 1, DomainSize: 64, Sizing: spatial.Sizing{Instances: 8, Groups: 4},
	})
	if data, err := ke.Marshal(); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add(join[:8])
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		spatial.SnapshotKind(data)
		if e, err := spatial.UnmarshalJoinEstimator(data); err == nil {
			e.Cardinality()
		}
		if e, err := spatial.UnmarshalRangeEstimator(data); err == nil {
			e.Count()
		}
		if e, err := spatial.UnmarshalEpsJoinEstimator(data); err == nil {
			e.Cardinality()
		}
		if e, err := spatial.UnmarshalContainmentEstimator(data); err == nil {
			e.Cardinality()
		}
	})
}

func mustJoinForFuzz(f *testing.F, mode spatial.Mode) *spatial.JoinEstimator {
	e, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims: 1, DomainSize: 64,
		Sizing: spatial.Sizing{Instances: 8, Groups: 4},
		Mode:   mode, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	e.InsertLeft(geo.Span1D(3, 9))
	e.InsertRight(geo.Span1D(5, 12))
	return e
}

func snapJoinForFuzz(f *testing.F, mode spatial.Mode) []byte {
	data, err := mustJoinForFuzz(f, mode).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// TestMergeSnapshotsGather proves the scatter-gather identity behind
// cluster estimates: partition an update stream arbitrarily across
// several estimators, merge their snapshots with MergeSnapshots, and the
// result is BYTE-identical to a single estimator that saw the whole
// stream.
func TestMergeSnapshotsGather(t *testing.T) {
	cfg := spatial.RangeConfig{Dims: 2, DomainSize: 300,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 5}
	whole, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const parts = 3
	var shards [parts]*spatial.RangeEstimator
	for i := range shards {
		if shards[i], err = spatial.NewRangeEstimator(cfg); err != nil {
			t.Fatal(err)
		}
	}
	rects := datagen.MustRects(datagen.Spec{N: 90, Dims: 2, Domain: 300, Seed: 9, MeanLen: []float64{30, 30}})
	for i, r := range rects {
		if err := whole.Insert(r); err != nil {
			t.Fatal(err)
		}
		if err := shards[i%parts].Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	snaps := make([][]byte, parts)
	for i, sh := range shards {
		if snaps[i], err = sh.Marshal(); err != nil {
			t.Fatal(err)
		}
	}
	merged, kind, err := spatial.MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	if kind != spatial.KindRange {
		t.Fatalf("kind = %v, want range", kind)
	}
	want, err := whole.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, want) {
		t.Fatal("merged partition snapshots differ from the single-build snapshot")
	}
	// Config mismatches and empty input are rejected.
	other, err := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 2, DomainSize: 301,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	badSnap, err := other.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := spatial.MergeSnapshots(snaps[0], badSnap); err == nil {
		t.Fatal("MergeSnapshots accepted a config mismatch")
	}
	if _, _, err := spatial.MergeSnapshots(); err == nil {
		t.Fatal("MergeSnapshots accepted zero snapshots")
	}
	// All four kinds dispatch.
	j := snapJoin(t, spatial.ModeTransform)
	js, err := j.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, kind, err := spatial.MergeSnapshots(js, js); err != nil || kind != spatial.KindJoin {
		t.Fatalf("join dispatch: kind %v, err %v", kind, err)
	}
}
