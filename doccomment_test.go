package spatial_test

// Godoc audit, enforced: every exported identifier in the public packages
// (root, geo, internal/wal) and in the cmd/spatialserve handlers must
// carry a doc comment that names what it documents - the same contract
// `revive`'s exported rule checks, kept in-repo so it runs with plain
// `go test` and never drifts from the toolchain.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// auditedDirs are the packages whose exported surface must be documented.
var auditedDirs = []string{".", "geo", "internal/wal", "internal/cluster", "internal/metrics", "internal/ingest", "internal/trace", "ingestclient", "cmd/spatialserve"}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range auditedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					hasPkgDoc = true
				}
				for _, decl := range f.Decls {
					checkDecl(t, fset, decl)
				}
			}
			if !hasPkgDoc {
				t.Errorf("%s: package %s has no package comment", dir, pkg.Name)
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		requireDoc(t, fset, d.Pos(), d.Doc, d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				doc := s.Doc
				if doc == nil {
					doc = d.Doc
				}
				requireDoc(t, fset, s.Pos(), doc, s.Name.Name)
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					// Grouped consts/vars may share the block comment; no
					// name-prefix requirement for them.
					if s.Doc == nil && d.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported %s %s has no doc comment",
							fset.Position(name.Pos()), declKind(d.Tok), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions have no receiver and count as exported).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// requireDoc demands a doc comment whose opening sentence names the
// identifier (leading articles allowed, matching godoc convention).
func requireDoc(t *testing.T, fset *token.FileSet, pos token.Pos, doc *ast.CommentGroup, name string) {
	t.Helper()
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), name)
		return
	}
	words := strings.Fields(doc.Text())
	for i, w := range words {
		if i > 2 {
			break
		}
		if w == name || strings.HasPrefix(w, name+"(") {
			return
		}
	}
	t.Errorf("%s: doc comment for %s should start with (or soon mention) %q, got %q",
		fset.Position(pos), name, name, strings.Join(words[:min(4, len(words))], " "))
}
