package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// gateHooks blocks the first group-commit write until released, so a test
// can pile waiters into the pending batch, then fail the flush and watch
// every coalesced waiter receive the error.
type gateHooks struct {
	hold    chan struct{} // closed to release the blocked write
	entered chan struct{} // closed when the first write is in flight
	failErr error
	once    sync.Once
	first   sync.Once
}

func (g *gateHooks) Write(f *os.File, p []byte) (int, error) {
	blocked := false
	g.first.Do(func() { blocked = true })
	if blocked {
		g.once.Do(func() { close(g.entered) })
		<-g.hold
		return 0, g.failErr
	}
	return f.Write(p)
}

func (g *gateHooks) Sync(f *os.File) error { return f.Sync() }

// TestGroupCommitFaultFailsAllWaiters injects an ENOSPC mid-group-commit
// and asserts every coalesced waiter gets a clean error, the log poisons,
// and nothing unacknowledged was acknowledged.
func TestGroupCommitFaultFailsAllWaiters(t *testing.T) {
	dir := t.TempDir()
	g := &gateHooks{
		hold:    make(chan struct{}),
		entered: make(chan struct{}),
		failErr: &os.PathError{Op: "write", Path: "seg", Err: syscall.ENOSPC},
	}
	w, err := Open(Options{Dir: dir, Hooks: g})
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 7
	errs := make(chan error, waiters)
	// First append enters the (blocked) flush; the rest pile into pending.
	go func() {
		_, err := w.Append([]byte("first"))
		errs <- err
	}()
	<-g.entered
	for i := 1; i < waiters; i++ {
		go func(i int) {
			_, err := w.Append([]byte(fmt.Sprintf("queued-%d", i)))
			errs <- err
		}(i)
	}
	// Give the queued appends time to land in pending, then fail the flush.
	time.Sleep(50 * time.Millisecond)
	close(g.hold)

	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("waiter %d: err = %v, want ENOSPC", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d never acknowledged: group commit wedged", i)
		}
	}
	if err := w.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Err() = %v, want the poisoning ENOSPC", err)
	}
	// The poisoned log must refuse further appends immediately.
	if _, err := w.Append([]byte("late")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append after poison: %v, want sticky ENOSPC", err)
	}
	w.Close()

	// The segment must reopen cleanly, and none of the failed records may
	// replay (the fault wrote zero bytes).
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	defer w2.Close()
	recs, _ := collect(t, dir, Pos{})
	if len(recs) != 0 {
		t.Fatalf("replayed %d records, want 0: an unacked record resurfaced", len(recs))
	}
	if _, err := w2.Append([]byte("recovered")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestInjectedWALFaults drives the injector's three WAL fault kinds
// through a real log: acked records must replay after reopen, the failed
// segment must stay reopenable, and disk-full faults must leave no trace.
func TestInjectedWALFaults(t *testing.T) {
	cases := []struct {
		name  string
		kind  faultinject.Kind
		exact bool // replay must contain ONLY the acked records
	}{
		{"enospc", faultinject.KindWALWrite, true},
		{"short-write", faultinject.KindWALShortWrite, false},
		{"fsync-error", faultinject.KindWALSync, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			in := faultinject.New(7)
			w, err := Open(Options{Dir: dir, Fsync: true, Hooks: in.WALHooks("n")})
			if err != nil {
				t.Fatal(err)
			}
			var acked [][]byte
			for i := 0; i < 5; i++ {
				p := []byte(fmt.Sprintf("acked-%d", i))
				if _, err := w.Append(p); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, p)
			}

			in.Add(faultinject.Rule{To: "n", Kind: tc.kind})
			var wg sync.WaitGroup
			var failed int32
			var mu sync.Mutex
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := w.Append([]byte(fmt.Sprintf("doomed-%d", i))); err != nil {
						mu.Lock()
						failed++
						mu.Unlock()
					}
				}(i)
			}
			wg.Wait()
			if failed != 8 {
				t.Fatalf("%d/8 appends failed; an append was acked despite the injected fault", failed)
			}
			if w.Err() == nil {
				t.Fatal("log not poisoned after injected fault")
			}
			w.Close()

			// Faults clear; the segment must reopen (truncating any torn
			// tail) and every acked record must replay, in order.
			in.Heal()
			w2, err := Open(Options{Dir: dir, Fsync: true, Hooks: in.WALHooks("n")})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			recs, _ := collect(t, dir, Pos{})
			if len(recs) < len(acked) {
				t.Fatalf("replayed %d records, want at least the %d acked", len(recs), len(acked))
			}
			for i, want := range acked {
				if string(recs[i]) != string(want) {
					t.Fatalf("record %d = %q, want acked %q", i, recs[i], want)
				}
			}
			if tc.exact && len(recs) != len(acked) {
				t.Fatalf("disk-full wrote zero bytes yet %d extra records replayed", len(recs)-len(acked))
			}
			// The reopened log accepts appends.
			if _, err := w2.Append([]byte("post-recovery")); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
