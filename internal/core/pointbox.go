package core

import (
	"fmt"

	"repro/geo"
)

// PointSketch and BoxSketch implement the two-sketch estimator of
// Section 6.3 (Lemmas 7 and 8): the point sketch is
// X_E = sum over points of prod_i xi-bar[a_i], the box sketch is
// Y_I = sum over hyper-rectangles of prod_i xi-bar[l_i, u_i], and
// Z = X_E * Y_I is an unbiased estimator of the number of (point, box)
// pairs with the point inside the box (closed containment).
//
// Two query types reduce to this estimator:
//
//   - epsilon-joins (Definition 2, L-infinity metric): expand each point of
//     B into the hyper-cube of side 2*eps around it (geo.Ball) and insert
//     the cubes into the BoxSketch;
//   - containment joins (Appendix B.2): a d-dim interval containment
//     r inside s becomes a 2d-dim point-in-box test with point
//     (l(r_1), u(r_1), ..., l(r_d), u(r_d)) and box
//     prod_j [l(s_j), u(s_j)]^2.
//
// No endpoint transformation is needed: closed containment is exactly the
// predicate both reductions want.

// PointSketch summarizes a set of points: one counter per instance.
type PointSketch struct {
	plan     *Plan
	counters []int64 // [instance]
	count    int64
	ptBuf    [][]uint64
}

// NewPointSketch returns an empty point sketch.
func (p *Plan) NewPointSketch() *PointSketch {
	return &PointSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances),
		ptBuf:    make([][]uint64, p.cfg.Dims),
	}
}

// Plan returns the plan the sketch was built from.
func (s *PointSketch) Plan() *Plan { return s.plan }

// Count returns the number of points summarized.
func (s *PointSketch) Count() int64 { return s.count }

// Insert adds a point.
func (s *PointSketch) Insert(pt geo.Point) error { return s.update(pt, +1) }

// Delete removes a previously inserted point.
func (s *PointSketch) Delete(pt geo.Point) error { return s.update(pt, -1) }

func (s *PointSketch) update(pt geo.Point, sign int64) error {
	p := s.plan
	if err := p.checkPoint(pt); err != nil {
		return err
	}
	d := p.cfg.Dims
	for i := 0; i < d; i++ {
		s.ptBuf[i] = p.doms[i].PointCoverMax(pt[i], p.maxLevel[i], s.ptBuf[i][:0])
	}
	for inst := 0; inst < p.cfg.Instances; inst++ {
		fams := p.fams[inst]
		prod := sign
		for i := 0; i < d; i++ {
			prod *= fams[i].SumSigns(s.ptBuf[i])
		}
		s.counters[inst] += prod
	}
	s.count += sign
	return nil
}

// InsertAll bulk-loads points.
func (s *PointSketch) InsertAll(pts []geo.Point) error {
	for _, pt := range pts {
		if err := s.Insert(pt); err != nil {
			return err
		}
	}
	return nil
}

// BoxSketch summarizes a set of hyper-rectangles with pure interval covers:
// one counter per instance.
type BoxSketch struct {
	plan     *Plan
	counters []int64 // [instance]
	count    int64
	covBuf   [][]uint64
}

// NewBoxSketch returns an empty box sketch.
func (p *Plan) NewBoxSketch() *BoxSketch {
	return &BoxSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances),
		covBuf:   make([][]uint64, p.cfg.Dims),
	}
}

// Plan returns the plan the sketch was built from.
func (s *BoxSketch) Plan() *Plan { return s.plan }

// Count returns the number of boxes summarized.
func (s *BoxSketch) Count() int64 { return s.count }

// Insert adds a hyper-rectangle.
func (s *BoxSketch) Insert(rect geo.HyperRect) error { return s.update(rect, +1) }

// Delete removes a previously inserted hyper-rectangle.
func (s *BoxSketch) Delete(rect geo.HyperRect) error { return s.update(rect, -1) }

func (s *BoxSketch) update(rect geo.HyperRect, sign int64) error {
	p := s.plan
	if err := p.checkRect(rect); err != nil {
		return err
	}
	d := p.cfg.Dims
	for i := 0; i < d; i++ {
		s.covBuf[i] = p.doms[i].CoverMax(rect[i].Lo, rect[i].Hi, p.maxLevel[i], s.covBuf[i][:0])
	}
	for inst := 0; inst < p.cfg.Instances; inst++ {
		fams := p.fams[inst]
		prod := sign
		for i := 0; i < d; i++ {
			prod *= fams[i].SumSigns(s.covBuf[i])
		}
		s.counters[inst] += prod
	}
	s.count += sign
	return nil
}

// InsertAll bulk-loads hyper-rectangles.
func (s *BoxSketch) InsertAll(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := s.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// EstimatePointInBox estimates the number of (point, box) pairs with the
// point inside the box: Z = X_E * Y_I per instance, boosted (Lemmas 7-8).
// Both sketches must come from the same plan.
func EstimatePointInBox(pts *PointSketch, boxes *BoxSketch) (Estimate, error) {
	if !samePlan(pts.plan, boxes.plan) {
		return Estimate{}, fmt.Errorf("core: sketches come from different plans")
	}
	zs := make([]float64, pts.plan.cfg.Instances)
	for inst := range zs {
		zs[inst] = float64(pts.counters[inst]) * float64(boxes.counters[inst])
	}
	return boost(zs, pts.plan.cfg.Groups), nil
}

// ContainmentPoint maps a d-dim hyper-rectangle r to the 2d-dim point
// (l(r_1), u(r_1), ..., l(r_d), u(r_d)) of the Appendix B.2 reduction.
func ContainmentPoint(r geo.HyperRect) geo.Point {
	pt := make(geo.Point, 2*len(r))
	for i, iv := range r {
		pt[2*i] = iv.Lo
		pt[2*i+1] = iv.Hi
	}
	return pt
}

// ContainmentBox maps a d-dim hyper-rectangle s to the 2d-dim box
// prod_j [l(s_j), u(s_j)]^2 of the Appendix B.2 reduction: r is contained
// in s iff ContainmentPoint(r) lies in ContainmentBox(s).
func ContainmentBox(s geo.HyperRect) geo.HyperRect {
	box := make(geo.HyperRect, 2*len(s))
	for i, iv := range s {
		box[2*i] = iv
		box[2*i+1] = iv
	}
	return box
}
