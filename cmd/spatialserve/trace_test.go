package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Tracing tests: the /admin/trace endpoints on one node, exemplars and
// the slow-op log, pprof gating, and the headline claim - one clustered
// estimate stitches into a single trace tree covering the router, the
// remote shard owners and the WAL, retrievable from any node.

// tpHeader builds a traceparent header for a caller-minted trace ID.
func tpHeader(traceID string) map[string]string {
	return map[string]string{"traceparent": "00-" + traceID + "-00f067aa0ba902b7-01"}
}

// traceCreateJoin creates the canonical join estimator "j" on base.
func traceCreateJoin(t *testing.T, base string) {
	t.Helper()
	mustDo(t, "POST", base+"/v1/estimators", mustJSON(t, createRequest{
		Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: 1 << 12, Seed: 1, Instances: 64, Groups: 4},
	}), http.StatusCreated)
}

// getTrace fetches and decodes GET /admin/trace/{id} from base.
func getTrace(t *testing.T, base, id string) traceGetResponse {
	t.Helper()
	var resp traceGetResponse
	if err := json.Unmarshal(mustDo(t, "GET", base+"/admin/trace/"+id, nil, http.StatusOK), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// spanNames flattens a trace response to its deduplicated span names.
func spanNames(resp traceGetResponse) map[string]int {
	names := map[string]int{}
	seen := map[string]bool{}
	for _, seg := range resp.Segments {
		for _, sp := range seg.Spans {
			if !seen[sp.SpanID] {
				seen[sp.SpanID] = true
				names[sp.Name]++
			}
		}
	}
	return names
}

// TestTraceEndpointsSingleNode drives traced requests through one node
// and exercises GET /admin/trace listing, filtering, argument
// validation, and single-trace retrieval.
func TestTraceEndpointsSingleNode(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.Tracer().SetSampleRate(1)
	ht := httptest.NewServer(s)
	defer ht.Close()
	traceCreateJoin(t, ht.URL)

	tidUpdate := "11111111111111111111111111111111"
	tidEstimate := "22222222222222222222222222222222"
	body := []byte(`{"side":"left","rects":[[[1,5],[2,8]]]}`)
	if resp, data := httpDo(t, "POST", ht.URL+"/v1/estimators/j/update", body, tpHeader(tidUpdate)); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, data)
	}
	if resp, data := httpDo(t, "GET", ht.URL+"/v1/estimators/j/estimate", nil, tpHeader(tidEstimate)); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", resp.StatusCode, data)
	}

	var list traceListResponse
	if err := json.Unmarshal(mustDo(t, "GET", ht.URL+"/admin/trace", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	found := map[string]trace.Summary{}
	for _, tr := range list.Traces {
		found[tr.TraceID] = tr
	}
	if tr, ok := found[tidUpdate]; !ok || tr.Endpoint != "update" {
		t.Fatalf("update trace %s not listed with endpoint=update: %+v", tidUpdate, tr)
	}
	if tr, ok := found[tidEstimate]; !ok || tr.Endpoint != "estimate" || tr.Root != "http estimate" {
		t.Fatalf("estimate trace %s not listed as http estimate: %+v", tidEstimate, tr)
	}
	if list.Stats.Retained == 0 || list.Stats.Completed < list.Stats.Retained {
		t.Fatalf("implausible tracer stats: %+v", list.Stats)
	}

	// Endpoint filter narrows to the estimate trace only.
	if err := json.Unmarshal(mustDo(t, "GET", ht.URL+"/admin/trace?endpoint=estimate", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	for _, tr := range list.Traces {
		if tr.Endpoint != "estimate" {
			t.Fatalf("endpoint filter leaked %+v", tr)
		}
	}
	mustDo(t, "GET", ht.URL+"/admin/trace?min_ms=abc", nil, http.StatusBadRequest)
	mustDo(t, "GET", ht.URL+"/admin/trace?limit=0", nil, http.StatusBadRequest)

	got := getTrace(t, ht.URL, tidEstimate)
	if got.TraceID != tidEstimate || got.Spans < 1 || len(got.Tree) == 0 {
		t.Fatalf("trace get: %+v", got)
	}
	if got.Tree[0].Name != "http estimate" || got.Tree[0].SpanData.Attr("endpoint") != "estimate" {
		t.Fatalf("root span %+v, want http estimate", got.Tree[0].SpanData)
	}
	// The root is a child of the caller's minted span, not a new root.
	if got.Tree[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("root parent %q, want the traceparent's span ID", got.Tree[0].ParentID)
	}

	mustDo(t, "GET", ht.URL+"/admin/trace/ffffffffffffffffffffffffffffffff", nil, http.StatusNotFound)
	mustDo(t, "GET", ht.URL+"/admin/trace/nothex", nil, http.StatusBadRequest)
}

// TestTraceExemplarAndSlowOpLog checks the two cross-reference paths out
// of a trace: the request-latency histogram exposes an exemplar carrying
// the retained trace's ID, and the slow-op log emits a JSON line naming
// the same trace.
func TestTraceExemplarAndSlowOpLog(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.Tracer().SetSampleRate(1)
	var slow bytes.Buffer
	s.EnableSlowOpLog(&slow, time.Nanosecond) // everything is "slow"
	ht := httptest.NewServer(s)
	defer ht.Close()
	traceCreateJoin(t, ht.URL)

	tid := "33333333333333333333333333333333"
	if resp, data := httpDo(t, "GET", ht.URL+"/v1/estimators/j/estimate", nil, tpHeader(tid)); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", resp.StatusCode, data)
	}

	metricsBody := mustDo(t, "GET", ht.URL+"/metrics", nil, http.StatusOK)
	if !metrics.HasSeries(metricsBody, "spatialserve_request_seconds_exemplar") {
		t.Fatalf("no exemplar family in /metrics:\n%s", metricsBody)
	}
	if !strings.Contains(string(metricsBody), `trace_id="`+tid+`"`) {
		t.Fatalf("exemplar does not carry the retained trace ID %s:\n%s", tid, metricsBody)
	}
	if err := metrics.Lint(metricsBody); err != nil {
		t.Fatalf("exposition with exemplars fails lint: %v", err)
	}

	var sawEstimate bool
	for _, line := range strings.Split(strings.TrimSpace(slow.String()), "\n") {
		var op trace.SlowOp
		if err := json.Unmarshal([]byte(line), &op); err != nil {
			t.Fatalf("slow-op line %q: %v", line, err)
		}
		if op.Op == "" || op.Duration <= 0 {
			t.Fatalf("slow-op line missing op/duration: %q", line)
		}
		if op.Endpoint == "estimate" {
			sawEstimate = true
			if op.TraceID != tid {
				t.Fatalf("slow-op trace_id %q, want %q", op.TraceID, tid)
			}
			if op.Status != http.StatusOK {
				t.Fatalf("slow-op status %d, want 200", op.Status)
			}
		}
	}
	if !sawEstimate {
		t.Fatalf("no slow-op line for the estimate:\n%s", slow.String())
	}
}

// TestPprofGate checks /debug/pprof is absent by default and served
// (admission-exempt) once enabled.
func TestPprofGate(t *testing.T) {
	s := NewServer()
	defer s.Close()
	// Admission configured so tight that any non-exempt request is shed.
	s.EnableAdmission(AdmitOptions{ShedQPS: 0.000001, ShedBurst: 1})
	ht := httptest.NewServer(s)
	defer ht.Close()

	if resp, _ := httpDo(t, "GET", ht.URL+"/debug/pprof/", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: status %d", resp.StatusCode)
	}
	s.EnablePprof()
	// Burn the only token so the exemption is what lets pprof through.
	httpDo(t, "GET", ht.URL+"/v1/estimators", nil, nil)
	if resp, data := httpDo(t, "GET", ht.URL+"/debug/pprof/cmdline", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d: %s", resp.StatusCode, data)
	}
	if resp, _ := httpDo(t, "GET", ht.URL+"/debug/pprof/", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: not admission-exempt")
	}
}

// TestClusterTraceStitched is the tentpole's acceptance test: traced
// writes and a traced estimate against a persistent 3-node cluster must
// each assemble into a single tree - root span on the routing node,
// fan-out child spans, remote owners' serving spans stitched under them,
// and the WAL append visible for the create (the JSON update's WAL write
// rides the library's context-free tap by design) - retrievable from ANY
// node, including one that recorded nothing locally.
func TestClusterTraceStitched(t *testing.T) {
	srvs, urls := startCluster(t, 3, true)
	for _, s := range srvs {
		s.Tracer().SetSampleRate(1)
	}

	tidCreate := "cccccccccccccccccccccccccccccccc"
	if resp, data := httpDo(t, "POST", urls[0]+"/v1/estimators", mustJSON(t, createRequest{
		Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: 1 << 12, Seed: 1, Instances: 64, Groups: 4},
	}), tpHeader(tidCreate)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}

	tidUpdate := "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	tidEstimate := "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
	body := []byte(`{"side":"left","rects":[[[1,5],[2,8]]]}`)
	if resp, data := httpDo(t, "POST", urls[0]+"/v1/estimators/j/update", body, tpHeader(tidUpdate)); resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, data)
	}
	if resp, data := httpDo(t, "GET", urls[0]+"/v1/estimators/j/estimate", nil, tpHeader(tidEstimate)); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", resp.StatusCode, data)
	}

	// The estimate trace, fetched from a node that did NOT route it: peer
	// segment fetch must still assemble the full tree.
	est := getTrace(t, urls[2], tidEstimate)
	if len(est.Nodes) < 2 {
		t.Fatalf("estimate trace covers nodes %v, want the router plus at least one remote owner", est.Nodes)
	}
	names := spanNames(est)
	if names["http estimate"] == 0 {
		t.Fatalf("no router root span in %v", names)
	}
	if names["fanout.snapshot"] == 0 {
		t.Fatalf("no fan-out spans in %v", names)
	}
	if len(est.Tree) != 1 {
		t.Fatalf("estimate trace has %d roots, want 1 stitched tree: %v", len(est.Tree), names)
	}
	// Remote owners' serving spans must hang under the router's fan-out
	// spans, not float as orphan roots.
	var remoteStitched func(n *traceTreeNode) bool
	rootNode := est.Tree[0].SpanData.Node
	remoteStitched = func(n *traceTreeNode) bool {
		for _, c := range n.Children {
			if c.SpanData.Node != rootNode && c.SpanData.Node != "" {
				return true
			}
			if remoteStitched(c) {
				return true
			}
		}
		return false
	}
	if !remoteStitched(est.Tree[0]) {
		t.Fatalf("no remote span stitched under the router's tree (nodes %v)", est.Nodes)
	}

	// The update trace: routed fan-out to the owning shard, fetched from
	// yet another node.
	upd := getTrace(t, urls[1], tidUpdate)
	names = spanNames(upd)
	if names["http update"] == 0 || names["fanout.update"] == 0 {
		t.Fatalf("update trace missing routing spans: %v", names)
	}
	if len(upd.Tree) != 1 {
		t.Fatalf("update trace has %d roots, want 1 stitched tree: %v", len(upd.Tree), names)
	}

	// The create trace carries the durability layer: every owner's
	// walOpCreate append is a wal.append span under the same trace.
	cre := getTrace(t, urls[2], tidCreate)
	names = spanNames(cre)
	if names["wal.append"] == 0 {
		t.Fatalf("create trace missing WAL append spans: %v", names)
	}
	if len(cre.Nodes) < 2 {
		t.Fatalf("create trace covers nodes %v, want at least 2", cre.Nodes)
	}
	if len(cre.Tree) != 1 {
		t.Fatalf("create trace has %d roots, want 1 stitched tree: %v", len(cre.Tree), names)
	}
}
