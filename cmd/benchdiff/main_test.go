package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// writeDoc dumps a document to a temp file and returns the path.
func writeDoc(t *testing.T, dir, name string, d *benchfmt.Document) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(name string, metrics map[string]float64) benchfmt.Record {
	return benchfmt.Record{Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareDirections(t *testing.T) {
	oldDoc := benchfmt.NewDocument()
	oldDoc.Benchmarks = []benchfmt.Record{
		rec("Load/steady/estimate", map[string]float64{"p99_ns": 1000, "ops_per_sec": 500}),
	}
	// p99 +60% (regression at 25%), throughput -60% (regression).
	newDoc := benchfmt.NewDocument()
	newDoc.Benchmarks = []benchfmt.Record{
		rec("Load/steady/estimate", map[string]float64{"p99_ns": 1600, "ops_per_sec": 200}),
	}
	comps, _, _ := compareDocs(oldDoc, newDoc, nil, 25, 0)
	if len(comps) != 2 {
		t.Fatalf("got %d comparisons, want 2: %+v", len(comps), comps)
	}
	for _, c := range comps {
		if !c.regressed {
			t.Errorf("%s: not flagged (delta %+.1f%%)", c.key, c.deltaPct)
		}
	}
	// Within threshold: +60% tolerance passes both.
	comps, _, _ = compareDocs(oldDoc, newDoc, nil, 61, 0)
	for _, c := range comps {
		if c.regressed {
			t.Errorf("%s: flagged despite threshold 61%% (delta %+.1f%%)", c.key, c.deltaPct)
		}
	}
	// Improvements never regress: swap old and new.
	comps, _, _ = compareDocs(newDoc, oldDoc, nil, 25, 0)
	for _, c := range comps {
		if c.regressed {
			t.Errorf("%s: improvement flagged as regression", c.key)
		}
	}
}

func TestMissingBenchmarksAreNotesNotFailures(t *testing.T) {
	oldDoc := benchfmt.NewDocument()
	oldDoc.Benchmarks = []benchfmt.Record{rec("OnlyOld", map[string]float64{"p99_ns": 1})}
	newDoc := benchfmt.NewDocument()
	newDoc.Benchmarks = []benchfmt.Record{rec("OnlyNew", map[string]float64{"p99_ns": 1})}
	comps, onlyOld, onlyNew := compareDocs(oldDoc, newDoc, nil, 25, 0)
	if len(comps) != 0 {
		t.Errorf("unmatched benchmarks produced comparisons: %+v", comps)
	}
	if len(onlyOld) != 1 || len(onlyNew) != 1 {
		t.Errorf("onlyOld=%v onlyNew=%v, want one each", onlyOld, onlyNew)
	}
}

func TestMetricFilterAndNoiseFloor(t *testing.T) {
	oldDoc := benchfmt.NewDocument()
	oldDoc.Benchmarks = []benchfmt.Record{
		rec("B", map[string]float64{"p99_ns": 100, "p50_ns": 10, "errors": 0}),
	}
	newDoc := benchfmt.NewDocument()
	newDoc.Benchmarks = []benchfmt.Record{
		rec("B", map[string]float64{"p99_ns": 1000, "p50_ns": 1000, "errors": 3}),
	}
	comps, _, _ := compareDocs(oldDoc, newDoc, []string{"p99_ns"}, 25, 0)
	if len(comps) != 1 || comps[0].metric != "p99_ns" || !comps[0].regressed {
		t.Fatalf("metric filter: got %+v", comps)
	}
	// Noise floor: both sides under min-base are skipped; a zero baseline
	// (errors 0 -> 3) never divides by zero and never regresses.
	comps, _, _ = compareDocs(oldDoc, newDoc, nil, 25, 5000)
	for _, c := range comps {
		if c.metric == "p50_ns" || c.metric == "p99_ns" {
			t.Errorf("%s compared below noise floor", c.metric)
		}
		if c.regressed {
			t.Errorf("%s regressed with zero/sub-floor baseline", c.metric)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldDoc := benchfmt.NewDocument()
	oldDoc.Benchmarks = []benchfmt.Record{rec("E", map[string]float64{"p99_ns": 1000})}
	newDoc := benchfmt.NewDocument()
	newDoc.Benchmarks = []benchfmt.Record{rec("E", map[string]float64{"p99_ns": 5000})}
	oldPath := writeDoc(t, dir, "old.json", oldDoc)
	newPath := writeDoc(t, dir, "new.json", newDoc)

	var out bytes.Buffer
	n, err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "25"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION line:\n%s", out.String())
	}

	out.Reset()
	n, err = run([]string{"-old", oldPath, "-new", oldPath}, &out)
	if err != nil || n != 0 {
		t.Fatalf("self-diff: n=%d err=%v\n%s", n, err, out.String())
	}
}

// TestAgainstCommittedArtifact pins the CI contract: the committed
// BENCH_PR9.json must diff cleanly against itself, whatever its
// contents.
func TestAgainstCommittedArtifact(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_PR9.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed artifact: %v", err)
	}
	var out bytes.Buffer
	n, err := run([]string{"-old", path, "-new", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("artifact regresses against itself:\n%s", out.String())
	}
}
