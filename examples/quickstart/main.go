// Quickstart: estimate the selectivity of a spatial join from single-pass
// sketches of two rectangle relations, and compare with the exact count.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	spatial "repro"
	"repro/geo"
)

func main() {
	const (
		domain = 1 << 14 // coordinates in [0, 16384)
		n      = 20000
	)
	// A query optimizer deciding between join plans needs |R join S|
	// without executing the join. Build a sketch-based estimator with a
	// 16K-word budget (a fraction of a percent of the data size).
	est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims:       2,
		DomainSize: domain,
		Sizing:     spatial.Sizing{MemoryWords: 16384},
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream the two relations through the estimator - one pass, no
	// buffering, deletes also supported.
	rng := rand.New(rand.NewPCG(7, 7))
	var r, s []geo.HyperRect
	for i := 0; i < n; i++ {
		r = append(r, randomRect(rng, domain))
		s = append(s, randomRect(rng, domain))
	}
	if err := est.InsertLeftBulk(r); err != nil {
		log.Fatal(err)
	}
	if err := est.InsertRightBulk(s); err != nil {
		log.Fatal(err)
	}

	card, err := est.Cardinality()
	if err != nil {
		log.Fatal(err)
	}
	sel, err := est.Selectivity()
	if err != nil {
		log.Fatal(err)
	}

	// Exact answer for comparison (quadratic scan - exactly what the
	// estimator lets a real system avoid).
	var exactCount int
	for _, a := range r {
		for _, b := range s {
			if a.Overlaps(b) {
				exactCount++
			}
		}
	}

	fmt.Printf("relations:     |R| = |S| = %d rectangles\n", n)
	fmt.Printf("synopsis:      %d words (%d sketch instances)\n", est.SpaceWords(), est.Instances())
	fmt.Printf("estimate:      %.0f overlapping pairs\n", card.Clamped())
	fmt.Printf("exact:         %d overlapping pairs\n", exactCount)
	fmt.Printf("rel. error:    %.2f%%\n", 100*abs(card.Clamped()-float64(exactCount))/float64(exactCount))
	fmt.Printf("selectivity:   %.3g\n", sel)
}

func randomRect(rng *rand.Rand, domain uint64) geo.HyperRect {
	side := func() (uint64, uint64) {
		length := 64 + rng.Uint64N(512)
		lo := rng.Uint64N(domain - length)
		return lo, lo + length
	}
	xlo, xhi := side()
	ylo, yhi := side()
	return geo.Rect(xlo, xhi, ylo, yhi)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
