package trace

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowOp is one structured slow-operation log entry, written as a
// single JSON line. It replaces free-form log.Printf in hot handlers:
// every field is machine-greppable and the trace ID links the line to
// GET /admin/trace/{id}.
type SlowOp struct {
	// Time is when the operation finished.
	Time time.Time `json:"ts"`
	// Op names the operation ("http update", "stream batch", ...).
	Op string `json:"op"`
	// TraceID links the line to the retained trace, when one exists.
	TraceID string `json:"trace_id,omitempty"`
	// RequestID is the X-Request-Id the client saw.
	RequestID string `json:"request_id,omitempty"`
	// Tenant is the namespace the operation ran in.
	Tenant string `json:"tenant,omitempty"`
	// Endpoint is the bounded endpoint class.
	Endpoint string `json:"endpoint,omitempty"`
	// Status is the HTTP status answered, when the op is a request.
	Status int `json:"status,omitempty"`
	// Duration is the operation's wall-clock duration in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// Err carries the failure message for errored operations.
	Err string `json:"error,omitempty"`
	// Node is the reporting node's self ID.
	Node string `json:"node,omitempty"`
}

// SlowOpLogger writes SlowOp JSON lines for operations at or above a
// runtime-adjustable latency threshold. Safe for concurrent use. A nil
// logger is a no-op, as is a threshold of zero or below (disabled).
type SlowOpLogger struct {
	mu          sync.Mutex
	w           io.Writer
	thresholdNs atomic.Int64
	node        string
}

// NewSlowOpLogger builds a logger writing to w; ops faster than
// threshold are skipped, and threshold <= 0 disables the logger. node
// is stamped on every line.
func NewSlowOpLogger(w io.Writer, threshold time.Duration, node string) *SlowOpLogger {
	l := &SlowOpLogger{w: w, node: node}
	l.thresholdNs.Store(int64(threshold))
	return l
}

// Threshold returns the current slow-op latency threshold.
func (l *SlowOpLogger) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.thresholdNs.Load())
}

// SetThreshold changes the slow-op latency threshold (<= 0 disables).
func (l *SlowOpLogger) SetThreshold(d time.Duration) {
	if l != nil {
		l.thresholdNs.Store(int64(d))
	}
}

// Enabled reports whether an op of duration d would be logged - the
// cheap check call sites make before assembling a SlowOp.
func (l *SlowOpLogger) Enabled(d time.Duration) bool {
	if l == nil || l.w == nil {
		return false
	}
	th := l.thresholdNs.Load()
	return th > 0 && int64(d) >= th
}

// Observe writes op as one JSON line if its Duration is at or above
// the threshold, and reports whether it was written.
func (l *SlowOpLogger) Observe(op SlowOp) bool {
	if !l.Enabled(op.Duration) {
		return false
	}
	if op.Node == "" {
		op.Node = l.node
	}
	if op.Time.IsZero() {
		op.Time = time.Now()
	}
	line, err := json.Marshal(op)
	if err != nil {
		return false
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(line)
	l.mu.Unlock()
	return werr == nil
}
