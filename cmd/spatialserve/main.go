// Command spatialserve serves a registry of named spatial estimators over
// HTTP: insert/delete streams at the edge, estimates, full-estimator
// snapshots and merges - the paper's build-then-merge deployment
// (synopses built near the data, shipped and combined centrally) as a
// long-running service. Estimators are safe for concurrent use, so mixed
// reader/writer traffic needs no external locking.
//
// With -data-dir the registry is durable: every mutation is written ahead
// to a group-committed WAL before it is applied, checkpoints run in the
// background (and on demand via POST /admin/checkpoint), and on startup
// the registry is recovered from the latest checkpoint plus the WAL
// suffix - bit-identical to a server that never crashed, torn final
// records tolerated. See docs/ARCHITECTURE.md for the design and
// docs/SNAPSHOT_FORMAT.md for the on-disk formats.
//
// Tenants are namespaces with limits: register one with PUT
// /v1/tenants/{t} (memory budget in exact counter words, rate limits)
// and reach its estimators under /v1/tenants/{t}/estimators/... - the
// bare /v1/estimators routes are the built-in "default" tenant. Every
// server also exposes Prometheus metrics on GET /metrics (per-tenant
// latency, admission sheds, WAL lag, cache hit rates; exempt from
// admission shedding) and echoes/propagates X-Request-Id trace IDs.
// See docs/OPERATIONS.md for the series reference and quota runbook.
//
// High-volume writers use POST /v1/ingest, which upgrades to the
// spatial-ingest/1 binary streaming protocol: sequenced exactly-once
// batches acked after WAL commit, reconnect-resume from a persisted
// per-session watermark, credit-based backpressure (see
// docs/INGEST_PROTOCOL.md; client package repro/ingestclient). The JSON
// update path gets the same retry safety via an Idempotency-Key header.
//
// Usage:
//
//	spatialserve -addr :8080 \
//	    -data-dir /var/lib/spatialserve \
//	    -checkpoint-interval 30s \
//	    -fsync=false
//
// Create an estimator, stream objects, estimate, snapshot:
//
//	curl -X POST localhost:8080/v1/estimators -d \
//	  '{"name":"parks-roads","kind":"join","config":{"dims":2,"domainSize":65536,"memoryWords":8192,"seed":42}}'
//	curl -X POST localhost:8080/v1/estimators/parks-roads/update -d \
//	  '{"side":"left","rects":[[[10,50],[20,80]]]}'
//	curl localhost:8080/v1/estimators/parks-roads/estimate
//	curl localhost:8080/v1/estimators/parks-roads/snapshot > parks-roads.spe1
//	curl -X POST --data-binary @parks-roads.spe1 localhost:8080/v1/estimators/parks-roads/merge
//	curl -X POST localhost:8080/admin/checkpoint   # durable checkpoint now
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

// errUsage signals that the flag package already reported a usage problem
// (message plus usage text); main exits non-zero without re-printing it.
var errUsage = errors.New("invalid arguments")

// parsePeers turns the -peers flag ("id=url,id=url,...") into a version-1
// partition map.
func parsePeers(peers string, vnodes int) (*cluster.Map, error) {
	m := &cluster.Map{Version: 1, VNodes: vnodes}
	for _, part := range strings.Split(peers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q is not id=url", part)
		}
		m.Nodes = append(m.Nodes, cluster.Node{ID: strings.TrimSpace(id), URL: strings.TrimRight(strings.TrimSpace(u), "/")})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseReplicas turns the -read-replicas flag ("id=url,...") into the
// map's replica attachments (validated against membership by the caller).
func parseReplicas(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("read-replica %q is not id=url", part)
		}
		out[strings.TrimSpace(id)] = strings.TrimRight(strings.TrimSpace(u), "/")
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run parses args, builds the (optionally persistent) server and serves
// until SIGINT/SIGTERM, then shuts down gracefully: stop accepting, flush
// a final checkpoint, close the WAL. The "listening on" line goes to out
// so wrappers (tests, examples) can discover a :0 port.
func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("spatialserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataDir := fs.String("data-dir", "", "durability root (WAL + checkpoints); empty serves in-memory only")
	fsync := fs.Bool("fsync", false, "fsync the WAL on every acknowledged mutation (power-loss durability; off, mutations still survive process crashes)")
	ckptEvery := fs.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period with -data-dir (0 disables periodic checkpoints)")
	segBytes := fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 64 MiB)")
	nodeID := fs.String("node-id", "", "cluster mode: this node's stable identity (must appear in -peers)")
	peers := fs.String("peers", "", "cluster mode: comma-separated id=url membership, identical on every node (e.g. a=http://h1:8080,b=http://h2:8080)")
	partitions := fs.Int("partitions", DefaultPartitions, "cluster mode: partitions per estimator, identical on every node")
	vnodes := fs.Int("vnodes", 0, "cluster mode: virtual nodes per member on the hash ring (0 = default)")
	follow := fs.String("follow", "", "replica mode: leader base URL to bootstrap from and tail (node serves reads only until /admin/promote)")
	replicaPoll := fs.Duration("replica-poll", 500*time.Millisecond, "replica mode: WAL tail poll interval")
	readReplicas := fs.String("read-replicas", "", "cluster mode: comma-separated id=url read-replica attachments; fan-out reads fall back to a node's replica when its breaker is open")
	maxReads := fs.Int("max-inflight-reads", 0, "admission control: max concurrently served read-class requests (0 = unlimited)")
	maxWrites := fs.Int("max-inflight-writes", 0, "admission control: max concurrently served write-class requests (0 = unlimited)")
	shedQPS := fs.Float64("shed-qps", 0, "admission control: token-bucket request rate above which requests are shed with 429 (0 = off)")
	shedBurst := fs.Int("shed-burst", 0, "admission control: token-bucket burst capacity (0 = one second of -shed-qps)")
	sessionTTL := fs.Duration("session-ttl", 24*time.Hour, "expire streaming-ingest session watermarks idle longer than this (0 disables; sessions with an attached stream never expire)")
	slowOp := fs.Duration("slow-op-threshold", 0, "log a structured JSON line (stderr) for requests and ingest batches at or above this duration, and always retain their traces (0 disables)")
	traceSample := fs.Float64("trace-sample", 0, "probability of retaining a fast, error-free trace in /admin/trace (0 = default 0.05; negative disables sampling, slow and errored traces are still kept)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ (admission-exempt)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage was printed, exit 0
		}
		return errUsage
	}

	var srv *Server
	var err error
	if *dataDir != "" {
		srv, err = NewPersistentServer(PersistOptions{
			DataDir:            *dataDir,
			Fsync:              *fsync,
			CheckpointInterval: *ckptEvery,
			SegmentBytes:       *segBytes,
		})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
		}
	} else {
		srv = NewServer()
	}

	if (*peers == "") != (*nodeID == "") {
		fmt.Fprintln(os.Stderr, "spatialserve: -peers and -node-id must be set together")
		return errUsage
	}
	if *peers != "" {
		m, err := parsePeers(*peers, *vnodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
			return errUsage
		}
		if *readReplicas != "" {
			if m.Replicas, err = parseReplicas(*readReplicas); err != nil {
				fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
				return errUsage
			}
			if err := m.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
				return errUsage
			}
		}
		if err := srv.EnableCluster(ClusterOptions{SelfID: *nodeID, Map: m, Partitions: *partitions}); err != nil {
			fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
			return errUsage
		}
	}
	srv.EnableAdmission(AdmitOptions{
		MaxInflightReads:  *maxReads,
		MaxInflightWrites: *maxWrites,
		ShedQPS:           *shedQPS,
		ShedBurst:         *shedBurst,
	})
	srv.StartSessionGC(*sessionTTL)
	if *slowOp > 0 {
		srv.EnableSlowOpLog(os.Stderr, *slowOp)
	}
	if *traceSample != 0 {
		srv.Tracer().SetSampleRate(*traceSample)
	}
	if *pprofOn {
		srv.EnablePprof()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *follow != "" {
		// Bootstrap synchronously so the node never serves an empty
		// registry; the listener is already bound, so peers retrying the
		// address see a slow accept, not a refused connection.
		if err := srv.StartReplica(*follow, *replicaPoll); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(out, "spatialserve listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case sig := <-sigc:
		log.Printf("spatialserve: %v: draining and flushing", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spatialserve: shutdown: %v", err)
	}
	// The final checkpoint + WAL flush: after this, restart replays
	// nothing and starts from the checkpoint alone.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("flushing on shutdown: %w", err)
	}
	return nil
}
