package geo

// Endpoint transformation (paper Section 5.2).
//
// The join estimators of Section 4 assume that no interval of R shares an
// endpoint coordinate with any interval of S (Assumption 1). The paper makes
// the assumption hold for arbitrary data by extending the domain
// N = {0, ..., n-1} with two fresh coordinates i+ and (i+1)- between every
// pair of consecutive values, and shrinking every S-interval "a little":
// l(s') = l(s)+ and u(s') = u(s)-. The transformation never changes which
// pairs overlap, and it grows the domain by at most a factor of three.
//
// We realize the augmented domain M as {0, ..., 3n-1} with the embedding
// x -> 3x; then x+ = 3x+1 and x- = 3x-1.

// TransformFactor is the domain growth factor of the endpoint
// transformation.
const TransformFactor = 3

// TransformCoord embeds a coordinate of the original domain into the
// endpoint-transformed domain (x -> 3x).
func TransformCoord(x uint64) uint64 { return TransformFactor * x }

// TransformDomain returns the size of the endpoint-transformed domain for an
// original domain of the given size.
func TransformDomain(n uint64) uint64 { return TransformFactor * n }

// TransformKeep embeds an interval into the transformed domain without
// shrinking it (the R side of the join).
func TransformKeep(iv Interval) Interval {
	return Interval{Lo: TransformFactor * iv.Lo, Hi: TransformFactor * iv.Hi}
}

// TransformShrink embeds an interval into the transformed domain and shrinks
// it by one augmented step at each end (the S side of the join):
// [l, u] -> [l+, u-] = [3l+1, 3u-1]. Degenerate (point) intervals collapse
// onto their embedded coordinate so they keep representing a single point.
func TransformShrink(iv Interval) Interval {
	if iv.IsPoint() {
		c := TransformFactor * iv.Lo
		return Interval{Lo: c, Hi: c}
	}
	return Interval{Lo: TransformFactor*iv.Lo + 1, Hi: TransformFactor*iv.Hi - 1}
}

// TransformKeepRect applies TransformKeep in every dimension.
func TransformKeepRect(h HyperRect) HyperRect {
	t := make(HyperRect, len(h))
	for i, iv := range h {
		t[i] = TransformKeep(iv)
	}
	return t
}

// TransformShrinkRect applies TransformShrink in every dimension.
func TransformShrinkRect(h HyperRect) HyperRect {
	t := make(HyperRect, len(h))
	for i, iv := range h {
		t[i] = TransformShrink(iv)
	}
	return t
}
