package main

import (
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/benchfmt"
)

// HDR-style latency recording: a fixed array of log-spaced buckets (8
// sub-buckets per power of two, so bucket width is 12.5% of the value)
// covers 1ns..~584y with no allocation on the hot path. Quantiles read
// the bucket lower bound, so a reported p99 is at most one bucket width
// below the true value - plenty for a load report.

// histSubBits is the per-octave sub-bucket resolution (2^3 = 8).
const histSubBits = 3

// histBuckets is the bucket count: 64 octaves x 8 sub-buckets.
const histBuckets = 64 << histSubBits

// hist is one operation class's latency record. Safe for concurrent use.
type hist struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	n      uint64
	errs   uint64
	sum    time.Duration
	max    time.Duration
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := uint64(d)
	if ns < 1<<histSubBits {
		return int(ns) // the first octaves are exact
	}
	exp := bits.Len64(ns) - 1
	sub := (ns >> (uint(exp) - histSubBits)) & (1<<histSubBits - 1)
	return (exp << histSubBits) | int(sub)
}

// bucketLow returns the smallest duration mapping to bucket i - the
// value quantile() reports for samples landing in it.
func bucketLow(i int) time.Duration {
	exp := i >> histSubBits
	sub := uint64(i & (1<<histSubBits - 1))
	if exp <= histSubBits {
		return time.Duration(i)
	}
	return time.Duration(1<<uint(exp) | sub<<(uint(exp)-histSubBits))
}

// observe records one successful operation's latency.
func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[bucketFor(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// fail records one failed operation (no latency sample).
func (h *hist) fail() {
	h.mu.Lock()
	h.errs++
	h.mu.Unlock()
}

// quantile returns the latency at quantile q in [0,1]. Caller holds mu.
func (h *hist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			return bucketLow(i)
		}
	}
	return h.max
}

// phaseStats aggregates one phase's histograms by operation class.
type phaseStats struct {
	name string
	dur  time.Duration // workers-active wall time, set at phase end

	mu    sync.Mutex
	hists map[string]*hist
}

// hist returns (creating on first use) the histogram for one op class.
func (p *phaseStats) hist(class string) *hist {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.hists[class]
	if h == nil {
		h = &hist{}
		p.hists[class] = h
	}
	return h
}

// record adds one phase's benchmark records to the report document:
// Load/<phase>/<class> with p50/p95/p99/max latencies, op and error
// counts, and throughput over the phase's active window.
func (p *phaseStats) record(doc *benchfmt.Document) {
	p.mu.Lock()
	defer p.mu.Unlock()
	classes := make([]string, 0, len(p.hists))
	for c := range p.hists {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		h := p.hists[c]
		h.mu.Lock()
		m := map[string]float64{
			"ops":    float64(h.n),
			"errors": float64(h.errs),
			"p50_ns": float64(h.quantile(0.50)),
			"p95_ns": float64(h.quantile(0.95)),
			"p99_ns": float64(h.quantile(0.99)),
			"max_ns": float64(h.max),
		}
		if p.dur > 0 {
			m["ops_per_sec"] = float64(h.n) / p.dur.Seconds()
		}
		doc.Benchmarks = append(doc.Benchmarks, benchfmt.Record{
			Pkg:        "repro/cmd/spatialload",
			Name:       "Load/" + p.name + "/" + c,
			Procs:      1,
			Iterations: int64(h.n),
			Metrics:    m,
		})
		h.mu.Unlock()
	}
}
