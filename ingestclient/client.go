// Package ingestclient is the reconnecting client side of the
// spatialserve streaming ingest protocol (internal/ingest,
// docs/INGEST_PROTOCOL.md). It owns everything the exactly-once
// contract asks of a writer: batches carry a session and a
// monotonically increasing sequence number, unacked batches are held
// until the server acknowledges their WAL commit, and every failure -
// connection killed mid-frame, server crash, overload shed - is
// answered by reconnecting with bounded backoff and resending exactly
// the unacked suffix. The server's persisted watermark drops anything
// it already committed, so the client can retry ambiguity forever
// without double-applying a single record.
package ingestclient

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	spatial "repro"
	"repro/internal/ingest"
)

// Options configures a Client. BaseURL, Estimator and Session are
// required; everything else has serviceable defaults.
type Options struct {
	// BaseURL is the server's root URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Estimator is the registry key to stream into (tenant-qualified
	// where applicable, e.g. "acme/objects").
	Estimator string
	// Session identifies this writer's sequence space. It must be unique
	// per logical writer and MUST NOT be reused after the estimator is
	// deleted and recreated (the fresh estimator would inherit nothing,
	// but a stale client would resume mid-sequence).
	Session string
	// Window caps unacked batches in flight; 0 adopts the server's
	// advertised credit window.
	Window int
	// MinBackoff and MaxBackoff bound the reconnect backoff (defaults
	// 50ms and 2s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Dial overrides connection establishment - the test hook that lets
	// a chaos harness hand out killable or rerouted connections. Nil
	// dials BaseURL's host over TCP.
	Dial func() (net.Conn, error)
	// DupEvery, when n > 0, writes every nth batch frame twice - a test
	// hook proving the server drops duplicate frames instead of
	// double-applying them.
	DupEvery int
}

// ErrClosed reports Send on a closed client.
var ErrClosed = errors.New("ingestclient: client is closed")

// Client is a streaming ingest session. All methods are safe for
// concurrent use; batches are sequenced in Send call order.
type Client struct {
	opts Options
	host string

	// writeMu serializes frame writes: Send's direct write and the run
	// loop's resend may target the same connection.
	writeMu sync.Mutex

	mu         sync.Mutex
	cond       *sync.Cond
	unacked    map[uint64][]byte // seq -> encoded batch frame
	nextSeq    uint64
	ackedSeq   uint64
	window     int
	termErr    error
	closed     bool
	conn       net.Conn
	reconnects uint64
	resent     uint64

	stop chan struct{}
	done chan struct{}
}

// Dial validates the options and starts the connection manager. It
// returns immediately; the first connection is established in the
// background (Send simply queues until then).
func Dial(opts Options) (*Client, error) {
	if opts.Estimator == "" || opts.Session == "" {
		return nil, errors.New("ingestclient: Estimator and Session are required")
	}
	if len(opts.Session) > ingest.MaxSessionIDBytes {
		return nil, fmt.Errorf("ingestclient: session ID exceeds %d bytes", ingest.MaxSessionIDBytes)
	}
	u, err := url.Parse(opts.BaseURL)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("ingestclient: bad BaseURL %q", opts.BaseURL)
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	c := &Client{
		opts:    opts,
		host:    u.Host,
		unacked: make(map[uint64][]byte),
		window:  opts.Window,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if c.window <= 0 {
		c.window = 32 // replaced by the server's advertisement on hello
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c, nil
}

// Send encodes one batch of records, assigns it the next sequence
// number and queues it, blocking while the in-flight window is full.
// Return does NOT mean durable - it means queued and (when a connection
// is live) written; durability is an ack, observed via Flush or Acked.
// A terminal stream error (bad record, unknown estimator) is returned
// here and poisons the client.
func (c *Client) Send(recs []spatial.UpdateRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var enc []byte
	for _, r := range recs {
		enc = r.AppendBinary(enc)
	}
	c.mu.Lock()
	for c.termErr == nil && !c.closed && len(c.unacked) >= c.window {
		c.cond.Wait()
	}
	if c.termErr != nil {
		err := c.termErr
		c.mu.Unlock()
		return err
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	frame := ingest.AppendBatch(nil, seq, len(recs), enc)
	c.unacked[seq] = frame
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		dup := c.opts.DupEvery > 0 && seq%uint64(c.opts.DupEvery) == 0
		// A write error is NOT a Send error: the frame stays unacked and
		// the run loop resends it on the next connection.
		c.writeFrames(conn, frame, dup)
	}
	return nil
}

// writeFrames writes one frame (twice under the duplicate-injection
// hook) under the write mutex, closing the connection on error so the
// run loop reconnects.
func (c *Client) writeFrames(conn net.Conn, frame []byte, dup bool) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		return
	}
	if dup {
		conn.Write(frame)
	}
}

// Flush blocks until every queued batch is acked (durable at the
// server) or the client fails terminally.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.termErr == nil && len(c.unacked) > 0 {
		c.cond.Wait()
	}
	return c.termErr
}

// Acked returns the highest acknowledged sequence number: every batch
// up to and including it is durably applied.
func (c *Client) Acked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ackedSeq
}

// Reconnects returns how many times the client re-established the
// connection.
func (c *Client) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Resent returns how many batch frames were retransmitted after
// reconnects.
func (c *Client) Resent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resent
}

// Close stops the client. It does not wait for unacked batches - call
// Flush first when delivery matters.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.stop)
	if conn != nil {
		conn.Close()
	}
	<-c.done
	return nil
}

// fail records a terminal error and wakes every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.termErr == nil {
		c.termErr = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// run is the connection manager: connect, resume, pump acks, and on any
// failure back off and start over. It exits on Close or terminal error.
func (c *Client) run() {
	defer close(c.done)
	attempt := 0
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		conn, br, ha, err := c.connect()
		if err != nil {
			if isTerminal(err) {
				c.fail(err)
				return
			}
			attempt++
			d := c.opts.MinBackoff << min(attempt, 16)
			if d <= 0 || d > c.opts.MaxBackoff {
				d = c.opts.MaxBackoff
			}
			select {
			case <-time.After(d):
			case <-c.stop:
				return
			}
			continue
		}
		attempt = 0
		if !c.resume(conn, ha) {
			conn.Close()
			return
		}
		c.readAcks(conn, br)
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		terminal := c.termErr != nil
		closed := c.closed
		c.mu.Unlock()
		conn.Close()
		if terminal || closed {
			return
		}
	}
}

// resume installs a fresh connection: adopt the server's watermark
// (dropping batches it already committed - the reconnect-resume
// contract), then retransmit the remaining unacked suffix in order.
// Returns false when the client closed concurrently.
func (c *Client) resume(conn net.Conn, ha ingest.HelloAck) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.reconnects++
	c.adoptAckLocked(ha.Watermark)
	if ha.Watermark > c.nextSeq {
		// The session is further along at the server than this client
		// instance ever got: a restarted writer reusing a live session.
		// Adopt the sequence space instead of colliding with it.
		c.nextSeq = ha.Watermark
	}
	if c.opts.Window <= 0 && ha.WindowBatches > 0 {
		c.window = int(ha.WindowBatches)
	}
	seqs := make([]uint64, 0, len(c.unacked))
	for s := range c.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	frames := make([][]byte, len(seqs))
	for i, s := range seqs {
		frames[i] = c.unacked[s]
	}
	c.resent += uint64(len(frames))
	c.conn = conn
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, f := range frames {
		c.writeFrames(conn, f, false)
	}
	return true
}

// readAcks pumps server frames until the connection dies: acks release
// window credit, retryable errors trigger a reconnect, terminal errors
// poison the client.
func (c *Client) readAcks(conn net.Conn, br *bufio.Reader) {
	for {
		ft, body, err := ingest.ReadFrame(br)
		if err != nil {
			return
		}
		switch ft {
		case ingest.FrameAck:
			seq, err := ingest.DecodeAck(body)
			if err != nil {
				return
			}
			c.mu.Lock()
			c.adoptAckLocked(seq)
			c.cond.Broadcast()
			c.mu.Unlock()
		case ingest.FrameError:
			se, err := ingest.DecodeError(body)
			if err != nil {
				return
			}
			if !se.Code.Retryable() {
				c.fail(se)
			}
			return
		default:
			return
		}
	}
}

// adoptAckLocked drops every batch at or below seq. Caller holds mu.
func (c *Client) adoptAckLocked(seq uint64) {
	for s := range c.unacked {
		if s <= seq {
			delete(c.unacked, s)
		}
	}
	if seq > c.ackedSeq {
		c.ackedSeq = seq
	}
}

// terminalHTTPError marks an upgrade refusal that retrying cannot fix.
type terminalHTTPError struct{ msg string }

// Error returns the refusal.
func (e *terminalHTTPError) Error() string { return e.msg }

// isTerminal reports whether err can never be fixed by reconnecting.
func isTerminal(err error) bool {
	var se *ingest.StreamError
	if errors.As(err, &se) {
		return !se.Code.Retryable()
	}
	var te *terminalHTTPError
	return errors.As(err, &te)
}

// connect dials, upgrades the HTTP connection to the frame protocol and
// completes the hello handshake, returning the connection, its buffered
// reader (which may already hold post-handshake bytes) and the server's
// resume state.
func (c *Client) connect() (net.Conn, *bufio.Reader, ingest.HelloAck, error) {
	var none ingest.HelloAck
	dial := c.opts.Dial
	if dial == nil {
		dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", c.host, 5*time.Second)
		}
	}
	conn, err := dial()
	if err != nil {
		return nil, nil, none, err
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	req := fmt.Sprintf("POST /v1/ingest HTTP/1.1\r\nHost: %s\r\nUpgrade: %s\r\nConnection: Upgrade\r\nContent-Length: 0\r\n\r\n",
		c.host, ingest.Protocol)
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, nil, none, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, nil, none, err
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		conn.Close()
		msg := fmt.Sprintf("ingestclient: upgrade refused: %s: %s", resp.Status, bytes.TrimSpace(body))
		// 4xx refusals are the caller's mistake and will repeat forever -
		// except overload (429/408) and replica read-only (409), which a
		// failover or drained queue fixes.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
			resp.StatusCode != http.StatusConflict &&
			resp.StatusCode != http.StatusTooManyRequests &&
			resp.StatusCode != http.StatusRequestTimeout {
			return nil, nil, none, &terminalHTTPError{msg}
		}
		return nil, nil, none, errors.New(msg)
	}
	hello := ingest.AppendHello(nil, ingest.Hello{Session: c.opts.Session, Estimator: c.opts.Estimator})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, nil, none, err
	}
	ft, body, err := ingest.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, none, err
	}
	switch ft {
	case ingest.FrameHelloAck:
		ha, err := ingest.DecodeHelloAck(body)
		if err != nil {
			conn.Close()
			return nil, nil, none, err
		}
		conn.SetDeadline(time.Time{})
		return conn, br, ha, nil
	case ingest.FrameError:
		se, derr := ingest.DecodeError(body)
		conn.Close()
		if derr != nil {
			return nil, nil, none, derr
		}
		return nil, nil, none, se
	default:
		conn.Close()
		return nil, nil, none, fmt.Errorf("ingestclient: unexpected frame type %d in handshake", ft)
	}
}
