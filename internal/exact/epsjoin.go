package exact

import (
	"encoding/binary"

	"repro/geo"
)

// Metric selects the distance function of an epsilon-join (Definition 2).
type Metric uint8

// Supported metrics. The paper's sketch construction targets LInf; L1 and
// L2 are provided for the exact evaluator and tests.
const (
	LInf Metric = iota
	L1
	L2
)

// EpsJoinCount returns |A join_eps B|: the number of point pairs within
// distance eps under the chosen metric. It buckets B into grid cells of
// side eps (eps=0 degenerates to exact-match cells) and inspects the 3^d
// neighborhood of each A point, giving near-linear time for
// non-pathological inputs.
func EpsJoinCount(a, b []geo.Point, eps uint64, metric Metric) uint64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	d := a[0].Dims()
	cell := eps
	if cell == 0 {
		cell = 1
	}
	key := func(p geo.Point) string {
		buf := make([]byte, 8*d)
		for i, x := range p {
			binary.LittleEndian.PutUint64(buf[8*i:], x/cell)
		}
		return string(buf)
	}
	buckets := make(map[string][]geo.Point, len(b))
	for _, p := range b {
		k := key(p)
		buckets[k] = append(buckets[k], p)
	}
	dist := distFunc(metric)
	limit := eps
	if metric == L2 {
		limit = eps * eps // DistL2Sq compares against eps^2
	}

	var count uint64
	neighbor := make(geo.Point, d)
	var visit func(p geo.Point, dim int)
	visit = func(p geo.Point, dim int) {
		if dim == d {
			for _, q := range buckets[key(neighbor)] {
				if dist(p, q) <= limit {
					count++
				}
			}
			return
		}
		c := p[dim] / cell
		for dc := -1; dc <= 1; dc++ {
			nc := int64(c) + int64(dc)
			if nc < 0 {
				continue
			}
			neighbor[dim] = uint64(nc) * cell
			visit(p, dim+1)
		}
	}
	for _, p := range a {
		visit(p, 0)
	}
	return count
}

// EpsJoinCountBrute is the O(|A|*|B|) reference epsilon-join counter.
func EpsJoinCountBrute(a, b []geo.Point, eps uint64, metric Metric) uint64 {
	dist := distFunc(metric)
	limit := eps
	if metric == L2 {
		limit = eps * eps
	}
	var count uint64
	for _, p := range a {
		for _, q := range b {
			if dist(p, q) <= limit {
				count++
			}
		}
	}
	return count
}

func distFunc(metric Metric) func(a, b geo.Point) uint64 {
	switch metric {
	case L1:
		return geo.DistL1
	case L2:
		return geo.DistL2Sq
	default:
		return geo.DistLInf
	}
}
