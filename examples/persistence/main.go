// Command persistence demonstrates the durable serving layer end to end:
// it starts spatialserve with -data-dir, streams objects into a join
// estimator, kills the server with SIGKILL (no graceful flush, no
// checkpoint), restarts it on the same data directory and shows that the
// recovered estimates are identical - the write-ahead log replays every
// acknowledged update, and sketch linearity makes the replay exact.
//
// Run from the repository root (it launches the server via `go run`, so
// the Go toolchain must be on PATH):
//
//	go run ./examples/persistence
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		log.Fatal(err)
	}
	work, err := os.MkdirTemp("", "spatialserve-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	dataDir := filepath.Join(work, "data")
	fmt.Printf("data dir: %s\n\n", dataDir)

	// Build the server once so SIGKILL hits the real process (a `go run`
	// wrapper would absorb the kill and orphan the server).
	bin := filepath.Join(work, "spatialserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/spatialserve")
	build.Dir = root
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		log.Fatalf("building spatialserve: %v", err)
	}

	// ---- first life: create, ingest, estimate, then SIGKILL ----
	base, cmd := startServer(bin, dataDir)
	fmt.Printf("server up at %s\n", base)

	post(base+"/v1/estimators", `{"name":"parks","kind":"join",
		"config":{"dims":2,"domainSize":4096,"seed":42,"instances":256,"groups":8}}`)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		side := "left"
		if i%2 == 1 {
			side = "right"
		}
		post(base+"/v1/estimators/parks/update", fmt.Sprintf(
			`{"side":%q,"rects":[%s]}`, side, randRectJSON(rng, 4096)))
	}
	before := estimate(base + "/v1/estimators/parks/estimate")
	fmt.Printf("before crash: cardinality %.1f over counts %v\n", before.Cardinality, before.Counts)

	fmt.Println("\nSIGKILL - no graceful shutdown, no checkpoint ever ran...")
	cmd.Process.Kill()
	cmd.Wait()

	// ---- second life: recover from WAL alone ----
	base2, cmd2 := startServer(bin, dataDir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) // graceful: final checkpoint + flush
		cmd2.Wait()
	}()
	after := estimate(base2 + "/v1/estimators/parks/estimate")
	fmt.Printf("after restart: cardinality %.1f over counts %v\n", after.Cardinality, after.Counts)

	if before.Cardinality != after.Cardinality ||
		before.Counts["left"] != after.Counts["left"] ||
		before.Counts["right"] != after.Counts["right"] {
		log.Fatal("FAIL: recovered state differs from the pre-crash state")
	}
	fmt.Println("\nOK: the recovered estimator is identical to the pre-crash one")
}

// startServer launches the built spatialserve binary on a random port
// against dataDir and waits for its listening line.
func startServer(bin, dataDir string) (string, *exec.Cmd) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-checkpoint-interval", "1m")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	lines := bufio.NewScanner(stdout)
	deadline := time.After(time.Minute)
	addrc := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "spatialserve listening on "); ok {
				addrc <- rest
				return
			}
		}
		addrc <- ""
	}()
	select {
	case addr := <-addrc:
		if addr == "" {
			log.Fatal("server exited before listening")
		}
		return "http://" + addr, cmd
	case <-deadline:
		cmd.Process.Kill()
		log.Fatal("server did not come up in time")
	}
	panic("unreachable")
}

// estimateResponse is the slice of the server's estimate reply the demo
// prints.
type estimateResponse struct {
	Cardinality float64          `json:"cardinality"`
	Counts      map[string]int64 `json:"counts"`
}

func post(url, body string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
}

func estimate(url string) estimateResponse {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	return out
}

func randRectJSON(rng *rand.Rand, dom uint64) string {
	var dims []string
	for d := 0; d < 2; d++ {
		lo := rng.Uint64() % (dom - 2)
		hi := lo + 1 + rng.Uint64()%(dom-lo-1)
		dims = append(dims, fmt.Sprintf("[%d,%d]", lo, hi))
	}
	return "[" + strings.Join(dims, ",") + "]"
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the demo can be run from anywhere inside the repository.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above the working directory; run from inside the repository")
		}
		dir = parent
	}
}
