package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// Tenant-layer contract tests: namespaces keep tenants' estimators
// apart, memory budgets reject with 413 and the exact word accounting,
// and one tenant's rate limit cannot degrade another tenant's service.

// putTenant registers a tenant config, failing the test on any error.
func putTenant(t testing.TB, h http.Handler, tenant string, cfg TenantConfig) {
	t.Helper()
	body, _ := json.Marshal(cfg)
	mustStatus(t, do(t, h, "PUT", "/v1/tenants/"+tenant, body), http.StatusOK)
}

// tenantCreateBody builds the create body for one of the four kinds with
// a small fixed sizing.
func tenantCreateBody(t testing.TB, name, kind string) []byte {
	t.Helper()
	cfg := configRequest{Dims: 2, DomainSize: 1 << 10, Seed: 7, Instances: 16, Groups: 4}
	if kind == "range" {
		cfg.Dims = 1
	}
	if kind == "epsjoin" {
		cfg.Eps = 4
	}
	body, err := json.Marshal(createRequest{Name: name, Kind: kind, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestTenantNamespacesAndRoutes(t *testing.T) {
	srv := NewServer()
	putTenant(t, srv, "acme", TenantConfig{})
	putTenant(t, srv, "umbrella", TenantConfig{})

	// The same local name in two tenants (and the default namespace) are
	// three distinct estimators.
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators", tenantCreateBody(t, "x", "join")), http.StatusCreated)
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/umbrella/estimators", tenantCreateBody(t, "x", "join")), http.StatusCreated)
	createJoin(t, srv, "x", 1<<10)

	// Tenant-scoped update and estimate reach acme's copy only.
	rects := [][][2]uint64{{{1, 5}, {2, 6}}}
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators/x/update", updateBody(t, "left", rects)), http.StatusOK)
	var info infoResponse
	if err := json.Unmarshal(do(t, srv, "GET", "/v1/tenants/acme/estimators/x", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Counts["left"] != 1 {
		t.Fatalf("acme/x left count %d, want 1", info.Counts["left"])
	}
	var other infoResponse
	if err := json.Unmarshal(do(t, srv, "GET", "/v1/tenants/umbrella/estimators/x", nil).Body.Bytes(), &other); err != nil {
		t.Fatal(err)
	}
	if other.Counts["left"] != 0 {
		t.Fatalf("umbrella/x saw acme's update: left count %d", other.Counts["left"])
	}

	// Tenant listings are filtered and un-prefixed.
	var list struct {
		Tenant     string                        `json:"tenant"`
		Estimators []struct{ Name, Kind string } `json:"estimators"`
	}
	if err := json.Unmarshal(do(t, srv, "GET", "/v1/tenants/acme/estimators", nil).Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Estimators) != 1 || list.Estimators[0].Name != "x" {
		t.Fatalf("acme listing: %+v", list.Estimators)
	}

	// Unregistered tenants cannot create (404 names the fix).
	w := do(t, srv, "POST", "/v1/tenants/ghost/estimators", tenantCreateBody(t, "y", "join"))
	mustStatus(t, w, http.StatusNotFound)

	// Tenant names and local names must not collide with key syntax.
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators",
		[]byte(`{"name":"a#b","kind":"join","config":{"dims":2,"domainSize":1024,"instances":8,"groups":2}}`)),
		http.StatusBadRequest)

	// Deleting a tenant that still holds estimators is refused.
	mustStatus(t, do(t, srv, "DELETE", "/v1/tenants/acme", nil), http.StatusConflict)
	mustStatus(t, do(t, srv, "DELETE", "/v1/tenants/acme/estimators/x", nil), http.StatusOK)
	mustStatus(t, do(t, srv, "DELETE", "/v1/tenants/acme", nil), http.StatusOK)
	mustStatus(t, do(t, srv, "GET", "/v1/tenants/acme", nil), http.StatusNotFound)
}

// TestTenantBudget413AllKinds proves the memory budget is enforced with
// the exact Sizing word accounting for every estimator kind: a budget
// set to exactly one estimator's SpaceWords admits the first create and
// rejects the second with 413 carrying the full breakdown.
func TestTenantBudget413AllKinds(t *testing.T) {
	for _, kind := range []string{"join", "range", "epsjoin", "containment"} {
		t.Run(kind, func(t *testing.T) {
			srv := NewServer()
			putTenant(t, srv, "acme", TenantConfig{})
			mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators", tenantCreateBody(t, "a", kind)), http.StatusCreated)
			var info infoResponse
			if err := json.Unmarshal(do(t, srv, "GET", "/v1/tenants/acme/estimators/a", nil).Body.Bytes(), &info); err != nil {
				t.Fatal(err)
			}
			words := int64(info.SpaceWords)
			if words <= 0 {
				t.Fatalf("%s estimator reports %d space words", kind, words)
			}

			// Budget = exactly one estimator: the second create must not fit.
			putTenant(t, srv, "acme", TenantConfig{MemoryBudgetWords: words})
			w := do(t, srv, "POST", "/v1/tenants/acme/estimators", tenantCreateBody(t, "b", kind))
			mustStatus(t, w, http.StatusRequestEntityTooLarge)
			var rej struct {
				Error  string          `json:"error"`
				Budget budgetBreakdown `json:"budget"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &rej); err != nil {
				t.Fatalf("413 body: %v: %s", err, w.Body.String())
			}
			b := rej.Budget
			if b.Tenant != "acme" || b.BudgetWords != words || b.UsedWords != words || b.RequestedWords != words {
				t.Fatalf("413 accounting %+v, want used=requested=budget=%d for acme", b, words)
			}
			if len(b.Estimators) != 1 || b.Estimators[0].Name != "acme/a" || b.Estimators[0].SpaceWords != words {
				t.Fatalf("413 itemization %+v", b.Estimators)
			}

			// Raising the budget by one estimator admits it.
			putTenant(t, srv, "acme", TenantConfig{MemoryBudgetWords: 2 * words})
			mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators", tenantCreateBody(t, "b", kind)), http.StatusCreated)

			// A snapshot PUT that replaces in place (delta 0) still fits at a
			// full budget; the breakdown math is delta-based, not absolute.
			snap := do(t, srv, "GET", "/v1/tenants/acme/estimators/b/snapshot", nil)
			mustStatus(t, snap, http.StatusOK)
			mustStatus(t, do(t, srv, "PUT", "/v1/tenants/acme/estimators/b/snapshot", snap.Body.Bytes()), http.StatusOK)

			// But PUT under a fresh name asks for +words over a full budget: 413.
			w = do(t, srv, "PUT", "/v1/tenants/acme/estimators/c/snapshot", snap.Body.Bytes())
			mustStatus(t, w, http.StatusRequestEntityTooLarge)
		})
	}
}

// TestTenantIsolationUnderRateLimit is the isolation acceptance test:
// tenant A is rate-limited into 429s while tenant B's concurrent traffic
// sees zero 429s and B's counts stay exact. Run with -race in CI.
func TestTenantIsolationUnderRateLimit(t *testing.T) {
	srv := NewServer()
	putTenant(t, srv, "a", TenantConfig{RateQPS: 0.001, RateBurst: 2})
	putTenant(t, srv, "b", TenantConfig{})
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/a/estimators", tenantCreateBody(t, "x", "join")), http.StatusCreated)
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/b/estimators", tenantCreateBody(t, "x", "join")), http.StatusCreated)

	const perTenant = 40
	var aShed, bShed, bOK atomic.Int64
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(9))
	bodies := make([][]byte, perTenant)
	for i := range bodies {
		bodies[i] = updateBody(t, "left", [][][2]uint64{randRect(rng, 1<<10)})
	}
	for i := 0; i < perTenant; i++ {
		wg.Add(2)
		body := bodies[i]
		go func() {
			defer wg.Done()
			w := do(nil, srv, "POST", "/v1/tenants/a/estimators/x/update", body)
			if w.Code == http.StatusTooManyRequests {
				aShed.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			w := do(nil, srv, "POST", "/v1/tenants/b/estimators/x/update", body)
			switch w.Code {
			case http.StatusTooManyRequests:
				bShed.Add(1)
			case http.StatusOK:
				bOK.Add(1)
			}
		}()
	}
	wg.Wait()

	if aShed.Load() == 0 {
		t.Fatal("tenant a sent 40 requests against a 2-token bucket and none were shed")
	}
	if bShed.Load() != 0 {
		t.Fatalf("tenant b (unlimited) saw %d 429s during tenant a's overload", bShed.Load())
	}
	// Exactness: every accepted update of b landed - counts are exact.
	var info infoResponse
	if err := json.Unmarshal(do(t, srv, "GET", "/v1/tenants/b/estimators/x", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if got := int64(info.Counts["left"]); got != bOK.Load() {
		t.Fatalf("tenant b count %d != %d acknowledged updates", got, bOK.Load())
	}
	// The sheds are attributed to tenant a in /metrics.
	metricsBody := do(t, srv, "GET", "/metrics", nil).Body.String()
	if !containsSeriesWithLabels(metricsBody, "spatialserve_admission_rejected_total", `tenant="a"`) {
		t.Fatalf("metrics missing tenant-a shed counter:\n%s", metricsBody)
	}
}

// containsSeriesWithLabels reports whether any sample line of the family
// carries every given label fragment.
func containsSeriesWithLabels(exposition, name string, labelFrags ...string) bool {
	for _, line := range splitLines(exposition) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if !hasPrefix(line, name) {
			continue
		}
		ok := true
		for _, f := range labelFrags {
			if !contains(line, f) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestTenantConfigDurability proves tenant configs ride the WAL and the
// checkpoint manifest: both a crash (replay) and a checkpointed restart
// recover them.
func TestTenantConfigDurability(t *testing.T) {
	dir := t.TempDir()
	srv := openPersistent(t, dir)
	cfg := TenantConfig{MemoryBudgetWords: 12345, RateQPS: 7}
	putTenant(t, srv, "acme", cfg)
	putTenant(t, srv, "gone", TenantConfig{RateQPS: 1})
	mustStatus(t, do(t, srv, "DELETE", "/v1/tenants/gone", nil), http.StatusOK)
	// Crash without a checkpoint: recovery replays the tenant records.
	crash(t, srv)
	srv2 := openPersistent(t, dir)
	var info tenantInfoResponse
	if err := json.Unmarshal(do(t, srv2, "GET", "/v1/tenants/acme", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Config != cfg {
		t.Fatalf("recovered config %+v, want %+v", info.Config, cfg)
	}
	mustStatus(t, do(t, srv2, "GET", "/v1/tenants/gone", nil), http.StatusNotFound)
	// Checkpoint, then a clean restart: the manifest alone carries them.
	mustStatus(t, do(t, srv2, "POST", "/admin/checkpoint", nil), http.StatusOK)
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3 := openPersistent(t, dir)
	defer srv3.Close()
	if err := json.Unmarshal(do(t, srv3, "GET", "/v1/tenants/acme", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Config != cfg {
		t.Fatalf("checkpoint-restored config %+v, want %+v", info.Config, cfg)
	}
	// The budget is live immediately after recovery.
	big := tenantCreateBody(t, "huge", "join")
	putTenant(t, srv3, "acme", TenantConfig{MemoryBudgetWords: 1})
	mustStatus(t, do(t, srv3, "POST", "/v1/tenants/acme/estimators", big), http.StatusRequestEntityTooLarge)
}

// TestMergeBudgetRecheck pins the merge-time budget re-check: merges add
// no words (delta 0), but a budget lowered below current usage turns
// them into 413 until the tenant sheds estimators.
func TestMergeBudgetRecheck(t *testing.T) {
	srv := NewServer()
	putTenant(t, srv, "acme", TenantConfig{})
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators", tenantCreateBody(t, "a", "join")), http.StatusCreated)
	snap := do(t, srv, "GET", "/v1/tenants/acme/estimators/a/snapshot", nil)
	mustStatus(t, snap, http.StatusOK)
	// Merging at an adequate budget is fine.
	var info infoResponse
	if err := json.Unmarshal(do(t, srv, "GET", "/v1/tenants/acme/estimators/a", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	putTenant(t, srv, "acme", TenantConfig{MemoryBudgetWords: int64(info.SpaceWords)})
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators/a/merge", snap.Body.Bytes()), http.StatusOK)
	// Lower the budget below usage: merges are refused with the accounting.
	putTenant(t, srv, "acme", TenantConfig{MemoryBudgetWords: 1})
	w := do(t, srv, "POST", "/v1/tenants/acme/estimators/a/merge", snap.Body.Bytes())
	mustStatus(t, w, http.StatusRequestEntityTooLarge)
	var rej struct {
		Budget budgetBreakdown `json:"budget"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rej); err != nil || rej.Budget.BudgetWords != 1 {
		t.Fatalf("merge 413 body: %v: %s", err, w.Body.String())
	}
}

// TestQualifiedKeySplit pins the key scheme helpers the whole layer
// rides on.
func TestQualifiedKeySplit(t *testing.T) {
	cases := []struct{ tenant, name, key string }{
		{"default", "x", "x"},
		{"acme", "x", "acme/x"},
	}
	for _, c := range cases {
		if got := qualifiedName(c.tenant, c.name); got != c.key {
			t.Errorf("qualifiedName(%q,%q) = %q, want %q", c.tenant, c.name, got, c.key)
		}
		tn, nm := splitTenant(c.key)
		if tn != c.tenant || nm != c.name {
			t.Errorf("splitTenant(%q) = (%q,%q), want (%q,%q)", c.key, tn, nm, c.tenant, c.name)
		}
	}
	if err := validateCreateKey("a/b/c"); err == nil {
		t.Error("nested tenant separators accepted")
	}
	if err := validateCreateKey("a#1"); err == nil {
		t.Error("shard marker accepted in a create key")
	}
	if fmt.Sprintf("%v", validateCreateKey("acme/x")) != "<nil>" {
		t.Error("valid qualified key rejected")
	}
}

// TestTenantBatchEstimateMixedRows drives the batched /estimate path
// through two tenants holding the same-named range estimator with
// different data: malformed rows come back as per-row errors, valid
// rows are answered from the right tenant's estimator (each matches
// that tenant's single-query answer), and a batch against a join
// estimator is rejected whole with 400 - there is no query to batch.
func TestTenantBatchEstimateMixedRows(t *testing.T) {
	srv := NewServer()
	putTenant(t, srv, "acme", TenantConfig{})
	putTenant(t, srv, "umbrella", TenantConfig{})
	for _, tenant := range []string{"acme", "umbrella"} {
		mustStatus(t, do(t, srv, "POST", "/v1/tenants/"+tenant+"/estimators",
			tenantCreateBody(t, "r", "range")), http.StatusCreated)
	}
	// Distinct streams per tenant so cross-tenant leakage would change
	// the answers.
	const dom = 1 << 10
	rng := rand.New(rand.NewSource(23))
	for i, tenant := range []string{"acme", "umbrella"} {
		var rects [][][2]uint64
		for n := 0; n < 20*(i+1); n++ {
			lo := rng.Uint64() % (dom - 2)
			rects = append(rects, [][2]uint64{{lo, lo + 1 + rng.Uint64()%(dom-lo-1)}})
		}
		mustStatus(t, do(t, srv, "POST", "/v1/tenants/"+tenant+"/estimators/r/update",
			updateBody(t, "", rects)), http.StatusOK)
	}

	batch, _ := json.Marshal(estimateRequest{Queries: [][][2]uint64{
		{{10, 200}},          // valid
		{},                   // empty row
		{{30, 20}},           // inverted interval
		{{10, 20}, {30, 40}}, // wrong dimensionality
		{{100, 900}},         // valid
	}})
	for _, tenant := range []string{"acme", "umbrella"} {
		w := do(t, srv, "POST", "/v1/tenants/"+tenant+"/estimators/r/estimate", batch)
		mustStatus(t, w, http.StatusOK)
		var resp batchEstimateResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 5 {
			t.Fatalf("%s: got %d results, want 5", tenant, len(resp.Results))
		}
		for _, i := range []int{1, 2, 3} {
			if resp.Results[i] == nil || resp.Results[i].Error == "" {
				t.Errorf("%s: malformed row %d carries no error: %+v", tenant, i, resp.Results[i])
			}
		}
		for qi, q := range [][][2]uint64{{{10, 200}}, {{100, 900}}} {
			i := []int{0, 4}[qi]
			if resp.Results[i] == nil || resp.Results[i].Error != "" {
				t.Fatalf("%s: valid row %d was not answered: %+v", tenant, i, resp.Results[i])
			}
			single, _ := json.Marshal(estimateRequest{Query: q})
			sw := do(t, srv, "POST", "/v1/tenants/"+tenant+"/estimators/r/estimate", single)
			mustStatus(t, sw, http.StatusOK)
			var sr estimateResponse
			if err := json.Unmarshal(sw.Body.Bytes(), &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Value != resp.Results[i].Value || sr.Counts["data"] != resp.Results[i].Counts["data"] {
				t.Errorf("%s: batch row %d (value %v, count %d) differs from the single query (value %v, count %d)",
					tenant, i, resp.Results[i].Value, resp.Results[i].Counts["data"], sr.Value, sr.Counts["data"])
			}
		}
	}

	// Parameterless kinds reject the whole batch: nothing to vary per row.
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators",
		tenantCreateBody(t, "j", "join")), http.StatusCreated)
	mustStatus(t, do(t, srv, "POST", "/v1/tenants/acme/estimators/j/estimate", batch), http.StatusBadRequest)
}
