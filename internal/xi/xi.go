// Package xi generates families of four-wise independent {-1, +1} random
// variables from small seeds, the randomization substrate of AMS-style
// sketches (paper Section 2.2, after Alon, Matias and Szegedy).
//
// A family {xi_i} is realized by a uniformly random polynomial of degree
// three over the prime field GF(p), p = 2^61 - 1 (the Carter-Wegman
// construction): g(i) = a3*i^3 + a2*i^2 + a1*i + a0 mod p is four-wise
// independent and uniform on [0, p), and xi_i = 1 - 2*(g(i) mod 2). Because
// p is odd, the parity map carries a bias of 2^-61 per variable - many
// orders of magnitude below every other error term in the system, and the
// construction used by published AGMS sketch implementations.
//
// The seed is the four coefficients (32 bytes), satisfying the paper's
// O(log |dom|)-bit seed requirement; variables are generated on the fly in
// O(1) word operations. Materialize optionally trades the space guarantee
// for a lookup table when update throughput matters more than synopsis
// space (used by the experiment harness).
package xi

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Prime is the Mersenne prime 2^61 - 1 underlying the hash field. Family
// indices must be smaller than Prime (they always are: indices are dyadic
// interval ids, at most 2*2^61).
const Prime uint64 = 1<<61 - 1

// SeedBytes is the size of a serialized family seed.
const SeedBytes = 32

// Family is one family of four-wise independent {-1, +1} random variables,
// defined by the four coefficients of its hash polynomial.
type Family struct {
	a     [4]uint64 // polynomial coefficients, each in [0, Prime)
	table []int8    // optional memoized signs (see Materialize)
}

// New derives a family deterministically from a 64-bit seed using a
// SplitMix64 expansion with rejection sampling into [0, Prime).
func New(seed uint64) *Family {
	var f Family
	s := seed
	for k := 0; k < 4; k++ {
		for {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			z &= Prime // 61 low bits; values in [0, 2^61-1] = [0, Prime]
			if z < Prime {
				f.a[k] = z
				break
			}
		}
	}
	return &f
}

// FromCoeffs constructs a family from explicit polynomial coefficients.
// Every coefficient must be in [0, Prime).
func FromCoeffs(a0, a1, a2, a3 uint64) (*Family, error) {
	for i, a := range [...]uint64{a0, a1, a2, a3} {
		if a >= Prime {
			return nil, fmt.Errorf("xi: coefficient %d out of range: %d >= %d", i, a, Prime)
		}
	}
	return &Family{a: [4]uint64{a0, a1, a2, a3}}, nil
}

// Coeffs returns the polynomial coefficients (the seed) of the family.
func (f *Family) Coeffs() [4]uint64 { return f.a }

// MarshalBinary encodes the family seed as SeedBytes little-endian bytes.
func (f *Family) MarshalBinary() ([]byte, error) {
	buf := make([]byte, SeedBytes)
	for i, a := range f.a {
		binary.LittleEndian.PutUint64(buf[8*i:], a)
	}
	return buf, nil
}

// UnmarshalBinary decodes a family seed produced by MarshalBinary. Any
// memoized table is discarded.
func (f *Family) UnmarshalBinary(data []byte) error {
	if len(data) != SeedBytes {
		return fmt.Errorf("xi: bad seed length %d, want %d", len(data), SeedBytes)
	}
	var a [4]uint64
	for i := range a {
		a[i] = binary.LittleEndian.Uint64(data[8*i:])
		if a[i] >= Prime {
			return fmt.Errorf("xi: coefficient %d out of range", i)
		}
	}
	f.a = a
	f.table = nil
	return nil
}

// mulMod returns a*b mod Prime for a, b < Prime, using the Mersenne fold.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = (hi*8 + lo>>61)*2^61 + (lo & Prime).
	s := (lo & Prime) + (lo >> 61) + (hi << 3)
	s = (s & Prime) + (s >> 61)
	if s >= Prime {
		s -= Prime
	}
	return s
}

// addMod returns a+b mod Prime for a, b < Prime.
func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= Prime {
		s -= Prime
	}
	return s
}

// Hash evaluates the degree-3 polynomial at i mod Prime. The result is
// four-wise independent and uniform on [0, Prime) over the choice of
// coefficients. i must be < Prime.
func (f *Family) Hash(i uint64) uint64 {
	// Horner: ((a3*i + a2)*i + a1)*i + a0.
	h := f.a[3]
	h = addMod(mulMod(h, i), f.a[2])
	h = addMod(mulMod(h, i), f.a[1])
	h = addMod(mulMod(h, i), f.a[0])
	return h
}

// Sign returns xi_i in {-1, +1}.
func (f *Family) Sign(i uint64) int64 {
	if f.table != nil && i < uint64(len(f.table)) {
		return int64(f.table[i])
	}
	return 1 - 2*int64(f.Hash(i)&1)
}

// SumSigns returns the sum of xi_i over the given indices (the xi-bar
// aggregation of Equation 3 in the paper).
func (f *Family) SumSigns(ids []uint64) int64 {
	var s int64
	if f.table != nil {
		t := f.table
		n := uint64(len(t))
		for _, id := range ids {
			if id < n {
				s += int64(t[id])
			} else {
				s += 1 - 2*int64(f.Hash(id)&1)
			}
		}
		return s
	}
	for _, id := range ids {
		s += 1 - 2*int64(f.Hash(id)&1)
	}
	return s
}

// Materialize precomputes the signs of indices [0, n) into a lookup table of
// n bytes. This is an optional speed/space trade-off for bulk experiment
// runs; it does not change any value the family produces.
func (f *Family) Materialize(n uint64) {
	t := make([]int8, n)
	for i := uint64(0); i < n; i++ {
		t[i] = int8(1 - 2*int64(f.Hash(i)&1))
	}
	f.table = t
}

// Materialized reports whether the family carries a lookup table.
func (f *Family) Materialized() bool { return f.table != nil }

// Drop discards any memoized table, returning the family to seed-only
// storage.
func (f *Family) Drop() { f.table = nil }
