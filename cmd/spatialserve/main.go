// Command spatialserve serves a registry of named spatial estimators over
// HTTP: insert/delete streams at the edge, estimates, full-estimator
// snapshots and merges - the paper's build-then-merge deployment
// (synopses built near the data, shipped and combined centrally) as a
// long-running service. Estimators are safe for concurrent use, so mixed
// reader/writer traffic needs no external locking.
//
// Usage:
//
//	spatialserve -addr :8080
//
// Create an estimator, stream objects, estimate, snapshot:
//
//	curl -X POST localhost:8080/v1/estimators -d \
//	  '{"name":"parks-roads","kind":"join","config":{"dims":2,"domainSize":65536,"memoryWords":8192,"seed":42}}'
//	curl -X POST localhost:8080/v1/estimators/parks-roads/update -d \
//	  '{"side":"left","rects":[[[10,50],[20,80]]]}'
//	curl localhost:8080/v1/estimators/parks-roads/estimate
//	curl localhost:8080/v1/estimators/parks-roads/snapshot > parks-roads.spe1
//	curl -X POST --data-binary @parks-roads.spe1 localhost:8080/v1/estimators/parks-roads/merge
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           NewServer(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("spatialserve listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
