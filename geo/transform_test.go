package geo

import (
	"math/rand/v2"
	"testing"
)

// TestTransformPreservesOverlap verifies the Section 5.2 claim: for every
// pair (r, s), overlap(r, s) <=> overlap(keep(r), shrink(s)).
func TestTransformPreservesOverlap(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 2))
	const dom = 32
	for i := 0; i < 20000; i++ {
		r := randNonDegenerate(rng, dom)
		s := randNonDegenerate(rng, dom)
		want := r.Overlaps(s)
		got := TransformKeep(r).Overlaps(TransformShrink(s))
		if got != want {
			t.Fatalf("overlap changed by transform: r=%v s=%v (rel %v): want %v got %v",
				r, s, Relationship(r, s), want, got)
		}
	}
}

// TestTransformExhaustive checks overlap preservation for every
// non-degenerate interval pair over a small domain (covers all six
// relationship cases deterministically).
func TestTransformExhaustive(t *testing.T) {
	var ivs []Interval
	const dom = 9
	for lo := uint64(0); lo < dom; lo++ {
		for hi := lo + 1; hi < dom; hi++ {
			ivs = append(ivs, Interval{lo, hi})
		}
	}
	for _, r := range ivs {
		for _, s := range ivs {
			want := r.Overlaps(s)
			if got := TransformKeep(r).Overlaps(TransformShrink(s)); got != want {
				t.Fatalf("r=%v s=%v: want %v got %v", r, s, want, got)
			}
		}
	}
}

// TestTransformRemovesSharedEndpoints verifies Assumption 1 holds after the
// transformation: no endpoint of keep(r) coincides with an endpoint of
// shrink(s).
func TestTransformRemovesSharedEndpoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 20000; i++ {
		r := TransformKeep(randNonDegenerate(rng, 64))
		s := TransformShrink(randNonDegenerate(rng, 64))
		if r.Lo == s.Lo || r.Lo == s.Hi || r.Hi == s.Lo || r.Hi == s.Hi {
			t.Fatalf("shared endpoint after transform: r=%v s=%v", r, s)
		}
	}
}

func TestTransformShrinkPoint(t *testing.T) {
	p := Interval{5, 5}
	got := TransformShrink(p)
	if got.Lo != 15 || got.Hi != 15 {
		t.Fatalf("TransformShrink(point) = %v, want [15,15]", got)
	}
}

func TestTransformDomain(t *testing.T) {
	if TransformDomain(100) != 300 {
		t.Fatal("TransformDomain(100) != 300")
	}
	if TransformCoord(7) != 21 {
		t.Fatal("TransformCoord(7) != 21")
	}
}

func TestTransformRects(t *testing.T) {
	r := Rect(1, 4, 2, 6)
	kept := TransformKeepRect(r)
	shrunk := TransformShrinkRect(r)
	if kept[0] != (Interval{3, 12}) || kept[1] != (Interval{6, 18}) {
		t.Fatalf("TransformKeepRect = %v", kept)
	}
	if shrunk[0] != (Interval{4, 11}) || shrunk[1] != (Interval{7, 17}) {
		t.Fatalf("TransformShrinkRect = %v", shrunk)
	}
}

// TestTransformPreservesOverlap2D: the per-dimension transform preserves
// rectangle overlap too.
func TestTransformPreservesOverlap2D(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	for i := 0; i < 10000; i++ {
		r := HyperRect{randNonDegenerate(rng, 24), randNonDegenerate(rng, 24)}
		s := HyperRect{randNonDegenerate(rng, 24), randNonDegenerate(rng, 24)}
		want := r.Overlaps(s)
		if got := TransformKeepRect(r).Overlaps(TransformShrinkRect(s)); got != want {
			t.Fatalf("2d overlap changed by transform: r=%v s=%v", r, s)
		}
	}
}

func TestQuantizer(t *testing.T) {
	q, err := NewQuantizer(-100, 100, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Quantize(-100); got != 0 {
		t.Errorf("Quantize(min) = %d", got)
	}
	if got := q.Quantize(-200); got != 0 {
		t.Errorf("Quantize(below min) = %d", got)
	}
	if got := q.Quantize(100); got != 1023 {
		t.Errorf("Quantize(max) = %d", got)
	}
	if got := q.Quantize(99.999); got != 1023 {
		t.Errorf("Quantize(just below max) = %d", got)
	}
	mid := q.Quantize(0)
	if mid != 512 {
		t.Errorf("Quantize(0) = %d, want 512", mid)
	}
	// Dequantize returns a value that re-quantizes to the same cell.
	for _, c := range []uint64{0, 1, 511, 512, 1023} {
		if got := q.Quantize(q.Dequantize(c)); got != c {
			t.Errorf("round trip cell %d -> %d", c, got)
		}
	}
	iv := q.QuantizeInterval(-50, 50)
	if iv.Lo >= iv.Hi {
		t.Errorf("QuantizeInterval = %v", iv)
	}
	if _, err := NewQuantizer(5, 5, 10); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewQuantizer(0, 1, 0); err == nil {
		t.Error("zero cells should fail")
	}
}

// TestQuantizerMonotone: quantization preserves order.
func TestQuantizerMonotone(t *testing.T) {
	q, _ := NewQuantizer(0, 1, 256)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 5000; i++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		if q.Quantize(a) > q.Quantize(b) {
			t.Fatalf("quantizer not monotone at %g, %g", a, b)
		}
	}
}

func randNonDegenerate(rng *rand.Rand, dom uint64) Interval {
	a := rng.Uint64N(dom - 1)
	b := a + 1 + rng.Uint64N(dom-a-1)
	return Interval{Lo: a, Hi: b}
}
