// Command benchdiff compares two benchfmt JSON artifacts (the committed
// BENCH_*.json trajectory files and fresh runs of cmd/benchjson or
// cmd/spatialload) and flags per-benchmark regressions beyond a
// threshold, exiting non-zero when any is found. CI runs it as a soft
// gate: a regression marks the job for human attention without blocking
// the merge outright.
//
// Records are matched by (pkg, name). Latency-class metrics (ns/op,
// p50_ns, p99_ns, ...) regress when the new value exceeds the old by
// more than -threshold percent; throughput-class metrics (ops_per_sec)
// regress when the new value falls short by more than the threshold.
// Benchmarks present on only one side are reported but never fail the
// run - artifacts grow new benchmarks every PR, and environment changes
// can drop one.
//
// Usage:
//
//	benchdiff -old BENCH_PR9.json -new fresh.json -threshold 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/benchfmt"
)

// comparison is one metric's old-vs-new verdict.
type comparison struct {
	key        string // "pkg name metric"
	metric     string
	oldV, newV float64
	deltaPct   float64 // signed: positive = got worse
	regressed  bool
}

// higherIsBetter reports the metric's improvement direction: throughput
// metrics regress downward, everything else (latencies, allocations,
// error counts) regresses upward.
func higherIsBetter(metric string) bool {
	return strings.Contains(metric, "ops_per_sec") || strings.Contains(metric, "ops/s")
}

// compareDocs diffs the metric sets of matching records. onlyMetrics,
// when non-empty, restricts the comparison to those metric names.
// minBase suppresses comparisons whose baseline value is below it -
// sub-microsecond latencies and near-zero counters are noise, not
// signal. Returns the comparisons plus the names present on one side
// only.
func compareDocs(oldDoc, newDoc *benchfmt.Document, onlyMetrics []string, threshold, minBase float64) (comps []comparison, onlyOld, onlyNew []string) {
	type key struct{ pkg, name string }
	oldBy := make(map[key]benchfmt.Record)
	for _, r := range oldDoc.Benchmarks {
		oldBy[key{r.Pkg, r.Name}] = r
	}
	newBy := make(map[key]benchfmt.Record)
	for _, r := range newDoc.Benchmarks {
		newBy[key{r.Pkg, r.Name}] = r
	}
	wanted := func(m string) bool {
		if len(onlyMetrics) == 0 {
			return true
		}
		for _, w := range onlyMetrics {
			if m == w {
				return true
			}
		}
		return false
	}
	for k, oldRec := range oldBy {
		newRec, ok := newBy[k]
		if !ok {
			onlyOld = append(onlyOld, k.pkg+" "+k.name)
			continue
		}
		for metric, oldV := range oldRec.Metrics {
			newV, ok := newRec.Metrics[metric]
			if !ok || !wanted(metric) {
				continue
			}
			if math.Abs(oldV) < minBase && math.Abs(newV) < minBase {
				continue
			}
			c := comparison{
				key:    strings.TrimSpace(k.pkg + " " + k.name + " " + metric),
				metric: metric, oldV: oldV, newV: newV,
			}
			if oldV != 0 {
				if higherIsBetter(metric) {
					c.deltaPct = (oldV - newV) / oldV * 100
				} else {
					c.deltaPct = (newV - oldV) / oldV * 100
				}
				c.regressed = c.deltaPct > threshold
			}
			comps = append(comps, c)
		}
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			onlyNew = append(onlyNew, k.pkg+" "+k.name)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].key < comps[j].key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return comps, onlyOld, onlyNew
}

// readDoc loads one benchfmt artifact.
func readDoc(path string) (*benchfmt.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchfmt.Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// run executes the diff and returns the number of regressions.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	oldPath := fs.String("old", "", "baseline benchfmt JSON artifact (required)")
	newPath := fs.String("new", "", "candidate benchfmt JSON artifact (required)")
	threshold := fs.Float64("threshold", 25, "regression threshold in percent")
	minBase := fs.Float64("min-base", 0, "skip comparisons where both values are below this (noise floor, metric units)")
	metricList := fs.String("metrics", "p99_ns,ops_per_sec,ns/op", "comma-separated metrics to compare (empty = all shared metrics)")
	verbose := fs.Bool("v", false, "print every comparison, not just regressions")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *oldPath == "" || *newPath == "" {
		fs.Usage()
		return 0, fmt.Errorf("both -old and -new are required")
	}
	oldDoc, err := readDoc(*oldPath)
	if err != nil {
		return 0, err
	}
	newDoc, err := readDoc(*newPath)
	if err != nil {
		return 0, err
	}
	var only []string
	if *metricList != "" {
		for _, m := range strings.Split(*metricList, ",") {
			if m = strings.TrimSpace(m); m != "" {
				only = append(only, m)
			}
		}
	}
	comps, onlyOld, onlyNew := compareDocs(oldDoc, newDoc, only, *threshold, *minBase)
	regressions := 0
	for _, c := range comps {
		if c.regressed {
			regressions++
			fmt.Fprintf(out, "REGRESSION %-60s %14.1f -> %14.1f  (%+.1f%% worse, threshold %.0f%%)\n",
				c.key, c.oldV, c.newV, c.deltaPct, *threshold)
		} else if *verbose {
			fmt.Fprintf(out, "ok         %-60s %14.1f -> %14.1f  (%+.1f%%)\n", c.key, c.oldV, c.newV, c.deltaPct)
		}
	}
	for _, k := range onlyOld {
		fmt.Fprintf(out, "note: %s only in %s\n", k, *oldPath)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(out, "note: %s only in %s\n", k, *newPath)
	}
	fmt.Fprintf(out, "benchdiff: %d comparison(s), %d regression(s)\n", len(comps), regressions)
	return regressions, nil
}

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}
