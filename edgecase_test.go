package spatial_test

import (
	"bytes"
	"testing"

	spatial "repro"
	"repro/geo"
	"repro/internal/datagen"
)

// Boundary-condition tests for the merge/batch surfaces the cluster
// fan-out leans on: a single-snapshot merge must be the identity (the
// degenerate one-partition gather), and an empty batch must be a cheap
// no-op answer, not an error - an aggregator that filtered every query
// out still expects a well-formed reply.

// TestMergeSnapshotsSingleInput: merging exactly one snapshot is the
// identity - byte-identical output - for both a populated and an empty
// estimator. This is the one-partition corner of scatter-gather: a
// cluster holding an estimator on a single node must serve the same
// bytes a direct GET of that node would.
func TestMergeSnapshotsSingleInput(t *testing.T) {
	cfg := spatial.RangeConfig{Dims: 2, DomainSize: 300,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 11}
	e, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rects := datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: 300, Seed: 3, MeanLen: []float64{25, 25}})
	if err := e.InsertBulk(rects); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	merged, kind, err := spatial.MergeSnapshots(snap)
	if err != nil {
		t.Fatal(err)
	}
	if kind != spatial.KindRange {
		t.Fatalf("kind = %v, want range", kind)
	}
	if !bytes.Equal(merged, snap) {
		t.Fatal("one-snapshot merge is not the identity")
	}

	empty, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	emptySnap, err := empty.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err = spatial.MergeSnapshots(emptySnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, emptySnap) {
		t.Fatal("one-snapshot merge of an empty estimator is not the identity")
	}
}

// TestEstimateBatchEmptyQueryList: a nil and an empty (but non-nil)
// query slice both answer with zero results, no error, and the view's
// relation count - the batch still pins a view, so the count is the
// same consistent read a populated batch would report.
func TestEstimateBatchEmptyQueryList(t *testing.T) {
	e, err := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims: 1, DomainSize: 1 << 10, Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	rects := datagen.MustRects(datagen.Spec{N: 25, Dims: 1, Domain: 1 << 10, Seed: 4, MeanLen: []float64{100}})
	if err := e.InsertBulk(rects); err != nil {
		t.Fatal(err)
	}
	for _, qs := range [][]geo.HyperRect{nil, {}} {
		out, count, err := e.EstimateBatch(qs)
		if err != nil {
			t.Fatalf("EstimateBatch(%v): %v", qs, err)
		}
		if len(out) != 0 {
			t.Fatalf("EstimateBatch(%v) returned %d results, want 0", qs, len(out))
		}
		if count != 25 {
			t.Fatalf("EstimateBatch(%v) count = %d, want 25", qs, count)
		}
	}
}
