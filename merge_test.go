package spatial_test

import (
	"testing"

	spatial "repro"
	"repro/geo"
	"repro/internal/datagen"
)

// Merge-equivalence tests of the public estimator surface: estimators built
// over disjoint shards of a stream and merged must report exactly the same
// estimates as one estimator fed the whole stream - sketches are linear, so
// the merge is exact, not approximate.

func mergeJoinConfig(mode spatial.Mode) spatial.JoinConfig {
	return spatial.JoinConfig{
		Dims: 2, DomainSize: 256,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4},
		Mode:   mode, Seed: 42,
	}
}

func TestJoinEstimatorMerge(t *testing.T) {
	r := datagen.MustRects(datagen.Spec{N: 120, Dims: 2, Domain: 256, Seed: 1, MeanLen: []float64{30, 30}})
	s := datagen.MustRects(datagen.Spec{N: 120, Dims: 2, Domain: 256, Seed: 2, MeanLen: []float64{30, 30}})
	for _, mode := range []spatial.Mode{spatial.ModeTransform, spatial.ModeCommonEndpoints} {
		whole, err := spatial.NewJoinEstimator(mergeJoinConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		if err := whole.InsertLeftBulk(r); err != nil {
			t.Fatal(err)
		}
		if err := whole.InsertRightBulk(s); err != nil {
			t.Fatal(err)
		}

		merged, err := spatial.NewJoinEstimator(mergeJoinConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		half := len(r) / 2
		for _, part := range [][2][]geo.HyperRect{{r[:half], s[:half]}, {r[half:], s[half:]}} {
			shard, err := spatial.NewJoinEstimator(mergeJoinConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			if err := shard.InsertLeftBulk(part[0]); err != nil {
				t.Fatal(err)
			}
			if err := shard.InsertRightBulk(part[1]); err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
		}
		if merged.LeftCount() != whole.LeftCount() || merged.RightCount() != whole.RightCount() {
			t.Fatalf("%v: merged counts (%d, %d) != (%d, %d)", mode,
				merged.LeftCount(), merged.RightCount(), whole.LeftCount(), whole.RightCount())
		}
		we, err := whole.Cardinality()
		if err != nil {
			t.Fatal(err)
		}
		me, err := merged.Cardinality()
		if err != nil {
			t.Fatal(err)
		}
		if we.Value != me.Value || we.Mean != me.Mean {
			t.Fatalf("%v: merged estimate (%g, %g) != whole (%g, %g)", mode, me.Value, me.Mean, we.Value, we.Mean)
		}
	}
}

func TestJoinEstimatorMergeModeMismatch(t *testing.T) {
	a, err := spatial.NewJoinEstimator(mergeJoinConfig(spatial.ModeTransform))
	if err != nil {
		t.Fatal(err)
	}
	b, err := spatial.NewJoinEstimator(mergeJoinConfig(spatial.ModeCommonEndpoints))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("cross-mode merge should fail")
	}
	// Different seeds derive different xi-families: merge must refuse.
	cfg := mergeJoinConfig(spatial.ModeTransform)
	cfg.Seed = 43
	c, err := spatial.NewJoinEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Fatal("cross-seed merge should fail")
	}
}

// TestMergeFullConfigMismatch: merges must compare the FULL public
// configuration. DomainSize pairs below round to the same internal plan
// (log2ceil equal), so only the estimator-level check can refuse them.
func TestMergeFullConfigMismatch(t *testing.T) {
	sz := spatial.Sizing{Instances: 64, Groups: 4}

	jA, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: 1000, Sizing: sz, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	jB, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: 1024, Sizing: sz, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := jA.Merge(jB); err == nil {
		t.Fatal("join merge across domain sizes 1000/1024 should fail")
	}

	rA, err := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 1, DomainSize: 1000, Sizing: sz, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rB, err := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 1, DomainSize: 1024, Sizing: sz, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rA.Merge(rB); err == nil {
		t.Fatal("range merge across domain sizes should fail")
	}
	if err := rB.Merge(rA); err == nil {
		t.Fatal("range merge across domain sizes should fail (reverse)")
	}

	cA, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{Dims: 2, DomainSize: 1000, Sizing: sz, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cB, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{Dims: 2, DomainSize: 1024, Sizing: sz, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := cA.Merge(cB); err == nil {
		t.Fatal("containment merge across domain sizes should fail")
	}

	eA, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{Dims: 2, DomainSize: 1000, Eps: 8, Sizing: sz, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eB, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{Dims: 2, DomainSize: 1024, Eps: 8, Sizing: sz, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := eA.Merge(eB); err == nil {
		t.Fatal("eps-join merge across domain sizes should fail")
	}

	// An explicit level cap that differs is refused even when everything
	// else matches.
	jC, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: 1000, Sizing: sz, MaxLevel: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := jA.Merge(jC); err == nil {
		t.Fatal("join merge across level caps should fail")
	}
}

func TestRangeEstimatorMerge(t *testing.T) {
	cfg := spatial.RangeConfig{
		Dims: 1, DomainSize: 1024,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4},
		Seed:   7,
	}
	rects := datagen.MustRects(datagen.Spec{N: 200, Dims: 1, Domain: 1024, Seed: 3})
	whole, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.InsertBulk(rects); err != nil {
		t.Fatal(err)
	}

	merged, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.InsertBulk(rects[:90]); err != nil {
		t.Fatal(err)
	}
	shard, err := spatial.NewRangeEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.InsertBulk(rects[90:]); err != nil {
		t.Fatal(err)
	}
	// Exercise both the direct and the serialized merge path.
	data, err := shard.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeFrom(data); err != nil {
		t.Fatal(err)
	}

	q := geo.Span1D(100, 700)
	we, err := whole.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	me, err := merged.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if we.Value != me.Value || we.Mean != me.Mean {
		t.Fatalf("merged range estimate (%g, %g) != whole (%g, %g)", me.Value, me.Mean, we.Value, we.Mean)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), whole.Count())
	}
}

func TestEpsJoinAndContainmentMerge(t *testing.T) {
	epsCfg := spatial.EpsJoinConfig{
		Dims: 2, DomainSize: 256, Eps: 8,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4},
		Seed:   9,
	}
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Point{uint64(i*7) % 256, uint64(i*13) % 256}
	}
	whole, err := spatial.NewEpsJoinEstimator(epsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.InsertLeftBulk(pts); err != nil {
		t.Fatal(err)
	}
	if err := whole.InsertRightBulk(pts); err != nil {
		t.Fatal(err)
	}
	a, err := spatial.NewEpsJoinEstimator(epsCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spatial.NewEpsJoinEstimator(epsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InsertLeftBulk(pts[:50]); err != nil {
		t.Fatal(err)
	}
	if err := a.InsertRightBulk(pts[:50]); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertLeftBulk(pts[50:]); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertRightBulk(pts[50:]); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	we, err := whole.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	me, err := a.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	if we.Value != me.Value {
		t.Fatalf("merged eps-join estimate %g != whole %g", me.Value, we.Value)
	}
	// A different Eps changes the right-side balls without changing the
	// core plan: merge must refuse.
	badCfg := epsCfg
	badCfg.Eps = 9 // derives the same adaptive level cap as Eps 8, so the plans match
	bad, err := spatial.NewEpsJoinEstimator(badCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(bad); err == nil {
		t.Fatal("cross-eps merge should fail")
	}

	conCfg := spatial.ContainmentConfig{
		Dims: 2, DomainSize: 256,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4},
		Seed:   10,
	}
	rects := datagen.MustRects(datagen.Spec{N: 80, Dims: 2, Domain: 256, Seed: 4})
	cw, err := spatial.NewContainmentEstimator(conCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.InsertInnerBulk(rects); err != nil {
		t.Fatal(err)
	}
	if err := cw.InsertOuterBulk(rects); err != nil {
		t.Fatal(err)
	}
	ca, err := spatial.NewContainmentEstimator(conCfg)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := spatial.NewContainmentEstimator(conCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.InsertInnerBulk(rects[:40]); err != nil {
		t.Fatal(err)
	}
	if err := ca.InsertOuterBulk(rects[:40]); err != nil {
		t.Fatal(err)
	}
	if err := cb.InsertInnerBulk(rects[40:]); err != nil {
		t.Fatal(err)
	}
	if err := cb.InsertOuterBulk(rects[40:]); err != nil {
		t.Fatal(err)
	}
	if err := ca.Merge(cb); err != nil {
		t.Fatal(err)
	}
	cwe, err := cw.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	cae, err := ca.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	if cwe.Value != cae.Value {
		t.Fatalf("merged containment estimate %g != whole %g", cae.Value, cwe.Value)
	}
}
