package spatial

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Concurrency layer shared by every public estimator.
//
// Estimator state is split into ingestShards() independent shards, each a
// full sketch set built from the SAME plan and guarded by its own RWMutex.
// Point updates lock one shard, picked round-robin, so concurrent writers
// on different shards never contend; sketches are linear projections, so
// the sum of the shards is bit-identical to a single sequentially-loaded
// sketch regardless of which shard each update landed in.
//
// Readers (estimates, counts, snapshots) fold the shards into an owned
// merged view, holding each shard's read lock only while its counters are
// copied - never while estimating - so reads never block the hot insert
// path for longer than one counter copy. With a single shard (GOMAXPROCS
// 1) the fold degenerates to running the reader under the shard's read
// lock directly, skipping the copy.
//
// The fold is not a global atomic cut: a reader sees every update that
// completed before the fold started, and may see some concurrent ones.
// Each update touches exactly one shard under its lock, and updates
// commute (counter addition), so every view is a state the estimator
// could have reached sequentially - estimates are always internally
// consistent, never torn.

// maxIngestShards caps per-estimator shard fan-out: shards multiply the
// counter memory, and past a handful of concurrent writers the round-robin
// spread already keeps lock contention negligible.
const maxIngestShards = 8

// ingestShards picks the shard count for a new estimator.
func ingestShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxIngestShards {
		n = maxIngestShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardedState holds the sharded sketch state of one estimator. T is the
// estimator's per-shard sketch bundle (e.g. the left and right sketches of
// a join estimator).
type shardedState[T any] struct {
	rr     atomic.Uint32
	shards []lockedShard[T]
}

type lockedShard[T any] struct {
	mu    sync.RWMutex
	state T
	_     [24]byte // keep neighbouring shard locks off one cache line
}

// newShardedState builds n shards via mk.
func newShardedState[T any](n int, mk func() T) *shardedState[T] {
	ss := &shardedState[T]{shards: make([]lockedShard[T], n)}
	for i := range ss.shards {
		ss.shards[i].state = mk()
	}
	return ss
}

// ingest runs fn on one shard under its write lock. Shards are picked
// round-robin so concurrent writers spread out.
func (ss *shardedState[T]) ingest(fn func(T) error) error {
	sh := &ss.shards[int(ss.rr.Add(1)%uint32(len(ss.shards)))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return fn(sh.state)
}

// ingestFirst runs fn on shard 0 under its write lock - the designated
// merge target, so merged-in state is never spread thinner than it was.
func (ss *shardedState[T]) ingestFirst(fn func(T) error) error {
	sh := &ss.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return fn(sh.state)
}

// fold runs fn on every shard in order, each under its read lock. fn must
// only read the shard state (typically merging its counters into an owned
// accumulator).
func (ss *shardedState[T]) fold(fn func(T) error) error {
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.RLock()
		err := fn(sh.state)
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// view hands a consistent merged view of the estimator to fn. With one
// shard the state is borrowed under the read lock (no copy); otherwise the
// shards are folded into an owned merged state via mk/merge and fn runs
// lock-free on the copy. fn must not retain or mutate the state.
func (ss *shardedState[T]) view(mk func() T, merge func(dst, src T) error, fn func(T) error) error {
	if len(ss.shards) == 1 {
		sh := &ss.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return fn(sh.state)
	}
	acc := mk()
	if err := ss.fold(func(s T) error { return merge(acc, s) }); err != nil {
		return err
	}
	return fn(acc)
}

// snapshot returns an owned merged copy of the estimator state, safe to
// use after every lock is released (unlike view's borrowed single-shard
// fast path). Merging two estimators copies the source this way first, so
// concurrent a.Merge(b) and b.Merge(a) cannot deadlock: no goroutine ever
// holds locks of both estimators at once.
func (ss *shardedState[T]) snapshot(mk func() T, merge func(dst, src T) error) (T, error) {
	acc := mk()
	err := ss.fold(func(s T) error { return merge(acc, s) })
	return acc, err
}
