package spatial_test

import (
	"bytes"
	"fmt"
	"testing"

	spatial "repro"
	"repro/geo"
	"repro/internal/datagen"
)

// TestUpdateRecordCodecRoundTrip round-trips every record shape through
// the stable binary codec, including back-to-back records in one buffer.
func TestUpdateRecordCodecRoundTrip(t *testing.T) {
	recs := []spatial.UpdateRecord{
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Rect: geo.Rect(10, 50, 20, 80)},
		{Op: spatial.OpDelete, Side: spatial.SideRight, Rect: geo.Rect(0, 1, 1<<40, 1<<40+7)},
		{Op: spatial.OpInsert, Side: spatial.SideData, Rect: geo.Span1D(3, 9)},
		{Op: spatial.OpDelete, Side: spatial.SideInner, Rect: geo.Rect(5, 6, 7, 8)},
		{Op: spatial.OpInsert, Side: spatial.SideOuter, Rect: geo.Rect(1, 2, 3, 4)},
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Point: geo.Point{1, 2, 3}},
		{Op: spatial.OpDelete, Side: spatial.SideRight, Point: geo.Point{1 << 60}},
	}
	var buf []byte
	for _, r := range recs {
		buf = r.AppendBinary(buf)
	}
	for i, want := range recs {
		got, n, err := spatial.DecodeUpdateRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		buf = buf[n:]
		if got.Op != want.Op || got.Side != want.Side {
			t.Fatalf("record %d: decoded (%v, %v), want (%v, %v)", i, got.Op, got.Side, want.Op, want.Side)
		}
		if fmt.Sprint(got.Rect) != fmt.Sprint(want.Rect) || fmt.Sprint(got.Point) != fmt.Sprint(want.Point) {
			t.Fatalf("record %d: decoded %+v, want %+v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left after decoding all records", len(buf))
	}
}

// TestUpdateRecordCodecRejectsGarbage covers decoder error paths.
func TestUpdateRecordCodecRejectsGarbage(t *testing.T) {
	good := spatial.UpdateRecord{Op: spatial.OpInsert, Side: spatial.SideLeft, Rect: geo.Rect(1, 2, 3, 4)}.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":          {},
		"one byte":       {0},
		"bad flags":      {0xf0, 0},
		"bad side":       {0, 99, 2},
		"zero dims":      {0, 1, 0},
		"huge dims":      {0, 1, 200},
		"truncated rect": good[:len(good)-1],
	}
	for name, data := range cases {
		if _, _, err := spatial.DecodeUpdateRecord(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// collectTap returns a tap that appends every record it sees to out.
func collectTap(out *[]spatial.UpdateRecord) spatial.UpdateTap {
	return func(recs []spatial.UpdateRecord) error {
		for _, r := range recs {
			// Records are only valid during the call: deep-copy.
			c := r
			if r.Rect != nil {
				c.Rect = r.Rect.Clone()
			}
			if r.Point != nil {
				c.Point = append(geo.Point(nil), r.Point...)
			}
			*out = append(*out, c)
		}
		return nil
	}
}

// TestTapReplayBitIdentical drives a mixed point/bulk insert/delete
// workload through each estimator kind with a tap attached, replays the
// tapped records through Apply on a same-config empty estimator, and
// requires bit-identical snapshots - the exactness property the WAL
// durability layer is built on.
func TestTapReplayBitIdentical(t *testing.T) {
	const dom = 1 << 10
	sz := spatial.Sizing{Instances: 64, Groups: 4}
	rects := datagen.MustRects(datagen.Spec{N: 64, Dims: 2, Domain: dom, Seed: 8})
	spans := datagen.MustRects(datagen.Spec{N: 64, Dims: 1, Domain: dom, Seed: 9})
	var pts []geo.Point
	for _, r := range rects {
		pts = append(pts, geo.Point{r[0].Lo, r[1].Lo})
	}

	t.Run("join", func(t *testing.T) {
		mk := func() *spatial.JoinEstimator {
			e, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: dom, Sizing: sz, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		src, dst := mk(), mk()
		var recs []spatial.UpdateRecord
		src.SetUpdateTap(collectTap(&recs))
		if err := src.InsertLeftBulk(rects[:32]); err != nil {
			t.Fatal(err)
		}
		if err := src.InsertRight(rects[40]); err != nil {
			t.Fatal(err)
		}
		if err := src.DeleteLeft(rects[3]); err != nil {
			t.Fatal(err)
		}
		replayAndCompare(t, recs, dst.Apply, src.Marshal, dst.Marshal)
	})
	t.Run("range", func(t *testing.T) {
		mk := func() *spatial.RangeEstimator {
			e, err := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 1, DomainSize: dom, Sizing: sz, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		src, dst := mk(), mk()
		var recs []spatial.UpdateRecord
		src.SetUpdateTap(collectTap(&recs))
		if err := src.InsertBulk(spans[:20]); err != nil {
			t.Fatal(err)
		}
		if err := src.Delete(spans[5]); err != nil {
			t.Fatal(err)
		}
		replayAndCompare(t, recs, dst.Apply, src.Marshal, dst.Marshal)
	})
	t.Run("epsjoin", func(t *testing.T) {
		mk := func() *spatial.EpsJoinEstimator {
			e, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{Dims: 2, DomainSize: dom, Eps: 4, Sizing: sz, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		src, dst := mk(), mk()
		var recs []spatial.UpdateRecord
		src.SetUpdateTap(collectTap(&recs))
		if err := src.InsertLeftBulk(pts[:16]); err != nil {
			t.Fatal(err)
		}
		if err := src.InsertRightBulk(pts[16:32]); err != nil {
			t.Fatal(err)
		}
		if err := src.DeleteRight(pts[20]); err != nil {
			t.Fatal(err)
		}
		replayAndCompare(t, recs, dst.Apply, src.Marshal, dst.Marshal)
	})
	t.Run("containment", func(t *testing.T) {
		mk := func() *spatial.ContainmentEstimator {
			e, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{Dims: 2, DomainSize: dom, Sizing: sz, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		src, dst := mk(), mk()
		var recs []spatial.UpdateRecord
		src.SetUpdateTap(collectTap(&recs))
		if err := src.InsertInnerBulk(rects[:16]); err != nil {
			t.Fatal(err)
		}
		if err := src.InsertOuter(rects[30]); err != nil {
			t.Fatal(err)
		}
		if err := src.DeleteInner(rects[2]); err != nil {
			t.Fatal(err)
		}
		replayAndCompare(t, recs, dst.Apply, src.Marshal, dst.Marshal)
	})
}

// replayAndCompare routes recs through the binary codec (as a WAL would),
// applies them to the destination and compares snapshot bytes.
func replayAndCompare(t *testing.T, recs []spatial.UpdateRecord,
	apply func(spatial.UpdateRecord) error, srcMarshal, dstMarshal func() ([]byte, error)) {
	t.Helper()
	if len(recs) == 0 {
		t.Fatal("tap observed no records")
	}
	var buf []byte
	for _, r := range recs {
		buf = r.AppendBinary(buf)
	}
	for len(buf) > 0 {
		rec, n, err := spatial.DecodeUpdateRecord(buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[n:]
		if err := apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	want, err := srcMarshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dstMarshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("replayed estimator snapshot differs from the tapped source")
	}
}

// TestTapErrorAbortsUpdate verifies write-ahead ordering: a failing tap
// aborts the update before any sketch is touched, and removing the tap
// restores normal updates.
func TestTapErrorAbortsUpdate(t *testing.T) {
	est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims: 2, DomainSize: 1 << 10,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("log unavailable")
	est.SetUpdateTap(func([]spatial.UpdateRecord) error { return boom })
	if err := est.InsertLeft(geo.Rect(1, 5, 2, 6)); err != boom {
		t.Fatalf("tapped insert returned %v, want the tap error", err)
	}
	if err := est.InsertRightBulk([]geo.HyperRect{geo.Rect(1, 5, 2, 6)}); err != boom {
		t.Fatalf("tapped bulk insert returned %v, want the tap error", err)
	}
	if l, r := est.LeftCount(), est.RightCount(); l != 0 || r != 0 {
		t.Fatalf("aborted updates still landed: counts (%d, %d)", l, r)
	}
	// Invalid input fails validation before the tap runs.
	called := false
	est.SetUpdateTap(func([]spatial.UpdateRecord) error { called = true; return nil })
	if err := est.InsertLeft(geo.HyperRect{{Lo: 9, Hi: 5}, {Lo: 0, Hi: 2}}); err == nil || called {
		t.Fatalf("invalid input: err %v, tap called %v", err, called)
	}
	est.SetUpdateTap(nil)
	if err := est.InsertLeft(geo.Rect(1, 5, 2, 6)); err != nil {
		t.Fatal(err)
	}
	if est.LeftCount() != 1 {
		t.Fatalf("untapped insert lost: count %d", est.LeftCount())
	}
}

// FuzzUpdateRecord fuzzes the update-record codec: any bytes the decoder
// accepts must re-encode canonically and decode back to the same record -
// the property replication replay and WAL shipping rely on.
func FuzzUpdateRecord(f *testing.F) {
	for _, rec := range []spatial.UpdateRecord{
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Rect: geo.Rect(10, 50, 20, 80)},
		{Op: spatial.OpDelete, Side: spatial.SideRight, Rect: geo.Rect(0, 1, 1<<40, 1<<40+7)},
		{Op: spatial.OpInsert, Side: spatial.SideData, Rect: geo.Span1D(3, 9)},
		{Op: spatial.OpDelete, Side: spatial.SideOuter, Rect: geo.Rect(5, 6, 7, 8)},
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Point: geo.Point{1, 2, 3}},
		{Op: spatial.OpDelete, Side: spatial.SideRight, Point: geo.Point{1 << 60}},
	} {
		f.Add(rec.AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add([]byte{0x02, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := spatial.DecodeUpdateRecord(data)
		if err != nil {
			return // rejection is fine; no panic, no allocation blow-up
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		enc := rec.AppendBinary(nil)
		rec2, n2, err := spatial.DecodeUpdateRecord(enc)
		if err != nil {
			t.Fatalf("re-decoding the canonical encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("canonical encoding is %d bytes but re-decode consumed %d", len(enc), n2)
		}
		if rec2.Op != rec.Op || rec2.Side != rec.Side ||
			fmt.Sprint(rec2.Rect) != fmt.Sprint(rec.Rect) || fmt.Sprint(rec2.Point) != fmt.Sprint(rec.Point) {
			t.Fatalf("round trip changed the record: %+v -> %+v", rec, rec2)
		}
		if !bytes.Equal(enc, rec2.AppendBinary(nil)) {
			t.Fatalf("encoding is not stable across a round trip")
		}
		if rec.RoutingHash() != rec2.RoutingHash() {
			t.Fatalf("routing hash changed across a round trip")
		}
		del := rec
		del.Op = spatial.OpDelete
		if del.RoutingHash() != rec.RoutingHash() {
			t.Fatalf("routing hash depends on the operation: insert and its delete would split partitions")
		}
	})
}

// TestApplyMismatchedKind replays records against estimators of the wrong
// kind (or wrong side/geometry) and demands a clean error with no state
// change - replication ships these records across nodes, so a mis-routed
// record must never corrupt counters.
func TestApplyMismatchedKind(t *testing.T) {
	sz := spatial.Sizing{Instances: 16, Groups: 4}
	join, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: 64, Sizing: sz, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng, err2 := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 2, DomainSize: 64, Sizing: sz, Seed: 2})
	if err2 != nil {
		t.Fatal(err2)
	}
	eps, err3 := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{Dims: 2, DomainSize: 64, Eps: 4, Sizing: sz, Seed: 3})
	if err3 != nil {
		t.Fatal(err3)
	}
	cont, err4 := spatial.NewContainmentEstimator(spatial.ContainmentConfig{Dims: 2, DomainSize: 64, Sizing: sz, Seed: 4})
	if err4 != nil {
		t.Fatal(err4)
	}
	rect := geo.Rect(1, 5, 2, 6)
	pt := geo.Point{1, 2}
	type applier interface {
		Apply(spatial.UpdateRecord) error
	}
	cases := []struct {
		name string
		est  applier
		rec  spatial.UpdateRecord
	}{
		{"join gets a point", join, spatial.UpdateRecord{Side: spatial.SideLeft, Point: pt}},
		{"join gets a data-side record", join, spatial.UpdateRecord{Side: spatial.SideData, Rect: rect}},
		{"join gets an inner-side record", join, spatial.UpdateRecord{Side: spatial.SideInner, Rect: rect}},
		{"range gets a point", rng, spatial.UpdateRecord{Side: spatial.SideData, Point: pt}},
		{"range gets a left-side record", rng, spatial.UpdateRecord{Side: spatial.SideLeft, Rect: rect}},
		{"epsjoin gets a rect", eps, spatial.UpdateRecord{Side: spatial.SideLeft, Rect: rect}},
		{"epsjoin gets an outer-side record", eps, spatial.UpdateRecord{Side: spatial.SideOuter, Point: pt}},
		{"containment gets a point", cont, spatial.UpdateRecord{Side: spatial.SideInner, Point: pt}},
		{"containment gets a right-side record", cont, spatial.UpdateRecord{Side: spatial.SideRight, Rect: rect}},
	}
	for _, c := range cases {
		if err := c.est.Apply(c.rec); err == nil {
			t.Errorf("%s: Apply accepted a mismatched record", c.name)
		}
	}
	if n := join.LeftCount() + join.RightCount(); n != 0 {
		t.Errorf("join counters moved on rejected records: %d", n)
	}
	if n := rng.Count(); n != 0 {
		t.Errorf("range counter moved on rejected records: %d", n)
	}
	if n := eps.LeftCount() + eps.RightCount(); n != 0 {
		t.Errorf("epsjoin counters moved on rejected records: %d", n)
	}
	if n := cont.InnerCount() + cont.OuterCount(); n != 0 {
		t.Errorf("containment counters moved on rejected records: %d", n)
	}
}
