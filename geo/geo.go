// Package geo provides the geometric substrate of the spatial sketch
// library: closed integer intervals, rectangles, d-dimensional
// hyper-rectangles and points over discrete coordinate domains, together
// with the overlap predicates and spatial-relationship classification used
// throughout Das, Gehrke and Riedewald, "Approximation Techniques for
// Spatial Data" (SIGMOD 2004).
//
// All coordinates are unsigned integers in a finite domain {0, ..., n-1}
// (paper Section 2.1). Real-valued data is mapped onto such a grid with a
// Quantizer (paper Section 5.1).
package geo

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi] over a discrete coordinate domain.
// A degenerate interval with Lo == Hi represents a point.
type Interval struct {
	Lo, Hi uint64
}

// NewInterval returns the closed interval [lo, hi]. It panics if lo > hi;
// use MakeInterval for a checked constructor.
func NewInterval(lo, hi uint64) Interval {
	iv, err := MakeInterval(lo, hi)
	if err != nil {
		panic(err)
	}
	return iv
}

// MakeInterval returns the closed interval [lo, hi], or an error if lo > hi.
func MakeInterval(lo, hi uint64) (Interval, error) {
	if lo > hi {
		return Interval{}, fmt.Errorf("geo: invalid interval [%d, %d]: lower endpoint exceeds upper", lo, hi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// Length returns the number of integer coordinates covered by the interval.
func (iv Interval) Length() uint64 { return iv.Hi - iv.Lo + 1 }

// IsPoint reports whether the interval is degenerate (covers one coordinate).
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// ContainsPoint reports whether x lies in the closed interval.
func (iv Interval) ContainsPoint(x uint64) bool { return iv.Lo <= x && x <= iv.Hi }

// Contains reports whether o is fully contained in iv (closed containment,
// c <= a <= b <= d as in the containment join of Appendix B.2).
func (iv Interval) Contains(o Interval) bool { return iv.Lo <= o.Lo && o.Hi <= iv.Hi }

// Overlaps implements the paper's Definition 1 restricted to one dimension:
// two intervals overlap iff their intersection has positive extent, i.e.
// they share more than a single boundary point. Intervals that merely
// "meet" at an endpoint (case 2 of Figure 3) do not overlap; identical
// intervals (case 6) do.
//
// Degenerate (point) intervals never overlap anything under this
// predicate. The paper's join machinery assumes non-degenerate inputs
// ("the data sets do not contain any degenerate objects", Section 4.1);
// for point data use the epsilon-join or range-query operators instead.
func (iv Interval) Overlaps(o Interval) bool {
	return max(iv.Lo, o.Lo) < min(iv.Hi, o.Hi)
}

// OverlapsExt implements the extended overlap+ of Definition 4 in one
// dimension: intervals that meet at a boundary point also count.
func (iv Interval) OverlapsExt(o Interval) bool {
	return max(iv.Lo, o.Lo) <= min(iv.Hi, o.Hi)
}

// Intersect returns the intersection of the two closed intervals and whether
// it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	lo, hi := max(iv.Lo, o.Lo), min(iv.Hi, o.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// Rel is the spatial relationship between two intervals r and s, numbered
// after Figure 3 of the paper.
type Rel uint8

// Spatial relationships between an interval r and an interval s
// (cases obtained by swapping r and s map to the same case number,
// mirroring the paper's figure).
const (
	RelDisjunct    Rel = 1 // no common coordinate
	RelMeet        Rel = 2 // share exactly one boundary coordinate, no interior intersection
	RelOverlap     Rel = 3 // proper partial overlap, no shared endpoints
	RelContain     Rel = 4 // one strictly inside the other, no shared endpoints
	RelContainMeet Rel = 5 // containment sharing exactly one endpoint
	RelIdentical   Rel = 6 // equal intervals
)

// String returns the paper's name for the relationship.
func (r Rel) String() string {
	switch r {
	case RelDisjunct:
		return "disjunct"
	case RelMeet:
		return "meet"
	case RelOverlap:
		return "overlap"
	case RelContain:
		return "contain"
	case RelContainMeet:
		return "contain+meet"
	case RelIdentical:
		return "identical"
	}
	return fmt.Sprintf("Rel(%d)", uint8(r))
}

// CountsAsOverlap reports whether the relationship is counted by the spatial
// join of Definition 1 (cases 3-6 of Figure 3).
func (r Rel) CountsAsOverlap() bool { return r >= RelOverlap }

// Relationship classifies the spatial relationship between r and s per
// Figure 3 of the paper. The classification is symmetric in r and s.
func Relationship(r, s Interval) Rel {
	switch {
	case r == s:
		return RelIdentical
	case r.Hi < s.Lo || s.Hi < r.Lo:
		return RelDisjunct
	case r.Hi == s.Lo || s.Hi == r.Lo:
		return RelMeet
	case r.Contains(s) || s.Contains(r):
		if r.Lo == s.Lo || r.Hi == s.Hi {
			return RelContainMeet
		}
		return RelContain
	default:
		return RelOverlap
	}
}

// HyperRect is a d-dimensional hyper-rectangle: the cross product of one
// closed interval per dimension (paper Section 2.1). Points, lines and
// rectangles are special cases.
type HyperRect []Interval

// Dims returns the dimensionality of the hyper-rectangle.
func (h HyperRect) Dims() int { return len(h) }

// Overlaps implements Definition 1: the hyper-rectangles overlap iff their
// projections overlap in every dimension. It panics if dimensionalities
// differ.
func (h HyperRect) Overlaps(o HyperRect) bool {
	mustSameDims(h, o)
	for i := range h {
		if !h[i].Overlaps(o[i]) {
			return false
		}
	}
	return true
}

// OverlapsExt implements the extended overlap+ of Definition 4: a non-empty
// d- or lower-dimensional intersection suffices.
func (h HyperRect) OverlapsExt(o HyperRect) bool {
	mustSameDims(h, o)
	for i := range h {
		if !h[i].OverlapsExt(o[i]) {
			return false
		}
	}
	return true
}

// Contains reports whether o is fully contained in h in every dimension
// (closed containment, the predicate of the containment join).
func (h HyperRect) Contains(o HyperRect) bool {
	mustSameDims(h, o)
	for i := range h {
		if !h[i].Contains(o[i]) {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether point p lies in the closed hyper-rectangle.
func (h HyperRect) ContainsPoint(p Point) bool {
	if len(h) != len(p) {
		panic(fmt.Sprintf("geo: dimensionality mismatch: %d vs %d", len(h), len(p)))
	}
	for i := range h {
		if !h[i].ContainsPoint(p[i]) {
			return false
		}
	}
	return true
}

// Relationships returns the d-tuple of per-dimension spatial relationships
// between h and o, as used for rectangles in Figure 4 of the paper.
func (h HyperRect) Relationships(o HyperRect) []Rel {
	mustSameDims(h, o)
	rels := make([]Rel, len(h))
	for i := range h {
		rels[i] = Relationship(h[i], o[i])
	}
	return rels
}

// Clone returns a deep copy of the hyper-rectangle.
func (h HyperRect) Clone() HyperRect {
	c := make(HyperRect, len(h))
	copy(c, h)
	return c
}

// Rect returns a 2-dimensional hyper-rectangle [xlo,xhi] x [ylo,yhi].
func Rect(xlo, xhi, ylo, yhi uint64) HyperRect {
	return HyperRect{NewInterval(xlo, xhi), NewInterval(ylo, yhi)}
}

// Span1D returns a 1-dimensional hyper-rectangle (an interval).
func Span1D(lo, hi uint64) HyperRect {
	return HyperRect{NewInterval(lo, hi)}
}

func mustSameDims(a, b HyperRect) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geo: dimensionality mismatch: %d vs %d", len(a), len(b)))
	}
}

// Point is a point in a d-dimensional discrete space.
type Point []uint64

// Dims returns the dimensionality of the point.
func (p Point) Dims() int { return len(p) }

// AsRect returns the degenerate hyper-rectangle covering exactly p.
func (p Point) AsRect() HyperRect {
	h := make(HyperRect, len(p))
	for i, x := range p {
		h[i] = Interval{Lo: x, Hi: x}
	}
	return h
}

// DistLInf returns the L-infinity (Chebyshev) distance between two points,
// the metric used by the paper's epsilon-join construction (Section 6.3).
func DistLInf(a, b Point) uint64 {
	mustSamePointDims(a, b)
	var d uint64
	for i := range a {
		d = max(d, absDiff(a[i], b[i]))
	}
	return d
}

// DistL1 returns the L1 (Manhattan) distance between two points.
func DistL1(a, b Point) uint64 {
	mustSamePointDims(a, b)
	var d uint64
	for i := range a {
		d += absDiff(a[i], b[i])
	}
	return d
}

// DistL2Sq returns the squared Euclidean distance between two points.
// Returning the square avoids floating point in the common "dist <= eps"
// test (compare against eps*eps).
func DistL2Sq(a, b Point) uint64 {
	mustSamePointDims(a, b)
	var d uint64
	for i := range a {
		x := absDiff(a[i], b[i])
		d += x * x
	}
	return d
}

func mustSamePointDims(a, b Point) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geo: dimensionality mismatch: %d vs %d", len(a), len(b)))
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Ball returns the L-infinity ball of radius eps around p, clipped to the
// domain [0, domainSize-1] in every dimension. This is the hyper-cube b' of
// side length 2*eps used by the epsilon-join reduction (Section 6.3).
func Ball(p Point, eps, domainSize uint64) HyperRect {
	h := make(HyperRect, len(p))
	for i, x := range p {
		lo := uint64(0)
		if x > eps {
			lo = x - eps
		}
		hi := x + eps
		if hi > domainSize-1 || hi < x { // clip, guarding against wraparound
			hi = domainSize - 1
		}
		h[i] = Interval{Lo: lo, Hi: hi}
	}
	return h
}

// Quantizer maps real-valued coordinates in [Min, Max) onto the discrete
// grid {0, ..., Cells-1}, implementing the finite-domain reduction of
// Section 5.1: spatial applications store coordinates with bounded
// precision, so a grid of 2^k cells loses no information that matters.
type Quantizer struct {
	Min, Max float64 // half-open real range covered
	Cells    uint64  // number of grid cells (the discrete domain size)
}

// NewQuantizer returns a quantizer over [min, max) with the given number of
// grid cells. It returns an error if the range is empty or cells is zero.
func NewQuantizer(min, max float64, cells uint64) (*Quantizer, error) {
	if !(min < max) {
		return nil, fmt.Errorf("geo: invalid quantizer range [%g, %g)", min, max)
	}
	if cells == 0 {
		return nil, fmt.Errorf("geo: quantizer needs at least one cell")
	}
	return &Quantizer{Min: min, Max: max, Cells: cells}, nil
}

// Quantize maps a real coordinate to its grid cell, clamping values outside
// the configured range to the boundary cells.
func (q *Quantizer) Quantize(x float64) uint64 {
	if x <= q.Min {
		return 0
	}
	if x >= q.Max {
		return q.Cells - 1
	}
	c := uint64(math.Floor((x - q.Min) / (q.Max - q.Min) * float64(q.Cells)))
	if c >= q.Cells {
		c = q.Cells - 1
	}
	return c
}

// Dequantize returns the real midpoint of grid cell c.
func (q *Quantizer) Dequantize(c uint64) float64 {
	w := (q.Max - q.Min) / float64(q.Cells)
	return q.Min + (float64(c)+0.5)*w
}

// QuantizeInterval maps a real interval [lo, hi] to the grid.
func (q *Quantizer) QuantizeInterval(lo, hi float64) Interval {
	a, b := q.Quantize(lo), q.Quantize(hi)
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}
