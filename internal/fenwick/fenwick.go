// Package fenwick provides a Fenwick (binary indexed) tree over int64
// counts. It is the substrate of the exact plane-sweep join counters in
// internal/exact, which need insert/delete of endpoint multiplicities and
// prefix-count queries in O(log n).
package fenwick

import "fmt"

// Tree is a Fenwick tree over positions [0, n). The zero value is unusable;
// construct with New.
type Tree struct {
	t     []int64
	total int64
}

// New returns a tree over positions [0, n).
func New(n int) *Tree {
	if n < 0 {
		panic(fmt.Sprintf("fenwick: negative size %d", n))
	}
	return &Tree{t: make([]int64, n+1)}
}

// Len returns the number of positions.
func (f *Tree) Len() int { return len(f.t) - 1 }

// Add adds delta to position i.
func (f *Tree) Add(i int, delta int64) {
	if i < 0 || i >= f.Len() {
		panic(fmt.Sprintf("fenwick: position %d outside [0, %d)", i, f.Len()))
	}
	f.total += delta
	for j := i + 1; j < len(f.t); j += j & (-j) {
		f.t[j] += delta
	}
}

// PrefixSum returns the sum of positions [0, i]. i = -1 yields 0.
func (f *Tree) PrefixSum(i int) int64 {
	if i >= f.Len() {
		i = f.Len() - 1
	}
	var s int64
	for j := i + 1; j > 0; j -= j & (-j) {
		s += f.t[j]
	}
	return s
}

// RangeSum returns the sum of positions [lo, hi]; empty if lo > hi.
func (f *Tree) RangeSum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}

// SuffixSum returns the sum of positions [i, n).
func (f *Tree) SuffixSum(i int) int64 {
	if i <= 0 {
		return f.total
	}
	return f.total - f.PrefixSum(i-1)
}

// Total returns the sum over all positions.
func (f *Tree) Total() int64 { return f.total }

// Reset zeroes the tree in place.
func (f *Tree) Reset() {
	for i := range f.t {
		f.t[i] = 0
	}
	f.total = 0
}
