// Package cluster is the horizontal scale-out substrate of spatialserve:
// a consistent-hash ring with virtual nodes over estimator shard keys, a
// versioned partition map with per-shard overrides (how a completed
// rebalance is expressed), and an HTTP fan-out client with per-node
// timeouts and hedged retries for idempotent reads.
//
// The design leans entirely on sketch linearity: every estimator is split
// into a fixed number of partitions, each update record lands on exactly
// one partition (chosen by a stable routing hash), and the merged sum of
// the partition sketches is bit-identical to a single-node build of the
// same update stream. Distribution is therefore exact - the ring decides
// only WHERE counters accumulate, never WHAT they sum to.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per physical node used when a
// Map does not set one. More virtual nodes smooth the partition spread at
// the cost of a larger (still tiny) ring table.
const DefaultVNodes = 64

// Node is one cluster member: a stable identity plus the base URL its
// spatialserve HTTP API listens on. Ring placement hashes only the ID, so
// a node can change address (failover promotion of a WAL-shipped replica,
// say) without moving any data.
type Node struct {
	// ID is the stable node identity hashed onto the ring.
	ID string `json:"id"`
	// URL is the node's base HTTP URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// Map is a versioned partition map: the cluster membership, the
// virtual-node fan-out, and explicit per-shard ownership overrides laid
// down by rebalances. Maps are value-published and must be treated as
// immutable once shared; derive changed maps with Clone.
//
// Version totally orders maps: nodes adopt a received map iff its Version
// is strictly newer than theirs, so a rebalance broadcast and a lagging
// router converge on the newest ownership regardless of arrival order.
type Map struct {
	// Version orders maps; higher wins.
	Version uint64 `json:"version"`
	// VNodes is the virtual-node count per node (0 means DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// Nodes is the membership. Order is irrelevant to placement.
	Nodes []Node `json:"nodes"`
	// Overrides pins specific shard keys to a node ID, overriding the
	// ring. A completed rebalance is recorded here.
	Overrides map[string]string `json:"overrides,omitempty"`
	// Replicas maps a node ID to the base URL of its attached WAL-shipped
	// read replica (-follow). Fan-out reads fall back to it when the
	// owner's circuit breaker is open; it never serves writes.
	Replicas map[string]string `json:"replicas,omitempty"`

	ring []ringPoint // lazily built, nil until first Owner call
}

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into Nodes
}

// Validate reports the first structural problem with the map: no nodes,
// duplicate or empty IDs, missing URLs, or an override naming an unknown
// node.
func (m *Map) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: map has no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: node with empty id")
		}
		if n.URL == "" {
			return fmt.Errorf("cluster: node %q has no url", n.ID)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	for key, id := range m.Overrides {
		if !seen[id] {
			return fmt.Errorf("cluster: override %q names unknown node %q", key, id)
		}
	}
	for id, url := range m.Replicas {
		if !seen[id] {
			return fmt.Errorf("cluster: replica for unknown node %q", id)
		}
		if url == "" {
			return fmt.Errorf("cluster: replica for node %q has no url", id)
		}
	}
	return nil
}

// ReplicaURL returns the read-replica base URL attached to the node, if
// one is registered in the map.
func (m *Map) ReplicaURL(id string) (string, bool) {
	url, ok := m.Replicas[id]
	return url, ok && url != ""
}

// vnodes resolves the virtual-node count.
func (m *Map) vnodes() int {
	if m.VNodes > 0 {
		return m.VNodes
	}
	return DefaultVNodes
}

// buildRing materializes the sorted virtual-node table. Callers publish
// maps before sharing them (see EnsureRing), so reads never race a build.
func (m *Map) buildRing() {
	v := m.vnodes()
	ring := make([]ringPoint, 0, len(m.Nodes)*v)
	for i, n := range m.Nodes {
		for j := 0; j < v; j++ {
			ring = append(ring, ringPoint{hash: Hash(n.ID + "#" + strconv.Itoa(j)), node: i})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].hash != ring[b].hash {
			return ring[a].hash < ring[b].hash
		}
		return ring[a].node < ring[b].node
	})
	m.ring = ring
}

// EnsureRing pre-builds the ring table so the map can be shared read-only
// afterwards (Owner on a published map must not mutate it). It returns m
// for chaining.
func (m *Map) EnsureRing() *Map {
	if m.ring == nil {
		m.buildRing()
	}
	return m
}

// Owner returns the node owning key: the override if one is pinned,
// otherwise the first virtual node clockwise of the key's hash. The bool
// is false only for an empty map.
func (m *Map) Owner(key string) (Node, bool) {
	if len(m.Nodes) == 0 {
		return Node{}, false
	}
	if id, ok := m.Overrides[key]; ok {
		if n, ok := m.NodeByID(id); ok {
			return n, true
		}
	}
	if m.ring == nil {
		m.buildRing()
	}
	h := Hash(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.Nodes[m.ring[i].node], true
}

// NodeByID looks a member up by identity.
func (m *Map) NodeByID(id string) (Node, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Clone returns a deep copy with no ring table, ready to be mutated and
// re-published under a bumped Version.
func (m *Map) Clone() *Map {
	c := &Map{Version: m.Version, VNodes: m.VNodes, Nodes: append([]Node(nil), m.Nodes...)}
	if m.Overrides != nil {
		c.Overrides = make(map[string]string, len(m.Overrides))
		for k, v := range m.Overrides {
			c.Overrides[k] = v
		}
	}
	if m.Replicas != nil {
		c.Replicas = make(map[string]string, len(m.Replicas))
		for k, v := range m.Replicas {
			c.Replicas[k] = v
		}
	}
	return c
}

// Hash is the cluster's stable 64-bit key hash: FNV-1a finished with a
// 64-bit avalanche mix. The mix matters: ring placement compares full
// 64-bit values, and raw FNV-1a of short keys differing only in a
// trailing digit ("a#0" ... "a#63") clusters in the high bits badly
// enough to starve whole nodes of partitions.
func Hash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// HashBytes is Hash for a byte-slice key (no string allocation).
func HashBytes(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: full-width avalanche so every
// input bit disturbs every output bit.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// PartitionOf maps a routing hash onto one of parts partitions.
func PartitionOf(hash uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int(hash % uint64(parts))
}

// shardSep separates the estimator name from the partition index in a
// shard key. It is rejected in client-facing estimator names, so shard
// keys can never collide with user names.
const shardSep = "#"

// ShardName returns the registry key of partition part of estimator name,
// the unit of ring placement and rebalancing.
func ShardName(name string, part int) string {
	return name + shardSep + strconv.Itoa(part)
}

// SplitShardName is the inverse of ShardName. ok is false for keys that
// are not shard-shaped (no separator, or a malformed partition index).
func SplitShardName(shard string) (name string, part int, ok bool) {
	i := strings.LastIndex(shard, shardSep)
	if i < 0 {
		return "", 0, false
	}
	p, err := strconv.Atoi(shard[i+len(shardSep):])
	if err != nil || p < 0 {
		return "", 0, false
	}
	return shard[:i], p, true
}

// IsShardName reports whether key names a partition shard rather than a
// whole estimator.
func IsShardName(key string) bool {
	_, _, ok := SplitShardName(key)
	return ok
}
