// Package trace is the dependency-free distributed-tracing core for the
// spatial estimator server: a span model (trace ID, span ID, parent,
// start/duration, bounded key=value attrs, error flag), W3C traceparent
// propagation helpers, and a per-node Tracer that keeps a bounded ring
// of completed traces with tail-based retention - errored and
// slow-beyond-threshold traces are always kept, the rest are
// probabilistically sampled. All retention decisions happen at trace
// completion, so the per-span hot path is two sharded mutex hops and an
// append.
//
// The package deliberately has no dependencies beyond the standard
// library and no exporter: traces are served by the owning process
// (spatialserve's /admin/trace) and stitched across nodes by trace ID.
package trace

import (
	"context"
	"encoding/hex"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one distributed trace: 16 random bytes, rendered
// as 32 lowercase hex digits on the wire (traceparent) and in JSON.
type TraceID [16]byte

// SpanID identifies one span within a trace: 8 random bytes, rendered
// as 16 lowercase hex digits.
type SpanID [8]byte

// String returns the 32-digit lowercase hex form of the trace ID.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-digit lowercase hex form of the span ID.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the trace ID is the all-zero (invalid) ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// NewTraceID mints a random non-zero trace ID. Callers outside a server
// (load generators, tests) use it to pre-assign a trace to an operation
// so the resulting server-side tree is retrievable by a known ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// NewSpanID mints a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s == (SpanID{}) {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(a >> (8 * i))
		}
	}
	return s
}

// ParseTraceID parses a 32-digit hex trace ID, rejecting the all-zero
// ID per the W3C trace-context rules.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// Traceparent renders the W3C traceparent header value for a trace and
// parent span: version 00, flags 01 (sampled).
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value, accepting any
// version and ignoring the flags. It rejects all-zero trace or span IDs.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	t, ok := ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	var s SpanID
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil || s == (SpanID{}) {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// Attr is one bounded key=value annotation on a span.
type Attr struct {
	// K is the attribute key.
	K string `json:"k"`
	// V is the attribute value.
	V string `json:"v"`
}

// SpanData is one completed span as stored and served: the immutable
// record a Span turns into at End.
type SpanData struct {
	// TraceID is the owning trace, in hex.
	TraceID string `json:"trace_id"`
	// SpanID is this span's ID, in hex.
	SpanID string `json:"span_id"`
	// ParentID is the parent span's ID in hex, empty for a trace root.
	ParentID string `json:"parent_id,omitempty"`
	// Name is the operation name ("http update", "wal.append", ...).
	Name string `json:"name"`
	// Node is the recording node's self ID (empty outside cluster mode).
	Node string `json:"node,omitempty"`
	// Start is the span's start time on the recording node's clock.
	Start time.Time `json:"start"`
	// Duration is the span's wall-clock duration in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// Error marks the span as failed.
	Error bool `json:"error,omitempty"`
	// Attrs holds the span's bounded key=value annotations.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute, or "".
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.K == key {
			return a.V
		}
	}
	return ""
}

// Segment is one node's retained slice of a trace: the locally recorded
// spans plus the retention verdict. Cross-node trees are assembled by
// concatenating segments with the same trace ID.
type Segment struct {
	// TraceID is the trace in hex.
	TraceID string `json:"trace_id"`
	// Node is the recording node's self ID.
	Node string `json:"node,omitempty"`
	// Reason says why the segment is visible: "error", "slow",
	// "sampled", or "active" for a still-open trace.
	Reason string `json:"reason"`
	// Duration is the longest span in the segment - the segment's local
	// critical path.
	Duration time.Duration `json:"duration_ns"`
	// Spans holds the recorded spans, in completion order.
	Spans []SpanData `json:"spans"`
	// DroppedSpans counts spans discarded over the per-trace bound.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// Summary is one retained trace as listed by GET /admin/trace: enough
// to pick a trace without shipping its whole span set.
type Summary struct {
	// TraceID is the trace in hex.
	TraceID string `json:"trace_id"`
	// Root is the name of the segment's root-most span.
	Root string `json:"root"`
	// Start is the earliest recorded span start.
	Start time.Time `json:"start"`
	// Duration is the longest span in the segment.
	Duration time.Duration `json:"duration_ns"`
	// Spans is the retained span count.
	Spans int `json:"spans"`
	// Error marks a trace with at least one failed span.
	Error bool `json:"error,omitempty"`
	// Reason is the retention verdict ("error", "slow", "sampled").
	Reason string `json:"reason"`
	// Tenant and Endpoint echo the root span's attrs for filtering.
	Tenant string `json:"tenant,omitempty"`
	// Endpoint is the root span's endpoint class attr.
	Endpoint string `json:"endpoint,omitempty"`
}

// Filter selects traces from the retained ring for listing.
type Filter struct {
	// Tenant keeps only traces whose root span has this tenant attr.
	Tenant string
	// Endpoint keeps only traces whose root span has this endpoint attr.
	Endpoint string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// ErrorOnly keeps only errored traces.
	ErrorOnly bool
	// Limit bounds the result count (0 means a server-chosen default).
	Limit int
}

// Stats reports the tracer's lifetime counters.
type Stats struct {
	// Completed counts traces that reached a retention decision.
	Completed uint64 `json:"completed"`
	// Retained counts traces kept in the ring.
	Retained uint64 `json:"retained"`
	// DroppedTraces counts traces refused at the active-trace bound.
	DroppedTraces uint64 `json:"dropped_traces,omitempty"`
	// Active is the current in-flight trace count.
	Active int64 `json:"active"`
}

// Options configures a Tracer. The zero value is usable: unnamed node,
// 256-trace ring, 250ms slow threshold, 5% tail sample rate, 256 spans
// per trace, 4096 in-flight traces.
type Options struct {
	// Node is the recording node's self ID, stamped on every span.
	Node string
	// RingSize bounds the retained completed-trace ring.
	RingSize int
	// SlowThreshold marks traces at or above it as always-retained.
	SlowThreshold time.Duration
	// SampleRate is the retention probability for fast, clean traces;
	// 0 means the default, negative disables sampling entirely (only
	// errored and slow traces are kept).
	SampleRate float64
	// MaxSpansPerTrace bounds spans recorded per trace; excess spans
	// are counted, not stored.
	MaxSpansPerTrace int
	// MaxActiveTraces bounds concurrently open traces; new traces over
	// the bound are dropped (counted in Stats).
	MaxActiveTraces int
}

// shardCount splits the active-trace map so concurrent request starts
// and ends do not serialize on one lock. Must be a power of two.
const shardCount = 16

// Tracer records spans for one node and retains completed traces with
// tail-based sampling. Safe for concurrent use; the zero Tracer is not
// valid, use New.
type Tracer struct {
	node      atomic.Pointer[string]
	maxSpans  int
	maxActive int64

	slowNs     atomic.Int64
	sampleBits atomic.Uint64

	shards [shardCount]traceShard

	ringMu sync.Mutex
	ring   []*Segment
	next   int
	held   int

	active        atomic.Int64
	completed     atomic.Uint64
	retained      atomic.Uint64
	droppedTraces atomic.Uint64
}

// traceShard is one lock-striped slice of the active-trace map.
type traceShard struct {
	mu     sync.Mutex
	active map[TraceID]*activeTrace
}

// activeTrace accumulates one in-flight trace's completed spans until
// its open-span count returns to zero.
type activeTrace struct {
	open    int
	spans   []SpanData
	dropped int
	errored bool
	maxDur  time.Duration
}

// New builds a Tracer from opts, applying the documented defaults.
func New(opts Options) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	if opts.SlowThreshold <= 0 {
		opts.SlowThreshold = 250 * time.Millisecond
	}
	switch {
	case opts.SampleRate == 0:
		opts.SampleRate = 0.05
	case opts.SampleRate < 0:
		opts.SampleRate = 0
	}
	if opts.MaxSpansPerTrace <= 0 {
		opts.MaxSpansPerTrace = 256
	}
	if opts.MaxActiveTraces <= 0 {
		opts.MaxActiveTraces = 4096
	}
	t := &Tracer{
		maxSpans:  opts.MaxSpansPerTrace,
		maxActive: int64(opts.MaxActiveTraces),
		ring:      make([]*Segment, opts.RingSize),
	}
	t.node.Store(&opts.Node)
	t.slowNs.Store(int64(opts.SlowThreshold))
	t.sampleBits.Store(math.Float64bits(opts.SampleRate))
	for i := range t.shards {
		t.shards[i].active = make(map[TraceID]*activeTrace)
	}
	return t
}

// SetNode renames the recording node. Cluster mode learns its self ID
// after the tracer exists, so the name is updatable; spans already
// recorded keep the name they were stamped with.
func (t *Tracer) SetNode(node string) {
	if t == nil {
		return
	}
	t.node.Store(&node)
}

// nodeName returns the current node name.
func (t *Tracer) nodeName() string { return *t.node.Load() }

// SetSlowThreshold changes the always-retain latency threshold.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the current always-retain latency threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNs.Load()) }

// SetSampleRate changes the retention probability for fast, clean
// traces (clamped to [0,1]).
func (t *Tracer) SetSampleRate(r float64) {
	t.sampleBits.Store(math.Float64bits(min(max(r, 0), 1)))
}

// Stats returns the tracer's lifetime counters.
func (t *Tracer) Stats() Stats {
	return Stats{
		Completed:     t.completed.Load(),
		Retained:      t.retained.Load(),
		DroppedTraces: t.droppedTraces.Load(),
		Active:        t.active.Load(),
	}
}

// ctxSpanKey carries the active *Span in a context.
type ctxSpanKey struct{}

// ctxRemoteKey carries a remote parent (TraceID+SpanID) parsed from an
// incoming traceparent header before any local span exists.
type ctxRemoteKey struct{}

// remoteParent is the ctxRemoteKey payload.
type remoteParent struct {
	trace TraceID
	span  SpanID
}

// ContextWith returns ctx carrying sp as the active span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxSpanKey{}, sp)
}

// FromContext returns the active span in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxSpanKey{}).(*Span)
	return sp
}

// ContextWithRemote returns ctx carrying a remote parent, so the next
// Start on this node becomes a child of span parent in trace id - the
// receiving half of traceparent propagation.
func ContextWithRemote(ctx context.Context, id TraceID, parent SpanID) context.Context {
	return context.WithValue(ctx, ctxRemoteKey{}, remoteParent{trace: id, span: parent})
}

// TraceparentFromContext renders the traceparent header value that makes
// remote work a child of ctx's active span (or, absent one, of ctx's
// remote parent) - the sending half of propagation. Empty when ctx
// carries no trace.
func TraceparentFromContext(ctx context.Context) string {
	if sp := FromContext(ctx); sp != nil {
		return sp.Traceparent()
	}
	if rp, ok := ctx.Value(ctxRemoteKey{}).(remoteParent); ok {
		return Traceparent(rp.trace, rp.span)
	}
	return ""
}

// Span is one in-flight operation. Created by Tracer.Start, finalized
// exactly once by End. All methods are nil-safe so call sites need no
// tracer-enabled checks.
type Span struct {
	tracer    *Tracer
	traceID   TraceID
	spanID    SpanID
	parent    SpanID
	hasParent bool
	name      string
	start     time.Time

	mu    sync.Mutex
	attrs []Attr
	err   bool
	ended bool
	// unregistered marks a span refused at the active-trace bound: End
	// discards it.
	unregistered bool
}

// maxAttrs bounds annotations per span.
const maxAttrs = 16

// Start begins a span named name. If ctx carries an active span the new
// span is its child; if ctx carries a remote parent (traceparent) the
// new span is the local root of that distributed trace; otherwise a
// fresh trace begins. The returned context carries the new span. A nil
// tracer returns ctx and a nil (no-op) span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{tracer: t, spanID: NewSpanID(), name: name, start: time.Now()}
	if p := FromContext(ctx); p != nil && !p.unregistered {
		sp.traceID, sp.parent, sp.hasParent = p.traceID, p.spanID, true
	} else if rp, ok := ctx.Value(ctxRemoteKey{}).(remoteParent); ok {
		sp.traceID, sp.parent, sp.hasParent = rp.trace, rp.span, true
	} else {
		sp.traceID = NewTraceID()
	}
	sh := &t.shards[sp.traceID[0]&(shardCount-1)]
	sh.mu.Lock()
	at := sh.active[sp.traceID]
	if at == nil {
		if t.active.Load() >= t.maxActive {
			sh.mu.Unlock()
			t.droppedTraces.Add(1)
			sp.unregistered = true
			return ContextWith(ctx, sp), sp
		}
		at = &activeTrace{}
		sh.active[sp.traceID] = at
		t.active.Add(1)
	}
	at.open++
	sh.mu.Unlock()
	return ContextWith(ctx, sp), sp
}

// TraceID returns the span's trace ID (zero for a nil span).
func (sp *Span) TraceID() TraceID {
	if sp == nil {
		return TraceID{}
	}
	return sp.traceID
}

// ID returns the span's own ID (zero for a nil span).
func (sp *Span) ID() SpanID {
	if sp == nil {
		return SpanID{}
	}
	return sp.spanID
}

// Traceparent renders the header value that makes remote work a child
// of this span. Empty for a nil span.
func (sp *Span) Traceparent() string {
	if sp == nil {
		return ""
	}
	return Traceparent(sp.traceID, sp.spanID)
}

// SetAttr annotates the span; annotations over the per-span bound are
// dropped. No-op on a nil or ended span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended && len(sp.attrs) < maxAttrs {
		sp.attrs = append(sp.attrs, Attr{K: key, V: value})
	}
	sp.mu.Unlock()
}

// SetError marks the span (and so its trace) as failed. A failed trace
// is always retained. No-op on a nil span or a nil error.
func (sp *Span) SetError(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended {
		sp.err = true
		if len(sp.attrs) < maxAttrs {
			sp.attrs = append(sp.attrs, Attr{K: "error", V: err.Error()})
		}
	}
	sp.mu.Unlock()
}

// Fail marks the span as failed with a bare reason string (for call
// sites that have a status code rather than an error value).
func (sp *Span) Fail(reason string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended {
		sp.err = true
		if reason != "" && len(sp.attrs) < maxAttrs {
			sp.attrs = append(sp.attrs, Attr{K: "error", V: reason})
		}
	}
	sp.mu.Unlock()
}

// End finalizes the span and, when it closes the last open span of its
// trace, decides retention. It reports whether this End completed the
// trace AND the trace was retained - callers use that to attach
// exemplars only for traces that are actually retrievable. Safe to call
// once; later calls are no-ops. Nil-safe.
func (sp *Span) End() bool {
	if sp == nil {
		return false
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return false
	}
	sp.ended = true
	d := time.Since(sp.start)
	data := SpanData{
		TraceID:  sp.traceID.String(),
		SpanID:   sp.spanID.String(),
		Name:     sp.name,
		Node:     sp.tracer.nodeName(),
		Start:    sp.start,
		Duration: d,
		Error:    sp.err,
		Attrs:    sp.attrs,
	}
	if sp.hasParent {
		data.ParentID = sp.parent.String()
	}
	sp.mu.Unlock()
	if sp.unregistered {
		return false
	}
	return sp.tracer.endSpan(sp.traceID, data, true)
}

// Duration returns the span's elapsed time so far (final after End).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	return time.Since(sp.start)
}

// endSpan folds one completed span into its active trace; closing=true
// decrements the open count (a Start-ed span ending), false attaches a
// pre-completed child (RecordSpan). Returns whether this call completed
// the trace and the trace was retained.
func (t *Tracer) endSpan(id TraceID, data SpanData, closing bool) bool {
	sh := &t.shards[id[0]&(shardCount-1)]
	sh.mu.Lock()
	at := sh.active[id]
	if at == nil {
		sh.mu.Unlock()
		if closing {
			return false
		}
		// A child recorded after its trace completed (or with no local
		// trace at all, e.g. a WAL group-commit span): stand alone.
		return t.finish(id, &activeTrace{
			spans:   []SpanData{data},
			errored: data.Error,
			maxDur:  data.Duration,
		})
	}
	if len(at.spans) < t.maxSpans {
		at.spans = append(at.spans, data)
	} else {
		at.dropped++
	}
	if data.Error {
		at.errored = true
	}
	if data.Duration > at.maxDur {
		at.maxDur = data.Duration
	}
	if closing {
		at.open--
	}
	done := at.open <= 0
	if done {
		delete(sh.active, id)
	}
	sh.mu.Unlock()
	if !done {
		return false
	}
	t.active.Add(-1)
	return t.finish(id, at)
}

// RecordSpan attaches an already-measured operation as a completed span:
// a child of ctx's active span (or remote parent) when one exists, else
// a standalone single-span trace subject to the usual retention rules.
// This is how hook-shaped instrumentation with no context of its own
// (WAL group commit, view-cache rebuilds) lands in the trace store.
func (t *Tracer) RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, err error, attrs ...Attr) {
	if t == nil {
		return
	}
	data := SpanData{
		SpanID:   NewSpanID().String(),
		Name:     name,
		Node:     t.nodeName(),
		Start:    start,
		Duration: d,
		Error:    err != nil,
	}
	if len(attrs) > maxAttrs {
		attrs = attrs[:maxAttrs]
	}
	data.Attrs = attrs
	if err != nil && len(data.Attrs) < maxAttrs {
		data.Attrs = append(data.Attrs, Attr{K: "error", V: err.Error()})
	}
	var id TraceID
	if p := FromContext(ctx); p != nil && !p.unregistered {
		id, data.ParentID = p.traceID, p.spanID.String()
	} else if rp, ok := ctx.Value(ctxRemoteKey{}).(remoteParent); ok {
		id, data.ParentID = rp.trace, rp.span.String()
	} else {
		id = NewTraceID()
	}
	data.TraceID = id.String()
	t.endSpan(id, data, false)
}

// finish applies the tail-based retention decision to a completed trace
// and, when retained, pushes its segment into the ring. Reports whether
// the trace was retained.
func (t *Tracer) finish(id TraceID, at *activeTrace) bool {
	t.completed.Add(1)
	reason := ""
	switch {
	case at.errored:
		reason = "error"
	case at.maxDur >= time.Duration(t.slowNs.Load()):
		reason = "slow"
	case rand.Float64() < math.Float64frombits(t.sampleBits.Load()):
		reason = "sampled"
	default:
		return false
	}
	t.retained.Add(1)
	seg := &Segment{
		TraceID:      id.String(),
		Node:         t.nodeName(),
		Reason:       reason,
		Duration:     at.maxDur,
		Spans:        at.spans,
		DroppedSpans: at.dropped,
	}
	t.ringMu.Lock()
	t.ring[t.next] = seg
	t.next = (t.next + 1) % len(t.ring)
	if t.held < len(t.ring) {
		t.held++
	}
	t.ringMu.Unlock()
	return true
}

// rootOf picks the segment's root-most span: the first span with no
// parent, else the earliest-starting span.
func rootOf(spans []SpanData) SpanData {
	if len(spans) == 0 {
		return SpanData{}
	}
	best, found := spans[0], false
	for _, s := range spans {
		if s.ParentID == "" {
			if !found || s.Start.Before(best.Start) {
				best, found = s, true
			}
			continue
		}
		if !found && s.Start.Before(best.Start) {
			best = s
		}
	}
	return best
}

// List returns summaries of retained traces, newest first, filtered by
// f. Limit defaults to 100.
func (t *Tracer) List(f Filter) []Summary {
	if t == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	t.ringMu.Lock()
	segs := make([]*Segment, 0, t.held)
	for i := 0; i < t.held; i++ {
		// Walk backwards from the most recent write.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if s := t.ring[idx]; s != nil {
			segs = append(segs, s)
		}
	}
	t.ringMu.Unlock()
	out := make([]Summary, 0, min(limit, len(segs)))
	for _, seg := range segs {
		if len(out) >= limit {
			break
		}
		root := rootOf(seg.Spans)
		sum := Summary{
			TraceID:  seg.TraceID,
			Root:     root.Name,
			Start:    root.Start,
			Duration: seg.Duration,
			Spans:    len(seg.Spans),
			Error:    seg.Reason == "error",
			Reason:   seg.Reason,
			Tenant:   root.Attr("tenant"),
			Endpoint: root.Attr("endpoint"),
		}
		if f.Tenant != "" && sum.Tenant != f.Tenant {
			continue
		}
		if f.Endpoint != "" && sum.Endpoint != f.Endpoint {
			continue
		}
		if seg.Duration < f.MinDuration {
			continue
		}
		if f.ErrorOnly && !sum.Error {
			continue
		}
		out = append(out, sum)
	}
	return out
}

// Segments returns every locally held segment of the trace: retained
// ring entries plus, when the trace is still open, an "active" segment
// snapshotting the spans completed so far.
func (t *Tracer) Segments(id TraceID) []*Segment {
	if t == nil {
		return nil
	}
	hexID := id.String()
	var out []*Segment
	t.ringMu.Lock()
	for _, seg := range t.ring {
		if seg != nil && seg.TraceID == hexID {
			out = append(out, seg)
		}
	}
	t.ringMu.Unlock()
	sh := &t.shards[id[0]&(shardCount-1)]
	sh.mu.Lock()
	if at := sh.active[id]; at != nil && len(at.spans) > 0 {
		out = append(out, &Segment{
			TraceID:      hexID,
			Node:         t.nodeName(),
			Reason:       "active",
			Duration:     at.maxDur,
			Spans:        append([]SpanData(nil), at.spans...),
			DroppedSpans: at.dropped,
		})
	}
	sh.mu.Unlock()
	return out
}
