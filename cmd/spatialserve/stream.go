package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	spatial "repro"
	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/trace"
)

// Exactly-once streaming ingest (POST /v1/ingest, HTTP upgrade to the
// internal/ingest frame protocol).
//
// Sketch updates are not idempotent - a double-applied record skews
// every later estimate - so the wire path, the one place a retry can
// double-apply, carries (session, seq) on every batch and the server
// dedups on a per-session high-water mark. The mark and the batch's
// records are logged in ONE WAL record (walOpIngest), so recovery can
// never apply a batch without remembering it, or vice versa; the mark
// also rides the checkpoint manifest (like tenant configs) and the
// replica WAL mirror, so dedup survives checkpoint truncation, crash
// recovery and replica promotion. A batch is acked only after that WAL
// record is group-committed: the client may retry every ambiguous
// failure, and anything at-or-below the watermark is dropped (and
// re-acked) instead of re-applied.
//
// Cluster mode forwards each batch per partition with the SAME
// (session, seq); each owner keeps its own (session, shard) mark, so a
// partial fan-out failure followed by a client retry re-applies only at
// owners that missed it. The routing node keeps a non-durable routing
// mark it advances after ALL owners acked - a pure fast-path dedup and
// resume hint; losing it merely causes re-forwarding that the owners'
// durable marks drop.

// maxSessionEntries bounds the session table: entries are tiny, but a
// hostile client minting sessions must hit a wall before the heap does.
// When full, new sessions are refused with a retryable overload error.
const maxSessionEntries = 65536

// streamWindowBatches is the credit window advertised in HelloAck: the
// maximum unacked batches a client may keep in flight.
const streamWindowBatches = 32

// streamHelloTimeout bounds how long a fresh connection may sit before
// completing its handshake.
const streamHelloTimeout = 10 * time.Second

// streamIdleTimeout bounds how long an established stream may sit with
// no frame at all before the server reclaims the connection (the client
// reconnects and resumes; nothing is lost).
const streamIdleTimeout = 5 * time.Minute

// streamStallLimit bounds how long one batch may wait on admission
// before the stream is shed with a retryable overload error.
const streamStallLimit = 30 * time.Second

// errSessionTableFull reports session-table exhaustion (retryable).
var errSessionTableFull = errors.New("ingest session table is full; retry later")

// sessionKey identifies one watermark: a client session streaming into
// one registry key (on partition owners the key is the shard name).
type sessionKey struct {
	session string
	key     string
}

// sessionEntry is one session's dedup state. mu serializes the whole
// check-log-apply-advance sequence for the session so two connections
// replaying the same session cannot interleave; seq is atomic so
// checkpoint export and HelloAck resume reads never need the lock.
type sessionEntry struct {
	mu  sync.Mutex
	seq atomic.Uint64
	// last is the unix-nano time of the entry's latest activity (create,
	// apply, dedup, mark adoption, resume peek) - the idle clock the
	// session GC reads.
	last atomic.Int64
	// dropped marks an entry removed from the table (GC, admin drop or
	// estimator deletion) while a racing holder may still carry a stale
	// pointer; lockEntry re-fetches when it observes the flag.
	dropped atomic.Bool
}

// touch stamps the entry's idle clock.
func (e *sessionEntry) touch() { e.last.Store(time.Now().UnixNano()) }

// sessionMark is the manifest/wire form of one watermark.
type sessionMark struct {
	Session   string `json:"session"`
	Estimator string `json:"estimator"`
	Seq       uint64 `json:"seq"`
}

// sessionTable holds every session's high-water mark. The zero value is
// ready to use.
type sessionTable struct {
	mu      sync.Mutex
	entries map[sessionKey]*sessionEntry
	// pinned counts the live stream connections attached to each
	// (session, key): the GC never expires a mark a stream is using,
	// however idle.
	pinned map[sessionKey]int
}

// entry returns (creating if needed) the session's entry. With
// enforceCap set, a full table refuses NEW sessions with nil - existing
// sessions keep working, so a session flood cannot evict dedup state.
// Recovery and replication pass enforceCap=false: what was logged must
// replay.
func (t *sessionTable) entry(session, key string, enforceCap bool) *sessionEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.entries == nil {
		t.entries = make(map[sessionKey]*sessionEntry)
	}
	k := sessionKey{session, key}
	if e, ok := t.entries[k]; ok {
		return e
	}
	if enforceCap && len(t.entries) >= maxSessionEntries {
		return nil
	}
	e := &sessionEntry{}
	e.touch()
	t.entries[k] = e
	return e
}

// lockEntry returns the session's entry with its mutex held, re-fetching
// when a concurrent GC or admin drop removed the entry between lookup
// and lock. Returns nil only when enforceCap refuses a new session.
func (t *sessionTable) lockEntry(session, key string, enforceCap bool) *sessionEntry {
	for {
		e := t.entry(session, key, enforceCap)
		if e == nil {
			return nil
		}
		e.mu.Lock()
		if !e.dropped.Load() {
			return e
		}
		e.mu.Unlock()
	}
}

// pin marks a live stream attached to (session, key); pinned marks are
// exempt from GC expiry.
func (t *sessionTable) pin(session, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pinned == nil {
		t.pinned = make(map[sessionKey]int)
	}
	t.pinned[sessionKey{session, key}]++
}

// unpin releases a pin.
func (t *sessionTable) unpin(session, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := sessionKey{session, key}
	if n := t.pinned[k]; n > 1 {
		t.pinned[k] = n - 1
	} else {
		delete(t.pinned, k)
	}
}

// isPinned reports whether any live stream is attached to (session, key).
func (t *sessionTable) isPinned(session, key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pinned[sessionKey{session, key}] > 0
}

// remove deletes one entry from the table (the caller holds the entry's
// mutex and has set its dropped flag).
func (t *sessionTable) remove(session, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, sessionKey{session, key})
}

// removeMark drops one mark outright - the replay form of a logged
// session drop (recovery and replica apply, where no batch can race).
func (t *sessionTable) removeMark(session, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := sessionKey{session, key}
	if e, ok := t.entries[k]; ok {
		e.dropped.Store(true)
		delete(t.entries, k)
	}
}

// peek returns the session's watermark (0 when unknown) without
// creating an entry.
func (t *sessionTable) peek(session, key string) uint64 {
	t.mu.Lock()
	e := t.entries[sessionKey{session, key}]
	t.mu.Unlock()
	if e == nil {
		return 0
	}
	e.touch() // a resume read is activity; keep the mark out of GC reach
	return e.seq.Load()
}

// dropKey removes every session mark for one estimator key - estimator
// deletion invalidates the marks (a recreated estimator must not
// inherit them; session IDs must not be reused across recreation).
func (t *sessionTable) dropKey(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, e := range t.entries {
		if k.key == key {
			e.dropped.Store(true)
			delete(t.entries, k)
		}
	}
}

// marksFor returns the marks of one estimator key (rebalance ships a
// shard's marks to the new owner at seal time).
func (t *sessionTable) marksFor(key string) []sessionMark {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []sessionMark
	for k, e := range t.entries {
		if k.key == key {
			out = append(out, sessionMark{Session: k.session, Estimator: k.key, Seq: e.seq.Load()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

// export returns every mark, sorted, for the checkpoint manifest.
// Callers hold the exclusive mutation gate, so no mark is mid-advance.
func (t *sessionTable) export() []sessionMark {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]sessionMark, 0, len(t.entries))
	for k, e := range t.entries {
		out = append(out, sessionMark{Session: k.session, Estimator: k.key, Seq: e.seq.Load()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimator != out[j].Estimator {
			return out[i].Estimator < out[j].Estimator
		}
		return out[i].Session < out[j].Session
	})
	return out
}

// restore seeds the table from a checkpoint manifest (recovery, before
// WAL replay).
func (t *sessionTable) restore(marks []sessionMark) {
	for _, m := range marks {
		e := t.entry(m.Session, m.Estimator, false)
		if m.Seq > e.seq.Load() {
			e.seq.Store(m.Seq)
		}
	}
}

// adopt advances one mark without applying records: rebalance handing a
// shard's marks to the new owner. Logged (count-0 walOpIngest) so the
// mark survives the new owner's recovery.
func (s *Server) adoptMark(ctx context.Context, name string, est servable, m sessionMark) error {
	ent := s.sessions.lockEntry(m.Session, name, false)
	defer ent.mu.Unlock()
	ent.touch()
	if m.Seq <= ent.seq.Load() {
		return nil
	}
	return s.withEstimator(name, est, func() error {
		if s.persist != nil {
			if err := s.persist.logIngest(ctx, name, m.Session, m.Seq, 0, nil); err != nil {
				return err
			}
		}
		ent.seq.Store(m.Seq)
		return nil
	})
}

// applyIngestBatch is the exactly-once core: dedup against the session
// watermark, validate every record, log records + watermark advance as
// one atomic WAL record, apply untapped (the tap would re-log), advance
// the mark. Returns the applied record count, or deduped=true when the
// batch is at-or-below the watermark (already durable - the caller acks
// it again).
func (s *Server) applyIngestBatch(ctx context.Context, name, session string, seq, count uint64, records []byte) (applied int, deduped bool, err error) {
	est, ok := s.lookup(name)
	if !ok {
		return 0, false, fmt.Errorf("%w: %q", errNotFoundLocal, name)
	}
	ent := s.sessions.lockEntry(session, name, true)
	if ent == nil {
		return 0, false, errSessionTableFull
	}
	defer ent.mu.Unlock()
	ent.touch()
	if seq <= ent.seq.Load() {
		return 0, true, nil
	}
	recs := make([]spatial.UpdateRecord, 0, count)
	rest := records
	for i := uint64(0); i < count; i++ {
		rec, used, derr := spatial.DecodeUpdateRecord(rest)
		if derr != nil {
			return 0, false, fmt.Errorf("record %d: %w", i, derr)
		}
		rest = rest[used:]
		recs = append(recs, rec)
	}
	if len(rest) != 0 {
		return 0, false, fmt.Errorf("%d trailing bytes after %d records", len(rest), count)
	}
	err = s.withEstimator(name, est, func() error {
		if s.cluster != nil && cluster.IsShardName(name) && !s.cluster.owns(name) {
			return errNotOwner
		}
		// Validate BEFORE the WAL append: a logged ingest record must
		// replay cleanly, the same invariant the tap path gets from
		// estimators validating before the tap fires.
		for _, rec := range recs {
			if verr := est.validateRecord(rec); verr != nil {
				return verr
			}
		}
		if s.persist != nil {
			if lerr := s.persist.logIngest(ctx, name, session, seq, len(recs), records); lerr != nil {
				return lerr
			}
		}
		for _, rec := range recs {
			if aerr := est.applyUntapped(rec); aerr != nil {
				// Validated above; a failure here means the WAL record
				// and the sketches disagree - surface loudly.
				return fmt.Errorf("applying validated ingest record: %w", aerr)
			}
		}
		ent.seq.Store(seq)
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	return len(recs), false, nil
}

// ---- the streaming endpoint ----

// handleIngestStream upgrades POST /v1/ingest to the binary frame
// protocol and serves the stream until the connection dies. Admission
// is per-batch inside the stream (blocking with a stall bound) rather
// than per-request 429s: overload slows streams down instead of
// storming every client into reconnect loops.
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), ingest.Protocol) {
		w.Header().Set("Upgrade", ingest.Protocol)
		writeError(w, http.StatusUpgradeRequired, "this endpoint speaks %s; set the Upgrade header", ingest.Protocol)
		return
	}
	conn, rw, err := http.NewResponseController(w).Hijack()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "connection cannot be hijacked: %v", err)
		return
	}
	defer conn.Close()
	fmt.Fprintf(rw, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n", ingest.Protocol)
	if err := rw.Flush(); err != nil {
		return
	}
	// The handler (and so ServeHTTP's root span) lives for the whole
	// stream; per-batch child spans hang off this context.
	s.serveStream(r.Context(), conn, rw)
}

// streamConn bundles one hijacked stream connection with its write
// mutex (acks and errors are written from the read loop only today, but
// the lock keeps that a local property rather than a global invariant).
type streamConn struct {
	conn net.Conn
	rw   *bufio.ReadWriter
	mu   sync.Mutex
}

// writeFrame writes one pre-encoded frame and flushes it.
func (sc *streamConn) writeFrame(frame []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, err := sc.rw.Write(frame); err != nil {
		return err
	}
	return sc.rw.Flush()
}

// fail sends a terminal error frame (best effort) and returns.
func (sc *streamConn) fail(code ingest.ErrorCode, format string, args ...any) {
	sc.writeFrame(ingest.AppendError(nil, code, fmt.Sprintf(format, args...)))
}

// serveStream runs one ingest stream: handshake, then a batch loop that
// acks each batch after its WAL commit. Processing is sequential per
// connection - ordering within a session is the protocol's contract -
// while cross-stream concurrency rides the WAL group commit.
func (s *Server) serveStream(ctx context.Context, conn net.Conn, rw *bufio.ReadWriter) {
	sc := &streamConn{conn: conn, rw: rw}

	helloStart := time.Now()
	conn.SetReadDeadline(time.Now().Add(streamHelloTimeout))
	ft, body, err := ingest.ReadFrame(rw.Reader)
	if err != nil || ft != ingest.FrameHello {
		sc.fail(ingest.CodeBadRequest, "expected hello frame")
		return
	}
	hello, err := ingest.DecodeHello(body)
	if err != nil {
		sc.fail(ingest.CodeBadRequest, "%v", err)
		return
	}
	key := hello.Estimator
	clustered := s.cluster != nil && !cluster.IsShardName(key)
	if !clustered {
		if _, ok := s.lookup(key); !ok {
			sc.fail(ingest.CodeNotFound, "no estimator %q", key)
			return
		}
	}
	tenant := s.streamTenant(key)
	s.metrics.streamStarted(tenant)
	defer s.metrics.streamEnded(tenant)
	// Pin the mark for the stream's lifetime: an attached session is
	// never idle-expired, whatever its frame cadence.
	s.sessions.pin(hello.Session, key)
	defer s.sessions.unpin(hello.Session, key)

	// The watermark resumes the client: on a routing node this is the
	// non-durable routing mark (0 after restart - the client resends and
	// the owners' durable marks dedup).
	ack := ingest.AppendHelloAck(nil, ingest.HelloAck{
		Watermark:     s.sessions.peek(hello.Session, key),
		WindowBatches: streamWindowBatches,
	})
	if sc.writeFrame(ack) != nil {
		return
	}
	s.tracer.RecordSpan(ctx, "ingest.hello", helloStart, time.Since(helloStart), nil,
		trace.Attr{K: "session", V: hello.Session},
		trace.Attr{K: "estimator", V: key})

	for {
		conn.SetReadDeadline(time.Now().Add(streamIdleTimeout))
		ft, body, err := ingest.ReadFrame(rw.Reader)
		if err != nil {
			return // closed, killed or idle-timed-out; the client resumes
		}
		if ft != ingest.FrameBatch {
			sc.fail(ingest.CodeBadRequest, "unexpected frame type %d mid-stream", ft)
			return
		}
		batch, err := ingest.DecodeBatch(body)
		if err != nil {
			sc.fail(ingest.CodeBadRequest, "%v", err)
			return
		}
		start := time.Now()
		bctx, sp := s.tracer.Start(ctx, "ingest.batch")
		sp.SetAttr("session", hello.Session)
		sp.SetAttr("seq", strconv.FormatUint(batch.Seq, 10))
		sp.SetAttr("records", strconv.FormatUint(batch.Count, 10))
		if a := s.admit; a != nil {
			release, waited, ok := a.acquireStreamBatch(streamStallLimit)
			if waited {
				s.metrics.ingestStalled(tenant)
			}
			if !ok {
				sp.Fail("admission stalled past " + streamStallLimit.String())
				sp.End()
				sc.fail(ingest.CodeOverloaded, "admission stalled past %s", streamStallLimit)
				return
			}
			err = s.ingestOneBatch(bctx, key, hello.Session, clustered, batch)
			release()
		} else {
			err = s.ingestOneBatch(bctx, key, hello.Session, clustered, batch)
		}
		d := time.Since(start)
		if err != nil {
			sp.Fail(err.Error())
		}
		traceID := sp.TraceID()
		sp.End()
		if s.slowLog.Enabled(d) {
			op := trace.SlowOp{
				Op:       "ingest.batch",
				Tenant:   tenant,
				Endpoint: "/v1/ingest",
				Duration: d,
			}
			if !traceID.IsZero() {
				op.TraceID = traceID.String()
			}
			if err != nil {
				op.Err = err.Error()
			}
			s.slowLog.Observe(op)
		}
		if err != nil {
			code, msg := streamErrorFor(err)
			sc.fail(code, "%s", msg)
			return
		}
		s.metrics.observeIngestAck(tenant, d)
		if sc.writeFrame(ingest.AppendAck(nil, batch.Seq)) != nil {
			return
		}
	}
}

// ingestOneBatch applies one stream batch locally or through cluster
// routing, recording the batch metrics.
func (s *Server) ingestOneBatch(ctx context.Context, key, session string, clustered bool, batch ingest.Batch) error {
	tenant := s.streamTenant(key)
	var applied int
	var deduped bool
	var err error
	if clustered {
		applied, deduped, err = s.cluster.routeIngest(ctx, key, session, batch)
	} else {
		applied, deduped, err = s.applyIngestBatch(ctx, key, session, batch.Seq, batch.Count, batch.Records)
	}
	if err != nil {
		return err
	}
	s.metrics.observeIngestBatch(tenant, deduped, applied)
	return nil
}

// streamErrorFor maps an ingest failure to its wire error code.
func streamErrorFor(err error) (ingest.ErrorCode, string) {
	var lf *logFailure
	var ce *shardClientError
	switch {
	case errors.Is(err, errNotFoundLocal) || errors.Is(err, errShardMissing):
		return ingest.CodeNotFound, err.Error()
	case errors.Is(err, errSessionTableFull):
		return ingest.CodeOverloaded, err.Error()
	case errors.As(err, &lf):
		return ingest.CodeInternal, err.Error()
	case err == errStaleBinding || errors.Is(err, errNotOwner):
		// A rebalance raced the batch; the new owner dedups the resend.
		return ingest.CodeInternal, err.Error()
	case errors.As(err, &ce):
		return ingest.CodeBadRequest, err.Error()
	case errors.Is(err, errForwardFailed):
		return ingest.CodeInternal, err.Error()
	}
	return ingest.CodeBadRequest, err.Error()
}

// streamTenant returns the bounded tenant metric label for a registry
// key.
func (s *Server) streamTenant(key string) string {
	t, _ := splitTenant(key)
	if t == "" || t == DefaultTenant {
		return DefaultTenant
	}
	if s.tenants.get(t) != nil {
		return t
	}
	return "other"
}

// ---- internal shard endpoints (cluster fan-out) ----

// handleShardIngest applies one forwarded sub-batch at a partition
// owner: POST body is the walOpIngest rest layout (session | seq |
// count | records). Internal only - the (session, seq) contract is
// meaningless for external callers hitting shard keys directly.
func (s *Server) handleShardIngest(w http.ResponseWriter, r *http.Request) {
	if !isInternal(r) {
		writeError(w, http.StatusForbidden, "shard ingest is internal")
		return
	}
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	name := r.PathValue("name")
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	session, seq, count, records, err := parseIngestRest(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	applied, deduped, err := s.applyIngestBatch(r.Context(), name, session, seq, count, records)
	if err != nil {
		writeIngestError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestShardResponse{Applied: applied, Deduped: deduped})
}

// writeIngestError maps an exactly-once apply failure to its HTTP
// status, shared by the internal shard endpoint and the
// Idempotency-Key JSON path.
func writeIngestError(w http.ResponseWriter, err error) {
	var lf *logFailure
	switch {
	case errors.Is(err, errNotFoundLocal) || errors.Is(err, errShardMissing):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, errSessionTableFull):
		reject(w, 1)
	case err == errStaleBinding || errors.Is(err, errNotOwner):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.As(err, &lf), errors.Is(err, errForwardFailed):
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// ingestShardResponse acknowledges one forwarded sub-batch.
type ingestShardResponse struct {
	Applied int  `json:"applied"`
	Deduped bool `json:"deduped"`
}

// handleIngestMarks adopts session watermarks for one estimator -
// rebalance ships a shard's marks to the new owner at seal time so the
// move cannot reopen the dedup window. Body: JSON array of sessionMark.
func (s *Server) handleIngestMarks(w http.ResponseWriter, r *http.Request) {
	if !isInternal(r) {
		writeError(w, http.StatusForbidden, "ingest marks are internal")
		return
	}
	name := r.PathValue("name")
	est, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	var marks []sessionMark
	if !decodeJSON(w, r, &marks) {
		return
	}
	for _, m := range marks {
		if m.Session == "" || len(m.Session) > ingest.MaxSessionIDBytes {
			writeError(w, http.StatusBadRequest, "bad session in mark")
			return
		}
		if err := s.adoptMark(r.Context(), name, est, m); err != nil {
			var lf *logFailure
			if errors.As(err, &lf) {
				writeError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"adopted": len(marks)})
}

// ---- Idempotency-Key on the JSON update path ----

// updateRecords converts a JSON update batch into wire records for the
// exactly-once machinery.
func updateRecords(req *updateRequest) ([]spatial.UpdateRecord, error) {
	op := spatial.OpInsert
	if req.Op == "delete" {
		op = spatial.OpDelete
	}
	var side spatial.UpdateSide
	switch req.Side {
	case "", "data":
		side = spatial.SideData
	case "left":
		side = spatial.SideLeft
	case "right":
		side = spatial.SideRight
	case "inner":
		side = spatial.SideInner
	case "outer":
		side = spatial.SideOuter
	default:
		return nil, fmt.Errorf("unknown side %q", req.Side)
	}
	recs := make([]spatial.UpdateRecord, 0, len(req.Rects)+len(req.Points))
	for _, r := range decodeRects(req.Rects) {
		recs = append(recs, spatial.UpdateRecord{Op: op, Side: side, Rect: r})
	}
	for _, p := range decodePoints(req.Points) {
		recs = append(recs, spatial.UpdateRecord{Op: op, Side: side, Point: p})
	}
	return recs, nil
}

// serveIdempotentUpdate runs one JSON update through the exactly-once
// ingest machinery: the Idempotency-Key becomes a single-batch session
// ("idem:<key>", seq 1) whose persisted watermark makes any retry of
// the same key a durable no-op that still answers 200 (with Deduped
// set). Keys are single-use by construction; reusing one replays the
// first request's acknowledgement, not its effect.
func (s *Server) serveIdempotentUpdate(ctx context.Context, w http.ResponseWriter, name, key string, req *updateRequest) {
	if !validRequestID(key) {
		writeError(w, http.StatusBadRequest, "Idempotency-Key must be 1-64 log-safe characters")
		return
	}
	recs, err := updateRecords(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(recs) == 0 {
		writeError(w, http.StatusBadRequest, "idempotent update carries no rects or points")
		return
	}
	var enc []byte
	for _, rec := range recs {
		enc = rec.AppendBinary(enc)
	}
	session := "idem:" + key
	var applied int
	var deduped bool
	if s.cluster != nil && !cluster.IsShardName(name) {
		applied, deduped, err = s.cluster.routeIngest(ctx, name, session,
			ingest.Batch{Seq: 1, Count: uint64(len(recs)), Records: enc})
	} else {
		applied, deduped, err = s.applyIngestBatch(ctx, name, session, 1, uint64(len(recs)), enc)
	}
	if err != nil {
		writeIngestError(w, err)
		return
	}
	var counts map[string]int64
	if est, ok := s.lookup(name); ok {
		counts = est.counts()
	}
	writeJSON(w, http.StatusOK, updateResponse{Applied: applied, Counts: counts, Deduped: deduped})
}
