package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, dir string, from Pos) (recs [][]byte, poss []Pos) {
	t.Helper()
	err := Replay(dir, from, func(p Pos, payload []byte) error {
		recs = append(recs, append([]byte(nil), payload...))
		poss = append(poss, p)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, poss
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	var wantPos []Pos
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("record-%03d-%s", i, strings.Repeat("x", i%17)))
		pos, err := w.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, payload)
		wantPos = append(wantPos, pos)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, gotPos := collect(t, dir, Pos{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
		if gotPos[i] != wantPos[i] {
			t.Fatalf("record %d at %v, Append reported %v", i, gotPos[i], wantPos[i])
		}
	}
	// Reopen appends after the existing tail.
	w, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = collect(t, dir, Pos{})
	if len(got) != len(want)+1 || string(got[len(got)-1]) != "after-reopen" {
		t.Fatalf("after reopen got %d records, last %q", len(got), got[len(got)-1])
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, Pos{})
	if len(got) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(got), workers*per)
	}
	seen := make(map[string]bool, len(got))
	for _, r := range got {
		if seen[string(r)] {
			t.Fatalf("record %q appears twice", r)
		}
		seen[string(r)] = true
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(seqs))
	}
	return segPath(dir, seqs[len(seqs)-1])
}

func TestTornFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the file tail.
	path := lastSegment(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	// Replay stops cleanly in front of the tear.
	got, _ := collect(t, dir, Pos{})
	if len(got) != 9 {
		t.Fatalf("replayed %d records through a torn tail, want 9", len(got))
	}
	// Open truncates the tear and appends continue.
	w, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("post-tear")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = collect(t, dir, Pos{})
	if len(got) != 10 || string(got[9]) != "post-tear" {
		t.Fatalf("after tear recovery got %d records, last %q", len(got), got[len(got)-1])
	}
}

func TestTornHeaderOnlySegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between segment creation and header write.
	if err := os.WriteFile(segPath(dir, 2), []byte{0x4c, 0x41}, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, Pos{})
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	w, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = collect(t, dir, Pos{})
	if len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("got %d records after header-only recovery", len(got))
	}
}

func TestCorruptCRCMidSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-number-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the SECOND record: a checksum mismatch with
	// more records after it must be an error, never a silent skip.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := int64(recHeaderSize + len("record-number-0"))
	data[segHeaderSize+frame+recHeaderSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = Replay(dir, Pos{}, func(Pos, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("mid-segment corruption replayed without error: %v", err)
	}
	// Open must refuse it too (the damage is in the final segment but is
	// not tail-shaped).
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a segment with mid-segment corruption")
	}
}

func TestCorruptionInNonFinalSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%d-%s", i, strings.Repeat("y", 30)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(seqs))
	}
	// Truncate the FIRST segment: even tail-shaped damage in a non-final
	// segment is corruption.
	first := segPath(dir, seqs[0])
	info, _ := os.Stat(first)
	if err := os.Truncate(first, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	err = Replay(dir, Pos{}, func(Pos, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "non-final segment") {
		t.Fatalf("non-final segment damage replayed without error: %v", err)
	}
}

func TestReplayFromMidSegmentPosition(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var poss []Pos
	for i := 0; i < 10; i++ {
		pos, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		poss = append(poss, pos)
	}
	end := w.Pos()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Replaying from record k's position yields records k..9 exactly.
	for _, k := range []int{0, 3, 9} {
		got, _ := collect(t, dir, poss[k])
		if len(got) != 10-k {
			t.Fatalf("replay from %v: %d records, want %d", poss[k], len(got), 10-k)
		}
		if string(got[0]) != fmt.Sprintf("rec-%d", k) {
			t.Fatalf("replay from %v starts at %q", poss[k], got[0])
		}
	}
	// Replaying from the end position yields nothing.
	if got, _ := collect(t, dir, end); len(got) != 0 {
		t.Fatalf("replay from end produced %d records", len(got))
	}
}

func TestRotateAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("pre-%d-%s", i, strings.Repeat("z", 40)))); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Off != segHeaderSize {
		t.Fatalf("rotation position %v is not a segment start", cut)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) == 0 || seqs[0] != cut.Seg {
		t.Fatalf("truncation left segments %v, want first = %d", seqs, cut.Seg)
	}
	got, _ := collect(t, dir, cut)
	if len(got) != 5 || string(got[0]) != "post-0" {
		t.Fatalf("post-truncation replay: %d records, first %q", len(got), got[0])
	}
	// Replaying from a truncated-away position must error, not return a
	// partial stream.
	if err := Replay(dir, Pos{Seg: 1, Off: segHeaderSize}, func(Pos, []byte) error { return nil }); err == nil {
		t.Fatal("replay from a truncated position succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncAndFsyncMode(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir, Pos{}); len(got) != 1 {
		t.Fatalf("got %d records", len(got))
	}
	// Double close is fine; appends after close are not.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestEmptyAndMissingDirs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh", "nested")
	if err := Replay(dir, Pos{}, func(Pos, []byte) error { return nil }); err != nil {
		t.Fatalf("replaying a missing dir: %v", err)
	}
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if p := w.Pos(); p.Seg != 1 || p.Off != segHeaderSize {
		t.Fatalf("fresh log position %v", p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromLiveLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var want [][]byte
	for i := 0; i < 60; i++ {
		payload := []byte(fmt.Sprintf("live-%03d-%s", i, strings.Repeat("y", i%11)))
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, payload)
	}
	// Full read from the beginning of the OPEN log, no budget.
	var got [][]byte
	next, err := w.ReadFrom(Pos{}, 0, func(p Pos, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if next != w.Pos() {
		t.Fatalf("next = %v, log end = %v", next, w.Pos())
	}
	// Tail: append more, read only the suffix from next.
	if _, err := w.Append([]byte("tail-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("tail-2")); err != nil {
		t.Fatal(err)
	}
	var tail [][]byte
	next2, err := w.ReadFrom(next, 0, func(p Pos, payload []byte) error {
		tail = append(tail, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || string(tail[0]) != "tail-1" || string(tail[1]) != "tail-2" {
		t.Fatalf("tail read = %q", tail)
	}
	// Reading from the end returns no records and the same position.
	n := 0
	next3, err := w.ReadFrom(next2, 0, func(Pos, []byte) error { n++; return nil })
	if err != nil || n != 0 || next3 != next2 {
		t.Fatalf("read-at-end: n=%d next=%v err=%v", n, next3, err)
	}
}

func TestReadFromBudgetResumes(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var want []string
	for i := 0; i < 40; i++ {
		payload := fmt.Sprintf("budget-%02d-%s", i, strings.Repeat("z", 50))
		if _, err := w.Append([]byte(payload)); err != nil {
			t.Fatal(err)
		}
		want = append(want, payload)
	}
	// Drain in small budgeted chunks; every chunk must deliver at least one
	// record and the concatenation must be the full log.
	var got []string
	pos := Pos{}
	for {
		before := len(got)
		next, err := w.ReadFrom(pos, 100, func(p Pos, payload []byte) error {
			got = append(got, string(payload))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == before {
			break
		}
		pos = next
	}
	if len(got) != len(want) {
		t.Fatalf("chunked read got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadFromTruncatedHistory(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	start := w.Pos()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadFrom(start, 0, func(Pos, []byte) error { return nil }); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("reading truncated history: err = %v, want ErrTruncatedHistory", err)
	}
	// Reading from the cut still works.
	n := 0
	if _, err := w.ReadFrom(cut, 0, func(Pos, []byte) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("read from cut: n=%d err=%v", n, err)
	}
}

func TestReadFromSeesDrainedAppends(t *testing.T) {
	// ReadFrom drains the group-commit queue first, so a record appended
	// (acknowledged) before the call is always delivered, even when the
	// reader races fresh writers.
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	seen := 0
	if _, err := w.ReadFrom(Pos{}, 0, func(Pos, []byte) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 100 {
		t.Fatalf("saw %d records, want all 100 acknowledged ones", seen)
	}
}

// TestOnCommitSpanHook checks the tracing hook fires beside OnCommit
// with a start time bracketing the reported write/sync work and the
// same batch statistics.
func TestOnCommitSpanHook(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var commits []CommitStats
	var spans []CommitStats
	var starts []bool
	w, err := Open(Options{
		Dir:      dir,
		OnCommit: func(st CommitStats) { mu.Lock(); commits = append(commits, st); mu.Unlock() },
		OnCommitSpan: func(start time.Time, st CommitStats) {
			mu.Lock()
			spans = append(spans, st)
			starts = append(starts, !start.IsZero() && time.Since(start) >= st.WriteDuration)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte("span-hook")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(spans) == 0 || len(spans) != len(commits) {
		t.Fatalf("span hook fired %d times, OnCommit %d", len(spans), len(commits))
	}
	var recs int
	for i, st := range spans {
		if st != commits[i] {
			t.Fatalf("span stats %+v != commit stats %+v", st, commits[i])
		}
		if !starts[i] {
			t.Fatalf("span %d start does not bracket its write duration", i)
		}
		recs += st.Records
	}
	if recs != 10 {
		t.Fatalf("span hooks covered %d records, want 10", recs)
	}
}
