package core

import (
	"testing"

	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/exact"
)

// TestEpsJoinUnbiased: the Lemma 7/8 estimator matches the exact
// epsilon-join (L-infinity) via the ball expansion of Section 6.3.
func TestEpsJoinUnbiased(t *testing.T) {
	const dom = 32
	const eps = 3
	a := datagen.MustPoints(datagen.Spec{N: 60, Dims: 2, Domain: dom, Seed: 41})
	b := datagen.MustPoints(datagen.Spec{N: 60, Dims: 2, Domain: dom, Seed: 42})
	want := float64(exact.EpsJoinCount(a, b, eps, exact.LInf))

	p := MustPlan(Config{Dims: 2, LogDomain: []int{5, 5}, Instances: 20000, Groups: 4, Seed: 43})
	pts := p.NewPointSketch()
	boxes := p.NewBoxSketch()
	if err := pts.InsertAll(a); err != nil {
		t.Fatal(err)
	}
	for _, q := range b {
		if err := boxes.Insert(geo.Ball(q, eps, dom)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := EstimatePointInBox(pts, boxes)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "epsjoin", est, want)
}

// TestEpsJoin1D and 3D: the reduction works in any dimensionality.
func TestEpsJoinOtherDims(t *testing.T) {
	for _, dims := range []int{1, 3} {
		const dom = 16
		const eps = 2
		a := datagen.MustPoints(datagen.Spec{N: 40, Dims: dims, Domain: dom, Seed: uint64(50 + dims)})
		b := datagen.MustPoints(datagen.Spec{N: 40, Dims: dims, Domain: dom, Seed: uint64(60 + dims)})
		want := float64(exact.EpsJoinCount(a, b, eps, exact.LInf))
		logDom := make([]int, dims)
		for i := range logDom {
			logDom[i] = 4
		}
		p := MustPlan(Config{Dims: dims, LogDomain: logDom, Instances: 20000, Groups: 4, Seed: uint64(70 + dims)})
		pts, boxes := p.NewPointSketch(), p.NewBoxSketch()
		if err := pts.InsertAll(a); err != nil {
			t.Fatal(err)
		}
		for _, q := range b {
			if err := boxes.Insert(geo.Ball(q, eps, dom)); err != nil {
				t.Fatal(err)
			}
		}
		est, err := EstimatePointInBox(pts, boxes)
		if err != nil {
			t.Fatal(err)
		}
		assertUnbiased(t, "epsjoin-dims", est, want)
	}
}

// TestContainmentUnbiased: the Appendix B.2 reduction estimates interval
// containment joins, shared endpoints included (closed containment).
func TestContainmentUnbiased(t *testing.T) {
	const dom = 16
	r := denseIntervals(81, 45, dom)
	s := denseIntervals(82, 45, dom)
	want := float64(exact.ContainmentCount(r, s))

	// The reduction doubles dimensionality: 1-d containment -> 2-d
	// point-in-box.
	p := MustPlan(Config{Dims: 2, LogDomain: []int{4, 4}, Instances: 25000, Groups: 4, Seed: 83})
	pts, boxes := p.NewPointSketch(), p.NewBoxSketch()
	for _, a := range r {
		if err := pts.Insert(ContainmentPoint(a)); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range s {
		if err := boxes.Insert(ContainmentBox(b)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := EstimatePointInBox(pts, boxes)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "containment", est, want)
}

func TestContainmentMappings(t *testing.T) {
	r := geo.Rect(1, 4, 2, 9)
	pt := ContainmentPoint(r)
	if len(pt) != 4 || pt[0] != 1 || pt[1] != 4 || pt[2] != 2 || pt[3] != 9 {
		t.Fatalf("ContainmentPoint = %v", pt)
	}
	box := ContainmentBox(r)
	if len(box) != 4 || box[0] != r[0] || box[1] != r[0] || box[2] != r[1] || box[3] != r[1] {
		t.Fatalf("ContainmentBox = %v", box)
	}
	// The reduction is exactly containment.
	inner := geo.Rect(2, 3, 2, 5)
	if !ContainmentBox(r).ContainsPoint(ContainmentPoint(inner)) {
		t.Fatal("contained rect not detected via reduction")
	}
	outer := geo.Rect(0, 3, 2, 5)
	if ContainmentBox(r).ContainsPoint(ContainmentPoint(outer)) {
		t.Fatal("non-contained rect detected via reduction")
	}
}

// TestPointBoxInsertDelete: deletes restore exact state.
func TestPointBoxInsertDelete(t *testing.T) {
	p := MustPlan(Config{Dims: 2, LogDomain: []int{5, 5}, Instances: 40, Groups: 4, Seed: 4})
	a, b := p.NewPointSketch(), p.NewPointSketch()
	pts := datagen.MustPoints(datagen.Spec{N: 30, Dims: 2, Domain: 32, Seed: 5})
	if err := a.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	extra := geo.Point{7, 9}
	if err := b.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(extra); err != nil {
		t.Fatal(err)
	}
	for i := range a.counters {
		if a.counters[i] != b.counters[i] {
			t.Fatal("point sketch delete not inverse")
		}
	}

	ba, bb := p.NewBoxSketch(), p.NewBoxSketch()
	boxes := datagen.MustRects(datagen.Spec{N: 20, Dims: 2, Domain: 32, Seed: 6})
	if err := ba.InsertAll(boxes); err != nil {
		t.Fatal(err)
	}
	if err := bb.InsertAll(boxes); err != nil {
		t.Fatal(err)
	}
	xbox := geo.Rect(1, 9, 2, 8)
	if err := bb.Insert(xbox); err != nil {
		t.Fatal(err)
	}
	if err := bb.Delete(xbox); err != nil {
		t.Fatal(err)
	}
	for i := range ba.counters {
		if ba.counters[i] != bb.counters[i] {
			t.Fatal("box sketch delete not inverse")
		}
	}
	if ba.Count() != bb.Count() {
		t.Fatal("box counts differ")
	}
	if a.Count() != b.Count() {
		t.Fatal("point counts differ")
	}
}

func TestPointBoxValidation(t *testing.T) {
	p := MustPlan(Config{Dims: 2, LogDomain: []int{4, 4}, Instances: 4, Groups: 2, Seed: 1})
	pts := p.NewPointSketch()
	if err := pts.Insert(geo.Point{99, 0}); err == nil {
		t.Error("out-of-domain point should fail")
	}
	if err := pts.Insert(geo.Point{1}); err == nil {
		t.Error("wrong dims should fail")
	}
	boxes := p.NewBoxSketch()
	if err := boxes.Insert(geo.Rect(0, 99, 0, 1)); err == nil {
		t.Error("out-of-domain box should fail")
	}
	q := MustPlan(Config{Dims: 2, LogDomain: []int{4, 4}, Instances: 4, Groups: 2, Seed: 2})
	if _, err := EstimatePointInBox(pts, q.NewBoxSketch()); err == nil {
		t.Error("cross-plan estimate should fail")
	}
}
