package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	spatial "repro"
	"repro/ingestclient"
	"repro/internal/datagen"
)

// BenchmarkStreamIngest measures per-record cost of the binary streaming
// ingest path end to end - frame encode, wire, WAL group commit, sketch
// apply, ack - on the same production-shaped synopsis as the in-process
// BenchmarkUpdateThroughput (2-d, 1024 instances). The acceptance gate
// for the wire protocol is staying within ~2x of the in-process number;
// 256-record batches amortize the framing and the commit.
func BenchmarkStreamIngest(b *testing.B) {
	srv, err := NewPersistentServer(PersistOptions{DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ht := httptest.NewServer(srv)
	defer ht.Close()
	mustDo(b, "POST", ht.URL+"/v1/estimators", mustJSON(b, createRequest{
		Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: 1 << 16, Seed: 1, Instances: 1024, Groups: 8},
	}), http.StatusCreated)

	rects := datagen.MustRects(datagen.Spec{N: 4096, Dims: 2, Domain: 1 << 16, Seed: 2})
	recs := make([]spatial.UpdateRecord, len(rects))
	for i, r := range rects {
		recs[i] = spatial.UpdateRecord{Op: spatial.OpInsert, Side: spatial.SideLeft, Rect: r}
	}

	c, err := ingestclient.Dial(ingestclient.Options{BaseURL: ht.URL, Estimator: "j", Session: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// Establish the connection before the clock starts.
	if err := c.Send(recs[:1]); err != nil {
		b.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}

	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; sent += batch {
		n := batch
		if rem := b.N - sent; rem < n {
			n = rem
		}
		at := sent % (len(recs) - batch)
		if err := c.Send(recs[at : at+n]); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(batch, "records/batch")
}
