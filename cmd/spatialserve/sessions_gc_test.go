package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	spatial "repro"
)

// Session-mark GC tests: expiry must never reopen a live session's dedup
// window - active and attached sessions are exempt - and every drop must
// be durable, so crash recovery converges on exactly the live server's
// mark state.

// encodeRecords encodes records into the wire/WAL concatenated form.
func encodeRecords(recs []spatial.UpdateRecord) (uint64, []byte) {
	var enc []byte
	for _, r := range recs {
		enc = r.AppendBinary(enc)
	}
	return uint64(len(recs)), enc
}

// ingestOnce applies one batch for (session, seq) and requires it to be
// freshly applied (not deduped).
func ingestOnce(t *testing.T, s *Server, session string, seq uint64, recs []spatial.UpdateRecord) {
	t.Helper()
	count, enc := encodeRecords(recs)
	applied, deduped, err := s.applyIngestBatch(context.Background(), "j", session, seq, count, enc)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || applied != len(recs) {
		t.Fatalf("batch (%s, %d): applied %d deduped %v, want fresh apply of %d", session, seq, applied, deduped, len(recs))
	}
}

// backdate rewinds a mark's idle clock.
func backdate(t *testing.T, s *Server, session string, age time.Duration) {
	t.Helper()
	ent := s.sessions.lockEntry(session, "j", false)
	defer ent.mu.Unlock()
	ent.last.Store(time.Now().Add(-age).UnixNano())
}

// TestSessionGCExpiresIdleDurably expires an idle session while an
// active one rides along, then crashes and recovers: the drop must be
// durable, the active session's dedup window must stay closed across
// both expiry and recovery, and the estimator contents must be
// untouched.
func TestSessionGCExpiresIdleDurably(t *testing.T) {
	n := startStreamNode(t)
	createStreamJoin(t, n.ht.URL)
	s := n.cur.Load()
	rng := rand.New(rand.NewSource(41))
	var history []spatial.UpdateRecord

	idleRecs := streamBatch(rng, 8, &history)
	liveRecs := streamBatch(rng, 8, &history)
	ingestOnce(t, s, "gc-idle", 1, idleRecs)
	ingestOnce(t, s, "gc-live", 1, liveRecs)
	ref := refJoin(t)
	applyRef(t, ref, idleRecs)
	applyRef(t, ref, liveRecs)

	// A checkpoint captures both marks; the expiry below lands in the WAL
	// suffix, so recovery exercises restore-then-drop.
	mustDo(t, "POST", n.ht.URL+"/admin/checkpoint", nil, http.StatusOK)

	backdate(t, s, "gc-idle", 2*time.Hour)
	if dropped := s.gcSessions(time.Now(), time.Hour, 0, 0); dropped != 1 {
		t.Fatalf("gc dropped %d marks, want 1", dropped)
	}
	if got := s.sessions.peek("gc-idle", "j"); got != 0 {
		t.Fatalf("expired mark still present at seq %d", got)
	}
	if got := s.sessions.peek("gc-live", "j"); got != 1 {
		t.Fatalf("active mark lost: seq %d, want 1", got)
	}
	// The active session's window stays closed: a retry is deduped, not
	// re-applied.
	count, enc := encodeRecords(liveRecs)
	if _, deduped, err := s.applyIngestBatch(context.Background(), "j", "gc-live", 1, count, enc); err != nil || !deduped {
		t.Fatalf("retry after gc: deduped=%v err=%v, want dedup", deduped, err)
	}
	mustMatchRef(t, n.ht.URL, ref, "after expiry")

	n.crash()
	n.boot()
	s = n.cur.Load()
	if got := s.sessions.peek("gc-idle", "j"); got != 0 {
		t.Fatalf("expired mark resurrected by recovery at seq %d", got)
	}
	if got := s.sessions.peek("gc-live", "j"); got != 1 {
		t.Fatalf("recovered active mark: seq %d, want 1", got)
	}
	if _, deduped, err := s.applyIngestBatch(context.Background(), "j", "gc-live", 1, count, enc); err != nil || !deduped {
		t.Fatalf("retry after recovery: deduped=%v err=%v, want dedup", deduped, err)
	}
	mustMatchRef(t, n.ht.URL, ref, "after recovery")
}

// TestSessionGCSkipsPinnedAndFresh proves the two exemptions: a mark
// with an attached stream never expires regardless of idleness, and a
// recently-touched mark never expires regardless of sweeps.
func TestSessionGCSkipsPinnedAndFresh(t *testing.T) {
	s := NewServer()
	ht := httptest.NewServer(s)
	defer ht.Close()
	createStreamJoin(t, ht.URL)
	rng := rand.New(rand.NewSource(42))
	var history []spatial.UpdateRecord
	ingestOnce(t, s, "gc-pin", 1, streamBatch(rng, 4, &history))
	ingestOnce(t, s, "gc-fresh", 1, streamBatch(rng, 4, &history))

	s.sessions.pin("gc-pin", "j")
	backdate(t, s, "gc-pin", 48*time.Hour)
	if dropped := s.gcSessions(time.Now(), time.Hour, 0, 0); dropped != 0 {
		t.Fatalf("gc dropped %d marks; pinned and fresh marks must survive", dropped)
	}
	if got := s.sessions.peek("gc-pin", "j"); got != 1 {
		t.Fatalf("pinned mark expired (seq %d)", got)
	}

	s.sessions.unpin("gc-pin", "j")
	// The seq assertion above peeked the mark, which counts as activity;
	// rewind the idle clock again before the second sweep.
	backdate(t, s, "gc-pin", 48*time.Hour)
	if dropped := s.gcSessions(time.Now(), time.Hour, 0, 0); dropped != 1 {
		t.Fatalf("gc after unpin dropped %d marks, want 1", dropped)
	}
	if got := s.sessions.peek("gc-fresh", "j"); got != 1 {
		t.Fatalf("fresh mark expired (seq %d)", got)
	}
}

// TestSessionGCLRUPressure evicts the least-recently-touched marks when
// the table exceeds the high-water mark, draining to the low-water mark
// oldest-first.
func TestSessionGCLRUPressure(t *testing.T) {
	s := NewServer()
	ht := httptest.NewServer(s)
	defer ht.Close()
	createStreamJoin(t, ht.URL)
	rng := rand.New(rand.NewSource(43))
	var history []spatial.UpdateRecord
	sessions := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"}
	for i, sess := range sessions {
		ingestOnce(t, s, sess, 1, streamBatch(rng, 2, &history))
		backdate(t, s, sess, time.Duration(len(sessions)-i)*time.Minute)
	}
	// TTL disabled (0): only the pressure rule fires. 10 entries > high
	// water 8, drain to 5, oldest first.
	if dropped := s.gcSessions(time.Now(), 0, 8, 5); dropped != 5 {
		t.Fatalf("pressure eviction dropped %d marks, want 5", dropped)
	}
	for i, sess := range sessions {
		got := s.sessions.peek(sess, "j")
		if i < 5 && got != 0 {
			t.Errorf("old mark %s survived pressure eviction (seq %d)", sess, got)
		}
		if i >= 5 && got != 1 {
			t.Errorf("recent mark %s evicted (seq %d)", sess, got)
		}
	}
}

// TestAdminSessionsEndpoints exercises GET /admin/sessions (listing,
// filters) and DELETE /admin/sessions (drop one session's marks,
// durable across crash recovery).
func TestAdminSessionsEndpoints(t *testing.T) {
	n := startStreamNode(t)
	createStreamJoin(t, n.ht.URL)
	s := n.cur.Load()
	rng := rand.New(rand.NewSource(44))
	var history []spatial.UpdateRecord
	ingestOnce(t, s, "adm-a", 1, streamBatch(rng, 4, &history))
	ingestOnce(t, s, "adm-b", 2, streamBatch(rng, 4, &history))

	var list sessionListResponse
	if err := json.Unmarshal(mustDo(t, "GET", n.ht.URL+"/admin/sessions", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Sessions) != 2 || list.Cap != maxSessionEntries {
		t.Fatalf("listing = count %d, %d rows, cap %d; want 2, 2, %d", list.Count, len(list.Sessions), list.Cap, maxSessionEntries)
	}
	if list.Sessions[0].Session != "adm-a" || list.Sessions[0].Seq != 1 || list.Sessions[0].Attached {
		t.Fatalf("first row %+v, want adm-a at seq 1, unattached", list.Sessions[0])
	}

	if err := json.Unmarshal(mustDo(t, "GET", n.ht.URL+"/admin/sessions?session=adm-b", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].Session != "adm-b" || list.Sessions[0].Seq != 2 {
		t.Fatalf("filtered listing %+v, want just adm-b at seq 2", list.Sessions)
	}

	mustDo(t, "DELETE", n.ht.URL+"/admin/sessions", nil, http.StatusBadRequest)
	var res map[string]int
	if err := json.Unmarshal(mustDo(t, "DELETE", n.ht.URL+"/admin/sessions?session=adm-a", nil, http.StatusOK), &res); err != nil {
		t.Fatal(err)
	}
	if res["dropped"] != 1 {
		t.Fatalf("delete dropped %d marks, want 1", res["dropped"])
	}
	if got := s.sessions.peek("adm-a", "j"); got != 0 {
		t.Fatalf("dropped mark still present at seq %d", got)
	}

	n.crash()
	n.boot()
	s = n.cur.Load()
	if got := s.sessions.peek("adm-a", "j"); got != 0 {
		t.Fatalf("admin-dropped mark resurrected by recovery at seq %d", got)
	}
	if got := s.sessions.peek("adm-b", "j"); got != 2 {
		t.Fatalf("untouched mark lost by recovery: seq %d, want 2", got)
	}
}

// TestSessionGCStartStop covers the background loop lifecycle: starting
// with a TTL, double Close, and the disabled (ttl=0) case.
func TestSessionGCStartStop(t *testing.T) {
	s := NewServer()
	s.StartSessionGC(0)
	if s.gcStop != nil {
		t.Fatal("ttl=0 must not start a GC loop")
	}
	s.StartSessionGC(time.Hour)
	if s.gcStop == nil {
		t.Fatal("GC loop not started")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
