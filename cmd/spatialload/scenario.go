package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/ingestclient"
	"repro/internal/cluster"
)

// Scenario orchestration: bring up the cluster, run each phase's worker
// fleet, drive the control-plane events (partition moves, the
// SIGKILL+promote failover), quiesce, and hand the acked logs to the
// oracle.

// Phase is one scripted scenario segment.
type Phase struct {
	// Name labels the phase in the report ("steady", "ramp", ...).
	Name string
	// Duration is the workers-active window.
	Duration time.Duration
	// Ramp staggers worker starts across the first 60% of the phase.
	Ramp bool
	// Rebalance is how many partition moves to perform, spread across
	// the phase, while traffic flows.
	Rebalance int
	// Failover SIGKILLs one node mid-phase and promotes a WAL-shipped
	// replica into its identity.
	Failover bool
}

// parseScenario turns "steady:5s,rebalance:10s,failover:15s" into
// phases. Known names: steady, ramp, rebalance (one move per 2s,
// minimum 1), failover.
func parseScenario(s string) ([]Phase, error) {
	var out []Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ds, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("phase %q is not name:duration", part)
		}
		d, err := time.ParseDuration(ds)
		if err != nil {
			return nil, fmt.Errorf("phase %q: %w", part, err)
		}
		ph := Phase{Name: name, Duration: d}
		switch name {
		case "steady":
		case "ramp":
			ph.Ramp = true
		case "rebalance":
			ph.Rebalance = int(d / (2 * time.Second))
			if ph.Rebalance < 1 {
				ph.Rebalance = 1
			}
		case "failover":
			ph.Failover = true
		default:
			return nil, fmt.Errorf("unknown phase %q (want steady|ramp|rebalance|failover)", name)
		}
		out = append(out, ph)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty scenario")
	}
	return out, nil
}

// runner is one load run's shared state.
type runner struct {
	cfg     Config
	cl      *cluster.ProcCluster
	targets []target
	hc      *http.Client

	// gate is the write gate: writers hold it shared per op; the
	// failover cut-over holds it exclusively so the replica can reach
	// the victim's exact WAL frontier before the SIGKILL.
	gate sync.RWMutex

	mu     sync.Mutex
	nodes  []string // current base URLs (failover swaps the victim's)
	acked  []refOp  // cumulative acked reference log
	fatals []error  // unresolvable worker outcomes (poison the oracle)
	phases []*phaseStats
}

// node returns a current node base URL by rotating index.
func (r *runner) node(i int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[i%len(r.nodes)]
}

// nodeList snapshots the current node URLs.
func (r *runner) nodeList() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.nodes...)
}

// logf writes one progress line when a log sink is configured.
func (r *runner) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, "spatialload: "+format+"\n", args...)
	}
}

// fatalf records an unresolvable worker outcome; the run fails at the
// next quiesce rather than asserting a doomed byte-comparison.
func (r *runner) fatalf(format string, args ...any) {
	r.mu.Lock()
	r.fatals = append(r.fatals, fmt.Errorf(format, args...))
	r.mu.Unlock()
}

// httpJSON issues a request with a JSON body and decodes the response,
// requiring the given status.
func (r *runner) httpJSON(method, url string, body any, wantStatus int, out any) error {
	var rd io.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(enc)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// createTargets registers the tenants and creates the four estimator
// kinds per tenant. Configs mirror newRef exactly - the oracle depends
// on it.
func (r *runner) createTargets() error {
	base := r.node(0)
	kinds := []struct {
		name, kind string
		cfg        map[string]any
	}{
		{"j", "join", map[string]any{"dims": 2, "domainSize": r.cfg.Dom, "seed": 1, "instances": 64, "groups": 4}},
		{"r", "range", map[string]any{"dims": 1, "domainSize": r.cfg.Dom, "seed": 2, "instances": 64, "groups": 4}},
		{"e", "epsjoin", map[string]any{"dims": 2, "domainSize": r.cfg.Dom, "eps": 8, "seed": 3, "instances": 64, "groups": 4}},
		{"c", "containment", map[string]any{"dims": 2, "domainSize": r.cfg.Dom, "seed": 4, "instances": 64, "groups": 4}},
	}
	tenants := append([]string{""}, r.cfg.Tenants...)
	for _, tenant := range tenants {
		createURL := base + "/v1/estimators"
		if tenant != "" {
			if err := r.httpJSON("PUT", base+"/v1/tenants/"+tenant, map[string]any{}, http.StatusOK, nil); err != nil {
				return err
			}
			createURL = base + "/v1/tenants/" + tenant + "/estimators"
		}
		for _, k := range kinds {
			req := map[string]any{"name": k.name, "kind": k.kind, "config": k.cfg}
			if err := r.httpJSON("POST", createURL, req, http.StatusCreated, nil); err != nil {
				return err
			}
			r.targets = append(r.targets, target{tenant: tenant, name: k.name, kind: k.kind})
		}
	}
	return nil
}

// ringMap fetches the partition map as seen by one node.
func (r *runner) ringMap(node string) (*cluster.Map, error) {
	var rr struct {
		Map *cluster.Map `json:"map"`
	}
	if err := r.httpJSON("GET", node+"/admin/ring", nil, http.StatusOK, &rr); err != nil {
		return nil, err
	}
	if rr.Map == nil {
		return nil, fmt.Errorf("node %s reports no partition map", node)
	}
	return rr.Map, nil
}

// rebalanceOnce moves one partition of one target to a node that does
// not currently own it, via any node's /admin/rebalance, and requires
// the move to be acknowledged.
func (r *runner) rebalanceOnce(n int) error {
	tg := r.targets[n%len(r.targets)]
	part := n % r.cfg.Partitions
	m, err := r.ringMap(r.node(0))
	if err != nil {
		return err
	}
	shard := cluster.ShardName(tg.qualified(), part)
	owner, ok := m.Owner(shard)
	if !ok {
		return fmt.Errorf("no owner for %q", shard)
	}
	var targetID string
	for _, nd := range m.Nodes {
		if nd.ID != owner.ID {
			targetID = nd.ID
			break
		}
	}
	var res struct {
		Moved bool `json:"moved"`
	}
	req := map[string]any{"name": tg.qualified(), "partition": part, "target": targetID}
	if err := r.httpJSON("POST", r.node(n)+"/admin/rebalance", req, http.StatusOK, &res); err != nil {
		return err
	}
	if !res.Moved {
		return fmt.Errorf("rebalance of %q to %s reported moved=false", shard, targetID)
	}
	r.logf("rebalance: moved %s to %s under load", shard, targetID)
	return nil
}

// walPos fetches a node's WAL frontier.
func (r *runner) walPos(node string) (string, error) {
	var rr struct {
		WalPos  string `json:"walPos"`
		Replica *struct {
			Pos       string `json:"pos"`
			LastError string `json:"lastError"`
		} `json:"replica"`
	}
	if err := r.httpJSON("GET", node+"/admin/ring", nil, http.StatusOK, &rr); err != nil {
		return "", err
	}
	return rr.WalPos, nil
}

// replicaPos fetches a replica's applied position.
func (r *runner) replicaPos(node string) (string, error) {
	var rr struct {
		Replica *struct {
			Pos       string `json:"pos"`
			LastError string `json:"lastError"`
		} `json:"replica"`
	}
	if err := r.httpJSON("GET", node+"/admin/ring", nil, http.StatusOK, &rr); err != nil {
		return "", err
	}
	if rr.Replica == nil {
		return "", fmt.Errorf("node %s reports no replica status", node)
	}
	return rr.Replica.Pos, nil
}

// failover replaces the last node with a WAL-shipped replica under
// load: launch the replica against the live victim, gate writes, drain
// streams, wait for the replica to reach the victim's exact WAL
// frontier, SIGKILL the victim, promote the replica, push a bumped
// partition map with the victim's identity re-pointed at the replica,
// and reopen the gate. Acked writes never span the cut (the gate), so
// the oracle's byte-exactness survives a real process kill.
func (r *runner) failover(streams []*streamWriter) error {
	victim := len(r.cl.IDs) - 1
	vID, vURL := r.cl.IDs[victim], r.cl.URLs[victim]
	ports, err := cluster.ReservePorts(1)
	if err != nil {
		return err
	}
	args := []string{
		"-addr=" + ports[0],
		"-data-dir=" + filepath.Join(r.cfg.DataRoot, "node-"+vID+"-replica"),
		"-node-id=" + vID,
		"-peers=" + r.cl.PeersFlag(),
		"-partitions=" + fmt.Sprint(r.cfg.Partitions),
		"-checkpoint-interval=0",
		"-follow=" + vURL,
		"-replica-poll=50ms",
	}
	if r.cfg.TraceDump != "" {
		args = append(args, "-trace-sample=-1", "-slow-op-threshold=25ms")
	}
	proc, err := cluster.Launch(cluster.LaunchOptions{
		Binary: r.cfg.Binary, Args: args, Stderr: r.cfg.Stderr,
	})
	if err != nil {
		return fmt.Errorf("launching replica of %s: %w", vID, err)
	}
	if err := cluster.WaitHealthy(proc.URL, 0); err != nil {
		proc.Kill()
		return err
	}
	r.logf("failover: replica of %s up at %s, cutting over", vID, proc.URL)

	// The cut: no writer holds the gate, so the victim's WAL frontier is
	// final once the streams are drained.
	r.gate.Lock()
	defer r.gate.Unlock()
	for _, sw := range streams {
		if err := sw.client.Flush(); err != nil {
			proc.Kill()
			return fmt.Errorf("draining stream before cut-over: %w", err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		vpos, err := r.walPos(vURL)
		if err != nil {
			proc.Kill()
			return fmt.Errorf("victim WAL position: %w", err)
		}
		rpos, err := r.replicaPos(proc.URL)
		if err != nil {
			proc.Kill()
			return fmt.Errorf("replica position: %w", err)
		}
		if vpos == rpos {
			break
		}
		if time.Now().After(deadline) {
			proc.Kill()
			return fmt.Errorf("replica never reached the victim's frontier (%s vs %s)", rpos, vpos)
		}
		time.Sleep(20 * time.Millisecond)
	}

	r.cl.KillNode(victim)
	if err := r.httpJSON("POST", proc.URL+"/admin/promote", nil, http.StatusOK, nil); err != nil {
		proc.Kill()
		return fmt.Errorf("promoting replica: %w", err)
	}
	m, err := r.ringMap(r.node(0))
	if err != nil {
		proc.Kill()
		return err
	}
	m.Version++
	for i := range m.Nodes {
		if m.Nodes[i].ID == vID {
			m.Nodes[i].URL = proc.URL
		}
	}
	r.mu.Lock()
	r.nodes[victim] = proc.URL
	r.mu.Unlock()
	r.cl.Procs[victim] = proc
	r.cl.URLs[victim] = proc.URL
	for _, node := range r.nodeList() {
		if err := r.httpJSON("POST", node+"/admin/ring", m, http.StatusOK, nil); err != nil {
			return fmt.Errorf("adopting new map on %s: %w", node, err)
		}
	}
	r.logf("failover: %s SIGKILLed, replica promoted and mapped in (map v%d)", vID, m.Version)
	return nil
}

// dumpTraces fetches each node's retained-trace listing and writes it to
// <dir>/trace-<i>.json - the CI artifact that pairs a failed run's
// latency report with the server-side spans behind it. Best-effort: a
// dead node (failover leaves corpses) logs a line and is skipped.
func (r *runner) dumpTraces(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		r.logf("trace dump: %v", err)
		return
	}
	for i, node := range r.nodeList() {
		path := filepath.Join(dir, fmt.Sprintf("trace-%d.json", i))
		resp, err := r.hc.Get(node + "/admin/trace?limit=256")
		if err != nil {
			r.logf("trace dump: node %d (%s): %v", i, node, err)
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			r.logf("trace dump: node %d (%s): status %d, err %v", i, node, resp.StatusCode, err)
			continue
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			r.logf("trace dump: %v", err)
			continue
		}
		r.logf("trace dump: wrote %s (%d bytes)", path, len(data))
	}
	// The listing only carries summaries; the worst ops the report points
	// at deserve their full cross-node trees while the cluster can still
	// assemble them. Any live node can serve any trace.
	r.mu.Lock()
	phases := r.phases
	r.mu.Unlock()
	for _, ps := range phases {
		for _, id := range ps.worstTraceIDs() {
			r.dumpTraceTree(dir, id)
		}
	}
}

// dumpTraceTree fetches one assembled trace tree from the first node
// that can serve it and writes <dir>/worst-<id>.json. Best-effort.
func (r *runner) dumpTraceTree(dir, id string) {
	for _, node := range r.nodeList() {
		resp, err := r.hc.Get(node + "/admin/trace/" + id)
		if err != nil {
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		path := filepath.Join(dir, "worst-"+id+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			r.logf("trace dump: %v", err)
			return
		}
		r.logf("trace dump: wrote %s (%d bytes)", path, len(data))
		return
	}
	r.logf("trace dump: worst-op trace %s not resolvable (evicted or nodes down)", id)
}

// runPhase runs one phase's worker fleet plus its control events, then
// quiesces: workers stopped, streams flushed, acked logs harvested.
func (r *runner) runPhase(runctx context.Context, ph Phase) error {
	ps := &phaseStats{name: ph.Name, hists: map[string]*hist{}}
	r.mu.Lock()
	r.phases = append(r.phases, ps)
	r.mu.Unlock()
	r.logf("phase %s: %v (update=%d stream=%d estimate=%d workers)",
		ph.Name, ph.Duration, r.cfg.UpdateWorkers, r.cfg.StreamWorkers, r.cfg.EstimateWorkers)

	phasectx, cancel := context.WithTimeout(runctx, ph.Duration)
	defer cancel()
	// Ops outlive the phase window: an ambiguous update retries into the
	// quiesce grace period instead of poisoning the acked log.
	opctx, opCancel := context.WithTimeout(runctx, ph.Duration+30*time.Second)
	defer opCancel()

	stagger := func(i, n int) time.Duration {
		if !ph.Ramp || n <= 1 {
			return 0
		}
		return time.Duration(i) * (ph.Duration * 6 / 10) / time.Duration(n)
	}

	var wg sync.WaitGroup
	start := time.Now()

	// Streaming writers: one session per worker, rotating join targets,
	// attached to non-victim nodes so a failover exercises routed fan-out
	// recovery rather than killing the session's own endpoint.
	joinTargets := make([]int, 0, len(r.targets))
	for i, tg := range r.targets {
		if tg.kind == "join" {
			joinTargets = append(joinTargets, i)
		}
	}
	streams := make([]*streamWriter, 0, r.cfg.StreamWorkers)
	attach := len(r.cl.IDs) - 1 // node count eligible for stream attach
	if attach < 1 {
		attach = 1
	}
	for i := 0; i < r.cfg.StreamWorkers; i++ {
		ti := joinTargets[i%len(joinTargets)]
		session := fmt.Sprintf("load-%s-w%d", ph.Name, i)
		client, err := ingestclient.Dial(ingestclient.Options{
			BaseURL:   r.node(i % attach),
			Estimator: r.targets[ti].qualified(),
			Session:   session,
		})
		if err != nil {
			return err
		}
		sw := &streamWriter{client: client, session: session, target: ti}
		streams = append(streams, sw)
		wg.Add(1)
		go func(i int, sw *streamWriter) {
			defer wg.Done()
			if d := stagger(i, r.cfg.StreamWorkers); d > 0 {
				select {
				case <-time.After(d):
				case <-phasectx.Done():
					return
				}
			}
			r.streamWorker(phasectx, i, ps, sw)
		}(i, sw)
	}

	for i := 0; i < r.cfg.UpdateWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d := stagger(i, r.cfg.UpdateWorkers); d > 0 {
				select {
				case <-time.After(d):
				case <-phasectx.Done():
					return
				}
			}
			acked := r.updateWorker(phasectx, opctx, i, ps)
			r.mu.Lock()
			r.acked = append(r.acked, acked...)
			r.mu.Unlock()
		}(i)
	}

	for i := 0; i < r.cfg.EstimateWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d := stagger(i, r.cfg.EstimateWorkers); d > 0 {
				select {
				case <-time.After(d):
				case <-phasectx.Done():
					return
				}
			}
			r.estimateWorker(phasectx, i, ps, ph.Failover)
		}(i)
	}

	// Control events, spread across the phase.
	ctrlErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		switch {
		case ph.Failover:
			select {
			case <-time.After(ph.Duration / 3):
				err = r.failover(streams)
			case <-phasectx.Done():
			}
		case ph.Rebalance > 0:
			step := ph.Duration / time.Duration(ph.Rebalance+1)
			for n := 0; n < ph.Rebalance; n++ {
				select {
				case <-time.After(step):
					if err = r.rebalanceOnce(n); err != nil {
						break
					}
				case <-phasectx.Done():
				}
				if err != nil || phasectx.Err() != nil {
					break
				}
			}
		}
		if err != nil {
			select {
			case ctrlErr <- err:
			default:
			}
		}
	}()

	wg.Wait()
	ps.dur = time.Since(start)
	for _, line := range ps.worstOps() {
		r.logf("%s", line)
	}
	select {
	case err := <-ctrlErr:
		return fmt.Errorf("phase %s: %w", ph.Name, err)
	default:
	}

	// Quiesce: drain and close the streams, then promote their full sent
	// history into the acked log - exactly-once ordered delivery means a
	// clean Flush proves all of it durable.
	for _, sw := range streams {
		if err := sw.client.Flush(); err != nil {
			return fmt.Errorf("phase %s: stream flush: %w", ph.Name, err)
		}
		sw.client.Close()
		r.mu.Lock()
		for _, rec := range sw.sent {
			r.acked = append(r.acked, refOp{target: sw.target, rec: rec})
		}
		r.mu.Unlock()
	}
	r.mu.Lock()
	fatals := r.fatals
	r.mu.Unlock()
	if len(fatals) > 0 {
		return fmt.Errorf("phase %s: %d unresolvable worker outcomes, first: %w", ph.Name, len(fatals), fatals[0])
	}
	if r.cfg.Oracle {
		if err := r.verify("after " + ph.Name); err != nil {
			return err
		}
	}
	return nil
}
