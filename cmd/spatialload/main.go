// Command spatialload is the closed-loop cluster load harness: it brings
// up a real multi-node spatialserve cluster (separate processes, real
// WALs, real sockets), drives it with a configurable mixed workload -
// JSON updates with Idempotency-Key retry safety, spatial-ingest/1
// streaming sessions, single and batched estimates across all four
// estimator kinds, multiple tenants, zipf hot-key skew - through a
// scripted scenario of phases (steady-state, ramp, rebalance-under-load,
// SIGKILL-failover with replica promote), and verifies the paper's
// exactness claim the whole way: at every quiesce point, the merged
// cluster snapshot of every estimator on every node must be
// byte-identical to an in-process loss-free replay of exactly the acked
// mutations (the TestChaosSoak oracle, scriptable).
//
// Latencies are recorded per operation class and per phase in HDR-style
// log buckets and reported as p50/p95/p99/max plus throughput, in the
// benchfmt JSON schema shared with cmd/benchjson - the repo's committed
// perf trajectory (BENCH_*.json) speaks one dialect.
//
// Usage:
//
//	go build -o /tmp/spatialserve ./cmd/spatialserve
//	spatialload -binary /tmp/spatialserve \
//	    -nodes 3 -partitions 4 \
//	    -scenario steady:10s,ramp:10s,rebalance:20s,failover:20s \
//	    -tenants acme \
//	    -update-workers 4 -stream-workers 2 -estimate-workers 4 \
//	    -out BENCH_load.json
//
// Exit status is non-zero if any phase fails or the oracle finds a
// single byte of divergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/cluster"
)

// Config parameterizes one load run. Exposed so the smoke test drives
// runLoad directly.
type Config struct {
	// Binary is the spatialserve executable to launch nodes from.
	Binary string
	// Nodes is the cluster size (3 exercises real fan-out).
	Nodes int
	// Partitions is the per-estimator partition count.
	Partitions int
	// DataRoot holds the per-node data directories.
	DataRoot string
	// Tenants lists extra tenants to load beyond the default namespace.
	Tenants []string
	// UpdateWorkers, StreamWorkers and EstimateWorkers size the fleet.
	UpdateWorkers, StreamWorkers, EstimateWorkers int
	// BatchSize is records per streaming-ingest batch.
	BatchSize int
	// ZipfS is the zipf skew parameter over targets (>1 enables hot
	// keys; 0 is uniform).
	ZipfS float64
	// Dom is the spatial domain size per dimension.
	Dom uint64
	// Seed makes the workload deterministic per worker.
	Seed int64
	// Oracle enables the byte-exactness verification at quiesce points.
	Oracle bool
	// TraceDump, when non-empty, is a directory that receives each node's
	// /admin/trace listing before teardown (CI failure artifacts). The
	// nodes are launched with random sampling disabled and a low slow
	// threshold, so the bounded ring holds the run's tail-latency and
	// errored traces rather than the last few seconds of everything -
	// that is what makes the report's worst_op trace IDs resolve.
	TraceDump string
	// Phases is the scripted scenario.
	Phases []Phase
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Stderr, when non-nil, receives the server processes' stderr.
	Stderr io.Writer
}

func main() {
	fs := flag.NewFlagSet("spatialload", flag.ExitOnError)
	binary := fs.String("binary", "", "path to the spatialserve binary (required)")
	nodes := fs.Int("nodes", 3, "cluster size")
	partitions := fs.Int("partitions", 4, "partitions per estimator")
	scenario := fs.String("scenario", "steady:10s,rebalance:10s", "comma-separated phase:duration list (steady|ramp|rebalance|failover)")
	tenants := fs.String("tenants", "acme", "comma-separated extra tenants (empty for default-only)")
	updateWorkers := fs.Int("update-workers", 4, "JSON update writer goroutines")
	streamWorkers := fs.Int("stream-workers", 2, "streaming-ingest sessions")
	estimateWorkers := fs.Int("estimate-workers", 4, "estimate reader goroutines")
	batch := fs.Int("batch", 32, "records per streaming batch")
	zipfS := fs.Float64("zipf", 1.2, "zipf skew over targets (<=1 disables)")
	dom := fs.Uint64("dom", 1<<12, "domain size per dimension")
	seed := fs.Int64("seed", 1, "workload seed")
	oracle := fs.Bool("oracle", true, "verify byte-exactness at quiesce points")
	traceDump := fs.String("trace-dump", "", "directory to write each node's /admin/trace listing into before teardown (empty disables)")
	out := fs.String("out", "-", "report destination ('-' for stdout)")
	fs.Parse(os.Args[1:])

	if *binary == "" {
		fmt.Fprintln(os.Stderr, "spatialload: -binary is required")
		os.Exit(2)
	}
	phases, err := parseScenario(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialload: %v\n", err)
		os.Exit(2)
	}
	dataRoot, err := os.MkdirTemp("", "spatialload-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialload: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dataRoot)

	var extraTenants []string
	for _, t := range strings.Split(*tenants, ",") {
		if t = strings.TrimSpace(t); t != "" {
			extraTenants = append(extraTenants, t)
		}
	}
	cfg := Config{
		Binary:          *binary,
		Nodes:           *nodes,
		Partitions:      *partitions,
		DataRoot:        dataRoot,
		Tenants:         extraTenants,
		UpdateWorkers:   *updateWorkers,
		StreamWorkers:   *streamWorkers,
		EstimateWorkers: *estimateWorkers,
		BatchSize:       *batch,
		ZipfS:           *zipfS,
		Dom:             *dom,
		Seed:            *seed,
		Oracle:          *oracle,
		TraceDump:       *traceDump,
		Phases:          phases,
		Log:             os.Stderr,
		Stderr:          os.Stderr,
	}
	doc, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialload: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialload: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := doc.Encode(w); err != nil {
		fmt.Fprintf(os.Stderr, "spatialload: %v\n", err)
		os.Exit(1)
	}
}

// runLoad executes one full load run: cluster up, targets created,
// phases executed (each ending in quiesce + optional oracle pass),
// report assembled. The cluster is torn down before return.
func runLoad(cfg Config) (*benchfmt.Document, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Dom == 0 {
		cfg.Dom = 1 << 12
	}
	extraArgs := []string{"-checkpoint-interval=2s"}
	if cfg.TraceDump != "" {
		// Only tail and errored traces enter the ring: retaining
		// everything (-trace-sample=1) would churn the 256-slot ring in
		// seconds under load, evicting the worst ops the report points
		// at before the dump runs.
		extraArgs = append(extraArgs, "-trace-sample=-1", "-slow-op-threshold=25ms")
	}
	cl, err := cluster.LaunchProcCluster(cluster.ProcClusterSpec{
		Binary:     cfg.Binary,
		Nodes:      cfg.Nodes,
		Partitions: cfg.Partitions,
		DataRoot:   cfg.DataRoot,
		Stderr:     cfg.Stderr,
		ExtraArgs:  extraArgs,
	})
	if err != nil {
		return nil, fmt.Errorf("launching %d-node cluster: %w", cfg.Nodes, err)
	}
	defer cl.Close()

	r := &runner{
		cfg:   cfg,
		cl:    cl,
		hc:    &http.Client{Timeout: 30 * time.Second},
		nodes: append([]string(nil), cl.URLs...),
	}
	if cfg.TraceDump != "" {
		// Runs before cl.Close (deferred later = runs earlier), and runs
		// on failure returns too - failed runs are when the dump matters.
		defer r.dumpTraces(cfg.TraceDump)
	}
	if err := r.createTargets(); err != nil {
		return nil, fmt.Errorf("creating estimators: %w", err)
	}
	r.logf("cluster up: %d nodes, %d partitions, %d targets", cfg.Nodes, cfg.Partitions, len(r.targets))

	runctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, ph := range cfg.Phases {
		if err := r.runPhase(runctx, ph); err != nil {
			return nil, err
		}
	}

	doc := benchfmt.NewDocument()
	doc.Context["harness"] = "spatialload"
	doc.Context["goos"] = runtime.GOOS
	doc.Context["goarch"] = runtime.GOARCH
	doc.Context["nodes"] = fmt.Sprint(cfg.Nodes)
	doc.Context["partitions"] = fmt.Sprint(cfg.Partitions)
	doc.Context["tenants"] = fmt.Sprint(1 + len(cfg.Tenants))
	doc.Context["targets"] = fmt.Sprint(len(r.targets))
	doc.Context["workers"] = fmt.Sprintf("update=%d stream=%d estimate=%d",
		cfg.UpdateWorkers, cfg.StreamWorkers, cfg.EstimateWorkers)
	doc.Context["zipf"] = fmt.Sprint(cfg.ZipfS)
	doc.Context["oracle"] = fmt.Sprint(cfg.Oracle)
	scenarioParts := make([]string, len(cfg.Phases))
	for i, ph := range cfg.Phases {
		scenarioParts[i] = ph.Name + ":" + ph.Duration.String()
	}
	doc.Context["scenario"] = strings.Join(scenarioParts, ",")
	r.mu.Lock()
	doc.Context["acked_ops"] = fmt.Sprint(len(r.acked))
	phases := r.phases
	r.mu.Unlock()
	for _, ps := range phases {
		ps.record(doc)
	}
	doc.Sort()
	return doc, nil
}
