package spatial

import (
	"fmt"

	"repro/geo"
	"repro/internal/core"
)

// EpsJoinConfig configures an epsilon-join estimator (Definition 2,
// Section 6.3, L-infinity metric).
type EpsJoinConfig struct {
	// Dims is the point dimensionality.
	Dims int
	// DomainSize is the per-dimension coordinate domain.
	DomainSize uint64
	// Eps is the distance threshold: pairs (a, b) with
	// dist_inf(a, b) <= Eps are counted.
	Eps uint64
	// Sizing picks the number of atomic instances.
	Sizing Sizing
	// MaxLevel caps the dyadic level (Section 6.5). Positive values are
	// explicit; 0 derives the cap from Eps (the balls have side 2*Eps+1);
	// MaxLevelUncapped disables the cap.
	MaxLevel int
	// Seed makes the synopsis deterministic.
	Seed uint64
}

// EpsJoinEstimator estimates |A join_eps B| for two streamed point sets
// under the L-infinity metric, via the paper's reduction: points of B are
// expanded into hyper-cubes of side 2*Eps (clipped to the domain) and the
// two-sketch point-in-box estimator of Lemma 8 is applied. No endpoint
// transformation is involved: closed containment is exactly
// dist <= Eps.
//
// An EpsJoinEstimator is not safe for concurrent use.
type EpsJoinEstimator struct {
	cfg   EpsJoinConfig
	plan  *core.Plan
	left  *core.PointSketch // A
	right *core.BoxSketch   // B, expanded
}

// NewEpsJoinEstimator validates the configuration and allocates the
// synopsis.
func NewEpsJoinEstimator(cfg EpsJoinConfig) (*EpsJoinEstimator, error) {
	if cfg.Dims < 1 || cfg.Dims > core.MaxDims {
		return nil, fmt.Errorf("spatial: dims %d outside [1, %d]", cfg.Dims, core.MaxDims)
	}
	if cfg.DomainSize < 2 {
		return nil, fmt.Errorf("spatial: domain size must be >= 2, got %d", cfg.DomainSize)
	}
	if cfg.Eps >= cfg.DomainSize {
		return nil, fmt.Errorf("spatial: eps %d must be smaller than the domain %d", cfg.Eps, cfg.DomainSize)
	}
	instances, groups, err := cfg.Sizing.resolve(cfg.Dims)
	if err != nil {
		return nil, err
	}
	h := log2ceil(cfg.DomainSize)
	logDom := make([]int, cfg.Dims)
	for i := range logDom {
		logDom[i] = maxInt(h, 1)
	}
	// The variance-optimal cap tracks the ball side length (2*Eps+1), not
	// the domain: point covers above it only add colliding top-level
	// nodes.
	ml := cfg.MaxLevel
	if ml == 0 {
		ml = maxInt(1, log2ceil(2*cfg.Eps+1)-2)
	}
	var maxLevel []int
	if ml > 0 {
		maxLevel = make([]int, cfg.Dims)
		for i := range maxLevel {
			maxLevel[i] = ml
		}
	}
	plan, err := core.NewPlan(core.Config{
		Dims: cfg.Dims, LogDomain: logDom, MaxLevel: maxLevel,
		Instances: instances, Groups: groups, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &EpsJoinEstimator{
		cfg: cfg, plan: plan,
		left: plan.NewPointSketch(), right: plan.NewBoxSketch(),
	}, nil
}

// Config returns the estimator's configuration.
func (e *EpsJoinEstimator) Config() EpsJoinConfig { return e.cfg }

func (e *EpsJoinEstimator) check(p geo.Point) error {
	if len(p) != e.cfg.Dims {
		return fmt.Errorf("spatial: point dimensionality %d, want %d", len(p), e.cfg.Dims)
	}
	for i, x := range p {
		if x >= e.cfg.DomainSize {
			return fmt.Errorf("spatial: coordinate %d outside domain %d in dim %d", x, e.cfg.DomainSize, i)
		}
	}
	return nil
}

// InsertLeft adds a point to the left set A.
func (e *EpsJoinEstimator) InsertLeft(p geo.Point) error {
	if err := e.check(p); err != nil {
		return err
	}
	return e.left.Insert(p)
}

// DeleteLeft removes a previously inserted left point.
func (e *EpsJoinEstimator) DeleteLeft(p geo.Point) error {
	if err := e.check(p); err != nil {
		return err
	}
	return e.left.Delete(p)
}

// InsertRight adds a point to the right set B (expanded to its eps-ball).
func (e *EpsJoinEstimator) InsertRight(p geo.Point) error {
	if err := e.check(p); err != nil {
		return err
	}
	return e.right.Insert(geo.Ball(p, e.cfg.Eps, e.cfg.DomainSize))
}

// DeleteRight removes a previously inserted right point.
func (e *EpsJoinEstimator) DeleteRight(p geo.Point) error {
	if err := e.check(p); err != nil {
		return err
	}
	return e.right.Delete(geo.Ball(p, e.cfg.Eps, e.cfg.DomainSize))
}

// InsertLeftBulk bulk-loads left points (parallelized internally).
func (e *EpsJoinEstimator) InsertLeftBulk(pts []geo.Point) error {
	for _, p := range pts {
		if err := e.check(p); err != nil {
			return err
		}
	}
	return e.left.InsertAll(pts)
}

// InsertRightBulk bulk-loads right points, expanding each to its eps-ball.
func (e *EpsJoinEstimator) InsertRightBulk(pts []geo.Point) error {
	balls := make([]geo.HyperRect, len(pts))
	for i, p := range pts {
		if err := e.check(p); err != nil {
			return err
		}
		balls[i] = geo.Ball(p, e.cfg.Eps, e.cfg.DomainSize)
	}
	return e.right.InsertAll(balls)
}

// Merge folds the synopses of other into e (exact, by sketch linearity).
// Both estimators must have been built with the same configuration. other
// is not modified.
func (e *EpsJoinEstimator) Merge(other *EpsJoinEstimator) error {
	// Eps shapes the right-side balls but is not part of the core plan, so
	// the sketch-level merge cannot catch a mismatch.
	if other.cfg.Eps != e.cfg.Eps {
		return fmt.Errorf("spatial: cannot merge eps=%d estimator into eps=%d estimator", other.cfg.Eps, e.cfg.Eps)
	}
	if err := e.left.Merge(other.left); err != nil {
		return err
	}
	return e.right.Merge(other.right)
}

// LeftCount returns |A|.
func (e *EpsJoinEstimator) LeftCount() int64 { return e.left.Count() }

// RightCount returns |B|.
func (e *EpsJoinEstimator) RightCount() int64 { return e.right.Count() }

// Cardinality estimates |A join_eps B|.
func (e *EpsJoinEstimator) Cardinality() (Estimate, error) {
	est, err := core.EstimatePointInBox(e.left, e.right)
	return fromCore(est), err
}

// Selectivity estimates |A join_eps B| / (|A| * |B|).
func (e *EpsJoinEstimator) Selectivity() (float64, error) {
	nl, nr := e.LeftCount(), e.RightCount()
	if nl <= 0 || nr <= 0 {
		return 0, fmt.Errorf("spatial: selectivity undefined for empty inputs (%d, %d)", nl, nr)
	}
	est, err := e.Cardinality()
	if err != nil {
		return 0, err
	}
	return est.Clamped() / (float64(nl) * float64(nr)), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
