package experiments

import (
	"bytes"
	"math"
	"strconv"
	"testing"
)

// tinyOpt keeps experiment smoke tests fast.
func tinyOpt() Options {
	return Options{Scale: 0.004, Seed: 99, Runs: 1}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTablePrinting(t *testing.T) {
	tab := Table{
		Name: "x", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if out == "" || !bytes.Contains(buf.Bytes(), []byte("333")) {
		t.Fatalf("bad table output: %q", out)
	}
}

func TestRelErr(t *testing.T) {
	if relErr(90, 100) != 0.1 {
		t.Fatal("relErr(90,100)")
	}
	if relErr(0, 0) != 0 {
		t.Fatal("relErr(0,0)")
	}
	if got := relErr(5, 0); got <= 1e18 {
		t.Fatal("relErr(x,0) should be +inf")
	}
}

func TestLevelFitters(t *testing.T) {
	// GH level 4 uses 4^5 = 1024 words.
	if got := ghLevelForWords(1024); got != 4 {
		t.Fatalf("ghLevelForWords(1024) = %d", got)
	}
	if got := ghLevelForWords(1023); got != 3 {
		t.Fatalf("ghLevelForWords(1023) = %d", got)
	}
	// EH level 4 uses 9*256 - 96 + 1 = 2209 words.
	if got := ehLevelForWords(2209); got != 4 {
		t.Fatalf("ehLevelForWords(2209) = %d", got)
	}
	if got := ehLevelForWords(2208); got != 3 {
		t.Fatalf("ehLevelForWords(2208) = %d", got)
	}
}

func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure regeneration")
	}
	tab, err := Fig5(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []int{2, 3, 4} {
			if v := parseF(t, row[col]); v < 0 {
				t.Fatalf("negative error in %v", row)
			}
		}
	}
}

// TestFig7And8 runs the shared guarantee sweep once at a scale large
// enough to sit in the collision-dominated self-join regime, then checks
// both figures' claims: the measured error honors the guaranteed bound
// (Fig 7) and the required space flattens out (Fig 8).
func TestFig7And8(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second guarantee sweep")
	}
	points, err := fig78Sweep(Options{Scale: 0.02, Seed: 99, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("sweep points = %d", len(points))
	}
	for _, p := range points {
		if p.trueErr > 0.3 {
			t.Fatalf("guaranteed error bound violated at n=%d: %g", p.n, p.trueErr)
		}
	}
	// The plateau: the last three points' space within 1.8x of each other.
	tail := points[len(points)-3:]
	lo, hi := tail[0].spaceWords, tail[0].spaceWords
	for _, p := range tail {
		if p.spaceWords < lo {
			lo = p.spaceWords
		}
		if p.spaceWords > hi {
			hi = p.spaceWords
		}
	}
	if float64(hi)/float64(lo) > 1.8 {
		t.Fatalf("space plateau not flat: [%d, %d]", lo, hi)
	}
}

func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure regeneration")
	}
	tab, err := Fig9(Options{Scale: 0.01, Seed: 99, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("fig9 rows = %d", len(tab.Rows))
	}
	// SKETCH's best error across the two largest budgets should beat its
	// smallest-budget error (the predictable-decline property; individual
	// points are randomized).
	first := parseF(t, tab.Rows[0][1])
	lastTwo := math.Min(parseF(t, tab.Rows[4][1]), parseF(t, tab.Rows[5][1]))
	if lastTwo > first {
		t.Fatalf("sketch error should shrink with space: %g -> %g", first, lastTwo)
	}
}

func TestByNameAndAll(t *testing.T) {
	if _, err := ByName("nope", tinyOpt()); err == nil {
		t.Fatal("unknown name should fail")
	}
	names := All()
	if len(names) != 13 {
		t.Fatalf("All() = %v", names)
	}
	// Spot-run two cheap ones through the dispatcher.
	for _, name := range []string{"rangequery", "dim3"} {
		tab, err := ByName(name, tinyOpt())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
	}
}

func TestAutoMaxLevel(t *testing.T) {
	if autoMaxLevel(0.1) != 1 {
		t.Fatal("tiny lengths should floor at 1")
	}
	if autoMaxLevel(128) <= 5 {
		t.Fatal("bigger lengths need more levels")
	}
}
