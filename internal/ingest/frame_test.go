package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	spatial "repro"
	"repro/geo"
)

func readOne(t *testing.T, raw []byte) (FrameType, []byte) {
	t.Helper()
	ft, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return ft, body
}

func TestHelloRoundTrip(t *testing.T) {
	raw := AppendHello(nil, Hello{Session: "writer-7", Estimator: "acme/objects"})
	ft, body := readOne(t, raw)
	if ft != FrameHello {
		t.Fatalf("frame type = %d, want hello", ft)
	}
	h, err := DecodeHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if h.Session != "writer-7" || h.Estimator != "acme/objects" {
		t.Fatalf("round trip = %+v", h)
	}
}

func TestHelloBounds(t *testing.T) {
	long := make([]byte, MaxSessionIDBytes+1)
	for i := range long {
		long[i] = 'a'
	}
	cases := []Hello{
		{Session: "", Estimator: "x"},
		{Session: string(long), Estimator: "x"},
		{Session: "s", Estimator: ""},
	}
	for _, h := range cases {
		raw := AppendHello(nil, h)
		_, body := readOne(t, raw)
		if _, err := DecodeHello(body); err == nil {
			t.Errorf("DecodeHello(%+v) accepted", h)
		}
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	raw := AppendHelloAck(nil, HelloAck{Watermark: 1 << 40, WindowBatches: 64})
	ft, body := readOne(t, raw)
	if ft != FrameHelloAck {
		t.Fatalf("frame type = %d, want hello-ack", ft)
	}
	a, err := DecodeHelloAck(body)
	if err != nil {
		t.Fatal(err)
	}
	if a.Watermark != 1<<40 || a.WindowBatches != 64 {
		t.Fatalf("round trip = %+v", a)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	recs := []spatial.UpdateRecord{
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Rect: geo.HyperRect{{Lo: 1, Hi: 5}, {Lo: 2, Hi: 9}}},
		{Op: spatial.OpDelete, Side: spatial.SideRight, Rect: geo.HyperRect{{Lo: 0, Hi: 3}, {Lo: 4, Hi: 7}}},
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Point: geo.Point{11, 22}},
	}
	var enc []byte
	for _, r := range recs {
		enc = r.AppendBinary(enc)
	}
	raw := AppendBatch(nil, 42, len(recs), enc)
	ft, body := readOne(t, raw)
	if ft != FrameBatch {
		t.Fatalf("frame type = %d, want batch", ft)
	}
	b, err := DecodeBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 42 || b.Count != uint64(len(recs)) {
		t.Fatalf("batch header = seq %d count %d", b.Seq, b.Count)
	}
	got, err := b.DecodeRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i].AppendBinary(nil)
		if !bytes.Equal(got[i].AppendBinary(nil), want) {
			t.Errorf("record %d round trip mismatch", i)
		}
	}
}

func TestBatchHostileCount(t *testing.T) {
	// A tiny body declaring a huge count must be rejected before any
	// per-record work sizes buffers from the header.
	body := binary.AppendUvarint(nil, 1)        // seq
	body = binary.AppendUvarint(body, 1<<40)    // count
	body = append(body, 0, 0, 2, 1, 2, 3, 4, 5) // a few bytes of "records"
	if _, err := DecodeBatch(body); err == nil {
		t.Fatal("hostile count accepted")
	}
}

func TestBatchSeqZeroReserved(t *testing.T) {
	body := binary.AppendUvarint(nil, 0)
	body = binary.AppendUvarint(body, 0)
	if _, err := DecodeBatch(body); err == nil {
		t.Fatal("seq 0 accepted")
	}
}

func TestAckErrorRoundTrip(t *testing.T) {
	ft, body := readOne(t, AppendAck(nil, 99))
	if ft != FrameAck {
		t.Fatalf("frame type = %d, want ack", ft)
	}
	if seq, err := DecodeAck(body); err != nil || seq != 99 {
		t.Fatalf("ack = %d, %v", seq, err)
	}
	ft, body = readOne(t, AppendError(nil, CodeOverloaded, "stream table full"))
	if ft != FrameError {
		t.Fatalf("frame type = %d, want error", ft)
	}
	se, err := DecodeError(body)
	if err != nil {
		t.Fatal(err)
	}
	if se.Code != CodeOverloaded || se.Msg != "stream table full" {
		t.Fatalf("error = %+v", se)
	}
	if !se.Code.Retryable() || CodeBadRequest.Retryable() {
		t.Fatal("retryable classification wrong")
	}
}

func TestReadFrameBoundsLength(t *testing.T) {
	raw := []byte{byte(FrameBatch)}
	raw = binary.AppendUvarint(raw, MaxFrameBytes+1)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream error = %v, want io.EOF", err)
	}
}

func TestMultipleFramesOneStream(t *testing.T) {
	raw := AppendHello(nil, Hello{Session: "s", Estimator: "e"})
	raw = AppendAck(raw, 1)
	raw = AppendAck(raw, 2)
	br := bufio.NewReader(bytes.NewReader(raw))
	want := []FrameType{FrameHello, FrameAck, FrameAck}
	for i, w := range want {
		ft, _, err := ReadFrame(br)
		if err != nil || ft != w {
			t.Fatalf("frame %d: type %d err %v, want %d", i, ft, err, w)
		}
	}
	if _, _, err := ReadFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

// FuzzIngestFrame throws arbitrary bytes at the full frame decode path:
// no panic, no unbounded allocation, and anything that decodes as a
// batch must re-encode to the identical frame (round-trip stability is
// what lets retried frames dedup byte-exactly).
func FuzzIngestFrame(f *testing.F) {
	rec := spatial.UpdateRecord{Op: spatial.OpInsert, Side: spatial.SideLeft,
		Rect: geo.HyperRect{{Lo: 1, Hi: 5}, {Lo: 2, Hi: 9}}}
	f.Add(AppendBatch(nil, 7, 1, rec.AppendBinary(nil)))
	f.Add(AppendHello(nil, Hello{Session: "s", Estimator: "e"}))
	f.Add(AppendHelloAck(nil, HelloAck{Watermark: 3, WindowBatches: 8}))
	f.Add(AppendAck(nil, 12))
	f.Add(AppendError(nil, CodeInternal, "boom"))
	f.Add([]byte{byte(FrameBatch), 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		ft, body, err := ReadFrame(br)
		if err != nil {
			return
		}
		switch ft {
		case FrameHello:
			if h, err := DecodeHello(body); err == nil {
				round := AppendHello(nil, h)
				if !bytes.Equal(round, AppendFrame(nil, FrameHello, body)) {
					t.Fatalf("hello round trip changed bytes")
				}
			}
		case FrameHelloAck:
			DecodeHelloAck(body)
		case FrameBatch:
			b, err := DecodeBatch(body)
			if err != nil {
				return
			}
			recs, err := b.DecodeRecords()
			if err != nil {
				return
			}
			var enc []byte
			for _, r := range recs {
				enc = r.AppendBinary(enc)
			}
			round := AppendBatch(nil, b.Seq, len(recs), enc)
			if !bytes.Equal(round, AppendFrame(nil, FrameBatch, body)) {
				t.Fatalf("batch round trip changed bytes")
			}
		case FrameAck:
			DecodeAck(body)
		case FrameError:
			DecodeError(body)
		}
	})
}
