package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	spatial "repro"
	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/wal"
)

// WAL-shipped replicas: read scaling and failover.
//
// A follower bootstraps from the leader's /admin/bootstrap - every
// estimator snapshot plus the WAL position they are exact up to, captured
// under the leader's exclusive cut gate (the same instant-consistent cut a
// checkpoint takes) - then tails /admin/wal, appending each shipped record
// to its OWN log before applying it. The follower's disk state is thereby
// a faithful mirror: its crash recovery is exactly PR4's checkpoint+replay
// path, and because sketches are linear, the replica's counters are
// bit-identical to the leader's at every applied position.
//
// While replicating, the node rejects external mutations (reads serve
// normally - that is the scale-out). Replication is asynchronous: on
// leader death the follower holds every update shipped before the crash;
// updates acknowledged by the leader but not yet shipped are lost unless
// the leader's data dir comes back. POST /admin/promote turns the
// follower into an ordinary read-write node (taps attached, tailing
// stopped); repointing clients - or, in cluster mode, broadcasting a
// partition map that binds the dead node's ID to the replica's URL - is
// the operator's half of failover. See docs/CLUSTER.md.

// replicaState is the follower-side replication machinery.
type replicaState struct {
	leader string
	client *cluster.Client
	poll   time.Duration

	mu      sync.Mutex
	pos     wal.Pos // applied through (exclusive)
	lastErr string  // sticky apply/fetch error, surfaced in /admin/ring
	ready   bool    // bootstrap finished; gates /readyz
	wedged  bool    // tail loop stopped on an unappliable record

	active  bool // false after promote
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// replicaStatus is the replication half of the /admin/ring document.
type replicaStatus struct {
	// Leader is the replicated node's base URL.
	Leader string `json:"leader"`
	// Active reports whether the node is still read-only and tailing.
	Active bool `json:"active"`
	// Pos is the WAL position applied through (the leader's coordinates).
	Pos string `json:"pos"`
	// LastError is the most recent fetch/apply error, empty when healthy.
	LastError string `json:"lastError,omitempty"`
}

// status snapshots the replication state.
func (rs *replicaState) status() *replicaStatus {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return &replicaStatus{Leader: rs.leader, Active: rs.active, Pos: rs.pos.String(), LastError: rs.lastErr}
}

// replicaReadOnly reports whether external mutations must be rejected.
func (s *Server) replicaReadOnly() bool {
	if s.replica == nil {
		return false
	}
	s.replica.mu.Lock()
	defer s.replica.mu.Unlock()
	return s.replica.active
}

// StartReplica turns the server into a read-only follower of leaderURL:
// it bootstraps the full registry from the leader's exact cut, then tails
// the leader's WAL every poll interval until promoted. Must be called
// before serving traffic.
func (s *Server) StartReplica(leaderURL string, poll time.Duration) error {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	rs := &replicaState{
		leader: strings.TrimRight(leaderURL, "/"),
		client: cluster.NewClient(time.Minute, 0),
		poll:   poll,
		active: true,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.replica = rs
	if err := s.bootstrapReplica(rs); err != nil {
		close(rs.done) // tail loop never starts; let stopReplica return
		return fmt.Errorf("bootstrapping from %s: %w", rs.leader, err)
	}
	rs.mu.Lock()
	rs.ready = true
	rs.mu.Unlock()
	go s.tailLeader(rs)
	return nil
}

// stopReplica halts the tail loop (idempotent).
func (s *Server) stopReplica() {
	rs := s.replica
	if rs == nil {
		return
	}
	rs.mu.Lock()
	if !rs.stopped {
		rs.stopped = true
		close(rs.stop)
	}
	rs.mu.Unlock()
	<-rs.done
}

// bootstrapReplica replaces the local registry with the leader's exact
// cut. Every installed estimator (and every removal of a stale local
// name) is logged locally first, so the follower's own crash recovery
// rebuilds the same state; taps stay detached - replication logs shipped
// payloads verbatim instead, keeping the local WAL a byte mirror.
func (s *Server) bootstrapReplica(rs *replicaState) error {
	resp, err := rs.client.Do(context.Background(), http.MethodGet, rs.leader+"/admin/bootstrap", nil, nil)
	if err != nil {
		return err
	}
	if resp.Status != http.StatusOK {
		return fmt.Errorf("bootstrap: status %d: %s", resp.Status, resp.Body)
	}
	pos, err := parseWalPos(resp.Header.Get(headerWalPos))
	if err != nil {
		return fmt.Errorf("bootstrap: bad %s header: %w", headerWalPos, err)
	}
	names, snaps, err := decodeBootstrap(resp.Body)
	if err != nil {
		return err
	}
	ests := make([]servable, len(names))
	for i := range names {
		if ests[i], err = restoreServable(snaps[i]); err != nil {
			return fmt.Errorf("bootstrap estimator %q: %w", names[i], err)
		}
	}
	gate := s.mutGate()
	if gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	incoming := make(map[string]bool, len(names))
	for _, n := range names {
		incoming[n] = true
	}
	for name, est := range s.ests {
		est.setTap(nil) // recovery attached taps; replication logs raw payloads
		if incoming[name] {
			continue
		}
		if s.persist != nil {
			if err := s.persist.logDelete(context.Background(), name); err != nil {
				return err
			}
		}
		delete(s.ests, name)
	}
	for i, name := range names {
		if s.persist != nil {
			if err := s.persist.logSnapshot(context.Background(), walOpPut, name, snaps[i]); err != nil {
				return err
			}
		}
		s.ests[name] = ests[i]
	}
	rs.mu.Lock()
	rs.pos = pos
	rs.mu.Unlock()
	return nil
}

// tailLeader is the follower's fetch/apply loop.
func (s *Server) tailLeader(rs *replicaState) {
	defer close(rs.done)
	t := time.NewTicker(rs.poll)
	defer t.Stop()
	for {
		select {
		case <-rs.stop:
			return
		case <-t.C:
		}
		// Drain everything available, then go back to sleep.
		for {
			select {
			case <-rs.stop:
				return
			default:
			}
			n, err := s.fetchAndApply(rs)
			if err != nil {
				rs.mu.Lock()
				rs.lastErr = err.Error()
				rs.wedged = errors.Is(err, errReplicaWedged)
				rs.mu.Unlock()
				if errors.Is(err, errReplicaWedged) {
					// Deterministic apply failure: retrying would only
					// double-apply. Stop tailing; the operator sees the
					// sticky error and restarts (or promotes).
					logfServer("spatialserve: %v", err)
					return
				}
				break
			}
			rs.mu.Lock()
			rs.lastErr = ""
			rs.mu.Unlock()
			if n == 0 {
				break
			}
		}
	}
}

// maxShipBytes bounds one WAL shipping response.
const maxShipBytes = 4 << 20

// fetchAndApply pulls one chunk of the leader's WAL and applies it,
// returning the number of records applied. A 410 (history truncated under
// a lagging follower) triggers a fresh bootstrap. Every shipped frame
// carries its own WAL position, and the replication position advances
// frame by frame: if frame i fails (a transient local error, say), the
// position rests exactly on frame i, so the next poll resumes there and
// frames 0..i-1 are never applied twice - re-applying a sketch update is
// not idempotent and would diverge the replica permanently.
func (s *Server) fetchAndApply(rs *replicaState) (n int, err error) {
	// Idle polls (no frames, no error) stay out of the tracer; a poll
	// that shipped data or failed becomes a standalone span so replica
	// lag shows up in the trace ring next to the traffic causing it.
	start := time.Now()
	defer func() {
		if n > 0 || err != nil {
			s.tracer.RecordSpan(context.Background(), "replica.apply", start, time.Since(start), err,
				trace.Attr{K: "frames", V: strconv.Itoa(n)})
		}
	}()
	rs.mu.Lock()
	from := rs.pos
	rs.mu.Unlock()
	u := fmt.Sprintf("%s/admin/wal?from=%s&max=%d", rs.leader, from, maxShipBytes)
	resp, err := rs.client.Do(context.Background(), http.MethodGet, u, nil, nil)
	if err != nil {
		return 0, err
	}
	switch resp.Status {
	case http.StatusOK:
	case http.StatusGone:
		// The leader checkpointed past us; start over from a fresh cut.
		return 0, s.bootstrapReplica(rs)
	default:
		return 0, fmt.Errorf("wal fetch: status %d: %s", resp.Status, resp.Body)
	}
	next, err := parseWalPos(resp.Header.Get(headerWalNext))
	if err != nil {
		return 0, fmt.Errorf("wal fetch: bad %s header: %w", headerWalNext, err)
	}
	frames, err := parseWalFrames(resp.Body)
	if err != nil {
		return 0, err
	}
	setPos := func(p wal.Pos) {
		rs.mu.Lock()
		rs.pos = p
		rs.mu.Unlock()
	}
	for i, fr := range frames {
		if err := s.applyReplicated(fr.payload); err != nil {
			setPos(fr.pos) // the failed frame; earlier ones are done
			return i, fmt.Errorf("%w: record at %v: %v", errReplicaWedged, fr.pos, err)
		}
	}
	setPos(next)
	return len(frames), nil
}

// errReplicaWedged marks an apply failure (as opposed to a transient
// fetch failure): retrying could double-apply or duplicate local log
// records, so the tail loop stops instead. The sticky error is visible
// in /admin/ring; restarting the follower re-bootstraps from a fresh
// leader cut and recovers cleanly.
var errReplicaWedged = errors.New("replication wedged on an unappliable record; restart the follower to re-bootstrap")

// walFrame is one shipped WAL record with its position in the leader's
// log.
type walFrame struct {
	pos     wal.Pos
	payload []byte
}

// parseWalFrames decodes a WAL shipping body: per frame, u64 segment,
// u64 offset, u32 length, payload.
func parseWalFrames(body []byte) ([]walFrame, error) {
	var frames []walFrame
	for len(body) > 0 {
		if len(body) < 20 {
			return nil, fmt.Errorf("wal fetch: truncated frame header")
		}
		pos := wal.Pos{
			Seg: binary.LittleEndian.Uint64(body),
			Off: int64(binary.LittleEndian.Uint64(body[8:])),
		}
		sz := binary.LittleEndian.Uint32(body[16:])
		body = body[20:]
		if uint64(sz) > uint64(len(body)) {
			return nil, fmt.Errorf("wal fetch: frame of %d bytes exceeds body", sz)
		}
		frames = append(frames, walFrame{pos: pos, payload: body[:sz]})
		body = body[sz:]
	}
	return frames, nil
}

// applyReplicated applies one shipped WAL payload to the live registry,
// then - on a persistent follower - appends the raw payload to the local
// WAL, inside the same gate hold so a local checkpoint cut never splits
// the pair. Apply-then-log (the reverse of the serving path's tap
// ordering) is deliberate: a frame that fails to apply must never enter
// the local log, because the tail loop re-fetches failed frames and a
// pre-logged retry would append duplicates that diverge crash recovery.
// Any error here wedges replication (see tailLeader); a restart
// re-bootstraps from a fresh leader cut, discarding local state, so the
// lost apply-vs-log atomicity cannot outlive the process. Estimator taps
// stay detached until promotion to avoid logging twice.
func (s *Server) applyReplicated(payload []byte) error {
	op, name, rest, err := parseWalPayload(payload)
	if err != nil {
		return err
	}
	gate := s.mutGate()
	binding := op == walOpCreate || op == walOpDelete || op == walOpPut ||
		op == walOpTenantPut || op == walOpTenantDelete
	if gate != nil {
		if binding {
			gate.Lock()
			defer gate.Unlock()
		} else {
			gate.RLock()
			defer gate.RUnlock()
		}
	}
	if err := s.applyReplicatedOp(op, name, rest); err != nil {
		return err
	}
	if s.persist != nil {
		if _, err := s.persist.w.Append(payload); err != nil {
			return &logFailure{err}
		}
	}
	return nil
}

// applyReplicatedOp dispatches one shipped operation against the live
// registry. Caller holds the appropriate gate.
func (s *Server) applyReplicatedOp(op byte, name string, rest []byte) error {
	switch op {
	case walOpCreate:
		var req createRequest
		if err := json.Unmarshal(rest, &req); err != nil {
			return fmt.Errorf("replicated create %q: %w", name, err)
		}
		est, err := buildServable(req.Kind, req.Config)
		if err != nil {
			return fmt.Errorf("replicated create %q: %w", name, err)
		}
		s.mu.Lock()
		s.ests[name] = est
		s.mu.Unlock()
	case walOpDelete:
		s.mu.Lock()
		delete(s.ests, name)
		s.mu.Unlock()
		// Mirror deleteLocal: marks die with the binding, so a promoted
		// replica is byte-for-byte the leader's recovery.
		s.sessions.dropKey(name)
	case walOpUpdate:
		est, ok := s.lookup(name)
		if !ok {
			return fmt.Errorf("replicated update for unknown estimator %q", name)
		}
		count, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("replicated update for %q: truncated record count", name)
		}
		rest = rest[k:]
		for i := uint64(0); i < count; i++ {
			rec, used, err := spatial.DecodeUpdateRecord(rest)
			if err != nil {
				return fmt.Errorf("replicated update for %q: %w", name, err)
			}
			rest = rest[used:]
			if err := est.applyRecord(rec); err != nil {
				return fmt.Errorf("replicated update for %q: %w", name, err)
			}
		}
	case walOpIngest:
		// Mirrors the recovery replay in applyLogged: dedup on the session
		// mark, apply untapped, advance - so the promoted replica's marks
		// match the leader's exactly and a resumed stream cannot
		// double-apply across a failover.
		est, ok := s.lookup(name)
		if !ok {
			return fmt.Errorf("replicated ingest for unknown estimator %q", name)
		}
		session, seq, count, records, err := parseIngestRest(rest)
		if err != nil {
			return fmt.Errorf("replicated ingest for %q: %w", name, err)
		}
		ent := s.sessions.lockEntry(session, name, false)
		defer ent.mu.Unlock()
		if seq <= ent.seq.Load() {
			return nil
		}
		for i := uint64(0); i < count; i++ {
			rec, used, derr := spatial.DecodeUpdateRecord(records)
			if derr != nil {
				return fmt.Errorf("replicated ingest for %q: %w", name, derr)
			}
			records = records[used:]
			if aerr := est.applyUntapped(rec); aerr != nil {
				return fmt.Errorf("replicated ingest for %q: %w", name, aerr)
			}
		}
		ent.seq.Store(seq)
	case walOpSessionDrop:
		// Mirror the leader's GC/admin drop so a promoted replica's marks
		// match the leader's exactly.
		session, err := parseSessionDropRest(rest)
		if err != nil {
			return fmt.Errorf("replicated session drop for %q: %w", name, err)
		}
		s.sessions.removeMark(session, name)
	case walOpMerge:
		est, ok := s.lookup(name)
		if !ok {
			return fmt.Errorf("replicated merge into unknown estimator %q", name)
		}
		// Same tolerance as recovery replay: a merge the leader rejected
		// deterministically rejects here too.
		if err := est.mergeSnapshot(rest); err != nil {
			logfServer("spatialserve: replicated merge into %q rejected (as at the leader): %v", name, err)
		}
	case walOpPut:
		est, err := restoreServable(rest)
		if err != nil {
			return fmt.Errorf("replicated put %q: %w", name, err)
		}
		s.mu.Lock()
		s.ests[name] = est
		s.mu.Unlock()
	case walOpTenantPut:
		var cfg TenantConfig
		if err := json.Unmarshal(rest, &cfg); err != nil {
			return fmt.Errorf("replicated tenant put %q: %w", name, err)
		}
		s.tenants.set(name, cfg)
	case walOpTenantDelete:
		s.tenants.delete(name)
	default:
		return fmt.Errorf("replicated record: unknown op %d", op)
	}
	return nil
}

// handlePromote turns a follower into an ordinary read-write node:
// tailing stops, estimator taps attach (on persistent nodes), external
// mutations are accepted. The registry it serves is the replicated state
// - recovery semantics identical to a crash restart of the leader at the
// replicated position.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	rs := s.replica
	if rs == nil {
		writeError(w, http.StatusConflict, "node is not a replica (start with -follow)")
		return
	}
	rs.mu.Lock()
	wasActive := rs.active
	rs.mu.Unlock()
	if !wasActive {
		writeError(w, http.StatusConflict, "replica already promoted")
		return
	}
	s.stopReplica()
	if s.persist != nil {
		s.mu.Lock()
		for name, est := range s.ests {
			est.setTap(s.persist.updateTap(name))
		}
		s.mu.Unlock()
	}
	rs.mu.Lock()
	rs.active = false
	pos := rs.pos
	rs.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "appliedThrough": pos.String()})
}

// ---- leader-side endpoints ----

// handleBootstrap serves a replica bootstrap: every estimator's snapshot
// plus the WAL position they are exact up to, captured under the
// exclusive cut gate (in-memory marshaling only - the same gate hold a
// checkpoint takes). Body layout, all little-endian:
//
//	u32 count | count * ( uvarint len | name | u64 len | SPE1 bytes )
func (s *Server) handleBootstrap(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeError(w, http.StatusConflict, "replication requires a durable leader (start with -data-dir)")
		return
	}
	type snap struct {
		name string
		data []byte
	}
	var snaps []snap
	p := s.persist
	p.gate.Lock()
	cut := p.w.Pos()
	s.mu.RLock()
	for name, est := range s.ests {
		data, err := est.snapshot()
		if err != nil {
			s.mu.RUnlock()
			p.gate.Unlock()
			writeError(w, http.StatusInternalServerError, "snapshotting %q: %v", name, err)
			return
		}
		snaps = append(snaps, snap{name, data})
	}
	s.mu.RUnlock()
	p.gate.Unlock()

	var buf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(snaps)))
	buf.Write(u32[:])
	for _, sn := range snaps {
		buf.Write(binary.AppendUvarint(nil, uint64(len(sn.name))))
		buf.WriteString(sn.name)
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], uint64(len(sn.data)))
		buf.Write(u64[:])
		buf.Write(sn.data)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerWalPos, cut.String())
	w.Write(buf.Bytes())
}

// decodeBootstrap parses a bootstrap body into names and snapshots.
func decodeBootstrap(body []byte) (names []string, snaps [][]byte, err error) {
	r := bytes.NewReader(body)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, nil, fmt.Errorf("bootstrap body: %w", err)
	}
	for i := uint32(0); i < count; i++ {
		n, err := binary.ReadUvarint(r)
		if err != nil || n > uint64(r.Len()) {
			return nil, nil, fmt.Errorf("bootstrap body: bad name length")
		}
		name := make([]byte, n)
		if _, err := r.Read(name); err != nil {
			return nil, nil, err
		}
		var sz uint64
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return nil, nil, err
		}
		if sz > uint64(r.Len()) {
			return nil, nil, fmt.Errorf("bootstrap body: snapshot %d declares %d bytes, %d left", i, sz, r.Len())
		}
		data := make([]byte, sz)
		if _, err := r.Read(data); err != nil {
			return nil, nil, err
		}
		names = append(names, string(name))
		snaps = append(snaps, data)
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("bootstrap body: %d trailing bytes", r.Len())
	}
	return names, snaps, nil
}

// maxShipBytesCeiling caps the ?max= a WAL shipping client may request,
// bounding the response buffer one request can pin in memory.
const maxShipBytesCeiling = 32 << 20

// handleWalShip serves a chunk of committed WAL records from ?from=
// (seg:off), at most ?max= framed bytes (capped server-side). Body, per
// frame: u64 segment | u64 offset | u32 length | raw record payload, so
// the follower can advance its position record by record; the position
// after the last frame rides in X-Spatial-Wal-Next. A position older
// than the oldest retained segment answers 410 Gone - the follower's cue
// to re-bootstrap.
func (s *Server) handleWalShip(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeError(w, http.StatusConflict, "WAL shipping requires -data-dir")
		return
	}
	from, err := parseWalPos(r.URL.Query().Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from position: %v", err)
		return
	}
	max := int64(maxShipBytes)
	if v := r.URL.Query().Get("max"); v != "" {
		if max, err = strconv.ParseInt(v, 10, 64); err != nil || max <= 0 {
			writeError(w, http.StatusBadRequest, "bad max: %q", v)
			return
		}
	}
	if max > maxShipBytesCeiling {
		max = maxShipBytesCeiling
	}
	var buf bytes.Buffer
	next, err := s.persist.w.ReadFrom(from, max, func(pos wal.Pos, payload []byte) error {
		var hdr [20]byte
		binary.LittleEndian.PutUint64(hdr[0:], pos.Seg)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(pos.Off))
		binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
		buf.Write(hdr[:])
		buf.Write(payload)
		return nil
	})
	if err != nil {
		// Both cases mean the follower's position names history this log
		// does not hold (truncated away, or lost with an unsynced tail on
		// a crash-restarted leader): 410 sends it back to bootstrap.
		if errors.Is(err, wal.ErrTruncatedHistory) || errors.Is(err, wal.ErrFuturePosition) {
			writeError(w, http.StatusGone, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerWalNext, next.String())
	w.Write(buf.Bytes())
}

// parseWalPos parses the seg:off wire form of a WAL position.
func parseWalPos(v string) (wal.Pos, error) {
	seg, off, ok := strings.Cut(v, ":")
	if !ok {
		return wal.Pos{}, fmt.Errorf("position %q is not seg:off", v)
	}
	sg, err := strconv.ParseUint(seg, 10, 64)
	if err != nil {
		return wal.Pos{}, err
	}
	of, err := strconv.ParseInt(off, 10, 64)
	if err != nil {
		return wal.Pos{}, err
	}
	return wal.Pos{Seg: sg, Off: of}, nil
}
