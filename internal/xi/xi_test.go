package xi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSignIsPlusMinusOne(t *testing.T) {
	f := New(1)
	for i := uint64(0); i < 4096; i++ {
		s := f.Sign(i)
		if s != 1 && s != -1 {
			t.Fatalf("Sign(%d) = %d", i, s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := uint64(0); i < 1000; i++ {
		if a.Sign(i) != b.Sign(i) {
			t.Fatalf("same seed disagrees at %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Sign(i) == c.Sign(i) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical families")
	}
}

func TestFromCoeffsValidation(t *testing.T) {
	if _, err := FromCoeffs(0, 1, 2, Prime); err == nil {
		t.Fatal("coefficient = Prime should be rejected")
	}
	f, err := FromCoeffs(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Coeffs(); got != [4]uint64{1, 2, 3, 4} {
		t.Fatalf("Coeffs = %v", got)
	}
}

// TestHashPolynomial verifies Hash against a big-integer-free reference for
// small coefficients where no reduction happens.
func TestHashPolynomial(t *testing.T) {
	f, _ := FromCoeffs(7, 3, 2, 1)
	for i := uint64(0); i < 100; i++ {
		want := (i*i*i + 2*i*i + 3*i + 7) % Prime
		if got := f.Hash(i); got != want {
			t.Fatalf("Hash(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestMulModAgainstBigReference validates the Mersenne folding against
// 128-bit reference arithmetic.
func TestMulModAgainstBigReference(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{Prime - 1, Prime - 1},
		{Prime - 1, 2},
		{1 << 60, 1 << 60},
		{123456789123456789 % Prime, 987654321987654321 % Prime},
		{0, Prime - 1},
		{1, 1},
	}
	for _, c := range cases {
		want := mulModSlow(c.a, c.b)
		if got := mulMod(c.a, c.b); got != want {
			t.Fatalf("mulMod(%d, %d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

func TestMulModQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= Prime
		b %= Prime
		return mulMod(a, b) == mulModSlow(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// mulModSlow computes a*b mod Prime by 128-bit schoolbook arithmetic.
func mulModSlow(a, b uint64) uint64 {
	var r uint64
	a %= Prime
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % Prime
		}
		a = (a * 2) % Prime
		b >>= 1
	}
	return r
}

// TestMeanNearZero: E[xi_i] = 0 over the seed randomness.
func TestMeanNearZero(t *testing.T) {
	const fams = 4000
	idx := []uint64{0, 1, 17, 255, 10000, 1 << 30}
	for _, i := range idx {
		var sum int64
		for s := uint64(0); s < fams; s++ {
			sum += New(s).Sign(i)
		}
		// Std error is sqrt(fams); allow 5 sigma.
		if math.Abs(float64(sum)) > 5*math.Sqrt(fams) {
			t.Errorf("E[xi_%d] = %g, too far from 0", i, float64(sum)/fams)
		}
	}
}

// TestPairwiseProductNearZero: E[xi_i xi_j] = 0 for i != j over seeds.
func TestPairwiseProductNearZero(t *testing.T) {
	const fams = 4000
	pairs := [][2]uint64{{0, 1}, {3, 500}, {100, 1 << 20}, {7, 8}}
	for _, pr := range pairs {
		var sum int64
		for s := uint64(0); s < fams; s++ {
			f := New(s + 9999)
			sum += f.Sign(pr[0]) * f.Sign(pr[1])
		}
		if math.Abs(float64(sum)) > 5*math.Sqrt(fams) {
			t.Errorf("E[xi_%d xi_%d] = %g, too far from 0", pr[0], pr[1], float64(sum)/fams)
		}
	}
}

// TestFourWiseProductNearZero: E[xi_i xi_j xi_k xi_l] = 0 for distinct
// indices (the four-wise independence the sketches rely on), and = 1 when
// indices pair up.
func TestFourWiseProductNearZero(t *testing.T) {
	const fams = 4000
	quads := [][4]uint64{{0, 1, 2, 3}, {5, 99, 1234, 98765}, {2, 4, 8, 16}}
	for _, q := range quads {
		var sum int64
		for s := uint64(0); s < fams; s++ {
			f := New(s + 777)
			sum += f.Sign(q[0]) * f.Sign(q[1]) * f.Sign(q[2]) * f.Sign(q[3])
		}
		if math.Abs(float64(sum)) > 5*math.Sqrt(fams) {
			t.Errorf("E[prod xi over %v] = %g, too far from 0", q, float64(sum)/fams)
		}
	}
	// Paired indices: xi_i^2 * xi_j^2 = 1 identically.
	f := New(5)
	for i := uint64(0); i < 100; i++ {
		if p := f.Sign(i) * f.Sign(i) * f.Sign(i+1) * f.Sign(i+1); p != 1 {
			t.Fatalf("paired product = %d", p)
		}
	}
}

// TestThreeWiseProductNearZero: degree-3 polynomials are 4-wise independent,
// so triple products of distinct variables also vanish in expectation.
func TestThreeWiseProductNearZero(t *testing.T) {
	const fams = 4000
	var sum int64
	for s := uint64(0); s < fams; s++ {
		f := New(s + 31337)
		sum += f.Sign(10) * f.Sign(20) * f.Sign(30)
	}
	if math.Abs(float64(sum)) > 5*math.Sqrt(fams) {
		t.Errorf("E[xi_10 xi_20 xi_30] = %g", float64(sum)/fams)
	}
}

func TestSumSigns(t *testing.T) {
	f := New(123)
	ids := []uint64{1, 5, 9, 1 << 22, 5}
	var want int64
	for _, id := range ids {
		want += f.Sign(id)
	}
	if got := f.SumSigns(ids); got != want {
		t.Fatalf("SumSigns = %d, want %d", got, want)
	}
	if got := f.SumSigns(nil); got != 0 {
		t.Fatalf("SumSigns(nil) = %d", got)
	}
}

func TestMaterializeMatchesSign(t *testing.T) {
	f := New(7)
	want := make([]int64, 512)
	for i := range want {
		want[i] = f.Sign(uint64(i))
	}
	f.Materialize(512)
	if !f.Materialized() {
		t.Fatal("Materialized() = false after Materialize")
	}
	for i := range want {
		if got := f.Sign(uint64(i)); got != want[i] {
			t.Fatalf("materialized Sign(%d) = %d, want %d", i, got, want[i])
		}
	}
	// Indices beyond the table still work.
	_ = f.Sign(1 << 20)
	// SumSigns with mixed in/out-of-table ids.
	ids := []uint64{3, 700, 100, 1 << 20}
	var sum int64
	for _, id := range ids {
		sum += f.Sign(id)
	}
	if got := f.SumSigns(ids); got != sum {
		t.Fatalf("materialized SumSigns = %d, want %d", got, sum)
	}
	f.Drop()
	if f.Materialized() {
		t.Fatal("Materialized() = true after Drop")
	}
	for i := range want {
		if got := f.Sign(uint64(i)); got != want[i] {
			t.Fatalf("post-Drop Sign(%d) = %d, want %d", i, got, want[i])
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(987654321)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != SeedBytes {
		t.Fatalf("seed length %d", len(data))
	}
	var g Family
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if f.Sign(i) != g.Sign(i) {
			t.Fatalf("round-tripped family disagrees at %d", i)
		}
	}
	if err := g.UnmarshalBinary(data[:10]); err == nil {
		t.Fatal("short seed should fail")
	}
	bad := make([]byte, SeedBytes)
	for i := range bad {
		bad[i] = 0xff
	}
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Fatal("out-of-range coefficient should fail")
	}
}

// TestBasisExpectationIdentity checks the core sketch identity of
// Section 3.1 at the xi level: for the interval/point products,
// E[xi_a xi_c] = 1 iff a == c, estimated over many families.
func TestBasisExpectationIdentity(t *testing.T) {
	const fams = 6000
	var same, diff int64
	for s := uint64(0); s < fams; s++ {
		f := New(s * 31)
		same += f.Sign(42) * f.Sign(42)
		diff += f.Sign(42) * f.Sign(43)
	}
	if same != fams {
		t.Errorf("E[xi^2] != 1: %d/%d", same, fams)
	}
	if math.Abs(float64(diff)) > 5*math.Sqrt(fams) {
		t.Errorf("E[xi_42 xi_43] = %g", float64(diff)/fams)
	}
}

func BenchmarkSign(b *testing.B) {
	f := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += f.Sign(uint64(i))
	}
	_ = sink
}

func BenchmarkSumSigns32(b *testing.B) {
	f := New(1)
	ids := make([]uint64, 32)
	for i := range ids {
		ids[i] = uint64(i * 1237)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += f.SumSigns(ids)
	}
	_ = sink
}
