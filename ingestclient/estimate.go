package ingestclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The read side of the client: typed estimate calls against the same
// server the streaming writer feeds. Load harnesses and fan-out readers
// use this instead of hand-rolling HTTP so the request/response wire
// shapes live in exactly one client package.

// Estimate is one estimate answer as served by spatialserve - the boosted
// estimator output plus the input sizes it was normalized against. In a
// batch response, a malformed query's row carries Err and nothing else.
type Estimate struct {
	// Kind is the estimator kind that answered ("join", "range",
	// "epsjoin", "containment").
	Kind string `json:"kind"`
	// Err reports a per-query failure inside a batch; when set, the other
	// fields are meaningless.
	Err string `json:"error,omitempty"`
	// Cardinality is the boosted estimate clamped to be non-negative.
	Cardinality float64 `json:"cardinality"`
	// Value is the raw boosted estimate (median of group means).
	Value float64 `json:"value"`
	// Mean is the grand mean over all atomic instances.
	Mean float64 `json:"mean"`
	// StdErr estimates the standard error of one group mean.
	StdErr float64 `json:"stdErr"`
	// Selectivity is Cardinality normalized by the input sizes, when the
	// inputs are non-empty.
	Selectivity *float64 `json:"selectivity,omitempty"`
	// Counts holds the input sizes the estimate was computed over.
	Counts map[string]int64 `json:"counts"`
	// Partial reports a degraded cluster read covering only the reachable
	// partitions (a bounded under-count).
	Partial bool `json:"partial,omitempty"`
	// PartitionsAnswered is how many partitions a partial answer merged.
	PartitionsAnswered int `json:"partitions_answered,omitempty"`
	// PartitionsTotal is the estimator's partition count on a partial
	// answer.
	PartitionsTotal int `json:"partitions_total,omitempty"`
}

// BatchEstimates is the answer to a batched estimate: one row per query
// in request order, plus the batch-level degraded-read report.
type BatchEstimates struct {
	// Results holds one answer per query, in request order.
	Results []Estimate `json:"results"`
	// Partial, PartitionsAnswered and PartitionsTotal mirror the
	// single-estimate degraded-read report for the whole batch.
	Partial            bool `json:"partial,omitempty"`
	PartitionsAnswered int  `json:"partitions_answered,omitempty"`
	PartitionsTotal    int  `json:"partitions_total,omitempty"`
}

// EstimateOptions parameterizes one estimate call beyond the estimator
// name. The zero value is the parameterless estimate (join, epsjoin,
// containment).
type EstimateOptions struct {
	// Query is a range query as [dim][lo,hi] pairs (range estimators).
	Query [][2]uint64
	// Extended selects the Definition 4 extended join (common-endpoints
	// join estimators only).
	Extended bool
	// AllowPartial accepts a degraded answer covering only the reachable
	// partitions instead of an error when part of the cluster is down.
	AllowPartial bool
	// RequestID, when set, is sent as the X-Request-Id header so the
	// server's logs and slow-op records carry the caller's op identity.
	RequestID string
	// Traceparent, when set, is sent as the W3C traceparent header so the
	// server's spans join the caller's trace and the answer can be
	// cross-referenced in /admin/trace.
	Traceparent string
}

// EstimateClient issues estimate reads against one spatialserve base URL
// (any cluster node; the server routes internally). It is stateless and
// safe for concurrent use.
type EstimateClient struct {
	base string
	hc   *http.Client
}

// NewEstimateClient builds a client for the server at baseURL. A nil
// httpClient uses a private client with a 30s timeout.
func NewEstimateClient(baseURL string, httpClient *http.Client) *EstimateClient {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &EstimateClient{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// estimatePath builds the estimate URL for an estimator name, which may
// be tenant-qualified ("acme/objects" becomes the tenant-scoped route).
func (c *EstimateClient) estimatePath(estimator string, allowPartial bool) string {
	var p string
	if tenant, name, ok := strings.Cut(estimator, "/"); ok {
		p = c.base + "/v1/tenants/" + tenant + "/estimators/" + name + "/estimate"
	} else {
		p = c.base + "/v1/estimators/" + estimator + "/estimate"
	}
	if allowPartial {
		p += "?partial=ok"
	}
	return p
}

// post issues one estimate POST and decodes the response into out,
// turning non-200 statuses into errors carrying the server's message.
// rid and traceparent, when non-empty, ride along as the X-Request-Id
// and traceparent headers.
func (c *EstimateClient) post(ctx context.Context, url string, body any, out any, rid, traceparent string) error {
	enc, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(enc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set("X-Request-Id", rid)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("ingestclient: estimate %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// estimateWireRequest is the POST body for /estimate - field names match
// the server's estimateRequest.
type estimateWireRequest struct {
	Query    [][2]uint64   `json:"query,omitempty"`
	Queries  [][][2]uint64 `json:"queries,omitempty"`
	Extended bool          `json:"extended,omitempty"`
}

// Estimate issues one estimate and returns the answer. Works against all
// four estimator kinds; range estimators need opts.Query.
func (c *EstimateClient) Estimate(ctx context.Context, estimator string, opts EstimateOptions) (*Estimate, error) {
	var out Estimate
	err := c.post(ctx, c.estimatePath(estimator, opts.AllowPartial),
		estimateWireRequest{Query: opts.Query, Extended: opts.Extended}, &out,
		opts.RequestID, opts.Traceparent)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// EstimateBatch answers many range queries in one request against one
// pinned server-side view: all rows are mutually consistent, and a
// malformed query yields a row with Err set while the rest are still
// answered. Range estimators only.
func (c *EstimateClient) EstimateBatch(ctx context.Context, estimator string, queries [][][2]uint64, allowPartial bool) (*BatchEstimates, error) {
	var out BatchEstimates
	err := c.post(ctx, c.estimatePath(estimator, allowPartial),
		estimateWireRequest{Queries: queries}, &out, "", "")
	if err != nil {
		return nil, err
	}
	if len(out.Results) != len(queries) {
		return nil, fmt.Errorf("ingestclient: batch estimate returned %d rows for %d queries", len(out.Results), len(queries))
	}
	return &out, nil
}
