package faultinject

import (
	"fmt"
	"os"
	"syscall"
)

// WALHooks satisfies internal/wal's FileHooks without importing it:
// segment writes and fsyncs on the named node are routed through the
// injector's WAL rules (KindWALWrite, KindWALShortWrite, KindWALSync).
type WALHooks struct {
	in   *Injector
	node string
}

// WALHooks returns the WAL file-op hook for the named node; pass it to
// wal.Options.Hooks (or PersistOptions.WALHooks) in tests.
func (in *Injector) WALHooks(node string) *WALHooks {
	return &WALHooks{in: in, node: node}
}

// Write performs (or faults) one segment write. KindWALWrite fails with
// ENOSPC before any byte lands; KindWALShortWrite writes roughly half the
// buffer and then fails with ENOSPC, leaving a torn tail on disk.
func (h *WALHooks) Write(f *os.File, p []byte) (int, error) {
	r, ok := h.in.match("", h.node, "", true, fmt.Sprintf("write %d bytes", len(p)), KindWALWrite, KindWALShortWrite)
	if ok {
		switch r.Kind {
		case KindWALWrite:
			return 0, &os.PathError{Op: "write", Path: f.Name(), Err: syscall.ENOSPC}
		case KindWALShortWrite:
			n, err := f.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, &os.PathError{Op: "write", Path: f.Name(), Err: syscall.ENOSPC}
		}
	}
	return f.Write(p)
}

// Sync performs (or faults) one segment fsync. KindWALSync fails with EIO
// after the write already landed in the page cache.
func (h *WALHooks) Sync(f *os.File) error {
	r, ok := h.in.match("", h.node, "", true, "fsync", KindWALSync)
	if ok && r.Kind == KindWALSync {
		return &os.PathError{Op: "fsync", Path: f.Name(), Err: syscall.EIO}
	}
	return f.Sync()
}
