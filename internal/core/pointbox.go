package core

import (
	"fmt"

	"repro/geo"
)

// PointSketch and BoxSketch implement the two-sketch estimator of
// Section 6.3 (Lemmas 7 and 8): the point sketch is
// X_E = sum over points of prod_i xi-bar[a_i], the box sketch is
// Y_I = sum over hyper-rectangles of prod_i xi-bar[l_i, u_i], and
// Z = X_E * Y_I is an unbiased estimator of the number of (point, box)
// pairs with the point inside the box (closed containment).
//
// Two query types reduce to this estimator:
//
//   - epsilon-joins (Definition 2, L-infinity metric): expand each point of
//     B into the hyper-cube of side 2*eps around it (geo.Ball) and insert
//     the cubes into the BoxSketch;
//   - containment joins (Appendix B.2): a d-dim interval containment
//     r inside s becomes a 2d-dim point-in-box test with point
//     (l(r_1), u(r_1), ..., l(r_d), u(r_d)) and box
//     prod_j [l(s_j), u(s_j)]^2.
//
// No endpoint transformation is needed: closed containment is exactly the
// predicate both reductions want.

// PointSketch summarizes a set of points: one counter per instance.
type PointSketch struct {
	plan     *Plan
	counters []int64 // [instance]
	count    int64
	ptBuf    [][]uint64
	sums     *letterSums
}

// NewPointSketch returns an empty point sketch.
func (p *Plan) NewPointSketch() *PointSketch {
	return &PointSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances),
		ptBuf:    make([][]uint64, p.cfg.Dims),
		sums:     newLetterSums(p.cfg.Dims, 1, p.cfg.Instances),
	}
}

// Plan returns the plan the sketch was built from.
func (s *PointSketch) Plan() *Plan { return s.plan }

// Count returns the number of points summarized.
func (s *PointSketch) Count() int64 { return s.count }

// Insert adds a point.
func (s *PointSketch) Insert(pt geo.Point) error { return s.update(pt, +1) }

// Delete removes a previously inserted point.
func (s *PointSketch) Delete(pt geo.Point) error { return s.update(pt, -1) }

func (s *PointSketch) update(pt geo.Point, sign int64) error {
	if err := s.plan.checkPoint(pt); err != nil {
		return err
	}
	s.apply(pt, sign, s.counters, s.ptBuf, s.sums)
	s.count += sign
	return nil
}

// apply folds one point's covers into dst, id-major over the bank.
func (s *PointSketch) apply(pt geo.Point, sign int64, dst []int64, ptBuf [][]uint64, sums *letterSums) {
	p := s.plan
	d := p.cfg.Dims
	sums.reset()
	for i := 0; i < d; i++ {
		ptBuf[i] = p.doms[i].PointCoverMax(pt[i], p.maxLevel[i], ptBuf[i][:0])
		lo, hi := p.famRange(i)
		p.bank.SumSignsMany(ptBuf[i], lo, hi, sums.plane(i, 0))
	}
	for inst := 0; inst < p.cfg.Instances; inst++ {
		prod := sign
		for i := 0; i < d; i++ {
			prod *= sums.plane(i, 0)[inst]
		}
		dst[inst] += prod
	}
}

// InsertAll bulk-loads points, sharding across objects as
// JoinSketch.InsertAll does.
func (s *PointSketch) InsertAll(pts []geo.Point) error {
	for _, pt := range pts {
		if err := s.plan.checkPoint(pt); err != nil {
			return err
		}
	}
	p := s.plan
	shardBulk(len(pts), s.counters, func(start, end int, dst []int64) {
		ptBuf := make([][]uint64, p.cfg.Dims)
		sums := newLetterSums(p.cfg.Dims, 1, p.cfg.Instances)
		for idx := start; idx < end; idx++ {
			s.apply(pts[idx], +1, dst, ptBuf, sums)
		}
	})
	s.count += int64(len(pts))
	return nil
}

// Merge adds the counters of other into s. Both sketches must come from the
// same plan.
func (s *PointSketch) Merge(other *PointSketch) error {
	return mergeSketch(s.plan, other.plan, s.counters, other.counters, &s.count, other.count)
}

// BoxSketch summarizes a set of hyper-rectangles with pure interval covers:
// one counter per instance.
type BoxSketch struct {
	plan     *Plan
	counters []int64 // [instance]
	count    int64
	covBuf   [][]uint64
	sums     *letterSums
}

// NewBoxSketch returns an empty box sketch.
func (p *Plan) NewBoxSketch() *BoxSketch {
	return &BoxSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances),
		covBuf:   make([][]uint64, p.cfg.Dims),
		sums:     newLetterSums(p.cfg.Dims, 1, p.cfg.Instances),
	}
}

// Plan returns the plan the sketch was built from.
func (s *BoxSketch) Plan() *Plan { return s.plan }

// Count returns the number of boxes summarized.
func (s *BoxSketch) Count() int64 { return s.count }

// Insert adds a hyper-rectangle.
func (s *BoxSketch) Insert(rect geo.HyperRect) error { return s.update(rect, +1) }

// Delete removes a previously inserted hyper-rectangle.
func (s *BoxSketch) Delete(rect geo.HyperRect) error { return s.update(rect, -1) }

func (s *BoxSketch) update(rect geo.HyperRect, sign int64) error {
	if err := s.plan.checkRect(rect); err != nil {
		return err
	}
	s.apply(rect, sign, s.counters, s.covBuf, s.sums)
	s.count += sign
	return nil
}

// apply folds one box's interval covers into dst, id-major over the bank.
func (s *BoxSketch) apply(rect geo.HyperRect, sign int64, dst []int64, covBuf [][]uint64, sums *letterSums) {
	p := s.plan
	d := p.cfg.Dims
	sums.reset()
	for i := 0; i < d; i++ {
		covBuf[i] = p.doms[i].CoverMax(rect[i].Lo, rect[i].Hi, p.maxLevel[i], covBuf[i][:0])
		lo, hi := p.famRange(i)
		p.bank.SumSignsMany(covBuf[i], lo, hi, sums.plane(i, 0))
	}
	for inst := 0; inst < p.cfg.Instances; inst++ {
		prod := sign
		for i := 0; i < d; i++ {
			prod *= sums.plane(i, 0)[inst]
		}
		dst[inst] += prod
	}
}

// InsertAll bulk-loads hyper-rectangles, sharding across objects as
// JoinSketch.InsertAll does.
func (s *BoxSketch) InsertAll(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := s.plan.checkRect(r); err != nil {
			return err
		}
	}
	p := s.plan
	shardBulk(len(rects), s.counters, func(start, end int, dst []int64) {
		covBuf := make([][]uint64, p.cfg.Dims)
		sums := newLetterSums(p.cfg.Dims, 1, p.cfg.Instances)
		for idx := start; idx < end; idx++ {
			s.apply(rects[idx], +1, dst, covBuf, sums)
		}
	})
	s.count += int64(len(rects))
	return nil
}

// Merge adds the counters of other into s. Both sketches must come from the
// same plan.
func (s *BoxSketch) Merge(other *BoxSketch) error {
	return mergeSketch(s.plan, other.plan, s.counters, other.counters, &s.count, other.count)
}

// EstimatePointInBox estimates the number of (point, box) pairs with the
// point inside the box: Z = X_E * Y_I per instance, boosted (Lemmas 7-8).
// Both sketches must come from the same plan.
func EstimatePointInBox(pts *PointSketch, boxes *BoxSketch) (Estimate, error) {
	if !samePlan(pts.plan, boxes.plan) {
		return Estimate{}, fmt.Errorf("core: sketches come from different plans")
	}
	p := pts.plan
	sc := p.GetScratch()
	defer p.PutScratch(sc)
	zs := sc.instSums(p)
	for inst := range zs {
		zs[inst] = float64(pts.counters[inst]) * float64(boxes.counters[inst])
	}
	return boostWith(zs, p.cfg.Groups, sc.medianBuf(p)), nil
}

// ContainmentPoint maps a d-dim hyper-rectangle r to the 2d-dim point
// (l(r_1), u(r_1), ..., l(r_d), u(r_d)) of the Appendix B.2 reduction.
func ContainmentPoint(r geo.HyperRect) geo.Point {
	pt := make(geo.Point, 2*len(r))
	for i, iv := range r {
		pt[2*i] = iv.Lo
		pt[2*i+1] = iv.Hi
	}
	return pt
}

// ContainmentBox maps a d-dim hyper-rectangle s to the 2d-dim box
// prod_j [l(s_j), u(s_j)]^2 of the Appendix B.2 reduction: r is contained
// in s iff ContainmentPoint(r) lies in ContainmentBox(s).
func ContainmentBox(s geo.HyperRect) geo.HyperRect {
	box := make(geo.HyperRect, 2*len(s))
	for i, iv := range s {
		box[2*i] = iv
		box[2*i+1] = iv
	}
	return box
}
