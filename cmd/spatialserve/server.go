package main

import (
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	spatial "repro"
	"repro/geo"
	"repro/internal/cluster"
	"repro/internal/trace"
)

// Server exposes a registry of named estimators over HTTP: the
// build-at-the-edge / merge-and-query-centrally deployment of the paper's
// synopses as a service. All estimator operations are safe under
// concurrent requests - the estimators themselves are concurrency-safe,
// and the registry only guards its name map.
//
// Endpoints (JSON unless noted):
//
//	POST   /v1/estimators                 create {name, kind, config}
//	GET    /v1/estimators                 list
//	GET    /v1/estimators/{name}          info (config, counts, space)
//	DELETE /v1/estimators/{name}          drop
//	POST   /v1/estimators/{name}/update   insert/delete a batch of objects
//	POST   /v1/estimators/{name}/estimate estimate (GET works when no body is
//	       needed; {"queries": [...]} batches many range queries against one
//	       consistent view)
//	GET    /v1/estimators/{name}/snapshot full-estimator snapshot (binary SPE1 envelope)
//	PUT    /v1/estimators/{name}/snapshot create/replace the estimator from a snapshot
//	POST   /v1/estimators/{name}/merge    fold a snapshot into the estimator
//	PUT    /v1/tenants/{tenant}           register/replace a tenant config
//	GET    /v1/tenants                    list tenant configs
//	GET    /v1/tenants/{tenant}           tenant config + word usage breakdown
//	DELETE /v1/tenants/{tenant}           drop a tenant config (must hold no estimators)
//	*      /v1/tenants/{tenant}/estimators[/{name}...]  tenant-scoped estimator
//	       routes: the same operations as /v1/estimators on key "tenant/name"
//	POST   /admin/checkpoint              force a durable checkpoint (persistence only)
//	GET    /metrics                       Prometheus text exposition (admission-exempt)
//	GET    /healthz
type Server struct {
	mu   sync.RWMutex
	ests map[string]servable
	mux  *http.ServeMux

	// persist, when non-nil, write-ahead-logs every mutation and owns
	// checkpoints and recovery (see persist.go).
	persist *persister

	// cluster, when non-nil, routes requests across the partition map
	// (see cluster.go).
	cluster *clusterNode

	// replica, when non-nil, tails a leader's WAL; while active the node
	// is read-only (see replica.go).
	replica *replicaState

	// admit, when non-nil, runs admission control (inflight gates + rate
	// shedding) in front of the mux (see admit.go).
	admit *admitter

	// tenants holds per-tenant configs - memory budgets and admission
	// limits (see tenant.go).
	tenants tenantRegistry

	// metrics is the always-on observability registry behind GET /metrics
	// (see metrics.go).
	metrics *serverMetrics

	// sessions holds the per-session ingest high-water marks that give
	// the streaming path exactly-once semantics (see stream.go). The
	// marks are persisted through the WAL and checkpoint manifest.
	sessions sessionTable

	// tracer records request spans into a bounded tail-sampled ring
	// served by GET /admin/trace (see trace.go). Never nil.
	tracer *trace.Tracer

	// slowLog is the structured slow-op JSON log (disabled until
	// EnableSlowOpLog; see trace.go). Never nil.
	slowLog *trace.SlowOpLogger

	// gcStop/gcDone/gcOnce control the background session-mark GC loop
	// (see sessions_gc.go); gcStop is nil when GC is not running.
	gcStop chan struct{}
	gcDone chan struct{}
	gcOnce sync.Once
}

// servable is the kind-erased server view of one estimator.
type servable interface {
	kind() spatial.Kind
	configJSON() any
	instances() int
	spaceWords() int
	counts() map[string]int64
	update(req *updateRequest) (applied int, err error)
	estimate(req *estimateRequest) (*estimateResponse, error)
	estimateBatch(req *estimateRequest) (*batchEstimateResponse, error)
	snapshot() ([]byte, error)
	mergeSnapshot(data []byte) error
	// setTap installs the persistence update tap on the wrapped estimator.
	setTap(tap spatial.UpdateTap)
	// applyRecord replays one logged update record during recovery.
	applyRecord(rec spatial.UpdateRecord) error
	// validateRecord checks a record without applying it - exactly the
	// validation applyRecord performs, so a record that passes can be
	// WAL-logged ahead of its apply.
	validateRecord(rec spatial.UpdateRecord) error
	// applyUntapped applies one record WITHOUT notifying the update tap,
	// for the ingest path that journals its own atomic WAL record (a
	// tapped apply would double-log).
	applyUntapped(rec spatial.UpdateRecord) error
}

// NewServer returns a ready-to-serve handler with an empty in-memory
// registry (no durability; see NewPersistentServer).
func NewServer() *Server {
	s := &Server{ests: make(map[string]servable), mux: http.NewServeMux()}
	s.tenants.tenants = make(map[string]*tenantState)
	s.metrics = newServerMetrics(s)
	s.initTracing()
	s.observeViewRebuilds()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenantList)
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handleTenantPut)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenantGet)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleTenantDelete)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimators", s.handleTenantCreate)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/estimators", s.handleTenantEstimatorList)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/estimators/{name}", s.tenantEstimatorRoute(""))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/estimators/{name}", s.tenantEstimatorRoute(""))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimators/{name}/update", s.tenantEstimatorRoute("/update"))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/estimators/{name}/estimate", s.tenantEstimatorRoute("/estimate"))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimators/{name}/estimate", s.tenantEstimatorRoute("/estimate"))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/estimators/{name}/snapshot", s.tenantEstimatorRoute("/snapshot"))
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}/estimators/{name}/snapshot", s.tenantEstimatorRoute("/snapshot"))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/estimators/{name}/merge", s.tenantEstimatorRoute("/merge"))
	s.mux.HandleFunc("POST /v1/estimators", s.handleCreate)
	s.mux.HandleFunc("GET /v1/estimators", s.handleList)
	s.mux.HandleFunc("GET /v1/estimators/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/estimators/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/estimators/{name}/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/estimators/{name}/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/estimators/{name}/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/estimators/{name}/snapshot", s.handleSnapshotGet)
	s.mux.HandleFunc("PUT /v1/estimators/{name}/snapshot", s.handleSnapshotPut)
	s.mux.HandleFunc("POST /v1/estimators/{name}/merge", s.handleMerge)
	s.mux.HandleFunc("POST /v1/estimators/{name}/apply", s.handleApply)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngestStream)
	s.mux.HandleFunc("POST /v1/estimators/{name}/ingest", s.handleShardIngest)
	s.mux.HandleFunc("POST /v1/estimators/{name}/ingest-marks", s.handleIngestMarks)
	s.mux.HandleFunc("POST /admin/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /admin/ring", s.handleRingGet)
	s.mux.HandleFunc("POST /admin/ring", s.handleRingAdopt)
	s.mux.HandleFunc("POST /admin/rebalance", s.handleRebalance)
	s.mux.HandleFunc("GET /admin/bootstrap", s.handleBootstrap)
	s.mux.HandleFunc("GET /admin/wal", s.handleWalShip)
	s.mux.HandleFunc("POST /admin/promote", s.handlePromote)
	s.mux.HandleFunc("GET /admin/sessions", s.handleSessionList)
	s.mux.HandleFunc("DELETE /admin/sessions", s.handleSessionDelete)
	s.mux.HandleFunc("GET /admin/trace", s.handleTraceList)
	s.mux.HandleFunc("GET /admin/trace/{id}", s.handleTraceGet)
	return s
}

// NewPersistentServer returns a server whose registry is durable under
// opts.DataDir: the registry is recovered from the latest checkpoint plus
// the WAL suffix, every subsequent mutation is write-ahead logged, and
// checkpoints run in the background. Callers must Close it to flush and
// release the data directory.
func NewPersistentServer(opts PersistOptions) (*Server, error) {
	s := NewServer()
	p, err := newPersister(s, opts)
	if err != nil {
		return nil, err
	}
	s.persist = p
	return s, nil
}

// Close stops replication tailing, takes a final checkpoint (when
// persistence is enabled), flushes and closes the WAL. The in-memory
// registry remains queryable; Close is for graceful shutdown.
func (s *Server) Close() error {
	s.stopSessionGC()
	s.stopReplica()
	if s.persist == nil {
		return nil
	}
	return s.persist.close(false)
}

// ServeHTTP attaches the request/trace IDs, opens the request's root
// span (a child of an incoming traceparent, so fan-out sub-requests
// stitch into the caller's trace), runs global then per-tenant admission
// control, dispatches to the registry's endpoint handlers, and records
// the request metrics - with the trace ID attached as an exemplar when
// the trace was retained - plus a structured slow-op line when the
// request crossed the slow threshold.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r = traceRequest(w, r)
	endpoint := classifyEndpoint(r)
	ctx, sp := s.tracer.Start(r.Context(), "http "+endpoint)
	if sp != nil {
		sp.SetAttr("endpoint", endpoint)
		if rid := requestIDFrom(ctx); rid != "" {
			sp.SetAttr("request_id", rid)
		}
		r = r.WithContext(ctx)
	}
	start := time.Now()
	sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.serveAdmitted(sw, r)
	d := time.Since(start)
	tenant := s.metricsTenant(r)
	status := strconv.Itoa(sw.status)
	sp.SetAttr("tenant", tenant)
	sp.SetAttr("status", status)
	if sw.status >= http.StatusInternalServerError {
		sp.Fail("status " + status)
	}
	traceID := sp.TraceID()
	hist := s.metrics.reqSeconds.With(endpoint, tenant)
	if sp.End() {
		hist.ObserveExemplar(d.Seconds(), traceID.String())
	} else {
		hist.Observe(d.Seconds())
	}
	s.metrics.reqTotal.With(endpoint, tenant, status).Inc()
	if s.slowLog.Enabled(d) {
		op := trace.SlowOp{
			Op:        "http " + endpoint,
			RequestID: requestIDFrom(r.Context()),
			Tenant:    tenant,
			Endpoint:  endpoint,
			Status:    sw.status,
			Duration:  d,
		}
		if !traceID.IsZero() {
			op.TraceID = traceID.String()
		}
		s.slowLog.Observe(op)
	}
}

// serveAdmitted runs the admission gates (global, then per-tenant) and
// the mux.
func (s *Server) serveAdmitted(w http.ResponseWriter, r *http.Request) {
	if a := s.admit; a != nil {
		release, ok := a.admit(w, r, s.metrics)
		if !ok {
			return
		}
		defer release()
	}
	release, ok := s.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	s.mux.ServeHTTP(w, r)
}

// lookup fetches an estimator by name under the registry read lock.
func (s *Server) lookup(name string) (servable, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.ests[name]
	return e, ok
}

// ---- wire types ----

type errorResponse struct {
	Error string `json:"error"`
}

// configRequest is the public estimator configuration over the wire. The
// zero sizing falls back to the library default (512 instances, 8 groups).
type configRequest struct {
	Dims        int    `json:"dims"`
	DomainSize  uint64 `json:"domainSize"`
	Eps         uint64 `json:"eps,omitempty"`      // epsjoin only
	Mode        string `json:"mode,omitempty"`     // join only: "transform" | "common-endpoints"
	MaxLevel    int    `json:"maxLevel,omitempty"` // 0 adaptive, -1 uncapped, >0 explicit
	Seed        uint64 `json:"seed"`
	Instances   int    `json:"instances,omitempty"`
	Groups      int    `json:"groups,omitempty"`
	MemoryWords int    `json:"memoryWords,omitempty"`
}

func (c configRequest) sizing() spatial.Sizing {
	return spatial.Sizing{Instances: c.Instances, Groups: c.Groups, MemoryWords: c.MemoryWords}
}

type createRequest struct {
	Name   string        `json:"name"`
	Kind   string        `json:"kind"`
	Config configRequest `json:"config"`
}

// updateRequest applies a batch of inserts or deletes to one side.
type updateRequest struct {
	// Op is "insert" (default) or "delete".
	Op string `json:"op,omitempty"`
	// Side selects the input: "left"/"right" for join and epsilon-join,
	// "inner"/"outer" for containment, omitted (or "data") for range.
	Side string `json:"side,omitempty"`
	// Rects holds hyper-rectangles as [dim][lo,hi] pairs (join, range,
	// containment).
	Rects [][][2]uint64 `json:"rects,omitempty"`
	// Points holds points as coordinate arrays (epsilon-join).
	Points [][]uint64 `json:"points,omitempty"`
}

type updateResponse struct {
	Applied int              `json:"applied"`
	Counts  map[string]int64 `json:"counts"`
	// Deduped reports that an Idempotency-Key request was already applied
	// by an earlier attempt: nothing changed, Applied is 0, and the 200 is
	// the replayed acknowledgement.
	Deduped bool `json:"deduped,omitempty"`
}

// estimateRequest parameterizes an estimate. Only range queries need one.
type estimateRequest struct {
	// Query is the range-query hyper-rectangle as [dim][lo,hi] pairs.
	Query [][2]uint64 `json:"query,omitempty"`
	// Queries batches many range queries into one request: all of them are
	// answered from ONE pinned estimator view with shared kernel scratch,
	// and the response is a batchEstimateResponse. Range estimators only.
	Queries [][][2]uint64 `json:"queries,omitempty"`
	// Extended selects the Definition 4 extended join
	// (ModeCommonEndpoints join estimators only).
	Extended bool `json:"extended,omitempty"`
}

// batchEstimateResponse answers a Queries batch: one result per query, in
// request order, all valid queries computed against the same view. A
// malformed query yields a result whose Error field is set instead of
// failing the whole batch - fan-out aggregators depend on the other
// queries still being answered.
type batchEstimateResponse struct {
	Results []*estimateResponse `json:"results"`
	// Partial, PartitionsAnswered and PartitionsTotal mirror the single
	// estimate response's degraded-read report (see estimateResponse).
	Partial            bool `json:"partial,omitempty"`
	PartitionsAnswered int  `json:"partitions_answered,omitempty"`
	PartitionsTotal    int  `json:"partitions_total,omitempty"`
}

type estimateResponse struct {
	Kind string `json:"kind"`
	// Error reports a per-query failure inside a batch response; when set,
	// the other fields are meaningless.
	Error string `json:"error,omitempty"`
	// Cardinality is the boosted estimate clamped to be non-negative.
	Cardinality float64 `json:"cardinality"`
	// Value is the raw boosted estimate (median of group means).
	Value float64 `json:"value"`
	// Mean is the grand mean over all atomic instances.
	Mean float64 `json:"mean"`
	// StdErr estimates the standard error of one group mean.
	StdErr float64 `json:"stdErr"`
	// Selectivity is Cardinality normalized by the input sizes, when the
	// inputs are non-empty.
	Selectivity *float64         `json:"selectivity,omitempty"`
	Counts      map[string]int64 `json:"counts"`
	Instances   int              `json:"instances"`
	// Partial reports a degraded cluster read: the estimate merges only
	// the reachable partitions (a bounded under-count; sketches are
	// linear, so the answer is exact over the partitions it did reach).
	Partial bool `json:"partial,omitempty"`
	// PartitionsAnswered is how many partitions the merge includes (only
	// set on partial responses).
	PartitionsAnswered int `json:"partitions_answered,omitempty"`
	// PartitionsTotal is the estimator's partition count (only set on
	// partial responses).
	PartitionsTotal int `json:"partitions_total,omitempty"`
}

type infoResponse struct {
	Name       string           `json:"name"`
	Kind       string           `json:"kind"`
	Config     any              `json:"config"`
	Counts     map[string]int64 `json:"counts"`
	Instances  int              `json:"instances"`
	SpaceWords int              `json:"spaceWords"`
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies (snapshots of large synopses are a
// few MB; update batches should be chunked by the client).
const maxBodyBytes = 64 << 20

// readBody reads a (possibly gzip-encoded) binary request body. The
// decompressed size is bounded by maxBodyBytes like the raw size, so a
// tiny gzip bomb cannot smuggle an oversized snapshot past the limit.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	var rd io.Reader = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		gz, err := gzip.NewReader(rd)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad gzip body: %v", err)
			return nil, false
		}
		defer gz.Close()
		rd = io.LimitReader(gz, maxBodyBytes+1)
	}
	data, err := io.ReadAll(rd)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return nil, false
	}
	if len(data) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "decompressed body exceeds %d bytes", maxBodyBytes)
		return nil, false
	}
	return data, true
}

// writeSnapshot serves SPE1 snapshot bytes with a strong ETag (truncated
// SHA-256 of the uncompressed snapshot) honoring If-None-Match, and gzip
// content encoding when the client accepts it - snapshots cross the
// network during rebalances and replica bootstraps, and the envelope's
// counter planes compress well.
func writeSnapshot(w http.ResponseWriter, r *http.Request, kind spatial.Kind, data []byte) {
	// Strong ETags are representation-specific (RFC 9110): the gzip
	// variant gets its own tag (nginx's convention) so a cache can never
	// pair an identity body with a gzip validator or vice versa.
	gz := acceptsGzip(r)
	etag := snapshotETag(data)
	if gz {
		etag = etag[:len(etag)-1] + `-gzip"`
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Vary", "Accept-Encoding")
	w.Header().Set("X-Spatial-Kind", kind.String())
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if gz {
		w.Header().Set("Content-Encoding", "gzip")
		zw := gzip.NewWriter(w)
		zw.Write(data)
		zw.Close()
		return
	}
	w.Write(data)
}

// snapshotETag is the identity-representation validator of a snapshot:
// quoted truncated SHA-256 of the uncompressed bytes. Shared by the
// snapshot handler and the cluster read cache (which hashes local-owner
// partitions through the same function so its validators line up).
func snapshotETag(data []byte) string {
	sum := sha256.Sum256(data)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// acceptsGzip reports whether the request's Accept-Encoding accepts
// gzip - honoring "gzip;q=0", which explicitly refuses it (RFC 9110).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		q, ok := strings.CutPrefix(strings.ReplaceAll(strings.TrimSpace(params), " ", ""), "q=")
		if ok {
			if v, err := strconv.ParseFloat(q, 64); err == nil && v <= 0 {
				return false
			}
		}
		return true
	}
	return false
}

// etagMatches implements If-None-Match comparison against one strong tag.
func etagMatches(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// errAlreadyExists reports a create against a taken name.
var errAlreadyExists = errors.New("estimator already exists")

// errNotFoundLocal reports a mutation against a name this node does not
// hold.
var errNotFoundLocal = errors.New("estimator not found")

// readOnlyReplicaMsg answers external mutations on an active follower.
const readOnlyReplicaMsg = "node is a read-only replica (POST /admin/promote to take over)"

// createLocal builds and registers an estimator: a registry-binding
// change, so it holds the mutation gate exclusively and is logged before
// it becomes visible. With enforceBudget set (external creates; internal
// shard creates were budgeted at the routing node) the tenant's memory
// budget is checked under the registry lock, so concurrent creates
// cannot slip past it together.
func (s *Server) createLocal(ctx context.Context, req *createRequest, enforceBudget bool) (servable, error) {
	est, err := buildServable(req.Kind, req.Config)
	if err != nil {
		return nil, err
	}
	if gate := s.mutGate(); gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.ests[req.Name]; exists {
		return nil, fmt.Errorf("%w: %q", errAlreadyExists, req.Name)
	}
	if enforceBudget {
		if err := s.checkBudgetLocked(req.Name, int64(est.spaceWords())); err != nil {
			return nil, err
		}
	}
	if s.persist != nil {
		if err := s.persist.logCreate(ctx, req); err != nil {
			return nil, err
		}
		est.setTap(s.persist.updateTap(req.Name))
	}
	s.ests[req.Name] = est
	return est, nil
}

// deleteLocal removes an estimator binding (logged, exclusive gate),
// reporting whether it existed.
func (s *Server) deleteLocal(ctx context.Context, name string) (bool, error) {
	if gate := s.mutGate(); gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ests[name]; !ok {
		return false, nil
	}
	if s.persist != nil {
		if err := s.persist.logDelete(ctx, name); err != nil {
			return true, err
		}
	}
	delete(s.ests, name)
	// Ingest watermarks die with the binding: a recreated estimator must
	// not inherit them (WAL replay and replicas drop them at the same
	// point, so the mark state is identical however a node got here).
	// Deleting a shard also drops the base name's routing-level marks -
	// they are a non-durable fast path whose loss is always safe.
	s.sessions.dropKey(name)
	if base, _, ok := cluster.SplitShardName(name); ok {
		s.sessions.dropKey(base)
	}
	return true, nil
}

// applyUpdateLocal applies an update batch to a locally held estimator
// under the shared mutation gate, re-verifying the name binding and - in
// cluster mode - shard ownership, so a rebalance flip can never lose an
// update raced against it.
func (s *Server) applyUpdateLocal(name string, req *updateRequest) (int, error) {
	est, ok := s.lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", errNotFoundLocal, name)
	}
	var applied int
	err := s.withEstimator(name, est, func() error {
		if s.cluster != nil && cluster.IsShardName(name) && !s.cluster.owns(name) {
			return errNotOwner
		}
		var uerr error
		applied, uerr = est.update(req)
		return uerr
	})
	return applied, err
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "estimator name is required")
		return
	}
	s.serveCreate(w, r, &req)
}

// serveCreate finishes a decoded create - shared by the flat route (the
// key may carry an explicit "tenant/" prefix) and the tenant-scoped
// route (which qualified the key already). External creates validate the
// key syntax, require a registered tenant and enforce its budget;
// internal shard creates skip all three (the routing node did them).
func (s *Server) serveCreate(w http.ResponseWriter, r *http.Request, req *createRequest) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	external := !isInternal(r)
	if external {
		if err := validateCreateKey(req.Name); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.requireKnownTenant(req.Name); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	if s.cluster != nil && external {
		s.cluster.routeCreate(r.Context(), w, req)
		return
	}
	est, err := s.createLocal(r.Context(), req, external)
	if err != nil {
		var be *budgetError
		if errors.As(err, &be) {
			writeBudgetError(w, be)
			return
		}
		status := http.StatusBadRequest
		var lf *logFailure
		switch {
		case errors.Is(err, errAlreadyExists):
			status = http.StatusConflict
		case errors.As(err, &lf):
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, infoResponse{
		Name: req.Name, Kind: est.kind().String(), Config: est.configJSON(),
		Counts: est.counts(), Instances: est.instances(), SpaceWords: est.spaceWords(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if s.cluster != nil && !isInternal(r) {
		s.cluster.routeList(r.Context(), w)
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.ests))
	for name := range s.ests {
		names = append(names, name)
	}
	kinds := make(map[string]string, len(names))
	for name, e := range s.ests {
		kinds[name] = e.kind().String()
	}
	s.mu.RUnlock()
	sort.Strings(names)
	type entry struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	out := make([]entry, len(names))
	for i, name := range names {
		out[i] = entry{Name: name, Kind: kinds[name]}
	}
	writeJSON(w, http.StatusOK, map[string]any{"estimators": out})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil && !isInternal(r) && !cluster.IsShardName(name) {
		s.cluster.routeInfo(r.Context(), w, name)
		return
	}
	est, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	writeJSON(w, http.StatusOK, infoResponse{
		Name: name, Kind: est.kind().String(), Config: est.configJSON(),
		Counts: est.counts(), Instances: est.instances(), SpaceWords: est.spaceWords(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	name := r.PathValue("name")
	if s.cluster != nil && !isInternal(r) && !cluster.IsShardName(name) {
		s.cluster.routeDelete(r.Context(), w, name)
		return
	}
	found, err := s.deleteLocal(r.Context(), name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "logging delete: %v", err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	name := r.PathValue("name")
	var req updateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Op == "" {
		req.Op = "insert"
	}
	if req.Op != "insert" && req.Op != "delete" {
		writeError(w, http.StatusBadRequest, "op %q is neither insert nor delete", req.Op)
		return
	}
	if key := r.Header.Get("Idempotency-Key"); key != "" && !isInternal(r) {
		s.serveIdempotentUpdate(r.Context(), w, name, key, &req)
		return
	}
	if s.cluster != nil && !isInternal(r) {
		s.cluster.routeUpdate(r.Context(), w, name, &req)
		return
	}
	// Under persistence, the gate brackets the whole logged mutation (the
	// estimator's update tap appends to the WAL before applying), so a
	// checkpoint cut never splits it; in cluster mode the same gate hold
	// orders the update against rebalance ownership flips.
	applied, err := s.applyUpdateLocal(name, &req)
	if errors.Is(err, errNotFoundLocal) {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	if err == errStaleBinding || errors.Is(err, errNotOwner) {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	var lf *logFailure
	if errors.As(err, &lf) {
		// A durability outage, not a client mistake: 500 so 5xx-based
		// alerting sees it.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var counts map[string]int64
	if est, ok := s.lookup(name); ok {
		counts = est.counts()
	}
	writeJSON(w, http.StatusOK, updateResponse{Applied: applied, Counts: counts})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req estimateRequest
	if r.Method == http.MethodPost && r.ContentLength != 0 {
		if !decodeJSON(w, r, &req) {
			return
		}
	}
	if s.cluster != nil && !isInternal(r) && !cluster.IsShardName(name) {
		partialOK := r.URL.Query().Get("partial") == "ok"
		s.cluster.routeEstimate(r.Context(), w, name, &req, partialOK)
		return
	}
	est, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	serveEstimate(w, est, &req)
}

// serveEstimate answers a decoded estimate request from one estimator -
// shared by the local path and the cluster's gathered path.
func serveEstimate(w http.ResponseWriter, est servable, req *estimateRequest) {
	if len(req.Queries) > 0 {
		if len(req.Query) > 0 {
			writeError(w, http.StatusBadRequest, "use either query or queries, not both")
			return
		}
		resp, err := est.estimateBatch(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp, err := est.estimate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cluster != nil && !isInternal(r) && !cluster.IsShardName(name) {
		// The cluster-wide snapshot: gather every partition and serve the
		// merged envelope - bit-identical to a single-node build of the
		// same update stream.
		est, err := s.cluster.gather(r.Context(), name)
		if errors.Is(err, errNotFoundLocal) {
			writeError(w, http.StatusNotFound, "no estimator %q", name)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		data, err := est.snapshot()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeSnapshot(w, r, est.kind(), data)
		return
	}
	est, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	if s.cluster != nil && cluster.IsShardName(name) && !s.cluster.owns(name) {
		// A scatter reading this shard here would race the rebalance that
		// just moved it; send the reader back to the map.
		writeError(w, http.StatusConflict, "%v", errNotOwner)
		return
	}
	data, err := est.snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeSnapshot(w, r, est.kind(), data)
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	name := r.PathValue("name")
	if s.cluster != nil && !isInternal(r) && !cluster.IsShardName(name) {
		writeError(w, http.StatusConflict,
			"snapshot PUT of a whole estimator is not supported in cluster mode; PUT individual shards or create and re-ingest")
		return
	}
	external := !isInternal(r)
	if external {
		if err := validateCreateKey(name); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.requireKnownTenant(name); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	est, err := restoreServable(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Replacing a binding excludes in-flight updates on the old estimator
	// (they re-verify the binding under the shared gate), so the log can
	// never apply an old object's update to the restored one on replay.
	// The snapshot bytes (up to 64 MB) are logged BEFORE taking the
	// registry lock: the exclusive gate already serializes this against
	// every other logged mutation, and holding s.mu across a group commit
	// would stall read traffic for the whole write.
	if gate := s.mutGate(); gate != nil {
		gate.Lock()
		defer gate.Unlock()
	}
	if external {
		// The budget delta of a replace is new minus old words; a shrink
		// always passes. Checked before the WAL append so a rejected PUT
		// leaves no log record.
		s.mu.RLock()
		var oldWords int64
		if old, okOld := s.ests[name]; okOld {
			oldWords = int64(old.spaceWords())
		}
		err := s.checkBudgetLocked(name, int64(est.spaceWords())-oldWords)
		s.mu.RUnlock()
		var be *budgetError
		if errors.As(err, &be) {
			writeBudgetError(w, be)
			return
		}
	}
	if s.persist != nil {
		if err := s.persist.logSnapshot(r.Context(), walOpPut, name, data); err != nil {
			writeError(w, http.StatusInternalServerError, "logging snapshot put: %v", err)
			return
		}
		est.setTap(s.persist.updateTap(name))
	}
	s.mu.Lock()
	s.ests[name] = est
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, infoResponse{
		Name: name, Kind: est.kind().String(), Config: est.configJSON(),
		Counts: est.counts(), Instances: est.instances(), SpaceWords: est.spaceWords(),
	})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	name := r.PathValue("name")
	if s.cluster != nil && !isInternal(r) && !cluster.IsShardName(name) {
		writeError(w, http.StatusConflict,
			"merge into a partitioned estimator is not supported in cluster mode; merge into individual shards")
		return
	}
	est, ok := s.lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no estimator %q", name)
		return
	}
	if !isInternal(r) {
		// A merge never grows the estimator (configs must match), but a
		// budget lowered below current usage still rejects further folds:
		// the tenant must shed estimators before adding mass.
		s.mu.RLock()
		err := s.checkBudgetLocked(name, 0)
		s.mu.RUnlock()
		var be *budgetError
		if errors.As(err, &be) {
			writeBudgetError(w, be)
			return
		}
	}
	data, okBody := readBody(w, r)
	if !okBody {
		return
	}
	err := s.withEstimator(name, est, func() error {
		if s.persist != nil {
			// Logged before the config check: a rejected merge replays as
			// the same deterministic rejection (see persist.go).
			if err := s.persist.logSnapshot(r.Context(), walOpMerge, name, data); err != nil {
				return err
			}
		}
		return est.mergeSnapshot(data)
	})
	var lf *logFailure
	if errors.As(err, &lf) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{Counts: est.counts()})
}

// handleCheckpoint forces a durable checkpoint; it answers 409 when the
// server runs without persistence.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeError(w, http.StatusConflict, "persistence is disabled (start with -data-dir)")
		return
	}
	res, err := s.persist.checkpoint(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// ---- geometry decoding ----

func decodeRects(in [][][2]uint64) []geo.HyperRect {
	rects := make([]geo.HyperRect, len(in))
	for i, r := range in {
		h := make(geo.HyperRect, len(r))
		for d, iv := range r {
			h[d] = geo.Interval{Lo: iv[0], Hi: iv[1]}
		}
		rects[i] = h
	}
	return rects
}

func decodePoints(in [][]uint64) []geo.Point {
	pts := make([]geo.Point, len(in))
	for i, p := range in {
		pts[i] = geo.Point(p)
	}
	return pts
}

func decodeQuery(q [][2]uint64) geo.HyperRect {
	h := make(geo.HyperRect, len(q))
	for d, iv := range q {
		h[d] = geo.Interval{Lo: iv[0], Hi: iv[1]}
	}
	return h
}

// estimateWire converts a library estimate plus context into the wire
// response. selDen is the product of the input sizes (0 when undefined).
func estimateWire(kind spatial.Kind, est spatial.Estimate, counts map[string]int64, selDen float64) *estimateResponse {
	resp := &estimateResponse{
		Kind:        kind.String(),
		Cardinality: est.Clamped(),
		Value:       est.Value,
		Mean:        est.Mean,
		StdErr:      est.StdErr(),
		Counts:      counts,
		Instances:   est.Instances,
	}
	if selDen > 0 {
		sel := est.Clamped() / selDen
		resp.Selectivity = &sel
	}
	return resp
}
