package core

import (
	"fmt"
	"math"

	"repro/geo"
)

// CESketch is the common-endpoint sketch set of Appendices B.1 and C: per
// dimension the letters are I (dyadic interval cover), E (dyadic endpoint
// covers), L (leaf variable of the lower endpoint) and U (leaf variable of
// the upper endpoint), giving 4^d counters per instance. Unlike JoinSketch
// it needs no endpoint transformation: the L/U sketches explicitly count
// coinciding endpoints, and the estimators subtract the over-counts
// (Lemma 13 for strict overlap, the Appendix C inclusion-exclusion for the
// extended join of Definition 4).
//
// Letter encoding: counter index is a base-4 number with digit i in
// {0=I, 1=E, 2=L, 3=U} for dimension i.
type CESketch struct {
	plan     *Plan
	counters []int64 // [instance * 4^d + w]
	count    int64
	buf      *coverBuf
	sums     *letterSums
}

// CE letter digits.
const (
	ceI = 0
	ceE = 1
	ceL = 2
	ceU = 3
)

// NewCESketch returns an empty common-endpoint sketch.
func (p *Plan) NewCESketch() *CESketch {
	nw := 1
	for i := 0; i < p.cfg.Dims; i++ {
		nw *= 4
	}
	return &CESketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances*nw),
		buf:      newCoverBuf(p.cfg.Dims),
		sums:     newLetterSums(p.cfg.Dims, 4, p.cfg.Instances),
	}
}

// Plan returns the plan the sketch was built from.
func (s *CESketch) Plan() *Plan { return s.plan }

// Count returns the number of objects summarized.
func (s *CESketch) Count() int64 { return s.count }

// Insert adds a hyper-rectangle to the sketch.
func (s *CESketch) Insert(rect geo.HyperRect) error { return s.update(rect, +1) }

// Delete removes a previously inserted hyper-rectangle.
func (s *CESketch) Delete(rect geo.HyperRect) error { return s.update(rect, -1) }

func (s *CESketch) update(rect geo.HyperRect, sign int64) error {
	if err := s.plan.checkRect(rect); err != nil {
		return err
	}
	s.buf.load(s.plan, rect)
	s.applyCovers(rect, s.buf, sign, s.counters, s.sums)
	s.count += sign
	return nil
}

// applyCovers folds one object's covers into dst, id-major as in
// JoinSketch.applyCovers but over the four {I,E,L,U} letter planes.
func (s *CESketch) applyCovers(rect geo.HyperRect, buf *coverBuf, sign int64, dst []int64, sums *letterSums) {
	p := s.plan
	d := p.cfg.Dims
	inst := p.cfg.Instances
	nw := pow4(d)
	sums.reset()
	for i := 0; i < d; i++ {
		lo, hi := p.famRange(i)
		p.bank.SumSignsMany(buf.cover[i], lo, hi, sums.plane(i, ceI))
		eAcc := sums.plane(i, ceE)
		p.bank.SumSignsMany(buf.ptLo[i], lo, hi, eAcc)
		p.bank.SumSignsMany(buf.ptHi[i], lo, hi, eAcc)
		p.bank.AddSigns(p.doms[i].LeafID(rect[i].Lo), lo, hi, sums.plane(i, ceL))
		p.bank.AddSigns(p.doms[i].LeafID(rect[i].Hi), lo, hi, sums.plane(i, ceU))
	}
	var lp [MaxDims][4][]int64
	for i := 0; i < d; i++ {
		for l := 0; l < 4; l++ {
			lp[i][l] = sums.plane(i, l)
		}
	}
	for k := 0; k < inst; k++ {
		base := k * nw
		for w := 0; w < nw; w++ {
			prod := sign
			ww := w
			for i := 0; i < d; i++ {
				prod *= lp[i][ww&3][k]
				ww >>= 2
			}
			dst[base+w] += prod
		}
	}
}

// InsertAll bulk-loads rects, validating all of them first and sharding
// across objects exactly as JoinSketch.InsertAll does.
func (s *CESketch) InsertAll(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := s.plan.checkRect(r); err != nil {
			return err
		}
	}
	p := s.plan
	shardBulk(len(rects), s.counters, func(start, end int, dst []int64) {
		buf := newCoverBuf(p.cfg.Dims)
		sums := newLetterSums(p.cfg.Dims, 4, p.cfg.Instances)
		for idx := start; idx < end; idx++ {
			buf.load(p, rects[idx])
			s.applyCovers(rects[idx], buf, +1, dst, sums)
		}
	})
	s.count += int64(len(rects))
	return nil
}

// Merge adds the counters of other into s. Both sketches must come from the
// same plan; merging the sketches of disjoint streams is equivalent to
// sketching their union.
func (s *CESketch) Merge(other *CESketch) error {
	return mergeSketch(s.plan, other.plan, s.counters, other.counters, &s.count, other.count)
}

// Counter returns the X_w counter of one instance; w is the base-4 letter
// index. Exposed for tests.
func (s *CESketch) Counter(instance, w int) int64 {
	return s.counters[instance*pow4(s.plan.cfg.Dims)+w]
}

// cePairing is one per-dimension pairing term of a CE estimator: the X-side
// letter, the Y-side letter and the coefficient it carries.
type cePairing struct {
	x, y  int
	coeff int64
}

// ceStrictPairings implements the per-dimension factor of the strict
// estimator (Lemma 13): (X_I Y_E + X_E Y_I - 2 X_L Y_U - 2 X_U Y_L -
// X_L Y_L - X_U Y_U) / 2. Per overlapping dimension the factor contributes
// 2 in expectation (hence the global 2^-d), and the subtraction removes the
// meet/shared-endpoint over-counts.
var ceStrictPairings = []cePairing{
	{ceI, ceE, 1}, {ceE, ceI, 1},
	{ceL, ceU, -2}, {ceU, ceL, -2},
	{ceL, ceL, -1}, {ceU, ceU, -1},
}

// ceExtendedPairings implements the per-dimension factor of the extended
// (Definition 4) estimator of Appendix C: (X_I Y_E + X_E Y_I - X_L Y_L -
// X_U Y_U) / 2, so that a "meet" in a dimension counts as intersecting.
var ceExtendedPairings = []cePairing{
	{ceI, ceE, 1}, {ceE, ceI, 1},
	{ceL, ceL, -1}, {ceU, ceU, -1},
}

// EstimateJoinCE estimates |R join_o S| (strict overlap, Definition 1) from
// common-endpoint sketches, valid for arbitrary inputs - Assumption 1 is
// NOT required (Appendix C, Lemma 13 and its d-dimensional product
// generalization).
func EstimateJoinCE(x, y *CESketch) (Estimate, error) {
	return estimateCE(x, y, ceStrictPairings)
}

// EstimateJoinExtCE estimates the extended join |R join+_o S| of
// Definition 4 (boundary contact counts) from common-endpoint sketches
// (Appendix C).
func EstimateJoinExtCE(x, y *CESketch) (Estimate, error) {
	return estimateCE(x, y, ceExtendedPairings)
}

func estimateCE(x, y *CESketch, pairings []cePairing) (Estimate, error) {
	if !samePlan(x.plan, y.plan) {
		return Estimate{}, fmt.Errorf("core: sketches come from different plans")
	}
	p := x.plan
	sc := p.GetScratch()
	defer p.PutScratch(sc)
	d := p.cfg.Dims
	nw := pow4(d)
	scale := 1.0 / float64(int64(1)<<uint(d))
	// Expand the product of per-dimension pairing choices once into a flat
	// term list, then sweep it per instance - the recursion used to run per
	// instance, re-deriving the same len(pairings)^d terms every time. The
	// expansion order (dimension 0 outermost) and the per-term multiply
	// order are preserved, so estimates are bit-identical.
	nterms := 1
	for i := 0; i < d; i++ {
		nterms *= len(pairings)
	}
	wx, wy, coeff := sc.ceTerms(nterms)
	expandCE(d, pairings, wx, wy, coeff)
	zs := sc.instSums(p)
	for inst := range zs {
		xbase := x.counters[inst*nw : (inst+1)*nw]
		ybase := y.counters[inst*nw : (inst+1)*nw]
		var z float64
		for t := range coeff {
			z += coeff[t] * float64(xbase[wx[t]]) * float64(ybase[wy[t]])
		}
		zs[inst] = z * scale
	}
	return boostWith(zs, p.cfg.Groups, sc.medianBuf(p)), nil
}

// expandCE fills the flattened pairing expansion: term i holds the X- and
// Y-side counter offsets and the signed coefficient of one leaf of the
// per-dimension pairing product, enumerated depth-first with dimension 0
// outermost (the historical recursion order).
func expandCE(d int, pairings []cePairing, wx, wy []int32, coeff []float64) {
	n := 0
	var rec func(dim, ax, ay int, c int64)
	rec = func(dim, ax, ay int, c int64) {
		if dim == d {
			wx[n], wy[n], coeff[n] = int32(ax), int32(ay), float64(c)
			n++
			return
		}
		shift := 2 * uint(dim)
		for _, pr := range pairings {
			rec(dim+1, ax|pr.x<<shift, ay|pr.y<<shift, c*pr.coeff)
		}
	}
	rec(0, 0, 0, 1)
}

// CESelfJoinWeight returns the paper's SJ(R) accounting for CE sketches in
// one dimension: SJ(X_I) + 2*SJ(X_L) + 2*SJ(X_U) (Appendix C). Provided as
// a helper for variance reasoning; exact SJ terms come from internal/exact.
func CESelfJoinWeight(sjI, sjL, sjU float64) float64 {
	return sjI + 2*sjL + 2*sjU
}

// PlanCEJoinInstances sizes the 1-d strict common-endpoint estimator per
// Lemma 13: Var[Z] <= 2 * SJ(R) * SJ(S) with the CESelfJoinWeight
// accounting, so k1 = ceil(8 * 2 * sjR * sjS / (eps^2 * E^2)). The paper
// proves the bound for one dimension; for d > 1 this planner applies the
// same form with the Theorem 3 dimensional factor as a documented
// heuristic.
func PlanCEJoinInstances(dims int, g Guarantee, sjR, sjS, resultLowerBound float64) (k1, k2 int, err error) {
	if err := g.validate(); err != nil {
		return 0, 0, err
	}
	if !(sjR > 0 && sjS > 0 && resultLowerBound > 0) {
		return 0, 0, fmt.Errorf("core: self-join sizes and result bound must be positive")
	}
	factor := 2.0
	if dims > 1 {
		factor = 2 * JoinVarianceFactor(dims) * 4 // heuristic extension, see doc
	}
	k1f := math.Ceil(8 * factor * sjR * sjS / (g.Eps * g.Eps * resultLowerBound * resultLowerBound))
	if k1f < 1 {
		k1f = 1
	}
	if k1f > 1<<30 {
		return 0, 0, fmt.Errorf("core: guarantee requires %g instances", k1f)
	}
	return int(k1f), PlanGroups(g.Phi), nil
}

func pow4(d int) int {
	n := 1
	for i := 0; i < d; i++ {
		n *= 4
	}
	return n
}
