package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startEcho runs a test server that records whether it was reached.
func startEcho(t *testing.T) (*httptest.Server, *int64) {
	t.Helper()
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(strings.Repeat("x", 256)))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func TestRefuseDoesNotForward(t *testing.T) {
	srv, hits := startEcho(t)
	in := New(1)
	host := strings.TrimPrefix(srv.URL, "http://")
	in.NameHost(host, "b")
	in.Add(Rule{From: "a", To: "b", Kind: KindRefuse})
	client := &http.Client{Transport: in.Transport("a", nil)}
	if _, err := client.Post(srv.URL+"/v1/estimators", "application/json", bytes.NewReader([]byte("{}"))); err == nil {
		t.Fatal("want refused connection, got success")
	}
	if *hits != 0 {
		t.Fatalf("request was forwarded despite refuse rule: %d hits", *hits)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Kind != "refuse" || ev[0].From != "a" || ev[0].To != "b" {
		t.Fatalf("bad event log: %+v", ev)
	}
}

func TestStatusFabricatedWithoutForwarding(t *testing.T) {
	srv, hits := startEcho(t)
	in := New(1)
	in.NameHost(strings.TrimPrefix(srv.URL, "http://"), "b")
	in.Add(Rule{To: "b", Kind: KindStatus, Status: 503})
	client := &http.Client{Transport: in.Transport("a", nil)}
	resp, err := client.Get(srv.URL + "/v1/estimators")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if *hits != 0 {
		t.Fatalf("request was forwarded despite status rule: %d hits", *hits)
	}
}

func TestTruncateTearsResponse(t *testing.T) {
	srv, hits := startEcho(t)
	in := New(1)
	in.NameHost(strings.TrimPrefix(srv.URL, "http://"), "b")
	in.Add(Rule{To: "b", Methods: "GET", Kind: KindTruncate})
	client := &http.Client{Transport: in.Transport("a", nil)}
	resp, err := client.Get(srv.URL + "/big")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("want torn read, got clean %d bytes", len(body))
	}
	if len(body) == 0 || len(body) >= 256 {
		t.Fatalf("truncated body length = %d, want a strict prefix", len(body))
	}
	if *hits != 1 {
		t.Fatalf("hits = %d, want 1 (truncate must forward)", *hits)
	}
	// The method filter must exempt POSTs.
	resp, err = client.Post(srv.URL+"/big", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatalf("POST should be exempt from GET-only truncation: %v", err)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	srv, hits := startEcho(t)
	in := New(1)
	in.NameHost(strings.TrimPrefix(srv.URL, "http://"), "b")
	in.Add(Rule{To: "b", Kind: KindLatency, Latency: 5 * time.Second})
	client := &http.Client{Transport: in.Transport("a", nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/x", strings.NewReader("{}"))
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("want context error during latency spike")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("latency fault ignored context: took %v", d)
	}
	if *hits != 0 {
		t.Fatalf("deadline-killed request was still forwarded: %d hits", *hits)
	}
}

func TestProbabilityAndSeedDeterminism(t *testing.T) {
	fire := func(seed int64) []bool {
		in := New(seed)
		in.Add(Rule{Kind: KindRefuse, P: 0.5})
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = in.match("a", "b", "GET", false, "probe")
		}
		return out
	}
	a, b := fire(42), fire(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("P=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestPartitionAsymmetry(t *testing.T) {
	in := New(1)
	id := in.Partition("a", "b")
	if _, ok := in.match("a", "b", "GET", false, ""); !ok {
		t.Fatal("a->b should be cut")
	}
	if _, ok := in.match("b", "a", "GET", false, ""); ok {
		t.Fatal("partition must be asymmetric: b->a should pass")
	}
	in.Remove(id)
	if _, ok := in.match("a", "b", "GET", false, ""); ok {
		t.Fatal("removed partition still firing")
	}
}

func TestWALHooks(t *testing.T) {
	dir := t.TempDir()
	open := func() *os.File {
		f, err := os.OpenFile(filepath.Join(dir, "seg"), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	in := New(1)
	h := in.WALHooks("a")

	f := open()
	in.Add(Rule{To: "a", Kind: KindWALWrite})
	n, err := h.Write(f, []byte("hello world"))
	if n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("full-fail write: n=%d err=%v, want 0, ENOSPC", n, err)
	}
	if st, _ := f.Stat(); st.Size() != 0 {
		t.Fatalf("full-fail write landed %d bytes", st.Size())
	}

	in.Heal()
	in.Add(Rule{To: "a", Kind: KindWALShortWrite})
	f = open()
	n, err = h.Write(f, []byte("hello world"))
	if n != 5 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write: n=%d err=%v, want 5, ENOSPC", n, err)
	}
	if st, _ := f.Stat(); st.Size() != 5 {
		t.Fatalf("short write landed %d bytes, want 5", st.Size())
	}

	in.Heal()
	in.Add(Rule{To: "a", Kind: KindWALSync})
	if err := h.Sync(f); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync fault: %v, want EIO", err)
	}
	// A sync-only rule must not disturb writes.
	if n, err := h.Write(f, []byte("ok")); n != 2 || err != nil {
		t.Fatalf("write under sync-only rule: n=%d err=%v", n, err)
	}

	in.Heal()
	if err := h.Sync(f); err != nil {
		t.Fatalf("healed sync: %v", err)
	}
	f.Close()
}

func TestWALRulesDoNotMatchHTTP(t *testing.T) {
	in := New(1)
	in.Add(Rule{Kind: KindWALWrite})
	if _, ok := in.match("a", "b", "GET", false, ""); ok {
		t.Fatal("WAL rule fired on an HTTP probe")
	}
	in.Heal()
	in.Add(Rule{Kind: KindRefuse})
	if _, ok := in.match("", "a", "", true, ""); ok {
		t.Fatal("HTTP rule fired on a WAL probe")
	}
}

func TestParseSoakSpec(t *testing.T) {
	spec, err := ParseSoakSpec("seed=9, rounds=3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 9 || spec.Rounds != 3 || spec.Writers != DefaultSoakSpec.Writers {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := ParseSoakSpec("bogus=1"); err == nil {
		t.Fatal("unknown key should error")
	}
	if _, err := ParseSoakSpec("seed"); err == nil {
		t.Fatal("malformed entry should error")
	}
	spec, err = ParseSoakSpec("")
	if err != nil || spec != DefaultSoakSpec {
		t.Fatalf("empty spec: %+v, %v", spec, err)
	}
}

func TestDump(t *testing.T) {
	in := New(1)
	in.Add(Rule{From: "a", To: "b", Kind: KindRefuse})
	in.match("a", "b", "GET", false, "GET /v1/x")
	var buf bytes.Buffer
	if err := in.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kind=refuse from=a to=b GET /v1/x") {
		t.Fatalf("dump output: %q", buf.String())
	}
}

// TestURLHostResolution checks host:port extraction matches url.URL.Host.
func TestURLHostResolution(t *testing.T) {
	u, _ := url.Parse("http://127.0.0.1:9999/v1/x")
	in := New(1)
	in.NameHost("127.0.0.1:9999", "n1")
	if got := in.nodeName(u.Host); got != "n1" {
		t.Fatalf("nodeName = %q, want n1", got)
	}
	if got := in.nodeName("unknown:1"); got != "unknown:1" {
		t.Fatalf("unknown host should pass through, got %q", got)
	}
}
