package experiments

import (
	"fmt"
	"math"

	spatial "repro"
	"repro/geo"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dyadic"
	"repro/internal/exact"
)

// Figures 5 and 6: relative error vs dataset size at equal space, for
// uniform (zipf 0) and skewed (zipf 1) 2-d rectangle joins. The paper uses
// dataset sizes 30K-500K with an EH of level 6 (~36K words); the scaled
// run keeps the size ratios and scales the space budget with the square
// root of the scale (error bands depend on instances vs selectivity, not
// raw size).

func sizeSweep(name, title string, zipf float64, opt Options) (Table, error) {
	opt = opt.withDefaults()
	// Scaling note (see EXPERIMENTS.md): the estimator's relative error at
	// fixed space depends on the data DENSITY (objects per unit area), not
	// on the raw object count - self-join sizes grow ~linearly in N for
	// sparse data while the join size grows quadratically. To preserve the
	// paper's error regime at reduced object counts we shrink the domain
	// with the scale (constant density) and keep the paper's object-length
	// rule len ~ 3*sqrt(domain) ("O(sqrt(d_i))", Section 7.1).
	domain := scaledPow2(1<<14, opt.Scale, 1<<10)
	paperSizes := []int{30000, 100000, 200000, 300000, 400000, 500000}
	// The paper fixes the space at a level-6 EH (36481 words) and gives
	// every method the same budget; object counts scale, the synopsis does
	// not (its accuracy is what the figure studies).
	const ehLevel = 6
	g := 1 << uint(ehLevel)
	budget := 9*g*g - 6*g + 1
	ghLevel := ghLevelForWords(budget)

	tab := Table{
		Name:  name,
		Title: title,
		Header: []string{"dataset_size", "exact_join", "relerr_sketch", "relerr_eh", "relerr_gh",
			fmt.Sprintf("(domain %d, space %d words, EH level %d, GH level %d)", domain, budget, ehLevel, ghLevel)},
	}
	meanLen := 3 * math.Sqrt(float64(domain))
	ml := autoMaxLevel(meanLen)
	for i, paperN := range paperSizes {
		n := int(float64(paperN) * opt.Scale)
		if n < 100 {
			n = 100
		}
		r := datagen.MustRects(datagen.Spec{
			N: n, Dims: 2, Domain: domain, Zipf: zipf,
			MeanLen: []float64{meanLen, meanLen},
			Seed:    opt.Seed + uint64(i)*101,
		})
		s := datagen.MustRects(datagen.Spec{
			N: n, Dims: 2, Domain: domain, Zipf: zipf,
			MeanLen: []float64{meanLen, meanLen},
			Seed:    opt.Seed + uint64(i)*101 + 51,
		})
		exactVal := float64(exact.RectJoinCount(r, s))
		if exactVal == 0 {
			return Table{}, fmt.Errorf("experiments: empty join at size %d", n)
		}
		skErr, err := sketchJoinErr(r, s, domain, budget, ml, exactVal, opt)
		if err != nil {
			return Table{}, err
		}
		ghErr, ehErr, err := histogramJoinErrs(r, s, domain, ghLevel, ehLevel, exactVal)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(n), fi(exactVal), f(skErr), f(ehErr), f(ghErr), "",
		})
	}
	return tab, nil
}

// Fig5 regenerates Figure 5: error vs dataset size, uniform data (zipf 0).
// Expected shape: SKETCH and GH stable and comparable; EH clearly worse.
func Fig5(opt Options) (Table, error) {
	return sizeSweep("fig5", "relative error vs dataset size, zipf=0 (uniform), equal space", 0, opt)
}

// Fig6 regenerates Figure 6: error vs dataset size, skewed data (zipf 1).
// Expected shape: all three comparable, SKETCH marginally best.
func Fig6(opt Options) (Table, error) {
	return sizeSweep("fig6", "relative error vs dataset size, zipf=1 (skewed), equal space", 1, opt)
}

// fig78Point sizes a 1-d interval-join sketch for the paper's guarantee
// (eps = 0.3, phi = 0.01) from exact self-join sizes, returning the
// planned space and the measured error.
type fig78Point struct {
	n          int
	spaceWords int
	trueErr    float64
}

func fig78Sweep(opt Options) ([]fig78Point, error) {
	opt = opt.withDefaults()
	// Density-preserving scaling, as in sizeSweep: the flat space curve of
	// Figure 8 is a property of the collision-dominated self-join regime
	// (N large relative to the domain); shrinking N without shrinking the
	// domain would leave that regime. See EXPERIMENTS.md.
	domain := scaledPow2(1<<14, opt.Scale, 1<<9)
	guar := spatial.Guarantee{Eps: 0.3, Phi: 0.01}
	paperSizes := []int{50000, 100000, 200000, 300000, 400000, 500000}
	meanLen := 3 * math.Sqrt(float64(domain))
	mlRaw := autoMaxLevel(meanLen)

	var points []fig78Point
	for i, paperN := range paperSizes {
		n := int(float64(paperN) * opt.Scale)
		if n < 200 {
			n = 200
		}
		r := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain,
			MeanLen: []float64{meanLen}, Seed: opt.Seed + uint64(i)*13})
		s := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain,
			MeanLen: []float64{meanLen}, Seed: opt.Seed + uint64(i)*13 + 7})
		exactVal := float64(exact.IntervalJoinCount(r, s))
		if exactVal == 0 {
			return nil, fmt.Errorf("experiments: empty join at size %d", n)
		}
		// Exact self-join sizes on the transformed inputs with the level
		// cap the estimator will use (the paper's best-case "historic
		// data" sanity bounds, Section 2.3).
		h := log2ceil(geo.TransformDomain(domain))
		dom := dyadic.MustNew(h)
		tr := make([]geo.HyperRect, n)
		ts := make([]geo.HyperRect, n)
		for j := range r {
			tr[j] = geo.TransformKeepRect(r[j])
			ts[j] = geo.TransformShrinkRect(s[j])
		}
		sjR, err := exact.SelfJoinSizes([]dyadic.Domain{dom}, []int{mlRaw}, tr)
		if err != nil {
			return nil, err
		}
		sjS, err := exact.SelfJoinSizes([]dyadic.Domain{dom}, []int{mlRaw}, ts)
		if err != nil {
			return nil, err
		}
		instances, groups, err := spatial.PlanJoin(1, guar, sjR.Total, sjS.Total, exactVal)
		if err != nil {
			return nil, err
		}
		space := core.JoinSpaceWords(1, instances)

		// Run once at the planned size (capped for tractability at small
		// scale: the guarantee only strengthens with more instances, so a
		// cap would weaken it - instead we cap by raising eps never; we
		// just run what was planned).
		est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
			Dims: 1, DomainSize: domain,
			Sizing:   spatial.Sizing{Instances: instances, Groups: groups},
			MaxLevel: mlRaw,
			Seed:     opt.Seed + uint64(i)*977,
		})
		if err != nil {
			return nil, err
		}
		if err := est.InsertLeftBulk(r); err != nil {
			return nil, err
		}
		if err := est.InsertRightBulk(s); err != nil {
			return nil, err
		}
		card, err := est.Cardinality()
		if err != nil {
			return nil, err
		}
		points = append(points, fig78Point{
			n: n, spaceWords: space, trueErr: relErr(card.Clamped(), exactVal),
		})
	}
	return points, nil
}

// Fig7 regenerates Figure 7: the measured relative error vs the guaranteed
// bound (0.3 at 99% confidence) as dataset size grows. Expected shape: the
// true error sits far below the guarantee at every size.
func Fig7(opt Options) (Table, error) {
	points, err := fig78Sweep(opt)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		Name:   "fig7",
		Title:  "true relative error vs guaranteed bound, eps=0.3 phi=0.01 (1-d joins)",
		Header: []string{"dataset_size", "true_relerr", "guaranteed_bound"},
	}
	for _, p := range points {
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(p.n), f(p.trueErr), "0.3000"})
	}
	return tab, nil
}

// Fig8 regenerates Figure 8: the space the Theorem 1 sizing requires for
// the fixed guarantee as dataset size grows. Expected shape: roughly
// constant, because SJ(R)*SJ(S)/E^2 is scale-free for a fixed
// distribution.
func Fig8(opt Options) (Table, error) {
	points, err := fig78Sweep(opt)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		Name:   "fig8",
		Title:  "sketch space for guaranteed eps=0.3 phi=0.01 vs dataset size (1-d joins)",
		Header: []string{"dataset_size", "space_words"},
	}
	for _, p := range points {
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(p.n), fmt.Sprint(p.spaceWords)})
	}
	return tab, nil
}

// landJoin regenerates one of Figures 9-11: relative error vs allocated
// space on a pair of land-use analog datasets.
func landJoin(name, title string, left, right datagen.LandDataset, opt Options) (Table, error) {
	opt = opt.withDefaults()
	if left.Domain != right.Domain {
		return Table{}, fmt.Errorf("experiments: land layers on different domains")
	}
	domain := left.Domain
	exactVal := float64(exact.RectJoinCount(left.Rects, right.Rects))
	if exactVal == 0 {
		return Table{}, fmt.Errorf("experiments: empty land join %s", name)
	}
	// The paper sweeps 0-40K words; keep the sweep shape under scaling.
	budgets := []int{1000, 2500, 5000, 10000, 20000, 40000}
	// Object extents in the land analogs are a few hundred coordinates.
	ml := autoMaxLevel(300)

	tab := Table{
		Name:  name,
		Title: title,
		Header: []string{"space_words", "relerr_sketch", "relerr_eh", "relerr_gh",
			fmt.Sprintf("(|R|=%d |S|=%d exact=%d)", len(left.Rects), len(right.Rects), uint64(exactVal))},
	}
	for _, budget := range budgets {
		skErr, err := sketchJoinErr(left.Rects, right.Rects, domain, budget, ml, exactVal, opt)
		if err != nil {
			return Table{}, err
		}
		ghErr, ehErr, err := histogramJoinErrs(left.Rects, right.Rects, domain,
			ghLevelForWords(budget), ehLevelForWords(budget), exactVal)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(budget), f(skErr), f(ehErr), f(ghErr), ""})
	}
	return tab, nil
}

// Fig9 regenerates Figure 9: LANDC join LANDO error vs space. Expected
// shape: SKETCH declines steadily with space; EH good when coarse but
// erratic as the grid refines; GH between.
func Fig9(opt Options) (Table, error) {
	opt = opt.withDefaults()
	return landJoin("fig9", "relative error vs space, LANDC join LANDO (land-use analogs)",
		datagen.Landc(opt.Seed, landScale(opt)), datagen.Lando(opt.Seed, landScale(opt)), opt)
}

// Fig10 regenerates Figure 10: LANDC join SOIL error vs space.
func Fig10(opt Options) (Table, error) {
	opt = opt.withDefaults()
	return landJoin("fig10", "relative error vs space, LANDC join SOIL (land-use analogs)",
		datagen.Landc(opt.Seed, landScale(opt)), datagen.Soil(opt.Seed, landScale(opt)), opt)
}

// Fig11 regenerates Figure 11: LANDO join SOIL error vs space.
func Fig11(opt Options) (Table, error) {
	opt = opt.withDefaults()
	return landJoin("fig11", "relative error vs space, LANDO join SOIL (land-use analogs)",
		datagen.Lando(opt.Seed, landScale(opt)), datagen.Soil(opt.Seed, landScale(opt)), opt)
}

// landScale converts the global scale to the land datasets' object-count
// scale: the originals are ~15K-34K objects, already laptop-friendly, so
// scaling saturates at 4x the global factor.
func landScale(opt Options) float64 {
	s := opt.Scale * 4
	if s > 1 {
		s = 1
	}
	if s < 0.02 {
		s = 0.02
	}
	return s
}

// ByName dispatches a figure generator by its name ("fig5" ... "fig11",
// plus the ablations of ablations.go).
func ByName(name string, opt Options) (Table, error) {
	gen, ok := map[string]func(Options) (Table, error){
		"fig5":  Fig5,
		"fig6":  Fig6,
		"fig7":  Fig7,
		"fig8":  Fig8,
		"fig9":  Fig9,
		"fig10": Fig10,
		"fig11": Fig11,

		"maxlevel":     AblationMaxLevel,
		"standard":     AblationStandardVsDyadic,
		"domaingrowth": AblationDomainGrowth,
		"epsjoin":      EpsJoinStudy,
		"rangequery":   RangeQueryStudy,
		"dim3":         Dim3Study,
	}[name]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return gen(opt)
}

// All returns every experiment name in presentation order.
func All() []string {
	return []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"maxlevel", "standard", "domaingrowth", "epsjoin", "rangequery", "dim3"}
}

func log2ceil(x uint64) int {
	n := uint64(1)
	h := 0
	for n < x {
		n <<= 1
		h++
	}
	return h
}

// scaledPow2 scales base by factor and rounds to the nearest power of two,
// flooring at min (itself a power of two).
func scaledPow2(base uint64, factor float64, min uint64) uint64 {
	v := float64(base) * factor
	h := math.Round(math.Log2(v))
	out := uint64(1) << uint(math.Max(h, 0))
	if out < min {
		out = min
	}
	if out > base {
		out = base
	}
	return out
}
