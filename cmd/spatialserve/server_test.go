package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// do runs one request against the handler in-process and returns the
// recorder.
func do(t testing.TB, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	if t != nil {
		t.Helper()
	}
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func mustStatus(t testing.TB, w *httptest.ResponseRecorder, want int) {
	if h, ok := t.(*testing.T); ok {
		h.Helper()
	}
	if w.Code != want {
		t.Fatalf("status %d, want %d: %s", w.Code, want, w.Body.String())
	}
}

// randRect emits a non-degenerate 2-d rectangle inside dom.
func randRect(rng *rand.Rand, dom uint64) [][2]uint64 {
	rect := make([][2]uint64, 2)
	for d := range rect {
		lo := rng.Uint64() % (dom - 2)
		hi := lo + 1 + rng.Uint64()%(dom-lo-1)
		rect[d] = [2]uint64{lo, hi}
	}
	return rect
}

func updateBody(t testing.TB, side string, rects [][][2]uint64) []byte {
	b, err := json.Marshal(updateRequest{Side: side, Rects: rects})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func createJoin(t testing.TB, h http.Handler, name string, dom uint64) {
	body, _ := json.Marshal(createRequest{
		Name: name, Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: dom, Seed: 42, Instances: 64, Groups: 4},
	})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusCreated)
}

func TestServerLifecycle(t *testing.T) {
	h := NewServer()
	const dom = 1 << 12

	// Create all four kinds.
	for _, c := range []createRequest{
		{Name: "j", Kind: "join", Config: configRequest{Dims: 2, DomainSize: dom, Seed: 1, Instances: 64, Groups: 4}},
		{Name: "r", Kind: "range", Config: configRequest{Dims: 1, DomainSize: dom, Seed: 2, Instances: 64, Groups: 4}},
		{Name: "e", Kind: "epsjoin", Config: configRequest{Dims: 2, DomainSize: dom, Eps: 8, Seed: 3, Instances: 64, Groups: 4}},
		{Name: "c", Kind: "containment", Config: configRequest{Dims: 2, DomainSize: dom, Seed: 4, Instances: 64, Groups: 4}},
	} {
		body, _ := json.Marshal(c)
		mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusCreated)
	}
	// Duplicate name conflicts.
	body, _ := json.Marshal(createRequest{Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: dom, Seed: 1}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusConflict)
	// Unknown kind rejected.
	body, _ = json.Marshal(createRequest{Name: "x", Kind: "quantile",
		Config: configRequest{Dims: 1, DomainSize: dom}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusBadRequest)

	// Join traffic: insert both sides, estimate, check selectivity shows up.
	rng := rand.New(rand.NewSource(7))
	var rects [][][2]uint64
	for i := 0; i < 64; i++ {
		rects = append(rects, randRect(rng, dom))
	}
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", updateBody(t, "left", rects)), http.StatusOK)
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", updateBody(t, "right", rects)), http.StatusOK)
	w := do(t, h, "GET", "/v1/estimators/j/estimate", nil)
	mustStatus(t, w, http.StatusOK)
	var est estimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &est); err != nil {
		t.Fatal(err)
	}
	if est.Counts["left"] != 64 || est.Counts["right"] != 64 {
		t.Fatalf("counts after insert: %+v", est.Counts)
	}
	if est.Selectivity == nil {
		t.Fatal("selectivity missing on non-empty inputs")
	}

	// Deletes bring a count back down.
	one := rects[:1]
	b, _ := json.Marshal(updateRequest{Op: "delete", Side: "left", Rects: one})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", b), http.StatusOK)
	w = do(t, h, "GET", "/v1/estimators/j", nil)
	mustStatus(t, w, http.StatusOK)
	var info infoResponse
	json.Unmarshal(w.Body.Bytes(), &info)
	if info.Counts["left"] != 63 {
		t.Fatalf("left count after delete = %d", info.Counts["left"])
	}

	// Range estimate needs a query.
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/update",
		updateBody(t, "", [][][2]uint64{{{5, 100}}, {{50, 400}}})), http.StatusOK)
	mustStatus(t, do(t, h, "GET", "/v1/estimators/r/estimate", nil), http.StatusBadRequest)
	qb, _ := json.Marshal(estimateRequest{Query: [][2]uint64{{0, 300}}})
	w = do(t, h, "POST", "/v1/estimators/r/estimate", qb)
	mustStatus(t, w, http.StatusOK)
	var single estimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}

	// Batched range estimates: one view, results match single queries.
	qb, _ = json.Marshal(estimateRequest{Queries: [][][2]uint64{{{0, 300}}, {{100, 500}}}})
	w = do(t, h, "POST", "/v1/estimators/r/estimate", qb)
	mustStatus(t, w, http.StatusOK)
	var batch batchEstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(batch.Results))
	}
	if batch.Results[0].Value != single.Value || batch.Results[0].Counts["data"] != single.Counts["data"] {
		t.Fatalf("batch result %+v != single result %+v", batch.Results[0], single)
	}
	// Mixing query and queries, batching a queryless kind, and empty batch
	// entries are rejected.
	qb, _ = json.Marshal(estimateRequest{Query: [][2]uint64{{0, 300}}, Queries: [][][2]uint64{{{0, 300}}}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/estimate", qb), http.StatusBadRequest)
	qb, _ = json.Marshal(estimateRequest{Queries: [][][2]uint64{{{0, 300}}}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/estimate", qb), http.StatusBadRequest)
	qb, _ = json.Marshal(estimateRequest{Queries: [][][2]uint64{{}}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/estimate", qb), http.StatusBadRequest)

	// Snapshot round trip through PUT restore: identical estimates.
	snap := do(t, h, "GET", "/v1/estimators/j/snapshot", nil)
	mustStatus(t, snap, http.StatusOK)
	mustStatus(t, do(t, h, "PUT", "/v1/estimators/j2/snapshot", snap.Body.Bytes()), http.StatusOK)
	w1 := do(t, h, "GET", "/v1/estimators/j/estimate", nil)
	w2 := do(t, h, "GET", "/v1/estimators/j2/estimate", nil)
	var e1, e2 estimateResponse
	json.Unmarshal(w1.Body.Bytes(), &e1)
	json.Unmarshal(w2.Body.Bytes(), &e2)
	if e1.Value != e2.Value || e1.Mean != e2.Mean {
		t.Fatalf("restored estimator estimate (%g, %g) != source (%g, %g)", e2.Value, e2.Mean, e1.Value, e1.Mean)
	}

	// Merging j2 into j doubles the counts; merging into a mismatched
	// estimator is a conflict caught at decode time.
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/merge", snap.Body.Bytes()), http.StatusOK)
	w = do(t, h, "GET", "/v1/estimators/j", nil)
	json.Unmarshal(w.Body.Bytes(), &info)
	if info.Counts["left"] != 126 {
		t.Fatalf("left count after merge = %d", info.Counts["left"])
	}
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/merge", snap.Body.Bytes()), http.StatusConflict)

	// Garbage snapshots are rejected.
	mustStatus(t, do(t, h, "PUT", "/v1/estimators/bad/snapshot", []byte("not a snapshot")), http.StatusBadRequest)

	// Delete.
	mustStatus(t, do(t, h, "DELETE", "/v1/estimators/j2", nil), http.StatusOK)
	mustStatus(t, do(t, h, "DELETE", "/v1/estimators/j2", nil), http.StatusNotFound)
}

// TestServeConcurrentMixed hammers one estimator with mixed reader/writer
// traffic from many goroutines - the acceptance gate for the concurrency
// layer, meaningful under -race.
func TestServeConcurrentMixed(t *testing.T) {
	h := NewServer()
	const dom = 1 << 12
	createJoin(t, h, "mix", dom)

	const workers = 8
	iters := 60
	if testing.Short() {
		iters = 25
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				var w *httptest.ResponseRecorder
				switch i % 6 {
				case 0, 1, 2: // writer: batch insert on one side
					side := "left"
					if g%2 == 1 {
						side = "right"
					}
					w = do(nil, h, "POST", "/v1/estimators/mix/update",
						updateBody(t, side, [][][2]uint64{randRect(rng, dom), randRect(rng, dom)}))
				case 3: // reader: estimate
					w = do(nil, h, "GET", "/v1/estimators/mix/estimate", nil)
				case 4: // reader: snapshot
					w = do(nil, h, "GET", "/v1/estimators/mix/snapshot", nil)
				case 5: // reader+writer: snapshot then merge it back in
					snap := do(nil, h, "GET", "/v1/estimators/mix/snapshot", nil)
					if snap.Code != http.StatusOK {
						errs <- fmt.Sprintf("snapshot: %d %s", snap.Code, snap.Body.String())
						continue
					}
					w = do(nil, h, "POST", "/v1/estimators/mix/merge", snap.Body.Bytes())
				}
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("op %d: %d %s", i%6, w.Code, w.Body.String())
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// The registry itself must also survive concurrent create/delete/list.
	wg = sync.WaitGroup{}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("tmp-%d", g)
			for i := 0; i < 10; i++ {
				createJoin(t, h, name, dom)
				do(nil, h, "GET", "/v1/estimators", nil)
				do(nil, h, "DELETE", "/v1/estimators/"+name, nil)
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkServeMixed measures mixed reader/writer serving throughput on
// one shared join estimator: ~75% single-object inserts, ~20% estimates,
// ~5% snapshots, issued from parallel clients through the full HTTP
// handler stack. BenchmarkServeMixedWAL (persist_test.go) runs the same
// workload with durability enabled.
func BenchmarkServeMixed(b *testing.B) {
	benchServeMixed(b, NewServer())
}
