package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/geo"
	"repro/internal/datagen"
)

func TestJoinSketchMarshalRoundTrip(t *testing.T) {
	p := MustPlan(Config{
		Dims: 2, LogDomain: []int{6, 6}, MaxLevel: []int{4, 6},
		Instances: 24, Groups: 4, Seed: 0xfeed,
	})
	s := p.NewJoinSketch()
	if err := s.InsertAll(datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: 64, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJoinSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != s.Count() {
		t.Fatalf("count %d != %d", got.Count(), s.Count())
	}
	for i := range s.counters {
		if got.counters[i] != s.counters[i] {
			t.Fatalf("counter %d differs", i)
		}
	}
	// The reconstructed plan produces identical families: estimates on the
	// round-tripped pair must equal estimates on the originals.
	y := p.NewJoinSketch()
	if err := y.InsertAll(datagen.MustRects(datagen.Spec{N: 30, Dims: 2, Domain: 64, Seed: 2})); err != nil {
		t.Fatal(err)
	}
	yData, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gotY, err := UnmarshalJoinSketch(yData)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := EstimateJoin(s, y)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := EstimateJoin(got, gotY)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Value != rt.Value {
		t.Fatalf("estimate changed across serialization: %g vs %g", orig.Value, rt.Value)
	}
}

func TestCESketchMarshalRoundTrip(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{5}, Instances: 12, Groups: 4, Seed: 3})
	s := p.NewCESketch()
	if err := s.Insert(geo.Span1D(2, 9)); err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCESketch(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.counters {
		if got.counters[i] != s.counters[i] {
			t.Fatalf("counter %d differs", i)
		}
	}
}

func TestPointBoxRangeMarshalRoundTrip(t *testing.T) {
	p := MustPlan(Config{Dims: 2, LogDomain: []int{5, 5}, Instances: 8, Groups: 4, Seed: 4})
	pt := p.NewPointSketch()
	if err := pt.Insert(geo.Point{3, 7}); err != nil {
		t.Fatal(err)
	}
	ptData, _ := pt.MarshalBinary()
	gotPt, err := UnmarshalPointSketch(ptData)
	if err != nil {
		t.Fatal(err)
	}
	if gotPt.Count() != 1 || gotPt.counters[0] != pt.counters[0] {
		t.Fatal("point sketch round trip failed")
	}

	bx := p.NewBoxSketch()
	if err := bx.Insert(geo.Rect(1, 5, 2, 9)); err != nil {
		t.Fatal(err)
	}
	bxData, _ := bx.MarshalBinary()
	gotBx, err := UnmarshalBoxSketch(bxData)
	if err != nil {
		t.Fatal(err)
	}
	if gotBx.counters[0] != bx.counters[0] {
		t.Fatal("box sketch round trip failed")
	}

	rg := p.NewRangeSketch()
	if err := rg.Insert(geo.Rect(1, 5, 2, 9)); err != nil {
		t.Fatal(err)
	}
	rgData, _ := rg.MarshalBinary()
	gotRg, err := UnmarshalRangeSketch(rgData)
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Rect(0, 8, 0, 8)
	a, err := rg.EstimateRange(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gotRg.EstimateRange(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatal("range sketch round trip changed estimates")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 4, Groups: 2, Seed: 1})
	s := p.NewJoinSketch()
	data, _ := s.MarshalBinary()

	if _, err := UnmarshalJoinSketch(nil); err == nil {
		t.Error("nil data should fail")
	}
	if _, err := UnmarshalJoinSketch(data[:8]); err == nil {
		t.Error("truncated data should fail")
	}
	// Wrong kind: a CE payload fed to the join decoder.
	ce, _ := p.NewCESketch().MarshalBinary()
	if _, err := UnmarshalJoinSketch(ce); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Corrupt magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := UnmarshalJoinSketch(bad); err == nil {
		t.Error("bad magic should fail")
	}
}

// TestUnmarshalHugeInstancesRejected: a tiny corrupted payload whose
// header claims an enormous instance count must be rejected by the
// counter-payload cross-check BEFORE NewPlan attempts the matching
// (multi-terabyte) xi-bank allocation.
func TestUnmarshalHugeInstancesRejected(t *testing.T) {
	craft := func(kind uint32, instances, groups, declaredCounters uint64) []byte {
		var w bytes.Buffer
		binary.Write(&w, binary.LittleEndian, uint32(marshalMagic))
		binary.Write(&w, binary.LittleEndian, kind)
		binary.Write(&w, binary.LittleEndian, uint32(1)) // dims
		binary.Write(&w, binary.LittleEndian, int32(4))  // logDomain[0]
		binary.Write(&w, binary.LittleEndian, uint32(0)) // no maxLevel
		binary.Write(&w, binary.LittleEndian, instances)
		binary.Write(&w, binary.LittleEndian, groups)
		binary.Write(&w, binary.LittleEndian, uint64(1)) // seed
		binary.Write(&w, binary.LittleEndian, int64(0))  // count
		binary.Write(&w, binary.LittleEndian, declaredCounters)
		binary.Write(&w, binary.LittleEndian, int64(0)) // one counter word
		return w.Bytes()
	}

	decoders := map[uint32]func([]byte) error{
		kindJoinSketch: func(b []byte) error { _, err := UnmarshalJoinSketch(b); return err },
		kindCESketch:   func(b []byte) error { _, err := UnmarshalCESketch(b); return err },
		kindPoint:      func(b []byte) error { _, err := UnmarshalPointSketch(b); return err },
		kindBox:        func(b []byte) error { _, err := UnmarshalBoxSketch(b); return err },
		kindRange:      func(b []byte) error { _, err := UnmarshalRangeSketch(b); return err },
	}
	for kind, dec := range decoders {
		// ~60-byte payload claiming 2^40 instances: must error, not OOM.
		if err := dec(craft(kind, 1<<40, 1, 1)); err == nil {
			t.Errorf("kind %d: 2^40-instance header decoded", kind)
		}
		// Instance count inconsistent with the declared counter payload.
		if err := dec(craft(kind, 1<<20, 1, 1)); err == nil {
			t.Errorf("kind %d: instance/counter mismatch decoded", kind)
		}
		// Groups that do not divide instances.
		if err := dec(craft(kind, 4, 3, 8)); err == nil {
			t.Errorf("kind %d: groups 3 with instances 4 decoded", kind)
		}
		// Zero instances.
		if err := dec(craft(kind, 0, 1, 0)); err == nil {
			t.Errorf("kind %d: zero instances decoded", kind)
		}
	}
}
