package xi

import (
	"math/rand"
	"testing"
)

// testIDs returns a deterministic mix of small, large and boundary indices.
func testIDs() []uint64 {
	rng := rand.New(rand.NewSource(7))
	ids := []uint64{0, 1, 2, 1<<61 - 2, 1<<61 - 1, 1 << 60, Prime - 1, Prime}
	for i := 0; i < 200; i++ {
		ids = append(ids, rng.Uint64()>>3) // < 2^61
	}
	return ids
}

func testBank(t *testing.T, n int) (*Bank, []*Family) {
	t.Helper()
	b := NewBank(n)
	fams := make([]*Family, n)
	for j := 0; j < n; j++ {
		fams[j] = New(uint64(j)*0x9e37 + 11)
		b.Set(j, fams[j])
	}
	return b, fams
}

// TestBankHashMatchesFamily: the lazy-reduction batch kernel is
// bit-identical to the Horner reference on every index class.
func TestBankHashMatchesFamily(t *testing.T) {
	const n = 64
	b, fams := testBank(t, n)
	dst := make([]uint64, n)
	for _, id := range testIDs() {
		b.HashMany(id, 0, n, dst)
		for j := 0; j < n; j++ {
			want := fams[j].Hash(id)
			if dst[j] != want {
				t.Fatalf("HashMany(%d) family %d = %d, want %d", id, j, dst[j], want)
			}
			if got := b.Hash(j, id); got != want {
				t.Fatalf("Hash(%d, %d) = %d, want %d", j, id, got, want)
			}
		}
	}
}

// TestBankSumSignsMatchesFamily: SumSignsMany over a sub-range of families
// equals per-family SumSigns.
func TestBankSumSignsMatchesFamily(t *testing.T) {
	const n = 48
	b, fams := testBank(t, n)
	ids := testIDs()
	for _, rng := range [][2]int{{0, n}, {5, 17}, {n - 1, n}} {
		lo, hi := rng[0], rng[1]
		acc := make([]int64, hi-lo)
		b.SumSignsMany(ids, lo, hi, acc)
		for j := lo; j < hi; j++ {
			if want := fams[j].SumSigns(ids); acc[j-lo] != want {
				t.Fatalf("SumSignsMany[%d:%d] family %d = %d, want %d", lo, hi, j, acc[j-lo], want)
			}
		}
	}
}

// TestBankAccumulates: SumSignsMany adds into acc rather than overwriting,
// and AddSigns matches Sign.
func TestBankAccumulates(t *testing.T) {
	const n = 16
	b, fams := testBank(t, n)
	idsA := []uint64{1, 5, 9}
	idsB := []uint64{2, 5}
	acc := make([]int64, n)
	b.SumSignsMany(idsA, 0, n, acc)
	b.SumSignsMany(idsB, 0, n, acc)
	b.AddSigns(3, 0, n, acc)
	for j := 0; j < n; j++ {
		want := fams[j].SumSigns(idsA) + fams[j].SumSigns(idsB) + fams[j].Sign(3)
		if acc[j] != want {
			t.Fatalf("accumulated signs family %d = %d, want %d", j, acc[j], want)
		}
	}
}

// TestBankMaterialize: memoized tables change no value; out-of-table ids
// fall back to evaluation.
func TestBankMaterialize(t *testing.T) {
	const n = 8
	b, fams := testBank(t, n)
	ids := []uint64{0, 3, 63, 64, 1000, 1 << 40}
	plain := make([]int64, n)
	b.SumSignsMany(ids, 0, n, plain)
	for j := 0; j < n; j++ {
		b.Materialize(j, 64)
	}
	if !b.Materialized() {
		t.Fatal("Materialized() = false after Materialize")
	}
	memo := make([]int64, n)
	b.SumSignsMany(ids, 0, n, memo)
	for j := 0; j < n; j++ {
		if plain[j] != memo[j] {
			t.Fatalf("materialized sums differ for family %d: %d vs %d", j, memo[j], plain[j])
		}
		if f := b.Family(j); f.Sign(3) != fams[j].Sign(3) {
			t.Fatalf("Family view %d disagrees", j)
		}
	}
}

// TestBankMarshalRoundTrip: seeds survive serialization.
func TestBankMarshalRoundTrip(t *testing.T) {
	const n = 10
	b, _ := testBank(t, n)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != BankSeedBytes(n) {
		t.Fatalf("marshal length %d, want %d", len(data), BankSeedBytes(n))
	}
	var c Bank
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if c.Len() != n {
		t.Fatalf("round-trip length %d, want %d", c.Len(), n)
	}
	dst1 := make([]uint64, n)
	dst2 := make([]uint64, n)
	for _, id := range []uint64{1, 17, 1 << 50} {
		b.HashMany(id, 0, n, dst1)
		c.HashMany(id, 0, n, dst2)
		for j := range dst1 {
			if dst1[j] != dst2[j] {
				t.Fatalf("round-tripped bank disagrees at family %d, id %d", j, id)
			}
		}
	}
	if err := c.UnmarshalBinary(data[:SeedBytes-1]); err == nil {
		t.Fatal("truncated bank data should fail")
	}
}

// BenchmarkXiFamilySumSigns is the pointer-chasing baseline: one Horner
// evaluation chain per (family, id).
func BenchmarkXiFamilySumSigns(b *testing.B) {
	const n = 512
	fams := make([]*Family, n)
	for j := range fams {
		fams[j] = New(uint64(j) + 1)
	}
	ids := make([]uint64, 40)
	for i := range ids {
		ids[i] = uint64(i)*2654435761 + 1
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, f := range fams {
			sink += f.SumSigns(ids)
		}
	}
	_ = sink
}

// BenchmarkXiBankSumSigns is the batched id-major kernel over the same
// workload: 512 families x 40 ids per op.
func BenchmarkXiBankSumSigns(b *testing.B) {
	const n = 512
	bank := NewBank(n)
	for j := 0; j < n; j++ {
		bank.SetSeed(j, uint64(j)+1)
	}
	ids := make([]uint64, 40)
	for i := range ids {
		ids[i] = uint64(i)*2654435761 + 1
	}
	acc := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.SumSignsMany(ids, 0, n, acc)
	}
}
