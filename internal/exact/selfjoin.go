package exact

import (
	"fmt"
	"math/bits"

	"repro/geo"
	"repro/internal/dyadic"
)

// Self-join sizes (paper Sections 3.1, 3.2 and 4.1.4).
//
// For an atomic sketch Xw the self-join size is SJ(Xw) = sum over dyadic
// hyper-rectangles of f_w(.)^2, where f_w counts how many input objects'
// w-cover contains that dyadic hyper-rectangle. SJ(R) = sum over all
// w in {I,E}^d of SJ(Xw) controls the variance bound Var[Z] <=
// c * SJ(R) * SJ(S) and hence the Theorem 1 sketch sizing. These exact
// computations are offline planning utilities (they use memory linear in
// the number of distinct cover entries); the sketches themselves never need
// them.

// SelfJoin holds the exact self-join sizes of a relation under the
// {I,E}^d dyadic sketch set.
type SelfJoin struct {
	// PerW[w] is SJ(Xw); w is the bitmask with bit i set iff letter i is E.
	PerW []float64
	// Total is the sum over all w, the SJ(R) of the variance bounds.
	Total float64
}

// SelfJoinSizes computes the exact self-join sizes of rects under dyadic
// covers capped at maxLevel per dimension (maxLevel[i] < 0 means uncapped).
// All rects must share the dimensionality of dom.
func SelfJoinSizes(dom []dyadic.Domain, maxLevel []int, rects []geo.HyperRect) (SelfJoin, error) {
	d := len(dom)
	if d == 0 {
		return SelfJoin{}, fmt.Errorf("exact: no domains given")
	}
	if len(maxLevel) != d {
		return SelfJoin{}, fmt.Errorf("exact: got %d maxLevel entries for %d dims", len(maxLevel), d)
	}
	// Keys pack one dyadic id per dimension into a uint64.
	shift := make([]uint, d)
	var totalBits uint
	for i, dm := range dom {
		shift[i] = uint(bits.Len64(dm.IDSpace()))
		totalBits += shift[i]
	}
	if totalBits > 64 {
		return SelfJoin{}, fmt.Errorf("exact: self-join key needs %d bits (> 64); use smaller domains or fewer dims", totalBits)
	}

	nw := 1 << d
	freqs := make([]map[uint64]int64, nw)
	for w := range freqs {
		freqs[w] = make(map[uint64]int64)
	}
	covers := make([][]uint64, d) // interval covers per dim
	points := make([][]uint64, d) // endpoint covers per dim
	for _, rect := range rects {
		if len(rect) != d {
			return SelfJoin{}, fmt.Errorf("exact: rect dimensionality %d, want %d", len(rect), d)
		}
		for i, iv := range rect {
			covers[i] = dom[i].CoverMax(iv.Lo, iv.Hi, maxLevel[i], covers[i][:0])
			points[i] = dom[i].PointCoverMax(iv.Lo, maxLevel[i], points[i][:0])
			points[i] = dom[i].PointCoverMax(iv.Hi, maxLevel[i], points[i])
		}
		for w := 0; w < nw; w++ {
			lists := make([][]uint64, d)
			for i := 0; i < d; i++ {
				if w&(1<<i) != 0 {
					lists[i] = points[i]
				} else {
					lists[i] = covers[i]
				}
			}
			accumulateCross(freqs[w], lists, shift)
		}
	}

	sj := SelfJoin{PerW: make([]float64, nw)}
	for w, m := range freqs {
		var s float64
		for _, f := range m {
			s += float64(f) * float64(f)
		}
		sj.PerW[w] = s
		sj.Total += s
	}
	return sj, nil
}

// accumulateCross adds 1 to freq for every element of the cross product of
// the per-dimension id lists. Point covers may contain an id twice (both
// endpoints share ancestors), which correctly contributes multiplicity 2.
func accumulateCross(freq map[uint64]int64, lists [][]uint64, shift []uint) {
	var rec func(dim int, key uint64)
	rec = func(dim int, key uint64) {
		if dim == len(lists) {
			freq[key]++
			return
		}
		for _, id := range lists[dim] {
			rec(dim+1, key<<shift[dim]|id)
		}
	}
	rec(0, 0)
}

// PointSelfJoin computes SJ(X_E) for a set of points under the pure
// endpoint (point-cover product) sketch used by epsilon-joins and
// containment joins (Lemma 8).
func PointSelfJoin(dom []dyadic.Domain, maxLevel []int, pts []geo.Point) (float64, error) {
	rects := make([]geo.HyperRect, len(pts))
	for i, p := range pts {
		rects[i] = p.AsRect()
	}
	return singleCoverSelfJoin(dom, maxLevel, rects, true)
}

// BoxSelfJoin computes SJ(Y_I) for a set of hyper-rectangles under the pure
// interval-cover product sketch used by epsilon-joins (Lemma 8).
func BoxSelfJoin(dom []dyadic.Domain, maxLevel []int, rects []geo.HyperRect) (float64, error) {
	return singleCoverSelfJoin(dom, maxLevel, rects, false)
}

func singleCoverSelfJoin(dom []dyadic.Domain, maxLevel []int, rects []geo.HyperRect, pointCover bool) (float64, error) {
	d := len(dom)
	shift := make([]uint, d)
	var totalBits uint
	for i, dm := range dom {
		shift[i] = uint(bits.Len64(dm.IDSpace()))
		totalBits += shift[i]
	}
	if totalBits > 64 {
		return 0, fmt.Errorf("exact: self-join key needs %d bits (> 64)", totalBits)
	}
	freq := make(map[uint64]int64)
	lists := make([][]uint64, d)
	for _, rect := range rects {
		if len(rect) != d {
			return 0, fmt.Errorf("exact: rect dimensionality %d, want %d", len(rect), d)
		}
		for i, iv := range rect {
			if pointCover {
				lists[i] = dom[i].PointCoverMax(iv.Lo, maxLevel[i], lists[i][:0])
			} else {
				lists[i] = dom[i].CoverMax(iv.Lo, iv.Hi, maxLevel[i], lists[i][:0])
			}
		}
		accumulateCross(freq, lists, shift)
	}
	var s float64
	for _, f := range freq {
		s += float64(f) * float64(f)
	}
	return s, nil
}
