package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/geo"
	"repro/internal/cluster"
	"repro/internal/metrics"
)

// The 3-node smoke: REAL server processes (the re-executed test binary,
// as in crash_test.go) wired into a cluster, a mixed ingest across the
// ring, a SIGKILL of one node mid-cluster, and a failover restart on the
// same data dir - after which every estimator (all four kinds) must be
// byte-identical to a loss-free single-node replay. This is the CI
// cluster smoke job.

// reservePorts and waitHealthy wrap the shared orchestration helpers in
// internal/cluster (also used by cmd/spatialload) with test fatals.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs, err := cluster.ReservePorts(n)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	if err := cluster.WaitHealthy(base, 0); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSmokeSIGKILLFailover spawns three spatialserve processes in
// cluster mode, ingests across the ring, SIGKILLs one node, restarts it
// on the same data dir (the failover), and verifies post-failover
// cluster estimates for all four estimator kinds match a loss-free
// single-node replay byte-for-byte.
func TestClusterSmokeSIGKILLFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server subprocesses")
	}
	const dom = 1 << 12
	const n = 120
	addrs := reservePorts(t, 3)
	ids := []string{"a", "b", "c"}
	peers := cluster.PeersFlag(ids, addrs)
	dirs := make([]string, 3)
	urls := make([]string, 3)
	cmds := make([]*exec.Cmd, 3)
	start := func(i int) {
		args := []string{
			"-addr=" + addrs[i],
			"-data-dir=" + dirs[i],
			"-checkpoint-interval=0",
			"-node-id=" + ids[i],
			"-peers=" + peers,
			"-partitions=4",
		}
		urls[i], cmds[i] = startHelperArgs(t, args...)
		waitHealthy(t, urls[i])
	}
	for i := range ids {
		dirs[i] = filepath.Join(t.TempDir(), "node-"+ids[i])
		start(i)
	}
	defer func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	}()

	createFour(t, urls[0], dom)
	refs := newClusterRefs(t, dom)

	// Mixed ingest across the ring, every update acked before the next.
	rng := rand.New(rand.NewSource(2026))
	post := func(via int, name string, req updateRequest) {
		body, _ := json.Marshal(req)
		mustDo(t, "POST", urls[via]+"/v1/estimators/"+name+"/update", body, http.StatusOK)
	}
	for i := 0; i < n; i++ {
		wr := randRect(rng, dom)
		rect := geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])
		ws := randRect(rng, dom)
		span := geo.Span1D(ws[0][0], ws[0][1])
		pt := geo.Point{rng.Uint64() % dom, rng.Uint64() % dom}
		via := i % 3
		switch i % 4 {
		case 0:
			post(via, "j", updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
			if err := refs.j.InsertLeft(rect); err != nil {
				t.Fatal(err)
			}
		case 1:
			post(via, "j", updateRequest{Side: "right", Rects: [][][2]uint64{wr}})
			if err := refs.j.InsertRight(rect); err != nil {
				t.Fatal(err)
			}
			post(via, "r", updateRequest{Rects: [][][2]uint64{wireRect(span)}})
			if err := refs.r.Insert(span); err != nil {
				t.Fatal(err)
			}
		case 2:
			post(via, "e", updateRequest{Side: "left", Points: [][]uint64{pt}})
			if err := refs.e.InsertLeft(pt); err != nil {
				t.Fatal(err)
			}
		case 3:
			post(via, "c", updateRequest{Side: "inner", Rects: [][][2]uint64{wr}})
			if err := refs.c.InsertInner(rect); err != nil {
				t.Fatal(err)
			}
		}
	}

	// SIGKILL node b: no flush, no checkpoint, its shards recover from the
	// WAL alone on restart.
	sigkill(t, cmds[1])
	cmds[1] = nil

	// While b is down, scatter reads that touch its shards fail loudly
	// rather than silently under-counting.
	resp, _ := httpDo(t, "GET", urls[0]+"/v1/estimators/j/snapshot", nil, nil)
	if resp.StatusCode == http.StatusOK {
		t.Log("note: every partition of j happened to avoid node b (possible but unlikely with 4 partitions)")
	}

	// Failover: restart b on the same data dir, same identity.
	start(1)

	// Post-failover, every estimator's merged snapshot - and therefore
	// every estimate - matches the loss-free single-node replay exactly,
	// from every node.
	for name, ref := range map[string]interface{ Marshal() ([]byte, error) }{
		"j": refs.j, "r": refs.r, "e": refs.e, "c": refs.c,
	} {
		want, err := ref.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		for via := 0; via < 3; via++ {
			got := mustDo(t, "GET", urls[via]+"/v1/estimators/"+name+"/snapshot", nil, http.StatusOK)
			if !bytes.Equal(got, want) {
				t.Errorf("post-failover estimator %q via node %d differs from the loss-free replay", name, via)
			}
		}
	}
	var got estimateResponse
	if err := json.Unmarshal(mustDo(t, "GET", urls[1]+"/v1/estimators/j/estimate", nil, http.StatusOK), &got); err != nil {
		t.Fatal(err)
	}
	want, _, _, err := refs.j.CardinalityWithCounts()
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Errorf("post-failover estimate %v != loss-free %v", got.Value, want.Value)
	}

	// Every node's /metrics must serve a lint-clean exposition carrying
	// the core series - including the WAL and fan-out instruments that
	// only real persistent cluster processes exercise.
	for i, base := range urls {
		body := mustDo(t, "GET", base+"/metrics", nil, http.StatusOK)
		if err := metrics.Lint(body); err != nil {
			t.Errorf("node %d /metrics fails lint: %v", i, err)
			continue
		}
		for _, series := range []string{
			"spatialserve_request_seconds",
			"spatialserve_requests_total",
			"spatialserve_wal_append_seconds",
			"spatialserve_wal_fsync_seconds",
			"spatialserve_wal_commit_records_total",
		} {
			if !metrics.HasSeries(body, series) {
				t.Errorf("node %d /metrics missing core series %s", i, series)
			}
		}
	}
	t.Logf("3-node SIGKILL failover: %d updates, estimates exact (join estimate %.1f)", n, got.Value)
}
