package xi

import (
	"fmt"
	"math/bits"
)

// Bank holds the polynomial coefficients of many families in four
// contiguous struct-of-arrays planes, one per coefficient degree. It is the
// batch-evaluation counterpart of Family: where Family answers "what is
// xi_i of this one family", Bank answers "what is xi_i of families
// [lo, hi)" with a single pass over contiguous memory.
//
// The batched kernel precomputes i, i^2 mod p and i^3 mod p once per index
// and then evaluates every family with three *independent* modular
// multiplies (a1*i, a2*i^2, a3*i^3) instead of the dependent Horner chain -
// the multiplies of consecutive families pipeline, and the coefficient
// loads stream linearly. Intermediate values use a lazy reduction (results
// kept < 2^62, congruent mod p); the final reduction to the canonical
// representative happens once per evaluation, so the parity bit - and hence
// every sign - is bit-identical to Family.Hash/Family.Sign.
type Bank struct {
	c0, c1, c2, c3 []uint64
	tables         [][]int8 // optional memoized signs per family (see Materialize)
}

// NewBank returns a bank with room for n families, all initialized to the
// zero polynomial.
func NewBank(n int) *Bank {
	return &Bank{
		c0: make([]uint64, n),
		c1: make([]uint64, n),
		c2: make([]uint64, n),
		c3: make([]uint64, n),
	}
}

// Len returns the number of families in the bank.
func (b *Bank) Len() int { return len(b.c0) }

// SetSeed derives family j deterministically from a 64-bit seed, exactly as
// New does.
func (b *Bank) SetSeed(j int, seed uint64) { b.Set(j, New(seed)) }

// Set copies the coefficients of f into family slot j.
func (b *Bank) Set(j int, f *Family) {
	b.c0[j], b.c1[j], b.c2[j], b.c3[j] = f.a[0], f.a[1], f.a[2], f.a[3]
}

// Family returns a standalone copy of family j (sharing the memoized sign
// table, if any).
func (b *Bank) Family(j int) *Family {
	f := &Family{a: [4]uint64{b.c0[j], b.c1[j], b.c2[j], b.c3[j]}}
	if b.tables != nil {
		f.table = b.tables[j]
	}
	return f
}

// lazyMul returns a value < 2^62 congruent to a*b mod Prime, for lazy
// operands a, b < 2^62 (2^64 = 8 mod p, then one extra fold).
func lazyMul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	s := (lo & Prime) + (lo >> 61) + (hi << 3)
	return (s & Prime) + (s >> 61)
}

// mulNF is the single-fold multiply for operands a, b < 2^61: the result is
// < 2^62 + 8 and congruent to a*b mod Prime, so four such terms still sum
// without overflow before the final canon.
func mulNF(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return (lo & Prime) + (lo >> 61) + (hi << 3)
}

// canon reduces a lazy sum s (any uint64, congruent to the value mod p) to
// the canonical representative in [0, Prime).
func canon(s uint64) uint64 {
	s = (s & Prime) + (s >> 61)
	s = (s & Prime) + (s >> 61)
	if s >= Prime {
		s -= Prime
	}
	return s
}

// Hash evaluates family j at index i, identical to Family.Hash.
func (b *Bank) Hash(j int, i uint64) uint64 {
	i2 := lazyMul(i, i)
	i3 := lazyMul(i2, i)
	return canon(b.c0[j] + lazyMul(b.c1[j], i) + lazyMul(b.c2[j], i2) + lazyMul(b.c3[j], i3))
}

// HashMany evaluates families [lo, hi) at index i into dst, which must have
// length hi-lo. Results are canonical and identical to Family.Hash.
func (b *Bank) HashMany(i uint64, lo, hi int, dst []uint64) {
	i2 := lazyMul(i, i)
	i3 := lazyMul(i2, i)
	c0, c1, c2, c3 := b.c0[lo:hi], b.c1[lo:hi], b.c2[lo:hi], b.c3[lo:hi]
	_ = dst[len(c0)-1]
	for j := range c0 {
		dst[j] = canon(c0[j] + lazyMul(c1[j], i) + lazyMul(c2[j], i2) + lazyMul(c3[j], i3))
	}
}

// AddSigns folds the signs of index id into acc: acc[j-lo] += xi_id of
// family j, for j in [lo, hi). acc must have length hi-lo.
func (b *Bank) AddSigns(id uint64, lo, hi int, acc []int64) {
	if b.tables != nil {
		b.addSignsTable(id, lo, hi, acc)
		return
	}
	i2 := lazyMul(id, id)
	i3 := lazyMul(i2, id)
	c0, c1, c2, c3 := b.c0[lo:hi], b.c1[lo:hi], b.c2[lo:hi], b.c3[lo:hi]
	_ = acc[len(c0)-1]
	for j := range c0 {
		h := canon(c0[j] + lazyMul(c1[j], id) + lazyMul(c2[j], i2) + lazyMul(c3[j], i3))
		acc[j] += 1 - 2*int64(h&1)
	}
}

// powerChunk bounds the per-call stack scratch of SumSignsMany. Cover lists
// are at most 2*MaxLog + a few ids, comfortably below it; longer lists are
// processed in chunks.
const powerChunk = 192

// SumSignsMany folds the signs of all ids into acc: acc[j-lo] +=
// sum over ids of xi_id of family j, for j in [lo, hi). The powers i, i^2,
// i^3 of every id are computed once for the whole call (instead of once per
// family, as the per-Family path does), and each family then streams
// through the id list with its four coefficients pinned in registers: per
// evaluation, three loads and three independent multiplies. acc must have
// length hi-lo; it is accumulated into, not overwritten, so interval and
// endpoint covers can share a plane.
func (b *Bank) SumSignsMany(ids []uint64, lo, hi int, acc []int64) {
	if b.tables != nil {
		for _, id := range ids {
			b.addSignsTable(id, lo, hi, acc)
		}
		return
	}
	var p2, p3 [powerChunk]uint64
	for len(ids) > 0 {
		m := len(ids)
		if m > powerChunk {
			m = powerChunk
		}
		chunk := ids[:m]
		for k, id := range chunk {
			// Powers are fully reduced so the per-family multiplies can use
			// the cheaper single-fold mulNF (operands < 2^61).
			i2 := canon(lazyMul(id, id))
			p2[k] = i2
			p3[k] = canon(lazyMul(i2, id))
		}
		c0, c1, c2, c3 := b.c0[lo:hi], b.c1[lo:hi], b.c2[lo:hi], b.c3[lo:hi]
		_ = acc[len(c0)-1]
		j := 0
		// Two families per pass: the id and power loads are shared, and the
		// six multiplies per index are mutually independent.
		for ; j+1 < len(c0); j += 2 {
			a0, a1, a2, a3 := c0[j], c1[j], c2[j], c3[j]
			b0, b1, b2, b3 := c0[j+1], c1[j+1], c2[j+1], c3[j+1]
			var parA, parB uint64
			for k, id := range chunk {
				i2, i3 := p2[k], p3[k]
				parA += canon(a0+mulNF(a1, id)+mulNF(a2, i2)+mulNF(a3, i3)) & 1
				parB += canon(b0+mulNF(b1, id)+mulNF(b2, i2)+mulNF(b3, i3)) & 1
			}
			acc[j] += int64(m) - 2*int64(parA)
			acc[j+1] += int64(m) - 2*int64(parB)
		}
		if j < len(c0) {
			a0, a1, a2, a3 := c0[j], c1[j], c2[j], c3[j]
			var par uint64
			for k, id := range chunk {
				par += canon(a0+mulNF(a1, id)+mulNF(a2, p2[k])+mulNF(a3, p3[k])) & 1
			}
			acc[j] += int64(m) - 2*int64(par)
		}
		ids = ids[m:]
	}
}

// addSignsTable is AddSigns through the memoized tables, falling back to
// evaluation for out-of-table ids.
func (b *Bank) addSignsTable(id uint64, lo, hi int, acc []int64) {
	i2 := lazyMul(id, id)
	i3 := lazyMul(i2, id)
	for j := lo; j < hi; j++ {
		if t := b.tables[j]; id < uint64(len(t)) {
			acc[j-lo] += int64(t[id])
			continue
		}
		h := canon(b.c0[j] + lazyMul(b.c1[j], id) + lazyMul(b.c2[j], i2) + lazyMul(b.c3[j], i3))
		acc[j-lo] += 1 - 2*int64(h&1)
	}
}

// Materialize memoizes the signs of indices [0, n) of family j, the Bank
// counterpart of Family.Materialize. It changes no value the bank produces.
func (b *Bank) Materialize(j int, n uint64) {
	if b.tables == nil {
		b.tables = make([][]int8, b.Len())
	}
	t := make([]int8, n)
	for i := uint64(0); i < n; i++ {
		t[i] = int8(1 - 2*int64(b.Hash(j, i)&1))
	}
	b.tables[j] = t
}

// Materialized reports whether any family carries a memoized table.
func (b *Bank) Materialized() bool { return b.tables != nil }

// BankSeedBytes returns the serialized size of a bank of n families.
func BankSeedBytes(n int) int { return n * SeedBytes }

// MarshalBinary encodes all family seeds, SeedBytes each, in slot order.
func (b *Bank) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, b.Len()*SeedBytes)
	for j := 0; j < b.Len(); j++ {
		fb, err := b.Family(j).MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = append(buf, fb...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a bank produced by MarshalBinary. Any memoized
// tables are discarded.
func (b *Bank) UnmarshalBinary(data []byte) error {
	if len(data)%SeedBytes != 0 {
		return fmt.Errorf("xi: bank data length %d not a multiple of %d", len(data), SeedBytes)
	}
	n := len(data) / SeedBytes
	nb := NewBank(n)
	var f Family
	for j := 0; j < n; j++ {
		if err := f.UnmarshalBinary(data[j*SeedBytes : (j+1)*SeedBytes]); err != nil {
			return err
		}
		nb.Set(j, &f)
	}
	*b = *nb
	return nil
}
