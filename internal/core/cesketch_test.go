package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/geo"
	"repro/internal/exact"
)

// denseIntervals generates interval data on a tiny integer grid so that
// shared endpoints (the cases the CE sketches exist for) are common.
func denseIntervals(seed uint64, n int, dom uint64) []geo.HyperRect {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	out := make([]geo.HyperRect, n)
	for i := range out {
		lo := rng.Uint64N(dom - 1)
		hi := lo + 1 + rng.Uint64N(dom-lo-1)
		out[i] = geo.Span1D(lo, hi)
	}
	return out
}

// denseRects generates 2-d data on a tiny grid with many shared endpoints.
func denseRects(seed uint64, n int, dom uint64) []geo.HyperRect {
	rng := rand.New(rand.NewPCG(seed, seed^0x123456))
	out := make([]geo.HyperRect, n)
	for i := range out {
		xlo := rng.Uint64N(dom - 1)
		ylo := rng.Uint64N(dom - 1)
		out[i] = geo.Rect(xlo, xlo+1+rng.Uint64N(dom-xlo-1), ylo, ylo+1+rng.Uint64N(dom-ylo-1))
	}
	return out
}

// TestCEStrict1D: Lemma 13 - the common-endpoint estimator matches the
// strict join exactly in expectation WITHOUT any endpoint transformation,
// on data dense with shared endpoints.
func TestCEStrict1D(t *testing.T) {
	const dom = 16
	r := denseIntervals(1, 50, dom)
	s := denseIntervals(2, 50, dom)
	want := float64(exact.JoinCount(r, s))
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 30000, Groups: 4, Seed: 5})
	x, y := p.NewCESketch(), p.NewCESketch()
	if err := x.InsertAll(r); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(s); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoinCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "ce-strict-1d", est, want)
}

// TestCEStrictCases: per-case verification of the Lemma 13 counting on
// every Figure 3 relationship, one pair at a time.
func TestCEStrictCases(t *testing.T) {
	cases := []struct {
		r, s geo.HyperRect
		want float64
	}{
		{geo.Span1D(0, 3), geo.Span1D(5, 9), 0}, // (1) disjunct
		{geo.Span1D(0, 4), geo.Span1D(4, 9), 0}, // (2) meet
		{geo.Span1D(0, 5), geo.Span1D(3, 9), 1}, // (3) overlap
		{geo.Span1D(0, 9), geo.Span1D(3, 6), 1}, // (4) contain
		{geo.Span1D(0, 9), geo.Span1D(0, 5), 1}, // (5) contain+meet (lower)
		{geo.Span1D(0, 9), geo.Span1D(4, 9), 1}, // (5) contain+meet (upper)
		{geo.Span1D(2, 8), geo.Span1D(2, 8), 1}, // (6) identical
	}
	for i, c := range cases {
		p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 40000, Groups: 4, Seed: uint64(100 + i)})
		x, y := p.NewCESketch(), p.NewCESketch()
		if err := x.Insert(c.r); err != nil {
			t.Fatal(err)
		}
		if err := y.Insert(c.s); err != nil {
			t.Fatal(err)
		}
		est, err := EstimateJoinCE(x, y)
		if err != nil {
			t.Fatal(err)
		}
		se := 6 * seOf(est)
		if diff := est.Mean - c.want; diff > se+0.02 || diff < -se-0.02 {
			t.Errorf("case %d (%v vs %v): mean %.3f, want %.0f (6se=%.3f)", i, c.r, c.s, est.Mean, c.want, se)
		}
	}
}

// TestCEExtended1D: the Appendix C extended estimator matches the
// Definition 4 extended join (boundary contact counts).
func TestCEExtended1D(t *testing.T) {
	const dom = 16
	r := denseIntervals(7, 50, dom)
	s := denseIntervals(8, 50, dom)
	want := float64(exact.JoinCountExtBrute(r, s))
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 30000, Groups: 4, Seed: 9})
	x, y := p.NewCESketch(), p.NewCESketch()
	if err := x.InsertAll(r); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(s); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoinExtCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "ce-ext-1d", est, want)
}

// TestCEExtendedCases: the extended estimator counts "meet" pairs where the
// strict one does not.
func TestCEExtendedCases(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 40000, Groups: 4, Seed: 55})
	x, y := p.NewCESketch(), p.NewCESketch()
	if err := x.Insert(geo.Span1D(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := y.Insert(geo.Span1D(4, 9)); err != nil {
		t.Fatal(err)
	}
	ext, err := EstimateJoinExtCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := EstimateJoinCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d := ext.Mean - 1; d > 6*seOf(ext)+0.02 || d < -6*seOf(ext)-0.02 {
		t.Errorf("extended meet: mean %.3f, want 1", ext.Mean)
	}
	if d := strict.Mean; d > 6*seOf(strict)+0.02 || d < -6*seOf(strict)-0.02 {
		t.Errorf("strict meet: mean %.3f, want 0", strict.Mean)
	}
}

// TestCEStrict2D: the d-dimensional product generalization of Lemma 13 on
// 2-d data with shared endpoints.
func TestCEStrict2D(t *testing.T) {
	const dom = 10
	r := denseRects(3, 35, dom)
	s := denseRects(4, 35, dom)
	want := float64(exact.JoinCount(r, s))
	p := MustPlan(Config{Dims: 2, LogDomain: []int{4, 4}, Instances: 16000, Groups: 4, Seed: 12})
	x, y := p.NewCESketch(), p.NewCESketch()
	if err := x.InsertAll(r); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(s); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoinCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "ce-strict-2d", est, want)
}

// TestCEExtended2D: the Appendix C formula for 2-d extended joins.
func TestCEExtended2D(t *testing.T) {
	const dom = 10
	r := denseRects(13, 35, dom)
	s := denseRects(14, 35, dom)
	want := float64(exact.JoinCountExtBrute(r, s))
	p := MustPlan(Config{Dims: 2, LogDomain: []int{4, 4}, Instances: 16000, Groups: 4, Seed: 15})
	x, y := p.NewCESketch(), p.NewCESketch()
	if err := x.InsertAll(r); err != nil {
		t.Fatal(err)
	}
	if err := y.InsertAll(s); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoinExtCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "ce-ext-2d", est, want)
}

// TestCEInsertDelete: CE sketches support exact deletion too.
func TestCEInsertDelete(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{5}, Instances: 30, Groups: 5, Seed: 1})
	a, b := p.NewCESketch(), p.NewCESketch()
	data := denseIntervals(5, 20, 30)
	if err := a.InsertAll(data); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertAll(data); err != nil {
		t.Fatal(err)
	}
	extra := geo.Span1D(3, 17)
	if err := b.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(extra); err != nil {
		t.Fatal(err)
	}
	for i := range a.counters {
		if a.counters[i] != b.counters[i] {
			t.Fatalf("counter %d differs after delete", i)
		}
	}
	if a.Count() != b.Count() {
		t.Fatal("counts differ")
	}
}

func TestCEValidation(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 4, Groups: 2, Seed: 1})
	s := p.NewCESketch()
	if err := s.Insert(geo.Span1D(0, 20)); err == nil {
		t.Error("out-of-domain insert should fail")
	}
	q := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 4, Groups: 2, Seed: 2})
	if _, err := EstimateJoinCE(s, q.NewCESketch()); err == nil {
		t.Error("cross-plan estimate should fail")
	}
	if _, err := EstimateJoinExtCE(s, q.NewCESketch()); err == nil {
		t.Error("cross-plan estimate should fail")
	}
}

func TestCESelfJoinWeight(t *testing.T) {
	if got := CESelfJoinWeight(10, 2, 3); got != 10+2*2+2*3 {
		t.Fatalf("CESelfJoinWeight = %g", got)
	}
}

func TestPlanCEJoinInstances(t *testing.T) {
	k1, k2, err := PlanCEJoinInstances(1, Guarantee{Eps: 0.5, Phi: 0.05}, 100, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if k1 < 1 || k2 < 1 {
		t.Fatalf("k1=%d k2=%d", k1, k2)
	}
	// k1 = ceil(8*2*100*100/(0.25*2500)) = ceil(256) = 256.
	if k1 != 256 {
		t.Fatalf("k1 = %d, want 256", k1)
	}
	if _, _, err := PlanCEJoinInstances(1, Guarantee{Eps: 0, Phi: 0.5}, 1, 1, 1); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, _, err := PlanCEJoinInstances(1, Guarantee{Eps: 0.5, Phi: 0.5}, 0, 1, 1); err == nil {
		t.Error("zero SJ should fail")
	}
}

func seOf(est Estimate) float64 {
	if est.Instances == 0 {
		return 0
	}
	return math.Sqrt(est.SampleVariance / float64(est.Instances))
}
