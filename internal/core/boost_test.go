package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2}, 1.5},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -5, 2, 0}, -0.5},
	}
	for _, c := range cases {
		if got := median(append([]float64(nil), c.in...)); got != c.want {
			t.Errorf("median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(median(nil)) {
		t.Error("median(nil) should be NaN")
	}
}

func TestBoostLayout(t *testing.T) {
	// 6 instances, 3 groups of 2: means (1.5, 3.5, 5.5), median 3.5.
	zs := []float64{1, 2, 3, 4, 5, 6}
	est := boost(zs, 3)
	if est.Value != 3.5 {
		t.Errorf("Value = %g, want 3.5", est.Value)
	}
	if est.Mean != 3.5 {
		t.Errorf("Mean = %g, want 3.5", est.Mean)
	}
	if len(est.GroupMeans) != 3 || est.GroupMeans[0] != 1.5 || est.GroupMeans[2] != 5.5 {
		t.Errorf("GroupMeans = %v", est.GroupMeans)
	}
	if est.Instances != 6 {
		t.Errorf("Instances = %d", est.Instances)
	}
	// Sample variance of 1..6 = 3.5.
	if math.Abs(est.SampleVariance-3.5) > 1e-12 {
		t.Errorf("SampleVariance = %g, want 3.5", est.SampleVariance)
	}
}

// TestBoostMedianRobustness: the median ignores a wildly corrupted group -
// the whole point of the median step (Section 2.3).
func TestBoostMedianRobustness(t *testing.T) {
	zs := []float64{10, 10, 10, 10, 1e9, 1e9} // 3 groups of 2, one insane
	est := boost(zs, 3)
	if est.Value != 10 {
		t.Errorf("median value = %g, want 10", est.Value)
	}
	if est.Mean < 1e8 {
		t.Errorf("grand mean should be dragged by the outlier, got %g", est.Mean)
	}
}

func TestBoostQuickInvariants(t *testing.T) {
	f := func(raw []float64, gRaw uint8) bool {
		// Build a well-formed instance vector.
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		groups := int(gRaw)%4 + 1
		n := (len(raw) / groups) * groups
		if n == 0 {
			return true
		}
		zs := raw[:n]
		est := boost(zs, groups)
		// The boosted value lies between min and max group mean.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, m := range est.GroupMeans {
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return est.Value >= lo-1e-9 && est.Value <= hi+1e-9 && est.Instances == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateClamped(t *testing.T) {
	if (Estimate{Value: -5}).Clamped() != 0 {
		t.Error("negative estimate should clamp to 0")
	}
	if (Estimate{Value: 7}).Clamped() != 7 {
		t.Error("positive estimate should pass through")
	}
}

func TestEstimateStdErr(t *testing.T) {
	e := Estimate{SampleVariance: 100, Instances: 25, GroupMeans: make([]float64, 5)}
	// Per-group size 5; stderr = sqrt(100/5).
	want := math.Sqrt(20)
	if got := e.StdErr(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdErr = %g, want %g", got, want)
	}
	if !math.IsNaN((Estimate{}).StdErr()) {
		t.Error("empty estimate StdErr should be NaN")
	}
}
