package main

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: the server's overload armor. Two independent gates
// run in front of the mux:
//
//   - per-endpoint-class max-inflight limits (reads and writes counted
//     separately, so a flood of slow scatter-gather reads cannot starve
//     ingest, and vice versa), and
//   - a token-bucket shedder bounding the total accepted request rate.
//
// Both answer 429 with a Retry-After header instead of queueing: an
// overloaded estimator service should shed load early and cheaply - the
// whole point of approximate answers is bounded cost, and an unbounded
// accept queue un-bounds it.
//
// Internal node-to-node requests (the X-Spatial-Internal header), health
// probes and admin endpoints BYPASS admission: shedding a peer's fan-out
// sub-request would amplify one client request into cluster-wide retry
// traffic, and an operator debugging an overload needs /admin to answer.

// AdmitOptions configures the server's admission control. Zero values
// disable the corresponding gate.
type AdmitOptions struct {
	// MaxInflightReads caps concurrently served read-class requests
	// (estimates, snapshots, info, list). 0 means unlimited.
	MaxInflightReads int
	// MaxInflightWrites caps concurrently served write-class requests
	// (create, update, delete, merge, snapshot PUT). 0 means unlimited.
	MaxInflightWrites int
	// ShedQPS is the token-bucket refill rate bounding the total accepted
	// request rate. 0 disables rate shedding.
	ShedQPS float64
	// ShedBurst is the bucket capacity (max burst above the steady rate).
	// 0 uses ShedQPS (a one-second burst).
	ShedBurst int
}

// admitter enforces AdmitOptions in front of the mux.
type admitter struct {
	opts AdmitOptions

	reads  atomic.Int64
	writes atomic.Int64

	bucket *tokenBucket
}

// tokenBucket is a clock-injectable token bucket, shared by the global
// shedder and the per-tenant rate gates.
type tokenBucket struct {
	mu     sync.Mutex
	qps    float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket builds a full bucket refilling at qps with the given
// burst capacity (0 defaults to one second of qps, at least one token).
func newTokenBucket(qps float64, burst int) *tokenBucket {
	if burst <= 0 {
		burst = int(qps)
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{qps: qps, burst: float64(burst), tokens: float64(burst), now: time.Now}
}

// take draws one token, reporting whether one was available.
func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.qps
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// newAdmitter builds an admitter; returns nil when every gate is disabled
// so ServeHTTP stays zero-cost for unconfigured servers.
func newAdmitter(opts AdmitOptions) *admitter {
	if opts.MaxInflightReads <= 0 && opts.MaxInflightWrites <= 0 && opts.ShedQPS <= 0 {
		return nil
	}
	a := &admitter{opts: opts}
	if opts.ShedQPS > 0 {
		a.bucket = newTokenBucket(opts.ShedQPS, opts.ShedBurst)
	}
	return a
}

// EnableAdmission installs admission control on the server. Call before
// serving traffic.
func (s *Server) EnableAdmission(opts AdmitOptions) {
	s.admit = newAdmitter(opts)
}

// admitExempt reports whether the request bypasses admission control:
// internal fan-out sub-requests, health probes, admin operations,
// profiling (when enabled via -pprof: an overloaded node is exactly the
// one worth profiling), and the streaming ingest upgrade - streams run
// their own per-batch blocking admission (acquireStreamBatch) so
// overload slows them down instead of 429-storming every connected
// writer into reconnect loops.
func admitExempt(r *http.Request) bool {
	if isInternal(r) {
		return true
	}
	p := r.URL.Path
	return p == "/healthz" || p == "/readyz" || p == "/metrics" || p == "/v1/ingest" ||
		strings.HasPrefix(p, "/admin/") || strings.HasPrefix(p, "/debug/pprof/")
}

// readClass reports whether the request is read-class: all GETs plus the
// POST estimate endpoint (a POST body carrying a query batch is still a
// read).
func readClass(r *http.Request) bool {
	if r.Method == http.MethodGet {
		return true
	}
	return r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/estimate")
}

// admit runs both gates. It returns a release func and true to serve, or
// writes the 429 itself and returns false. The caller must invoke release
// when the request finishes. m (optional) counts shed requests.
func (a *admitter) admit(w http.ResponseWriter, r *http.Request, m *serverMetrics) (release func(), ok bool) {
	if admitExempt(r) {
		return func() {}, true
	}
	if a.bucket != nil && !a.bucket.take() {
		if m != nil {
			m.admissionRejected("rate", requestTenant(r))
		}
		reject(w, retryAfterForRate(a.opts.ShedQPS))
		return nil, false
	}
	gate, limit := &a.reads, a.opts.MaxInflightReads
	if !readClass(r) {
		gate, limit = &a.writes, a.opts.MaxInflightWrites
	}
	if limit > 0 {
		if gate.Add(1) > int64(limit) {
			gate.Add(-1)
			if m != nil {
				m.admissionRejected("inflight", requestTenant(r))
			}
			reject(w, 1)
			return nil, false
		}
		return func() { gate.Add(-1) }, true
	}
	return func() {}, true
}

// acquireStreamBatch is the streaming-ingest admission gate: it BLOCKS
// until a rate token and a write slot are both available, up to
// maxWait. This is deliberate backpressure - a stalled stream stops
// reading frames, the client's credit window fills, and the writer
// slows to the server's pace with zero failed requests. waited reports
// whether the batch stalled at all (the backpressure metric); ok=false
// means the wait exceeded maxWait and the stream should be shed with a
// retryable overload error.
func (a *admitter) acquireStreamBatch(maxWait time.Duration) (release func(), waited bool, ok bool) {
	deadline := time.Now().Add(maxWait)
	for {
		if a.bucket == nil || a.bucket.take() {
			gate, limit := &a.writes, a.opts.MaxInflightWrites
			if limit <= 0 {
				return func() {}, waited, true
			}
			if gate.Add(1) <= int64(limit) {
				return func() { gate.Add(-1) }, waited, true
			}
			gate.Add(-1)
		}
		waited = true
		if time.Now().After(deadline) {
			return nil, true, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// retryAfterForRate suggests how long a shed client should wait: the time
// for one token to refill, rounded up to a whole second.
func retryAfterForRate(qps float64) int {
	if qps <= 0 {
		return 1
	}
	secs := int(1/qps) + 1
	if secs < 1 {
		secs = 1
	}
	return secs
}

// reject answers 429 + Retry-After - the admission contract: overload is
// reported immediately and cheaply, never by a slow timeout.
func reject(w http.ResponseWriter, retryAfterSecs int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	writeError(w, http.StatusTooManyRequests, "overloaded; retry after %ds", retryAfterSecs)
}

// ---- health and readiness ----

// readyResponse is the /readyz document: overall readiness plus the
// per-subsystem checks that produced it.
type readyResponse struct {
	// Ready is the conjunction of all checks.
	Ready bool `json:"ready"`
	// Checks maps each subsystem check to "ok" or its failure reason.
	Checks map[string]string `json:"checks"`
}

// handleReady serves readiness: recovery replay finished (implied by the
// server object existing - construction replays synchronously), the WAL
// appendable, the cluster map adopted, and - for replicas - bootstrap
// complete and the tail loop not wedged. Orchestrators gate traffic on
// it; liveness stays /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := readyResponse{Ready: true, Checks: map[string]string{}}
	fail := func(check, reason string) {
		resp.Ready = false
		resp.Checks[check] = reason
	}
	if s.persist != nil {
		if err := s.persist.w.Err(); err != nil {
			fail("wal", err.Error())
		} else {
			resp.Checks["wal"] = "ok"
		}
	}
	if s.cluster != nil {
		if s.cluster.map_() == nil {
			fail("cluster_map", "no partition map adopted")
		} else {
			resp.Checks["cluster_map"] = "ok"
		}
	}
	if rs := s.replica; rs != nil {
		rs.mu.Lock()
		active, ready, wedged := rs.active, rs.ready, rs.wedged
		rs.mu.Unlock()
		switch {
		case active && !ready:
			fail("replica", "bootstrap in progress")
		case active && wedged:
			fail("replica", "replication wedged; restart to re-bootstrap")
		default:
			resp.Checks["replica"] = "ok"
		}
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
