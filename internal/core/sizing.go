package core

import (
	"fmt"
	"math"
)

// Sizing implements the Lemma 1 / Theorem 1-3 accuracy planning: choosing
// (k1, k2) so that the boosted estimate is within relative error eps of the
// true cardinality with probability 1-phi, and the word-count accounting
// used to compare against histograms under equal space (Section 7).

// Guarantee is an (eps, phi) accuracy target: with probability at least
// 1-Phi the boosted estimate is within relative error Eps of the true
// cardinality, provided the self-join sizes and the result lower bound fed
// to the planner hold.
type Guarantee struct {
	Eps float64 // relative error bound (0, inf)
	Phi float64 // failure probability (0, 1)
}

func (g Guarantee) validate() error {
	if !(g.Eps > 0) {
		return fmt.Errorf("core: eps must be positive, got %g", g.Eps)
	}
	if !(g.Phi > 0 && g.Phi < 1) {
		return fmt.Errorf("core: phi must be in (0,1), got %g", g.Phi)
	}
	return nil
}

// JoinVarianceFactor returns the constant c(d) in the variance bound
// Var[Z] <= c(d) * SJ(R) * SJ(S) for the d-dimensional join estimator:
// (3^d - 1) / 4^d (Theorem 3; 1/2 for d = 1 and d = 2, matching
// Sections 4.1.4 and 4.2.1).
func JoinVarianceFactor(dims int) float64 {
	return (math.Pow(3, float64(dims)) - 1) / math.Pow(4, float64(dims))
}

// EpsJoinVarianceFactor returns the constant in Var[Z] <= c * SJ(X_E) *
// SJ(Y_I) for the d-dimensional epsilon-join estimator: 3^d - 1 (Lemma 8).
func EpsJoinVarianceFactor(dims int) float64 {
	return math.Pow(3, float64(dims)) - 1
}

// PlanGroups returns k2 = ceil(2 * lg(1/phi)) median groups (Lemma 1).
func PlanGroups(phi float64) int {
	k2 := int(math.Ceil(2 * math.Log2(1/phi)))
	if k2 < 1 {
		k2 = 1
	}
	return k2
}

// PlanJoinInstances returns (k1, k2) for a d-dimensional spatial join with
// the given self-join sizes and a lower bound on the true join cardinality
// (the "sanity bound" of Section 2.3: the tighter the bound, the fewer
// instances are needed). Per Lemma 1, k1 = ceil(8 * Var / (eps^2 * E^2))
// with Var = c(d) * sjR * sjS.
func PlanJoinInstances(dims int, g Guarantee, sjR, sjS, resultLowerBound float64) (k1, k2 int, err error) {
	if err := g.validate(); err != nil {
		return 0, 0, err
	}
	if !(sjR > 0 && sjS > 0) {
		return 0, 0, fmt.Errorf("core: self-join sizes must be positive (got %g, %g)", sjR, sjS)
	}
	if !(resultLowerBound > 0) {
		return 0, 0, fmt.Errorf("core: result lower bound must be positive, got %g", resultLowerBound)
	}
	varBound := JoinVarianceFactor(dims) * sjR * sjS
	k1f := math.Ceil(8 * varBound / (g.Eps * g.Eps * resultLowerBound * resultLowerBound))
	if k1f < 1 {
		k1f = 1
	}
	if k1f > 1<<30 {
		return 0, 0, fmt.Errorf("core: guarantee requires %g instances; loosen eps/phi or tighten the result bound", k1f)
	}
	return int(k1f), PlanGroups(g.Phi), nil
}

// JoinWordsPerInstancePair returns the number of machine words one atomic
// join estimator instance occupies for BOTH relations together: 2 * 2^d
// counters plus d family seeds (the 1-d case stores "five values" in the
// paper's accounting: X_I, X_E, Y_I, Y_E and one seed; Section 4.1.5).
// Seeds are 32 bytes = 4 words in this implementation but the paper counts
// them as one word; we follow the paper so space comparisons against the
// histogram baselines match its setup.
func JoinWordsPerInstancePair(dims int) int {
	return 2*(1<<uint(dims)) + dims
}

// JoinWordsPerRelation returns the per-relation share of an instance's
// words: 2^d counters plus half the seed words (seeds are shared between
// the two relations; the paper allocates memory "per dataset").
func JoinWordsPerRelation(dims int) float64 {
	return float64(int(1)<<uint(dims)) + float64(dims)/2
}

// CEJoinWordsPerRelation returns the per-relation share of one
// common-endpoints instance: 4^d counters (the {I,E,L,U}^d letter strings
// of Appendix C) plus half the d shared seed words.
func CEJoinWordsPerRelation(dims int) float64 {
	return float64(pow4(dims)) + float64(dims)/2
}

// PointBoxWordsPerRelation returns the per-relation share of one Lemma 8
// two-sketch instance (epsilon-joins and containment joins): a single
// counter per side plus half the d shared seed words. Containment callers
// pass the doubled dimensionality of the B.2 reduction.
func PointBoxWordsPerRelation(dims int) float64 {
	return 1 + float64(dims)/2
}

// RangeWordsPerInstance returns the footprint of one Lemma 9 range-query
// instance: 2^d counters (letter strings in {I,U}^d) plus d seed words -
// a range synopsis summarizes a single relation, so nothing is shared.
func RangeWordsPerInstance(dims int) float64 {
	return float64(int(1)<<uint(dims)) + float64(dims)
}

// InstancesForBudgetWords returns the largest instance count whose
// footprint at wordsPerInstance fits in budgetWords, rounded down to a
// multiple of groups (at least groups). Used by the equal-space
// comparisons of Section 7.
func InstancesForBudgetWords(wordsPerInstance float64, budgetWords, groups int) int {
	n := int(float64(budgetWords) / wordsPerInstance)
	if n < groups {
		n = groups
	}
	n -= n % groups
	if n == 0 {
		n = groups
	}
	return n
}

// InstancesForBudget returns the largest JOIN-sketch instance count whose
// per-relation footprint fits in budgetWords. Other sketch kinds have
// different per-instance footprints; use InstancesForBudgetWords with the
// matching accounting (CEJoinWordsPerRelation, PointBoxWordsPerRelation,
// RangeWordsPerInstance).
func InstancesForBudget(dims int, budgetWords int, groups int) int {
	return InstancesForBudgetWords(JoinWordsPerRelation(dims), budgetWords, groups)
}

// JoinSpaceWords returns the paper-accounting space of a planned join
// sketch pair: instances * JoinWordsPerInstancePair.
func JoinSpaceWords(dims, instances int) int {
	return instances * JoinWordsPerInstancePair(dims)
}

// PlanEpsJoinInstances sizes the epsilon-join estimator of Lemma 8:
// k1 = ceil(8 * (3^d - 1) * SJ(X_E) * SJ(Y_I) / (eps^2 * E^2)).
func PlanEpsJoinInstances(dims int, g Guarantee, sjPoints, sjBoxes, resultLowerBound float64) (k1, k2 int, err error) {
	if err := g.validate(); err != nil {
		return 0, 0, err
	}
	if !(sjPoints > 0 && sjBoxes > 0) {
		return 0, 0, fmt.Errorf("core: self-join sizes must be positive (got %g, %g)", sjPoints, sjBoxes)
	}
	if !(resultLowerBound > 0) {
		return 0, 0, fmt.Errorf("core: result lower bound must be positive, got %g", resultLowerBound)
	}
	varBound := EpsJoinVarianceFactor(dims) * sjPoints * sjBoxes
	k1f := math.Ceil(8 * varBound / (g.Eps * g.Eps * resultLowerBound * resultLowerBound))
	if k1f < 1 {
		k1f = 1
	}
	if k1f > 1<<30 {
		return 0, 0, fmt.Errorf("core: guarantee requires %g instances; loosen eps/phi or tighten the result bound", k1f)
	}
	return int(k1f), PlanGroups(g.Phi), nil
}

// RangeVarianceBound returns the Lemma 9 variance bound for a range query
// over a 1-d relation with self-join size sj on a domain of size 2^h:
// Var[Z] <= 2 * (3h + 1) * SJ(R).
func RangeVarianceBound(logDomain int, sj float64) float64 {
	return 2 * (3*float64(logDomain) + 1) * sj
}

// PlanRangeInstances sizes the Lemma 9 range-query estimator for a 1-d
// relation.
func PlanRangeInstances(logDomain int, g Guarantee, sj, resultLowerBound float64) (k1, k2 int, err error) {
	if err := g.validate(); err != nil {
		return 0, 0, err
	}
	if !(sj > 0) {
		return 0, 0, fmt.Errorf("core: self-join size must be positive, got %g", sj)
	}
	if !(resultLowerBound > 0) {
		return 0, 0, fmt.Errorf("core: result lower bound must be positive, got %g", resultLowerBound)
	}
	varBound := RangeVarianceBound(logDomain, sj)
	k1f := math.Ceil(8 * varBound / (g.Eps * g.Eps * resultLowerBound * resultLowerBound))
	if k1f < 1 {
		k1f = 1
	}
	if k1f > 1<<30 {
		return 0, 0, fmt.Errorf("core: guarantee requires %g instances", k1f)
	}
	return int(k1f), PlanGroups(g.Phi), nil
}
