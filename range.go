package spatial

import (
	"fmt"

	"repro/geo"
	"repro/internal/core"
)

// RangeConfig configures a range-query selectivity estimator
// (Definition 3, Section 6.4).
type RangeConfig struct {
	// Dims is the data dimensionality.
	Dims int
	// DomainSize is the per-dimension coordinate domain.
	DomainSize uint64
	// Sizing picks the number of atomic instances.
	Sizing Sizing
	// MaxLevel caps the dyadic level (Section 6.5). Positive values are
	// explicit; 0 picks an adaptive default from the domain size;
	// MaxLevelUncapped disables the cap.
	MaxLevel int
	// Seed makes the synopsis deterministic.
	Seed uint64
}

// RangeEstimator estimates |Q(q, R)| - how many objects of the summarized
// relation overlap a query hyper-rectangle - using the optimized
// two-sketch-per-dimension estimator of Lemma 9. Data and queries are
// endpoint-transformed internally, so arbitrary coordinates are fine.
//
// A RangeEstimator is safe for concurrent use (see shard.go).
type RangeEstimator struct {
	cfg  RangeConfig
	plan *core.Plan
	st   *shardedState[*core.RangeSketch]
}

// NewRangeEstimator validates the configuration and allocates the synopsis.
func NewRangeEstimator(cfg RangeConfig) (*RangeEstimator, error) {
	if cfg.Dims < 1 || cfg.Dims > core.MaxDims {
		return nil, fmt.Errorf("spatial: dims %d outside [1, %d]", cfg.Dims, core.MaxDims)
	}
	if cfg.DomainSize < 2 {
		return nil, fmt.Errorf("spatial: domain size must be >= 2, got %d", cfg.DomainSize)
	}
	instances, groups, err := cfg.Sizing.resolve(cfg.Dims, core.RangeWordsPerInstance(cfg.Dims))
	if err != nil {
		return nil, err
	}
	h := log2ceil(geo.TransformDomain(cfg.DomainSize))
	logDom := make([]int, cfg.Dims)
	var maxLevel []int
	for i := range logDom {
		logDom[i] = h
	}
	if ml := resolveMaxLevel(cfg.MaxLevel, cfg.DomainSize); ml > 0 {
		maxLevel = make([]int, cfg.Dims)
		for i := range maxLevel {
			maxLevel[i] = ml
		}
	}
	plan, err := core.NewPlan(core.Config{
		Dims: cfg.Dims, LogDomain: logDom, MaxLevel: maxLevel,
		Instances: instances, Groups: groups, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	e := &RangeEstimator{cfg: cfg, plan: plan}
	e.st = newShardedState(ingestShards(), plan.NewRangeSketch)
	return e, nil
}

// Config returns the estimator's configuration.
func (e *RangeEstimator) Config() RangeConfig { return e.cfg }

// Instances returns the number of atomic estimator instances maintained.
func (e *RangeEstimator) Instances() int { return e.plan.Instances() }

// Groups returns the number of median groups (k2).
func (e *RangeEstimator) Groups() int { return e.plan.Groups() }

// SpaceWords returns the synopsis footprint in the paper's word accounting
// (2^d counters plus d seed words per instance).
func (e *RangeEstimator) SpaceWords() int {
	return int(core.RangeWordsPerInstance(e.cfg.Dims)) * e.plan.Instances()
}

// Count returns the number of summarized objects.
func (e *RangeEstimator) Count() int64 {
	var n int64
	e.st.fold(func(s *core.RangeSketch) error {
		n += s.Count()
		return nil
	})
	return n
}

func (e *RangeEstimator) check(r geo.HyperRect) error {
	if len(r) != e.cfg.Dims {
		return fmt.Errorf("spatial: dimensionality %d, want %d", len(r), e.cfg.Dims)
	}
	for i, iv := range r {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("spatial: invalid interval [%d, %d] in dim %d", iv.Lo, iv.Hi, i)
		}
		if iv.Hi >= e.cfg.DomainSize {
			return fmt.Errorf("spatial: coordinate %d outside domain %d in dim %d", iv.Hi, e.cfg.DomainSize, i)
		}
	}
	return nil
}

// Insert adds an object to the summarized relation.
func (e *RangeEstimator) Insert(r geo.HyperRect) error { return e.update(r, true) }

// Delete removes a previously inserted object.
func (e *RangeEstimator) Delete(r geo.HyperRect) error { return e.update(r, false) }

func (e *RangeEstimator) update(r geo.HyperRect, insert bool) error {
	if err := e.check(r); err != nil {
		return err
	}
	if err := e.st.tapRecord1(opOf(insert), SideData, r, nil); err != nil {
		return err
	}
	return e.ingestRect(r, insert)
}

func (e *RangeEstimator) ingestRect(r geo.HyperRect, insert bool) error {
	t := geo.TransformKeepRect(r)
	return e.st.ingest(func(s *core.RangeSketch) error {
		if insert {
			return s.Insert(t)
		}
		return s.Delete(t)
	})
}

// InsertBulk bulk-loads objects (parallelized internally).
func (e *RangeEstimator) InsertBulk(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := e.check(r); err != nil {
			return err
		}
	}
	if err := e.st.tapRects(OpInsert, SideData, rects); err != nil {
		return err
	}
	t := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		t[i] = geo.TransformKeepRect(r)
	}
	return e.st.ingest(func(s *core.RangeSketch) error { return s.InsertAll(t) })
}

// SetUpdateTap installs tap to observe every point/bulk update before it
// is applied (see UpdateTap); nil removes it. Merge and MergeSnapshot are
// not tapped.
func (e *RangeEstimator) SetUpdateTap(tap UpdateTap) { e.st.setTap(tap) }

// Apply replays one update record through the estimator's public update
// path - the inverse of the tap (see JoinEstimator.Apply).
func (e *RangeEstimator) Apply(rec UpdateRecord) error {
	if rec.Rect == nil {
		return fmt.Errorf("spatial: range estimators take rects, record carries a point")
	}
	if rec.Side != SideData {
		return fmt.Errorf("spatial: range estimators have no %v side", rec.Side)
	}
	if rec.Op == OpDelete {
		return e.Delete(rec.Rect)
	}
	return e.Insert(rec.Rect)
}

// ValidateRecord checks rec against this estimator's input contract -
// exactly the validation Apply performs - without applying it (see
// JoinEstimator.ValidateRecord).
func (e *RangeEstimator) ValidateRecord(rec UpdateRecord) error {
	if rec.Rect == nil {
		return fmt.Errorf("spatial: range estimators take rects, record carries a point")
	}
	if rec.Side != SideData {
		return fmt.Errorf("spatial: range estimators have no %v side", rec.Side)
	}
	return e.check(rec.Rect)
}

// ApplyUntapped replays rec like Apply but without notifying the update
// tap (see JoinEstimator.ApplyUntapped).
func (e *RangeEstimator) ApplyUntapped(rec UpdateRecord) error {
	if err := e.ValidateRecord(rec); err != nil {
		return err
	}
	return e.ingestRect(rec.Rect, rec.Op != OpDelete)
}

// mergeRangeSketch adapts core merging to the shard helper.
func mergeRangeSketch(dst, src *core.RangeSketch) error { return dst.Merge(src) }

// queryView answers one range query from the current epoch view: validate,
// check the per-view memo against the raw query, and transform + run the
// kernel on a miss. Estimate, EstimateWithCount and Selectivity all route
// through here, so every caller sees the same (estimate, count) pair from
// one consistent view, and a repeated hot query on an unchanged estimator
// is a pointer load.
func (e *RangeEstimator) queryView(q geo.HyperRect) (est Estimate, count int64, err error) {
	if err := e.check(q); err != nil {
		return Estimate{}, 0, fmt.Errorf("spatial: bad range query: %w", err)
	}
	err = e.st.view(e.plan.NewRangeSketch, mergeRangeSketch, func(v viewRef[*core.RangeSketch]) error {
		var err error
		est, count, _, err = v.memoized(memoRange, q, func() (Estimate, int64, int64, error) {
			ce, err := v.state.EstimateRange(geo.TransformShrinkRect(q))
			if err != nil {
				return Estimate{}, 0, 0, err
			}
			return fromCore(ce), v.state.Count(), 0, nil
		})
		return err
	})
	return est, count, err
}

// Estimate returns the estimated number of summarized objects overlapping
// q (strict overlap, Definition 3).
func (e *RangeEstimator) Estimate(q geo.HyperRect) (Estimate, error) {
	est, _, err := e.queryView(q)
	return est, err
}

// EstimateWithCount returns Estimate(q) together with the relation size,
// both read from the same consistent view.
func (e *RangeEstimator) EstimateWithCount(q geo.HyperRect) (est Estimate, count int64, err error) {
	return e.queryView(q)
}

// Selectivity returns Estimate(q) / Count().
func (e *RangeEstimator) Selectivity(q geo.HyperRect) (float64, error) {
	est, n, err := e.queryView(q)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("spatial: selectivity undefined for an empty relation")
	}
	return est.Clamped() / float64(n), nil
}

// ValidateQuery checks a range query against the estimator's public
// configuration - dimensionality, interval sanity, domain bounds - without
// running it. Batch servers use it to reject individual malformed queries
// up front and still answer the rest of the batch.
func (e *RangeEstimator) ValidateQuery(q geo.HyperRect) error {
	if err := e.check(q); err != nil {
		return fmt.Errorf("spatial: bad range query: %w", err)
	}
	return nil
}

// EstimateBatch answers many range queries against ONE pinned view with one
// scratch set: the view is resolved once for the whole batch (so all
// results are mutually consistent even under concurrent writers) and the
// estimate kernel reuses pooled query-side scratch across the queries. It
// also returns the relation size read from the same view.
func (e *RangeEstimator) EstimateBatch(qs []geo.HyperRect) ([]Estimate, int64, error) {
	for _, q := range qs {
		if err := e.check(q); err != nil {
			return nil, 0, fmt.Errorf("spatial: bad range query: %w", err)
		}
	}
	out := make([]Estimate, len(qs))
	var count int64
	err := e.st.view(e.plan.NewRangeSketch, mergeRangeSketch, func(v viewRef[*core.RangeSketch]) error {
		sc := e.plan.GetScratch()
		defer e.plan.PutScratch(sc)
		for i, q := range qs {
			ce, err := v.state.EstimateRangeWith(geo.TransformShrinkRect(q), sc)
			if err != nil {
				return err
			}
			out[i] = fromCore(ce)
		}
		count = v.state.Count()
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, count, nil
}

// header returns the full public configuration of this estimator.
func (e *RangeEstimator) header() snapHeader {
	return snapHeader{
		kind:       KindRange,
		dims:       uint32(e.cfg.Dims),
		domainSize: e.cfg.DomainSize,
		maxLevel:   int32(resolveMaxLevel(e.cfg.MaxLevel, e.cfg.DomainSize)),
		seed:       e.cfg.Seed,
		instances:  uint64(e.plan.Instances()),
		groups:     uint64(e.plan.Groups()),
	}
}

// Merge folds the synopsis of other into e: afterwards e summarizes the
// union of both estimators' inputs, exactly as if every object had been
// inserted into e directly (sketches are linear projections, so the merge
// is exact). The full public configurations must match. other is not
// modified; Merge is safe under concurrency.
func (e *RangeEstimator) Merge(other *RangeEstimator) error {
	if err := e.header().compatible(other.header()); err != nil {
		return err
	}
	snap, err := other.st.snapshot(other.plan.NewRangeSketch, mergeRangeSketch)
	if err != nil {
		return err
	}
	return e.st.ingestFirst(func(s *core.RangeSketch) error { return s.Merge(snap) })
}

// Marshal serializes the whole estimator - synopsis plus full public
// configuration - into a versioned snapshot envelope; see
// UnmarshalRangeEstimator.
func (e *RangeEstimator) Marshal() ([]byte, error) {
	var blob []byte
	err := e.st.view(e.plan.NewRangeSketch, mergeRangeSketch, func(v viewRef[*core.RangeSketch]) error {
		var err error
		blob, err = v.state.MarshalBinary()
		return err
	})
	if err != nil {
		return nil, err
	}
	return marshalEnvelope(e.header(), [][]byte{blob}), nil
}

// UnmarshalRangeEstimator reconstructs a working estimator from a Marshal
// snapshot: configuration, counters and count all round-trip.
func UnmarshalRangeEstimator(data []byte) (*RangeEstimator, error) {
	h, blobs, err := unmarshalEnvelope(data)
	if err != nil {
		return nil, err
	}
	if err := h.expectBlobs(blobs, KindRange, 1); err != nil {
		return nil, err
	}
	e, err := NewRangeEstimator(RangeConfig{
		Dims:       int(h.dims),
		DomainSize: h.domainSize,
		Sizing:     Sizing{Instances: int(h.instances), Groups: int(h.groups)},
		MaxLevel:   configuredMaxLevel(h.maxLevel),
		Seed:       h.seed,
	})
	if err != nil {
		return nil, err
	}
	if err := e.header().compatible(h); err != nil {
		return nil, fmt.Errorf("spatial: inconsistent snapshot configuration: %w", err)
	}
	return e, e.mergeBlob(blobs[0])
}

func (e *RangeEstimator) mergeBlob(blob []byte) error {
	other, err := core.UnmarshalRangeSketch(blob)
	if err != nil {
		return err
	}
	return e.st.ingestFirst(func(s *core.RangeSketch) error { return s.Merge(other) })
}

// MergeSnapshot folds a Marshal snapshot produced by another estimator
// into this one, rejecting any public-config mismatch at decode time.
func (e *RangeEstimator) MergeSnapshot(data []byte) error {
	h, blobs, err := unmarshalEnvelope(data)
	if err != nil {
		return err
	}
	if err := h.expectBlobs(blobs, KindRange, 1); err != nil {
		return err
	}
	if err := e.header().compatible(h); err != nil {
		return err
	}
	return e.mergeBlob(blobs[0])
}

// MergeFrom merges a serialized synopsis (produced by Marshal on another
// estimator with a matching configuration) into this one. It is an alias
// of MergeSnapshot, kept for the edge-build-then-ship workflow's name.
func (e *RangeEstimator) MergeFrom(data []byte) error { return e.MergeSnapshot(data) }
