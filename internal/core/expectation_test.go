package core

import (
	"math"
	"testing"

	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/dyadic"
	"repro/internal/exact"
)

// Algebraic expectation tests.
//
// Every estimator in this package is a sum of products of counter values,
// and every counter is a linear combination of xi-variables with
// deterministic integer coefficients (the cover multiplicities). Since
// E[xi_a xi_b] = [a == b] under pairwise independence and the per-dimension
// families are independent, the exact expected value of each estimator is a
// polynomial in cover-id multiset inner products - computable with NO
// sampling. These tests evaluate that algebra and compare against the exact
// query answers, pinning the estimator formulas (scales, signs, pairings)
// to machine precision. The statistical tests elsewhere then only need to
// tie the running implementation to the same formulas.

// innerProd returns sum over ids of mult_a(id) * mult_b(id): the exact
// expectation E[(sum_a xi)(sum_b xi)] for id lists with multiplicity.
func innerProd(a, b []uint64) float64 {
	counts := make(map[uint64]int64, len(a))
	for _, id := range a {
		counts[id]++
	}
	var s int64
	for _, id := range b {
		s += counts[id]
	}
	return float64(s)
}

// letter lists per dimension.
type dimLists struct {
	cover []uint64 // I: canonical interval cover
	ept   []uint64 // E: both endpoint point covers concatenated
	ptHi  []uint64 // upper endpoint point cover (range sketch letter U)
	leafL []uint64 // L: lower endpoint leaf
	leafU []uint64 // U: upper endpoint leaf
}

func listsFor(dom dyadic.Domain, ml int, iv geo.Interval) dimLists {
	var l dimLists
	l.cover = dom.CoverMax(iv.Lo, iv.Hi, ml, nil)
	l.ept = dom.PointCoverMax(iv.Lo, ml, nil)
	l.ept = dom.PointCoverMax(iv.Hi, ml, l.ept)
	l.ptHi = dom.PointCoverMax(iv.Hi, ml, nil)
	l.leafL = []uint64{dom.LeafID(iv.Lo)}
	l.leafU = []uint64{dom.LeafID(iv.Hi)}
	return l
}

// expectedJoin computes E[Z] of the {I,E}^d join estimator exactly:
// E[Z] = 2^-d * sum_{r,s} prod_dim (ip(I_r, E_s) + ip(E_r, I_s)).
func expectedJoin(doms []dyadic.Domain, ml []int, r, s []geo.HyperRect) float64 {
	d := len(doms)
	var total float64
	for _, a := range r {
		la := make([]dimLists, d)
		for i := 0; i < d; i++ {
			la[i] = listsFor(doms[i], ml[i], a[i])
		}
		for _, b := range s {
			prod := 1.0
			for i := 0; i < d; i++ {
				lb := listsFor(doms[i], ml[i], b[i])
				prod *= innerProd(la[i].cover, lb.ept) + innerProd(la[i].ept, lb.cover)
			}
			total += prod
		}
	}
	return total / math.Pow(2, float64(d))
}

// expectedCE computes E[Z] of the common-endpoint estimators exactly via
// the per-dimension pairing factor.
func expectedCE(doms []dyadic.Domain, ml []int, r, s []geo.HyperRect, strict bool) float64 {
	d := len(doms)
	var total float64
	for _, a := range r {
		la := make([]dimLists, d)
		for i := 0; i < d; i++ {
			la[i] = listsFor(doms[i], ml[i], a[i])
		}
		for _, b := range s {
			prod := 1.0
			for i := 0; i < d; i++ {
				lb := listsFor(doms[i], ml[i], b[i])
				f := innerProd(la[i].cover, lb.ept) + innerProd(la[i].ept, lb.cover) -
					innerProd(la[i].leafL, lb.leafL) - innerProd(la[i].leafU, lb.leafU)
				if strict {
					f -= 2 * (innerProd(la[i].leafL, lb.leafU) + innerProd(la[i].leafU, lb.leafL))
				}
				prod *= f
			}
			total += prod
		}
	}
	return total / math.Pow(2, float64(d))
}

// expectedPointBox computes E[X_E * Y_I] exactly.
func expectedPointBox(doms []dyadic.Domain, ml []int, pts []geo.Point, boxes []geo.HyperRect) float64 {
	d := len(doms)
	var total float64
	for _, p := range pts {
		pcov := make([][]uint64, d)
		for i := 0; i < d; i++ {
			pcov[i] = doms[i].PointCoverMax(p[i], ml[i], nil)
		}
		for _, b := range boxes {
			prod := 1.0
			for i := 0; i < d; i++ {
				prod *= innerProd(pcov[i], doms[i].CoverMax(b[i].Lo, b[i].Hi, ml[i], nil))
			}
			total += prod
		}
	}
	return total
}

// expectedRange computes E[Z] of the Lemma 9 range estimator exactly.
func expectedRange(doms []dyadic.Domain, ml []int, r []geo.HyperRect, q geo.HyperRect) float64 {
	d := len(doms)
	var total float64
	lq := make([]dimLists, d)
	for i := 0; i < d; i++ {
		lq[i] = listsFor(doms[i], ml[i], q[i])
	}
	for _, a := range r {
		prod := 1.0
		for i := 0; i < d; i++ {
			la := listsFor(doms[i], ml[i], a[i])
			prod *= innerProd(lq[i].cover, la.ptHi) + innerProd(lq[i].ptHi, la.cover)
		}
		total += prod
	}
	return total
}

func domsFor(dims, h int) ([]dyadic.Domain, []int) {
	doms := make([]dyadic.Domain, dims)
	ml := make([]int, dims)
	for i := range doms {
		doms[i] = dyadic.MustNew(h)
		ml[i] = h
	}
	return doms, ml
}

func requireEq(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("%s: algebraic E[Z] = %v, exact = %v", name, got, want)
	}
}

// TestExpectedJoinExact: the {I,E}^d estimator is exactly unbiased for
// strict joins on endpoint-transformed inputs, in 1, 2 and 3 dimensions.
func TestExpectedJoinExact(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		const dom = 16
		mean := make([]float64, dims)
		for i := range mean {
			mean[i] = 5
		}
		r := datagen.MustRects(datagen.Spec{N: 25, Dims: dims, Domain: dom, Seed: uint64(500 + dims), MeanLen: mean})
		s := datagen.MustRects(datagen.Spec{N: 25, Dims: dims, Domain: dom, Seed: uint64(600 + dims), MeanLen: mean})
		want := float64(exact.JoinCountBrute(r, s))
		tr, ts := transformPair(r, s)
		doms, ml := domsFor(dims, log2ceil(geo.TransformDomain(dom)))
		requireEq(t, "join", expectedJoin(doms, ml, tr, ts), want)
	}
}

// TestExpectedJoinSharedEndpointsDense: exhaustively over all interval
// pairs of a small domain (every Figure 3 case appears many times), the
// transform keeps the estimator exactly unbiased.
func TestExpectedJoinSharedEndpointsDense(t *testing.T) {
	var all []geo.HyperRect
	const dom = 7
	for lo := uint64(0); lo < dom; lo++ {
		for hi := lo + 1; hi < dom; hi++ {
			all = append(all, geo.Span1D(lo, hi))
		}
	}
	want := float64(exact.JoinCountBrute(all, all))
	tr, ts := transformPair(all, all)
	doms, ml := domsFor(1, log2ceil(geo.TransformDomain(dom)))
	requireEq(t, "join-dense", expectedJoin(doms, ml, tr, ts), want)
}

// TestExpectedJoinMaxLevel: level capping preserves exact unbiasedness
// (Section 6.5), including maxLevel 0 = standard sketches.
func TestExpectedJoinMaxLevel(t *testing.T) {
	const dom = 16
	r := datagen.MustRects(datagen.Spec{N: 30, Dims: 1, Domain: dom, Seed: 43, MeanLen: []float64{5}})
	s := datagen.MustRects(datagen.Spec{N: 30, Dims: 1, Domain: dom, Seed: 44, MeanLen: []float64{5}})
	want := float64(exact.JoinCountBrute(r, s))
	tr, ts := transformPair(r, s)
	h := log2ceil(geo.TransformDomain(dom))
	for _, ml := range []int{0, 1, 2, 3, h} {
		doms, _ := domsFor(1, h)
		requireEq(t, "join-maxlevel", expectedJoin(doms, []int{ml}, tr, ts), want)
	}
}

// TestExpectedCEExact: Lemma 13 (strict) and the Appendix C extended
// estimator are exactly unbiased WITHOUT transformation, on raw data dense
// with shared endpoints, in 1, 2 and 3 dimensions.
func TestExpectedCEExact(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		const dom = 8
		gen := func(seed uint64, n int) []geo.HyperRect {
			out := make([]geo.HyperRect, 0, n)
			raw := denseIntervals(seed, n*dims, dom)
			for i := 0; i < n; i++ {
				h := make(geo.HyperRect, dims)
				for j := 0; j < dims; j++ {
					h[j] = raw[i*dims+j][0]
				}
				out = append(out, h)
			}
			return out
		}
		r := gen(uint64(700+dims), 20)
		s := gen(uint64(800+dims), 20)
		doms, ml := domsFor(dims, 3)
		wantStrict := float64(exact.JoinCountBrute(r, s))
		wantExt := float64(exact.JoinCountExtBrute(r, s))
		requireEq(t, "ce-strict", expectedCE(doms, ml, r, s, true), wantStrict)
		requireEq(t, "ce-ext", expectedCE(doms, ml, r, s, false), wantExt)
	}
}

// TestExpectedCEDenseExhaustive: all interval pairs over a small domain,
// raw (no transform) - the hardest shared-endpoint workload.
func TestExpectedCEDenseExhaustive(t *testing.T) {
	var all []geo.HyperRect
	const dom = 8
	for lo := uint64(0); lo < dom; lo++ {
		for hi := lo + 1; hi < dom; hi++ {
			all = append(all, geo.Span1D(lo, hi))
		}
	}
	doms, ml := domsFor(1, 3)
	requireEq(t, "ce-strict-exhaustive", expectedCE(doms, ml, all, all, true),
		float64(exact.JoinCountBrute(all, all)))
	requireEq(t, "ce-ext-exhaustive", expectedCE(doms, ml, all, all, false),
		float64(exact.JoinCountExtBrute(all, all)))
}

// TestExpectedEpsJoinExact: the Section 6.3 ball reduction is exactly
// unbiased for L-infinity epsilon-joins, with and without the Section 6.5
// level cap on the point/box covers.
func TestExpectedEpsJoinExact(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		const dom = 16
		a := datagen.MustPoints(datagen.Spec{N: 30, Dims: dims, Domain: dom, Seed: uint64(900 + dims)})
		b := datagen.MustPoints(datagen.Spec{N: 30, Dims: dims, Domain: dom, Seed: uint64(950 + dims)})
		for _, cap := range []int{1, 2, 4} {
			doms, ml := domsFor(dims, 4)
			for i := range ml {
				ml[i] = cap
			}
			for _, eps := range []uint64{0, 1, 3} {
				want := float64(exact.EpsJoinCount(a, b, eps, exact.LInf))
				balls := make([]geo.HyperRect, len(b))
				for i, q := range b {
					balls[i] = geo.Ball(q, eps, dom)
				}
				requireEq(t, "epsjoin", expectedPointBox(doms, ml, a, balls), want)
			}
		}
	}
}

// TestExpectedContainmentExact: the Appendix B.2 reduction is exactly
// unbiased for containment joins, shared endpoints included.
func TestExpectedContainmentExact(t *testing.T) {
	const dom = 16
	r := denseIntervals(21, 40, dom)
	s := denseIntervals(22, 40, dom)
	want := float64(exact.ContainmentCount(r, s))
	doms, ml := domsFor(2, 4)
	pts := make([]geo.Point, len(r))
	for i, a := range r {
		pts[i] = ContainmentPoint(a)
	}
	boxes := make([]geo.HyperRect, len(s))
	for i, b := range s {
		boxes[i] = ContainmentBox(b)
	}
	requireEq(t, "containment", expectedPointBox(doms, ml, pts, boxes), want)
}

// TestExpectedRangeExact: Lemma 9's two-event decomposition is exactly
// unbiased over transformed data/query pairs, for many queries.
func TestExpectedRangeExact(t *testing.T) {
	const dom = 16
	rects := datagen.MustRects(datagen.Spec{N: 40, Dims: 1, Domain: dom, Seed: 71, MeanLen: []float64{5}})
	h := log2ceil(geo.TransformDomain(dom))
	doms, ml := domsFor(1, h)
	tr := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		tr[i] = geo.TransformKeepRect(r)
	}
	for lo := uint64(0); lo < dom-1; lo += 2 {
		for hi := lo + 1; hi < dom; hi += 3 {
			q := geo.Span1D(lo, hi)
			want := float64(exact.RangeCount(rects, q))
			tq := geo.TransformShrinkRect(q.Clone())
			requireEq(t, "range", expectedRange(doms, ml, tr, tq), want)
		}
	}
}

// TestExpectedRange2DExact: the d-dimensional range generalization.
func TestExpectedRange2DExact(t *testing.T) {
	const dom = 8
	rects := datagen.MustRects(datagen.Spec{N: 30, Dims: 2, Domain: dom, Seed: 72, MeanLen: []float64{3, 3}})
	h := log2ceil(geo.TransformDomain(dom))
	doms, ml := domsFor(2, h)
	tr := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		tr[i] = geo.TransformKeepRect(r)
	}
	for _, q := range []geo.HyperRect{
		geo.Rect(1, 4, 2, 6), geo.Rect(0, 7, 0, 7), geo.Rect(3, 5, 3, 5),
	} {
		want := float64(exact.RangeCount(rects, q))
		requireEq(t, "range2d", expectedRange(doms, ml, tr, geo.TransformShrinkRect(q)), want)
	}
}
