package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/geo"
)

// Synthetic analogs of the Wyoming land-use datasets of Section 7.3.
//
// The originals (1:10^6-scale GIS layers; LANDO: land ownership, 33860
// objects; LANDC: land cover, 14731 objects; SOIL: soils, 29662 objects)
// are not redistributable, so we substitute clustered rectangle generators
// with matched object counts. Real GIS bounding boxes are spatially
// correlated (objects cluster along geographic features) with heavy-tailed
// sizes; the generator reproduces both properties: Gaussian clusters with
// power-law cluster popularity and log-normal object extents. These are
// exactly the distributional features that separate EH, GH and SKETCH in
// Figures 9-11 (skew and local density), so the substitution preserves the
// comparison the figures make. See DESIGN.md Section 3.5.

// LandSpec describes a clustered "land-use layer" workload.
type LandSpec struct {
	Name       string  // dataset label
	N          int     // number of objects
	Domain     uint64  // per-dimension domain size
	Clusters   int     // number of Gaussian clusters
	Spread     float64 // cluster standard deviation, as a fraction of the domain
	SizeMedian float64 // median object side length, absolute coordinates
	SizeSigma  float64 // log-normal sigma of object side lengths
	Seed       uint64
}

// LandDataset is a generated land-use analog.
type LandDataset struct {
	Name   string
	Domain uint64 // per-dimension coordinate domain of the layer
	Rects  []geo.HyperRect
}

// Land generates a clustered rectangle layer per the spec.
func Land(spec LandSpec) (LandDataset, error) {
	if spec.N < 0 || spec.Clusters < 1 || spec.Domain < 16 {
		return LandDataset{}, fmt.Errorf("datagen: invalid land spec %+v", spec)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x2545f4914f6cdd1d))
	type cluster struct {
		cx, cy float64
		weight float64
	}
	clusters := make([]cluster, spec.Clusters)
	var totalW float64
	for i := range clusters {
		clusters[i] = cluster{
			cx:     rng.Float64() * float64(spec.Domain),
			cy:     rng.Float64() * float64(spec.Domain),
			weight: math.Pow(float64(i+1), -0.8), // popular features dominate
		}
		totalW += clusters[i].weight
	}
	pick := func() cluster {
		u := rng.Float64() * totalW
		for _, c := range clusters {
			if u < c.weight {
				return c
			}
			u -= c.weight
		}
		return clusters[len(clusters)-1]
	}

	spread := spec.Spread * float64(spec.Domain)
	dmax := float64(spec.Domain - 1)
	clamp := func(x float64) uint64 {
		if x < 0 {
			return 0
		}
		if x > dmax {
			return uint64(dmax)
		}
		return uint64(x)
	}
	sideLen := func() float64 {
		// Log-normal around the median.
		return spec.SizeMedian * math.Exp(rng.NormFloat64()*spec.SizeSigma)
	}

	rects := make([]geo.HyperRect, spec.N)
	for k := range rects {
		c := pick()
		px := c.cx + rng.NormFloat64()*spread
		py := c.cy + rng.NormFloat64()*spread
		wx, wy := sideLen(), sideLen()
		lox, loy := clamp(px-wx/2), clamp(py-wy/2)
		hix, hiy := clamp(px+wx/2), clamp(py+wy/2)
		if hix <= lox {
			hix = min(lox+2, uint64(dmax))
			if hix <= lox { // pinned to the domain edge
				lox = hix - 2
			}
		}
		if hiy <= loy {
			hiy = min(loy+2, uint64(dmax))
			if hiy <= loy {
				loy = hiy - 2
			}
		}
		rects[k] = geo.Rect(lox, hix, loy, hiy)
	}
	return LandDataset{Name: spec.Name, Domain: spec.Domain, Rects: rects}, nil
}

// landDomain is the domain of the land-analog presets at scale 1.
const landDomain = 1 << 14

// landPresetDomain shrinks the domain with the square root of the object
// scale so the layer's object DENSITY matches the full-size original -
// the quantity the estimators' relative error regimes depend on (see
// EXPERIMENTS.md on scaling).
func landPresetDomain(scale float64) uint64 {
	if scale <= 0 || scale >= 1 {
		return landDomain
	}
	d := float64(landDomain) * math.Sqrt(scale)
	h := math.Round(math.Log2(d))
	out := uint64(1) << uint(math.Max(h, 10))
	if out > landDomain {
		out = landDomain
	}
	return out
}

// Lando returns the LANDO analog (land ownership, 33860 objects at
// scale 1.0). Scale shrinks the object count (and the domain, preserving
// density) for fast experiment runs.
func Lando(seed uint64, scale float64) LandDataset {
	return mustLand(LandSpec{
		Name: "LANDO", N: scaled(33860, scale), Domain: landPresetDomain(scale),
		Clusters: 60, Spread: 0.05, SizeMedian: 180, SizeSigma: 0.9, Seed: seed ^ 0xa11ce,
	})
}

// Landc returns the LANDC analog (land cover, 14731 objects at scale 1.0).
func Landc(seed uint64, scale float64) LandDataset {
	return mustLand(LandSpec{
		Name: "LANDC", N: scaled(14731, scale), Domain: landPresetDomain(scale),
		Clusters: 35, Spread: 0.08, SizeMedian: 260, SizeSigma: 1.0, Seed: seed ^ 0xbeef1,
	})
}

// Soil returns the SOIL analog (soil polygons, 29662 objects at scale 1.0).
func Soil(seed uint64, scale float64) LandDataset {
	return mustLand(LandSpec{
		Name: "SOIL", N: scaled(29662, scale), Domain: landPresetDomain(scale),
		Clusters: 120, Spread: 0.04, SizeMedian: 140, SizeSigma: 0.8, Seed: seed ^ 0x50112,
	})
}

// LandDomain returns the coordinate domain size of the land presets at
// scale 1.
func LandDomain() uint64 { return landDomain }

func scaled(n int, scale float64) int {
	if scale <= 0 || scale >= 1 {
		return n
	}
	s := int(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

func mustLand(spec LandSpec) LandDataset {
	d, err := Land(spec)
	if err != nil {
		panic(err)
	}
	return d
}
