package core

import (
	"fmt"

	"repro/geo"
)

// RangeSketch implements the optimized range-query estimator of Section 6.4
// (Lemma 9). In one dimension the data-side sketches are X_I (interval
// covers) and X_U (upper-endpoint covers); for a query q = [u, v],
// Z = xi-bar[u,v] * X_U + xi-bar[v] * X_I: an interval [a, b] is selected
// iff its upper endpoint lies in [u, v] XOR v lies in [a, b] - mutually
// exclusive and exhaustive events under Assumption 1. The d-dimensional
// generalization keeps one counter per letter string w in {I, U}^d (bit
// set = U) and pairs data letter U with the query's interval cover and
// data letter I with the point cover of the query's upper endpoint.
//
// As with JoinSketch, callers that cannot guarantee Assumption 1 against
// their query workload apply the endpoint transformation: data inserted
// with geo.TransformKeepRect, queries shrunk with geo.TransformShrinkRect
// (the public spatial package's default).
type RangeSketch struct {
	plan     *Plan
	counters []int64 // [instance * 2^d + w]
	count    int64
	buf      *coverBuf
	sums     *letterSums
}

// NewRangeSketch returns an empty range-query sketch.
func (p *Plan) NewRangeSketch() *RangeSketch {
	return &RangeSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances<<uint(p.cfg.Dims)),
		buf:      newCoverBuf(p.cfg.Dims),
		sums:     newLetterSums(p.cfg.Dims, 2, p.cfg.Instances),
	}
}

// Plan returns the plan the sketch was built from.
func (s *RangeSketch) Plan() *Plan { return s.plan }

// Count returns the number of objects summarized.
func (s *RangeSketch) Count() int64 { return s.count }

// Insert adds a hyper-rectangle to the sketch.
func (s *RangeSketch) Insert(rect geo.HyperRect) error { return s.update(rect, +1) }

// Delete removes a previously inserted hyper-rectangle.
func (s *RangeSketch) Delete(rect geo.HyperRect) error { return s.update(rect, -1) }

func (s *RangeSketch) update(rect geo.HyperRect, sign int64) error {
	if err := s.plan.checkRect(rect); err != nil {
		return err
	}
	s.buf.load(s.plan, rect)
	s.applyCovers(s.buf, sign, s.counters, s.sums)
	s.count += sign
	return nil
}

// applyCovers folds one object's covers into dst, id-major as in
// JoinSketch.applyCovers; the letter planes here are I (interval cover) and
// U (upper-endpoint cover).
func (s *RangeSketch) applyCovers(buf *coverBuf, sign int64, dst []int64, sums *letterSums) {
	p := s.plan
	d := p.cfg.Dims
	inst := p.cfg.Instances
	nw := 1 << uint(d)
	sums.reset()
	for i := 0; i < d; i++ {
		lo, hi := p.famRange(i)
		p.bank.SumSignsMany(buf.cover[i], lo, hi, sums.plane(i, 0))
		p.bank.SumSignsMany(buf.ptHi[i], lo, hi, sums.plane(i, 1))
	}
	var lp [MaxDims][2][]int64
	for i := 0; i < d; i++ {
		lp[i][0], lp[i][1] = sums.plane(i, 0), sums.plane(i, 1)
	}
	for k := 0; k < inst; k++ {
		base := k * nw
		for w := 0; w < nw; w++ {
			prod := sign
			for i := 0; i < d; i++ {
				prod *= lp[i][(w>>uint(i))&1][k]
			}
			dst[base+w] += prod
		}
	}
}

// InsertAll bulk-loads hyper-rectangles, validating all of them first and
// sharding across objects exactly as JoinSketch.InsertAll does.
func (s *RangeSketch) InsertAll(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := s.plan.checkRect(r); err != nil {
			return err
		}
	}
	p := s.plan
	shardBulk(len(rects), s.counters, func(start, end int, dst []int64) {
		buf := newCoverBuf(p.cfg.Dims)
		sums := newLetterSums(p.cfg.Dims, 2, p.cfg.Instances)
		for idx := start; idx < end; idx++ {
			buf.load(p, rects[idx])
			s.applyCovers(buf, +1, dst, sums)
		}
	})
	s.count += int64(len(rects))
	return nil
}

// Merge adds the counters of other into s. Both sketches must come from the
// same plan; merging the sketches of disjoint streams is equivalent to
// sketching their union.
func (s *RangeSketch) Merge(other *RangeSketch) error {
	return mergeSketch(s.plan, other.plan, s.counters, other.counters, &s.count, other.count)
}

// EstimateRange estimates |Q(q, R)|, the number of summarized objects
// overlapping the query hyper-rectangle q (Definition 3), per Lemma 9 and
// its d-dimensional generalization. The query must live in the same
// (possibly transformed) domain as the inserted data.
func (s *RangeSketch) EstimateRange(q geo.HyperRect) (Estimate, error) {
	sc := s.plan.GetScratch()
	defer s.plan.PutScratch(sc)
	return s.EstimateRangeWith(q, sc)
}

// EstimateRangeWith is EstimateRange with caller-provided scratch, the
// batched-query fast path: one scratch (from the sketch plan's pool) serves
// a whole batch of queries with no per-query allocation beyond the returned
// Estimate's GroupMeans.
func (s *RangeSketch) EstimateRangeWith(q geo.HyperRect, sc *EstScratch) (Estimate, error) {
	p := s.plan
	if err := p.checkRect(q); err != nil {
		return Estimate{}, fmt.Errorf("core: bad range query: %w", err)
	}
	d := p.cfg.Dims
	nw := 1 << uint(d)
	// Query-side values per dimension: the interval cover of q (pairs with
	// data letter U) and the point cover of q's upper endpoint (pairs with
	// data letter I), batched id-major like the update path.
	qb, qv := sc.queryCovers(p)
	qb.load(p, q)
	qv.reset()
	var lp [MaxDims][2][]int64
	for i := 0; i < d; i++ {
		lo, hi := p.famRange(i)
		p.bank.SumSignsMany(qb.ptHi[i], lo, hi, qv.plane(i, 0))  // pairs with data I
		p.bank.SumSignsMany(qb.cover[i], lo, hi, qv.plane(i, 1)) // pairs with data U
		lp[i][0], lp[i][1] = qv.plane(i, 0), qv.plane(i, 1)
	}
	zs := sc.instSums(p)
	for inst := range zs {
		base := inst * nw
		var z float64
		for w := 0; w < nw; w++ {
			prod := int64(1)
			for i := 0; i < d; i++ {
				prod *= lp[i][(w>>uint(i))&1][inst]
			}
			z += float64(prod) * float64(s.counters[base+w])
		}
		zs[inst] = z
	}
	return boostWith(zs, p.cfg.Groups, sc.medianBuf(p)), nil
}
