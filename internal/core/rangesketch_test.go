package core

import (
	"testing"

	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/exact"
)

// TestRange1DUnbiased: Lemma 9. Data embedded (keep), query shrunk, so the
// strict range selection of Definition 3 is estimated without Assumption 1
// on the raw data.
func TestRange1DUnbiased(t *testing.T) {
	const dom = 32
	rects := datagen.MustRects(datagen.Spec{N: 80, Dims: 1, Domain: dom, Seed: 91, MeanLen: []float64{8}})
	q := geo.Span1D(6, 21)
	want := float64(exact.RangeCount(rects, q))

	p := MustPlan(Config{Dims: 1, LogDomain: logDomains(1, dom), Instances: 30000, Groups: 4, Seed: 92})
	s := p.NewRangeSketch()
	for _, r := range rects {
		if err := s.Insert(geo.TransformKeepRect(r)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := s.EstimateRange(geo.TransformShrinkRect(geo.HyperRect{q[0]}))
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "range1d", est, want)
}

// TestRange1DSharedEndpoints: queries whose endpoints coincide with data
// endpoints are handled by the transform.
func TestRange1DSharedEndpoints(t *testing.T) {
	rects := []geo.HyperRect{
		geo.Span1D(0, 4), geo.Span1D(4, 8), geo.Span1D(8, 12),
		geo.Span1D(2, 6), geo.Span1D(6, 10), geo.Span1D(0, 12),
		geo.Span1D(4, 12), geo.Span1D(0, 8),
	}
	q := geo.Span1D(4, 8) // touches many data endpoints
	want := float64(exact.RangeCount(rects, q))

	p := MustPlan(Config{Dims: 1, LogDomain: logDomains(1, 16), Instances: 40000, Groups: 4, Seed: 93})
	s := p.NewRangeSketch()
	for _, r := range rects {
		if err := s.Insert(geo.TransformKeepRect(r)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := s.EstimateRange(geo.TransformShrinkRect(q.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "range1d-shared", est, want)
}

// TestRange2DUnbiased: the d-dimensional generalization of Lemma 9.
func TestRange2DUnbiased(t *testing.T) {
	const dom = 16
	rects := datagen.MustRects(datagen.Spec{N: 60, Dims: 2, Domain: dom, Seed: 94, MeanLen: []float64{5, 5}})
	q := geo.Rect(3, 11, 2, 13)
	want := float64(exact.RangeCount(rects, q))

	p := MustPlan(Config{Dims: 2, LogDomain: logDomains(2, dom), Instances: 20000, Groups: 4, Seed: 95})
	s := p.NewRangeSketch()
	for _, r := range rects {
		if err := s.Insert(geo.TransformKeepRect(r)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := s.EstimateRange(geo.TransformShrinkRect(q))
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "range2d", est, want)
}

// TestRangeMatchesJoinSpecialCase: a range query is the join with a
// singleton relation (Section 6.4); both estimators agree in expectation.
func TestRangeMatchesJoinSpecialCase(t *testing.T) {
	const dom = 16
	rects := datagen.MustRects(datagen.Spec{N: 50, Dims: 1, Domain: dom, Seed: 96, MeanLen: []float64{5}})
	q := geo.Span1D(4, 11)
	want := float64(exact.RangeCount(rects, q))
	wantJoin := float64(exact.JoinCount(rects, []geo.HyperRect{geo.Span1D(4, 11)}))
	if want != wantJoin {
		t.Fatalf("range (%g) and singleton join (%g) disagree in exact semantics", want, wantJoin)
	}

	p := MustPlan(Config{Dims: 1, LogDomain: logDomains(1, dom), Instances: 30000, Groups: 4, Seed: 97})
	x, y := p.NewJoinSketch(), p.NewJoinSketch()
	for _, r := range rects {
		if err := x.Insert(geo.TransformKeepRect(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := y.Insert(geo.TransformShrinkRect(geo.HyperRect{q[0]})); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateJoin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "range-as-join", est, want)
}

// TestRangeInsertDelete: deletion restores state exactly.
func TestRangeInsertDelete(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{6}, Instances: 30, Groups: 5, Seed: 3})
	a, b := p.NewRangeSketch(), p.NewRangeSketch()
	data := datagen.MustRects(datagen.Spec{N: 25, Dims: 1, Domain: 64, Seed: 4})
	if err := a.InsertAll(data); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertAll(data); err != nil {
		t.Fatal(err)
	}
	extra := geo.Span1D(10, 20)
	if err := b.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(extra); err != nil {
		t.Fatal(err)
	}
	for i := range a.counters {
		if a.counters[i] != b.counters[i] {
			t.Fatal("range sketch delete not inverse")
		}
	}
	if a.Count() != b.Count() {
		t.Fatal("counts differ")
	}
}

func TestRangeValidation(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{4}, Instances: 4, Groups: 2, Seed: 1})
	s := p.NewRangeSketch()
	if err := s.Insert(geo.Span1D(0, 20)); err == nil {
		t.Error("out-of-domain insert should fail")
	}
	if _, err := s.EstimateRange(geo.Span1D(0, 20)); err == nil {
		t.Error("out-of-domain query should fail")
	}
	if _, err := s.EstimateRange(geo.Rect(0, 1, 0, 1)); err == nil {
		t.Error("wrong-dims query should fail")
	}
}
