package dyadic

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative log should fail")
	}
	if _, err := New(MaxLog + 1); err == nil {
		t.Error("oversized log should fail")
	}
	d, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 16 || d.Log() != 4 || d.NumNodes() != 31 || d.IDSpace() != 32 {
		t.Fatalf("domain basics wrong: %+v", d)
	}
}

func TestForSize(t *testing.T) {
	cases := []struct {
		size uint64
		want uint64
	}{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048}}
	for _, c := range cases {
		d, err := ForSize(c.size)
		if err != nil {
			t.Fatal(err)
		}
		if d.Size() != c.want {
			t.Errorf("ForSize(%d).Size() = %d, want %d", c.size, d.Size(), c.want)
		}
	}
	if _, err := ForSize(0); err == nil {
		t.Error("ForSize(0) should fail")
	}
}

// TestPaperFigure2Numbering verifies our heap numbering matches the paper's
// delta numbering in Figure 2 (domain of 4 coordinates): delta_1 = whole
// domain, delta_2/delta_3 the halves, delta_4..delta_7 the points; and the
// covers of r = [0,2], s = [1,3] match the figure exactly.
func TestPaperFigure2Numbering(t *testing.T) {
	d := MustNew(2)
	wantIntervals := map[uint64][2]uint64{
		1: {0, 3}, 2: {0, 1}, 3: {2, 3}, 4: {0, 0}, 5: {1, 1}, 6: {2, 2}, 7: {3, 3},
	}
	for id, want := range wantIntervals {
		lo, hi := d.NodeInterval(id)
		if lo != want[0] || hi != want[1] {
			t.Errorf("node %d = [%d,%d], want %v", id, lo, hi, want)
		}
	}
	// D(r) for r = [0,2] is {delta_2, delta_6}.
	checkSet(t, "D(r)", d.Cover(0, 2, nil), []uint64{2, 6})
	// D(l(r)) = D(0) = {delta_4, delta_2, delta_1}.
	checkSet(t, "D(l(r))", d.PointCover(0, nil), []uint64{4, 2, 1})
	// D(u(r)) = D(2) = {delta_6, delta_3, delta_1}.
	checkSet(t, "D(u(r))", d.PointCover(2, nil), []uint64{6, 3, 1})
	// D(s) for s = [1,3] is {delta_5, delta_3}.
	checkSet(t, "D(s)", d.Cover(1, 3, nil), []uint64{5, 3})
	// D(l(s)) = D(1) = {delta_5, delta_2, delta_1}.
	checkSet(t, "D(l(s))", d.PointCover(1, nil), []uint64{5, 2, 1})
	// D(u(s)) = D(3) = {delta_7, delta_3, delta_1}.
	checkSet(t, "D(u(s))", d.PointCover(3, nil), []uint64{7, 3, 1})
}

func checkSet(t *testing.T, name string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
	seen := map[uint64]bool{}
	for _, id := range got {
		seen[id] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestLevelAndLeaf(t *testing.T) {
	d := MustNew(5)
	if d.Level(1) != 5 {
		t.Errorf("root level = %d", d.Level(1))
	}
	for a := uint64(0); a < d.Size(); a++ {
		id := d.LeafID(a)
		if d.Level(id) != 0 {
			t.Errorf("leaf level = %d", d.Level(id))
		}
		lo, hi := d.NodeInterval(id)
		if lo != a || hi != a {
			t.Errorf("leaf %d covers [%d,%d]", a, lo, hi)
		}
	}
}

// TestCoverLemma2 verifies the canonical cover is a disjoint exact cover
// with at most 2*log2(n) intervals (Lemma 2).
func TestCoverLemma2(t *testing.T) {
	for _, h := range []int{1, 2, 3, 5, 8} {
		d := MustNew(h)
		n := d.Size()
		rng := rand.New(rand.NewPCG(uint64(h), 99))
		iter := 2000
		if n <= 32 {
			iter = 0 // exhaustive below
			for lo := uint64(0); lo < n; lo++ {
				for hi := lo; hi < n; hi++ {
					verifyCover(t, d, lo, hi, d.Cover(lo, hi, nil), 2*h)
				}
			}
		}
		for i := 0; i < iter; i++ {
			lo := rng.Uint64N(n)
			hi := lo + rng.Uint64N(n-lo)
			verifyCover(t, d, lo, hi, d.Cover(lo, hi, nil), 2*h)
		}
	}
}

// verifyCover checks disjointness, exact coverage of [lo,hi], and the size
// bound.
func verifyCover(t *testing.T, d Domain, lo, hi uint64, cover []uint64, maxSize int) {
	t.Helper()
	if maxSize > 0 && len(cover) > maxSize {
		t.Fatalf("cover of [%d,%d] has %d nodes, bound %d", lo, hi, len(cover), maxSize)
	}
	covered := make(map[uint64]int)
	for _, id := range cover {
		a, b := d.NodeInterval(id)
		for x := a; x <= b; x++ {
			covered[x]++
		}
	}
	for x := lo; x <= hi; x++ {
		if covered[x] != 1 {
			t.Fatalf("cover of [%d,%d]: coordinate %d covered %d times", lo, hi, x, covered[x])
		}
	}
	if uint64(len(covered)) != hi-lo+1 {
		t.Fatalf("cover of [%d,%d] spills outside: %d coordinates covered", lo, hi, len(covered))
	}
}

// TestPointCoverLemma3: exactly log2(n)+1 intervals, one per level, all
// containing the point.
func TestPointCoverLemma3(t *testing.T) {
	for _, h := range []int{0, 1, 3, 6} {
		d := MustNew(h)
		for a := uint64(0); a < d.Size(); a++ {
			pc := d.PointCover(a, nil)
			if len(pc) != h+1 {
				t.Fatalf("h=%d: point cover of %d has %d nodes", h, a, len(pc))
			}
			levels := map[int]bool{}
			for _, id := range pc {
				lo, hi := d.NodeInterval(id)
				if a < lo || a > hi {
					t.Fatalf("h=%d: node %d does not contain %d", h, id, a)
				}
				lv := d.Level(id)
				if levels[lv] {
					t.Fatalf("h=%d: duplicate level %d in point cover", h, lv)
				}
				levels[lv] = true
			}
		}
	}
}

// TestLemma4UniqueCommonNode: a point c lies in [a,b] iff the point cover
// of c and the canonical cover of [a,b] share exactly one node.
func TestLemma4UniqueCommonNode(t *testing.T) {
	d := MustNew(5)
	n := d.Size()
	for a := uint64(0); a < n; a++ {
		for b := a; b < n; b++ {
			cover := d.Cover(a, b, nil)
			inCover := map[uint64]bool{}
			for _, id := range cover {
				inCover[id] = true
			}
			for c := uint64(0); c < n; c++ {
				common := 0
				for _, id := range d.PointCover(c, nil) {
					if inCover[id] {
						common++
					}
				}
				want := 0
				if a <= c && c <= b {
					want = 1
				}
				if common != want {
					t.Fatalf("[%d,%d] vs point %d: %d common nodes, want %d", a, b, c, common, want)
				}
			}
		}
	}
}

// TestCoverMax: capped covers are still disjoint exact covers using only
// levels <= maxLevel, and maxLevel = 0 yields one leaf per coordinate (the
// standard sketch degeneration of Section 6.5).
func TestCoverMax(t *testing.T) {
	d := MustNew(6)
	n := d.Size()
	rng := rand.New(rand.NewPCG(6, 6))
	for _, ml := range []int{0, 1, 2, 3, 6} {
		for i := 0; i < 1500; i++ {
			lo := rng.Uint64N(n)
			hi := lo + rng.Uint64N(n-lo)
			cover := d.CoverMax(lo, hi, ml, nil)
			verifyCover(t, d, lo, hi, cover, 0)
			for _, id := range cover {
				if lv := d.Level(id); lv > ml {
					t.Fatalf("maxLevel=%d: node at level %d in cover", ml, lv)
				}
			}
			if bound := d.CoverSizeBound(hi-lo+1, ml); len(cover) > bound {
				t.Fatalf("maxLevel=%d: cover size %d exceeds bound %d for len %d", ml, len(cover), bound, hi-lo+1)
			}
		}
	}
	// maxLevel=0 cover of [a,b] is exactly the leaves a..b.
	cover := d.CoverMax(3, 9, 0, nil)
	if len(cover) != 7 {
		t.Fatalf("maxLevel=0 cover size = %d, want 7", len(cover))
	}
	for i, id := range cover {
		if d.Level(id) != 0 {
			t.Fatalf("maxLevel=0 cover contains non-leaf %d at %d", id, i)
		}
	}
}

// TestPointCoverMax: capped point covers stop at maxLevel.
func TestPointCoverMax(t *testing.T) {
	d := MustNew(6)
	for _, ml := range []int{0, 2, 6} {
		pc := d.PointCoverMax(13, ml, nil)
		if len(pc) != ml+1 {
			t.Fatalf("maxLevel=%d: point cover size %d", ml, len(pc))
		}
		for _, id := range pc {
			lo, hi := d.NodeInterval(id)
			if 13 < lo || 13 > hi {
				t.Fatalf("node %d does not contain 13", id)
			}
		}
	}
	// Negative / oversized maxLevel means uncapped.
	if got := len(d.PointCoverMax(13, -1, nil)); got != 7 {
		t.Fatalf("uncapped point cover size %d", got)
	}
}

// TestLemma4WithMaxLevel: the unique-common-node property survives level
// capping (what keeps the adaptive sketches of Section 6.5 unbiased).
func TestLemma4WithMaxLevel(t *testing.T) {
	d := MustNew(4)
	n := d.Size()
	for _, ml := range []int{0, 1, 2, 4} {
		for a := uint64(0); a < n; a++ {
			for b := a; b < n; b++ {
				inCover := map[uint64]bool{}
				for _, id := range d.CoverMax(a, b, ml, nil) {
					inCover[id] = true
				}
				for c := uint64(0); c < n; c++ {
					common := 0
					for _, id := range d.PointCoverMax(c, ml, nil) {
						if inCover[id] {
							common++
						}
					}
					want := 0
					if a <= c && c <= b {
						want = 1
					}
					if common != want {
						t.Fatalf("ml=%d [%d,%d] point %d: %d common, want %d", ml, a, b, c, common, want)
					}
				}
			}
		}
	}
}

// TestCoverQuick: property-based check across random domains.
func TestCoverQuick(t *testing.T) {
	f := func(hRaw uint8, loRaw, hiRaw uint16) bool {
		h := int(hRaw%9) + 1
		d := MustNew(h)
		n := d.Size()
		lo := uint64(loRaw) % n
		hi := lo + uint64(hiRaw)%(n-lo)
		cover := d.Cover(lo, hi, nil)
		if len(cover) > 2*h {
			return false
		}
		var total uint64
		for _, id := range cover {
			a, b := d.NodeInterval(id)
			if a < lo || b > hi {
				return false
			}
			total += b - a + 1
		}
		return total == hi-lo+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIntervalRoundTrip(t *testing.T) {
	d := MustNew(7)
	for id := uint64(1); id < d.IDSpace(); id++ {
		lo, hi := d.NodeInterval(id)
		lv := d.Level(id)
		if hi-lo+1 != uint64(1)<<uint(lv) {
			t.Fatalf("node %d: size %d != 2^%d", id, hi-lo+1, lv)
		}
		if lo%(uint64(1)<<uint(lv)) != 0 {
			t.Fatalf("node %d not aligned: lo=%d level=%d", id, lo, lv)
		}
		if bits.Len64(id)-1 != d.Log()-lv {
			t.Fatalf("node %d depth mismatch", id)
		}
	}
}

func TestPanics(t *testing.T) {
	d := MustNew(3)
	for _, fn := range []func(){
		func() { d.LeafID(8) },
		func() { d.PointCover(9, nil) },
		func() { d.Cover(5, 3, nil) },
		func() { d.Cover(0, 8, nil) },
		func() { d.NodeInterval(0) },
		func() { d.NodeInterval(16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCover(b *testing.B) {
	d := MustNew(20)
	buf := make([]uint64, 0, 64)
	for i := 0; i < b.N; i++ {
		buf = d.Cover(12345, 901234, buf[:0])
	}
	_ = buf
}

func BenchmarkPointCover(b *testing.B) {
	d := MustNew(20)
	buf := make([]uint64, 0, 32)
	for i := 0; i < b.N; i++ {
		buf = d.PointCover(555555, buf[:0])
	}
	_ = buf
}
