package spatial_test

import (
	"sync"
	"testing"

	spatial "repro"
	"repro/geo"
)

// Concurrency tests for the public estimators: mixed reader/writer
// goroutine traffic on a shared estimator of every type, plus an exactness
// check that concurrent ingestion loses no update. Run with -race (CI
// does) to make the locking claims meaningful.

func concurrentIters(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	return 150
}

// runMixed drives nw writer and nr reader goroutines and fails on any
// unexpected error.
func runMixed(t *testing.T, nw, nr int, write func(g, i int) error, read func(i int) error) {
	t.Helper()
	iters := concurrentIters(t)
	var wg sync.WaitGroup
	errs := make(chan error, nw+nr)
	for g := 0; g < nw; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := write(g, i); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < nr; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/2; i++ {
				if err := read(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestJoinEstimatorConcurrent(t *testing.T) {
	for _, mode := range []spatial.Mode{spatial.ModeTransform, spatial.ModeCommonEndpoints} {
		est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
			Dims: 1, DomainSize: 256,
			Sizing: spatial.Sizing{Instances: 16, Groups: 4},
			Mode:   mode, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		const writers = 4
		runMixed(t, writers, 3,
			func(g, i int) error {
				r := geo.Span1D(uint64(i%100), uint64(i%100)+10)
				if g%2 == 0 {
					return est.InsertLeft(r)
				}
				return est.InsertRight(r)
			},
			func(i int) error {
				switch i % 3 {
				case 0:
					_, err := est.Cardinality()
					return err
				case 1:
					est.LeftCount()
					est.RightCount()
					return nil
				default:
					_, err := est.Marshal()
					return err
				}
			})
		// Nothing lost: every writer completed all its inserts.
		iters := int64(concurrentIters(t))
		if got := est.LeftCount() + est.RightCount(); got != writers*iters {
			t.Fatalf("%v: %d objects survived concurrent ingest, want %d", mode, got, writers*iters)
		}
	}
}

func TestRangeEstimatorConcurrent(t *testing.T) {
	est, err := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims: 1, DomainSize: 256,
		Sizing: spatial.Sizing{Instances: 16, Groups: 4}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	runMixed(t, writers, 3,
		func(g, i int) error {
			return est.Insert(geo.Span1D(uint64(i%100), uint64(i%100)+5))
		},
		func(i int) error {
			_, err := est.Estimate(geo.Span1D(10, 200))
			return err
		})
	if got := est.Count(); got != writers*int64(concurrentIters(t)) {
		t.Fatalf("%d objects survived concurrent ingest, want %d", got, writers*concurrentIters(t))
	}
}

func TestEpsJoinEstimatorConcurrent(t *testing.T) {
	est, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
		Dims: 2, DomainSize: 256, Eps: 4,
		Sizing: spatial.Sizing{Instances: 16, Groups: 4}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	runMixed(t, 4, 2,
		func(g, i int) error {
			p := geo.Point{uint64(i*7) % 256, uint64(i*13) % 256}
			if g%2 == 0 {
				return est.InsertLeft(p)
			}
			return est.InsertRight(p)
		},
		func(i int) error {
			if i%2 == 0 {
				_, err := est.Cardinality()
				return err
			}
			_, err := est.Marshal()
			return err
		})
}

func TestContainmentEstimatorConcurrent(t *testing.T) {
	est, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{
		Dims: 1, DomainSize: 256,
		Sizing: spatial.Sizing{Instances: 16, Groups: 4}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	runMixed(t, 4, 2,
		func(g, i int) error {
			r := geo.Span1D(uint64(i%100), uint64(i%100)+uint64(g)+1)
			if g%2 == 0 {
				return est.InsertInner(r)
			}
			return est.InsertOuter(r)
		},
		func(i int) error {
			_, err := est.Cardinality()
			return err
		})
}

// TestConcurrentMergeNoDeadlock: cross-merging two estimators from two
// goroutines must not deadlock (each Merge snapshots the source before
// locking the destination).
func TestConcurrentMergeNoDeadlock(t *testing.T) {
	mk := func() *spatial.JoinEstimator {
		e, err := spatial.NewJoinEstimator(spatial.JoinConfig{
			Dims: 1, DomainSize: 64,
			Sizing: spatial.Sizing{Instances: 8, Groups: 4}, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.InsertLeft(geo.Span1D(1, 9))
		return e
	}
	a, b := mk(), mk()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); a.Merge(b) }()
		go func() { defer wg.Done(); b.Merge(a) }()
	}
	wg.Wait()
}

// TestConcurrentIngestExactness: a concurrently-loaded estimator reports
// exactly the same estimate as a sequentially-loaded one - sharded ingest
// is bit-identical by linearity, regardless of which shard each update
// landed in.
func TestConcurrentIngestExactness(t *testing.T) {
	cfg := spatial.JoinConfig{
		Dims: 1, DomainSize: 512,
		Sizing: spatial.Sizing{Instances: 32, Groups: 4}, Seed: 9,
	}
	seq, err := spatial.NewJoinEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := spatial.NewJoinEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	rects := make([]geo.HyperRect, n)
	for i := range rects {
		lo := uint64(i*3) % 490
		rects[i] = geo.Span1D(lo, lo+1+uint64(i%17))
	}
	for _, r := range rects {
		if err := seq.InsertLeft(r); err != nil {
			t.Fatal(err)
		}
		if err := seq.InsertRight(r); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				par.InsertLeft(rects[i])
				par.InsertRight(rects[i])
			}
		}(g)
	}
	wg.Wait()
	want, err := seq.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "concurrent-ingest", want, got)
}
