package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"

	spatial "repro"
	"repro/geo"
)

// Cluster-mode tenant tests: tenant configs are cluster metadata
// (broadcast to every node), shard keys carry the tenant prefix, budgets
// are enforced at the routing node with exact partitions x words cost
// accounting, and the router's read cache answers repeat gathers from
// revalidated 304s.

// putTenantURL registers a tenant through a live node.
func putTenantURL(t *testing.T, base, tenant string, cfg TenantConfig) {
	t.Helper()
	body, _ := json.Marshal(cfg)
	mustDo(t, "PUT", base+"/v1/tenants/"+tenant, body, http.StatusOK)
}

// metricValue sums the samples of one family matching every label
// fragment on a node's /metrics page; -1 when absent.
func metricValue(t *testing.T, base, name string, labelFrags ...string) float64 {
	t.Helper()
	body := mustDo(t, "GET", base+"/metrics", nil, http.StatusOK)
	sum, found := 0.0, false
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || line[0] == '#' || !strings.HasPrefix(line, name) {
			continue
		}
		ok := true
		for _, f := range labelFrags {
			if !strings.Contains(line, f) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("parsing sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		return -1
	}
	return sum
}

// TestClusterTenantBitIdentical proves tenancy does not perturb the
// exactness invariant: two tenants' same-named estimators, ingested
// through rotating nodes of a 3-node cluster, gather to snapshots
// byte-identical to loss-free single-node reference builds.
func TestClusterTenantBitIdentical(t *testing.T) {
	const dom = 1 << 12
	_, urls := startCluster(t, 3, false)
	putTenantURL(t, urls[0], "acme", TenantConfig{})
	putTenantURL(t, urls[1], "umbrella", TenantConfig{})

	sz := spatial.Sizing{Instances: 64, Groups: 4}
	mkRef := func(seed uint64) *spatial.JoinEstimator {
		j, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: dom, Seed: seed, Sizing: sz})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	refs := map[string]*spatial.JoinEstimator{"acme": mkRef(11), "umbrella": mkRef(22)}
	for tenant, seed := range map[string]uint64{"acme": 11, "umbrella": 22} {
		body, _ := json.Marshal(createRequest{Name: "x", Kind: "join",
			Config: configRequest{Dims: 2, DomainSize: dom, Seed: seed, Instances: 64, Groups: 4}})
		// Tenant registration was broadcast, so any node can route the create.
		mustDo(t, "POST", urls[1]+"/v1/tenants/"+tenant+"/estimators", body, http.StatusCreated)
	}

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120; i++ {
		tenant := "acme"
		if i%2 == 1 {
			tenant = "umbrella"
		}
		wr := randRect(rng, dom)
		rect := geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])
		side := "left"
		ins := refs[tenant].InsertLeft
		if i%4 >= 2 {
			side, ins = "right", refs[tenant].InsertRight
		}
		body, _ := json.Marshal(updateRequest{Side: side, Rects: [][][2]uint64{wr}})
		mustDo(t, "POST", urls[i%3]+"/v1/tenants/"+tenant+"/estimators/x/update", body, http.StatusOK)
		if err := ins(rect); err != nil {
			t.Fatal(err)
		}
	}

	for tenant, ref := range refs {
		want, err := ref.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		for via := 0; via < 3; via++ {
			got := mustDo(t, "GET", urls[via]+"/v1/tenants/"+tenant+"/estimators/x/snapshot", nil, http.StatusOK)
			if !bytes.Equal(got, want) {
				t.Errorf("tenant %q via node %d: merged snapshot differs from the single-node build", tenant, via)
			}
		}
	}

	// Cluster tenant info aggregates usage across all shards and nodes.
	var info tenantInfoResponse
	if err := json.Unmarshal(mustDo(t, "GET", urls[2]+"/v1/tenants/acme", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	if info.UsedWords <= 0 || len(info.Estimators) != 1 || info.Estimators[0].Name != "acme/x" {
		t.Fatalf("cluster tenant info: %+v", info)
	}
}

// TestClusterTenantBudget413 pins router-side budget enforcement: the
// cost of a cluster create is partitions x per-shard words, the 413
// carries the cluster-wide accounting, and one tenant hitting its budget
// leaves another tenant's creates untouched.
func TestClusterTenantBudget413(t *testing.T) {
	const dom = 1 << 10
	_, urls := startCluster(t, 3, false)
	putTenantURL(t, urls[0], "capped", TenantConfig{})
	putTenantURL(t, urls[0], "free", TenantConfig{})

	mkBody := func(name string) []byte {
		body, _ := json.Marshal(createRequest{Name: name, Kind: "join",
			Config: configRequest{Dims: 2, DomainSize: dom, Seed: 1, Instances: 16, Groups: 4}})
		return body
	}
	mustDo(t, "POST", urls[0]+"/v1/tenants/capped/estimators", mkBody("a"), http.StatusCreated)
	var info tenantInfoResponse
	if err := json.Unmarshal(mustDo(t, "GET", urls[0]+"/v1/tenants/capped", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	used := info.UsedWords
	if used <= 0 {
		t.Fatalf("cluster usage after one create: %d", used)
	}

	// Budget = current usage: the identical second create must be rejected
	// with the exact partitions x words request cost, from any node.
	putTenantURL(t, urls[0], "capped", TenantConfig{MemoryBudgetWords: used})
	resp, data := httpDo(t, "POST", urls[1]+"/v1/tenants/capped/estimators", mkBody("b"), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget cluster create: status %d: %s", resp.StatusCode, data)
	}
	var rej struct {
		Budget budgetBreakdown `json:"budget"`
	}
	if err := json.Unmarshal(data, &rej); err != nil {
		t.Fatalf("413 body: %v: %s", err, data)
	}
	if rej.Budget.UsedWords != used || rej.Budget.RequestedWords != used || rej.Budget.BudgetWords != used {
		t.Fatalf("cluster 413 accounting %+v, want used=requested=budget=%d", rej.Budget, used)
	}
	// No shard of the rejected estimator may exist anywhere.
	resp, _ = httpDo(t, "GET", urls[2]+"/v1/tenants/capped/estimators/b", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected create left shards behind: %d", resp.StatusCode)
	}

	// The other tenant is not affected by capped's exhaustion.
	mustDo(t, "POST", urls[2]+"/v1/tenants/free/estimators", mkBody("b"), http.StatusCreated)
}

// TestClusterReadCacheRevalidation pins the router read cache: a repeat
// gather on a quiet estimator is a hit (all partitions revalidate 304),
// a write invalidates exactly the affected partitions and the next
// gather is a miss that still serves the updated, exact answer.
func TestClusterReadCacheRevalidation(t *testing.T) {
	const dom = 1 << 10
	_, urls := startCluster(t, 3, false)
	createFour(t, urls[0], dom)

	estimate := func() estimateResponse {
		data := mustDo(t, "GET", urls[0]+"/v1/estimators/j/estimate?left=0,1023&right=0,1023", nil, http.StatusOK)
		var er estimateResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		return er
	}

	estimate() // first gather populates the cache (miss)
	misses0 := metricValue(t, urls[0], "spatialserve_cluster_readcache_events_total", `outcome="miss"`)
	hits0 := metricValue(t, urls[0], "spatialserve_cluster_readcache_events_total", `outcome="hit"`)
	if misses0 < 1 {
		t.Fatalf("first gather recorded no miss (misses=%v)", misses0)
	}

	before := estimate() // repeat: every partition answers 304
	if hits := metricValue(t, urls[0], "spatialserve_cluster_readcache_events_total", `outcome="hit"`); hits < hits0+1 {
		t.Fatalf("repeat gather not a cache hit: hits %v -> %v", hits0, hits)
	}

	// A write changes at least one partition's ETag: the next gather must
	// re-merge (miss) and reflect the new state exactly.
	body, _ := json.Marshal(updateRequest{Side: "left", Rects: [][][2]uint64{{{1, 100}, {1, 100}}}})
	mustDo(t, "POST", urls[1]+"/v1/estimators/j/update", body, http.StatusOK)
	body, _ = json.Marshal(updateRequest{Side: "right", Rects: [][][2]uint64{{{2, 99}, {2, 99}}}})
	mustDo(t, "POST", urls[1]+"/v1/estimators/j/update", body, http.StatusOK)

	after := estimate()
	if misses := metricValue(t, urls[0], "spatialserve_cluster_readcache_events_total", `outcome="miss"`); misses < misses0+1 {
		t.Fatalf("post-write gather served from cache: misses %v -> %v", misses0, misses)
	}
	if after.Value == before.Value && after.Mean == before.Mean {
		t.Fatal("post-write estimate identical to the cached pre-write answer")
	}

	// Deleting the estimator drops the cache entry; the next read is 404,
	// not a stale merged answer.
	mustDo(t, "DELETE", urls[0]+"/v1/estimators/j", nil, http.StatusOK)
	resp, _ := httpDo(t, "GET", urls[0]+"/v1/estimators/j/estimate?left=0,1023&right=0,1023", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted estimator still answers: %d", resp.StatusCode)
	}
}

// TestClusterTenantBroadcastAndDelete pins the config-broadcast
// lifecycle: every node learns a tenant synchronously on PUT, and a
// cluster DELETE removes it everywhere (idempotently).
func TestClusterTenantBroadcastAndDelete(t *testing.T) {
	srvs, urls := startCluster(t, 3, false)
	cfg := TenantConfig{RateQPS: 100, RateBurst: 5}
	putTenantURL(t, urls[2], "acme", cfg)
	for i, s := range srvs {
		ts := s.tenants.get("acme")
		if ts == nil || ts.cfg != cfg {
			t.Fatalf("node %d missing broadcast tenant config: %+v", i, ts)
		}
	}
	mustDo(t, "DELETE", urls[1]+"/v1/tenants/acme", nil, http.StatusOK)
	for i, s := range srvs {
		if s.tenants.get("acme") != nil {
			t.Fatalf("node %d still knows the deleted tenant", i)
		}
	}
	resp, _ := httpDo(t, "DELETE", urls[0]+"/v1/tenants/acme", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", resp.StatusCode)
	}
}
