// Package experiments regenerates every figure of the paper's evaluation
// (Section 7) plus the ablations DESIGN.md calls out. It is shared by
// cmd/spatialbench and the repository benchmarks.
//
// The paper's headline runs use up to 500K objects and ~36K-word synopses;
// the Options.Scale knob shrinks object counts and synopsis budgets
// proportionally so a full regeneration runs in minutes on a laptop while
// preserving the comparisons the figures make (who wins, by what factor,
// and where behaviour changes). Scale = 1 reproduces the paper's setup.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	spatial "repro"
	"repro/geo"
	"repro/internal/histogram"
)

// Options tunes an experiment run.
type Options struct {
	// Scale in (0, 1] shrinks dataset sizes and synopsis budgets from the
	// paper's setup. The default (0) means 0.04 - minutes, not hours.
	Scale float64
	// Seed drives all data generation and sketching.
	Seed uint64
	// Runs averages the randomized SKETCH error over this many
	// independently seeded runs (the paper averages over multiple runs);
	// default 3.
	Runs int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.04
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 20040613 // SIGMOD 2004
	}
	return o
}

// Table is a printable experiment result: one row per x-axis point of the
// corresponding figure.
type Table struct {
	Name   string // e.g. "fig5"
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// relErr is the relative error metric of Section 7.
func relErr(est, exactVal float64) float64 {
	if exactVal == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-exactVal) / exactVal
}

// autoMaxLevel picks the Section 6.5 level cap from the mean object length
// (raw coordinates; the transform triples it). The cap trades the two
// self-join contributions: capped interval covers cost
// SJ(X_I) ~ N^2 len^2 / (n 2^ml) while endpoint covers cost
// SJ(X_E) ~ 8 N^2 2^ml / n, minimized at 2^ml = len / sqrt(8) - notably
// independent of the domain size, which is why the sketch error is
// domain-growth invariant (Section 7.1 discussion).
func autoMaxLevel(meanLen float64) int {
	ml := int(math.Round(math.Log2(3*meanLen) - 1.5))
	if ml < 1 {
		ml = 1
	}
	return ml
}

// ghLevelForWords returns the largest GH level whose 4^(L+1) words fit the
// budget (level 0 as the floor).
func ghLevelForWords(words int) int {
	level := 0
	for l := 1; l <= 12; l++ {
		if 4*(1<<uint(2*l)) <= words {
			level = l
		}
	}
	return level
}

// ehLevelForWords returns the largest EH level whose 9*4^L - 6*2^L + 1
// words fit the budget.
func ehLevelForWords(words int) int {
	level := 0
	for l := 1; l <= 12; l++ {
		g := 1 << uint(l)
		if 9*g*g-6*g+1 <= words {
			level = l
		}
	}
	return level
}

// sketchJoinErr builds the SKETCH estimator for a 2-d join under a word
// budget and returns the relative error averaged over opt.Runs seeds.
func sketchJoinErr(r, s []geo.HyperRect, domain uint64, budgetWords int, maxLevel int, exactVal float64, opt Options) (float64, error) {
	var sum float64
	for run := 0; run < opt.Runs; run++ {
		est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
			Dims: 2, DomainSize: domain,
			Sizing:   spatial.Sizing{MemoryWords: budgetWords, Groups: 8},
			MaxLevel: maxLevel,
			Seed:     opt.Seed + uint64(run)*7919,
		})
		if err != nil {
			return 0, err
		}
		if err := est.InsertLeftBulk(r); err != nil {
			return 0, err
		}
		if err := est.InsertRightBulk(s); err != nil {
			return 0, err
		}
		card, err := est.Cardinality()
		if err != nil {
			return 0, err
		}
		sum += relErr(card.Clamped(), exactVal)
	}
	return sum / float64(opt.Runs), nil
}

// histogramJoinErrs builds GH and EH at the given levels and returns their
// relative errors.
func histogramJoinErrs(r, s []geo.HyperRect, domain uint64, ghLevel, ehLevel int, exactVal float64) (ghErr, ehErr float64, err error) {
	gh1, err := histogram.NewGH(ghLevel, domain)
	if err != nil {
		return 0, 0, err
	}
	gh2, _ := histogram.NewGH(ghLevel, domain)
	eh1, err := histogram.NewEH(ehLevel, domain)
	if err != nil {
		return 0, 0, err
	}
	eh2, _ := histogram.NewEH(ehLevel, domain)
	for _, x := range r {
		if err := gh1.Insert(x); err != nil {
			return 0, 0, err
		}
		if err := eh1.Insert(x); err != nil {
			return 0, 0, err
		}
	}
	for _, x := range s {
		if err := gh2.Insert(x); err != nil {
			return 0, 0, err
		}
		if err := eh2.Insert(x); err != nil {
			return 0, 0, err
		}
	}
	ghEst, err := histogram.GHJoinEstimate(gh1, gh2)
	if err != nil {
		return 0, 0, err
	}
	ehEst, err := histogram.EHJoinEstimate(eh1, eh2)
	if err != nil {
		return 0, 0, err
	}
	return relErr(ghEst, exactVal), relErr(ehEst, exactVal), nil
}

func f(v float64) string  { return fmt.Sprintf("%.4f", v) }
func fi(v float64) string { return fmt.Sprintf("%.0f", v) }
