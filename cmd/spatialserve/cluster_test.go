package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	spatial "repro"
	"repro/geo"
	"repro/internal/cluster"
)

// In-process cluster tests: several Servers wired together over real HTTP
// (httptest listeners), all race-clean. The exactness claims are checked
// the strongest way possible - merged cluster snapshots must be
// BYTE-identical to a loss-free single-node build of the same stream.

const testPartitions = 4

// startCluster brings up n in-process cluster nodes (persistent when dirs
// is non-nil) and returns the servers and their base URLs.
func startCluster(t *testing.T, n int, persistent bool) ([]*Server, []string) {
	t.Helper()
	checkGoroutineLeaks(t)
	srvs := make([]*Server, n)
	hts := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		var err error
		if persistent {
			srvs[i], err = NewPersistentServer(PersistOptions{DataDir: filepath.Join(t.TempDir(), "node")})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			srvs[i] = NewServer()
		}
		hts[i] = httptest.NewServer(srvs[i])
		urls[i] = hts[i].URL
		t.Cleanup(hts[i].Close)
		srv := srvs[i]
		t.Cleanup(func() { srv.Close() })
	}
	m := &cluster.Map{Version: 1}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, cluster.Node{ID: fmt.Sprintf("n%d", i), URL: urls[i]})
	}
	for i := 0; i < n; i++ {
		if err := srvs[i].EnableCluster(ClusterOptions{
			SelfID:     fmt.Sprintf("n%d", i),
			Map:        m.Clone(),
			Partitions: testPartitions,
			Client:     cluster.NewClient(10*time.Second, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return srvs, urls
}

func httpDo(t testing.TB, method, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func mustDo(t testing.TB, method, url string, body []byte, want int) []byte {
	t.Helper()
	resp, data := httpDo(t, method, url, body, nil)
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d: %s", method, url, resp.StatusCode, want, data)
	}
	return data
}

// clusterRefs builds the four reference estimators matching the test
// create requests (same configs, single node, loss-free).
type clusterRefs struct {
	j *spatial.JoinEstimator
	r *spatial.RangeEstimator
	e *spatial.EpsJoinEstimator
	c *spatial.ContainmentEstimator
}

func newClusterRefs(t *testing.T, dom uint64) *clusterRefs {
	t.Helper()
	sz := spatial.Sizing{Instances: 64, Groups: 4}
	j, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: dom, Seed: 1, Sizing: sz})
	if err != nil {
		t.Fatal(err)
	}
	r, err := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 1, DomainSize: dom, Seed: 2, Sizing: sz})
	if err != nil {
		t.Fatal(err)
	}
	e, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{Dims: 2, DomainSize: dom, Eps: 8, Seed: 3, Sizing: sz})
	if err != nil {
		t.Fatal(err)
	}
	c, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{Dims: 2, DomainSize: dom, Seed: 4, Sizing: sz})
	if err != nil {
		t.Fatal(err)
	}
	return &clusterRefs{j: j, r: r, e: e, c: c}
}

func createFour(t *testing.T, base string, dom uint64) {
	t.Helper()
	for _, c := range []createRequest{
		{Name: "j", Kind: "join", Config: configRequest{Dims: 2, DomainSize: dom, Seed: 1, Instances: 64, Groups: 4}},
		{Name: "r", Kind: "range", Config: configRequest{Dims: 1, DomainSize: dom, Seed: 2, Instances: 64, Groups: 4}},
		{Name: "e", Kind: "epsjoin", Config: configRequest{Dims: 2, DomainSize: dom, Eps: 8, Seed: 3, Instances: 64, Groups: 4}},
		{Name: "c", Kind: "containment", Config: configRequest{Dims: 2, DomainSize: dom, Seed: 4, Instances: 64, Groups: 4}},
	} {
		body, _ := json.Marshal(c)
		mustDo(t, "POST", base+"/v1/estimators", body, http.StatusCreated)
	}
}

// TestClusterExactScatterGather is the headline exactness test: a 3-node
// cluster ingests a mixed stream (all four estimator kinds, routed
// through rotating nodes, deletes included) and every merged cluster
// snapshot - hence every estimate - is byte-identical to a loss-free
// single-node build of the same stream.
func TestClusterExactScatterGather(t *testing.T) {
	const dom = 1 << 12
	const n = 160
	_, urls := startCluster(t, 3, false)
	createFour(t, urls[0], dom)
	refs := newClusterRefs(t, dom)

	rng := rand.New(rand.NewSource(77))
	post := func(via int, name string, req updateRequest) {
		body, _ := json.Marshal(req)
		mustDo(t, "POST", urls[via]+"/v1/estimators/"+name+"/update", body, http.StatusOK)
	}
	var rects []geo.HyperRect
	for i := 0; i < n; i++ {
		wr := randRect(rng, dom)
		rect := geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])
		rects = append(rects, rect)
		ws := randRect(rng, dom)
		span := geo.Span1D(ws[0][0], ws[0][1])
		pt := geo.Point{rng.Uint64() % dom, rng.Uint64() % dom}
		via := i % 3
		switch i % 4 {
		case 0:
			post(via, "j", updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
			if err := refs.j.InsertLeft(rect); err != nil {
				t.Fatal(err)
			}
		case 1:
			post(via, "j", updateRequest{Side: "right", Rects: [][][2]uint64{wr}})
			if err := refs.j.InsertRight(rect); err != nil {
				t.Fatal(err)
			}
			post(via, "r", updateRequest{Rects: [][][2]uint64{wireRect(span)}})
			if err := refs.r.Insert(span); err != nil {
				t.Fatal(err)
			}
		case 2:
			side, ins := "left", refs.e.InsertLeft
			if i%8 == 2 {
				side, ins = "right", refs.e.InsertRight
			}
			post(via, "e", updateRequest{Side: side, Points: [][]uint64{pt}})
			if err := ins(pt); err != nil {
				t.Fatal(err)
			}
		case 3:
			side, ins := "inner", refs.c.InsertInner
			if i%8 == 3 {
				side, ins = "outer", refs.c.InsertOuter
			}
			post(via, "c", updateRequest{Side: side, Rects: [][][2]uint64{wr}})
			if err := ins(rect); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Deletes must cancel exactly across the partitioned ingest (the
	// routing hash sends a delete to the partition holding its insert).
	for i := 0; i < 16; i += 4 {
		post(i%3, "j", updateRequest{Op: "delete", Side: "left", Rects: [][][2]uint64{wireRect(rects[i])}})
		if err := refs.j.DeleteLeft(rects[i]); err != nil {
			t.Fatal(err)
		}
	}

	wantSnaps := map[string][]byte{}
	for name, ref := range map[string]interface{ Marshal() ([]byte, error) }{
		"j": refs.j, "r": refs.r, "e": refs.e, "c": refs.c,
	} {
		want, err := ref.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		wantSnaps[name] = want
		// Gathered snapshots must be identical no matter which node serves.
		for via := 0; via < 3; via++ {
			got := mustDo(t, "GET", urls[via]+"/v1/estimators/"+name+"/snapshot", nil, http.StatusOK)
			if !bytes.Equal(got, want) {
				t.Errorf("estimator %q via node %d: merged cluster snapshot differs from the single-node build", name, via)
			}
		}
	}

	// Estimates are computed from the merged counters, so they are
	// bit-identical to the single-node estimates.
	jEst, _, _, err := refs.j.CardinalityWithCounts()
	if err != nil {
		t.Fatal(err)
	}
	var got estimateResponse
	if err := json.Unmarshal(mustDo(t, "GET", urls[2]+"/v1/estimators/j/estimate", nil, http.StatusOK), &got); err != nil {
		t.Fatal(err)
	}
	if got.Value != jEst.Value || got.Mean != jEst.Mean {
		t.Errorf("cluster join estimate (%v, %v) != single-node (%v, %v)", got.Value, got.Mean, jEst.Value, jEst.Mean)
	}

	// List aggregates shard names back to base names; info sums counts.
	var list struct {
		Estimators []struct{ Name, Kind string } `json:"estimators"`
	}
	if err := json.Unmarshal(mustDo(t, "GET", urls[1]+"/v1/estimators", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Estimators) != 4 {
		t.Fatalf("cluster list has %d entries, want 4: %+v", len(list.Estimators), list.Estimators)
	}
	var info infoResponse
	if err := json.Unmarshal(mustDo(t, "GET", urls[0]+"/v1/estimators/r", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	if want := refs.r.Count(); info.Counts["data"] != want {
		t.Errorf("cluster info count %d, want %d", info.Counts["data"], want)
	}

	// Delete fans out; afterwards every node answers 404.
	mustDo(t, "DELETE", urls[0]+"/v1/estimators/e", nil, http.StatusOK)
	mustDo(t, "GET", urls[1]+"/v1/estimators/e/estimate", nil, http.StatusNotFound)
}

// TestClusterRebalanceMidIngest moves every partition of an estimator to
// a different node WHILE concurrent writers stream updates through all
// three nodes, then proves the merged snapshot still matches a loss-free
// single-node replay - the handoff protocol (snapshot at a WAL cut +
// suffix shipping + sealed flip) must not lose or double-apply a record.
func TestClusterRebalanceMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node handoff under concurrent load")
	}
	const dom = 1 << 12
	srvs, urls := startCluster(t, 3, true)
	_ = srvs
	body, _ := json.Marshal(createRequest{Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: dom, Seed: 9, Instances: 64, Groups: 4}})
	mustDo(t, "POST", urls[0]+"/v1/estimators", body, http.StatusCreated)

	var mu sync.Mutex
	var sent []geo.HyperRect
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				wr := randRect(rng, dom)
				req, _ := json.Marshal(updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
				resp, data := httpDo(t, "POST", urls[g]+"/v1/estimators/j/update", req, nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d: update failed mid-rebalance: %d: %s", g, resp.StatusCode, data)
					return
				}
				mu.Lock()
				sent = append(sent, geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1]))
				mu.Unlock()
			}
		}(g)
	}

	// Let the writers get going, then move every partition to the next
	// node over, issuing each move through a different (often non-owner)
	// node so forwarding is exercised too.
	time.Sleep(200 * time.Millisecond)
	for p := 0; p < testPartitions; p++ {
		target := fmt.Sprintf("n%d", (p+1)%3)
		rb, _ := json.Marshal(rebalanceRequest{Name: "j", Partition: p, Target: target})
		resp, data := httpDo(t, "POST", urls[p%3]+"/admin/rebalance", rb, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebalance of partition %d: %d: %s", p, resp.StatusCode, data)
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	ref, err := spatial.NewJoinEstimator(spatial.JoinConfig{Dims: 2, DomainSize: dom, Seed: 9,
		Sizing: spatial.Sizing{Instances: 64, Groups: 4}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	all := append([]geo.HyperRect(nil), sent...)
	mu.Unlock()
	for _, r := range all {
		if err := ref.InsertLeft(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for via := 0; via < 3; via++ {
		got := mustDo(t, "GET", urls[via]+"/v1/estimators/j/snapshot", nil, http.StatusOK)
		if !bytes.Equal(got, want) {
			t.Errorf("after rebalances: snapshot via node %d differs from the loss-free replay (%d updates)", via, len(all))
		}
	}
	t.Logf("rebalanced all %d partitions under %d concurrent updates, exactness preserved", testPartitions, len(all))

	// The map settled on a newer version with overrides on every node.
	var rr ringResponse
	if err := json.Unmarshal(mustDo(t, "GET", urls[2]+"/admin/ring", nil, http.StatusOK), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Map == nil || rr.Map.Version < 2 {
		t.Errorf("ring did not advance past rebalances: %+v", rr.Map)
	}
}

// TestClusterRingAdoption checks map versioning: stale broadcasts are
// ignored, newer ones win.
func TestClusterRingAdoption(t *testing.T) {
	srvs, urls := startCluster(t, 2, false)
	m := srvs[0].cluster.map_().Clone()
	m.Version = 5
	m.Overrides = map[string]string{cluster.ShardName("x", 0): "n1"}
	body, _ := json.Marshal(m)
	mustDo(t, "POST", urls[0]+"/admin/ring", body, http.StatusOK)
	if got := srvs[0].cluster.map_().Version; got != 5 {
		t.Fatalf("newer map not adopted: version %d", got)
	}
	stale := m.Clone()
	stale.Version = 3
	stale.Overrides = nil
	body, _ = json.Marshal(stale)
	mustDo(t, "POST", urls[0]+"/admin/ring", body, http.StatusOK)
	cur := srvs[0].cluster.map_()
	if cur.Version != 5 || len(cur.Overrides) != 1 {
		t.Fatalf("stale map overwrote a newer one: %+v", cur)
	}
}

// TestReplicaFollowAndPromote runs a leader and a WAL-shipped follower:
// the follower bootstraps from an exact cut, tails the leader's log
// (applying through UpdateRecord.Apply), rejects external writes, and on
// promotion serves estimators byte-identical to a loss-free replay - then
// accepts writes as an ordinary durable node.
func TestReplicaFollowAndPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process replication timing")
	}
	const dom = 1 << 12
	leader, err := NewPersistentServer(PersistOptions{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	lh := httptest.NewServer(leader)
	refs := newClusterRefs(t, dom)
	createFour(t, lh.URL, dom)

	rng := rand.New(rand.NewSource(55))
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			wr := randRect(rng, dom)
			rect := geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])
			body, _ := json.Marshal(updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
			mustDo(t, "POST", lh.URL+"/v1/estimators/j/update", body, http.StatusOK)
			if err := refs.j.InsertLeft(rect); err != nil {
				t.Fatal(err)
			}
			ws := randRect(rng, dom)
			span := geo.Span1D(ws[0][0], ws[0][1])
			body, _ = json.Marshal(updateRequest{Rects: [][][2]uint64{wireRect(span)}})
			mustDo(t, "POST", lh.URL+"/v1/estimators/r/update", body, http.StatusOK)
			if err := refs.r.Insert(span); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(30) // pre-bootstrap history

	follower, err := NewPersistentServer(PersistOptions{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fh := httptest.NewServer(follower)
	defer fh.Close()
	defer follower.Close()
	if err := follower.StartReplica(lh.URL, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ingest(30) // shipped via WAL tailing

	// Wait until the follower's applied position reaches the leader's
	// frontier.
	leaderPos := func() string {
		var rr ringResponse
		if err := json.Unmarshal(mustDo(t, "GET", lh.URL+"/admin/ring", nil, http.StatusOK), &rr); err != nil {
			t.Fatal(err)
		}
		return rr.WalPos
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var rr ringResponse
		if err := json.Unmarshal(mustDo(t, "GET", fh.URL+"/admin/ring", nil, http.StatusOK), &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Replica == nil {
			t.Fatal("follower reports no replica status")
		}
		if rr.Replica.Pos == leaderPos() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: at %s, leader at %s (lastError %q)",
				rr.Replica.Pos, leaderPos(), rr.Replica.LastError)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Read-only while replicating.
	body, _ := json.Marshal(updateRequest{Side: "left", Rects: [][][2]uint64{randRect(rng, dom)}})
	resp, _ := httpDo(t, "POST", fh.URL+"/v1/estimators/j/update", body, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("follower accepted an external write: %d", resp.StatusCode)
	}

	// Leader dies; promote the follower and verify bit-identical state.
	lh.Close()
	leader.Close()
	mustDo(t, "POST", fh.URL+"/admin/promote", nil, http.StatusOK)
	for name, ref := range map[string]interface{ Marshal() ([]byte, error) }{
		"j": refs.j, "r": refs.r, "e": refs.e, "c": refs.c,
	} {
		want, err := ref.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got := mustDo(t, "GET", fh.URL+"/v1/estimators/"+name+"/snapshot", nil, http.StatusOK)
		if !bytes.Equal(got, want) {
			t.Errorf("promoted follower: estimator %q differs from the loss-free replay", name)
		}
	}

	// The promoted node is an ordinary read-write durable server now.
	wr := randRect(rng, dom)
	body, _ = json.Marshal(updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
	mustDo(t, "POST", fh.URL+"/v1/estimators/j/update", body, http.StatusOK)
	if err := refs.j.InsertLeft(geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])); err != nil {
		t.Fatal(err)
	}
	want, err := refs.j.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got := mustDo(t, "GET", fh.URL+"/v1/estimators/j/snapshot", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("post-promotion write diverged from the reference")
	}
}

// TestClusterMapPersistsAcrossRestart: rebalance overrides must survive a
// full-cluster restart - the saved partition map restores ownership while
// the (possibly changed) -peers flags stay authoritative for node
// addresses - or every moved shard would be stranded on a node the
// version-1 ring does not name.
func TestClusterMapPersistsAcrossRestart(t *testing.T) {
	const dom = 1 << 10
	dirs := []string{t.TempDir(), t.TempDir()}
	ids := []string{"n0", "n1"}

	boot := func() ([]*Server, []*httptest.Server, []string) {
		srvs := make([]*Server, 2)
		hts := make([]*httptest.Server, 2)
		urls := make([]string, 2)
		for i := 0; i < 2; i++ {
			var err error
			srvs[i], err = NewPersistentServer(PersistOptions{DataDir: dirs[i]})
			if err != nil {
				t.Fatal(err)
			}
			hts[i] = httptest.NewServer(srvs[i])
			urls[i] = hts[i].URL
		}
		m := &cluster.Map{Version: 1, Nodes: []cluster.Node{
			{ID: ids[0], URL: urls[0]}, {ID: ids[1], URL: urls[1]}}}
		for i := 0; i < 2; i++ {
			if err := srvs[i].EnableCluster(ClusterOptions{
				SelfID: ids[i], Map: m.Clone(), Partitions: testPartitions,
				Client: cluster.NewClient(10*time.Second, 0),
			}); err != nil {
				t.Fatal(err)
			}
		}
		return srvs, hts, urls
	}
	srvs, hts, urls := boot()
	body, _ := json.Marshal(createRequest{Name: "m", Kind: "range",
		Config: configRequest{Dims: 1, DomainSize: dom, Seed: 21, Instances: 32, Groups: 4}})
	mustDo(t, "POST", urls[0]+"/v1/estimators", body, http.StatusCreated)

	ref, err := spatial.NewRangeEstimator(spatial.RangeConfig{Dims: 1, DomainSize: dom, Seed: 21,
		Sizing: spatial.Sizing{Instances: 32, Groups: 4}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		lo := rng.Uint64() % (dom - 2)
		hi := lo + 1 + rng.Uint64()%(dom-lo-1)
		ub, _ := json.Marshal(updateRequest{Rects: [][][2]uint64{{{lo, hi}}}})
		mustDo(t, "POST", urls[i%2]+"/v1/estimators/m/update", ub, http.StatusOK)
		if err := ref.Insert(geo.Span1D(lo, hi)); err != nil {
			t.Fatal(err)
		}
	}
	// Move partitions 0 and 2 to whichever node does not own them.
	for _, p := range []int{0, 2} {
		shard := cluster.ShardName("m", p)
		owner, _ := srvs[0].cluster.map_().Owner(shard)
		target := ids[0]
		if owner.ID == ids[0] {
			target = ids[1]
		}
		rb, _ := json.Marshal(rebalanceRequest{Name: "m", Partition: p, Target: target})
		mustDo(t, "POST", urls[0]+"/admin/rebalance", rb, http.StatusOK)
	}
	want, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDo(t, "GET", urls[1]+"/v1/estimators/m/snapshot", nil, http.StatusOK); !bytes.Equal(got, want) {
		t.Fatal("pre-restart snapshot differs from reference")
	}

	// Full-cluster restart: new processes, NEW addresses (httptest picks
	// fresh ports), same data dirs and identities.
	for i := 0; i < 2; i++ {
		hts[i].Close()
		if err := srvs[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	srvs2, hts2, urls2 := boot()
	defer func() {
		for i := 0; i < 2; i++ {
			hts2[i].Close()
			srvs2[i].Close()
		}
	}()
	if v := srvs2[0].cluster.map_().Version; v < 3 {
		t.Fatalf("restarted node lost the rebalanced map: version %d", v)
	}
	for via := 0; via < 2; via++ {
		got := mustDo(t, "GET", urls2[via]+"/v1/estimators/m/snapshot", nil, http.StatusOK)
		if !bytes.Equal(got, want) {
			t.Errorf("post-restart snapshot via node %d differs from reference", via)
		}
	}
}
