package experiments

import (
	"fmt"
	"math"

	spatial "repro"
	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/exact"
)

// Ablations and extension studies beyond the paper's figures, indexed in
// DESIGN.md Section 4.

// AblationMaxLevel sweeps the Section 6.5 level cap on a short-interval
// workload: low caps shrink the endpoint self-join size (fewer shared
// high-level dyadic nodes) but lengthen interval covers; the sweet spot
// tracks the object length distribution.
func AblationMaxLevel(opt Options) (Table, error) {
	opt = opt.withDefaults()
	const domain = 1 << 12
	n := int(60000 * opt.Scale)
	if n < 300 {
		n = 300
	}
	// Mostly short intervals (mean 8 on a 4096 domain).
	r := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain, Seed: opt.Seed, MeanLen: []float64{8}})
	s := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain, Seed: opt.Seed + 5, MeanLen: []float64{8}})
	exactVal := float64(exact.IntervalJoinCount(r, s))
	tab := Table{
		Name:   "maxlevel",
		Title:  "Section 6.5 ablation: relative error vs maxLevel cap, short intervals, fixed space",
		Header: []string{"max_level", "relerr_sketch", fmt.Sprintf("(n=%d exact=%d)", n, uint64(exactVal))},
	}
	for _, ml := range []int{1, 3, 5, 7, 9, 11, 14} {
		var sum float64
		for run := 0; run < opt.Runs; run++ {
			est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
				Dims: 1, DomainSize: domain,
				Sizing:   spatial.Sizing{Instances: 1024, Groups: 8},
				MaxLevel: ml,
				Seed:     opt.Seed + uint64(run)*31 + uint64(ml),
			})
			if err != nil {
				return Table{}, err
			}
			if err := est.InsertLeftBulk(r); err != nil {
				return Table{}, err
			}
			if err := est.InsertRightBulk(s); err != nil {
				return Table{}, err
			}
			card, err := est.Cardinality()
			if err != nil {
				return Table{}, err
			}
			sum += relErr(card.Clamped(), exactVal)
		}
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(ml), f(sum / float64(opt.Runs)), ""})
	}
	return tab, nil
}

// AblationStandardVsDyadic compares the standard sketch (maxLevel 0: one
// xi per coordinate, Section 3.1) with the dyadic sketch on short vs long
// interval workloads - the trade-off Section 6.5 describes.
func AblationStandardVsDyadic(opt Options) (Table, error) {
	opt = opt.withDefaults()
	const domain = 1 << 10
	n := int(40000 * opt.Scale)
	if n < 300 {
		n = 300
	}
	tab := Table{
		Name:   "standard",
		Title:  "Section 6.5 ablation: standard (maxLevel 0) vs dyadic sketches by interval length",
		Header: []string{"mean_len", "relerr_standard", "relerr_dyadic"},
	}
	for _, meanLen := range []float64{2, 8, 32, 128} {
		r := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain, Seed: opt.Seed + uint64(meanLen), MeanLen: []float64{meanLen}})
		s := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain, Seed: opt.Seed + uint64(meanLen) + 3, MeanLen: []float64{meanLen}})
		exactVal := float64(exact.IntervalJoinCount(r, s))
		if exactVal == 0 {
			continue
		}
		errAt := func(ml int) (float64, error) {
			var sum float64
			for run := 0; run < opt.Runs; run++ {
				est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
					Dims: 1, DomainSize: domain,
					Sizing:   spatial.Sizing{Instances: 1024, Groups: 8},
					MaxLevel: ml,
					Seed:     opt.Seed + uint64(run)*101 + uint64(ml)*7,
				})
				if err != nil {
					return 0, err
				}
				if err := est.InsertLeftBulk(r); err != nil {
					return 0, err
				}
				if err := est.InsertRightBulk(s); err != nil {
					return 0, err
				}
				card, err := est.Cardinality()
				if err != nil {
					return 0, err
				}
				sum += relErr(card.Clamped(), exactVal)
			}
			return sum / float64(opt.Runs), nil
		}
		// MaxLevel is clamped to >= 1 by the facade (0 means uncapped), so
		// "standard" uses cap 1: per-coordinate leaves plus one level.
		stdErr, err := errAt(1)
		if err != nil {
			return Table{}, err
		}
		dyErr, err := errAt(-1)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{fi(meanLen), f(stdErr), f(dyErr)})
	}
	return tab, nil
}

// AblationDomainGrowth reproduces the Section 7.1 discussion: doubling the
// coordinate domain (without changing the data) hurts grid histograms -
// their cells coarsen - while the sketch error is unchanged when the level
// cap is held fixed.
func AblationDomainGrowth(opt Options) (Table, error) {
	opt = opt.withDefaults()
	n := int(50000 * opt.Scale)
	if n < 300 {
		n = 300
	}
	tab := Table{
		Name:   "domaingrowth",
		Title:  "Section 7.1 ablation: same data, conceptually growing domain; fixed space",
		Header: []string{"domain", "relerr_sketch", "relerr_eh", "relerr_gh"},
	}
	baseDomain := uint64(1 << 12)
	// Fixed data, generated on the base domain.
	r := datagen.MustRects(datagen.Spec{N: n, Dims: 2, Domain: baseDomain, Seed: opt.Seed + 1})
	s := datagen.MustRects(datagen.Spec{N: n, Dims: 2, Domain: baseDomain, Seed: opt.Seed + 2})
	exactVal := float64(exact.RectJoinCount(r, s))
	budget := 2209 // EH level 4
	ml := autoMaxLevel(math.Sqrt(float64(baseDomain)))
	for _, factor := range []uint64{1, 2, 4, 8} {
		domain := baseDomain * factor
		skErr, err := sketchJoinErr(r, s, domain, budget, ml, exactVal, opt)
		if err != nil {
			return Table{}, err
		}
		ghErr, ehErr, err := histogramJoinErrs(r, s, domain,
			ghLevelForWords(budget), ehLevelForWords(budget), exactVal)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(domain), f(skErr), f(ehErr), f(ghErr)})
	}
	return tab, nil
}

// EpsJoinStudy measures epsilon-join estimation error vs epsilon
// (Section 6.3).
func EpsJoinStudy(opt Options) (Table, error) {
	opt = opt.withDefaults()
	const domain = 1 << 10
	n := int(40000 * opt.Scale)
	if n < 300 {
		n = 300
	}
	a := datagen.MustPoints(datagen.Spec{N: n, Dims: 2, Domain: domain, Seed: opt.Seed + 11})
	b := datagen.MustPoints(datagen.Spec{N: n, Dims: 2, Domain: domain, Seed: opt.Seed + 12})
	tab := Table{
		Name:   "epsjoin",
		Title:  "Section 6.3: epsilon-join estimation error vs epsilon (L-infinity)",
		Header: []string{"eps", "exact", "estimate", "relerr"},
	}
	for _, eps := range []uint64{8, 16, 32, 64} {
		exactVal := float64(exact.EpsJoinCount(a, b, eps, exact.LInf))
		if exactVal == 0 {
			continue
		}
		var sum float64
		for run := 0; run < opt.Runs; run++ {
			est, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
				Dims: 2, DomainSize: domain, Eps: eps,
				Sizing: spatial.Sizing{Instances: 4096, Groups: 8},
				Seed:   opt.Seed + uint64(run)*17 + eps,
			})
			if err != nil {
				return Table{}, err
			}
			for _, p := range a {
				if err := est.InsertLeft(p); err != nil {
					return Table{}, err
				}
			}
			for _, p := range b {
				if err := est.InsertRight(p); err != nil {
					return Table{}, err
				}
			}
			card, err := est.Cardinality()
			if err != nil {
				return Table{}, err
			}
			sum += card.Clamped()
		}
		avg := sum / float64(opt.Runs)
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(eps), fi(exactVal), fi(avg), f(relErr(avg, exactVal))})
	}
	return tab, nil
}

// RangeQueryStudy measures range-query estimation error vs query
// selectivity (Section 6.4).
func RangeQueryStudy(opt Options) (Table, error) {
	opt = opt.withDefaults()
	const domain = 1 << 12
	n := int(60000 * opt.Scale)
	if n < 300 {
		n = 300
	}
	rects := datagen.MustRects(datagen.Spec{N: n, Dims: 1, Domain: domain, Seed: opt.Seed + 21})
	re, err := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims: 1, DomainSize: domain,
		Sizing: spatial.Sizing{Instances: 4096, Groups: 8},
		Seed:   opt.Seed + 22,
	})
	if err != nil {
		return Table{}, err
	}
	if err := re.InsertBulk(rects); err != nil {
		return Table{}, err
	}
	tab := Table{
		Name:   "rangequery",
		Title:  "Section 6.4: range query estimation across query widths",
		Header: []string{"query", "exact", "estimate", "relerr"},
	}
	for _, q := range []geo.HyperRect{
		geo.Span1D(100, 200), geo.Span1D(0, 1023), geo.Span1D(1500, 3500), geo.Span1D(2000, 2100),
	} {
		exactVal := float64(exact.RangeCount(rects, q))
		est, err := re.Estimate(q)
		if err != nil {
			return Table{}, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("[%d,%d]", q[0].Lo, q[0].Hi), fi(exactVal), fi(est.Clamped()), f(relErr(est.Clamped(), exactVal)),
		})
	}
	return tab, nil
}

// Dim3Study measures 3-d hyper-rectangle join estimation (Section 6.1):
// the curse of dimensionality shows as larger error at equal space.
func Dim3Study(opt Options) (Table, error) {
	opt = opt.withDefaults()
	const domain = 1 << 8
	n := int(20000 * opt.Scale)
	if n < 200 {
		n = 200
	}
	tab := Table{
		Name:   "dim3",
		Title:  "Section 6.1: join error vs dimensionality at equal space",
		Header: []string{"dims", "exact", "relerr_sketch"},
	}
	for _, dims := range []int{1, 2, 3} {
		mean := make([]float64, dims)
		for i := range mean {
			mean[i] = float64(domain) / 4
		}
		r := datagen.MustRects(datagen.Spec{N: n, Dims: dims, Domain: domain, Seed: opt.Seed + uint64(dims), MeanLen: mean})
		s := datagen.MustRects(datagen.Spec{N: n, Dims: dims, Domain: domain, Seed: opt.Seed + uint64(dims) + 9, MeanLen: mean})
		exactVal := float64(exact.JoinCount(r, s))
		if exactVal == 0 {
			continue
		}
		var sum float64
		for run := 0; run < opt.Runs; run++ {
			est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
				Dims: dims, DomainSize: domain,
				Sizing: spatial.Sizing{MemoryWords: 4096, Groups: 8},
				Seed:   opt.Seed + uint64(run)*71 + uint64(dims),
			})
			if err != nil {
				return Table{}, err
			}
			if err := est.InsertLeftBulk(r); err != nil {
				return Table{}, err
			}
			if err := est.InsertRightBulk(s); err != nil {
				return Table{}, err
			}
			card, err := est.Cardinality()
			if err != nil {
				return Table{}, err
			}
			sum += relErr(card.Clamped(), exactVal)
		}
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(dims), fi(exactVal), f(sum / float64(opt.Runs))})
	}
	return tab, nil
}
