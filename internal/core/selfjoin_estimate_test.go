package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/exact"
)

// TestEstimateSelfJoinUnbiased: the sketch's self-estimate of SJ(R)
// matches the exact self-join sizes (E[X_w^2] = SJ(X_w)).
func TestEstimateSelfJoinUnbiased(t *testing.T) {
	p := MustPlan(Config{
		Dims: 1, LogDomain: []int{7}, MaxLevel: []int{4},
		Instances: 20000, Groups: 4, Seed: 77,
	})
	rects := datagen.MustRects(datagen.Spec{N: 60, Dims: 1, Domain: 128, Seed: 9, MeanLen: []float64{12}})
	s := p.NewJoinSketch()
	if err := s.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	want, err := exact.SelfJoinSizes(p.Domains(), p.MaxLevels(), rects)
	if err != nil {
		t.Fatal(err)
	}
	est := s.EstimateSelfJoin()
	assertUnbiased(t, "selfjoin-estimate", est, want.Total)
	// Power: the estimate must clearly distinguish SJ from, say, 2*SJ.
	if math.Abs(est.Value-want.Total) > 0.5*want.Total {
		t.Fatalf("self-join estimate %.0f too far from exact %.0f", est.Value, want.Total)
	}
}

// TestEstimateSelfJoin2D: the identity holds per letter string in 2-d too.
func TestEstimateSelfJoin2D(t *testing.T) {
	p := MustPlan(Config{
		Dims: 2, LogDomain: []int{5, 5}, MaxLevel: []int{3, 3},
		Instances: 12000, Groups: 4, Seed: 78,
	})
	rects := datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: 32, Seed: 10})
	s := p.NewJoinSketch()
	if err := s.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	want, err := exact.SelfJoinSizes(p.Domains(), p.MaxLevels(), rects)
	if err != nil {
		t.Fatal(err)
	}
	assertUnbiased(t, "selfjoin-estimate-2d", s.EstimateSelfJoin(), want.Total)
}

// TestEstimateSelfJoinEmpty: an empty sketch estimates zero.
func TestEstimateSelfJoinEmpty(t *testing.T) {
	p := MustPlan(Config{Dims: 1, LogDomain: []int{5}, Instances: 8, Groups: 4, Seed: 1})
	if got := p.NewJoinSketch().EstimateSelfJoin().Value; got != 0 {
		t.Fatalf("empty self-join estimate = %g", got)
	}
}
