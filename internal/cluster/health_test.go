package cluster

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		limit := 10 * time.Millisecond << attempt
		if limit > 80*time.Millisecond {
			limit = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := b.Delay(attempt); d < 0 || d > limit {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, limit)
			}
		}
	}
}

func TestBackoffWaitRespectsContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Wait(ctx, 3); err == nil {
		t.Fatal("want context error")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Wait ignored cancelled context for %v", d)
	}
	// Attempt 0 never sleeps.
	if err := (Backoff{}).Wait(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

// testClock is a manually advanced clock for breaker timing.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &testClock{t: time.Unix(1000, 0)}
	h := NewHealth(HealthOptions{FailureThreshold: 3, OpenFor: time.Second, Now: clk.now})

	// Closed: failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !h.Allow("a") {
			t.Fatal("closed breaker refused")
		}
		h.Record("a", false, 0)
	}
	if got := h.State("a"); got != BreakerClosed {
		t.Fatalf("state after 2 fails = %v", got)
	}
	// Third consecutive failure opens it.
	h.Record("a", false, 0)
	if got := h.State("a"); got != BreakerOpen {
		t.Fatalf("state after threshold = %v", got)
	}
	if h.Allow("a") {
		t.Fatal("open breaker allowed a request")
	}

	// After OpenFor, exactly one probe is admitted.
	clk.advance(time.Second)
	if !h.Allow("a") {
		t.Fatal("half-open breaker refused the probe")
	}
	if h.Allow("a") {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe failure re-opens immediately (no threshold).
	h.Record("a", false, 0)
	if got := h.State("a"); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v", got)
	}

	// Next probe succeeds: breaker closes, traffic flows.
	clk.advance(time.Second)
	if !h.Allow("a") {
		t.Fatal("second probe refused")
	}
	h.Record("a", true, 5*time.Millisecond)
	if got := h.State("a"); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v", got)
	}
	if !h.Allow("a") || !h.Allow("a") {
		t.Fatal("closed breaker throttling")
	}
}

func TestHealthEWMAAndSnapshot(t *testing.T) {
	h := NewHealth(HealthOptions{EWMAAlpha: 0.5})
	h.Record("a", true, 10*time.Millisecond)
	h.Record("a", true, 20*time.Millisecond)
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Node != "a" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap[0].EWMALatencyMs; got != 15 {
		t.Fatalf("EWMA after 10,20ms at alpha 0.5 = %v, want 15", got)
	}
	if snap[0].State != "closed" || snap[0].ConsecutiveFailures != 0 {
		t.Fatalf("snapshot = %+v", snap[0])
	}
	h.Forget("a")
	if len(h.Snapshot()) != 0 {
		t.Fatal("Forget left state behind")
	}
}

func TestMapReplicas(t *testing.T) {
	m := &Map{
		Version:  1,
		Nodes:    []Node{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}},
		Replicas: map[string]string{"a": "http://a-replica"},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if url, ok := m.ReplicaURL("a"); !ok || url != "http://a-replica" {
		t.Fatalf("ReplicaURL(a) = %q, %v", url, ok)
	}
	if _, ok := m.ReplicaURL("b"); ok {
		t.Fatal("node b has no replica")
	}
	c := m.Clone()
	c.Replicas["a"] = "changed"
	if m.Replicas["a"] != "http://a-replica" {
		t.Fatal("Clone shares the Replicas map")
	}
	bad := &Map{Version: 1, Nodes: m.Nodes, Replicas: map[string]string{"zz": "http://x"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("replica for unknown node must fail validation")
	}
}
