package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// SoakSpec is the env-gated configuration of the CI chaos soak: a fixed
// seed for reproducibility and knobs that scale the run.
type SoakSpec struct {
	// Seed seeds both the injector and the soak's traffic generators.
	Seed int64
	// Rounds is how many fault/heal cycles the soak runs.
	Rounds int
	// Writers is the concurrent ingest-worker count.
	Writers int
}

// DefaultSoakSpec is the configuration used when the env var sets only
// some (or none) of the knobs.
var DefaultSoakSpec = SoakSpec{Seed: 1, Rounds: 6, Writers: 4}

// ParseSoakSpec parses a "seed=7,rounds=12,writers=4" spec string; empty
// or missing keys keep DefaultSoakSpec values. Unknown keys are errors so
// CI typos fail loudly instead of silently running the default soak.
func ParseSoakSpec(s string) (SoakSpec, error) {
	spec := DefaultSoakSpec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("faultinject: malformed spec entry %q", kv)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return spec, fmt.Errorf("faultinject: spec %q: %v", kv, err)
		}
		switch strings.TrimSpace(k) {
		case "seed":
			spec.Seed = n
		case "rounds":
			spec.Rounds = int(n)
		case "writers":
			spec.Writers = int(n)
		default:
			return spec, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
	}
	return spec, nil
}

// SoakSpecFromEnv reads and parses the named environment variable
// (conventionally SPATIAL_CHAOS). Unset or empty yields DefaultSoakSpec.
func SoakSpecFromEnv(key string) (SoakSpec, error) {
	return ParseSoakSpec(os.Getenv(key))
}
