package main

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"repro/internal/metrics"
)

// Observability contract tests: the exposition is structurally valid
// Prometheus text, the core series exist after traffic, /metrics keeps
// answering while admission control sheds everything else, and trace IDs
// are accepted or minted per request.

// scrape fetches /metrics through the full middleware stack.
func scrape(t *testing.T, srv *Server) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("exposition content type %q", ct)
	}
	return rec.Body.Bytes()
}

func TestMetricsExpositionLintsAndHasCoreSeries(t *testing.T) {
	srv := NewServer()
	createJoin(t, srv, "m", 1<<10)
	mustStatus(t, do(t, srv, "GET", "/v1/estimators/m", nil), http.StatusOK)
	mustStatus(t, do(t, srv, "GET", "/v1/estimators/m/estimate?left=0,10&right=0,10", nil), http.StatusOK)
	mustStatus(t, do(t, srv, "GET", "/v1/estimators/nope", nil), http.StatusNotFound)

	body := scrape(t, srv)
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	for _, name := range []string{
		"spatialserve_request_seconds",
		"spatialserve_requests_total",
		"spatialserve_viewcache_hits_total",
		"spatialserve_viewcache_misses_total",
	} {
		if !metrics.HasSeries(body, name) {
			t.Errorf("core series %s missing from exposition", name)
		}
	}
	// Request counters carry the bounded endpoint label and the status.
	if !containsSeriesWithLabels(string(body), "spatialserve_requests_total", `endpoint="estimate"`, `code="200"`) {
		t.Errorf("no estimate/200 sample:\n%s", body)
	}
	if !containsSeriesWithLabels(string(body), "spatialserve_requests_total", `code="404"`) {
		t.Errorf("404 responses not counted:\n%s", body)
	}
}

// TestMetricsAnswersDuring429Storm is the /metrics-exemption acceptance
// test: with the token bucket fully drained and client traffic shedding,
// the exposition endpoint still answers 200 and reports the sheds.
func TestMetricsAnswersDuring429Storm(t *testing.T) {
	srv := NewServer()
	srv.EnableAdmission(AdmitOptions{ShedQPS: 0.001, ShedBurst: 1})
	shed := 0
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/estimators", nil))
		if rec.Code == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("storm produced no 429s; the test premise is broken")
	}
	body := scrape(t, srv) // must not itself be shed
	if err := metrics.Lint(body); err != nil {
		t.Fatalf("exposition during overload fails lint: %v", err)
	}
	if !containsSeriesWithLabels(string(body), "spatialserve_admission_rejected_total", `reason="rate"`) {
		t.Fatalf("sheds not visible in exposition:\n%s", body)
	}
	// 429 responses are themselves counted, and the inflight gauge (only
	// emitted once admission control is on) is present.
	if !containsSeriesWithLabels(string(body), "spatialserve_requests_total", `code="429"`) {
		t.Fatalf("429 responses not counted:\n%s", body)
	}
	if !metrics.HasSeries(body, "spatialserve_inflight_requests") {
		t.Fatalf("inflight gauge missing with admission enabled:\n%s", body)
	}
}

func TestTraceIDAcceptedOrMinted(t *testing.T) {
	srv := NewServer()
	// A well-formed client ID is echoed verbatim.
	req := httptest.NewRequest("GET", "/v1/estimators", nil)
	req.Header.Set(headerRequestID, "req-1234.abc:XYZ")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if got := rec.Header().Get(headerRequestID); got != "req-1234.abc:XYZ" {
		t.Fatalf("valid trace ID rewritten to %q", got)
	}
	// Garbage (here: a header-injection attempt) is replaced by a minted
	// 16-hex ID rather than reflected.
	req = httptest.NewRequest("GET", "/v1/estimators", nil)
	req.Header.Set(headerRequestID, "bad idÿ!")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	minted := rec.Header().Get(headerRequestID)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted trace ID %q is not 16 hex chars", minted)
	}
	// Absent → minted too, and distinct per request.
	rec2 := httptest.NewRecorder()
	srv.ServeHTTP(rec2, httptest.NewRequest("GET", "/v1/estimators", nil))
	if other := rec2.Header().Get(headerRequestID); other == minted || other == "" {
		t.Fatalf("minted IDs not unique per request: %q vs %q", minted, other)
	}
}

// TestMetricsEndpointClassification pins the bounded-cardinality endpoint
// label: arbitrary client paths must not mint new label values.
func TestMetricsEndpointClassification(t *testing.T) {
	srv := NewServer()
	for i := 0; i < 5; i++ {
		do(t, srv, "GET", "/totally/unknown/path/"+string(rune('a'+i)), nil)
	}
	body := string(scrape(t, srv))
	if !containsSeriesWithLabels(body, "spatialserve_requests_total", `endpoint="other"`) {
		t.Fatalf("unknown paths not bucketed as other:\n%s", body)
	}
	if containsSeriesWithLabels(body, "spatialserve_requests_total", "unknown/path") {
		t.Fatalf("raw client path leaked into a label:\n%s", body)
	}
}
