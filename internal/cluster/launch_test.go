package cluster

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestReservePortsDistinctAndBindable(t *testing.T) {
	addrs, err := ReservePorts(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate reserved address %s", a)
		}
		seen[a] = true
		ln, err := net.Listen("tcp", a)
		if err != nil {
			t.Fatalf("reserved address %s not bindable: %v", a, err)
		}
		ln.Close()
	}
}

func TestPeersFlag(t *testing.T) {
	got := PeersFlag([]string{"a", "b"}, []string{"127.0.0.1:1", "127.0.0.1:2"})
	want := "a=http://127.0.0.1:1,b=http://127.0.0.1:2"
	if got != want {
		t.Fatalf("PeersFlag = %q, want %q", got, want)
	}
}

func TestWaitHealthy(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	if err := WaitHealthy(srv.URL, time.Second); err != nil {
		t.Fatalf("healthy server reported unhealthy: %v", err)
	}
	srv.Close()
	if err := WaitHealthy(srv.URL, 200*time.Millisecond); err == nil {
		t.Fatal("closed server reported healthy")
	}
}
