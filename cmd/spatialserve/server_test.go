package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// do runs one request against the handler in-process and returns the
// recorder.
func do(t testing.TB, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	if t != nil {
		t.Helper()
	}
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func mustStatus(t testing.TB, w *httptest.ResponseRecorder, want int) {
	if h, ok := t.(*testing.T); ok {
		h.Helper()
	}
	if w.Code != want {
		t.Fatalf("status %d, want %d: %s", w.Code, want, w.Body.String())
	}
}

// randRect emits a non-degenerate 2-d rectangle inside dom.
func randRect(rng *rand.Rand, dom uint64) [][2]uint64 {
	rect := make([][2]uint64, 2)
	for d := range rect {
		lo := rng.Uint64() % (dom - 2)
		hi := lo + 1 + rng.Uint64()%(dom-lo-1)
		rect[d] = [2]uint64{lo, hi}
	}
	return rect
}

func updateBody(t testing.TB, side string, rects [][][2]uint64) []byte {
	b, err := json.Marshal(updateRequest{Side: side, Rects: rects})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func createJoin(t testing.TB, h http.Handler, name string, dom uint64) {
	body, _ := json.Marshal(createRequest{
		Name: name, Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: dom, Seed: 42, Instances: 64, Groups: 4},
	})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusCreated)
}

func TestServerLifecycle(t *testing.T) {
	checkGoroutineLeaks(t)
	h := NewServer()
	const dom = 1 << 12

	// Create all four kinds.
	for _, c := range []createRequest{
		{Name: "j", Kind: "join", Config: configRequest{Dims: 2, DomainSize: dom, Seed: 1, Instances: 64, Groups: 4}},
		{Name: "r", Kind: "range", Config: configRequest{Dims: 1, DomainSize: dom, Seed: 2, Instances: 64, Groups: 4}},
		{Name: "e", Kind: "epsjoin", Config: configRequest{Dims: 2, DomainSize: dom, Eps: 8, Seed: 3, Instances: 64, Groups: 4}},
		{Name: "c", Kind: "containment", Config: configRequest{Dims: 2, DomainSize: dom, Seed: 4, Instances: 64, Groups: 4}},
	} {
		body, _ := json.Marshal(c)
		mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusCreated)
	}
	// Duplicate name conflicts.
	body, _ := json.Marshal(createRequest{Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: dom, Seed: 1}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusConflict)
	// Unknown kind rejected.
	body, _ = json.Marshal(createRequest{Name: "x", Kind: "quantile",
		Config: configRequest{Dims: 1, DomainSize: dom}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusBadRequest)

	// Join traffic: insert both sides, estimate, check selectivity shows up.
	rng := rand.New(rand.NewSource(7))
	var rects [][][2]uint64
	for i := 0; i < 64; i++ {
		rects = append(rects, randRect(rng, dom))
	}
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", updateBody(t, "left", rects)), http.StatusOK)
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", updateBody(t, "right", rects)), http.StatusOK)
	w := do(t, h, "GET", "/v1/estimators/j/estimate", nil)
	mustStatus(t, w, http.StatusOK)
	var est estimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &est); err != nil {
		t.Fatal(err)
	}
	if est.Counts["left"] != 64 || est.Counts["right"] != 64 {
		t.Fatalf("counts after insert: %+v", est.Counts)
	}
	if est.Selectivity == nil {
		t.Fatal("selectivity missing on non-empty inputs")
	}

	// Deletes bring a count back down.
	one := rects[:1]
	b, _ := json.Marshal(updateRequest{Op: "delete", Side: "left", Rects: one})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", b), http.StatusOK)
	w = do(t, h, "GET", "/v1/estimators/j", nil)
	mustStatus(t, w, http.StatusOK)
	var info infoResponse
	json.Unmarshal(w.Body.Bytes(), &info)
	if info.Counts["left"] != 63 {
		t.Fatalf("left count after delete = %d", info.Counts["left"])
	}

	// Range estimate needs a query.
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/update",
		updateBody(t, "", [][][2]uint64{{{5, 100}}, {{50, 400}}})), http.StatusOK)
	mustStatus(t, do(t, h, "GET", "/v1/estimators/r/estimate", nil), http.StatusBadRequest)
	qb, _ := json.Marshal(estimateRequest{Query: [][2]uint64{{0, 300}}})
	w = do(t, h, "POST", "/v1/estimators/r/estimate", qb)
	mustStatus(t, w, http.StatusOK)
	var single estimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}

	// Batched range estimates: one view, results match single queries.
	qb, _ = json.Marshal(estimateRequest{Queries: [][][2]uint64{{{0, 300}}, {{100, 500}}}})
	w = do(t, h, "POST", "/v1/estimators/r/estimate", qb)
	mustStatus(t, w, http.StatusOK)
	var batch batchEstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(batch.Results))
	}
	if batch.Results[0].Value != single.Value || batch.Results[0].Counts["data"] != single.Counts["data"] {
		t.Fatalf("batch result %+v != single result %+v", batch.Results[0], single)
	}
	// Mixing query and queries, and batching a queryless kind, are request
	// errors; a malformed entry INSIDE a batch is a per-result error (the
	// rest of the batch still answers - see TestEstimateBatchPerQueryErrors).
	qb, _ = json.Marshal(estimateRequest{Query: [][2]uint64{{0, 300}}, Queries: [][][2]uint64{{{0, 300}}}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/estimate", qb), http.StatusBadRequest)
	qb, _ = json.Marshal(estimateRequest{Queries: [][][2]uint64{{{0, 300}}}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/estimate", qb), http.StatusBadRequest)
	qb, _ = json.Marshal(estimateRequest{Queries: [][][2]uint64{{}}})
	we := do(t, h, "POST", "/v1/estimators/r/estimate", qb)
	mustStatus(t, we, http.StatusOK)
	var errBatch batchEstimateResponse
	if err := json.Unmarshal(we.Body.Bytes(), &errBatch); err != nil {
		t.Fatal(err)
	}
	if len(errBatch.Results) != 1 || errBatch.Results[0].Error == "" {
		t.Fatalf("empty batch entry did not produce a per-result error: %s", we.Body.String())
	}

	// Snapshot round trip through PUT restore: identical estimates.
	snap := do(t, h, "GET", "/v1/estimators/j/snapshot", nil)
	mustStatus(t, snap, http.StatusOK)
	mustStatus(t, do(t, h, "PUT", "/v1/estimators/j2/snapshot", snap.Body.Bytes()), http.StatusOK)
	w1 := do(t, h, "GET", "/v1/estimators/j/estimate", nil)
	w2 := do(t, h, "GET", "/v1/estimators/j2/estimate", nil)
	var e1, e2 estimateResponse
	json.Unmarshal(w1.Body.Bytes(), &e1)
	json.Unmarshal(w2.Body.Bytes(), &e2)
	if e1.Value != e2.Value || e1.Mean != e2.Mean {
		t.Fatalf("restored estimator estimate (%g, %g) != source (%g, %g)", e2.Value, e2.Mean, e1.Value, e1.Mean)
	}

	// Merging j2 into j doubles the counts; merging into a mismatched
	// estimator is a conflict caught at decode time.
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/merge", snap.Body.Bytes()), http.StatusOK)
	w = do(t, h, "GET", "/v1/estimators/j", nil)
	json.Unmarshal(w.Body.Bytes(), &info)
	if info.Counts["left"] != 126 {
		t.Fatalf("left count after merge = %d", info.Counts["left"])
	}
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/merge", snap.Body.Bytes()), http.StatusConflict)

	// Garbage snapshots are rejected.
	mustStatus(t, do(t, h, "PUT", "/v1/estimators/bad/snapshot", []byte("not a snapshot")), http.StatusBadRequest)

	// Delete.
	mustStatus(t, do(t, h, "DELETE", "/v1/estimators/j2", nil), http.StatusOK)
	mustStatus(t, do(t, h, "DELETE", "/v1/estimators/j2", nil), http.StatusNotFound)
}

// TestServeConcurrentMixed hammers one estimator with mixed reader/writer
// traffic from many goroutines - the acceptance gate for the concurrency
// layer, meaningful under -race.
func TestServeConcurrentMixed(t *testing.T) {
	checkGoroutineLeaks(t)
	h := NewServer()
	const dom = 1 << 12
	createJoin(t, h, "mix", dom)

	const workers = 8
	iters := 60
	if testing.Short() {
		iters = 25
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				var w *httptest.ResponseRecorder
				switch i % 6 {
				case 0, 1, 2: // writer: batch insert on one side
					side := "left"
					if g%2 == 1 {
						side = "right"
					}
					w = do(nil, h, "POST", "/v1/estimators/mix/update",
						updateBody(t, side, [][][2]uint64{randRect(rng, dom), randRect(rng, dom)}))
				case 3: // reader: estimate
					w = do(nil, h, "GET", "/v1/estimators/mix/estimate", nil)
				case 4: // reader: snapshot
					w = do(nil, h, "GET", "/v1/estimators/mix/snapshot", nil)
				case 5: // reader+writer: snapshot then merge it back in
					snap := do(nil, h, "GET", "/v1/estimators/mix/snapshot", nil)
					if snap.Code != http.StatusOK {
						errs <- fmt.Sprintf("snapshot: %d %s", snap.Code, snap.Body.String())
						continue
					}
					w = do(nil, h, "POST", "/v1/estimators/mix/merge", snap.Body.Bytes())
				}
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("op %d: %d %s", i%6, w.Code, w.Body.String())
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// The registry itself must also survive concurrent create/delete/list.
	wg = sync.WaitGroup{}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("tmp-%d", g)
			for i := 0; i < 10; i++ {
				createJoin(t, h, name, dom)
				do(nil, h, "GET", "/v1/estimators", nil)
				do(nil, h, "DELETE", "/v1/estimators/"+name, nil)
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkServeMixed measures mixed reader/writer serving throughput on
// one shared join estimator: ~75% single-object inserts, ~20% estimates,
// ~5% snapshots, issued from parallel clients through the full HTTP
// handler stack. BenchmarkServeMixedWAL (persist_test.go) runs the same
// workload with durability enabled.
func BenchmarkServeMixed(b *testing.B) {
	srv := NewServer()
	// Admission control stays ON with generous gates: the benchmark
	// gates the cost of the admission checks themselves (token bucket +
	// class gates on every request), not shedding.
	srv.EnableAdmission(AdmitOptions{MaxInflightReads: 1 << 20, MaxInflightWrites: 1 << 20, ShedQPS: 1e9})
	benchServeMixed(b, srv)
}

// BenchmarkServeMixedNoObservability runs the same workload straight off
// the route mux, skipping the tracing + metrics + admission middleware.
// CI gates BenchmarkServeMixed within 10% of this baseline: the
// observability layer must stay in the noise.
func BenchmarkServeMixedNoObservability(b *testing.B) {
	srv := NewServer()
	benchServeMixed(b, srv.mux)
}

// TestSnapshotGzipAndETag covers the snapshot transfer satellites:
// gzip-encoded GET (with Vary), strong ETag + If-None-Match 304, and
// gzip-encoded PUT bodies.
func TestSnapshotGzipAndETag(t *testing.T) {
	h := NewServer()
	const dom = 1 << 10
	createJoin(t, h, "j", dom)
	rng := rand.New(rand.NewSource(31))
	var rects [][][2]uint64
	for i := 0; i < 20; i++ {
		rects = append(rects, randRect(rng, dom))
	}
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update", updateBody(t, "left", rects)), http.StatusOK)

	plain := do(t, h, "GET", "/v1/estimators/j/snapshot", nil)
	mustStatus(t, plain, http.StatusOK)
	etag := plain.Header().Get("ETag")
	if etag == "" {
		t.Fatal("snapshot GET carries no ETag")
	}

	// gzip negotiation.
	req := httptest.NewRequest("GET", "/v1/estimators/j/snapshot", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	mustStatus(t, w, http.StatusOK)
	if w.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("gzip accepted but not applied")
	}
	// Strong ETags are representation-specific: the gzip variant must
	// carry its own tag, derived from the same content hash.
	wantGz := strings.TrimSuffix(etag, `"`) + `-gzip"`
	if got := w.Header().Get("ETag"); got != wantGz {
		t.Fatalf("gzip ETag %q, want %q", got, wantGz)
	}
	// Conditional GET with the gzip validator also revalidates.
	reqGz := httptest.NewRequest("GET", "/v1/estimators/j/snapshot", nil)
	reqGz.Header.Set("Accept-Encoding", "gzip")
	reqGz.Header.Set("If-None-Match", wantGz)
	wGz := httptest.NewRecorder()
	h.ServeHTTP(wGz, reqGz)
	mustStatus(t, wGz, http.StatusNotModified)
	gz, err := gzip.NewReader(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plain.Body.Bytes()) {
		t.Fatal("gzip body does not decompress to the plain snapshot")
	}
	if len(w.Body.Bytes()) >= len(unzipped) {
		t.Errorf("gzip did not shrink the snapshot (%d >= %d)", len(w.Body.Bytes()), len(unzipped))
	}

	// Conditional GET.
	req = httptest.NewRequest("GET", "/v1/estimators/j/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	mustStatus(t, w, http.StatusNotModified)
	if w.Body.Len() != 0 {
		t.Fatal("304 carried a body")
	}

	// A mutation changes the tag, so the conditional GET misses again.
	mustStatus(t, do(t, h, "POST", "/v1/estimators/j/update",
		updateBody(t, "left", [][][2]uint64{randRect(rng, dom)})), http.StatusOK)
	req = httptest.NewRequest("GET", "/v1/estimators/j/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	mustStatus(t, w, http.StatusOK)

	// gzip-encoded PUT round-trips to the same registry state.
	snap := w.Body.Bytes()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(snap)
	zw.Close()
	req = httptest.NewRequest("PUT", "/v1/estimators/j2/snapshot", bytes.NewReader(buf.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, req)
	mustStatus(t, w2, http.StatusOK)
	got := do(t, h, "GET", "/v1/estimators/j2/snapshot", nil)
	mustStatus(t, got, http.StatusOK)
	if !bytes.Equal(got.Body.Bytes(), snap) {
		t.Fatal("gzip PUT did not restore the snapshot bit-identically")
	}
	// A garbage gzip body is a client error, not a server crash.
	req = httptest.NewRequest("PUT", "/v1/estimators/j3/snapshot", bytes.NewReader([]byte("not gzip")))
	req.Header.Set("Content-Encoding", "gzip")
	w3 := httptest.NewRecorder()
	h.ServeHTTP(w3, req)
	mustStatus(t, w3, http.StatusBadRequest)
}

// TestEstimateBatchPerQueryErrors: one malformed query inside a batch
// yields a per-result error while every valid query is still answered
// (fan-out aggregation depends on it).
func TestEstimateBatchPerQueryErrors(t *testing.T) {
	h := NewServer()
	const dom = 1 << 10
	body, _ := json.Marshal(createRequest{Name: "r", Kind: "range",
		Config: configRequest{Dims: 1, DomainSize: dom, Seed: 7, Instances: 64, Groups: 4}})
	mustStatus(t, do(t, h, "POST", "/v1/estimators", body), http.StatusCreated)
	rng := rand.New(rand.NewSource(13))
	var rects [][][2]uint64
	for i := 0; i < 30; i++ {
		lo := rng.Uint64() % (dom - 2)
		rects = append(rects, [][2]uint64{{lo, lo + 1 + rng.Uint64()%(dom-lo-1)}})
	}
	mustStatus(t, do(t, h, "POST", "/v1/estimators/r/update", updateBody(t, "", rects)), http.StatusOK)

	batch, _ := json.Marshal(estimateRequest{Queries: [][][2]uint64{
		{{10, 200}},          // valid
		{},                   // empty
		{{10, 20}, {30, 40}}, // wrong dimensionality
		{{50, dom + 5}},      // outside the domain
		{{30, 20}},           // inverted interval
		{{100, 900}},         // valid
	}})
	w := do(t, h, "POST", "/v1/estimators/r/estimate", batch)
	mustStatus(t, w, http.StatusOK)
	var resp batchEstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(resp.Results))
	}
	for _, i := range []int{1, 2, 3, 4} {
		if resp.Results[i] == nil || resp.Results[i].Error == "" {
			t.Errorf("malformed query %d carries no error: %+v", i, resp.Results[i])
		}
	}
	for _, i := range []int{0, 5} {
		if resp.Results[i] == nil || resp.Results[i].Error != "" {
			t.Fatalf("valid query %d was not answered: %+v", i, resp.Results[i])
		}
	}
	// The per-query answers match individually issued queries.
	for qi, q := range [][][2]uint64{{{10, 200}}, {{100, 900}}} {
		single, _ := json.Marshal(estimateRequest{Query: q})
		sw := do(t, h, "POST", "/v1/estimators/r/estimate", single)
		mustStatus(t, sw, http.StatusOK)
		var sr estimateResponse
		if err := json.Unmarshal(sw.Body.Bytes(), &sr); err != nil {
			t.Fatal(err)
		}
		batchIdx := []int{0, 5}[qi]
		if sr.Value != resp.Results[batchIdx].Value {
			t.Errorf("batch result %d (%v) differs from the single query (%v)", batchIdx, resp.Results[batchIdx].Value, sr.Value)
		}
	}
}
