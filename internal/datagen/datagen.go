// Package datagen generates the workloads of the paper's evaluation
// (Section 7): uniform and Zipf-skewed rectangle sets ("intervals along
// each dimension generated independently according to a Zipfian
// distribution", Section 7.1), point sets for epsilon-joins, and synthetic
// analogs of the three Wyoming land-use datasets of Section 7.3 (LANDO,
// LANDC, SOIL), which are not redistributable; see DESIGN.md Section 3.5
// for the substitution rationale.
//
// All generators are deterministic in their seed (PCG-based), so every
// experiment and test is reproducible bit-for-bit.
package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/geo"
)

// Spec describes a synthetic rectangle workload.
type Spec struct {
	N       int       // number of hyper-rectangles
	Dims    int       // dimensionality
	Domain  uint64    // per-dimension domain size (coordinates in [0, Domain))
	Zipf    float64   // skew of lower-endpoint placement per dim; 0 = uniform
	MeanLen []float64 // mean side length per dim; nil = sqrt(Domain) (the paper's default)
	Seed    uint64    // RNG seed
}

func (s Spec) validate() error {
	if s.N < 0 {
		return fmt.Errorf("datagen: negative N %d", s.N)
	}
	if s.Dims < 1 {
		return fmt.Errorf("datagen: dims must be >= 1, got %d", s.Dims)
	}
	if s.Domain < 4 {
		return fmt.Errorf("datagen: domain must be >= 4, got %d", s.Domain)
	}
	if s.Zipf < 0 {
		return fmt.Errorf("datagen: negative zipf parameter %g", s.Zipf)
	}
	if s.MeanLen != nil && len(s.MeanLen) != s.Dims {
		return fmt.Errorf("datagen: got %d mean lengths for %d dims", len(s.MeanLen), s.Dims)
	}
	return nil
}

// Rects generates N hyper-rectangles per the spec. Side lengths are
// exponentially distributed around the per-dimension mean (minimum 2, so
// objects are never degenerate, as the joins of Section 4 require), capped
// at a quarter of the domain; lower endpoints are placed by a Zipf(z)
// position distribution over the feasible range.
func Rects(spec Spec) ([]geo.HyperRect, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x5851f42d4c957f2d))
	mean := spec.MeanLen
	if mean == nil {
		mean = make([]float64, spec.Dims)
		for i := range mean {
			mean[i] = math.Sqrt(float64(spec.Domain))
		}
	}
	zipf := newZipfSampler(spec.Domain, spec.Zipf)
	out := make([]geo.HyperRect, spec.N)
	for k := range out {
		h := make(geo.HyperRect, spec.Dims)
		for i := 0; i < spec.Dims; i++ {
			h[i] = randInterval(rng, zipf, spec.Domain, mean[i])
		}
		out[k] = h
	}
	return out, nil
}

// MustRects is Rects, panicking on invalid specs. For tests and examples.
func MustRects(spec Spec) []geo.HyperRect {
	r, err := Rects(spec)
	if err != nil {
		panic(err)
	}
	return r
}

func randInterval(rng *rand.Rand, zipf *zipfSampler, domain uint64, meanLen float64) geo.Interval {
	length := uint64(rng.ExpFloat64() * meanLen)
	if length < 2 {
		length = 2
	}
	if maxLen := domain / 4; length > maxLen && maxLen >= 2 {
		length = maxLen
	}
	span := domain - length // lower endpoint in [0, span]
	lo := zipf.sample(rng, span+1)
	return geo.Interval{Lo: lo, Hi: lo + length - 1}
}

// Points generates N points with Zipf-skewed per-dimension coordinates.
func Points(spec Spec) ([]geo.Point, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x9e3779b97f4a7c15))
	zipf := newZipfSampler(spec.Domain, spec.Zipf)
	out := make([]geo.Point, spec.N)
	for k := range out {
		p := make(geo.Point, spec.Dims)
		for i := range p {
			p[i] = zipf.sample(rng, spec.Domain)
		}
		out[k] = p
	}
	return out, nil
}

// MustPoints is Points, panicking on invalid specs.
func MustPoints(spec Spec) []geo.Point {
	p, err := Points(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// zipfSampler draws positions in [0, m) with P(k) proportional to
// 1/(k+1)^z via inverse-CDF sampling over a precomputed cumulative table.
// z = 0 degenerates to the uniform distribution (no table).
type zipfSampler struct {
	z   float64
	cum []float64 // cumulative weights over the full configured range
}

func newZipfSampler(rangeMax uint64, z float64) *zipfSampler {
	s := &zipfSampler{z: z}
	if z == 0 {
		return s
	}
	cum := make([]float64, rangeMax)
	var total float64
	for k := range cum {
		total += math.Pow(float64(k+1), -z)
		cum[k] = total
	}
	s.cum = cum
	return s
}

// sample draws a position in [0, limit), limit <= configured range.
func (s *zipfSampler) sample(rng *rand.Rand, limit uint64) uint64 {
	if limit == 0 {
		return 0
	}
	if s.z == 0 {
		return rng.Uint64N(limit)
	}
	n := int(limit)
	if n > len(s.cum) {
		n = len(s.cum)
	}
	u := rng.Float64() * s.cum[n-1]
	// Binary search the cumulative table.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}
