package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientDoBuffersResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-Test"); got != "yes" {
			t.Errorf("extra header not forwarded, got %q", got)
		}
		w.Header().Set("X-Reply", "pong")
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "body")
	}))
	defer srv.Close()
	c := NewClient(2*time.Second, 0)
	resp, err := c.Do(context.Background(), http.MethodGet, srv.URL, nil,
		http.Header{"X-Test": []string{"yes"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusTeapot || string(resp.Body) != "body" || resp.Header.Get("X-Reply") != "pong" {
		t.Fatalf("unexpected response: %+v", resp)
	}
}

func TestClientTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	// LIFO: unblock the handler BEFORE srv.Close waits for it.
	defer srv.Close()
	defer close(block)
	c := NewClient(50*time.Millisecond, 0)
	if _, err := c.Do(context.Background(), http.MethodGet, srv.URL, nil, nil); err == nil {
		t.Fatal("expected a timeout error")
	}
}

func TestClientHedgedGet(t *testing.T) {
	// First attempt stalls; the hedge fires and answers.
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, "hedged")
	}))
	defer srv.Close()
	c := NewClient(5*time.Second, 20*time.Millisecond)
	start := time.Now()
	resp, err := c.Get(context.Background(), srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hedged" {
		t.Fatalf("got %q from the wrong attempt", resp.Body)
	}
	if calls.Load() < 2 {
		t.Fatal("hedge attempt never launched")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hedged get took as long as the stalled attempt")
	}
}

func TestClientHedgedGetAllFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // refuse every connection
	c := NewClient(time.Second, 5*time.Millisecond)
	if _, err := c.Get(context.Background(), srv.URL, nil); err == nil {
		t.Fatal("expected an error when every attempt fails")
	}
}

func TestScatterAndFirstError(t *testing.T) {
	boom := errors.New("boom")
	vals, errs := Scatter(5, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i * i, nil
	})
	for i, v := range vals {
		if i != 3 && v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	if !errors.Is(FirstError(errs), boom) {
		t.Fatalf("FirstError = %v", FirstError(errs))
	}
	if FirstError(make([]error, 4)) != nil {
		t.Fatal("FirstError of all-nil should be nil")
	}
}
