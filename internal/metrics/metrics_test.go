package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("http_requests_total", "Total requests.", "endpoint", "code")
	reqs.With("estimate", "200").Add(3)
	reqs.With("estimate", "429").Inc()
	g := r.Gauge("inflight", "In-flight requests.")
	g.With().Set(2.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP http_requests_total Total requests.",
		"# TYPE http_requests_total counter",
		`http_requests_total{endpoint="estimate",code="200"} 3`,
		`http_requests_total{endpoint="estimate",code="429"} 1`,
		"# TYPE inflight gauge",
		"inflight 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Errorf("Lint rejected own exposition: %v", err)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "tenant")
	obs := h.With("a")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		obs.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{tenant="a",le="0.01"} 1`,
		`latency_seconds_bucket{tenant="a",le="0.1"} 3`,
		`latency_seconds_bucket{tenant="a",le="1"} 4`,
		`latency_seconds_bucket{tenant="a",le="+Inf"} 5`,
		`latency_seconds_count{tenant="a"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `latency_seconds_sum{tenant="a"} 5.605`) {
		t.Errorf("unexpected sum:\n%s", out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Errorf("Lint rejected own exposition: %v", err)
	}
	if got := obs.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
}

func TestCallbackFamilies(t *testing.T) {
	r := NewRegistry()
	hits := uint64(7)
	r.CounterFunc("cache_hits_total", "Hits.", nil, func(emit func([]string, float64)) {
		emit(nil, float64(hits))
	})
	r.GaugeFunc("peer_state", "Breaker state.", []string{"peer"}, func(emit func([]string, float64)) {
		emit([]string{"n1"}, 0)
		emit([]string{"n2"}, 2)
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cache_hits_total 7", `peer_state{peer="n1"} 0`, `peer_state{peer="n2"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Errorf("Lint rejected own exposition: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("odd_total", "Odd values.", "v")
	c.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `odd_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
	if err := Lint([]byte(b.String())); err != nil {
		t.Errorf("Lint rejected escaped label: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "X again.")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad-name", "Dashes are illegal.")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.", "who")
	h := r.Histogram("d_seconds", "D.", nil, "who")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			who := string(rune('a' + i%2))
			for j := 0; j < 1000; j++ {
				c.With(who).Inc()
				h.With(who).Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	if got := c.With("a").Value() + c.With("b").Value(); got != 8000 {
		t.Fatalf("counter total = %d, want 8000", got)
	}
	if got := h.With("a").Count() + h.With("b").Count(); got != 8000 {
		t.Fatalf("histogram total = %d, want 8000", got)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []string{
		"no_type_header 1\n",
		"# TYPE x counter\nx{unclosed=\"v 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x bogus\n",
		"# TYPE 0bad counter\n0bad 1\n",
	}
	for _, c := range cases {
		if err := Lint([]byte(c)); err == nil {
			t.Errorf("Lint accepted malformed exposition %q", c)
		}
	}
}

func TestHasSeries(t *testing.T) {
	page := []byte("# TYPE a counter\na{x=\"1\"} 2\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.1\nh_count 1\n")
	if !HasSeries(page, "a") || !HasSeries(page, "h") {
		t.Error("HasSeries missed present series")
	}
	if HasSeries(page, "b") || HasSeries(page, "h_b") {
		t.Error("HasSeries matched absent series")
	}
}

// TestHistogramExemplars checks ObserveExemplar pins the trace to the
// right bucket, the companion _exemplar gauge family renders with its
// own HELP/TYPE, and the whole exposition stays Lint-clean.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	hv := r.Histogram("req_seconds", "Request latency.", []float64{0.01, 0.1, 1}, "endpoint")
	h := hv.With("update")
	h.Observe(0.005) // no exemplar
	h.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(5, "deadbeefdeadbeefdeadbeefdeadbeef") // +Inf bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("exposition with exemplars fails lint: %v\n%s", err, out)
	}
	if !HasSeries([]byte(out), "req_seconds_exemplar") {
		t.Fatalf("no req_seconds_exemplar series in:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE req_seconds_exemplar gauge",
		`req_seconds_exemplar{endpoint="update",le="0.1",trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05`,
		`req_seconds_exemplar{endpoint="update",le="+Inf",trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="0.01",trace_id`) {
		t.Error("bucket without exemplar observations grew an exemplar series")
	}
	// Exemplar counts fold into the ordinary histogram samples.
	if !strings.Contains(out, `req_seconds_count{endpoint="update"} 3`) {
		t.Errorf("ObserveExemplar did not count as an observation:\n%s", out)
	}
	// Histograms with no exemplars emit no companion block.
	r2 := NewRegistry()
	r2.Histogram("quiet_seconds", "No exemplars.", nil).With().Observe(0.5)
	buf.Reset()
	if err := r2.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "_exemplar") {
		t.Errorf("exemplar block rendered without exemplars:\n%s", buf.String())
	}
}
