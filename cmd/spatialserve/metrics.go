package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	spatial "repro"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Observability layer: every server carries a metrics registry
// (internal/metrics, Prometheus text exposition, no dependencies) wired
// into GET /metrics, and every request carries a trace ID (X-Request-Id,
// accepted or generated) that flows into structured logs and cluster
// fan-out sub-requests so a scatter-gather can be reconstructed across
// nodes. /metrics bypasses admission control for the same reason
// /healthz does: observing an overloaded server is the point.

// headerRequestID is the trace-ID header, accepted from clients and
// propagated to fan-out sub-requests.
const headerRequestID = "X-Request-Id"

// serverMetrics bundles the server's instruments. It is always on - the
// hot-path cost is two clock reads, a histogram observe and a counter
// increment per request.
type serverMetrics struct {
	reg *metrics.Registry

	reqSeconds  *metrics.HistogramVec // endpoint, tenant
	reqTotal    *metrics.CounterVec   // endpoint, tenant, code
	admRejected *metrics.CounterVec   // reason, tenant

	walAppendSeconds *metrics.HistogramVec
	walFsyncSeconds  *metrics.HistogramVec
	walCommitRecords *metrics.CounterVec
	walCommitBytes   *metrics.CounterVec

	checkpointSeconds *metrics.HistogramVec
	checkpointTotal   *metrics.CounterVec // result

	breakerTransitions *metrics.CounterVec // peer, to
	readCacheHits      *metrics.Counter
	readCacheMisses    *metrics.Counter

	ingestBatches    *metrics.CounterVec   // tenant, result (acked | deduped)
	ingestRecords    *metrics.CounterVec   // tenant
	ingestStalls     *metrics.CounterVec   // tenant
	ingestAckSeconds *metrics.HistogramVec // tenant

	// streamMu guards streams, the per-tenant count of live ingest
	// connections behind the spatialserve_ingest_streams gauge.
	streamMu sync.Mutex
	streams  map[string]int
}

// newServerMetrics builds the registry and registers every family,
// including the scrape-time collectors that read library state (view
// cache) and cluster state (breaker gauges, admission inflight).
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		reqSeconds: reg.Histogram("spatialserve_request_seconds",
			"Request latency by endpoint and tenant.", nil, "endpoint", "tenant"),
		reqTotal: reg.Counter("spatialserve_requests_total",
			"Requests served, by endpoint, tenant and status code.", "endpoint", "tenant", "code"),
		admRejected: reg.Counter("spatialserve_admission_rejected_total",
			"Requests shed by admission control, by reason (rate, inflight, tenant_rate, tenant_inflight) and tenant.", "reason", "tenant"),
		walAppendSeconds: reg.Histogram("spatialserve_wal_append_seconds",
			"WAL append lag: enqueue to group-commit acknowledgement (includes the fsync when enabled).", nil),
		walFsyncSeconds: reg.Histogram("spatialserve_wal_fsync_seconds",
			"WAL fsync duration per group commit (fsync mode only).", nil),
		walCommitRecords: reg.Counter("spatialserve_wal_commit_records_total",
			"Records acknowledged by WAL group commits."),
		walCommitBytes: reg.Counter("spatialserve_wal_commit_bytes_total",
			"Framed bytes written by WAL group commits."),
		checkpointSeconds: reg.Histogram("spatialserve_checkpoint_seconds",
			"Checkpoint duration, cut to durable manifest.", nil),
		checkpointTotal: reg.Counter("spatialserve_checkpoint_total",
			"Checkpoints by result.", "result"),
		breakerTransitions: reg.Counter("spatialserve_breaker_transitions_total",
			"Circuit-breaker state changes by peer and new state.", "peer", "to"),
		ingestBatches: reg.Counter("spatialserve_ingest_batches_total",
			"Streaming ingest batches by tenant and result: acked (applied and durable) or deduped (at-or-below the session watermark, dropped and re-acked).", "tenant", "result"),
		ingestRecords: reg.Counter("spatialserve_ingest_records_total",
			"Records applied through streaming ingest, by tenant.", "tenant"),
		ingestStalls: reg.Counter("spatialserve_ingest_stalls_total",
			"Stream batches that waited on admission control (backpressure), by tenant.", "tenant"),
		ingestAckSeconds: reg.Histogram("spatialserve_ingest_ack_seconds",
			"Streaming ingest ack latency: batch frame read to ack written (includes WAL commit).", nil, "tenant"),
		streams: make(map[string]int),
	}
	rc := reg.Counter("spatialserve_cluster_readcache_events_total",
		"Cluster read-cache outcomes: hit means every partition revalidated 304 and the cached merge was reused.", "outcome")
	m.readCacheHits = rc.With("hit")
	m.readCacheMisses = rc.With("miss")

	// Pre-touch the label-less WAL instruments so the series exist at
	// zero from the first scrape - dashboards and the CI smoke can rely
	// on their presence instead of inferring "no data yet" from absence.
	m.walAppendSeconds.With()
	m.walFsyncSeconds.With()
	m.walCommitRecords.With()
	m.walCommitBytes.With()
	m.checkpointSeconds.With()

	reg.CounterFunc("spatialserve_viewcache_hits_total",
		"Library epoch view-cache hits (reads served from an adopted cached view).", nil,
		func(emit func([]string, float64)) {
			h, _ := spatial.ViewCacheStats()
			emit(nil, float64(h))
		})
	reg.CounterFunc("spatialserve_viewcache_misses_total",
		"Library epoch view-cache misses (reads that rebuilt the merged view).", nil,
		func(emit func([]string, float64)) {
			_, mi := spatial.ViewCacheStats()
			emit(nil, float64(mi))
		})
	reg.GaugeFunc("spatialserve_breaker_state",
		"Per-peer circuit-breaker state: 0 closed, 1 half-open, 2 open.", []string{"peer"},
		func(emit func([]string, float64)) {
			c := s.cluster
			if c == nil || c.health == nil {
				return
			}
			for _, nh := range c.health.Snapshot() {
				emit([]string{nh.Node}, breakerStateValue(nh.State))
			}
		})
	reg.GaugeFunc("spatialserve_peer_latency_ewma_ms",
		"Per-peer EWMA request latency in milliseconds.", []string{"peer"},
		func(emit func([]string, float64)) {
			c := s.cluster
			if c == nil || c.health == nil {
				return
			}
			for _, nh := range c.health.Snapshot() {
				emit([]string{nh.Node}, nh.EWMALatencyMs)
			}
		})
	reg.GaugeFunc("spatialserve_ingest_streams",
		"Live streaming ingest connections by tenant.", []string{"tenant"},
		func(emit func([]string, float64)) {
			m.streamMu.Lock()
			defer m.streamMu.Unlock()
			for tenant, n := range m.streams {
				emit([]string{tenant}, float64(n))
			}
		})
	reg.GaugeFunc("spatialserve_ingest_sessions",
		"Ingest sessions with a tracked high-water mark (bounded table).", nil,
		func(emit func([]string, float64)) {
			s.sessions.mu.Lock()
			n := len(s.sessions.entries)
			s.sessions.mu.Unlock()
			emit(nil, float64(n))
		})
	reg.GaugeFunc("spatialserve_inflight_requests",
		"Currently admitted requests by class (admission control only).", []string{"class"},
		func(emit func([]string, float64)) {
			a := s.admit
			if a == nil {
				return
			}
			emit([]string{"read"}, float64(a.reads.Load()))
			emit([]string{"write"}, float64(a.writes.Load()))
		})
	return m
}

// breakerStateValue maps a breaker state name to its gauge value.
func breakerStateValue(state string) float64 {
	switch state {
	case cluster.BreakerHalfOpen.String():
		return 1
	case cluster.BreakerOpen.String():
		return 2
	}
	return 0
}

// admissionRejected counts one shed request.
func (m *serverMetrics) admissionRejected(reason, tenant string) {
	if tenant == "" {
		tenant = "none"
	}
	m.admRejected.With(reason, tenant).Inc()
}

// observeWALCommit is the wal.Options.OnCommit observer: fsync lag and
// batch volume per group commit.
func (m *serverMetrics) observeWALCommit(st wal.CommitStats) {
	if st.SyncDuration > 0 {
		m.walFsyncSeconds.With().Observe(st.SyncDuration.Seconds())
	}
	m.walCommitRecords.With().Add(uint64(st.Records))
	m.walCommitBytes.With().Add(uint64(st.Bytes))
}

// streamStarted registers one live ingest connection under its tenant.
func (m *serverMetrics) streamStarted(tenant string) {
	m.streamMu.Lock()
	m.streams[tenant]++
	m.streamMu.Unlock()
}

// streamEnded drops a live ingest connection, removing exhausted tenant
// entries so the gauge reports zero by absence, not forever-zero rows.
func (m *serverMetrics) streamEnded(tenant string) {
	m.streamMu.Lock()
	if m.streams[tenant]--; m.streams[tenant] <= 0 {
		delete(m.streams, tenant)
	}
	m.streamMu.Unlock()
}

// observeIngestBatch counts one stream batch outcome.
func (m *serverMetrics) observeIngestBatch(tenant string, deduped bool, records int) {
	result := "acked"
	if deduped {
		result = "deduped"
	}
	m.ingestBatches.With(tenant, result).Inc()
	if records > 0 {
		m.ingestRecords.With(tenant).Add(uint64(records))
	}
}

// ingestStalled counts one batch that waited on admission.
func (m *serverMetrics) ingestStalled(tenant string) {
	m.ingestStalls.With(tenant).Inc()
}

// observeIngestAck records one batch's read-to-ack latency.
func (m *serverMetrics) observeIngestAck(tenant string, d time.Duration) {
	m.ingestAckSeconds.With(tenant).Observe(d.Seconds())
}

// observeBreaker is the cluster.HealthOptions.OnTransition observer.
func (m *serverMetrics) observeBreaker(node string, _, to cluster.BreakerState) {
	m.breakerTransitions.With(node, to.String()).Inc()
}

// handleMetrics serves the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// statusRecorder captures the response status for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// classifyEndpoint maps a request to a bounded endpoint label - the
// route shape, never raw client paths, so label cardinality stays fixed.
func classifyEndpoint(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/healthz":
		return "healthz"
	case p == "/readyz":
		return "readyz"
	case p == "/metrics":
		return "metrics"
	case strings.HasPrefix(p, "/admin/"):
		return "admin"
	case p == "/v1/ingest":
		return "ingest"
	}
	// Tenant-scoped estimator routes re-dispatch through the flat routes;
	// classify both by their operation suffix.
	isTenants := strings.HasPrefix(r.URL.EscapedPath(), "/v1/tenants/")
	isEsts := strings.HasPrefix(r.URL.EscapedPath(), "/v1/estimators")
	if !isTenants && !isEsts {
		return "other"
	}
	if isTenants && !strings.Contains(strings.TrimPrefix(r.URL.EscapedPath(), "/v1/tenants/"), "/") {
		return "tenant_config"
	}
	if isTenants && strings.HasSuffix(p, "/estimators") {
		if r.Method == http.MethodPost {
			return "create"
		}
		return "list"
	}
	switch {
	case strings.HasSuffix(p, "/update"):
		return "update"
	case strings.HasSuffix(p, "/estimate"):
		return "estimate"
	case strings.HasSuffix(p, "/snapshot"):
		if r.Method == http.MethodPut {
			return "snapshot_put"
		}
		return "snapshot_get"
	case strings.HasSuffix(p, "/merge"):
		return "merge"
	case strings.HasSuffix(p, "/apply"):
		return "apply"
	case strings.HasSuffix(p, "/ingest"), strings.HasSuffix(p, "/ingest-marks"):
		return "ingest"
	case p == "/v1/estimators" || p == "/v1/tenants":
		if r.Method == http.MethodPost {
			return "create"
		}
		return "list"
	case r.Method == http.MethodDelete:
		return "delete"
	default:
		return "info"
	}
}

// metricsTenant returns the bounded tenant label for a request: the
// default tenant, a registered tenant's name, or "other" for anything
// unregistered (so hostile paths cannot mint unbounded label values).
func (s *Server) metricsTenant(r *http.Request) string {
	t := requestTenant(r)
	if t == "" || t == DefaultTenant {
		return DefaultTenant
	}
	if s.tenants.get(t) != nil {
		return t
	}
	return "other"
}

// ---- trace IDs ----

// ridKey is the context key carrying the request's trace ID.
type ridKey struct{}

// requestIDFrom returns the trace ID stored in ctx, empty when absent.
func requestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// newRequestID mints a 16-hex-digit random trace ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}

// validRequestID bounds accepted client trace IDs: 1-64 characters from
// a log-safe alphabet, so hostile values cannot corrupt log lines.
func validRequestID(rid string) bool {
	if rid == "" || len(rid) > 64 {
		return false
	}
	for _, c := range rid {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// traceRequest accepts or mints the request's trace ID, reflects it on
// the response and stores it in the request context for fan-out
// propagation and logging. An incoming W3C traceparent header is parsed
// into the context as the remote parent, so the root span opened by
// ServeHTTP joins the caller's trace instead of starting a new one.
func traceRequest(w http.ResponseWriter, r *http.Request) *http.Request {
	rid := r.Header.Get(headerRequestID)
	if !validRequestID(rid) {
		rid = newRequestID()
	}
	w.Header().Set(headerRequestID, rid)
	ctx := context.WithValue(r.Context(), ridKey{}, rid)
	if id, parent, ok := trace.ParseTraceparent(r.Header.Get(headerTraceparent)); ok {
		ctx = trace.ContextWithRemote(ctx, id, parent)
	}
	return r.WithContext(ctx)
}
