package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Client is the fan-out HTTP client of the cluster layer. Every attempt
// carries a per-node timeout; idempotent reads can additionally be hedged:
// if the first attempt has not answered within HedgeDelay, a second
// attempt is launched against the same URL and the first response wins.
// Mutations are never hedged - a duplicated update would be applied twice,
// and sketch counters, unlike idempotent KV puts, would keep both.
type Client struct {
	// HTTP is the underlying client. Its transport's automatic gzip
	// handling is relied on for snapshot transfer compression.
	HTTP *http.Client
	// Timeout bounds one attempt against one node.
	Timeout time.Duration
	// HedgeDelay is how long Get waits before launching a hedged second
	// attempt. Zero disables hedging.
	HedgeDelay time.Duration
}

// DefaultTimeout is the per-attempt timeout used when a Client does not
// set one.
const DefaultTimeout = 10 * time.Second

// NewClient returns a Client with the given per-attempt timeout (0 means
// DefaultTimeout) and hedge delay (0 disables hedging).
func NewClient(timeout, hedgeDelay time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{HTTP: &http.Client{}, Timeout: timeout, HedgeDelay: hedgeDelay}
}

// Response is the buffered result of one cluster request.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Header holds the response headers.
	Header http.Header
	// Body is the fully read response body.
	Body []byte
}

// Do runs one attempt of method against url with the given body and extra
// headers, bounded by the per-attempt timeout. The response body is read
// fully; non-2xx statuses are returned as a Response, not an error, so
// callers can inspect cluster-protocol headers on rejections.
func (c *Client) Do(ctx context.Context, method, url string, body []byte, hdr http.Header) (*Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s %s response: %w", method, url, err)
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: data}, nil
}

// Get fetches url with hedging: if the first attempt has not answered
// within HedgeDelay, a second identical attempt starts and the first
// response (success or HTTP error) wins. Only safe for idempotent
// requests; the loser's context is cancelled.
func (c *Client) Get(ctx context.Context, url string, hdr http.Header) (*Response, error) {
	if c.HedgeDelay <= 0 {
		return c.Do(ctx, http.MethodGet, url, nil, hdr)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels whichever attempt loses
	type result struct {
		resp *Response
		err  error
	}
	ch := make(chan result, 2)
	attempt := func() {
		resp, err := c.Do(ctx, http.MethodGet, url, nil, hdr)
		ch <- result{resp, err}
	}
	go attempt()
	timer := time.NewTimer(c.HedgeDelay)
	defer timer.Stop()
	launched := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			launched--
			if launched == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			go attempt()
			launched++
		}
	}
}

// timeout resolves the per-attempt timeout.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// http resolves the underlying client.
func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Scatter runs fn(i) for i in [0, n) concurrently and returns the
// per-index results and errors - the gather half of scatter-gather. It
// always waits for every call; callers cancel via ctx inside fn.
func Scatter[T any](n int, fn func(i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out, errs
}

// FirstError returns the first non-nil error of errs, annotated with its
// index, or nil.
func FirstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: call %d: %w", i, err)
		}
	}
	return nil
}
