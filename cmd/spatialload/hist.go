package main

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchfmt"
)

// HDR-style latency recording: a fixed array of log-spaced buckets (8
// sub-buckets per power of two, so bucket width is 12.5% of the value)
// covers 1ns..~584y with no allocation on the hot path. Quantiles read
// the bucket lower bound, so a reported p99 is at most one bucket width
// below the true value - plenty for a load report.

// histSubBits is the per-octave sub-bucket resolution (2^3 = 8).
const histSubBits = 3

// histBuckets is the bucket count: 64 octaves x 8 sub-buckets.
const histBuckets = 64 << histSubBits

// hist is one operation class's latency record. Safe for concurrent use.
// Beyond the buckets it pins the worst op: its wall-clock start time and
// a caller-supplied reference (request ID, trace ID, session/batch), so
// a bad p-max in the report can be cross-referenced against the cluster's
// /admin/trace ring and slow-op logs instead of being an anonymous number.
type hist struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	n      uint64
	errs   uint64
	sum    time.Duration
	max    time.Duration
	maxAt  time.Time // wall-clock start of the worst op
	maxRef string    // caller's identity for the worst op ("" if unknown)
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := uint64(d)
	if ns < 1<<histSubBits {
		return int(ns) // the first octaves are exact
	}
	exp := bits.Len64(ns) - 1
	sub := (ns >> (uint(exp) - histSubBits)) & (1<<histSubBits - 1)
	return (exp << histSubBits) | int(sub)
}

// bucketLow returns the smallest duration mapping to bucket i - the
// value quantile() reports for samples landing in it.
func bucketLow(i int) time.Duration {
	exp := i >> histSubBits
	sub := uint64(i & (1<<histSubBits - 1))
	if exp <= histSubBits {
		return time.Duration(i)
	}
	return time.Duration(1<<uint(exp) | sub<<(uint(exp)-histSubBits))
}

// observe records one successful operation's latency without identity -
// the worst-op reference stays empty if this sample becomes the max.
func (h *hist) observe(d time.Duration) {
	h.observeOp(d, time.Time{}, "")
}

// observeOp records one successful operation's latency plus when it
// started and how to find it again (request/trace ID). start and ref are
// kept only if the op is the class's new maximum.
func (h *hist) observeOp(d time.Duration, start time.Time, ref string) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[bucketFor(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
		h.maxAt = start
		h.maxRef = ref
	}
	h.mu.Unlock()
}

// fail records one failed operation (no latency sample).
func (h *hist) fail() {
	h.mu.Lock()
	h.errs++
	h.mu.Unlock()
}

// quantile returns the latency at quantile q in [0,1]. Caller holds mu.
func (h *hist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			return bucketLow(i)
		}
	}
	return h.max
}

// phaseStats aggregates one phase's histograms by operation class.
type phaseStats struct {
	name string
	dur  time.Duration // workers-active wall time, set at phase end

	mu    sync.Mutex
	hists map[string]*hist
}

// hist returns (creating on first use) the histogram for one op class.
func (p *phaseStats) hist(class string) *hist {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.hists[class]
	if h == nil {
		h = &hist{}
		p.hists[class] = h
	}
	return h
}

// worstOps returns one formatted line per op class describing the
// phase's worst op: latency, wall-clock start, and the op's reference.
// Ordered by class name; classes that never pinned a timestamp (no
// successful ops) are omitted.
func (p *phaseStats) worstOps() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	classes := make([]string, 0, len(p.hists))
	for c := range p.hists {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var out []string
	for _, c := range classes {
		h := p.hists[c]
		h.mu.Lock()
		if !h.maxAt.IsZero() {
			line := fmt.Sprintf("%s/%s: worst op %v at %s", p.name, c, h.max, h.maxAt.UTC().Format(time.RFC3339Nano))
			if h.maxRef != "" {
				line += " (" + h.maxRef + ")"
			}
			out = append(out, line)
		}
		h.mu.Unlock()
	}
	return out
}

// worstTraceIDs returns the trace IDs embedded in the phase's worst-op
// refs (the "trace=<id>" field minted by the workers), one per op class
// that carries one.
func (p *phaseStats) worstTraceIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, h := range p.hists {
		h.mu.Lock()
		ref := h.maxRef
		h.mu.Unlock()
		if _, id, ok := strings.Cut(ref, "trace="); ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// record adds one phase's benchmark records to the report document:
// Load/<phase>/<class> with p50/p95/p99/max latencies, op and error
// counts, and throughput over the phase's active window. Each class's
// worst op also lands in the document context ("worst_op <phase>/<class>")
// with its wall-clock start time and reference - metrics are float64s,
// and a nanosecond epoch does not survive one.
func (p *phaseStats) record(doc *benchfmt.Document) {
	p.mu.Lock()
	defer p.mu.Unlock()
	classes := make([]string, 0, len(p.hists))
	for c := range p.hists {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		h := p.hists[c]
		h.mu.Lock()
		m := map[string]float64{
			"ops":    float64(h.n),
			"errors": float64(h.errs),
			"p50_ns": float64(h.quantile(0.50)),
			"p95_ns": float64(h.quantile(0.95)),
			"p99_ns": float64(h.quantile(0.99)),
			"max_ns": float64(h.max),
		}
		if p.dur > 0 {
			m["ops_per_sec"] = float64(h.n) / p.dur.Seconds()
		}
		if !h.maxAt.IsZero() {
			v := h.maxAt.UTC().Format(time.RFC3339Nano) + " dur=" + h.max.String()
			if h.maxRef != "" {
				v += " " + h.maxRef
			}
			doc.Context["worst_op "+p.name+"/"+c] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, benchfmt.Record{
			Pkg:        "repro/cmd/spatialload",
			Name:       "Load/" + p.name + "/" + c,
			Procs:      1,
			Iterations: int64(h.n),
			Metrics:    m,
		})
		h.mu.Unlock()
	}
}
