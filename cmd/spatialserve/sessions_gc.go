package main

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"time"
)

// Session-mark garbage collection.
//
// Streaming-ingest watermarks (stream.go) are tiny but immortal by
// default, and the table caps at maxSessionEntries - a long-lived
// deployment cycling through session IDs would eventually refuse new
// sessions. The GC expires marks that are safe to forget:
//
//   - TTL expiry: a mark idle longer than the configured TTL with no
//     attached stream. The dedup window only matters for retries of
//     already-acked batches, and a live client retries within its
//     reconnect backoff (seconds); a mark untouched for a TTL measured
//     in hours has no outstanding retry left to dedup.
//   - LRU pressure eviction: when the table nears its cap, the
//     least-recently-touched unpinned marks are evicted (still never a
//     mark touched within the last sessionLRUMinIdle) so new sessions
//     keep working instead of hitting the cap wall.
//
// Every drop of a durable mark is WAL-logged (walOpSessionDrop) BEFORE
// the mark leaves the table, so crash recovery and WAL-shipped replicas
// converge on exactly the live server's mark state - expiry can never
// make a recovered node remember (or forget) more than the live one
// did. Non-durable routing marks on cluster routing nodes are dropped
// without logging; they never survive a restart anyway.

const (
	// sessionGCHighWater is the table size that triggers LRU pressure
	// eviction (7/8 of the cap).
	sessionGCHighWater = maxSessionEntries - maxSessionEntries/8
	// sessionGCLowWater is the size pressure eviction drains down to
	// (3/4 of the cap).
	sessionGCLowWater = maxSessionEntries - maxSessionEntries/4
	// sessionLRUMinIdle is the floor under which pressure eviction never
	// touches a mark: an entry active within the last second is plausibly
	// mid-stream whatever the table pressure.
	sessionLRUMinIdle = time.Second
)

// gcCandidate is one mark the sweep wants to drop, with the idle bound
// dropSessionMark re-verifies under the entry lock.
type gcCandidate struct {
	key     sessionKey
	minIdle time.Duration
}

// gcCandidates collects this sweep's drop candidates under the table
// lock: TTL-expired unpinned marks, plus - when the table still exceeds
// lruHigh - the least-recently-touched unpinned marks down to lruLow.
func (t *sessionTable) gcCandidates(now time.Time, ttl time.Duration, lruHigh, lruLow int) []gcCandidate {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []gcCandidate
	type aged struct {
		key  sessionKey
		last int64
	}
	var live []aged
	for k, e := range t.entries {
		if t.pinned[k] > 0 {
			continue
		}
		last := e.last.Load()
		if ttl > 0 && now.Sub(time.Unix(0, last)) > ttl {
			out = append(out, gcCandidate{key: k, minIdle: ttl})
			continue
		}
		live = append(live, aged{k, last})
	}
	if remain := len(t.entries) - len(out); remain > lruHigh && lruHigh > 0 {
		sort.Slice(live, func(i, j int) bool { return live[i].last < live[j].last })
		for _, a := range live {
			if remain <= lruLow {
				break
			}
			out = append(out, gcCandidate{key: a.key, minIdle: sessionLRUMinIdle})
			remain--
		}
	}
	return out
}

// dropSessionMark removes one live watermark. The drop is re-validated
// under the entry lock (still unpinned, still idle past minIdle - a
// racing batch revives the mark and aborts the drop) and WAL-logged
// before removal when the key is durable here. Returns whether the mark
// was dropped.
func (s *Server) dropSessionMark(session, key string, minIdle time.Duration, now time.Time) (bool, error) {
	t := &s.sessions
	t.mu.Lock()
	ent := t.entries[sessionKey{session, key}]
	t.mu.Unlock()
	if ent == nil || t.isPinned(session, key) {
		return false, nil
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.dropped.Load() {
		return false, nil
	}
	if minIdle > 0 && now.Sub(time.Unix(0, ent.last.Load())) < minIdle {
		return false, nil
	}
	if est, ok := s.lookup(key); ok && s.persist != nil {
		err := s.withEstimator(key, est, func() error {
			return s.persist.logSessionDrop(context.Background(), key, session)
		})
		if errors.Is(err, errStaleBinding) {
			// The binding changed under us; the delete/replace path owns
			// this key's marks now.
			return false, nil
		}
		if err != nil {
			return false, err
		}
	}
	ent.dropped.Store(true)
	t.remove(session, key)
	return true, nil
}

// gcSessions runs one sweep at time now and returns how many marks were
// dropped. Exposed with explicit parameters so tests drive deterministic
// sweeps; the background loop passes the configured TTL and the real
// water marks.
func (s *Server) gcSessions(now time.Time, ttl time.Duration, lruHigh, lruLow int) int {
	dropped := 0
	for _, c := range s.sessions.gcCandidates(now, ttl, lruHigh, lruLow) {
		ok, err := s.dropSessionMark(c.key.session, c.key.key, c.minIdle, now)
		if err != nil {
			// A WAL append failure keeps the mark: dedup state is never
			// discarded without the drop being durable first.
			logfServer("spatialserve: session gc: dropping (%q, %q): %v", c.key.session, c.key.key, err)
			continue
		}
		if ok {
			dropped++
		}
	}
	return dropped
}

// StartSessionGC starts the background sweep expiring idle session
// marks after ttl (and LRU-evicting under table pressure). Replicas
// skip sweeping while read-only - their mark drops arrive through the
// leader's WAL - and pick it up after promotion. Close stops the loop.
func (s *Server) StartSessionGC(ttl time.Duration) {
	if ttl <= 0 || s.gcStop != nil {
		return
	}
	period := ttl / 4
	if period > time.Minute {
		period = time.Minute
	}
	if period < time.Second {
		period = time.Second
	}
	s.gcStop = make(chan struct{})
	s.gcDone = make(chan struct{})
	go func() {
		defer close(s.gcDone)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-s.gcStop:
				return
			case <-tick.C:
				if s.replicaReadOnly() {
					continue
				}
				s.gcSessions(time.Now(), ttl, sessionGCHighWater, sessionGCLowWater)
			}
		}
	}()
}

// stopSessionGC stops the sweep loop (idempotent; part of Close).
func (s *Server) stopSessionGC() {
	if s.gcStop == nil {
		return
	}
	s.gcOnce.Do(func() {
		close(s.gcStop)
		<-s.gcDone
	})
}

// ---- the admin endpoints ----

// sessionInfo is the admin view of one ingest watermark.
type sessionInfo struct {
	Session     string  `json:"session"`
	Estimator   string  `json:"estimator"`
	Seq         uint64  `json:"seq"`
	IdleSeconds float64 `json:"idleSeconds"`
	Attached    bool    `json:"attached"`
}

// sessionListResponse is the GET /admin/sessions body.
type sessionListResponse struct {
	Cap      int           `json:"cap"`
	Count    int           `json:"count"`
	Sessions []sessionInfo `json:"sessions"`
}

// listSessions snapshots the table for the admin endpoint, optionally
// filtered by session and/or estimator key.
func (t *sessionTable) listSessions(now time.Time, session, key string) ([]sessionInfo, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]sessionInfo, 0, len(t.entries))
	for k, e := range t.entries {
		if session != "" && k.session != session {
			continue
		}
		if key != "" && k.key != key {
			continue
		}
		out = append(out, sessionInfo{
			Session:     k.session,
			Estimator:   k.key,
			Seq:         e.seq.Load(),
			IdleSeconds: now.Sub(time.Unix(0, e.last.Load())).Seconds(),
			Attached:    t.pinned[k] > 0,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimator != out[j].Estimator {
			return out[i].Estimator < out[j].Estimator
		}
		return out[i].Session < out[j].Session
	})
	return out, len(t.entries)
}

// handleSessionList serves GET /admin/sessions: every live watermark
// with its sequence, idle time and stream attachment, filterable with
// ?session= and ?estimator=.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	infos, total := s.sessions.listSessions(time.Now(), q.Get("session"), q.Get("estimator"))
	writeJSON(w, http.StatusOK, sessionListResponse{
		Cap:      maxSessionEntries,
		Count:    total,
		Sessions: infos,
	})
}

// handleSessionDelete serves DELETE /admin/sessions?session=S[&estimator=E]:
// drops the session's watermarks (all estimator keys, or just E),
// WAL-logged like GC expiry. Marks with an attached stream are skipped -
// dropping a live stream's dedup state would reopen its window.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if s.replicaReadOnly() {
		writeError(w, http.StatusConflict, readOnlyReplicaMsg)
		return
	}
	q := r.URL.Query()
	session := q.Get("session")
	if session == "" {
		writeError(w, http.StatusBadRequest, "session query parameter is required")
		return
	}
	infos, _ := s.sessions.listSessions(time.Now(), session, q.Get("estimator"))
	dropped, skipped := 0, 0
	for _, in := range infos {
		ok, err := s.dropSessionMark(in.Session, in.Estimator, 0, time.Time{})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if ok {
			dropped++
		} else {
			skipped++
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"dropped": dropped, "skipped": skipped})
}
