// Command spatialbench regenerates the figures of the paper's evaluation
// (Section 7) and the repository's ablation studies.
//
// Usage:
//
//	spatialbench -list
//	spatialbench -fig 5            # one figure
//	spatialbench -exp maxlevel     # one ablation by name
//	spatialbench -all              # everything
//	spatialbench -fig 9 -scale 0.25 -runs 5 -seed 7
//
// -scale 1 reproduces the paper's full setup (0.5M objects; hours);
// the default 0.04 keeps a full regeneration in the minutes range while
// preserving every comparison the figures make. Results are printed as
// aligned text tables, one row per figure x-axis point.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure number to regenerate (5-11)")
		exp   = flag.String("exp", "", "experiment name to run (see -list)")
		all   = flag.Bool("all", false, "run every figure and ablation")
		list  = flag.Bool("list", false, "list available experiments")
		scale = flag.Float64("scale", 0, "scale factor in (0,1]; default 0.04, 1 = paper-sized")
		runs  = flag.Int("runs", 0, "independent sketch runs to average (default 3)")
		seed  = flag.Uint64("seed", 0, "RNG seed (default fixed)")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.All() {
			fmt.Println(name)
		}
		return
	}
	opt := experiments.Options{Scale: *scale, Runs: *runs, Seed: *seed}

	var names []string
	switch {
	case *all:
		names = experiments.All()
	case *fig != 0:
		names = []string{fmt.Sprintf("fig%d", *fig)}
	case *exp != "":
		names = []string{*exp}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, name := range names {
		start := time.Now()
		tab, err := experiments.ByName(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
