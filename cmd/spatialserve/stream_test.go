package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	spatial "repro"
	"repro/geo"
	"repro/ingestclient"
	"repro/internal/ingest"
)

// Streaming ingest tests: the exactly-once contract is checked the same
// way the chaos soak checks it - server snapshots must be BYTE-identical
// to a loss-free reference that saw every record exactly once, no matter
// how many duplicate frames, reconnects or crash-recoveries happened on
// the way.

const streamDom = 1 << 12

// streamNode is a persistent single node behind a stable httptest
// listener that can be crashed (abrupt WAL close, no final checkpoint)
// and rebooted on the same data dir.
type streamNode struct {
	t   *testing.T
	dir string
	ht  *httptest.Server
	cur atomic.Pointer[Server]
}

func startStreamNode(t *testing.T) *streamNode {
	t.Helper()
	checkGoroutineLeaks(t)
	n := &streamNode{t: t, dir: filepath.Join(t.TempDir(), "node")}
	n.ht = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := n.cur.Load()
		if s == nil {
			panic(http.ErrAbortHandler) // crashed: the connection dies
		}
		s.ServeHTTP(w, r)
	}))
	t.Cleanup(n.ht.Close)
	n.boot()
	t.Cleanup(func() {
		if s := n.cur.Swap(nil); s != nil {
			s.Close()
		}
	})
	return n
}

func (n *streamNode) boot() {
	n.t.Helper()
	srv, err := NewPersistentServer(PersistOptions{DataDir: n.dir})
	if err != nil {
		n.t.Fatal(err)
	}
	n.cur.Store(srv)
}

// crash abruptly closes the WAL (no final checkpoint) and detaches the
// server, so recovery must come from the WAL tail like a real kill.
func (n *streamNode) crash() {
	n.t.Helper()
	if s := n.cur.Swap(nil); s != nil {
		if err := s.persist.close(true); err != nil {
			n.t.Fatal(err)
		}
	}
}

// createJoin creates the canonical 2-d join estimator "j".
func createStreamJoin(t *testing.T, base string) {
	t.Helper()
	mustDo(t, "POST", base+"/v1/estimators", mustJSON(t, createRequest{
		Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: streamDom, Seed: 1, Instances: 64, Groups: 4},
	}), http.StatusCreated)
}

// refJoin builds the loss-free reference estimator matching createJoin.
func refJoin(t *testing.T) *spatial.JoinEstimator {
	t.Helper()
	ref, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims: 2, DomainSize: streamDom, Seed: 1, Sizing: spatial.Sizing{Instances: 64, Groups: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// streamBatch builds one deterministic batch: mostly inserts on random
// sides, plus an occasional delete of a previously inserted record so
// the delete path rides the stream too.
func streamBatch(rng *rand.Rand, nrec int, history *[]spatial.UpdateRecord) []spatial.UpdateRecord {
	recs := make([]spatial.UpdateRecord, 0, nrec)
	for i := 0; i < nrec; i++ {
		if len(*history) > 0 && rng.Intn(8) == 0 {
			pick := (*history)[rng.Intn(len(*history))]
			pick.Op = spatial.OpDelete
			recs = append(recs, pick)
			continue
		}
		wr := randRect(rng, streamDom)
		side := spatial.SideLeft
		if rng.Intn(2) == 1 {
			side = spatial.SideRight
		}
		rec := spatial.UpdateRecord{Op: spatial.OpInsert, Side: side,
			Rect: geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])}
		recs = append(recs, rec)
		*history = append(*history, rec)
	}
	return recs
}

// applyRef replays records into the reference estimator.
func applyRef(t *testing.T, ref *spatial.JoinEstimator, recs []spatial.UpdateRecord) {
	t.Helper()
	for _, r := range recs {
		var err error
		switch {
		case r.Side == spatial.SideLeft && r.Op == spatial.OpInsert:
			err = ref.InsertLeft(r.Rect)
		case r.Side == spatial.SideLeft:
			err = ref.DeleteLeft(r.Rect)
		case r.Op == spatial.OpInsert:
			err = ref.InsertRight(r.Rect)
		default:
			err = ref.DeleteRight(r.Rect)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// mustMatchRef requires the server snapshot to be byte-identical to the
// reference.
func mustMatchRef(t *testing.T, base string, ref *spatial.JoinEstimator, when string) {
	t.Helper()
	want, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got := mustDo(t, "GET", base+"/v1/estimators/j/snapshot", nil, http.StatusOK)
	if string(got) != string(want) {
		t.Fatalf("%s: server snapshot differs from loss-free reference", when)
	}
}

// dialStreamRaw performs the upgrade handshake by hand and returns the
// live connection plus the server's resume state - the test-side view of
// exactly what a reconnecting client is told.
func dialStreamRaw(t *testing.T, baseURL, estimator, session string) (net.Conn, *bufio.Reader, ingest.HelloAck) {
	t.Helper()
	u, err := url.Parse(baseURL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	req := fmt.Sprintf("POST /v1/ingest HTTP/1.1\r\nHost: %s\r\nUpgrade: %s\r\nConnection: Upgrade\r\nContent-Length: 0\r\n\r\n",
		u.Host, ingest.Protocol)
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("upgrade: status %d, want 101", resp.StatusCode)
	}
	if _, err := conn.Write(ingest.AppendHello(nil, ingest.Hello{Session: session, Estimator: estimator})); err != nil {
		t.Fatal(err)
	}
	ft, body, err := ingest.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if ft != ingest.FrameHelloAck {
		t.Fatalf("handshake answered frame type %d, want hello-ack", ft)
	}
	ha, err := ingest.DecodeHelloAck(body)
	if err != nil {
		t.Fatal(err)
	}
	return conn, br, ha
}

// TestStreamIngestExactlyOnce streams batches with duplicate frames
// injected every third batch: the duplicates must be dropped and
// re-acked, never re-applied, and the stream metrics must record them.
func TestStreamIngestExactlyOnce(t *testing.T) {
	n := startStreamNode(t)
	createStreamJoin(t, n.ht.URL)
	ref := refJoin(t)

	c, err := ingestclient.Dial(ingestclient.Options{
		BaseURL: n.ht.URL, Estimator: "j", Session: "w1", DupEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(11))
	var history []spatial.UpdateRecord
	const batches = 8
	for i := 0; i < batches; i++ {
		recs := streamBatch(rng, 16, &history)
		applyRef(t, ref, recs)
		if err := c.Send(recs); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i == 0 {
			// Wait out the background connect: duplicate-frame injection
			// only fires on direct writes to a live connection.
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.Acked(); got != batches {
		t.Fatalf("acked watermark = %d, want %d", got, batches)
	}
	mustMatchRef(t, n.ht.URL, ref, "after streaming with duplicate frames")

	page := string(mustDo(t, "GET", n.ht.URL+"/metrics", nil, http.StatusOK))
	for _, want := range []string{
		`spatialserve_ingest_batches_total{tenant="default",result="acked"}`,
		`spatialserve_ingest_batches_total{tenant="default",result="deduped"}`,
		`spatialserve_ingest_records_total{tenant="default"}`,
		`spatialserve_ingest_ack_seconds`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}

// TestStreamIngestCrashResume crashes the server mid-session: the SAME
// client must reconnect, resume from the persisted watermark and finish
// the stream with nothing lost and nothing doubled. A full manual replay
// of every batch afterwards must be entirely deduped.
func TestStreamIngestCrashResume(t *testing.T) {
	n := startStreamNode(t)
	createStreamJoin(t, n.ht.URL)
	ref := refJoin(t)

	c, err := ingestclient.Dial(ingestclient.Options{
		BaseURL: n.ht.URL, Estimator: "j", Session: "w1",
		MinBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(17))
	var history []spatial.UpdateRecord
	var frames [][]byte // every batch frame ever acked, for the replay
	send := func(count int, from int) {
		t.Helper()
		for i := 0; i < count; i++ {
			recs := streamBatch(rng, 12, &history)
			applyRef(t, ref, recs)
			var enc []byte
			for _, r := range recs {
				enc = r.AppendBinary(enc)
			}
			frames = append(frames, ingest.AppendBatch(nil, uint64(from+i+1), len(recs), enc))
			if err := c.Send(recs); err != nil {
				t.Fatalf("send %d: %v", from+i, err)
			}
		}
	}

	send(6, 0)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	n.crash()
	n.boot()
	send(6, 6) // client reconnects with backoff and resends unacked
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.Acked(); got != 12 {
		t.Fatalf("acked watermark = %d, want 12", got)
	}
	mustMatchRef(t, n.ht.URL, ref, "after crash-recovery resume")

	// The recovered watermark must be advertised on reconnect...
	conn, br, ha := dialStreamRaw(t, n.ht.URL, "j", "w1")
	defer conn.Close()
	if ha.Watermark != 12 {
		t.Fatalf("recovered HelloAck watermark = %d, want 12", ha.Watermark)
	}
	// ...and a full replay of every acked batch must be dropped (and
	// re-acked) by the watermark, leaving the snapshot untouched.
	for i, f := range frames {
		if _, err := conn.Write(f); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		ft, body, err := ingest.ReadFrame(br)
		if err != nil || ft != ingest.FrameAck {
			t.Fatalf("replay %d: frame type %d, err %v (want ack)", i, ft, err)
		}
		if seq, _ := ingest.DecodeAck(body); seq != uint64(i+1) {
			t.Fatalf("replay %d: acked seq %d, want %d", i, seq, i+1)
		}
	}
	mustMatchRef(t, n.ht.URL, ref, "after replaying every acked batch")
}

// TestStreamIngestCluster streams through a routing node of a 3-node
// persistent cluster with duplicate frames injected: per-partition
// fan-out must carry (session, seq) so every node's merged snapshot
// stays byte-identical to the loss-free reference. The JSON
// Idempotency-Key path rides the same machinery through routeIngest.
func TestStreamIngestCluster(t *testing.T) {
	_, urls := startCluster(t, 3, true)
	mustDo(t, "POST", urls[0]+"/v1/estimators", mustJSON(t, createRequest{
		Name: "j", Kind: "join",
		Config: configRequest{Dims: 2, DomainSize: streamDom, Seed: 1, Instances: 64, Groups: 4},
	}), http.StatusCreated)
	ref := refJoin(t)

	c, err := ingestclient.Dial(ingestclient.Options{
		BaseURL: urls[1], Estimator: "j", Session: "w1", DupEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(23))
	var history []spatial.UpdateRecord
	const batches = 10
	for i := 0; i < batches; i++ {
		recs := streamBatch(rng, 12, &history)
		applyRef(t, ref, recs)
		if err := c.Send(recs); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range urls {
		got := mustDo(t, "GET", u+"/v1/estimators/j/snapshot", nil, http.StatusOK)
		if string(got) != string(want) {
			t.Fatalf("node %d: merged snapshot differs from loss-free reference", i)
		}
	}

	// The routing node's resume hint reflects the fully-acked stream.
	conn, _, ha := dialStreamRaw(t, urls[1], "j", "w1")
	conn.Close()
	if ha.Watermark != batches {
		t.Fatalf("routing watermark = %d, want %d", ha.Watermark, batches)
	}

	// Idempotency-Key through cluster routing: the retry is a durable
	// no-op on every owner it reached.
	wr := randRect(rng, streamDom)
	body := mustJSON(t, updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
	hdr := map[string]string{"Idempotency-Key": "ck-1", "Content-Type": "application/json"}
	resp, data := httpDo(t, "POST", urls[2]+"/v1/estimators/j/update", body, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent update: status %d: %s", resp.StatusCode, data)
	}
	if err := ref.InsertLeft(geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])); err != nil {
		t.Fatal(err)
	}
	resp, data = httpDo(t, "POST", urls[2]+"/v1/estimators/j/update", body, hdr)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"deduped":true`) {
		t.Fatalf("idempotent retry: status %d, body %s (want 200 with deduped)", resp.StatusCode, data)
	}
	want, err = ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got := mustDo(t, "GET", urls[0]+"/v1/estimators/j/snapshot", nil, http.StatusOK)
	if string(got) != string(want) {
		t.Fatal("idempotent retry changed the merged snapshot")
	}
}

// TestIdempotencyKeyUpdate pins the JSON-path exactly-once contract on a
// single persistent node: a retried key is a durable no-op that answers
// 200 with Deduped set, and the dedup survives an abrupt crash.
func TestIdempotencyKeyUpdate(t *testing.T) {
	n := startStreamNode(t)
	createStreamJoin(t, n.ht.URL)
	ref := refJoin(t)

	rng := rand.New(rand.NewSource(31))
	wr := randRect(rng, streamDom)
	body := mustJSON(t, updateRequest{Side: "left", Rects: [][][2]uint64{wr}})
	hdr := map[string]string{"Idempotency-Key": "k-1", "Content-Type": "application/json"}
	u := n.ht.URL + "/v1/estimators/j/update"

	resp, data := httpDo(t, "POST", u, body, hdr)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"applied":1`) {
		t.Fatalf("first apply: status %d, body %s", resp.StatusCode, data)
	}
	if err := ref.InsertLeft(geo.Rect(wr[0][0], wr[0][1], wr[1][0], wr[1][1])); err != nil {
		t.Fatal(err)
	}

	for attempt := 0; attempt < 2; attempt++ {
		resp, data = httpDo(t, "POST", u, body, hdr)
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"deduped":true`) {
			t.Fatalf("retry %d: status %d, body %s (want 200 with deduped)", attempt, resp.StatusCode, data)
		}
	}
	mustMatchRef(t, n.ht.URL, ref, "after idempotent retries")

	// The watermark is in the WAL: a crash must not reopen the window.
	n.crash()
	n.boot()
	resp, data = httpDo(t, "POST", u, body, hdr)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"deduped":true`) {
		t.Fatalf("post-crash retry: status %d, body %s (want 200 with deduped)", resp.StatusCode, data)
	}
	mustMatchRef(t, n.ht.URL, ref, "after crash-recovery retry")

	// A fresh key applies; a malformed key is refused outright.
	hdr["Idempotency-Key"] = "k-2"
	resp, data = httpDo(t, "POST", u, body, hdr)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"applied":1`) {
		t.Fatalf("fresh key: status %d, body %s", resp.StatusCode, data)
	}
	hdr["Idempotency-Key"] = "bad key with spaces"
	resp, _ = httpDo(t, "POST", u, body, hdr)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamIngestUnknownEstimator pins the terminal-error path: a
// stream into a missing estimator fails the client permanently instead
// of reconnect-looping.
func TestStreamIngestUnknownEstimator(t *testing.T) {
	n := startStreamNode(t)
	c, err := ingestclient.Dial(ingestclient.Options{
		BaseURL: n.ht.URL, Estimator: "nope", Session: "w1",
		MinBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]spatial.UpdateRecord{
		{Op: spatial.OpInsert, Side: spatial.SideLeft, Rect: geo.Rect(1, 2, 3, 4)},
	}); err != nil {
		// Send may observe the terminal error directly; that is fine.
		checkStreamNotFound(t, err)
		return
	}
	checkStreamNotFound(t, c.Flush())
}

// checkStreamNotFound requires a terminal not-found stream error.
func checkStreamNotFound(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("stream into a missing estimator succeeded")
	}
	var se *ingest.StreamError
	if !errors.As(err, &se) || se.Code != ingest.CodeNotFound {
		t.Fatalf("error %v, want terminal not-found stream error", err)
	}
}
