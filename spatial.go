// Package spatial is a Go implementation of the sketch-based selectivity
// estimation framework of Das, Gehrke and Riedewald, "Approximation
// Techniques for Spatial Data" (SIGMOD 2004): small, mergeable,
// incrementally maintainable synopses of spatial datasets that answer
// cardinality/selectivity queries - spatial joins, epsilon-joins,
// containment joins and range queries - with provable probabilistic error
// guarantees.
//
// The synopses are AMS-style sketches over dyadic decompositions of the
// coordinate space. They are built in a single pass, support inserts AND
// deletes, and their accuracy improves predictably with the space invested
// (unlike grid histograms, whose error is data-dependent and not
// guaranteed).
//
// # Quick start
//
//	est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
//	    Dims:       2,
//	    DomainSize: 1 << 16,
//	    Sizing:     spatial.Sizing{MemoryWords: 4096},
//	    Seed:       42,
//	})
//	// stream the two relations
//	est.InsertLeft(geo.Rect(10, 50, 20, 80))
//	est.InsertRight(geo.Rect(40, 90, 10, 60))
//	...
//	card := est.Cardinality()          // estimated |R join S|
//	sel := est.Selectivity()           // card / (|R|*|S|)
//
// Geometry lives in the repro/geo sub-package. All coordinates are
// unsigned integers in [0, DomainSize); real-valued data is mapped onto
// the grid with geo.Quantizer (paper Section 5.1).
//
// # Common endpoints
//
// The paper's estimators assume the joined relations share no endpoint
// coordinates (Assumption 1). By default the estimators make the
// assumption hold via the endpoint transformation of Section 5.2
// (coordinates are tripled internally; the right/query side is shrunk).
// ModeCommonEndpoints instead maintains the explicit endpoint sketches of
// Appendix C - no domain growth, and the extended join of Definition 4
// (boundary contact counts as intersection) also becomes available.
//
// # Concurrency and serving
//
// All estimators are safe for concurrent use: updates go to sharded
// sketches behind per-shard locks, estimates fold the shards into an
// owned view (see shard.go). Marshal emits a versioned full-estimator
// snapshot (configuration included) that Unmarshal<Kind>Estimator turns
// back into a working estimator and MergeSnapshot folds into an existing
// one, rejecting config mismatches at decode time; cmd/spatialserve
// serves a registry of named estimators over HTTP.
package spatial

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Estimate is a boosted estimate with diagnostics: the median of group
// means (the paper's Section 2.3 boosting), plus the grand mean and the
// empirical variance of the underlying atomic estimators.
type Estimate struct {
	// Value is the boosted estimate (median of group means); it can be
	// negative for tiny results, see Clamped.
	Value float64
	// Mean is the grand mean over all atomic instances.
	Mean float64
	// GroupMeans are the per-group means whose median is Value. Treat the
	// slice as read-only: the zero-copy read path memoizes estimates per
	// immutable view, so repeated queries against an unchanged estimator
	// may return Estimates sharing one GroupMeans slice.
	GroupMeans []float64
	// SampleVariance is the empirical variance of the atomic instances.
	SampleVariance float64
	// Instances is the number of atomic instances combined.
	Instances int
}

// Clamped returns the estimate clamped to be non-negative.
func (e Estimate) Clamped() float64 {
	if e.Value < 0 {
		return 0
	}
	return e.Value
}

// StdErr returns the estimated standard error of one group mean - a
// practical uncertainty gauge: when it rivals the estimate itself, the
// synopsis is too small for the workload (self-join sizes large relative
// to the result, Section 7.4) and more space is needed.
func (e Estimate) StdErr() float64 {
	if len(e.GroupMeans) == 0 || e.Instances == 0 {
		return math.NaN()
	}
	perGroup := float64(e.Instances) / float64(len(e.GroupMeans))
	return math.Sqrt(e.SampleVariance / perGroup)
}

func fromCore(e core.Estimate) Estimate {
	return Estimate{
		Value:          e.Value,
		Mean:           e.Mean,
		GroupMeans:     e.GroupMeans,
		SampleVariance: e.SampleVariance,
		Instances:      e.Instances,
	}
}

// Guarantee is an (eps, phi) accuracy target: with probability at least
// 1-Phi the estimate is within relative error Eps of the true cardinality,
// provided the self-join sizes and result lower bound supplied in Sizing
// hold for the data (Lemma 1 / Theorems 1-3).
type Guarantee struct {
	Eps float64 // relative error bound
	Phi float64 // failure probability
}

// Sizing selects how many atomic sketch instances to maintain. Exactly one
// of the three modes applies, checked in this order:
//
//  1. Instances > 0: explicit (Groups defaults to 8 if zero).
//  2. MemoryWords > 0: as many instances as fit the per-relation budget,
//     using the paper's word accounting (Section 7 equal-space setup) with
//     the footprint of the estimator being sized: 2^d + d/2 words per
//     instance for transform-mode joins, 4^d + d/2 for common-endpoints
//     joins, 1 + d/2 for epsilon- and containment joins (in the doubled
//     reduction dimensionality), 2^d + d for range synopses.
//  3. Guarantee != nil: the Theorem 1 sizing from (eps, phi), the
//     self-join size bounds and the result lower bound ("sanity bound",
//     Section 2.3).
//
// If none is set, a default of 512 instances in 8 groups is used.
type Sizing struct {
	Instances int
	Groups    int

	MemoryWords int

	Guarantee        *Guarantee
	SelfJoinLeft     float64 // bound on SJ(R); see exact self-join helpers
	SelfJoinRight    float64 // bound on SJ(S)
	ResultLowerBound float64 // lower bound on the true cardinality
}

const (
	defaultInstances = 512
	defaultGroups    = 8
)

// resolve turns a Sizing into concrete (instances, groups) for an
// estimator of the given (internal) dimensionality whose per-instance
// footprint is wordsPerInstance in the paper's word accounting. Each
// estimator type passes its own accounting - 2^d + d/2 words per relation
// for transform-mode joins, 4^d + d/2 for common-endpoints joins,
// 1 + d/2 for the point/box sketches of epsilon- and containment joins,
// 2^d + d for range synopses - so equal-MemoryWords comparisons across
// estimator kinds are not skewed by the join-sketch layout.
func (s Sizing) resolve(dims int, wordsPerInstance float64) (instances, groups int, err error) {
	switch {
	case s.Instances > 0:
		groups = s.Groups
		if groups <= 0 {
			groups = defaultGroups
		}
		if s.Instances < groups {
			return 0, 0, fmt.Errorf("spatial: %d instances cannot form %d groups", s.Instances, groups)
		}
		instances = s.Instances - s.Instances%groups
		return instances, groups, nil
	case s.MemoryWords > 0:
		groups = s.Groups
		if groups <= 0 {
			groups = defaultGroups
		}
		instances = core.InstancesForBudgetWords(wordsPerInstance, s.MemoryWords, groups)
		return instances, groups, nil
	case s.Guarantee != nil:
		k1, k2, err := core.PlanJoinInstances(dims, core.Guarantee(*s.Guarantee),
			s.SelfJoinLeft, s.SelfJoinRight, s.ResultLowerBound)
		if err != nil {
			return 0, 0, err
		}
		return k1 * k2, k2, nil
	default:
		return defaultInstances, defaultGroups, nil
	}
}

// Mode selects how the estimators satisfy the paper's Assumption 1 (no
// shared endpoint coordinates between the joined inputs).
type Mode uint8

const (
	// ModeTransform (default) applies the Section 5.2 endpoint
	// transformation internally: the coordinate domain is tripled and the
	// right-hand (or query) side is shrunk by one augmented step. Exact
	// for the strict overlap join of Definition 1 on arbitrary inputs.
	ModeTransform Mode = iota
	// ModeCommonEndpoints maintains the explicit {I,E,L,U} endpoint
	// sketches of Appendix C instead: no domain growth, arbitrary inputs,
	// and the extended join of Definition 4 is also available.
	ModeCommonEndpoints
)

// String returns the mode's wire name ("transform" or
// "common-endpoints").
func (m Mode) String() string {
	switch m {
	case ModeTransform:
		return "transform"
	case ModeCommonEndpoints:
		return "common-endpoints"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// MaxLevelUncapped disables the Section 6.5 level cap when set as a
// MaxLevel (full dyadic covers on every level). Uncapped sketches have
// substantially higher variance on large domains - the top dyadic levels
// are shared by every object - so the default is an adaptive cap.
const MaxLevelUncapped = -1

// resolveMaxLevel turns the configured MaxLevel into the per-plan cap:
// positive values are explicit, MaxLevelUncapped disables the cap, and 0
// (the default) picks the Section 6.5 adaptive cap from the paper's
// object-length rule of thumb (len ~ sqrt(domain)): the variance-optimal
// cap is 2^ml ~ 3*len/sqrt(8), i.e. about half the domain's log plus a
// small constant. Callers who know their length distribution should set an
// explicit cap near log2(meanLen) + 0.1.
func resolveMaxLevel(configured int, domainSize uint64) int {
	switch {
	case configured > 0:
		return configured
	case configured < 0:
		return 0 // uncapped in core's convention (MaxLevel nil)
	default:
		h := log2ceil(domainSize)
		ml := h/2 + 2
		if ml < 1 {
			ml = 1
		}
		return ml
	}
}
