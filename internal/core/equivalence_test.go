package core

import (
	"testing"

	"repro/geo"
	"repro/internal/datagen"
)

// Equivalence properties of the batched update kernel and the sharded bulk
// loader: every path to the same multiset of inserts must produce
// bit-identical counters (sketches are deterministic linear projections of
// their input given the seed).

func equivPlan(t *testing.T, dims int) *Plan {
	t.Helper()
	logDom := make([]int, dims)
	for i := range logDom {
		logDom[i] = 8
	}
	return MustPlan(Config{
		Dims: dims, LogDomain: logDom, Instances: 48, Groups: 4, Seed: 1234,
	})
}

func equivRects(dims, n int, seed uint64) []geo.HyperRect {
	return datagen.MustRects(datagen.Spec{N: n, Dims: dims, Domain: 256, Seed: seed})
}

// TestCEInsertAllMatchesSequential: the sharded CE bulk path is
// bit-identical to repeated Insert.
func TestCEInsertAllMatchesSequential(t *testing.T) {
	p := equivPlan(t, 2)
	rects := equivRects(2, 300, 21)
	seq := p.NewCESketch()
	for _, r := range rects {
		if err := seq.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	bulk := p.NewCESketch()
	if err := bulk.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	if seq.Count() != bulk.Count() {
		t.Fatalf("counts differ: %d vs %d", seq.Count(), bulk.Count())
	}
	for i := range seq.counters {
		if seq.counters[i] != bulk.counters[i] {
			t.Fatalf("CE counter %d differs: %d vs %d", i, seq.counters[i], bulk.counters[i])
		}
	}
}

// TestRangeInsertAllMatchesSequential: same property for RangeSketch.
func TestRangeInsertAllMatchesSequential(t *testing.T) {
	p := equivPlan(t, 2)
	rects := equivRects(2, 300, 22)
	seq := p.NewRangeSketch()
	for _, r := range rects {
		if err := seq.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	bulk := p.NewRangeSketch()
	if err := bulk.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	for i := range seq.counters {
		if seq.counters[i] != bulk.counters[i] {
			t.Fatalf("range counter %d differs: %d vs %d", i, seq.counters[i], bulk.counters[i])
		}
	}
}

// TestPointBoxInsertAllMatchesSequential: same property for the two-sketch
// estimator's sketches.
func TestPointBoxInsertAllMatchesSequential(t *testing.T) {
	p := equivPlan(t, 2)
	rects := equivRects(2, 300, 23)
	pts := make([]geo.Point, len(rects))
	for i, r := range rects {
		pts[i] = geo.Point{r[0].Lo, r[1].Hi}
	}

	seqP, bulkP := p.NewPointSketch(), p.NewPointSketch()
	for _, pt := range pts {
		if err := seqP.Insert(pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulkP.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	for i := range seqP.counters {
		if seqP.counters[i] != bulkP.counters[i] {
			t.Fatalf("point counter %d differs", i)
		}
	}

	seqB, bulkB := p.NewBoxSketch(), p.NewBoxSketch()
	for _, r := range rects {
		if err := seqB.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bulkB.InsertAll(rects); err != nil {
		t.Fatal(err)
	}
	for i := range seqB.counters {
		if seqB.counters[i] != bulkB.counters[i] {
			t.Fatalf("box counter %d differs", i)
		}
	}
}

// TestShardedMergeMatchesSequential: splitting a stream across K separately
// built sketches and merging them equals one sequential build - the
// linearity behind both the parallel bulk loader and the public Merge API.
func TestShardedMergeMatchesSequential(t *testing.T) {
	p := equivPlan(t, 2)
	rects := equivRects(2, 400, 24)
	want := p.NewJoinSketch()
	for _, r := range rects {
		if err := want.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	const shards = 5
	merged := p.NewJoinSketch()
	per := (len(rects) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := min(lo+per, len(rects))
		sh := p.NewJoinSketch()
		if err := sh.InsertAll(rects[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != want.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), want.Count())
	}
	for i := range want.counters {
		if merged.counters[i] != want.counters[i] {
			t.Fatalf("counter %d differs after sharded merge: %d vs %d", i, merged.counters[i], want.counters[i])
		}
	}
}

// TestShardedBulkForcedWorkers pins the worker count above 1 so the
// goroutine fan-out, private shards and shard merge run even on single-CPU
// hosts (where bulkWorkers would otherwise collapse every load to the
// sequential branch), and checks bit-identity against repeated Insert for
// every sketch type.
func TestShardedBulkForcedWorkers(t *testing.T) {
	orig := bulkWorkers
	bulkWorkers = func(int) int { return 4 }
	defer func() { bulkWorkers = orig }()

	p := equivPlan(t, 2)
	rects := equivRects(2, 130, 25) // not a multiple of 4, exercises ragged chunks
	pts := make([]geo.Point, len(rects))
	for i, r := range rects {
		pts[i] = geo.Point{r[0].Lo, r[1].Hi}
	}

	jSeq, jBulk := p.NewJoinSketch(), p.NewJoinSketch()
	cSeq, cBulk := p.NewCESketch(), p.NewCESketch()
	rSeq, rBulk := p.NewRangeSketch(), p.NewRangeSketch()
	bSeq, bBulk := p.NewBoxSketch(), p.NewBoxSketch()
	pSeq, pBulk := p.NewPointSketch(), p.NewPointSketch()
	for _, r := range rects {
		for _, err := range []error{jSeq.Insert(r), cSeq.Insert(r), rSeq.Insert(r), bSeq.Insert(r)} {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, pt := range pts {
		if err := pSeq.Insert(pt); err != nil {
			t.Fatal(err)
		}
	}
	for _, err := range []error{jBulk.InsertAll(rects), cBulk.InsertAll(rects),
		rBulk.InsertAll(rects), bBulk.InsertAll(rects), pBulk.InsertAll(pts)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, pair := range map[string][2][]int64{
		"join":  {jSeq.counters, jBulk.counters},
		"ce":    {cSeq.counters, cBulk.counters},
		"range": {rSeq.counters, rBulk.counters},
		"box":   {bSeq.counters, bBulk.counters},
		"point": {pSeq.counters, pBulk.counters},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s counter %d differs under forced 4-worker bulk: %d vs %d",
					name, i, pair[1][i], pair[0][i])
			}
		}
	}
}

// TestMergeRejectsForeignPlans: every sketch type refuses cross-plan merge.
func TestMergeRejectsForeignPlans(t *testing.T) {
	a := equivPlan(t, 1)
	b := MustPlan(Config{Dims: 1, LogDomain: []int{8}, Instances: 48, Groups: 4, Seed: 999})
	if err := a.NewCESketch().Merge(b.NewCESketch()); err == nil {
		t.Error("CE cross-plan merge should fail")
	}
	if err := a.NewRangeSketch().Merge(b.NewRangeSketch()); err == nil {
		t.Error("range cross-plan merge should fail")
	}
	if err := a.NewPointSketch().Merge(b.NewPointSketch()); err == nil {
		t.Error("point cross-plan merge should fail")
	}
	if err := a.NewBoxSketch().Merge(b.NewBoxSketch()); err == nil {
		t.Error("box cross-plan merge should fail")
	}
}
