package spatial

import (
	"fmt"

	"repro/geo"
	"repro/internal/core"
	"repro/internal/dyadic"
	"repro/internal/exact"
)

// Planning helpers (Lemma 1 / Theorem 1).
//
// Sizing a sketch for an (eps, phi) guarantee needs bounds on the
// self-join sizes SJ(R), SJ(S) of the inputs and a lower bound on the
// result. The helpers below compute EXACT self-join sizes offline (one
// pass, memory linear in distinct cover entries) - the "historic data"
// route the paper describes in Section 2.3. Production deployments can
// instead carry forward the SJ of a previous load, which changes slowly
// for stable distributions (the property behind the flat space curve of
// Figure 8).

// SelfJoinSizeLeft returns the exact SJ(R) of a prospective left input
// under the given configuration (ModeTransform accounting: the data is
// endpoint-transformed exactly as the estimator would).
func SelfJoinSizeLeft(cfg JoinConfig, rects []geo.HyperRect) (float64, error) {
	return selfJoinSize(cfg, rects, false)
}

// SelfJoinSizeRight returns the exact SJ(S) of a prospective right input
// under the given configuration (the right side is shrunk, as the
// estimator would).
func SelfJoinSizeRight(cfg JoinConfig, rects []geo.HyperRect) (float64, error) {
	return selfJoinSize(cfg, rects, true)
}

func selfJoinSize(cfg JoinConfig, rects []geo.HyperRect, shrink bool) (float64, error) {
	if cfg.Mode != ModeTransform {
		return 0, fmt.Errorf("spatial: self-join planning helpers support ModeTransform only")
	}
	if cfg.Dims < 1 {
		return 0, fmt.Errorf("spatial: dims must be >= 1")
	}
	h := log2ceil(geo.TransformDomain(cfg.DomainSize))
	doms := make([]dyadic.Domain, cfg.Dims)
	ml := make([]int, cfg.Dims)
	cap := resolveMaxLevel(cfg.MaxLevel, cfg.DomainSize)
	for i := range doms {
		d, err := dyadic.New(h)
		if err != nil {
			return 0, err
		}
		doms[i] = d
		if cap > 0 {
			ml[i] = cap
		} else {
			ml[i] = h
		}
	}
	t := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		if shrink {
			t[i] = geo.TransformShrinkRect(r)
		} else {
			t[i] = geo.TransformKeepRect(r)
		}
	}
	sj, err := exact.SelfJoinSizes(doms, ml, t)
	if err != nil {
		return 0, err
	}
	return sj.Total, nil
}

// PlanJoin returns the (instances, groups) the Theorem 1-3 sizing demands
// for a join guarantee, given self-join size bounds and a result lower
// bound. Feed the result into Sizing{Instances, Groups} or use
// Sizing{Guarantee: ...} directly.
func PlanJoin(dims int, g Guarantee, sjLeft, sjRight, resultLowerBound float64) (instances, groups int, err error) {
	k1, k2, err := core.PlanJoinInstances(dims, core.Guarantee(g), sjLeft, sjRight, resultLowerBound)
	if err != nil {
		return 0, 0, err
	}
	return k1 * k2, k2, nil
}

// JoinGuaranteeSpaceWords returns the paper-accounting footprint of the
// synopsis PlanJoin would allocate - the quantity plotted in Figure 8.
func JoinGuaranteeSpaceWords(dims int, g Guarantee, sjLeft, sjRight, resultLowerBound float64) (int, error) {
	instances, _, err := PlanJoin(dims, g, sjLeft, sjRight, resultLowerBound)
	if err != nil {
		return 0, err
	}
	return core.JoinSpaceWords(dims, instances), nil
}

// JoinVarianceFactor exposes the paper's variance constant c(d) with
// Var[Z] <= c(d) * SJ(R) * SJ(S) (Theorem 3).
func JoinVarianceFactor(dims int) float64 { return core.JoinVarianceFactor(dims) }
