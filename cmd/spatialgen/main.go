// Command spatialgen generates synthetic spatial workloads as
// tab-separated coordinate files consumable by cmd/spatialest: one object
// per line, 2*dims columns (lo/hi per dimension; points repeat the
// coordinate).
//
// Usage:
//
//	spatialgen -n 10000 -dims 2 -domain 16384 -zipf 0 > rects.tsv
//	spatialgen -land LANDO -scale 0.25 > lando.tsv
//	spatialgen -points -n 5000 -dims 2 -domain 1024 > points.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/geo"
	"repro/internal/datagen"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of objects")
		dims    = flag.Int("dims", 2, "dimensionality")
		domain  = flag.Uint64("domain", 1<<14, "per-dimension domain size")
		zipf    = flag.Float64("zipf", 0, "position skew (0 = uniform)")
		meanLen = flag.Float64("meanlen", 0, "mean side length (default sqrt(domain))")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		points  = flag.Bool("points", false, "generate points instead of rectangles")
		land    = flag.String("land", "", "generate a land-use analog: LANDO, LANDC or SOIL")
		scale   = flag.Float64("scale", 1, "land preset scale in (0, 1]")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *land != "" {
		var d datagen.LandDataset
		switch strings.ToUpper(*land) {
		case "LANDO":
			d = datagen.Lando(*seed, *scale)
		case "LANDC":
			d = datagen.Landc(*seed, *scale)
		case "SOIL":
			d = datagen.Soil(*seed, *scale)
		default:
			fmt.Fprintf(os.Stderr, "spatialgen: unknown land preset %q\n", *land)
			os.Exit(2)
		}
		fmt.Fprintf(w, "# %s: %d objects, domain %d\n", d.Name, len(d.Rects), d.Domain)
		writeRects(w, d.Rects)
		return
	}

	spec := datagen.Spec{N: *n, Dims: *dims, Domain: *domain, Zipf: *zipf, Seed: *seed}
	if *meanLen > 0 {
		spec.MeanLen = make([]float64, *dims)
		for i := range spec.MeanLen {
			spec.MeanLen[i] = *meanLen
		}
	}
	if *points {
		pts, err := datagen.Points(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "# %d points, dims %d, domain %d\n", len(pts), *dims, *domain)
		for _, p := range pts {
			cols := make([]string, 0, 2*len(p))
			for _, x := range p {
				cols = append(cols, fmt.Sprint(x), fmt.Sprint(x))
			}
			fmt.Fprintln(w, strings.Join(cols, "\t"))
		}
		return
	}
	rects, err := datagen.Rects(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "# %d rects, dims %d, domain %d, zipf %g\n", len(rects), *dims, *domain, *zipf)
	writeRects(w, rects)
}

func writeRects(w *bufio.Writer, rects []geo.HyperRect) {
	for _, r := range rects {
		cols := make([]string, 0, 2*len(r))
		for _, iv := range r {
			cols = append(cols, fmt.Sprint(iv.Lo), fmt.Sprint(iv.Hi))
		}
		fmt.Fprintln(w, strings.Join(cols, "\t"))
	}
}
