// Streaming: maintain join-selectivity sketches over a stream of inserts
// AND deletes - the scenario the paper's introduction motivates (streaming
// spatial data, or huge tables where only one pass is affordable), and the
// capability grid histograms lack for skewed data.
//
// The example simulates a moving-objects feed: objects appear, live for a
// while, and disappear; the estimator tracks the join cardinality between
// the live sets of two feeds, checkpointing serialized sketches along the
// way (the distributed/edge-construction pattern).
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	spatial "repro"
	"repro/geo"
	"repro/internal/exact"
)

const (
	domain   = 1 << 12
	lifetime = 4000 // stream steps an object stays live
	steps    = 20000
)

func main() {
	est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims:       2,
		DomainSize: domain,
		Sizing:     spatial.Sizing{MemoryWords: 8192},
		Seed:       2024,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(3, 3))
	type tagged struct {
		rect  geo.HyperRect
		dies  int
		right bool
	}
	var live []tagged

	fmt.Println("step     |R|    |S|   estimate      exact   rel.err")
	for step := 0; step < steps; step++ {
		// One arrival per step, alternating feeds.
		t := tagged{
			rect:  randomRect(rng),
			dies:  step + lifetime/2 + int(rng.Uint64N(lifetime)),
			right: step%2 == 1,
		}
		live = append(live, t)
		var insErr error
		if t.right {
			insErr = est.InsertRight(t.rect)
		} else {
			insErr = est.InsertLeft(t.rect)
		}
		if insErr != nil {
			log.Fatal(insErr)
		}
		// Expire the dead: sketches are linear, so deletion is exact.
		kept := live[:0]
		for _, obj := range live {
			if obj.dies <= step {
				if obj.right {
					insErr = est.DeleteRight(obj.rect)
				} else {
					insErr = est.DeleteLeft(obj.rect)
				}
				if insErr != nil {
					log.Fatal(insErr)
				}
				continue
			}
			kept = append(kept, obj)
		}
		live = kept

		if (step+1)%4000 == 0 {
			card, err := est.Cardinality()
			if err != nil {
				log.Fatal(err)
			}
			// Ground truth over the live sets.
			var r, s []geo.HyperRect
			for _, obj := range live {
				if obj.right {
					s = append(s, obj.rect)
				} else {
					r = append(r, obj.rect)
				}
			}
			ex := float64(exact.JoinCount(r, s))
			fmt.Printf("%6d %6d %6d %10.0f %10.0f   %6.2f%%\n",
				step+1, est.LeftCount(), est.RightCount(), card.Clamped(), ex,
				100*relErr(card.Clamped(), ex))
		}
	}

	// Checkpoint: the synopsis (not the data!) can be serialized, shipped
	// and merged elsewhere.
	blob, err := est.MarshalLeft()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpointed left synopsis: %d bytes for %d live objects\n", len(blob), est.LeftCount())
}

func randomRect(rng *rand.Rand) geo.HyperRect {
	side := func() (uint64, uint64) {
		length := 32 + rng.Uint64N(256)
		lo := rng.Uint64N(domain - length)
		return lo, lo + length
	}
	xlo, xhi := side()
	ylo, yhi := side()
	return geo.Rect(xlo, xhi, ylo, yhi)
}

func relErr(est, ex float64) float64 {
	if ex == 0 {
		return 0
	}
	d := est - ex
	if d < 0 {
		d = -d
	}
	return d / ex
}
