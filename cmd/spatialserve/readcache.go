package main

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
)

// Cluster read cache: routing a strict (non-partial) estimate or info
// request gathers every partition's snapshot and merges them - an
// O(partitions x snapshot bytes) cost per read. But snapshots carry
// strong ETags, so a router can remember the last gather per base name
// and revalidate instead of refetch: steady state on a quiet estimator
// is N conditional GETs answering 304 with no bodies, and the cached
// merged servable is reused as-is (a "hit" in /metrics). Any partition
// answering 200 replaces its cached snapshot and the merge is rebuilt
// from the cached bytes of the still-fresh partitions plus the new ones
// (a "miss") - correctness never depends on the cache, only the
// transfer volume does.
//
// The partial read path (?partial=ok) bypasses the cache entirely: a
// degraded merge must never be remembered as the estimator's state.

// maxReadCacheEntries bounds the router's cache; above it an arbitrary
// entry is evicted (estimator working sets are small; this is a safety
// bound, not an LRU).
const maxReadCacheEntries = 128

// gatherCacheEntry is one base estimator's cached gather: per-partition
// validators and snapshot bytes, plus the servable merged from them.
type gatherCacheEntry struct {
	etags []string
	snaps [][]byte
	est   servable
}

// readCacheGet returns the cached entry for name, nil when absent.
func (c *clusterNode) readCacheGet(name string) *gatherCacheEntry {
	c.readCacheMu.Lock()
	defer c.readCacheMu.Unlock()
	return c.readCache[name]
}

// readCachePut installs an entry, evicting arbitrarily at the bound.
func (c *clusterNode) readCachePut(name string, e *gatherCacheEntry) {
	c.readCacheMu.Lock()
	defer c.readCacheMu.Unlock()
	if c.readCache == nil {
		c.readCache = make(map[string]*gatherCacheEntry)
	}
	if _, ok := c.readCache[name]; !ok && len(c.readCache) >= maxReadCacheEntries {
		for k := range c.readCache {
			delete(c.readCache, k)
			break
		}
	}
	c.readCache[name] = e
}

// readCacheDrop forgets a name (deleted estimators must not serve stale
// merges).
func (c *clusterNode) readCacheDrop(name string) {
	c.readCacheMu.Lock()
	defer c.readCacheMu.Unlock()
	delete(c.readCache, name)
}

// gatherCached is the strict gather path with revalidation: every
// partition is fetched conditionally against the cached validator, and
// the merge is only rebuilt when something actually changed.
func (c *clusterNode) gatherCached(ctx context.Context, name string) (servable, error) {
	prev := c.readCacheGet(name)
	type part struct {
		snap  []byte
		etag  string
		fresh bool // revalidated 304 against prev
	}
	parts, errs := cluster.Scatter(c.parts, func(p int) (part, error) {
		shard := cluster.ShardName(name, p)
		var inm string
		if prev != nil {
			inm = prev.etags[p]
		}
		data, etag, notModified, err := c.fetchShardSnapshotCond(ctx, shard, inm)
		if err != nil {
			return part{}, err
		}
		if notModified {
			return part{snap: prev.snaps[p], etag: inm, fresh: true}, nil
		}
		return part{snap: data, etag: etag}, nil
	})
	missing := 0
	for _, err := range errs {
		if errors.Is(err, errShardMissing) {
			missing++
		}
	}
	if missing == c.parts {
		c.readCacheDrop(name)
		return nil, errNotFoundLocal
	}
	if err := cluster.FirstError(errs); err != nil {
		return nil, err
	}
	if missing > 0 {
		return nil, fmt.Errorf("estimator %q is missing %d of %d partitions (partial create?)", name, missing, c.parts)
	}
	allFresh := prev != nil
	for _, pt := range parts {
		allFresh = allFresh && pt.fresh
	}
	if m := c.srv.metrics; m != nil {
		if allFresh {
			m.readCacheHits.Inc()
		} else {
			m.readCacheMisses.Inc()
		}
	}
	if allFresh {
		return prev.est, nil
	}
	entry := &gatherCacheEntry{etags: make([]string, c.parts), snaps: make([][]byte, c.parts)}
	var est servable
	for p, pt := range parts {
		if est == nil {
			var err error
			if est, err = restoreServable(pt.snap); err != nil {
				return nil, err
			}
		} else if err := est.mergeSnapshot(pt.snap); err != nil {
			return nil, err
		}
		entry.etags[p] = pt.etag
		entry.snaps[p] = pt.snap
	}
	entry.est = est
	c.readCachePut(name, entry)
	return est, nil
}
