package spatial

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/geo"
)

// Concurrency layer shared by every public estimator.
//
// Estimator state is split into ingestShards() independent shards, each a
// full sketch set built from the SAME plan and guarded by its own RWMutex.
// Point updates lock one shard, picked round-robin, so concurrent writers
// on different shards never contend; sketches are linear projections, so
// the sum of the shards is bit-identical to a single sequentially-loaded
// sketch regardless of which shard each update landed in.
//
// Readers (estimates, counts, snapshots) serve from an epoch-cached merged
// view: every shard carries an atomic write-version bumped under its write
// lock, and the estimator publishes an immutable merged sketch set through
// an atomic.Pointer, tagged with the shard-version vector it was folded
// from. A read whose version check passes is an O(1) pointer load - no
// locks, no counter copy; a stale read rebuilds the view single-flight
// (one builder folds, concurrent readers wait and reuse the result, so
// readers never stampede the fold and writers never block on readers
// beyond one per-shard counter copy). With a single shard (GOMAXPROCS 1)
// the cache is skipped entirely and the reader borrows the shard state
// under its read lock - zero copies, same as before.
//
// Consistency is unchanged from the fold-per-read design: an update
// completes only after bumping its shard version inside the write lock, so
// a view that passes the version check reflects every update that
// completed before the read began, and every view is a state the estimator
// could have reached sequentially - never a torn shard. Views are
// immutable once published: view callbacks must treat the state as
// read-only, which also lets deterministic estimates be memoized per view
// (see viewMemo).

// maxIngestShards caps per-estimator shard fan-out: shards multiply the
// counter memory, and past a handful of concurrent writers the round-robin
// spread already keeps lock contention negligible.
const maxIngestShards = 8

// ingestShardsOverride pins the shard count of estimators built while it is
// non-zero. Test/benchmark hook (see export_test.go).
var ingestShardsOverride int

// viewCacheOff forces the legacy fold-per-read path, bypassing the epoch
// view cache. Test hook for cache/fold equivalence (see export_test.go).
var viewCacheOff bool

// viewCacheHits / viewCacheMisses count, process-wide across every
// estimator, reads served from an adopted epoch-cached view versus reads
// that had to rebuild the merged view. Single-shard estimators borrow
// state under a read lock and touch neither counter.
var viewCacheHits, viewCacheMisses atomic.Uint64

// ViewCacheStats returns the process-wide epoch view-cache hit and miss
// totals since start. A hit is a multi-shard read served from an adopted
// cached view; a miss is a read that rebuilt (folded) the merged view.
// Exposed for observability endpoints; both counters are monotone.
func ViewCacheStats() (hits, misses uint64) {
	return viewCacheHits.Load(), viewCacheMisses.Load()
}

// viewRebuildObserver, when set, is called after every view-cache
// rebuild (a miss that folded the shards) with the fold's start time and
// duration. See SetViewRebuildObserver.
var viewRebuildObserver atomic.Pointer[func(start time.Time, d time.Duration)]

// SetViewRebuildObserver registers fn to observe every epoch view-cache
// rebuild, process-wide: fn receives the fold's wall-clock start and
// duration after the rebuilt view is published. Servers use it to turn
// rebuild cost into trace spans. fn must be fast and must not call back
// into the estimator; nil unregisters. Safe for concurrent use with
// reads, though typically set once at startup.
func SetViewRebuildObserver(fn func(start time.Time, d time.Duration)) {
	if fn == nil {
		viewRebuildObserver.Store(nil)
		return
	}
	viewRebuildObserver.Store(&fn)
}

// ingestShards picks the shard count for a new estimator.
func ingestShards() int {
	n := ingestShardsOverride
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxIngestShards {
		n = maxIngestShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardedState holds the sharded sketch state of one estimator. T is the
// estimator's per-shard sketch bundle (e.g. the left and right sketches of
// a join estimator).
type shardedState[T any] struct {
	rr     atomic.Uint32
	shards []lockedShard[T]

	// tap, when set, observes every point/bulk update before it is applied
	// (see tap.go). It is called outside the shard locks.
	tap atomic.Pointer[UpdateTap]

	// Epoch view cache (multi-shard estimators only).
	cache    atomic.Pointer[cachedView[T]]
	buildMu  sync.Mutex    // single-flight view rebuild
	buildSeq atomic.Uint64 // bumped when a rebuild STARTS folding
}

type lockedShard[T any] struct {
	mu      sync.RWMutex
	version atomic.Uint64 // write-epoch, bumped under mu before unlock
	state   T
	_       [16]byte // keep neighbouring shard locks off one cache line
}

// cachedView is one published immutable merged view: the folded state, the
// shard-version vector it was built from, and per-view memo slots for
// deterministic estimates computed against it.
type cachedView[T any] struct {
	state    T
	versions [maxIngestShards]uint64
	foldSeq  uint64 // buildSeq value when this view's fold began
	memos    [memoSlots]atomic.Pointer[viewMemo]
}

// Memo slots: one per deterministic read-path result an estimator caches on
// a view. Parameterless results (join cardinalities, self-joins) key on
// nil; the range slot is a single-entry memo keyed by the query rectangle.
const (
	memoCardinality = iota // strict join / point-in-box estimate + counts
	memoExtended           // Definition 4 extended join + counts
	memoSelfJoinLeft
	memoSelfJoinRight
	memoRange // range estimate + count, keyed by query
	memoSlots
)

// viewMemo is one memoized estimate: the (owned) query key, the estimate
// and up to two counts read from the same view.
type viewMemo struct {
	key    geo.HyperRect // nil for parameterless slots
	est    Estimate
	c1, c2 int64
}

// viewRef is the per-call handle to one consistent estimator view. For
// multi-shard estimators state points at the shared epoch-cached merged
// sketch set and cv at its memo table; for single-shard estimators (and
// with the cache disabled) state is owned or borrowed and cv is nil.
type viewRef[T any] struct {
	state T
	cv    *cachedView[T]
}

// memoized returns the slot's cached result when its key matches, running
// compute and publishing the result otherwise. compute must be
// deterministic against the view (sketch states are immutable once
// published, so it is). The stored Estimate - GroupMeans slice included -
// is shared by every caller that hits the memo; Estimate documents the
// resulting read-only contract.
func (v viewRef[T]) memoized(slot int, key geo.HyperRect, compute func() (Estimate, int64, int64, error)) (Estimate, int64, int64, error) {
	if v.cv == nil {
		return compute()
	}
	if m := v.cv.memos[slot].Load(); m != nil && rectsEqual(m.key, key) {
		return m.est, m.c1, m.c2, nil
	}
	est, c1, c2, err := compute()
	if err == nil {
		m := &viewMemo{est: est, c1: c1, c2: c2}
		if key != nil {
			m.key = append(geo.HyperRect(nil), key...) // callers may reuse their slice
		}
		v.cv.memos[slot].Store(m)
	}
	return est, c1, c2, err
}

func rectsEqual(a, b geo.HyperRect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newShardedState builds n shards via mk.
func newShardedState[T any](n int, mk func() T) *shardedState[T] {
	ss := &shardedState[T]{shards: make([]lockedShard[T], n)}
	for i := range ss.shards {
		ss.shards[i].state = mk()
	}
	return ss
}

// ingest runs fn on one shard under its write lock. Shards are picked
// round-robin so concurrent writers spread out. The shard's write-version
// is bumped before the lock is released, so the update is visible to the
// view cache's staleness check as soon as it completes.
func (ss *shardedState[T]) ingest(fn func(T) error) error {
	sh := &ss.shards[int(ss.rr.Add(1)%uint32(len(ss.shards)))]
	sh.mu.Lock()
	defer func() {
		sh.version.Add(1)
		sh.mu.Unlock()
	}()
	return fn(sh.state)
}

// ingestFirst runs fn on shard 0 under its write lock - the designated
// merge target, so merged-in state is never spread thinner than it was.
func (ss *shardedState[T]) ingestFirst(fn func(T) error) error {
	sh := &ss.shards[0]
	sh.mu.Lock()
	defer func() {
		sh.version.Add(1)
		sh.mu.Unlock()
	}()
	return fn(sh.state)
}

// fold runs fn on every shard in order, each under its read lock. fn must
// only read the shard state (typically merging its counters into an owned
// accumulator).
func (ss *shardedState[T]) fold(fn func(T) error) error {
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.RLock()
		err := fn(sh.state)
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// view hands a consistent view of the estimator to fn. With one shard the
// state is borrowed under the read lock (no copy, no cache); otherwise fn
// runs lock-free against the current epoch-cached merged view, rebuilt
// single-flight when stale. fn must not retain the state or mutate it -
// multi-shard views are shared by concurrent readers.
func (ss *shardedState[T]) view(mk func() T, merge func(dst, src T) error, fn func(viewRef[T]) error) error {
	if len(ss.shards) == 1 {
		sh := &ss.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return fn(viewRef[T]{state: sh.state})
	}
	if viewCacheOff {
		acc, err := ss.snapshot(mk, merge)
		if err != nil {
			return err
		}
		return fn(viewRef[T]{state: acc})
	}
	cv, err := ss.currentView(mk, merge)
	if err != nil {
		return err
	}
	return fn(viewRef[T]{state: cv.state, cv: cv})
}

// fresh reports whether no shard has been written since v was built.
func (ss *shardedState[T]) fresh(v *cachedView[T]) bool {
	for i := range ss.shards {
		if ss.shards[i].version.Load() != v.versions[i] {
			return false
		}
	}
	return true
}

// currentView returns a published view that reflects every update completed
// before the call, rebuilding single-flight when the cache is stale.
func (ss *shardedState[T]) currentView(mk func() T, merge func(dst, src T) error) (*cachedView[T], error) {
	if v := ss.cache.Load(); v != nil && ss.fresh(v) {
		viewCacheHits.Add(1)
		return v, nil
	}
	arrive := ss.buildSeq.Load()
	ss.buildMu.Lock()
	defer ss.buildMu.Unlock()
	if v := ss.cache.Load(); v != nil && (ss.fresh(v) || v.foldSeq > arrive) {
		// Either nothing changed since v was folded, or another reader
		// STARTED folding v after this one arrived (foldSeq is bumped
		// before the fold's first shard read) - so every per-shard read of
		// v happened after this call began and v reflects every update
		// this reader must see. Adopting such a view even when newer
		// writes have already made it stale again keeps a fast writer from
		// forcing waiting readers to rebuild in lock-step. Publication
		// order alone would NOT be enough: a view published after this
		// reader arrived can still have read its first shards before an
		// update that completed just before this call.
		viewCacheHits.Add(1)
		return v, nil
	}
	viewCacheMisses.Add(1)
	foldStart := time.Now()
	v := &cachedView[T]{state: mk(), foldSeq: ss.buildSeq.Add(1)}
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.RLock()
		v.versions[i] = sh.version.Load()
		err := merge(v.state, sh.state)
		sh.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}
	ss.cache.Store(v)
	if fn := viewRebuildObserver.Load(); fn != nil {
		(*fn)(foldStart, time.Since(foldStart))
	}
	return v, nil
}

// snapshot returns an owned merged copy of the estimator state, safe to
// use after every lock is released and never shared with the view cache.
// Merging two estimators copies the source this way first, so concurrent
// a.Merge(b) and b.Merge(a) cannot deadlock: no goroutine ever holds locks
// of both estimators at once.
func (ss *shardedState[T]) snapshot(mk func() T, merge func(dst, src T) error) (T, error) {
	acc := mk()
	err := ss.fold(func(s T) error { return merge(acc, s) })
	return acc, err
}
