package histogram

import (
	"math"
	"testing"

	"repro/geo"
	"repro/internal/datagen"
	"repro/internal/exact"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewGH(-1, 64); err == nil {
		t.Error("negative level should fail")
	}
	if _, err := NewGH(16, 1<<20); err == nil {
		t.Error("huge level should fail")
	}
	if _, err := NewGH(3, 100); err == nil {
		t.Error("non-divisible domain should fail")
	}
	if _, err := NewEH(3, 100); err == nil {
		t.Error("non-divisible domain should fail (EH)")
	}
	if _, err := NewEH(-1, 64); err == nil {
		t.Error("negative level should fail (EH)")
	}
}

func TestWordsAccounting(t *testing.T) {
	// GH of level L uses 4^(L+1) words (paper Section 7).
	for _, l := range []int{0, 2, 4, 6} {
		gh, err := NewGH(l, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		for i := 0; i <= l; i++ {
			want *= 4
		}
		if gh.Words() != want {
			t.Errorf("GH level %d words = %d, want %d", l, gh.Words(), want)
		}
	}
	// EH of level L uses 9*2^(2L) - 6*2^L + 1 words.
	for _, l := range []int{1, 3, 6} {
		eh, err := NewEH(l, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		g := 1 << uint(l)
		want := 9*g*g - 6*g + 1
		if eh.Words() != want {
			t.Errorf("EH level %d words = %d, want %d", l, eh.Words(), want)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	gh, _ := NewGH(2, 64)
	if err := gh.Insert(geo.Span1D(0, 5)); err == nil {
		t.Error("1-d insert should fail")
	}
	if err := gh.Insert(geo.Rect(0, 80, 0, 5)); err == nil {
		t.Error("out-of-domain insert should fail")
	}
	eh, _ := NewEH(2, 64)
	if err := eh.Insert(geo.Span1D(0, 5)); err == nil {
		t.Error("1-d insert should fail (EH)")
	}
	if err := eh.Insert(geo.Rect(0, 80, 0, 5)); err == nil {
		t.Error("out-of-domain insert should fail (EH)")
	}
}

func TestGHSingleCellGeometry(t *testing.T) {
	// One rectangle inside one cell of a 2x2 grid over a 64-domain.
	gh, _ := NewGH(1, 64)
	if err := gh.Insert(geo.Rect(4, 10, 8, 20)); err != nil {
		t.Fatal(err)
	}
	// All 4 corners in cell (0,0); area 6*12 = 72; horizontal edges 2*6;
	// vertical edges 2*12.
	if gh.corners[0] != 4 {
		t.Errorf("corners = %g", gh.corners[0])
	}
	if gh.areas[0] != 72 {
		t.Errorf("area = %g", gh.areas[0])
	}
	if gh.hlen[0] != 12 {
		t.Errorf("hlen = %g", gh.hlen[0])
	}
	if gh.vlen[0] != 24 {
		t.Errorf("vlen = %g", gh.vlen[0])
	}
}

func TestGHSpanningGeometry(t *testing.T) {
	// A rectangle spanning both columns of a 2x2 grid over 64: x in
	// [16, 48], y in [4, 12].
	gh, _ := NewGH(1, 64)
	if err := gh.Insert(geo.Rect(16, 48, 4, 12)); err != nil {
		t.Fatal(err)
	}
	// Cells (0,0) and (1,0) each get clipped area 16*8 = 128.
	if gh.areas[0] != 128 || gh.areas[1] != 128 {
		t.Errorf("areas = %g, %g", gh.areas[0], gh.areas[1])
	}
	// Corners: (16,4),(16,12) in cell 0; (48,4),(48,12) in cell 1.
	if gh.corners[0] != 2 || gh.corners[1] != 2 {
		t.Errorf("corners = %g, %g", gh.corners[0], gh.corners[1])
	}
	// Horizontal edges clipped to 16 per cell, both edges -> 32 per cell.
	if gh.hlen[0] != 32 || gh.hlen[1] != 32 {
		t.Errorf("hlen = %g, %g", gh.hlen[0], gh.hlen[1])
	}
	// Vertical edges: x=16 in cell 0, x=48 in cell 1, each of length 8.
	if gh.vlen[0] != 8 || gh.vlen[1] != 8 {
		t.Errorf("vlen = %g, %g", gh.vlen[0], gh.vlen[1])
	}
}

func TestGHDeleteInverse(t *testing.T) {
	gh, _ := NewGH(3, 512)
	rects := datagen.MustRects(datagen.Spec{N: 50, Dims: 2, Domain: 512, Seed: 4})
	for _, r := range rects {
		if err := gh.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	extra := geo.Rect(100, 300, 50, 400)
	if err := gh.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := gh.Delete(extra); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewGH(3, 512)
	for _, r := range rects {
		_ = ref.Insert(r)
	}
	for i := range ref.areas {
		if math.Abs(gh.areas[i]-ref.areas[i]) > 1e-9 || gh.corners[i] != ref.corners[i] {
			t.Fatalf("cell %d differs after delete", i)
		}
	}
	if gh.Count() != ref.Count() {
		t.Fatal("count differs")
	}
}

func TestEHEulerIdentity(t *testing.T) {
	// Every object contributes cells - edges + vertices = 1 over the whole
	// grid.
	eh, _ := NewEH(3, 512)
	rects := datagen.MustRects(datagen.Spec{N: 80, Dims: 2, Domain: 512, Seed: 9})
	for _, r := range rects {
		if err := eh.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := eh.EstimateIntersecting(0, 0, eh.g-1, eh.g-1)
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(len(rects)) {
		t.Fatalf("Euler total = %g, want %d", got, len(rects))
	}
}

func TestEHAlignedRegionExact(t *testing.T) {
	// For grid-aligned query regions the Euler count is exact: compare
	// against the exact intersecting-object count.
	const dom = 256
	eh, _ := NewEH(3, dom) // 8x8 cells of width 32
	rects := datagen.MustRects(datagen.Spec{N: 120, Dims: 2, Domain: dom, Seed: 13})
	for _, r := range rects {
		if err := eh.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	regions := [][4]int{{0, 0, 3, 3}, {2, 1, 6, 5}, {4, 4, 7, 7}, {1, 1, 1, 1}}
	for _, reg := range regions {
		got, err := eh.EstimateIntersecting(reg[0], reg[1], reg[2], reg[3])
		if err != nil {
			t.Fatal(err)
		}
		// Count objects whose interior intersects the aligned region.
		q := geo.Rect(uint64(reg[0])*32, uint64(reg[2]+1)*32, uint64(reg[1])*32, uint64(reg[3]+1)*32)
		var want float64
		for _, r := range rects {
			if r.Overlaps(q) {
				want++
			}
		}
		if got != want {
			t.Fatalf("region %v: Euler count %g, exact %g", reg, got, want)
		}
	}
	if _, err := eh.EstimateIntersecting(-1, 0, 0, 0); err == nil {
		t.Error("bad region should fail")
	}
	if _, err := eh.EstimateIntersecting(3, 3, 2, 2); err == nil {
		t.Error("inverted region should fail")
	}
}

func TestEHDeleteInverse(t *testing.T) {
	eh, _ := NewEH(3, 512)
	rects := datagen.MustRects(datagen.Spec{N: 40, Dims: 2, Domain: 512, Seed: 21})
	for _, r := range rects {
		if err := eh.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	extra := geo.Rect(0, 511, 0, 511)
	if err := eh.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := eh.Delete(extra); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewEH(3, 512)
	for _, r := range rects {
		_ = ref.Insert(r)
	}
	for i := range ref.cellN {
		if ref.cellN[i] != eh.cellN[i] || math.Abs(ref.cellA[i]-eh.cellA[i]) > 1e-9 {
			t.Fatalf("cell %d differs after delete", i)
		}
	}
	for i := range ref.vertN {
		if ref.vertN[i] != eh.vertN[i] {
			t.Fatalf("vertex %d differs after delete", i)
		}
	}
}

// TestJoinEstimatesReasonable: on uniform data both histogram estimators
// land within a factor band of the exact join size (they are biased
// heuristics, not guaranteed estimators - the paper's point - but on
// uniform data their models hold well).
func TestJoinEstimatesReasonable(t *testing.T) {
	const dom = 1 << 10
	r := datagen.MustRects(datagen.Spec{N: 800, Dims: 2, Domain: dom, Seed: 31})
	s := datagen.MustRects(datagen.Spec{N: 800, Dims: 2, Domain: dom, Seed: 32})
	want := float64(exact.JoinCount(r, s))
	if want == 0 {
		t.Fatal("degenerate workload")
	}
	for _, level := range []int{2, 3, 4} {
		gh1, _ := NewGH(level, dom)
		gh2, _ := NewGH(level, dom)
		eh1, _ := NewEH(level, dom)
		eh2, _ := NewEH(level, dom)
		for _, x := range r {
			_ = gh1.Insert(x)
			_ = eh1.Insert(x)
		}
		for _, x := range s {
			_ = gh2.Insert(x)
			_ = eh2.Insert(x)
		}
		ghEst, err := GHJoinEstimate(gh1, gh2)
		if err != nil {
			t.Fatal(err)
		}
		ehEst, err := EHJoinEstimate(eh1, eh2)
		if err != nil {
			t.Fatal(err)
		}
		if ghEst < want/3 || ghEst > want*3 {
			t.Errorf("level %d: GH estimate %g vs exact %g outside 3x band", level, ghEst, want)
		}
		if ehEst < want/3 || ehEst > want*3 {
			t.Errorf("level %d: EH estimate %g vs exact %g outside 3x band", level, ehEst, want)
		}
	}
}

// TestGHModelBiasNestedObjects documents the baseline's inherent model
// bias: for nested full-domain objects the per-cell uniform-placement
// model predicts edge crossings that never happen, so GH systematically
// overestimates (it never underestimates here: the corner-in-area events
// are all real). This bias - no guarantees, data-dependent error - is
// precisely the behaviour the paper contrasts the sketches against.
func TestGHModelBiasNestedObjects(t *testing.T) {
	const dom = 256
	gh1, _ := NewGH(2, dom)
	gh2, _ := NewGH(2, dom)
	for i := 0; i < 5; i++ {
		if err := gh1.Insert(geo.Rect(1, dom-2, 1, dom-2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 7; i++ {
		if err := gh2.Insert(geo.Rect(2, dom-3, 2, dom-3)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := GHJoinEstimate(gh1, gh2)
	if err != nil {
		t.Fatal(err)
	}
	const exact = 35 // every pair overlaps
	if est < exact {
		t.Fatalf("GH nested estimate %g below the true count %d: the corner events alone account for that", est, exact)
	}
	if est > 6*exact {
		t.Fatalf("GH nested estimate %g implausibly large (exact %d)", est, exact)
	}
}

// TestEHVertexDedup: two relations of identical full-domain objects - the
// vertex/edge Euler terms must keep the estimate at ~n*m rather than
// ~n*m*#cells.
func TestEHVertexDedup(t *testing.T) {
	const dom = 256
	eh1, _ := NewEH(3, dom)
	eh2, _ := NewEH(3, dom)
	for i := 0; i < 4; i++ {
		if err := eh1.Insert(geo.Rect(1, dom-2, 1, dom-2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := eh2.Insert(geo.Rect(1, dom-2, 1, dom-2)); err != nil {
			t.Fatal(err)
		}
	}
	est, err := EHJoinEstimate(eh1, eh2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-24) > 1 {
		t.Fatalf("EH full-span estimate %g, want 24", est)
	}
}

func TestJoinEstimateShapeMismatch(t *testing.T) {
	a, _ := NewGH(2, 64)
	b, _ := NewGH(3, 64)
	if _, err := GHJoinEstimate(a, b); err == nil {
		t.Error("level mismatch should fail")
	}
	c, _ := NewEH(2, 64)
	d, _ := NewEH(2, 128)
	if _, err := EHJoinEstimate(c, d); err == nil {
		t.Error("domain mismatch should fail")
	}
}
