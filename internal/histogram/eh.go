package histogram

import (
	"fmt"

	"repro/geo"
)

// EH is a generalized Euler Histogram (Sun et al.) over 2-d rectangles.
// A level-L grid induces a cell complex with 2^L x 2^L cells, interior
// edge faces between adjacent cells, and interior vertex faces. The
// histogram counts, for every face, the objects whose interior intersects
// it; cells additionally store summed intersection widths and heights and
// edges the summed extent along the edge direction, enabling the
// probabilistic join model below. The storage is
//
//	cells: 4 g^2 words (count, width, height, area)
//	vertical edges: 2 g(g-1), horizontal edges: 2 g(g-1)
//	vertices: (g-1)^2
//
// totalling 9 g^2 - 6 g + 1 = 9*2^{2L} - 6*2^L + 1 words, exactly the
// paper's accounting (Section 7).
//
// The Euler-characteristic identity - every object contributes
// (#cells) - (#edges) + (#vertices) = 1 - makes aligned region counts
// exact (EstimateIntersecting) and deduplicates pairs spanning multiple
// cells in the join model.
type EH struct {
	level  int
	g      int
	domain uint64
	cw     float64

	cellN []float64 // objects intersecting the cell
	cellW []float64 // summed clipped widths
	cellH []float64 // summed clipped heights
	cellA []float64 // summed clipped areas

	vedgeN []float64 // objects crossing vertical edge faces, g-1 x g
	vedgeH []float64 // summed clipped heights at those faces
	hedgeN []float64 // objects crossing horizontal edge faces, g x g-1
	hedgeW []float64 // summed clipped widths
	vertN  []float64 // objects covering interior vertices, (g-1)^2

	count int64
}

// NewEH returns an empty generalized Euler Histogram of the given level
// over a square domain of the given per-dimension size (divisible by 2^L).
func NewEH(level int, domain uint64) (*EH, error) {
	if level < 0 || level > 15 {
		return nil, fmt.Errorf("histogram: EH level %d outside [0, 15]", level)
	}
	g := 1 << uint(level)
	if domain == 0 || domain%uint64(g) != 0 {
		return nil, fmt.Errorf("histogram: domain %d not divisible by 2^%d", domain, level)
	}
	return &EH{
		level: level, g: g, domain: domain, cw: float64(domain) / float64(g),
		cellN:  make([]float64, g*g),
		cellW:  make([]float64, g*g),
		cellH:  make([]float64, g*g),
		cellA:  make([]float64, g*g),
		vedgeN: make([]float64, (g-1)*g),
		vedgeH: make([]float64, (g-1)*g),
		hedgeN: make([]float64, g*(g-1)),
		hedgeW: make([]float64, g*(g-1)),
		vertN:  make([]float64, (g-1)*(g-1)),
	}, nil
}

// Level returns the grid level L.
func (h *EH) Level() int { return h.level }

// Words returns the paper's memory accounting: 9*2^{2L} - 6*2^L + 1.
func (h *EH) Words() int { return 9*h.g*h.g - 6*h.g + 1 }

// Count returns the number of inserted objects.
func (h *EH) Count() int64 { return h.count }

func (h *EH) cellIndex(x uint64) int {
	w := h.domain / uint64(h.g)
	i := int(x / w)
	if i >= h.g {
		i = h.g - 1
	}
	return i
}

func (h *EH) cellRange(a, b uint64) (int, int) {
	w := h.domain / uint64(h.g)
	lo := h.cellIndex(a)
	var hi int
	if b > a && b%w == 0 {
		hi = int(b/w) - 1
	} else {
		hi = h.cellIndex(b)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Insert adds a rectangle.
func (h *EH) Insert(r geo.HyperRect) error { return h.update(r, +1) }

// Delete removes a previously inserted rectangle exactly.
func (h *EH) Delete(r geo.HyperRect) error { return h.update(r, -1) }

func (h *EH) update(r geo.HyperRect, sign float64) error {
	if len(r) != 2 {
		return fmt.Errorf("histogram: EH supports 2-d rectangles, got %d dims", len(r))
	}
	for i, iv := range r {
		if iv.Hi >= h.domain {
			return fmt.Errorf("histogram: coordinate %d outside domain %d in dim %d", iv.Hi, h.domain, i)
		}
	}
	a, b := float64(r[0].Lo), float64(r[0].Hi)
	c, d := float64(r[1].Lo), float64(r[1].Hi)
	x0, x1 := h.cellRange(r[0].Lo, r[0].Hi)
	y0, y1 := h.cellRange(r[1].Lo, r[1].Hi)
	for iy := y0; iy <= y1; iy++ {
		cy0, cy1 := float64(iy)*h.cw, float64(iy+1)*h.cw
		oy := minF(d, cy1) - maxF(c, cy0)
		for ix := x0; ix <= x1; ix++ {
			cx0, cx1 := float64(ix)*h.cw, float64(ix+1)*h.cw
			ox := minF(b, cx1) - maxF(a, cx0)
			ci := iy*h.g + ix
			h.cellN[ci] += sign
			h.cellW[ci] += sign * ox
			h.cellH[ci] += sign * oy
			h.cellA[ci] += sign * ox * oy
			// Vertical edge face to the right of this cell: crossed if the
			// object's interior spans the grid line x = (ix+1)*cw.
			if ix < x1 {
				ei := iy*(h.g-1) + ix
				h.vedgeN[ei] += sign
				h.vedgeH[ei] += sign * oy
			}
			// Horizontal edge face above this cell.
			if iy < y1 {
				ei := iy*h.g + ix
				h.hedgeN[ei] += sign
				h.hedgeW[ei] += sign * ox
			}
			// Interior vertex at the cell's top-right corner.
			if ix < x1 && iy < y1 {
				h.vertN[iy*(h.g-1)+ix] += sign
			}
		}
	}
	h.count += int64(sign)
	return nil
}

// EstimateIntersecting returns the number of objects whose interior
// intersects the grid-aligned region covering cell columns [cx0, cx1] and
// rows [cy0, cy1] (inclusive), via the Euler identity
// sum(cells) - sum(edges) + sum(vertices). For grid-aligned regions the
// count is exact - the classical Euler histogram property.
func (h *EH) EstimateIntersecting(cx0, cy0, cx1, cy1 int) (float64, error) {
	if cx0 < 0 || cy0 < 0 || cx1 >= h.g || cy1 >= h.g || cx0 > cx1 || cy0 > cy1 {
		return 0, fmt.Errorf("histogram: bad cell region (%d,%d)-(%d,%d)", cx0, cy0, cx1, cy1)
	}
	var sum float64
	for iy := cy0; iy <= cy1; iy++ {
		for ix := cx0; ix <= cx1; ix++ {
			sum += h.cellN[iy*h.g+ix]
			if ix < cx1 {
				sum -= h.vedgeN[iy*(h.g-1)+ix]
			}
			if iy < cy1 {
				sum -= h.hedgeN[iy*h.g+ix]
			}
			if ix < cx1 && iy < cy1 {
				sum += h.vertN[iy*(h.g-1)+ix]
			}
		}
	}
	return sum, nil
}

// EHJoinEstimate estimates |R join_o S| from the generalized Euler
// Histograms of R and S using the per-face probabilistic model: within a
// face of width W and height H holding pieces of average extent (w_R, h_R)
// and (w_S, h_S), two uniformly placed pieces overlap with probability
// min(1, (w_R+w_S)/W) * min(1, (h_R+h_S)/H) (the uniformity model of
// Mamoulis/Papadias that Sun et al. build on). Pairs spanning several
// cells are deduplicated with the Euler signs: cells - edges + vertices.
//
// The per-face uniformity assumption is the model error the paper
// highlights: small per-bucket biases accumulate as the grid refines,
// which is exactly the erratic EH behaviour of Figures 9-11.
func EHJoinEstimate(x, y *EH) (float64, error) {
	if x.level != y.level || x.domain != y.domain {
		return 0, fmt.Errorf("histogram: EH shape mismatch (level %d/%d, domain %d/%d)", x.level, y.level, x.domain, y.domain)
	}
	W := x.cw
	pOverlap := func(extSumA, nA, extSumB, nB float64) float64 {
		if nA == 0 || nB == 0 {
			return 0
		}
		p := (extSumA/nA + extSumB/nB) / W
		if p > 1 {
			p = 1
		}
		return p
	}
	var est float64
	g := x.g
	for iy := 0; iy < g; iy++ {
		for ix := 0; ix < g; ix++ {
			ci := iy*g + ix
			nR, nS := x.cellN[ci], y.cellN[ci]
			if nR > 0 && nS > 0 {
				px := pOverlap(x.cellW[ci], nR, y.cellW[ci], nS)
				py := pOverlap(x.cellH[ci], nR, y.cellH[ci], nS)
				est += nR * nS * px * py
			}
			if ix < g-1 {
				ei := iy*(g-1) + ix
				nRe, nSe := x.vedgeN[ei], y.vedgeN[ei]
				if nRe > 0 && nSe > 0 {
					// Both cross the same vertical line; they overlap in x
					// for sure, in y per the model.
					py := pOverlap(x.vedgeH[ei], nRe, y.vedgeH[ei], nSe)
					est -= nRe * nSe * py
				}
			}
			if iy < g-1 {
				ei := iy*g + ix
				nRe, nSe := x.hedgeN[ei], y.hedgeN[ei]
				if nRe > 0 && nSe > 0 {
					px := pOverlap(x.hedgeW[ei], nRe, y.hedgeW[ei], nSe)
					est -= nRe * nSe * px
				}
			}
			if ix < g-1 && iy < g-1 {
				vi := iy*(g-1) + ix
				// Both cover the vertex: they certainly overlap.
				est += x.vertN[vi] * y.vertN[vi]
			}
		}
	}
	if est < 0 {
		est = 0
	}
	return est, nil
}
