package spatial

import (
	"fmt"
	"math/bits"

	"repro/geo"
	"repro/internal/core"
)

// JoinConfig configures a spatial join estimator.
type JoinConfig struct {
	// Dims is the data dimensionality (1 = interval joins, 2 = rectangle
	// joins, higher per Section 6.1).
	Dims int
	// DomainSize is the per-dimension coordinate domain: all inserted
	// coordinates must be < DomainSize. (Internally the domain is tripled
	// and padded to a power of two in ModeTransform.)
	DomainSize uint64
	// Sizing picks the number of atomic instances; see Sizing.
	Sizing Sizing
	// MaxLevel caps the dyadic level of covers (Section 6.5 adaptive
	// sketches). Positive values are explicit (good values sit near
	// log2 of the mean object side length plus one); 0 picks an adaptive
	// default from the domain size; MaxLevelUncapped disables the cap.
	MaxLevel int
	// Mode selects transform-based (default) or explicit common-endpoint
	// handling.
	Mode Mode
	// Seed makes the synopsis deterministic; both sides derive their
	// correlated xi-families from it.
	Seed uint64
}

// joinState is one ingest shard of a join estimator: exactly one sketch
// pair is non-nil, per mode.
type joinState struct {
	left, right     *core.JoinSketch
	leftCE, rightCE *core.CESketch
}

// JoinEstimator estimates the cardinality and selectivity of the spatial
// join R join_o S (Definition 1) from single-pass synopses of R (the
// "left" input) and S (the "right" input). It supports inserts and
// deletes on both sides and, in ModeCommonEndpoints, also the extended
// join of Definition 4.
//
// A JoinEstimator is safe for concurrent use: updates go to per-shard
// sketches behind sharded locks, and estimates/snapshots fold the shards
// into an owned view, holding each shard lock only while copying its
// counters (see shard.go).
type JoinEstimator struct {
	cfg  JoinConfig
	plan *core.Plan
	st   *shardedState[*joinState]
}

// NewJoinEstimator validates the configuration and allocates the synopsis.
func NewJoinEstimator(cfg JoinConfig) (*JoinEstimator, error) {
	if cfg.Dims < 1 || cfg.Dims > core.MaxDims {
		return nil, fmt.Errorf("spatial: dims %d outside [1, %d]", cfg.Dims, core.MaxDims)
	}
	if cfg.DomainSize < 2 {
		return nil, fmt.Errorf("spatial: domain size must be >= 2, got %d", cfg.DomainSize)
	}
	words := core.JoinWordsPerRelation(cfg.Dims)
	if cfg.Mode == ModeCommonEndpoints {
		words = core.CEJoinWordsPerRelation(cfg.Dims)
	}
	instances, groups, err := cfg.Sizing.resolve(cfg.Dims, words)
	if err != nil {
		return nil, err
	}
	size := cfg.DomainSize
	if cfg.Mode == ModeTransform {
		size = geo.TransformDomain(size)
	}
	h := log2ceil(size)
	logDom := make([]int, cfg.Dims)
	var maxLevel []int
	for i := range logDom {
		logDom[i] = h
	}
	if ml := resolveMaxLevel(cfg.MaxLevel, cfg.DomainSize); ml > 0 {
		maxLevel = make([]int, cfg.Dims)
		for i := range maxLevel {
			maxLevel[i] = ml
		}
	}
	plan, err := core.NewPlan(core.Config{
		Dims: cfg.Dims, LogDomain: logDom, MaxLevel: maxLevel,
		Instances: instances, Groups: groups, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	e := &JoinEstimator{cfg: cfg, plan: plan}
	e.st = newShardedState(ingestShards(), e.newState)
	return e, nil
}

// newState allocates one empty shard's sketch pair.
func (e *JoinEstimator) newState() *joinState {
	if e.cfg.Mode == ModeCommonEndpoints {
		return &joinState{leftCE: e.plan.NewCESketch(), rightCE: e.plan.NewCESketch()}
	}
	return &joinState{left: e.plan.NewJoinSketch(), right: e.plan.NewJoinSketch()}
}

// mergeJoinState folds src's counters into dst (exact, by linearity).
func mergeJoinState(dst, src *joinState) error {
	if dst.leftCE != nil {
		if err := dst.leftCE.Merge(src.leftCE); err != nil {
			return err
		}
		return dst.rightCE.Merge(src.rightCE)
	}
	if err := dst.left.Merge(src.left); err != nil {
		return err
	}
	return dst.right.Merge(src.right)
}

// withView runs fn on a consistent read-only view of the whole estimator.
func (e *JoinEstimator) withView(fn func(viewRef[*joinState]) error) error {
	return e.st.view(e.newState, mergeJoinState, fn)
}

// cardinalityView computes (estimate, left count, right count) for the
// strict or extended join from one epoch view, memoized per view.
// Cardinality, CardinalityWithCounts, their extended variants and
// Selectivity all route through here: one kernel run per view serves every
// caller, and all of them see counts consistent with the estimate.
func (e *JoinEstimator) cardinalityView(extended bool) (est Estimate, left, right int64, err error) {
	slot := memoCardinality
	if extended {
		slot = memoExtended
	}
	err = e.withView(func(v viewRef[*joinState]) error {
		var err error
		est, left, right, err = v.memoized(slot, nil, func() (Estimate, int64, int64, error) {
			s := v.state
			var ce core.Estimate
			var err error
			switch {
			case extended:
				ce, err = core.EstimateJoinExtCE(s.leftCE, s.rightCE)
			case s.leftCE != nil:
				ce, err = core.EstimateJoinCE(s.leftCE, s.rightCE)
			default:
				ce, err = core.EstimateJoin(s.left, s.right)
			}
			if err != nil {
				return Estimate{}, 0, 0, err
			}
			var l, r int64
			if s.leftCE != nil {
				l, r = s.leftCE.Count(), s.rightCE.Count()
			} else {
				l, r = s.left.Count(), s.right.Count()
			}
			return fromCore(ce), l, r, nil
		})
		return err
	})
	return est, left, right, err
}

// Config returns the estimator's configuration.
func (e *JoinEstimator) Config() JoinConfig { return e.cfg }

// Instances returns the number of atomic estimator instances maintained.
func (e *JoinEstimator) Instances() int { return e.plan.Instances() }

// Groups returns the number of median groups (k2).
func (e *JoinEstimator) Groups() int { return e.plan.Groups() }

// SpaceWords returns the synopsis footprint in the paper's word accounting
// (counters plus seed words for both sides; Section 4.1.5 / Section 7).
// Ingest sharding replicates counters per shard at runtime; the paper
// accounting describes the logical (merged, serialized) synopsis.
func (e *JoinEstimator) SpaceWords() int {
	if e.cfg.Mode == ModeCommonEndpoints {
		// 4^d counters per side plus d seed words per instance.
		per := 2*pow(4, e.cfg.Dims) + e.cfg.Dims
		return e.plan.Instances() * per
	}
	return core.JoinSpaceWords(e.cfg.Dims, e.plan.Instances())
}

func (e *JoinEstimator) checkInput(r geo.HyperRect) error {
	if len(r) != e.cfg.Dims {
		return fmt.Errorf("spatial: object dimensionality %d, want %d", len(r), e.cfg.Dims)
	}
	for i, iv := range r {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("spatial: invalid interval [%d, %d] in dim %d", iv.Lo, iv.Hi, i)
		}
		if iv.Hi >= e.cfg.DomainSize {
			return fmt.Errorf("spatial: coordinate %d outside domain %d in dim %d", iv.Hi, e.cfg.DomainSize, i)
		}
		if iv.IsPoint() {
			return fmt.Errorf("spatial: degenerate interval [%d, %d] in dim %d: the overlap join of Definition 1 assumes objects with extent (Section 4.1); use range or epsilon-join estimators for point data", iv.Lo, iv.Hi, i)
		}
	}
	return nil
}

// InsertLeft adds an object to the left input (R).
func (e *JoinEstimator) InsertLeft(r geo.HyperRect) error { return e.updateLeft(r, true) }

// DeleteLeft removes a previously inserted left object.
func (e *JoinEstimator) DeleteLeft(r geo.HyperRect) error { return e.updateLeft(r, false) }

// InsertRight adds an object to the right input (S).
func (e *JoinEstimator) InsertRight(r geo.HyperRect) error { return e.updateRight(r, true) }

// DeleteRight removes a previously inserted right object.
func (e *JoinEstimator) DeleteRight(r geo.HyperRect) error { return e.updateRight(r, false) }

func (e *JoinEstimator) updateLeft(r geo.HyperRect, insert bool) error {
	if err := e.checkInput(r); err != nil {
		return err
	}
	if err := e.st.tapRecord1(opOf(insert), SideLeft, r, nil); err != nil {
		return err
	}
	return e.ingestLeft(r, insert)
}

func (e *JoinEstimator) ingestLeft(r geo.HyperRect, insert bool) error {
	return e.st.ingest(func(s *joinState) error {
		if s.leftCE != nil {
			if insert {
				return s.leftCE.Insert(r)
			}
			return s.leftCE.Delete(r)
		}
		t := geo.TransformKeepRect(r)
		if insert {
			return s.left.Insert(t)
		}
		return s.left.Delete(t)
	})
}

func (e *JoinEstimator) updateRight(r geo.HyperRect, insert bool) error {
	if err := e.checkInput(r); err != nil {
		return err
	}
	if err := e.st.tapRecord1(opOf(insert), SideRight, r, nil); err != nil {
		return err
	}
	return e.ingestRight(r, insert)
}

func (e *JoinEstimator) ingestRight(r geo.HyperRect, insert bool) error {
	return e.st.ingest(func(s *joinState) error {
		if s.rightCE != nil {
			if insert {
				return s.rightCE.Insert(r)
			}
			return s.rightCE.Delete(r)
		}
		t := geo.TransformShrinkRect(r)
		if insert {
			return s.right.Insert(t)
		}
		return s.right.Delete(t)
	})
}

// InsertLeftBulk bulk-loads the left input (parallelized internally in
// ModeTransform).
func (e *JoinEstimator) InsertLeftBulk(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := e.checkInput(r); err != nil {
			return err
		}
	}
	if err := e.st.tapRects(OpInsert, SideLeft, rects); err != nil {
		return err
	}
	var t []geo.HyperRect
	if e.cfg.Mode == ModeTransform {
		t = make([]geo.HyperRect, len(rects))
		for i, r := range rects {
			t[i] = geo.TransformKeepRect(r)
		}
	}
	return e.st.ingest(func(s *joinState) error {
		if s.leftCE != nil {
			return s.leftCE.InsertAll(rects)
		}
		return s.left.InsertAll(t)
	})
}

// InsertRightBulk bulk-loads the right input.
func (e *JoinEstimator) InsertRightBulk(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := e.checkInput(r); err != nil {
			return err
		}
	}
	if err := e.st.tapRects(OpInsert, SideRight, rects); err != nil {
		return err
	}
	var t []geo.HyperRect
	if e.cfg.Mode == ModeTransform {
		t = make([]geo.HyperRect, len(rects))
		for i, r := range rects {
			t[i] = geo.TransformShrinkRect(r)
		}
	}
	return e.st.ingest(func(s *joinState) error {
		if s.rightCE != nil {
			return s.rightCE.InsertAll(rects)
		}
		return s.right.InsertAll(t)
	})
}

// SetUpdateTap installs tap to observe every point/bulk update before it
// is applied (see UpdateTap); nil removes it. Updates that fail input
// validation are not tapped; Merge and MergeSnapshot fold counters rather
// than update streams and are not tapped either.
func (e *JoinEstimator) SetUpdateTap(tap UpdateTap) { e.st.setTap(tap) }

// Apply replays one update record through the estimator's public update
// path - the inverse of the tap: feeding every tapped record of one
// estimator into Apply on a same-config empty estimator reconstructs its
// counters bit-identically (updates commute, so order does not matter).
func (e *JoinEstimator) Apply(rec UpdateRecord) error {
	if rec.Rect == nil {
		return fmt.Errorf("spatial: join estimators take rects, record carries a point")
	}
	switch {
	case rec.Side == SideLeft && rec.Op == OpInsert:
		return e.InsertLeft(rec.Rect)
	case rec.Side == SideLeft && rec.Op == OpDelete:
		return e.DeleteLeft(rec.Rect)
	case rec.Side == SideRight && rec.Op == OpInsert:
		return e.InsertRight(rec.Rect)
	case rec.Side == SideRight && rec.Op == OpDelete:
		return e.DeleteRight(rec.Rect)
	}
	return fmt.Errorf("spatial: join estimators have no %v side", rec.Side)
}

// ValidateRecord checks rec against this estimator's input contract -
// exactly the validation Apply performs - without applying it. A record
// that passes can be journaled ahead of its apply: the later
// Apply/ApplyUntapped cannot fail validation.
func (e *JoinEstimator) ValidateRecord(rec UpdateRecord) error {
	if rec.Rect == nil {
		return fmt.Errorf("spatial: join estimators take rects, record carries a point")
	}
	if rec.Side != SideLeft && rec.Side != SideRight {
		return fmt.Errorf("spatial: join estimators have no %v side", rec.Side)
	}
	return e.checkInput(rec.Rect)
}

// ApplyUntapped replays rec like Apply but without notifying the update
// tap - for callers that already journaled the record themselves and
// must not observe it a second time. Validation is identical to Apply.
func (e *JoinEstimator) ApplyUntapped(rec UpdateRecord) error {
	if err := e.ValidateRecord(rec); err != nil {
		return err
	}
	if rec.Side == SideLeft {
		return e.ingestLeft(rec.Rect, rec.Op == OpInsert)
	}
	return e.ingestRight(rec.Rect, rec.Op == OpInsert)
}

// LeftCount returns the current left input cardinality (inserts minus
// deletes).
func (e *JoinEstimator) LeftCount() int64 {
	var n int64
	e.st.fold(func(s *joinState) error {
		if s.leftCE != nil {
			n += s.leftCE.Count()
		} else {
			n += s.left.Count()
		}
		return nil
	})
	return n
}

// RightCount returns the right input cardinality.
func (e *JoinEstimator) RightCount() int64 {
	var n int64
	e.st.fold(func(s *joinState) error {
		if s.rightCE != nil {
			n += s.rightCE.Count()
		} else {
			n += s.right.Count()
		}
		return nil
	})
	return n
}

// Cardinality estimates |R join_o S| (strict overlap, Definition 1).
func (e *JoinEstimator) Cardinality() (Estimate, error) {
	est, _, _, err := e.cardinalityView(false)
	return est, err
}

// CardinalityExtended estimates the extended join |R join+_o S| of
// Definition 4 (objects meeting at their boundaries count). Only available
// in ModeCommonEndpoints.
func (e *JoinEstimator) CardinalityExtended() (Estimate, error) {
	if e.cfg.Mode != ModeCommonEndpoints {
		return Estimate{}, fmt.Errorf("spatial: extended join requires ModeCommonEndpoints")
	}
	est, _, _, err := e.cardinalityView(true)
	return est, err
}

// CardinalityWithCounts returns Cardinality together with the input
// cardinalities, all read from the same consistent view - under
// concurrent writers, the counts are guaranteed to be the ones the
// estimate was computed against (Cardinality followed by LeftCount can
// interleave with updates).
func (e *JoinEstimator) CardinalityWithCounts() (est Estimate, left, right int64, err error) {
	return e.cardinalityView(false)
}

// CardinalityExtendedWithCounts is CardinalityWithCounts for the extended
// join of Definition 4 (ModeCommonEndpoints only).
func (e *JoinEstimator) CardinalityExtendedWithCounts() (est Estimate, left, right int64, err error) {
	if e.cfg.Mode != ModeCommonEndpoints {
		return Estimate{}, 0, 0, fmt.Errorf("spatial: extended join requires ModeCommonEndpoints")
	}
	return e.cardinalityView(true)
}

// Selectivity estimates |R join_o S| / (|R| * |S|).
func (e *JoinEstimator) Selectivity() (float64, error) {
	est, nl, nr, err := e.cardinalityView(false)
	if err != nil {
		return 0, err
	}
	if nl <= 0 || nr <= 0 {
		return 0, fmt.Errorf("spatial: selectivity undefined for empty inputs (%d, %d)", nl, nr)
	}
	return est.Clamped() / (float64(nl) * float64(nr)), nil
}

// selfJoinView estimates SJ of one side from its own synopsis, memoized per
// view.
func (e *JoinEstimator) selfJoinView(slot int) (Estimate, error) {
	var est Estimate
	err := e.withView(func(v viewRef[*joinState]) error {
		var err error
		est, _, _, err = v.memoized(slot, nil, func() (Estimate, int64, int64, error) {
			side := v.state.left
			if slot == memoSelfJoinRight {
				side = v.state.right
			}
			return fromCore(side.EstimateSelfJoin()), 0, 0, nil
		})
		return err
	})
	return est, err
}

// EstimateSelfJoinLeft estimates SJ(R) from the left synopsis itself
// (E[X_w^2] = SJ(X_w), the original AMS identity) - the input the
// Theorem 1 planner needs, with no offline pass. ModeTransform only.
func (e *JoinEstimator) EstimateSelfJoinLeft() (Estimate, error) {
	if e.cfg.Mode != ModeTransform {
		return Estimate{}, fmt.Errorf("spatial: self-join estimation is supported in ModeTransform only")
	}
	return e.selfJoinView(memoSelfJoinLeft)
}

// EstimateSelfJoinRight estimates SJ(S) from the right synopsis.
func (e *JoinEstimator) EstimateSelfJoinRight() (Estimate, error) {
	if e.cfg.Mode != ModeTransform {
		return Estimate{}, fmt.Errorf("spatial: self-join estimation is supported in ModeTransform only")
	}
	return e.selfJoinView(memoSelfJoinRight)
}

// header returns the full public configuration of this estimator, the
// unit of comparison for every merge and snapshot operation.
func (e *JoinEstimator) header() snapHeader {
	return snapHeader{
		kind:       KindJoin,
		dims:       uint32(e.cfg.Dims),
		domainSize: e.cfg.DomainSize,
		mode:       uint32(e.cfg.Mode),
		maxLevel:   int32(resolveMaxLevel(e.cfg.MaxLevel, e.cfg.DomainSize)),
		seed:       e.cfg.Seed,
		instances:  uint64(e.plan.Instances()),
		groups:     uint64(e.plan.Groups()),
	}
}

// Merge folds the synopses of other into e: afterwards e summarizes the
// union of both estimators' inputs, exactly as if every object had been
// inserted into e directly (sketches are linear projections, so the merge
// is exact, not approximate). The full public configurations must match -
// in particular the same Seed (shared xi-families) and the same DomainSize
// (1000 and 1024 round to the same internal plan but enforce different
// input bounds, so they do NOT merge). other is not modified.
//
// This is the shard-and-combine pattern for distributed construction:
// build one estimator per data shard (separate goroutines, processes or
// machines - see MergeSnapshot for the serialized variant), then merge.
// Merge is safe under concurrency; other is snapshotted first, so no
// goroutine ever holds locks of both estimators at once.
func (e *JoinEstimator) Merge(other *JoinEstimator) error {
	if err := e.header().compatible(other.header()); err != nil {
		return err
	}
	snap, err := other.st.snapshot(other.newState, mergeJoinState)
	if err != nil {
		return err
	}
	return e.st.ingestFirst(func(s *joinState) error { return mergeJoinState(s, snap) })
}

// Marshal serializes the whole estimator - both synopses plus the full
// public configuration - into a versioned snapshot envelope. The snapshot
// round-trips through UnmarshalJoinEstimator to a working estimator whose
// estimates are bit-identical to this one's. Both modes are supported.
func (e *JoinEstimator) Marshal() ([]byte, error) {
	var blobs [][]byte
	err := e.withView(func(v viewRef[*joinState]) error {
		s := v.state
		var lb, rb []byte
		var err error
		if s.leftCE != nil {
			if lb, err = s.leftCE.MarshalBinary(); err != nil {
				return err
			}
			rb, err = s.rightCE.MarshalBinary()
		} else {
			if lb, err = s.left.MarshalBinary(); err != nil {
				return err
			}
			rb, err = s.right.MarshalBinary()
		}
		blobs = [][]byte{lb, rb}
		return err
	})
	if err != nil {
		return nil, err
	}
	h := e.header()
	h.side = sideBoth
	return marshalEnvelope(h, blobs), nil
}

// UnmarshalJoinEstimator reconstructs a working estimator from a Marshal
// snapshot: configuration, counters and counts all round-trip.
func UnmarshalJoinEstimator(data []byte) (*JoinEstimator, error) {
	h, blobs, err := unmarshalEnvelope(data)
	if err != nil {
		return nil, err
	}
	if err := h.expectBlobs(blobs, KindJoin, 2); err != nil {
		return nil, err
	}
	if h.side != sideBoth {
		return nil, fmt.Errorf("spatial: %v-side snapshot cannot reconstruct a full estimator; use MergeLeftFrom/MergeRightFrom", h.side)
	}
	e, err := newEstimatorFromHeader(h)
	if err != nil {
		return nil, err
	}
	return e, e.mergeBlobs(blobs)
}

// newEstimatorFromHeader rebuilds an empty estimator from snapshot
// configuration and cross-checks that the rebuilt estimator derives the
// exact header it was built from (catching tampered or inconsistent
// sizing fields at decode time).
func newEstimatorFromHeader(h snapHeader) (*JoinEstimator, error) {
	e, err := NewJoinEstimator(JoinConfig{
		Dims:       int(h.dims),
		DomainSize: h.domainSize,
		Sizing:     Sizing{Instances: int(h.instances), Groups: int(h.groups)},
		MaxLevel:   configuredMaxLevel(h.maxLevel),
		Mode:       Mode(h.mode),
		Seed:       h.seed,
	})
	if err != nil {
		return nil, err
	}
	got := e.header()
	got.side = h.side
	if err := got.compatible(h); err != nil {
		return nil, fmt.Errorf("spatial: inconsistent snapshot configuration: %w", err)
	}
	return e, nil
}

// mergeBlobs folds a snapshot's two core sketches into shard 0.
func (e *JoinEstimator) mergeBlobs(blobs [][]byte) error {
	if e.cfg.Mode == ModeCommonEndpoints {
		l, err := core.UnmarshalCESketch(blobs[0])
		if err != nil {
			return err
		}
		r, err := core.UnmarshalCESketch(blobs[1])
		if err != nil {
			return err
		}
		return e.st.ingestFirst(func(s *joinState) error {
			if err := s.leftCE.Merge(l); err != nil {
				return err
			}
			return s.rightCE.Merge(r)
		})
	}
	l, err := core.UnmarshalJoinSketch(blobs[0])
	if err != nil {
		return err
	}
	r, err := core.UnmarshalJoinSketch(blobs[1])
	if err != nil {
		return err
	}
	return e.st.ingestFirst(func(s *joinState) error {
		if err := s.left.Merge(l); err != nil {
			return err
		}
		return s.right.Merge(r)
	})
}

// MergeSnapshot folds a Marshal snapshot produced by another estimator
// into this one. Any public-config mismatch - kind, dims, DomainSize,
// Mode, level cap, Seed, sizing - is rejected at decode time.
func (e *JoinEstimator) MergeSnapshot(data []byte) error {
	h, blobs, err := unmarshalEnvelope(data)
	if err != nil {
		return err
	}
	if err := h.expectBlobs(blobs, KindJoin, 2); err != nil {
		return err
	}
	if h.side != sideBoth {
		return fmt.Errorf("spatial: MergeSnapshot needs a full snapshot, got a %v-side one", h.side)
	}
	if err := e.header().compatible(h); err != nil {
		return err
	}
	return e.mergeBlobs(blobs)
}

// MarshalLeft serializes one side's synopsis (full public configuration
// included), so sketches can be built near the data and shipped for
// estimation. Only supported in ModeTransform.
func (e *JoinEstimator) MarshalLeft() ([]byte, error) { return e.marshalSide(sideLeft) }

// MarshalRight serializes the right synopsis.
func (e *JoinEstimator) MarshalRight() ([]byte, error) { return e.marshalSide(sideRight) }

func (e *JoinEstimator) marshalSide(side snapSide) ([]byte, error) {
	if e.cfg.Mode != ModeTransform {
		return nil, fmt.Errorf("spatial: single-side serialization is supported in ModeTransform only; Marshal snapshots whole estimators in either mode")
	}
	var blob []byte
	err := e.withView(func(v viewRef[*joinState]) error {
		var err error
		if side == sideLeft {
			blob, err = v.state.left.MarshalBinary()
		} else {
			blob, err = v.state.right.MarshalBinary()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	h := e.header()
	h.side = side
	return marshalEnvelope(h, [][]byte{blob}), nil
}

// MergeLeftFrom merges a serialized left synopsis (produced by MarshalLeft
// on another estimator) into this one - the distributed-construction
// pattern. The full public configuration must match; a mismatch (including
// DomainSize differences the internal plan cannot see) fails here instead
// of corrupting counters.
func (e *JoinEstimator) MergeLeftFrom(data []byte) error { return e.mergeSideFrom(data, sideLeft) }

// MergeRightFrom merges a serialized right synopsis into this one.
func (e *JoinEstimator) MergeRightFrom(data []byte) error { return e.mergeSideFrom(data, sideRight) }

func (e *JoinEstimator) mergeSideFrom(data []byte, side snapSide) error {
	if e.cfg.Mode != ModeTransform {
		return fmt.Errorf("spatial: single-side serialization is supported in ModeTransform only")
	}
	h, blobs, err := unmarshalEnvelope(data)
	if err != nil {
		return err
	}
	if err := h.expectBlobs(blobs, KindJoin, 1); err != nil {
		return err
	}
	if h.side != side {
		return fmt.Errorf("spatial: snapshot holds the %v side, want %v", h.side, side)
	}
	want := e.header()
	want.side = side
	if err := want.compatible(h); err != nil {
		return err
	}
	other, err := core.UnmarshalJoinSketch(blobs[0])
	if err != nil {
		return err
	}
	return e.st.ingestFirst(func(s *joinState) error {
		if side == sideLeft {
			return s.left.Merge(other)
		}
		return s.right.Merge(other)
	})
}

func log2ceil(x uint64) int {
	if x <= 1 {
		return 0
	}
	return bits.Len64(x - 1)
}

func pow(base, exp int) int {
	n := 1
	for i := 0; i < exp; i++ {
		n *= base
	}
	return n
}

// configuredMaxLevel maps a snapshot's resolved level cap back to the
// MaxLevel configuration field that resolves to it.
func configuredMaxLevel(resolved int32) int {
	if resolved == 0 {
		return MaxLevelUncapped
	}
	return int(resolved)
}
