package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildServe compiles the spatialserve binary the harness drives.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spatialserve")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/spatialserve")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spatialserve: %v\n%s", err, out)
	}
	return bin
}

// TestLoadHarnessScriptedRun is the PR's acceptance gate: a 3-node
// cluster driven through steady-state, rebalance-under-load and
// SIGKILL-failover-with-promote, with the byte-exactness oracle on at
// every quiesce point and a benchfmt report at the end.
func TestLoadHarnessScriptedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process load run in -short mode")
	}
	bin := buildServe(t)
	phases, err := parseScenario("steady:2s,rebalance:3s,failover:4s")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Binary:          bin,
		Nodes:           3,
		Partitions:      4,
		DataRoot:        t.TempDir(),
		Tenants:         []string{"acme"},
		UpdateWorkers:   3,
		StreamWorkers:   2,
		EstimateWorkers: 2,
		BatchSize:       8,
		ZipfS:           1.2,
		Dom:             1 << 10,
		Seed:            42,
		Oracle:          true,
		Phases:          phases,
		Log:             testWriter{t},
		Stderr:          os.Stderr,
	}
	start := time.Now()
	doc, err := runLoad(cfg)
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	t.Logf("run completed in %v, %d benchmark records", time.Since(start), len(doc.Benchmarks))

	if doc.Context["acked_ops"] == "0" {
		t.Fatal("no acked operations recorded - the workload did nothing")
	}
	// Every phase must have produced update and estimate samples, and
	// the failover phase must carry stream samples (sessions survive the
	// cutover via Flush-drain before the SIGKILL).
	wantClasses := map[string]bool{
		"Load/steady/update":      true,
		"Load/steady/estimate":    true,
		"Load/steady/stream":      true,
		"Load/rebalance/update":   true,
		"Load/rebalance/estimate": true,
		"Load/failover/update":    true,
	}
	for _, rec := range doc.Benchmarks {
		if rec.Pkg != "repro/cmd/spatialload" {
			t.Errorf("record %q has pkg %q", rec.Name, rec.Pkg)
		}
		delete(wantClasses, rec.Name)
		if rec.Metrics["ops"] == 0 && rec.Metrics["errors"] == 0 {
			t.Errorf("record %q is empty", rec.Name)
		}
		for _, k := range []string{"p50_ns", "p95_ns", "p99_ns", "max_ns", "ops_per_sec"} {
			if _, ok := rec.Metrics[k]; !ok {
				t.Errorf("record %q missing metric %q", rec.Name, k)
			}
		}
	}
	for name := range wantClasses {
		t.Errorf("no benchmark record for %s", name)
	}
}

// TestParseScenario pins the scenario mini-language.
func TestParseScenario(t *testing.T) {
	phases, err := parseScenario("steady:1s, ramp:2s,rebalance:6s,failover:3s")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("got %d phases, want 4", len(phases))
	}
	if phases[1].Ramp != true || phases[0].Ramp {
		t.Error("ramp flag wrong")
	}
	if phases[2].Rebalance != 3 {
		t.Errorf("rebalance moves = %d, want 3 (6s / 2s)", phases[2].Rebalance)
	}
	if !phases[3].Failover {
		t.Error("failover flag not set")
	}
	for _, bad := range []string{"", "warp:1s", "steady", "steady:xx"} {
		if _, err := parseScenario(bad); err == nil {
			t.Errorf("parseScenario(%q) accepted", bad)
		}
	}
}

// TestHistQuantiles pins the bucket math: quantiles report the bucket
// lower bound, within one sub-bucket (12.5%) of the true value.
func TestHistQuantiles(t *testing.T) {
	h := &hist{}
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n != 1000 {
		t.Fatalf("n = %d", h.n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.quantile(tc.q)
		lo, hi := tc.want*7/8, tc.want
		if got < lo || got > hi {
			t.Errorf("quantile(%v) = %v, want in [%v, %v]", tc.q, got, lo, hi)
		}
	}
	if h.max != 1000*time.Microsecond {
		t.Errorf("max = %v", h.max)
	}
}

// testWriter adapts t.Logf for the harness's progress log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
