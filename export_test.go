package spatial

// Test/benchmark hooks into the concurrency layer. Compiled into test
// binaries only.

// SetIngestShardsForTest pins the ingest shard count of estimators built
// until the returned restore func runs, regardless of GOMAXPROCS - so
// multi-shard read paths (the epoch view cache) are exercised even on a
// single-core CI box.
func SetIngestShardsForTest(n int) (restore func()) {
	prev := ingestShardsOverride
	ingestShardsOverride = n
	return func() { ingestShardsOverride = prev }
}

// SetViewCacheForTest enables or disables the epoch view cache. With the
// cache off, multi-shard reads fall back to the fold-per-read path, the
// reference for cache/fold equivalence tests.
func SetViewCacheForTest(on bool) (restore func()) {
	prev := viewCacheOff
	viewCacheOff = !on
	return func() { viewCacheOff = prev }
}
