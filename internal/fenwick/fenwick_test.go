package fenwick

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	f := New(10)
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Add(0, 3)
	f.Add(4, 2)
	f.Add(9, 5)
	if got := f.PrefixSum(0); got != 3 {
		t.Errorf("PrefixSum(0) = %d", got)
	}
	if got := f.PrefixSum(4); got != 5 {
		t.Errorf("PrefixSum(4) = %d", got)
	}
	if got := f.PrefixSum(9); got != 10 {
		t.Errorf("PrefixSum(9) = %d", got)
	}
	if got := f.PrefixSum(-1); got != 0 {
		t.Errorf("PrefixSum(-1) = %d", got)
	}
	if got := f.PrefixSum(100); got != 10 {
		t.Errorf("PrefixSum(overflow) = %d", got)
	}
	if got := f.RangeSum(1, 4); got != 2 {
		t.Errorf("RangeSum(1,4) = %d", got)
	}
	if got := f.RangeSum(4, 1); got != 0 {
		t.Errorf("RangeSum(4,1) = %d", got)
	}
	if got := f.SuffixSum(5); got != 5 {
		t.Errorf("SuffixSum(5) = %d", got)
	}
	if got := f.SuffixSum(0); got != 10 {
		t.Errorf("SuffixSum(0) = %d", got)
	}
	if got := f.Total(); got != 10 {
		t.Errorf("Total = %d", got)
	}
	f.Add(4, -2)
	if got := f.Total(); got != 8 {
		t.Errorf("Total after delete = %d", got)
	}
	f.Reset()
	if f.Total() != 0 || f.PrefixSum(9) != 0 {
		t.Error("Reset did not zero the tree")
	}
}

func TestAgainstNaive(t *testing.T) {
	const n = 64
	f := New(n)
	naive := make([]int64, n)
	rng := rand.New(rand.NewPCG(2, 2))
	for step := 0; step < 5000; step++ {
		i := int(rng.Uint64N(n))
		delta := int64(rng.Uint64N(11)) - 5
		f.Add(i, delta)
		naive[i] += delta
		q := int(rng.Uint64N(n))
		var want int64
		for j := 0; j <= q; j++ {
			want += naive[j]
		}
		if got := f.PrefixSum(q); got != want {
			t.Fatalf("step %d: PrefixSum(%d) = %d, want %d", step, q, got, want)
		}
		var suffix int64
		for j := q; j < n; j++ {
			suffix += naive[j]
		}
		if got := f.SuffixSum(q); got != suffix {
			t.Fatalf("step %d: SuffixSum(%d) = %d, want %d", step, q, got, suffix)
		}
	}
}

func TestQuickPrefixInvariant(t *testing.T) {
	f := func(vals []int8, q uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tree := New(len(vals))
		var total int64
		for i, v := range vals {
			tree.Add(i, int64(v))
			total += int64(v)
		}
		if tree.Total() != total {
			return false
		}
		idx := int(q) % len(vals)
		var want int64
		for j := 0; j <= idx; j++ {
			want += int64(vals[j])
		}
		return tree.PrefixSum(idx) == want &&
			tree.PrefixSum(idx)+tree.SuffixSum(idx+1) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	f := New(5)
	for _, fn := range []func(){
		func() { f.Add(-1, 1) },
		func() { f.Add(5, 1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZeroLength(t *testing.T) {
	f := New(0)
	if f.Total() != 0 || f.PrefixSum(0) != 0 || f.SuffixSum(0) != 0 {
		t.Fatal("zero-length tree misbehaves")
	}
}
