package spatial_test

import (
	"fmt"

	spatial "repro"
	"repro/geo"
)

// ExampleNewJoinEstimator sketches two tiny rectangle relations and
// estimates their join cardinality. With a generous synopsis relative to
// the data, the estimate recovers the exact count.
func ExampleNewJoinEstimator() {
	est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims:       2,
		DomainSize: 64,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       7,
	})
	if err != nil {
		panic(err)
	}
	// R: two rectangles; S: one rectangle overlapping both.
	for _, r := range []geo.HyperRect{geo.Rect(0, 10, 0, 10), geo.Rect(20, 30, 20, 30)} {
		if err := est.InsertLeft(r); err != nil {
			panic(err)
		}
	}
	if err := est.InsertRight(geo.Rect(5, 25, 5, 25)); err != nil {
		panic(err)
	}
	card, err := est.Cardinality()
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated pairs: %.0f\n", card.Clamped())
	// Output:
	// estimated pairs: 2
}

// ExampleNewRangeEstimator estimates how many stored intervals a window
// selects.
func ExampleNewRangeEstimator() {
	re, err := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims:       1,
		DomainSize: 64,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       3,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range []geo.HyperRect{
		geo.Span1D(0, 10), geo.Span1D(8, 20), geo.Span1D(40, 50),
	} {
		if err := re.Insert(r); err != nil {
			panic(err)
		}
	}
	est, err := re.Estimate(geo.Span1D(5, 15)) // overlaps the first two
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected: %.0f of %d\n", est.Clamped(), re.Count())
	// Output:
	// selected: 2 of 3
}

// ExampleNewEpsJoinEstimator counts point pairs within L-infinity
// distance 2.
func ExampleNewEpsJoinEstimator() {
	est, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
		Dims:       2,
		DomainSize: 64,
		Eps:        2,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       5,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range []geo.Point{{10, 10}, {40, 40}} {
		if err := est.InsertLeft(p); err != nil {
			panic(err)
		}
	}
	for _, p := range []geo.Point{{11, 11}, {30, 10}} {
		if err := est.InsertRight(p); err != nil {
			panic(err)
		}
	}
	card, err := est.Cardinality()
	if err != nil {
		panic(err)
	}
	fmt.Printf("pairs within 2: %.0f\n", card.Clamped())
	// Output:
	// pairs within 2: 1
}
