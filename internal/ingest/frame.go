// Package ingest defines the length-framed binary protocol spoken on a
// /v1/ingest streaming connection: sequenced batches of the library's
// stable UpdateRecord encoding, acknowledged cumulatively after WAL
// commit, so a client that retries every ambiguous failure gets
// exactly-once application by construction (the server dedups on a
// persisted per-session high-water mark). See docs/INGEST_PROTOCOL.md
// for the full wire contract and failure matrix.
//
// Every frame is `type byte | uvarint bodyLen | body`. Declared sizes
// are bounded BEFORE any allocation (MaxFrameBytes, MaxSessionIDBytes,
// the per-record minimum in DecodeRecords), the same hostile-input
// stance as the snapshot envelope: a malicious peer can waste its own
// bandwidth, not the server's memory.
package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	spatial "repro"
)

// Protocol is the HTTP Upgrade token for the streaming endpoint; the
// trailing /1 is the wire-format version.
const Protocol = "spatial-ingest/1"

// Size bounds, checked before allocation on both ends.
const (
	// MaxFrameBytes caps one frame body. At the codec's ~5 bytes per
	// typical 2-d record this is room for ~3M records per batch - far
	// past the point where batching stops helping.
	MaxFrameBytes = 16 << 20
	// MaxSessionIDBytes caps the client-chosen session identifier.
	MaxSessionIDBytes = 128
)

// FrameType tags one frame.
type FrameType byte

// The frame types. Hello/HelloAck handshake once per connection, Batch
// flows client to server, Ack and Error flow server to client.
const (
	FrameHello    FrameType = 1 // client: session + estimator key
	FrameHelloAck FrameType = 2 // server: watermark to resume from + window
	FrameBatch    FrameType = 3 // client: seq + records
	FrameAck      FrameType = 4 // server: cumulative durable seq
	FrameError    FrameType = 5 // server: code + message, then close
)

// ErrorCode classifies a FrameError. Terminal codes mean the stream (or
// the offending batch) can never succeed; retryable codes mean the
// client should reconnect with backoff and resume.
type ErrorCode byte

// The error codes.
const (
	// CodeBadRequest is terminal: malformed frame, invalid record,
	// session/estimator mismatch.
	CodeBadRequest ErrorCode = 1
	// CodeNotFound is terminal: the estimator does not exist.
	CodeNotFound ErrorCode = 2
	// CodeOverloaded is retryable: admission control or the session
	// table shed the stream; reconnect with backoff.
	CodeOverloaded ErrorCode = 3
	// CodeInternal is retryable: WAL or apply failure; the batch was
	// not acked, so resending after reconnect is safe.
	CodeInternal ErrorCode = 4
)

// String returns the code's wire-stable name.
func (c ErrorCode) String() string {
	switch c {
	case CodeBadRequest:
		return "bad_request"
	case CodeNotFound:
		return "not_found"
	case CodeOverloaded:
		return "overloaded"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("ErrorCode(%d)", byte(c))
}

// Retryable reports whether a client should reconnect and resume after
// receiving this code, rather than surface a terminal error.
func (c ErrorCode) Retryable() bool {
	return c == CodeOverloaded || c == CodeInternal
}

// StreamError is a decoded FrameError; it implements error so clients
// can surface it directly.
type StreamError struct {
	Code ErrorCode
	Msg  string
}

// Error formats the code and message.
func (e *StreamError) Error() string {
	return fmt.Sprintf("ingest stream %s: %s", e.Code, e.Msg)
}

// Hello is the client's handshake: which session is resuming into which
// estimator. The estimator key is the server's registry key (tenant-
// qualified where applicable, e.g. "acme/objects").
type Hello struct {
	Session   string
	Estimator string
}

// HelloAck is the server's handshake reply: the session's durable
// high-water mark (the client resumes from Watermark+1) and the credit
// window - the maximum number of unacked batches the client may keep in
// flight.
type HelloAck struct {
	Watermark     uint64
	WindowBatches uint32
}

// Batch is one decoded batch frame: a client-assigned sequence number
// (strictly increasing per session, starting at 1), the declared record
// count, and the raw concatenated UpdateRecord encodings. Records stay
// raw so routing/logging can reuse the bytes; DecodeRecords parses them.
type Batch struct {
	Seq     uint64
	Count   uint64
	Records []byte
}

// AppendFrame appends a complete frame (type, length, body) to dst.
func AppendFrame(dst []byte, t FrameType, body []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// ReadFrame reads one frame, bounding the declared body length by
// MaxFrameBytes before allocating. io.EOF surfaces unchanged when the
// connection closes cleanly between frames.
func ReadFrame(br *bufio.Reader) (FrameType, []byte, error) {
	t, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("ingest: reading frame length: %w", err)
	}
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("ingest: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, fmt.Errorf("ingest: reading frame body: %w", err)
	}
	return FrameType(t), body, nil
}

// AppendHello appends a complete Hello frame.
func AppendHello(dst []byte, h Hello) []byte {
	body := binary.AppendUvarint(nil, uint64(len(h.Session)))
	body = append(body, h.Session...)
	body = binary.AppendUvarint(body, uint64(len(h.Estimator)))
	body = append(body, h.Estimator...)
	return AppendFrame(dst, FrameHello, body)
}

// DecodeHello decodes a Hello frame body, enforcing the session-ID
// bound and requiring both fields non-empty.
func DecodeHello(body []byte) (Hello, error) {
	var h Hello
	s, rest, err := cutString(body, "session")
	if err != nil {
		return h, err
	}
	if len(s) == 0 || len(s) > MaxSessionIDBytes {
		return h, fmt.Errorf("ingest: session ID length %d outside [1, %d]", len(s), MaxSessionIDBytes)
	}
	est, rest, err := cutString(rest, "estimator")
	if err != nil {
		return h, err
	}
	if len(est) == 0 {
		return h, fmt.Errorf("ingest: empty estimator key")
	}
	if len(rest) != 0 {
		return h, fmt.Errorf("ingest: %d trailing bytes after hello", len(rest))
	}
	h.Session, h.Estimator = s, est
	return h, nil
}

// AppendHelloAck appends a complete HelloAck frame.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	body := binary.AppendUvarint(nil, a.Watermark)
	body = binary.AppendUvarint(body, uint64(a.WindowBatches))
	return AppendFrame(dst, FrameHelloAck, body)
}

// DecodeHelloAck decodes a HelloAck frame body.
func DecodeHelloAck(body []byte) (HelloAck, error) {
	var a HelloAck
	wm, n := binary.Uvarint(body)
	if n <= 0 {
		return a, fmt.Errorf("ingest: truncated hello-ack watermark")
	}
	win, k := binary.Uvarint(body[n:])
	if k <= 0 || win > 1<<31 {
		return a, fmt.Errorf("ingest: bad hello-ack window")
	}
	if len(body) != n+k {
		return a, fmt.Errorf("ingest: %d trailing bytes after hello-ack", len(body)-n-k)
	}
	a.Watermark, a.WindowBatches = wm, uint32(win)
	return a, nil
}

// AppendBatch appends a complete Batch frame carrying count records
// pre-encoded in records (concatenated UpdateRecord.AppendBinary).
func AppendBatch(dst []byte, seq uint64, count int, records []byte) []byte {
	body := binary.AppendUvarint(nil, seq)
	body = binary.AppendUvarint(body, uint64(count))
	body = append(body, records...)
	return AppendFrame(dst, FrameBatch, body)
}

// DecodeBatch splits a Batch frame body into seq, declared count and the
// raw record bytes. The count is bounded by the records' minimum
// encoded size (3 bytes each) before anything downstream trusts it, so
// a hostile header cannot make the server size buffers for records the
// body does not carry. Seq 0 is reserved (it is the empty watermark).
func DecodeBatch(body []byte) (Batch, error) {
	var b Batch
	seq, n := binary.Uvarint(body)
	if n <= 0 {
		return b, fmt.Errorf("ingest: truncated batch seq")
	}
	if seq == 0 {
		return b, fmt.Errorf("ingest: batch seq 0 is reserved")
	}
	count, k := binary.Uvarint(body[n:])
	if k <= 0 {
		return b, fmt.Errorf("ingest: truncated batch count")
	}
	recs := body[n+k:]
	if count > uint64(len(recs))/3 {
		return b, fmt.Errorf("ingest: batch declares %d records, body holds at most %d", count, len(recs)/3)
	}
	b.Seq, b.Count, b.Records = seq, count, recs
	return b, nil
}

// DecodeRecords parses the batch's raw bytes into exactly Count records,
// rejecting trailing bytes - validation happens against an estimator,
// not here, so the frame layer stays estimator-agnostic.
func (b Batch) DecodeRecords() ([]spatial.UpdateRecord, error) {
	recs := make([]spatial.UpdateRecord, 0, b.Count)
	rest := b.Records
	for i := uint64(0); i < b.Count; i++ {
		rec, n, err := spatial.DecodeUpdateRecord(rest)
		if err != nil {
			return nil, fmt.Errorf("ingest: record %d of %d: %w", i, b.Count, err)
		}
		recs = append(recs, rec)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ingest: %d trailing bytes after %d records", len(rest), b.Count)
	}
	return recs, nil
}

// AppendAck appends a complete Ack frame: every batch with sequence
// number <= seq is durably applied (cumulative, so a coalesced ack for
// the newest batch covers the ones before it).
func AppendAck(dst []byte, seq uint64) []byte {
	return AppendFrame(dst, FrameAck, binary.AppendUvarint(nil, seq))
}

// DecodeAck decodes an Ack frame body.
func DecodeAck(body []byte) (uint64, error) {
	seq, n := binary.Uvarint(body)
	if n <= 0 || len(body) != n {
		return 0, fmt.Errorf("ingest: malformed ack")
	}
	return seq, nil
}

// AppendError appends a complete Error frame.
func AppendError(dst []byte, code ErrorCode, msg string) []byte {
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	body := append([]byte{byte(code)}, msg...)
	return AppendFrame(dst, FrameError, body)
}

// DecodeError decodes an Error frame body.
func DecodeError(body []byte) (*StreamError, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("ingest: empty error frame")
	}
	return &StreamError{Code: ErrorCode(body[0]), Msg: string(body[1:])}, nil
}

// cutString reads one `uvarint len | bytes` string off the front of b.
func cutString(b []byte, what string) (string, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return "", nil, fmt.Errorf("ingest: truncated %s length", what)
	}
	b = b[k:]
	if n > uint64(len(b)) {
		return "", nil, fmt.Errorf("ingest: %s length %d exceeds remaining %d bytes", what, n, len(b))
	}
	return string(b[:n]), b[n:], nil
}
