package exact

import (
	"math/rand/v2"
	"testing"

	"repro/geo"
	"repro/internal/datagen"
)

func randRects(seed uint64, n, dims int, dom uint64) []geo.HyperRect {
	return datagen.MustRects(datagen.Spec{
		N: n, Dims: dims, Domain: dom, Seed: seed, MeanLen: meanLens(dims, float64(dom)/6),
	})
}

func meanLens(dims int, v float64) []float64 {
	m := make([]float64, dims)
	for i := range m {
		m[i] = v
	}
	return m
}

func TestIntervalJoinAgainstBrute(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := randRects(seed, 150, 1, 256)
		s := randRects(seed+100, 170, 1, 256)
		want := JoinCountBrute(r, s)
		if got := IntervalJoinCount(r, s); got != want {
			t.Fatalf("seed %d: IntervalJoinCount = %d, want %d", seed, got, want)
		}
		if got := JoinCount(r, s); got != want {
			t.Fatalf("seed %d: JoinCount(1d) = %d, want %d", seed, got, want)
		}
	}
}

func TestIntervalJoinSharedEndpoints(t *testing.T) {
	// Dense small domain forces many shared endpoints and touching pairs.
	rng := rand.New(rand.NewPCG(11, 13))
	mk := func(n int) []geo.HyperRect {
		out := make([]geo.HyperRect, n)
		for i := range out {
			lo := rng.Uint64N(14)
			hi := lo + 1 + rng.Uint64N(15-lo)
			out[i] = geo.Span1D(lo, hi)
		}
		return out
	}
	for trial := 0; trial < 30; trial++ {
		r, s := mk(60), mk(60)
		if got, want := IntervalJoinCount(r, s), JoinCountBrute(r, s); got != want {
			t.Fatalf("trial %d: strict join = %d, want %d", trial, got, want)
		}
		if got, want := IntervalJoinCountExt(r, s), JoinCountExtBrute(r, s); got != want {
			t.Fatalf("trial %d: extended join = %d, want %d", trial, got, want)
		}
	}
}

func TestIntervalJoinDegenerate(t *testing.T) {
	r := []geo.HyperRect{geo.Span1D(5, 5), geo.Span1D(1, 9)}
	s := []geo.HyperRect{geo.Span1D(4, 6), geo.Span1D(5, 5)}
	// Points never overlap under Definition 1: only [1,9] vs [4,6] counts.
	if got := IntervalJoinCount(r, s); got != 1 {
		t.Fatalf("degenerate join = %d, want 1", got)
	}
	if got := JoinCountBrute(r, s); got != 1 {
		t.Fatalf("brute degenerate join = %d, want 1", got)
	}
	// Extended join counts the touching point pairs too: [5,5] in [4,6],
	// [5,5] meets [5,5], [1,9] with both.
	if got := IntervalJoinCountExt(r, s); got != JoinCountExtBrute(r, s) {
		t.Fatalf("extended degenerate mismatch")
	}
}

func TestRectJoinAgainstBrute(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		r := randRects(seed, 120, 2, 128)
		s := randRects(seed+77, 140, 2, 128)
		want := JoinCountBrute(r, s)
		if got := RectJoinCount(r, s); got != want {
			t.Fatalf("seed %d: RectJoinCount = %d, want %d", seed, got, want)
		}
		if got := JoinCount(r, s); got != want {
			t.Fatalf("seed %d: JoinCount(2d) = %d, want %d", seed, got, want)
		}
	}
}

func TestRectJoinSharedEndpoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	mk := func(n int) []geo.HyperRect {
		out := make([]geo.HyperRect, n)
		for i := range out {
			xlo := rng.Uint64N(8)
			ylo := rng.Uint64N(8)
			out[i] = geo.Rect(xlo, xlo+1+rng.Uint64N(9-xlo), ylo, ylo+1+rng.Uint64N(9-ylo))
		}
		return out
	}
	for trial := 0; trial < 25; trial++ {
		r, s := mk(50), mk(55)
		if got, want := RectJoinCount(r, s), JoinCountBrute(r, s); got != want {
			t.Fatalf("trial %d: rect join = %d, want %d", trial, got, want)
		}
	}
}

func TestRectJoinDegenerate(t *testing.T) {
	r := []geo.HyperRect{geo.Rect(0, 5, 3, 3)} // degenerate in y
	s := []geo.HyperRect{geo.Rect(0, 5, 0, 5)}
	if got := RectJoinCount(r, s); got != 0 {
		t.Fatalf("degenerate rect join = %d, want 0", got)
	}
}

func TestRectJoinEmpty(t *testing.T) {
	if got := RectJoinCount(nil, nil); got != 0 {
		t.Fatalf("empty join = %d", got)
	}
	if got := JoinCount(nil, randRects(1, 5, 2, 64)); got != 0 {
		t.Fatalf("empty R join = %d", got)
	}
}

func Test3DJoinAgainstBrute(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		r := randRects(seed, 80, 3, 64)
		s := randRects(seed+13, 90, 3, 64)
		want := JoinCountBrute(r, s)
		if got := JoinCount(r, s); got != want {
			t.Fatalf("seed %d: JoinCount(3d) = %d, want %d", seed, got, want)
		}
	}
}

func TestContainmentAgainstBrute(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := randRects(seed, 120, 1, 128)
		s := randRects(seed+5, 150, 1, 128)
		want := ContainmentCountBrute(r, s)
		if got := ContainmentCount(r, s); got != want {
			t.Fatalf("seed %d: ContainmentCount = %d, want %d", seed, got, want)
		}
	}
	// 2-d falls back to brute force.
	r2 := randRects(3, 40, 2, 64)
	s2 := randRects(4, 40, 2, 64)
	if got, want := ContainmentCount(r2, s2), ContainmentCountBrute(r2, s2); got != want {
		t.Fatalf("2d containment = %d, want %d", got, want)
	}
}

func TestContainmentSharedEndpoints(t *testing.T) {
	r := []geo.HyperRect{geo.Span1D(2, 5), geo.Span1D(2, 5), geo.Span1D(0, 9)}
	s := []geo.HyperRect{geo.Span1D(2, 5), geo.Span1D(0, 9)}
	// [2,5] contained in [2,5] (closed) and in [0,9]; [0,9] in [0,9].
	if got := ContainmentCount(r, s); got != 5 {
		t.Fatalf("containment = %d, want 5", got)
	}
}

func TestEpsJoinAgainstBrute(t *testing.T) {
	for _, metric := range []Metric{LInf, L1, L2} {
		for seed := uint64(0); seed < 5; seed++ {
			a := datagen.MustPoints(datagen.Spec{N: 150, Dims: 2, Domain: 128, Seed: seed})
			b := datagen.MustPoints(datagen.Spec{N: 160, Dims: 2, Domain: 128, Seed: seed + 50})
			for _, eps := range []uint64{0, 1, 5, 20} {
				want := EpsJoinCountBrute(a, b, eps, metric)
				if got := EpsJoinCount(a, b, eps, metric); got != want {
					t.Fatalf("metric %d seed %d eps %d: %d, want %d", metric, seed, eps, got, want)
				}
			}
		}
	}
}

func TestEpsJoinEmpty(t *testing.T) {
	if got := EpsJoinCount(nil, nil, 5, LInf); got != 0 {
		t.Fatalf("empty eps join = %d", got)
	}
}

func TestRangeCount(t *testing.T) {
	r := randRects(9, 300, 2, 256)
	q := geo.Rect(30, 90, 100, 200)
	var want uint64
	for _, a := range r {
		if a.Overlaps(q) {
			want++
		}
	}
	if got := RangeCount(r, q); got != want {
		t.Fatalf("RangeCount = %d, want %d", got, want)
	}
}
