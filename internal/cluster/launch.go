package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// This file is the process-orchestration layer shared by the e2e tests
// in cmd/spatialserve and the closed-loop load harness (cmd/spatialload):
// spawning real spatialserve processes, discovering their :0 ports from
// the "listening on" line, waiting for health, and wiring several of
// them into a ring with consistent -peers flags.

// DefaultReadyPrefix is the stdout line prefix a spatialserve process
// prints once its listener is bound; Launch scans for it to learn the
// actual address of a ":0" listen.
const DefaultReadyPrefix = "spatialserve listening on "

// LaunchOptions configures one spawned server process.
type LaunchOptions struct {
	// Binary is the executable to run (a spatialserve build, or a test
	// binary re-executing itself in helper mode).
	Binary string
	// Args are the command-line flags passed verbatim.
	Args []string
	// Env entries are appended to the parent environment.
	Env []string
	// ReadyPrefix overrides DefaultReadyPrefix when non-empty.
	ReadyPrefix string
	// StartTimeout bounds the wait for the ready line (default 30s).
	StartTimeout time.Duration
	// Stderr receives the child's stderr (default: discarded).
	Stderr io.Writer
}

// Proc is a launched server process whose listen address has been
// discovered from its ready line.
type Proc struct {
	// URL is the node's base URL ("http://host:port").
	URL string
	// Cmd is the underlying process handle; callers may signal or wait
	// on it directly (e.g. SIGKILL for crash tests).
	Cmd *exec.Cmd
}

// Launch starts the process and blocks until it prints its ready line,
// returning the discovered base URL. The child is killed and reaped on
// any failure.
func Launch(opts LaunchOptions) (*Proc, error) {
	prefix := opts.ReadyPrefix
	if prefix == "" {
		prefix = DefaultReadyPrefix
	}
	timeout := opts.StartTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cmd := exec.Command(opts.Binary, opts.Args...)
	cmd.Env = append(os.Environ(), opts.Env...)
	if opts.Stderr != nil {
		cmd.Stderr = opts.Stderr
	} else {
		cmd.Stderr = io.Discard
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), prefix); ok {
				addrc <- strings.TrimSpace(rest)
				return
			}
		}
		addrc <- ""
	}()
	select {
	case addr := <-addrc:
		if addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("cluster: %s exited without a ready line", opts.Binary)
		}
		return &Proc{URL: "http://" + addr, Cmd: cmd}, nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("cluster: %s not ready within %v", opts.Binary, timeout)
	}
}

// Kill SIGKILLs the process and reaps it: no signal handler runs, no
// graceful flush - the crash the failover tests need. Safe on an
// already-dead process.
func (p *Proc) Kill() {
	if p == nil || p.Cmd == nil || p.Cmd.Process == nil {
		return
	}
	p.Cmd.Process.Kill()
	p.Cmd.Wait() // the exit status is the kill; only reaping matters
}

// ReservePorts grabs n distinct listening ports on localhost and
// releases them for child processes to bind - the usual pre-bind trick
// with a tiny race window, irrelevant for tests and harnesses.
func ReservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// PeersFlag renders the -peers value ("id=http://addr,...") for a set
// of node IDs and their listen addresses.
func PeersFlag(ids, addrs []string) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=http://%s", id, addrs[i])
	}
	return strings.Join(parts, ",")
}

// WaitHealthy polls base/healthz until it returns 200 or the timeout
// elapses (default 30s when timeout <= 0).
func WaitHealthy(base string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: node %s never became healthy", base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ProcClusterSpec describes a ring of real server processes to launch.
type ProcClusterSpec struct {
	// Binary is the server executable every node runs.
	Binary string
	// Env entries are appended to each child's environment.
	Env []string
	// Nodes is the ring size (IDs "a", "b", ... are assigned).
	Nodes int
	// Partitions is the per-estimator partition count (-partitions).
	Partitions int
	// DataRoot holds one "node-<id>" durability dir per member.
	DataRoot string
	// ExtraArgs are appended to every node's flag list (checkpoint
	// cadence, fsync policy, admission limits, ...).
	ExtraArgs []string
	// Stderr receives every child's stderr (default: discarded).
	Stderr io.Writer
	// StartTimeout bounds each node's ready wait (default 30s).
	StartTimeout time.Duration
}

// ProcCluster is a launched ring of server processes. Nodes can be
// SIGKILLed and restarted on their data dirs by index, preserving
// identity and peers - the orchestration the failover tests and the
// load harness's kill/rebalance scenarios share.
type ProcCluster struct {
	// Spec is the launch specification, retained for restarts.
	Spec ProcClusterSpec
	// IDs are the stable node identities, index-aligned with Addrs.
	IDs []string
	// Addrs are the reserved listen addresses ("host:port").
	Addrs []string
	// URLs are the node base URLs ("http://host:port").
	URLs []string
	// Dirs are the per-node durability roots.
	Dirs []string
	// Procs holds the live process handles; nil entries are dead nodes.
	Procs []*Proc
}

// LaunchProcCluster reserves ports, assigns identities and data dirs,
// and starts every node, waiting for each to become healthy.
func LaunchProcCluster(spec ProcClusterSpec) (*ProcCluster, error) {
	if spec.Nodes <= 0 || spec.Nodes > 26 {
		return nil, fmt.Errorf("cluster: node count %d out of range [1,26]", spec.Nodes)
	}
	addrs, err := ReservePorts(spec.Nodes)
	if err != nil {
		return nil, err
	}
	c := &ProcCluster{
		Spec:  spec,
		Addrs: addrs,
		URLs:  make([]string, spec.Nodes),
		IDs:   make([]string, spec.Nodes),
		Dirs:  make([]string, spec.Nodes),
		Procs: make([]*Proc, spec.Nodes),
	}
	for i := range c.IDs {
		c.IDs[i] = string(rune('a' + i))
		c.URLs[i] = "http://" + addrs[i]
		c.Dirs[i] = filepath.Join(spec.DataRoot, "node-"+c.IDs[i])
	}
	for i := range c.IDs {
		if err := c.StartNode(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// PeersFlag renders this ring's -peers value.
func (c *ProcCluster) PeersFlag() string { return PeersFlag(c.IDs, c.Addrs) }

// StartNode launches (or relaunches after a kill) node i on its
// reserved address and data dir with its stable identity, and waits for
// it to become healthy.
func (c *ProcCluster) StartNode(i int) error {
	args := []string{
		"-addr=" + c.Addrs[i],
		"-data-dir=" + c.Dirs[i],
		"-node-id=" + c.IDs[i],
		"-peers=" + c.PeersFlag(),
		fmt.Sprintf("-partitions=%d", c.Spec.Partitions),
	}
	args = append(args, c.Spec.ExtraArgs...)
	p, err := Launch(LaunchOptions{
		Binary:       c.Spec.Binary,
		Args:         args,
		Env:          c.Spec.Env,
		Stderr:       c.Spec.Stderr,
		StartTimeout: c.Spec.StartTimeout,
	})
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", c.IDs[i], err)
	}
	c.Procs[i] = p
	return WaitHealthy(p.URL, c.Spec.StartTimeout)
}

// KillNode SIGKILLs node i (no-op if already dead). The node can be
// brought back with StartNode.
func (c *ProcCluster) KillNode(i int) {
	c.Procs[i].Kill()
	c.Procs[i] = nil
}

// Close SIGKILLs every live node.
func (c *ProcCluster) Close() {
	for i := range c.Procs {
		if c.Procs[i] != nil {
			c.KillNode(i)
		}
	}
}
