package spatial_test

import (
	"fmt"

	spatial "repro"
	"repro/geo"
)

// ExampleNewJoinEstimator sketches two tiny rectangle relations and
// estimates their join cardinality. With a generous synopsis relative to
// the data, the estimate recovers the exact count.
func ExampleNewJoinEstimator() {
	est, err := spatial.NewJoinEstimator(spatial.JoinConfig{
		Dims:       2,
		DomainSize: 64,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       7,
	})
	if err != nil {
		panic(err)
	}
	// R: two rectangles; S: one rectangle overlapping both.
	for _, r := range []geo.HyperRect{geo.Rect(0, 10, 0, 10), geo.Rect(20, 30, 20, 30)} {
		if err := est.InsertLeft(r); err != nil {
			panic(err)
		}
	}
	if err := est.InsertRight(geo.Rect(5, 25, 5, 25)); err != nil {
		panic(err)
	}
	card, err := est.Cardinality()
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated pairs: %.0f\n", card.Clamped())
	// Output:
	// estimated pairs: 2
}

// ExampleNewRangeEstimator estimates how many stored intervals a window
// selects.
func ExampleNewRangeEstimator() {
	re, err := spatial.NewRangeEstimator(spatial.RangeConfig{
		Dims:       1,
		DomainSize: 64,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       3,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range []geo.HyperRect{
		geo.Span1D(0, 10), geo.Span1D(8, 20), geo.Span1D(40, 50),
	} {
		if err := re.Insert(r); err != nil {
			panic(err)
		}
	}
	est, err := re.Estimate(geo.Span1D(5, 15)) // overlaps the first two
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected: %.0f of %d\n", est.Clamped(), re.Count())
	// Output:
	// selected: 2 of 3
}

// ExampleNewContainmentEstimator estimates how many inner rectangles are
// fully contained in an outer one (Appendix B.2 reduction: containment in
// d dimensions becomes point-in-box in 2d). The doubled dimensionality
// makes this the highest-variance estimator of the family, so the example
// reports the estimate against the true count rather than expecting exact
// recovery at a small synopsis size.
func ExampleNewContainmentEstimator() {
	est, err := spatial.NewContainmentEstimator(spatial.ContainmentConfig{
		Dims:       2,
		DomainSize: 64,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       2,
	})
	if err != nil {
		panic(err)
	}
	// A 5x5 grid of small rectangles inside the outer box (25 contained
	// pairs) plus 10 rectangles outside it.
	for i := uint64(0); i < 5; i++ {
		for j := uint64(0); j < 5; j++ {
			if err := est.InsertInner(geo.Rect(2+6*i, 5+6*i, 2+6*j, 5+6*j)); err != nil {
				panic(err)
			}
		}
	}
	for i := uint64(0); i < 10; i++ {
		if err := est.InsertInner(geo.Rect(34+2*i, 36+2*i, 40, 45)); err != nil {
			panic(err)
		}
	}
	if err := est.InsertOuter(geo.Rect(0, 32, 0, 32)); err != nil {
		panic(err)
	}
	card, err := est.Cardinality()
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated contained pairs: %.0f (true 25)\n", card.Clamped())
	// Output:
	// estimated contained pairs: 23 (true 25)
}

// ExampleEpsJoinEstimator_Selectivity normalizes an epsilon-join estimate
// by the input sizes: 1 close pair out of 2x2 candidates.
func ExampleEpsJoinEstimator_Selectivity() {
	est, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
		Dims:       2,
		DomainSize: 16,
		Eps:        2,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       3,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range []geo.Point{{3, 3}, {12, 12}} {
		if err := est.InsertLeft(p); err != nil {
			panic(err)
		}
	}
	for _, p := range []geo.Point{{4, 4}, {9, 7}} {
		if err := est.InsertRight(p); err != nil {
			panic(err)
		}
	}
	sel, err := est.Selectivity()
	if err != nil {
		panic(err)
	}
	fmt.Printf("selectivity: %.2f\n", sel)
	// Output:
	// selectivity: 0.25
}

// ExampleNewEpsJoinEstimator counts point pairs within L-infinity
// distance 2.
func ExampleNewEpsJoinEstimator() {
	est, err := spatial.NewEpsJoinEstimator(spatial.EpsJoinConfig{
		Dims:       2,
		DomainSize: 64,
		Eps:        2,
		Sizing:     spatial.Sizing{Instances: 8192, Groups: 8},
		Seed:       5,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range []geo.Point{{10, 10}, {40, 40}} {
		if err := est.InsertLeft(p); err != nil {
			panic(err)
		}
	}
	for _, p := range []geo.Point{{11, 11}, {30, 10}} {
		if err := est.InsertRight(p); err != nil {
			panic(err)
		}
	}
	card, err := est.Cardinality()
	if err != nil {
		panic(err)
	}
	fmt.Printf("pairs within 2: %.0f\n", card.Clamped())
	// Output:
	// pairs within 2: 1
}
