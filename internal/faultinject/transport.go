package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Transport returns an http.RoundTripper that applies the injector's
// rules to every request sent by the named node. base nil means
// http.DefaultTransport. The destination node is resolved from the
// request URL's host via NameHost registrations.
func (in *Injector) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, from: from, base: base}
}

// transport is the rule-applying RoundTripper.
type transport struct {
	in   *Injector
	from string
	base http.RoundTripper
}

// refusedError mimics a dial failure so callers exercise the same error
// paths a dead peer produces.
type refusedError struct{ host string }

// Error describes the fabricated dial failure.
func (e *refusedError) Error() string {
	return fmt.Sprintf("faultinject: dial tcp %s: connection refused", e.host)
}

// Timeout reports false: a refused connection is not a timeout.
func (e *refusedError) Timeout() bool { return false }

// Temporary reports true, matching net.OpError behavior for refusals.
func (e *refusedError) Temporary() bool { return true }

// RoundTrip applies the first matching rule, then (for non-failing kinds)
// forwards to the base transport. Failing kinds return before forwarding;
// see the package comment for why that discipline matters.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := t.in.nodeName(req.URL.Host)
	r, ok := t.in.match(t.from, to, req.Method, false, req.Method+" "+req.URL.Path)
	if !ok {
		return t.base.RoundTrip(req)
	}
	switch r.Kind {
	case KindLatency:
		d := r.Latency
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			// Deadline fired mid-spike: fail WITHOUT forwarding so the
			// request is definitely not applied.
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: req.Context().Err()}
		case <-timer.C:
		}
		return t.base.RoundTrip(req)
	case KindRefuse:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &refusedError{host: req.URL.Host}
	case KindStatus:
		if req.Body != nil {
			req.Body.Close()
		}
		status := r.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		body := []byte(`{"error":"injected"}`)
		return &http.Response{
			Status:        strconv.Itoa(status) + " " + http.StatusText(status),
			StatusCode:    status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatingBody{rc: resp.Body, remaining: truncateAt(resp.ContentLength)}
		resp.ContentLength = -1
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// truncateAt picks how many bytes of an n-byte body survive truncation:
// half of a known length, a small prefix of an unknown one.
func truncateAt(n int64) int64 {
	if n > 1 {
		return n / 2
	}
	return 16
}

// truncatingBody delivers a prefix of the wrapped body, then fails with
// io.ErrUnexpectedEOF - a torn transfer, not a clean short read.
type truncatingBody struct {
	rc        io.ReadCloser
	remaining int64
}

// Read yields bytes until the budget is spent, then errors.
func (t *truncatingBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended inside the budget; deliver the clean EOF.
		return n, err
	}
	if t.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// Close closes the wrapped body.
func (t *truncatingBody) Close() error { return t.rc.Close() }
