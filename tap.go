package spatial

import (
	"fmt"

	"repro/geo"
)

// Update-tap hook: the library half of the durability contract.
//
// Sketches are linear projections, so replaying a logged update stream
// into a same-config estimator reconstructs its counters bit-identically -
// persistence needs only (a) every update observed in a stable encoding
// and (b) a way to re-apply one. The tap provides (a): each estimator
// exposes SetUpdateTap, and every successful point or bulk update first
// calls the tap with the update's UpdateRecords (public coordinates,
// before any internal endpoint transformation), then applies the update.
// A tap error aborts the update without touching the sketches, which
// gives write-ahead semantics: persist first, apply second. Apply is (b):
// it routes a decoded record back through the exact public update path it
// was captured from.
//
// The tap is called OUTSIDE the per-shard ingest locks, so a tap that
// blocks (a group-committed WAL append, say) stalls only its own update,
// never the sharded hot path, and a tap may itself call back into the
// estimator without deadlocking. Consequences: concurrent updates may be
// logged in a different order than they land in the shards (harmless -
// updates commute), and Merge/MergeSnapshot are NOT tapped (they fold
// counters, not update streams; callers persisting through a tap must log
// merged snapshots themselves, as cmd/spatialserve does).

// UpdateOp says whether an update record inserts or deletes an object.
type UpdateOp uint8

// The two update operations.
const (
	// OpInsert adds an object.
	OpInsert UpdateOp = iota
	// OpDelete removes a previously inserted object.
	OpDelete
)

// String returns "insert" or "delete".
func (o UpdateOp) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("UpdateOp(%d)", uint8(o))
}

// UpdateSide names the estimator input an update record targets.
type UpdateSide uint8

// The estimator inputs an update can target.
const (
	// SideData is the single input of a RangeEstimator.
	SideData UpdateSide = iota
	// SideLeft is the left input (R or A) of a join or epsilon-join.
	SideLeft
	// SideRight is the right input (S or B) of a join or epsilon-join.
	SideRight
	// SideInner is the contained side of a containment join.
	SideInner
	// SideOuter is the containing side of a containment join.
	SideOuter
)

// String returns the side's wire name ("data", "left", "right", "inner",
// "outer").
func (s UpdateSide) String() string {
	switch s {
	case SideData:
		return "data"
	case SideLeft:
		return "left"
	case SideRight:
		return "right"
	case SideInner:
		return "inner"
	case SideOuter:
		return "outer"
	}
	return fmt.Sprintf("UpdateSide(%d)", uint8(s))
}

// UpdateRecord is one logical estimator update in public coordinates:
// exactly one of Rect or Point is set, matching the estimator's input type
// (rectangles for join/range/containment, points for epsilon-joins). It is
// what an update tap observes and what Apply replays; AppendBinary /
// DecodeUpdateRecord give it a stable binary form for write-ahead logs.
type UpdateRecord struct {
	// Op is the operation (insert or delete).
	Op UpdateOp
	// Side is the estimator input the update targets.
	Side UpdateSide
	// Rect is the object for rectangle-valued updates.
	Rect geo.HyperRect
	// Point is the object for point-valued updates (epsilon-joins).
	Point geo.Point
}

// UpdateTap observes updates before they are applied; see SetUpdateTap on
// the estimator types. The records (including their Rect/Point backing
// arrays) are only valid for the duration of the call; an error return
// aborts the update before any sketch is touched.
type UpdateTap func(recs []UpdateRecord) error

// tapRecord1 invokes the tap, if any, for a single-object update.
func (ss *shardedState[T]) tapRecord1(op UpdateOp, side UpdateSide, r geo.HyperRect, p geo.Point) error {
	tap := ss.tap.Load()
	if tap == nil {
		return nil
	}
	return (*tap)([]UpdateRecord{{Op: op, Side: side, Rect: r, Point: p}})
}

// tapRects invokes the tap, if any, for a bulk rectangle update.
func (ss *shardedState[T]) tapRects(op UpdateOp, side UpdateSide, rects []geo.HyperRect) error {
	tap := ss.tap.Load()
	if tap == nil {
		return nil
	}
	recs := make([]UpdateRecord, len(rects))
	for i, r := range rects {
		recs[i] = UpdateRecord{Op: op, Side: side, Rect: r}
	}
	return (*tap)(recs)
}

// tapPoints invokes the tap, if any, for a bulk point update.
func (ss *shardedState[T]) tapPoints(op UpdateOp, side UpdateSide, pts []geo.Point) error {
	tap := ss.tap.Load()
	if tap == nil {
		return nil
	}
	recs := make([]UpdateRecord, len(pts))
	for i, p := range pts {
		recs[i] = UpdateRecord{Op: op, Side: side, Point: p}
	}
	return (*tap)(recs)
}

// setTap installs (or, with nil, removes) the update tap.
func (ss *shardedState[T]) setTap(tap UpdateTap) {
	if tap == nil {
		ss.tap.Store(nil)
		return
	}
	ss.tap.Store(&tap)
}

func opOf(insert bool) UpdateOp {
	if insert {
		return OpInsert
	}
	return OpDelete
}
