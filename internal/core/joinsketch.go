package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/geo"
)

// JoinSketch is the synopsis of one relation under the {I,E}^d dyadic
// atomic sketch set of Sections 3.1-3.2: per instance, 2^d integer counters
// X_w indexed by the bitmask of the letter string w (bit i set = letter E
// in dimension i; bit clear = letter I). For d = 1 these are (X_I, X_E) of
// Equation 4; for d = 2 they are (X_II, X_IE, X_EI, X_EE).
//
// The estimators assume Assumption 1 (no endpoints in common between the
// joined relations). Callers that cannot guarantee the assumption should
// apply the endpoint transformation of Section 5.2 (geo.TransformKeepRect /
// geo.TransformShrinkRect) before inserting, as the public spatial package
// does, or use CESketch.
//
// A JoinSketch is not safe for concurrent mutation; InsertAll parallelizes
// a bulk load internally.
type JoinSketch struct {
	plan     *Plan
	counters []int64 // [instance * 2^d + w]
	count    int64   // current object cardinality
	buf      *coverBuf
}

// NewJoinSketch returns an empty sketch of the plan's relation shape.
func (p *Plan) NewJoinSketch() *JoinSketch {
	return &JoinSketch{
		plan:     p,
		counters: make([]int64, p.cfg.Instances<<uint(p.cfg.Dims)),
		buf:      newCoverBuf(p.cfg.Dims),
	}
}

// Plan returns the plan the sketch was built from.
func (s *JoinSketch) Plan() *Plan { return s.plan }

// Count returns the current number of objects summarized (inserts minus
// deletes), the denominator of selectivity.
func (s *JoinSketch) Count() int64 { return s.count }

// Insert adds a hyper-rectangle to the sketch.
func (s *JoinSketch) Insert(rect geo.HyperRect) error { return s.update(rect, +1) }

// Delete removes a previously inserted hyper-rectangle from the sketch
// (sketches are linear projections, so deletion is exact: Section 4.1.5).
func (s *JoinSketch) Delete(rect geo.HyperRect) error { return s.update(rect, -1) }

func (s *JoinSketch) update(rect geo.HyperRect, sign int64) error {
	if err := s.plan.checkRect(rect); err != nil {
		return err
	}
	s.buf.load(s.plan, rect)
	s.applyCovers(s.buf, 0, s.plan.cfg.Instances, sign)
	s.count += sign
	return nil
}

// applyCovers folds one object's covers into the counters of instances
// [from, to).
func (s *JoinSketch) applyCovers(buf *coverBuf, from, to int, sign int64) {
	d := s.plan.cfg.Dims
	nw := 1 << uint(d)
	var sums [MaxDims][2]int64 // [dim][0]=I sum, [dim][1]=E sum
	for inst := from; inst < to; inst++ {
		fams := s.plan.fams[inst]
		for i := 0; i < d; i++ {
			f := fams[i]
			sums[i][0] = f.SumSigns(buf.cover[i])
			sums[i][1] = f.SumSigns(buf.ptLo[i]) + f.SumSigns(buf.ptHi[i])
		}
		base := inst * nw
		for w := 0; w < nw; w++ {
			prod := sign
			for i := 0; i < d; i++ {
				prod *= sums[i][(w>>uint(i))&1]
			}
			s.counters[base+w] += prod
		}
	}
}

// InsertAll bulk-loads a slice of hyper-rectangles, validating all of them
// first and parallelizing the counter updates across instances. It is the
// fast path for building a sketch from stored data; the resulting sketch is
// identical to one built by repeated Insert calls.
func (s *JoinSketch) InsertAll(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := s.plan.checkRect(r); err != nil {
			return err
		}
	}
	workers := runtime.GOMAXPROCS(0)
	inst := s.plan.cfg.Instances
	if workers > inst {
		workers = inst
	}
	if workers <= 1 || len(rects) < 64 {
		for _, r := range rects {
			s.buf.load(s.plan, r)
			s.applyCovers(s.buf, 0, inst, +1)
		}
		s.count += int64(len(rects))
		return nil
	}

	const batch = 256
	bufs := make([]*coverBuf, batch)
	for i := range bufs {
		bufs[i] = newCoverBuf(s.plan.cfg.Dims)
	}
	var wg sync.WaitGroup
	for start := 0; start < len(rects); start += batch {
		end := min(start+batch, len(rects))
		n := end - start
		// Covers are instance-independent: compute once per object, then
		// fan the counter updates out across disjoint instance ranges.
		for i := 0; i < n; i++ {
			bufs[i].load(s.plan, rects[start+i])
		}
		per := (inst + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*per, min((w+1)*per, inst)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					s.applyCovers(bufs[i], lo, hi, +1)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	s.count += int64(len(rects))
	return nil
}

// Reset zeroes the sketch in place.
func (s *JoinSketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
	s.count = 0
}

// Clone returns an independent deep copy sharing the (immutable) plan.
func (s *JoinSketch) Clone() *JoinSketch {
	c := s.plan.NewJoinSketch()
	copy(c.counters, s.counters)
	c.count = s.count
	return c
}

// Merge adds the counters of other into s. Both sketches must come from the
// same plan. Merging the sketches of two disjoint streams is equivalent to
// sketching their union - the linearity that makes sketches distributable.
func (s *JoinSketch) Merge(other *JoinSketch) error {
	if !samePlan(s.plan, other.plan) {
		return fmt.Errorf("core: cannot merge sketches from different plans")
	}
	for i, v := range other.counters {
		s.counters[i] += v
	}
	s.count += other.count
	return nil
}

// Counter returns the X_w counter of one instance (w is the E-letter
// bitmask). Exposed for tests and diagnostics.
func (s *JoinSketch) Counter(instance, w int) int64 {
	d := s.plan.cfg.Dims
	return s.counters[instance<<uint(d)+w]
}

// EstimateJoin estimates |R join_o S| from the sketches of R and S per
// Theorems 1-3: each instance contributes Z = 2^-d * sum_w X_w * Y_w-bar,
// and instances are boosted by the median-of-means of Section 2.3.
// Both sketches must come from the same plan.
func EstimateJoin(x, y *JoinSketch) (Estimate, error) {
	if !samePlan(x.plan, y.plan) {
		return Estimate{}, fmt.Errorf("core: sketches come from different plans")
	}
	p := x.plan
	d := p.cfg.Dims
	nw := 1 << uint(d)
	mask := nw - 1
	scale := 1.0 / float64(int64(1)<<uint(d))
	zs := make([]float64, p.cfg.Instances)
	for inst := range zs {
		base := inst * nw
		var z float64
		for w := 0; w < nw; w++ {
			z += float64(x.counters[base+w]) * float64(y.counters[base+(w^mask)])
		}
		zs[inst] = z * scale
	}
	return boost(zs, p.cfg.Groups), nil
}

// EstimateSelfJoin estimates SJ(R) = sum_w SJ(X_w) from the sketch's own
// counters: E[X_w^2] = SJ(X_w) - the original self-join-size use of AMS
// sketches (Section 2.2) turned inward. This lets a deployment feed the
// Theorem 1 planner without any offline pass over the data: the synopsis
// estimates its own variance budget.
func (s *JoinSketch) EstimateSelfJoin() Estimate {
	p := s.plan
	nw := 1 << uint(p.cfg.Dims)
	zs := make([]float64, p.cfg.Instances)
	for inst := range zs {
		base := inst * nw
		var z float64
		for w := 0; w < nw; w++ {
			v := float64(s.counters[base+w])
			z += v * v
		}
		zs[inst] = z
	}
	return boost(zs, p.cfg.Groups)
}

// SelfJoinUpperBound returns a cheap upper bound on SJ(R) =
// sum_w SJ(X_w) derived from the triangle inequality: each inserted object
// contributes at most (prod_i |cover_i| for the I letters) * ... per w, so
// SJ(X_w) <= (sum over objects of its cover-product for w)^2. The bound is
// loose but needs no extra state; exact values come from
// internal/exact.SelfJoinSizes.
func (s *JoinSketch) SelfJoinUpperBound() float64 {
	// With only counters available the best generic bound is
	// (sum_w max-cover-product * count)^2; keep it simple and documented.
	d := s.plan.cfg.Dims
	perObj := 1.0
	for i := 0; i < d; i++ {
		h := float64(s.plan.maxLevel[i])
		c := 2*h + 2 // interval cover + slack
		e := 2 * (h + 1)
		perObj *= c + e
	}
	n := float64(s.count)
	return perObj * perObj * n * n
}
