package core

import (
	"math"
	"sort"
)

// Estimate is a boosted estimate with diagnostics (Section 2.3, Figure 1):
// the median over Groups of the means over Instances/Groups atomic
// estimator instances.
type Estimate struct {
	// Value is the boosted estimate (median of group means).
	Value float64
	// Mean is the grand mean over all instances (unbiased but un-boosted).
	Mean float64
	// GroupMeans are the per-group means whose median is Value.
	GroupMeans []float64
	// SampleVariance is the sample variance of the individual instances,
	// an empirical stand-in for Var[Z].
	SampleVariance float64
	// Instances is the number of atomic instances combined.
	Instances int
}

// Clamped returns the estimate clamped to be non-negative (cardinalities
// cannot be negative; individual instances can be).
func (e Estimate) Clamped() float64 {
	if e.Value < 0 {
		return 0
	}
	return e.Value
}

// StdErr returns the estimated standard error of one group mean,
// sqrt(SampleVariance / (Instances/len(GroupMeans))).
func (e Estimate) StdErr() float64 {
	if len(e.GroupMeans) == 0 || e.Instances == 0 {
		return math.NaN()
	}
	perGroup := float64(e.Instances) / float64(len(e.GroupMeans))
	if perGroup <= 0 {
		return math.NaN()
	}
	return math.Sqrt(e.SampleVariance / perGroup)
}

// boost combines per-instance estimates zs into the median of group means.
// groups must divide len(zs); group g owns the contiguous instance range
// [g*k1, (g+1)*k1).
func boost(zs []float64, groups int) Estimate {
	return boostWith(zs, groups, make([]float64, groups))
}

// boostWith is boost with a caller-provided median working copy, so pooled
// scratch makes the fold allocation-free except for the GroupMeans
// diagnostic slice of the returned Estimate (which escapes to the caller
// and must stay owned by it).
func boostWith(zs []float64, groups int, med []float64) Estimate {
	n := len(zs)
	k1 := n / groups
	est := Estimate{
		GroupMeans: make([]float64, groups),
		Instances:  n,
	}
	var grand float64
	for g := 0; g < groups; g++ {
		var sum float64
		for i := g * k1; i < (g+1)*k1; i++ {
			sum += zs[i]
		}
		est.GroupMeans[g] = sum / float64(k1)
		grand += sum
	}
	est.Mean = grand / float64(n)
	var varSum float64
	for _, z := range zs {
		d := z - est.Mean
		varSum += d * d
	}
	if n > 1 {
		est.SampleVariance = varSum / float64(n-1)
	}
	med = med[:groups]
	copy(med, est.GroupMeans)
	est.Value = median(med)
	return est
}

// median returns the median of xs, averaging the two central elements for
// even lengths. It sorts xs in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
