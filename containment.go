package spatial

import (
	"fmt"

	"repro/geo"
	"repro/internal/core"
)

// ContainmentConfig configures a containment-join estimator
// (Appendix B.2): count pairs (a, b) with the "inner" object a fully
// contained in the "outer" object b (closed containment in every
// dimension).
type ContainmentConfig struct {
	// Dims is the object dimensionality. Internally the estimator works in
	// 2*Dims dimensions (the B.2 reduction), so keep Dims <= 4.
	Dims int
	// DomainSize is the per-dimension coordinate domain.
	DomainSize uint64
	// Sizing picks the number of atomic instances. Note the reduction
	// doubles the dimensionality used for sizing.
	Sizing Sizing
	// MaxLevel caps the dyadic level (Section 6.5). Positive values are
	// explicit; 0 picks an adaptive default from the domain size;
	// MaxLevelUncapped disables the cap.
	MaxLevel int
	// Seed makes the synopsis deterministic.
	Seed uint64
}

// ContainmentEstimator estimates containment-join cardinalities via the
// paper's reduction: a d-dimensional object a = prod [l_i, u_i] is
// contained in b iff the 2d-dimensional point (l_1, u_1, ..., l_d, u_d)
// lies in the box prod [l(b_i), u(b_i)]^2, estimated with the Lemma 8
// point-in-box sketches. Shared endpoints are fine: containment is closed.
//
// A ContainmentEstimator is not safe for concurrent use.
type ContainmentEstimator struct {
	cfg   ContainmentConfig
	plan  *core.Plan
	inner *core.PointSketch
	outer *core.BoxSketch
}

// NewContainmentEstimator validates the configuration and allocates the
// synopsis.
func NewContainmentEstimator(cfg ContainmentConfig) (*ContainmentEstimator, error) {
	if cfg.Dims < 1 || 2*cfg.Dims > core.MaxDims {
		return nil, fmt.Errorf("spatial: dims %d outside [1, %d] (the reduction doubles it)", cfg.Dims, core.MaxDims/2)
	}
	if cfg.DomainSize < 2 {
		return nil, fmt.Errorf("spatial: domain size must be >= 2, got %d", cfg.DomainSize)
	}
	rdims := 2 * cfg.Dims
	instances, groups, err := cfg.Sizing.resolve(rdims)
	if err != nil {
		return nil, err
	}
	h := maxInt(log2ceil(cfg.DomainSize), 1)
	logDom := make([]int, rdims)
	for i := range logDom {
		logDom[i] = h
	}
	ml := resolveMaxLevel(cfg.MaxLevel, cfg.DomainSize)
	var maxLevel []int
	if ml > 0 {
		maxLevel = make([]int, rdims)
		for i := range maxLevel {
			maxLevel[i] = ml
		}
	}
	plan, err := core.NewPlan(core.Config{
		Dims: rdims, LogDomain: logDom, MaxLevel: maxLevel,
		Instances: instances, Groups: groups, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &ContainmentEstimator{
		cfg: cfg, plan: plan,
		inner: plan.NewPointSketch(), outer: plan.NewBoxSketch(),
	}, nil
}

// Config returns the estimator's configuration.
func (e *ContainmentEstimator) Config() ContainmentConfig { return e.cfg }

func (e *ContainmentEstimator) check(r geo.HyperRect) error {
	if len(r) != e.cfg.Dims {
		return fmt.Errorf("spatial: dimensionality %d, want %d", len(r), e.cfg.Dims)
	}
	for i, iv := range r {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("spatial: invalid interval [%d, %d] in dim %d", iv.Lo, iv.Hi, i)
		}
		if iv.Hi >= e.cfg.DomainSize {
			return fmt.Errorf("spatial: coordinate %d outside domain %d in dim %d", iv.Hi, e.cfg.DomainSize, i)
		}
	}
	return nil
}

// InsertInner adds an object to the contained ("inner") side.
func (e *ContainmentEstimator) InsertInner(r geo.HyperRect) error {
	if err := e.check(r); err != nil {
		return err
	}
	return e.inner.Insert(core.ContainmentPoint(r))
}

// DeleteInner removes a previously inserted inner object.
func (e *ContainmentEstimator) DeleteInner(r geo.HyperRect) error {
	if err := e.check(r); err != nil {
		return err
	}
	return e.inner.Delete(core.ContainmentPoint(r))
}

// InsertOuter adds an object to the containing ("outer") side.
func (e *ContainmentEstimator) InsertOuter(r geo.HyperRect) error {
	if err := e.check(r); err != nil {
		return err
	}
	return e.outer.Insert(core.ContainmentBox(r))
}

// DeleteOuter removes a previously inserted outer object.
func (e *ContainmentEstimator) DeleteOuter(r geo.HyperRect) error {
	if err := e.check(r); err != nil {
		return err
	}
	return e.outer.Delete(core.ContainmentBox(r))
}

// InsertInnerBulk bulk-loads inner objects (parallelized internally).
func (e *ContainmentEstimator) InsertInnerBulk(rects []geo.HyperRect) error {
	pts := make([]geo.Point, len(rects))
	for i, r := range rects {
		if err := e.check(r); err != nil {
			return err
		}
		pts[i] = core.ContainmentPoint(r)
	}
	return e.inner.InsertAll(pts)
}

// InsertOuterBulk bulk-loads outer objects.
func (e *ContainmentEstimator) InsertOuterBulk(rects []geo.HyperRect) error {
	boxes := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		if err := e.check(r); err != nil {
			return err
		}
		boxes[i] = core.ContainmentBox(r)
	}
	return e.outer.InsertAll(boxes)
}

// Merge folds the synopses of other into e (exact, by sketch linearity).
// Both estimators must have been built with the same configuration. other
// is not modified.
func (e *ContainmentEstimator) Merge(other *ContainmentEstimator) error {
	if err := e.inner.Merge(other.inner); err != nil {
		return err
	}
	return e.outer.Merge(other.outer)
}

// InnerCount returns the inner-side cardinality.
func (e *ContainmentEstimator) InnerCount() int64 { return e.inner.Count() }

// OuterCount returns the outer-side cardinality.
func (e *ContainmentEstimator) OuterCount() int64 { return e.outer.Count() }

// Cardinality estimates the number of (inner, outer) pairs with the inner
// object contained in the outer one.
func (e *ContainmentEstimator) Cardinality() (Estimate, error) {
	est, err := core.EstimatePointInBox(e.inner, e.outer)
	return fromCore(est), err
}

// Selectivity estimates Cardinality / (|inner| * |outer|).
func (e *ContainmentEstimator) Selectivity() (float64, error) {
	ni, no := e.InnerCount(), e.OuterCount()
	if ni <= 0 || no <= 0 {
		return 0, fmt.Errorf("spatial: selectivity undefined for empty inputs (%d, %d)", ni, no)
	}
	est, err := e.Cardinality()
	if err != nil {
		return 0, err
	}
	return est.Clamped() / (float64(ni) * float64(no)), nil
}
