// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so CI can archive benchmark runs as machine-
// readable artifacts and the perf trajectory can be diffed across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// Every benchmark line becomes one record carrying the package (from the
// preceding "pkg:" header), the benchmark name (GOMAXPROCS suffix split
// off), the iteration count, and every reported metric - ns/op, B/op,
// allocs/op, MB/s and custom b.ReportMetric units alike. The schema
// (internal/benchfmt) is shared with cmd/spatialload, so load-run
// reports and micro-benchmark runs land in the same trajectory format.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	doc := benchfmt.NewDocument()
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if err := doc.Encode(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench decodes one "BenchmarkName-P  N  v1 unit1  v2 unit2 ..." line.
func parseBench(line, pkg string) (benchfmt.Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchfmt.Record{}, false
	}
	r := benchfmt.Record{Pkg: pkg, Metrics: map[string]float64{}}
	r.Name = fields[0]
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchfmt.Record{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
