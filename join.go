package spatial

import (
	"fmt"
	"math/bits"

	"repro/geo"
	"repro/internal/core"
)

// JoinConfig configures a spatial join estimator.
type JoinConfig struct {
	// Dims is the data dimensionality (1 = interval joins, 2 = rectangle
	// joins, higher per Section 6.1).
	Dims int
	// DomainSize is the per-dimension coordinate domain: all inserted
	// coordinates must be < DomainSize. (Internally the domain is tripled
	// and padded to a power of two in ModeTransform.)
	DomainSize uint64
	// Sizing picks the number of atomic instances; see Sizing.
	Sizing Sizing
	// MaxLevel caps the dyadic level of covers (Section 6.5 adaptive
	// sketches). Positive values are explicit (good values sit near
	// log2 of the mean object side length plus one); 0 picks an adaptive
	// default from the domain size; MaxLevelUncapped disables the cap.
	MaxLevel int
	// Mode selects transform-based (default) or explicit common-endpoint
	// handling.
	Mode Mode
	// Seed makes the synopsis deterministic; both sides derive their
	// correlated xi-families from it.
	Seed uint64
}

// JoinEstimator estimates the cardinality and selectivity of the spatial
// join R join_o S (Definition 1) from single-pass synopses of R (the
// "left" input) and S (the "right" input). It supports inserts and
// deletes on both sides and, in ModeCommonEndpoints, also the extended
// join of Definition 4.
//
// A JoinEstimator is not safe for concurrent use.
type JoinEstimator struct {
	cfg  JoinConfig
	plan *core.Plan

	// Exactly one pair is non-nil, per mode.
	left, right     *core.JoinSketch
	leftCE, rightCE *core.CESketch
}

// NewJoinEstimator validates the configuration and allocates the synopsis.
func NewJoinEstimator(cfg JoinConfig) (*JoinEstimator, error) {
	if cfg.Dims < 1 || cfg.Dims > core.MaxDims {
		return nil, fmt.Errorf("spatial: dims %d outside [1, %d]", cfg.Dims, core.MaxDims)
	}
	if cfg.DomainSize < 2 {
		return nil, fmt.Errorf("spatial: domain size must be >= 2, got %d", cfg.DomainSize)
	}
	instances, groups, err := cfg.Sizing.resolve(cfg.Dims)
	if err != nil {
		return nil, err
	}
	size := cfg.DomainSize
	if cfg.Mode == ModeTransform {
		size = geo.TransformDomain(size)
	}
	h := log2ceil(size)
	logDom := make([]int, cfg.Dims)
	var maxLevel []int
	for i := range logDom {
		logDom[i] = h
	}
	if ml := resolveMaxLevel(cfg.MaxLevel, cfg.DomainSize); ml > 0 {
		maxLevel = make([]int, cfg.Dims)
		for i := range maxLevel {
			maxLevel[i] = ml
		}
	}
	plan, err := core.NewPlan(core.Config{
		Dims: cfg.Dims, LogDomain: logDom, MaxLevel: maxLevel,
		Instances: instances, Groups: groups, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	e := &JoinEstimator{cfg: cfg, plan: plan}
	if cfg.Mode == ModeCommonEndpoints {
		e.leftCE, e.rightCE = plan.NewCESketch(), plan.NewCESketch()
	} else {
		e.left, e.right = plan.NewJoinSketch(), plan.NewJoinSketch()
	}
	return e, nil
}

// Config returns the estimator's configuration.
func (e *JoinEstimator) Config() JoinConfig { return e.cfg }

// Instances returns the number of atomic estimator instances maintained.
func (e *JoinEstimator) Instances() int { return e.plan.Instances() }

// SpaceWords returns the synopsis footprint in the paper's word accounting
// (counters plus seed words for both sides; Section 4.1.5 / Section 7).
func (e *JoinEstimator) SpaceWords() int {
	if e.cfg.Mode == ModeCommonEndpoints {
		// 4^d counters per side plus d seed words per instance.
		per := 2*pow(4, e.cfg.Dims) + e.cfg.Dims
		return e.plan.Instances() * per
	}
	return core.JoinSpaceWords(e.cfg.Dims, e.plan.Instances())
}

func (e *JoinEstimator) checkInput(r geo.HyperRect) error {
	if len(r) != e.cfg.Dims {
		return fmt.Errorf("spatial: object dimensionality %d, want %d", len(r), e.cfg.Dims)
	}
	for i, iv := range r {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("spatial: invalid interval [%d, %d] in dim %d", iv.Lo, iv.Hi, i)
		}
		if iv.Hi >= e.cfg.DomainSize {
			return fmt.Errorf("spatial: coordinate %d outside domain %d in dim %d", iv.Hi, e.cfg.DomainSize, i)
		}
		if iv.IsPoint() {
			return fmt.Errorf("spatial: degenerate interval [%d, %d] in dim %d: the overlap join of Definition 1 assumes objects with extent (Section 4.1); use range or epsilon-join estimators for point data", iv.Lo, iv.Hi, i)
		}
	}
	return nil
}

// InsertLeft adds an object to the left input (R).
func (e *JoinEstimator) InsertLeft(r geo.HyperRect) error { return e.updateLeft(r, true) }

// DeleteLeft removes a previously inserted left object.
func (e *JoinEstimator) DeleteLeft(r geo.HyperRect) error { return e.updateLeft(r, false) }

// InsertRight adds an object to the right input (S).
func (e *JoinEstimator) InsertRight(r geo.HyperRect) error { return e.updateRight(r, true) }

// DeleteRight removes a previously inserted right object.
func (e *JoinEstimator) DeleteRight(r geo.HyperRect) error { return e.updateRight(r, false) }

func (e *JoinEstimator) updateLeft(r geo.HyperRect, insert bool) error {
	if err := e.checkInput(r); err != nil {
		return err
	}
	if e.leftCE != nil {
		if insert {
			return e.leftCE.Insert(r)
		}
		return e.leftCE.Delete(r)
	}
	t := geo.TransformKeepRect(r)
	if insert {
		return e.left.Insert(t)
	}
	return e.left.Delete(t)
}

func (e *JoinEstimator) updateRight(r geo.HyperRect, insert bool) error {
	if err := e.checkInput(r); err != nil {
		return err
	}
	if e.rightCE != nil {
		if insert {
			return e.rightCE.Insert(r)
		}
		return e.rightCE.Delete(r)
	}
	t := geo.TransformShrinkRect(r)
	if insert {
		return e.right.Insert(t)
	}
	return e.right.Delete(t)
}

// InsertLeftBulk bulk-loads the left input (parallelized internally in
// ModeTransform).
func (e *JoinEstimator) InsertLeftBulk(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := e.checkInput(r); err != nil {
			return err
		}
	}
	if e.leftCE != nil {
		return e.leftCE.InsertAll(rects)
	}
	t := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		t[i] = geo.TransformKeepRect(r)
	}
	return e.left.InsertAll(t)
}

// InsertRightBulk bulk-loads the right input.
func (e *JoinEstimator) InsertRightBulk(rects []geo.HyperRect) error {
	for _, r := range rects {
		if err := e.checkInput(r); err != nil {
			return err
		}
	}
	if e.rightCE != nil {
		return e.rightCE.InsertAll(rects)
	}
	t := make([]geo.HyperRect, len(rects))
	for i, r := range rects {
		t[i] = geo.TransformShrinkRect(r)
	}
	return e.right.InsertAll(t)
}

// LeftCount and RightCount return the current input cardinalities
// (inserts minus deletes).
func (e *JoinEstimator) LeftCount() int64 {
	if e.leftCE != nil {
		return e.leftCE.Count()
	}
	return e.left.Count()
}

// RightCount returns the right input cardinality.
func (e *JoinEstimator) RightCount() int64 {
	if e.rightCE != nil {
		return e.rightCE.Count()
	}
	return e.right.Count()
}

// Cardinality estimates |R join_o S| (strict overlap, Definition 1).
func (e *JoinEstimator) Cardinality() (Estimate, error) {
	if e.leftCE != nil {
		est, err := core.EstimateJoinCE(e.leftCE, e.rightCE)
		return fromCore(est), err
	}
	est, err := core.EstimateJoin(e.left, e.right)
	return fromCore(est), err
}

// CardinalityExtended estimates the extended join |R join+_o S| of
// Definition 4 (objects meeting at their boundaries count). Only available
// in ModeCommonEndpoints.
func (e *JoinEstimator) CardinalityExtended() (Estimate, error) {
	if e.leftCE == nil {
		return Estimate{}, fmt.Errorf("spatial: extended join requires ModeCommonEndpoints")
	}
	est, err := core.EstimateJoinExtCE(e.leftCE, e.rightCE)
	return fromCore(est), err
}

// Selectivity estimates |R join_o S| / (|R| * |S|).
func (e *JoinEstimator) Selectivity() (float64, error) {
	nl, nr := e.LeftCount(), e.RightCount()
	if nl <= 0 || nr <= 0 {
		return 0, fmt.Errorf("spatial: selectivity undefined for empty inputs (%d, %d)", nl, nr)
	}
	est, err := e.Cardinality()
	if err != nil {
		return 0, err
	}
	return est.Clamped() / (float64(nl) * float64(nr)), nil
}

// EstimateSelfJoinLeft estimates SJ(R) from the left synopsis itself
// (E[X_w^2] = SJ(X_w), the original AMS identity) - the input the
// Theorem 1 planner needs, with no offline pass. ModeTransform only.
func (e *JoinEstimator) EstimateSelfJoinLeft() (Estimate, error) {
	if e.left == nil {
		return Estimate{}, fmt.Errorf("spatial: self-join estimation is supported in ModeTransform only")
	}
	return fromCore(e.left.EstimateSelfJoin()), nil
}

// EstimateSelfJoinRight estimates SJ(S) from the right synopsis.
func (e *JoinEstimator) EstimateSelfJoinRight() (Estimate, error) {
	if e.right == nil {
		return Estimate{}, fmt.Errorf("spatial: self-join estimation is supported in ModeTransform only")
	}
	return fromCore(e.right.EstimateSelfJoin()), nil
}

// Merge folds the synopses of other into e: afterwards e summarizes the
// union of both estimators' inputs, exactly as if every object had been
// inserted into e directly (sketches are linear projections, so the merge
// is exact, not approximate). Both estimators must have been built with the
// same configuration - in particular the same Seed, so they share
// xi-families. other is not modified.
//
// This is the shard-and-combine pattern for distributed construction:
// build one estimator per data shard (separate goroutines, processes or
// machines - see MergeLeftFrom for the serialized variant), then merge.
func (e *JoinEstimator) Merge(other *JoinEstimator) error {
	if other.cfg.Mode != e.cfg.Mode {
		return fmt.Errorf("spatial: cannot merge %v estimator into %v estimator", other.cfg.Mode, e.cfg.Mode)
	}
	if e.leftCE != nil {
		if err := e.leftCE.Merge(other.leftCE); err != nil {
			return err
		}
		return e.rightCE.Merge(other.rightCE)
	}
	if err := e.left.Merge(other.left); err != nil {
		return err
	}
	return e.right.Merge(other.right)
}

// MarshalLeft and MarshalRight serialize one side's synopsis (configuration
// included), so sketches can be built near the data and shipped for
// estimation. Only supported in ModeTransform.
func (e *JoinEstimator) MarshalLeft() ([]byte, error) {
	if e.left == nil {
		return nil, fmt.Errorf("spatial: serialization is supported in ModeTransform only")
	}
	return e.left.MarshalBinary()
}

// MarshalRight serializes the right synopsis.
func (e *JoinEstimator) MarshalRight() ([]byte, error) {
	if e.right == nil {
		return nil, fmt.Errorf("spatial: serialization is supported in ModeTransform only")
	}
	return e.right.MarshalBinary()
}

// MergeLeftFrom merges a serialized left synopsis (produced by another
// estimator with the identical configuration) into this one - the
// distributed-construction pattern.
func (e *JoinEstimator) MergeLeftFrom(data []byte) error {
	if e.left == nil {
		return fmt.Errorf("spatial: serialization is supported in ModeTransform only")
	}
	other, err := core.UnmarshalJoinSketch(data)
	if err != nil {
		return err
	}
	return e.left.Merge(other)
}

// MergeRightFrom merges a serialized right synopsis into this one.
func (e *JoinEstimator) MergeRightFrom(data []byte) error {
	if e.right == nil {
		return fmt.Errorf("spatial: serialization is supported in ModeTransform only")
	}
	other, err := core.UnmarshalJoinSketch(data)
	if err != nil {
		return err
	}
	return e.right.Merge(other)
}

func log2ceil(x uint64) int {
	if x <= 1 {
		return 0
	}
	return bits.Len64(x - 1)
}

func pow(base, exp int) int {
	n := 1
	for i := 0; i < exp; i++ {
		n *= base
	}
	return n
}
