package datagen

import (
	"math"
	"testing"
)

func TestRectsBasics(t *testing.T) {
	spec := Spec{N: 500, Dims: 2, Domain: 1024, Seed: 1}
	rects := MustRects(spec)
	if len(rects) != 500 {
		t.Fatalf("got %d rects", len(rects))
	}
	for _, r := range rects {
		if r.Dims() != 2 {
			t.Fatalf("dims = %d", r.Dims())
		}
		for _, iv := range r {
			if iv.Lo > iv.Hi || iv.Hi >= 1024 {
				t.Fatalf("interval %v outside domain", iv)
			}
			if iv.IsPoint() {
				t.Fatalf("degenerate interval generated: %v", iv)
			}
		}
	}
}

func TestRectsDeterministic(t *testing.T) {
	a := MustRects(Spec{N: 100, Dims: 2, Domain: 512, Seed: 9})
	b := MustRects(Spec{N: 100, Dims: 2, Domain: 512, Seed: 9})
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed produced different data at %d", i)
			}
		}
	}
	c := MustRects(Spec{N: 100, Dims: 2, Domain: 512, Seed: 10})
	same := 0
	for i := range a {
		if a[i][0] == c[i][0] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRectsValidation(t *testing.T) {
	bad := []Spec{
		{N: -1, Dims: 1, Domain: 64},
		{N: 1, Dims: 0, Domain: 64},
		{N: 1, Dims: 1, Domain: 2},
		{N: 1, Dims: 1, Domain: 64, Zipf: -1},
		{N: 1, Dims: 2, Domain: 64, MeanLen: []float64{4}},
	}
	for i, spec := range bad {
		if _, err := Rects(spec); err == nil {
			t.Errorf("spec %d should fail: %+v", i, spec)
		}
	}
}

func TestMeanLengthRespected(t *testing.T) {
	spec := Spec{N: 4000, Dims: 1, Domain: 1 << 16, Seed: 4, MeanLen: []float64{100}}
	rects := MustRects(spec)
	var sum float64
	for _, r := range rects {
		sum += float64(r[0].Length())
	}
	mean := sum / float64(len(rects))
	// Exponential with mean 100, min 2: expect mean within [80, 130].
	if mean < 80 || mean > 130 {
		t.Fatalf("mean length %g outside [80, 130]", mean)
	}
}

// TestZipfSkew: higher z concentrates lower endpoints near zero.
func TestZipfSkew(t *testing.T) {
	frac := func(z float64) float64 {
		rects := MustRects(Spec{N: 5000, Dims: 1, Domain: 4096, Seed: 21, Zipf: z})
		count := 0
		for _, r := range rects {
			if r[0].Lo < 256 {
				count++
			}
		}
		return float64(count) / float64(len(rects))
	}
	f0, f1, f2 := frac(0), frac(1), frac(2)
	if !(f0 < f1 && f1 < f2) {
		t.Fatalf("skew not increasing: z=0:%g z=1:%g z=2:%g", f0, f1, f2)
	}
	if f0 > 0.12 {
		t.Fatalf("uniform fraction in first 1/16: %g", f0)
	}
	if f2 < 0.5 {
		t.Fatalf("z=2 should concentrate mass near origin, got %g", f2)
	}
}

func TestPoints(t *testing.T) {
	pts := MustPoints(Spec{N: 300, Dims: 3, Domain: 128, Seed: 2})
	if len(pts) != 300 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Dims() != 3 {
			t.Fatalf("dims = %d", p.Dims())
		}
		for _, x := range p {
			if x >= 128 {
				t.Fatalf("coordinate %d outside domain", x)
			}
		}
	}
}

func TestZipfSamplerUniformShortcut(t *testing.T) {
	s := newZipfSampler(100, 0)
	if s.cum != nil {
		t.Fatal("z=0 should not build a table")
	}
}

func TestLandPresets(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(uint64, float64) LandDataset
		n    int
	}{
		{"LANDO", Lando, 33860},
		{"LANDC", Landc, 14731},
		{"SOIL", Soil, 29662},
	} {
		full := tc.gen(1, 1.0)
		if full.Name != tc.name {
			t.Errorf("name = %q, want %q", full.Name, tc.name)
		}
		if len(full.Rects) != tc.n {
			t.Errorf("%s: %d objects, want %d (paper counts)", tc.name, len(full.Rects), tc.n)
		}
		scaledDown := tc.gen(1, 0.1)
		if len(scaledDown.Rects) != tc.n/10 {
			t.Errorf("%s scaled: %d objects, want %d", tc.name, len(scaledDown.Rects), tc.n/10)
		}
		if full.Domain != LandDomain() {
			t.Errorf("%s: full-scale domain %d, want %d", tc.name, full.Domain, LandDomain())
		}
		if scaledDown.Domain >= full.Domain {
			t.Errorf("%s: scaled domain %d should shrink (density preservation)", tc.name, scaledDown.Domain)
		}
		for _, r := range full.Rects[:100] {
			for _, iv := range r {
				if iv.Hi >= full.Domain || iv.Lo > iv.Hi || iv.IsPoint() {
					t.Fatalf("%s: bad rect %v", tc.name, r)
				}
			}
		}
		for _, r := range scaledDown.Rects {
			for _, iv := range r {
				if iv.Hi >= scaledDown.Domain {
					t.Fatalf("%s scaled: rect %v outside domain %d", tc.name, r, scaledDown.Domain)
				}
			}
		}
	}
}

// TestLandClustering: the land analogs must be spatially skewed - a large
// share of objects concentrated in a small share of the area (what makes
// EH/GH/SKETCH diverge in Figures 9-11).
func TestLandClustering(t *testing.T) {
	d := Lando(7, 1.0)
	const cells = 16
	counts := make([]int, cells*cells)
	cw := float64(LandDomain()) / cells
	for _, r := range d.Rects {
		cx := int(float64(r[0].Lo) / cw)
		cy := int(float64(r[1].Lo) / cw)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		counts[cy*cells+cx]++
	}
	// Compute the share held by the densest 10% of cells.
	sorted := append([]int(nil), counts...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	top := 0
	for i := 0; i < len(sorted)/10; i++ {
		top += sorted[i]
	}
	share := float64(top) / float64(len(d.Rects))
	if share < 0.3 {
		t.Fatalf("top-10%% cells hold only %.0f%% of objects - not clustered", share*100)
	}
}

func TestLandDeterministic(t *testing.T) {
	a := Soil(3, 0.2)
	b := Soil(3, 0.2)
	for i := range a.Rects {
		for j := range a.Rects[i] {
			if a.Rects[i][j] != b.Rects[i][j] {
				t.Fatal("land generator not deterministic")
			}
		}
	}
}

func TestLandValidation(t *testing.T) {
	if _, err := Land(LandSpec{N: -1, Clusters: 1, Domain: 64}); err == nil {
		t.Error("negative N should fail")
	}
	if _, err := Land(LandSpec{N: 1, Clusters: 0, Domain: 64}); err == nil {
		t.Error("zero clusters should fail")
	}
	if _, err := Land(LandSpec{N: 1, Clusters: 1, Domain: 4}); err == nil {
		t.Error("tiny domain should fail")
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0) != 100 || scaled(100, 1) != 100 || scaled(100, 2) != 100 {
		t.Error("out-of-range scales should return n")
	}
	if scaled(100, 0.25) != 25 {
		t.Error("scaled(100, .25) != 25")
	}
	if scaled(3, 0.01) != 1 {
		t.Error("scaled should floor at 1")
	}
}

func TestZipfSamplerDistribution(t *testing.T) {
	// The Zipf(1) sampler over m items should put P(0) ~ 1/H(m) of the
	// mass on position 0.
	rects := MustRects(Spec{N: 20000, Dims: 1, Domain: 256, Seed: 5, Zipf: 1, MeanLen: []float64{4}})
	zero := 0
	for _, r := range rects {
		if r[0].Lo == 0 {
			zero++
		}
	}
	// Positions range over ~250 slots; H(250) ~ 6.1, so P(0) ~ 0.164.
	got := float64(zero) / float64(len(rects))
	if math.Abs(got-0.164) > 0.03 {
		t.Fatalf("P(pos=0) = %g, want ~0.164", got)
	}
}
