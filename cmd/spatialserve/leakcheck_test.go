package main

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Goroutine-leak checking for the e2e tests: after a test that spins up
// servers, clusters or streams tears everything down, no goroutine may
// still be running this repo's code. The filter keys on "repro/" frames,
// so stdlib helpers (http keepalive conns, DNS, testing machinery) never
// flake the check, while a forgotten checkpoint loop, replica tailer,
// session GC or stream handler is caught by name.

// checkGoroutineLeaks registers a cleanup that asserts every
// repo-code goroutine has exited by the end of the test, retrying
// briefly so in-flight shutdowns can drain.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var leaked []string
		for {
			leaked = repoGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) still in repo code after teardown:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// repoGoroutines returns the stacks of every goroutine other than the
// caller's that has a repro/ frame.
func repoGoroutines() []string {
	buf := make([]byte, 1<<22)
	n := runtime.Stack(buf, true)
	stacks := strings.Split(string(buf[:n]), "\n\n")
	var out []string
	for i, g := range stacks {
		if i == 0 {
			continue // the goroutine running this check
		}
		// Goroutines whose own frames include the testing machinery are
		// test runners (TestMain on goroutine 1, parents blocked in
		// t.Run), not server code; a real leak never has these frames.
		if strings.Contains(g, "testing.(*M).Run(") || strings.Contains(g, "testing.tRunner(") {
			continue
		}
		if strings.Contains(g, "repro/") {
			out = append(out, g)
		}
	}
	return out
}
